// Fixture: banned nondeterminism sources and float accumulation in an
// exact-tier module — each makes a "deterministic" kernel depend on wall
// clock, process entropy, or precision mode.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <ctime>
#include <random>
#include <vector>

namespace lsample::mrf {

struct BadKernel {
  std::uint64_t entropy_seed() {
    std::random_device rd;  // LINT:banned-call
    return rd();
  }

  std::uint64_t clock_seed() {
    return static_cast<std::uint64_t>(time(nullptr));  // LINT:banned-call
  }

  std::uint64_t chrono_seed() {
    return static_cast<std::uint64_t>(
        std::chrono::steady_clock::now()  // LINT:banned-call
            .time_since_epoch()
            .count());
  }

  int c_library_draw() {
    return rand();  // LINT:banned-call
  }

  double sum_weights(const std::vector<double>& w) {
    float acc = 0.0f;  // LINT:float-accumulation
    for (const double x : w) acc += static_cast<float>(x);  // LINT:float-accumulation
    return acc;
  }
};

}  // namespace lsample::mrf
