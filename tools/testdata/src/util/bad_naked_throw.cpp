// Fixture: a naked throw where LS_REQUIRE/LS_ASSERT is the convention (plus
// a legal bare rethrow, which must NOT be flagged).
#include <stdexcept>

namespace lsample::util {

inline void check_positive(int n) {
  if (n <= 0) throw std::invalid_argument("n must be positive");  // LINT:naked-throw
}

inline void rethrow_current() {
  try {
    check_positive(0);
  } catch (...) {
    throw;  // bare rethrow is fine
  }
}

}  // namespace lsample::util
