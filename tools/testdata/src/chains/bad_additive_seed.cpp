// Fixture: PR 3's shipped bug, reintroduced — replica streams derived by
// ADDING the replica index to the base seed, so seeds 41 and 42 share all
// but one stream.  Every flagged line carries a LINT:<check> marker; the
// self-test asserts the lint reports exactly these lines.
#include <cstdint>
#include <vector>

namespace lsample::chains {

struct BadReplicaFleet {
  std::uint64_t seed_ = 0;

  std::uint64_t stream_for(std::uint64_t r) const {
    return seed_ + r;  // LINT:additive-seed
  }

  std::uint64_t stream_for_trial(int trial) const {
    return seed_ + static_cast<std::uint64_t>(trial);  // LINT:additive-seed
  }

  std::uint64_t offset_stream(std::uint64_t base_seed) const {
    return 17 + base_seed;  // LINT:additive-seed
  }
};

}  // namespace lsample::chains
