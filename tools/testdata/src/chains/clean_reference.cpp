// Fixture: the patterns the lint must NOT flag — mix64-style seed
// derivation, ordered containers, double accumulation, comments and strings
// that merely mention the banned spellings, and an increment that contains
// "+ trial" textually but adds nothing to a seed.
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace lsample::chains {

inline std::uint64_t mix64(std::uint64_t z) {
  z ^= z >> 33;
  z *= 0xff51afd7ed558ccdULL;
  return z ^ (z >> 29);
}

// Correct stream derivation: replica_seed(base, r) = mix64(mix64(base ^ c) ^ r)
// — never seed + r (that spelling, quoted here, stays comment-only).
inline std::uint64_t good_replica_seed(std::uint64_t base, std::uint64_t r) {
  return mix64(mix64(base ^ 0xd1b54a32d192ed03ULL) ^ r);
}

struct CleanChain {
  std::map<int, int> spins_;       // ordered: fine
  std::vector<double> weights_;

  double sum_weights() const {
    double acc = 0.0;  // double accumulation: fine in exact modules
    for (const double w : weights_) acc += w;
    return acc;
  }

  int run_trials(int trials) {
    int done = 0;
    for (int trial = 0; trial < trials; ++trial) ++done;
    return done;
  }

  std::string describe() const {
    return "uses time( and rand( and seed + r only inside this string";
  }
};

}  // namespace lsample::chains
