// Fixture: a chain iterating an unordered_map — iteration order is
// implementation-defined, so the update order (and with it the trajectory)
// would depend on the standard library build.
#include <cstdint>
#include <unordered_map>  // LINT:unordered-iteration
#include <unordered_set>  // LINT:unordered-iteration
#include <vector>

namespace lsample::chains {

struct BadSparseChain {
  std::unordered_map<int, int> spins_;     // LINT:unordered-iteration
  std::unordered_set<int> active_;         // LINT:unordered-iteration

  void step(std::int64_t /*t*/) {
    for (auto& [v, spin] : spins_) spin = resample(v, spin);
  }

  static int resample(int v, int spin) { return (v + spin) % 3; }
};

}  // namespace lsample::chains
