#!/usr/bin/env python3
"""Repo-specific determinism lint for the lsample library.

Greps src/ for the invariant violations this repository has actually shipped
or almost shipped, each a way for a trajectory to stop being a pure function
of (model, seed, options):

  additive-seed        seed arithmetic like `seed + r` / `seed_ + trial`
                       outside chains::replica_seed (PR 3's stream-collision
                       bug: nearby base seeds overlap replica streams)
  banned-call          std::random_device / rand( / srand( / time( /
                       std::chrono::*::now — nondeterminism sources that must
                       never feed library state
  unordered-iteration  any unordered_map/unordered_set in src/chains, local,
                       csp, or mrf: iteration order is implementation-defined,
                       so results would depend on the standard library
  float-accumulation   `float` in exact-tier arithmetic modules (chains, mrf,
                       csp, local, core): Tier::exact promises bit-identical
                       kernels, which single-precision accumulation breaks
  naked-throw          `throw <expr>` where LS_REQUIRE / LS_ASSERT (or a
                       named, allowlisted error type) is the convention

Zero-noise contract: the unmutated tree lints clean; audited exceptions live
in tools/determinism_lint_allowlist.txt, one per line as

  <check-id> <path-suffix> <line-substring>

A finding is suppressed when a rule's check matches, the finding's path ends
with the suffix, and the offending line contains the substring.

Usage:
  determinism_lint.py [--root REPO] [--allowlist FILE]   lint src/
  determinism_lint.py --self-test                        run fixture suite

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

SRC_EXTENSIONS = {".hpp", ".cpp", ".h", ".cc"}

# Modules whose containers must iterate in a deterministic order (they hold
# chain / network / CSP state touched inside rounds).
ORDERED_MODULES = ("chains", "local", "csp", "mrf")

# Modules on the Tier::exact arithmetic path (kernels and the model views
# they read); double precision only.
EXACT_MODULES = ("chains", "mrf", "csp", "local", "core")


class Finding:
    def __init__(self, check: str, path: Path, lineno: int, line: str,
                 message: str) -> None:
        self.check = check
        self.path = path
        self.lineno = lineno
        self.line = line.strip()
        self.message = message

    def __str__(self) -> str:
        return (f"{self.path}:{self.lineno}: [{self.check}] {self.message}\n"
                f"    {self.line}")


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving line structure
    so line numbers survive.  A lexer-grade pass is overkill for lint: this
    handles //, /* */, "..." and '...' including escapes."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            if j < 0:
                break
            out.append("\n")
            i = j + 1
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            if j < 0:
                j = n
            out.append("".join(ch if ch == "\n" else " "
                               for ch in text[i:j + 2]))
            i = j + 2
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote:
                    break
                j += 1
            out.append(quote + " " * max(0, j - i - 1) + quote)
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


# --- check implementations -------------------------------------------------

ADDITIVE_SEED = re.compile(
    r"\b\w*seed\w*\s*\+\s*\w|\w\s*\+\s*\w*seed\w*\b", re.IGNORECASE)

BANNED_CALLS = [
    (re.compile(r"std\s*::\s*random_device"), "std::random_device"),
    (re.compile(r"(?<![\w:.])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"(?<![\w:.])time\s*\("), "time()"),
    (re.compile(r"std\s*::\s*chrono\s*::[\w:]*\bnow\s*\("),
     "std::chrono::*::now()"),
]

UNORDERED = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\b")

FLOAT_DECL = re.compile(r"\bfloat\b")

# `throw expr;` — but not a bare rethrow (`throw;`).
NAKED_THROW = re.compile(r"\bthrow\s+[^;\s]")


def module_of(path: Path, root: Path) -> str:
    try:
        rel = path.relative_to(root)
    except ValueError:
        rel = path
    parts = rel.parts
    if len(parts) >= 2 and parts[0] == "src":
        return parts[1]
    return parts[0] if parts else ""


def lint_file(path: Path, root: Path) -> list[Finding]:
    raw = path.read_text(encoding="utf-8", errors="replace")
    code = strip_comments_and_strings(raw)
    raw_lines = raw.splitlines()
    findings: list[Finding] = []
    module = module_of(path, root)

    def add(check: str, lineno: int, message: str) -> None:
        src = raw_lines[lineno - 1] if lineno - 1 < len(raw_lines) else ""
        findings.append(Finding(check, path, lineno, src, message))

    for lineno, line in enumerate(code.splitlines(), start=1):
        if ADDITIVE_SEED.search(line):
            add("additive-seed", lineno,
                "additive seed arithmetic; derive replica/trial streams via "
                "chains::replica_seed (mix64), never seed + k")
        for pattern, name in BANNED_CALLS:
            if pattern.search(line):
                add("banned-call", lineno,
                    f"{name} is a nondeterminism source; library state must "
                    "be a pure function of (model, seed, options)")
        if module in ORDERED_MODULES and UNORDERED.search(line):
            add("unordered-iteration", lineno,
                "unordered containers have implementation-defined iteration "
                "order; use a vector/map keyed by vertex or slot id")
        if module in EXACT_MODULES and FLOAT_DECL.search(line):
            add("float-accumulation", lineno,
                "single-precision arithmetic in a Tier::exact module; exact "
                "kernels promise bit-identical double-precision results")
        if NAKED_THROW.search(line):
            add("naked-throw", lineno,
                "naked throw; use LS_REQUIRE/LS_ASSERT (util/require.hpp) or "
                "allowlist a named error type")
    return findings


# --- allowlist -------------------------------------------------------------

def load_allowlist(path: Path) -> list[tuple[str, str, str]]:
    rules: list[tuple[str, str, str]] = []
    if not path.exists():
        return rules
    for raw in path.read_text(encoding="utf-8").splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split(None, 2)
        if len(parts) != 3:
            print(f"{path}: malformed allowlist line: {raw!r}",
                  file=sys.stderr)
            sys.exit(2)
        rules.append((parts[0], parts[1], parts[2]))
    return rules


def allowed(finding: Finding,
            rules: list[tuple[str, str, str]]) -> bool:
    posix = finding.path.as_posix()
    return any(check == finding.check and posix.endswith(suffix)
               and substring in finding.line
               for check, suffix, substring in rules)


# --- drivers ---------------------------------------------------------------

def lint_tree(root: Path, allowlist: Path) -> int:
    src = root / "src"
    if not src.is_dir():
        print(f"error: {src} is not a directory", file=sys.stderr)
        return 2
    rules = load_allowlist(allowlist)
    findings: list[Finding] = []
    for path in sorted(src.rglob("*")):
        if path.suffix in SRC_EXTENSIONS and path.is_file():
            findings.extend(f for f in lint_file(path, root)
                            if not allowed(f, rules))
    for f in findings:
        print(f)
    if findings:
        print(f"\ndeterminism lint: {len(findings)} finding(s)",
              file=sys.stderr)
        return 1
    print("determinism lint: clean")
    return 0


def self_test(root: Path) -> int:
    """Lint the fixture tree and require exactly the expected findings —
    the lint's own mutation test.  Each bad fixture carries `LINT:<check>`
    markers on the lines that must be flagged; clean fixtures carry none."""
    testdata = root / "tools" / "testdata"
    if not testdata.is_dir():
        print(f"error: {testdata} missing", file=sys.stderr)
        return 2
    failures = 0
    for path in sorted(testdata.rglob("*")):
        if path.suffix not in SRC_EXTENSIONS or not path.is_file():
            continue
        expected: set[tuple[int, str]] = set()
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            for mark in re.findall(r"LINT:([\w-]+)", line):
                expected.add((lineno, mark))
        actual = {(f.lineno, f.check) for f in lint_file(path, testdata)}
        for miss in sorted(expected - actual):
            print(f"MISSED  {path}:{miss[0]} expected [{miss[1]}]")
            failures += 1
        for extra in sorted(actual - expected):
            print(f"SPURIOUS {path}:{extra[0]} flagged [{extra[1]}]")
            failures += 1
    if failures:
        print(f"\nself-test: {failures} mismatch(es)", file=sys.stderr)
        return 1
    print("self-test: all fixtures behave as expected")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=Path, default=Path(__file__).parent.parent,
                        help="repository root (default: tools/..)")
    parser.add_argument("--allowlist", type=Path, default=None,
                        help="allowlist file (default: tools/"
                             "determinism_lint_allowlist.txt under --root)")
    parser.add_argument("--self-test", action="store_true",
                        help="lint tools/testdata fixtures against their "
                             "LINT:<check> markers")
    args = parser.parse_args()
    root = args.root.resolve()
    if args.self_test:
        return self_test(root)
    allowlist = (args.allowlist if args.allowlist is not None
                 else root / "tools" / "determinism_lint_allowlist.txt")
    return lint_tree(root, allowlist)


if __name__ == "__main__":
    sys.exit(main())
