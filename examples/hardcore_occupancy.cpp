// Statistical-physics scenario: hardcore (weighted independent set) model on
// a torus.  Sweeps the fugacity lambda and reports the occupation density
// sampled by LocalMetropolis, cross-checked against exact enumeration on a
// small cycle — the workload class whose non-uniqueness regime powers the
// paper's Omega(diam) lower bound (Theorem 1.3).
//
//   $ ./example_hardcore_occupancy
#include <iostream>

#include "chains/chain.hpp"
#include "chains/init.hpp"
#include "chains/local_metropolis.hpp"
#include "graph/generators.hpp"
#include "inference/exact.hpp"
#include "mrf/models.hpp"
#include "util/table.hpp"

int main() {
  using namespace lsample;

  // Exact cross-check on a small cycle.
  util::print_banner(std::cout,
                     "occupancy on C12: sampled vs exact enumeration");
  {
    const auto g = graph::make_cycle(12);
    util::Table t({"lambda", "sampled density", "exact density"});
    for (double lambda : {0.3, 1.0, 2.0}) {
      const mrf::Mrf model = mrf::make_hardcore(g, lambda);
      const inference::StateSpace ss(12, 2);
      const auto mu = inference::gibbs_distribution(model, ss);
      double exact = 0.0;
      mrf::Config cfg;
      for (std::int64_t i = 0; i < ss.size(); ++i) {
        ss.decode_into(i, cfg);
        int size = 0;
        for (int s : cfg) size += s;
        exact += mu[static_cast<std::size_t>(i)] * size / 12.0;
      }
      double sampled = 0.0;
      const int runs = 400;
      for (int r = 0; r < runs; ++r) {
        chains::LocalMetropolisChain chain(model,
                                           static_cast<std::uint64_t>(r) + 5);
        mrf::Config x = chains::constant_config(model, 0);
        chains::run(chain, x, 0, 150);
        int size = 0;
        for (int s : x) size += s;
        sampled += static_cast<double>(size) / 12.0;
      }
      t.begin_row().cell(lambda, 2).cell(sampled / runs, 4).cell(exact, 4);
    }
    t.print(std::cout);
  }

  // Large torus sweep.
  util::print_banner(std::cout, "occupancy on a 32x32 torus (Delta = 4)");
  {
    const auto g = graph::make_torus(32, 32);
    util::Table t({"lambda", "density", "uniqueness (lambda_c(4)=?)"});
    const double lc = mrf::hardcore_uniqueness_threshold(4);
    for (double lambda : {0.2, 0.5, 1.0, 1.6, 3.0}) {
      const mrf::Mrf model = mrf::make_hardcore(g, lambda);
      chains::LocalMetropolisChain chain(model, 3);
      mrf::Config x = chains::constant_config(model, 0);
      chains::run(chain, x, 0, 500);
      int size = 0;
      for (int s : x) size += s;
      t.begin_row()
          .cell(lambda, 2)
          .cell(static_cast<double>(size) / model.n(), 4)
          .cell(lambda < lc ? "unique (tree bound)" : "non-unique (tree bound)");
    }
    t.print(std::cout);
    std::cout << "lambda_c(4) = " << lc
              << "; Theorem 1.3 lives in the non-unique regime (Delta >= 6, "
                 "lambda = 1).\n";
  }
  return 0;
}
