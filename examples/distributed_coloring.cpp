// Distributed execution demo: draw samples through the facade's
// local_network backend, so both sampling protocols run as real
// message-passing programs in the LOCAL-model simulator, and report the
// communication profile (rounds, messages, bits) alongside the result.
//
// This is the paper's actual setting: every vertex of the network is a
// processor that only sees its neighbors' messages.  The facade guarantees
// the sampled coloring is bit-identical to the in-memory chain backend with
// the same (model, algorithm, seed, rounds) — the demo checks it.
//
//   $ ./example_distributed_coloring
#include <iostream>

#include "core/sampler.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "mrf/models.hpp"
#include "util/table.hpp"

int main() {
  using namespace lsample;

  util::Rng grng(7);
  const auto g = graph::make_random_regular(200, 6, grng);
  const int q = 24;

  util::Table t({"protocol", "chain steps", "sim rounds", "messages",
                 "total bits", "bits/message", "proper?", "== chain?"});
  const auto run = [&](core::Algorithm alg, std::int64_t rounds,
                       const char* name) {
    core::SamplerOptions opt;
    opt.algorithm = alg;
    opt.seed = 99;
    opt.rounds = rounds;
    opt.backend = core::Backend::local_network;
    const core::SampleResult net = core::sample_coloring(g, q, opt);
    opt.backend = core::Backend::chain;
    const core::SampleResult ref = core::sample_coloring(g, q, opt);
    t.begin_row()
        .cell(name)
        .cell(net.rounds)
        .cell(net.message_stats.rounds)
        .cell(net.message_stats.messages)
        .cell(net.message_stats.bits)
        .cell(static_cast<std::int64_t>(net.message_stats.bits /
                                        net.message_stats.messages))
        .cell(graph::is_proper_coloring(*g, net.config) ? "yes" : "no")
        .cell(net.config == ref.config ? "yes" : "NO");
  };
  run(core::Algorithm::local_metropolis, 120, "LocalMetropolis");
  run(core::Algorithm::luby_glauber, 400, "LubyGlauber");
  t.print(std::cout);
  std::cout << "each message is O(log n) bits (paper, end of Section 1.1); "
               "every node ran as an isolated program reading only its "
               "ports, and the sample matches the in-memory chain backend "
               "bit for bit.\n";
  return 0;
}
