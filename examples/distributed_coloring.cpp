// Distributed execution demo: run both sampling protocols as real
// message-passing programs in the LOCAL-model simulator, and report the
// communication profile (rounds, messages, bits) alongside the result.
//
// This is the paper's actual setting: every vertex of the network is a
// processor that only sees its neighbors' messages.
//
//   $ ./example_distributed_coloring
#include <iostream>

#include "chains/init.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "local/node_programs.hpp"
#include "mrf/models.hpp"
#include "util/table.hpp"

int main() {
  using namespace lsample;

  util::Rng grng(7);
  const auto g = graph::make_random_regular(200, 6, grng);
  const int q = 24;
  const mrf::Mrf model = mrf::make_proper_coloring(g, q);
  const mrf::Config x0 = chains::greedy_feasible_config(model);

  util::Table t({"protocol", "rounds", "messages", "total bits",
                 "bits/message", "proper?"});
  {
    local::Network net = local::make_local_metropolis_network(model, x0, 99);
    net.run_rounds(120);
    const auto out = net.outputs();
    t.begin_row()
        .cell("LocalMetropolis")
        .cell(net.stats().rounds)
        .cell(net.stats().messages)
        .cell(net.stats().bits)
        .cell(static_cast<std::int64_t>(net.stats().bits /
                                        net.stats().messages))
        .cell(graph::is_proper_coloring(*g, out) ? "yes" : "no");
  }
  {
    local::Network net = local::make_luby_glauber_network(model, x0, 99);
    net.run_rounds(400);
    const auto out = net.outputs();
    t.begin_row()
        .cell("LubyGlauber")
        .cell(net.stats().rounds)
        .cell(net.stats().messages)
        .cell(net.stats().bits)
        .cell(static_cast<std::int64_t>(net.stats().bits /
                                        net.stats().messages))
        .cell(graph::is_proper_coloring(*g, out) ? "yes" : "no");
  }
  t.print(std::cout);
  std::cout << "each message is O(log n) bits (paper, end of Section 1.1); "
               "every node ran as an isolated program reading only its "
               "ports.\n";
  return 0;
}
