// Command-line sampler: pick a graph family, a model, and an algorithm, and
// draw a sample with statistics.  Runs a sensible demo with no arguments.
//
//   $ ./example_sampler_cli [graph] [n] [model] [q_or_lambda] [alg] [seed] [threads] [replicas] [backend] [shards] [stop=rule]
//     graph:    cycle | grid | torus | regular4 | regular6
//     model:    coloring | listcoloring | hardcore | ising | dominating
//               (dominating = the weighted dominating-set CSP with activity
//               lambda^|S|, sampled through core::sample_csp /
//               core::sample_many_csp on the compiled CSP runtime)
//     alg:      lm | lg
//     threads:  worker threads (0 = all hardware threads); samples are
//               bit-identical at any thread count
//     replicas: independent samples per call (> 1 batches them through
//               core::sample_many over one shared compiled model)
//     backend:  chain (in-memory reference chains, default) | network (the
//               message-passing LOCAL-model runtime; same bits, plus a
//               communication profile)
//     shards:   partition the network into this many shards exchanging only
//               boundary ("halo") messages (network backend, replicas = 1);
//               the sample is bit-identical at any shard count, and the
//               report adds the partition quality and halo traffic
//     stop=:    adaptive stopping rule, anywhere on the line (chain backend):
//               stop=fixed | stop=coupling | stop=cftp | stop=rhat |
//               stop=auto.  Adaptive rules pay the MEASURED mixing and the
//               report shows rounds used vs the theory budget (the savings).
//   e.g. ./example_sampler_cli torus 16 coloring 14 lm 7 4 8 network
//   e.g. ./example_sampler_cli torus 16 coloring 14 lg 7 1 1 network 4
//   e.g. ./example_sampler_cli torus 16 coloring 14 lg 7 stop=auto
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/sampler.hpp"
#include "csp/csp_models.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"
#include "graph/properties.hpp"
#include "mrf/models.hpp"
#include "util/table.hpp"

namespace {

using namespace lsample;

graph::GraphPtr build_graph(const std::string& kind, int n, util::Rng& rng) {
  if (kind == "cycle") return graph::make_cycle(n);
  if (kind == "grid") return graph::make_grid(n, n);
  if (kind == "torus") return graph::make_torus(n, n);
  if (kind == "regular4") return graph::make_random_regular(n, 4, rng);
  if (kind == "regular6") return graph::make_random_regular(n, 6, rng);
  throw std::invalid_argument("unknown graph kind: " + kind);
}

}  // namespace

int main(int argc, char** argv) {
  // The stop=<rule> keyword may appear anywhere; everything else is
  // positional in the documented order.
  chains::StopRule stop = chains::StopRule::fixed;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("stop=", 0) == 0) {
      const auto rule = chains::parse_stop_rule(a.substr(5));
      if (!rule.has_value()) {
        std::cerr << "unknown stop rule: " << a.substr(5)
                  << " (fixed | coupling | cftp | rhat | auto)\n";
        return 1;
      }
      stop = *rule;
    } else {
      args.push_back(a);
    }
  }
  const auto arg = [&](std::size_t i) -> const char* {
    return args.size() > i ? args[i].c_str() : nullptr;
  };
  const std::string kind = arg(0) ? arg(0) : "torus";
  const int n = arg(1) ? std::atoi(arg(1)) : 12;
  const std::string model = arg(2) ? arg(2) : "coloring";
  const double param = arg(3) ? std::atof(arg(3)) : 16.0;
  const std::string alg = arg(4) ? arg(4) : "lm";
  const std::uint64_t seed =
      arg(5) ? static_cast<std::uint64_t>(std::atoll(arg(5))) : 2024;
  const int threads = arg(6) ? std::atoi(arg(6)) : 1;
  const int replicas = arg(7) ? std::atoi(arg(7)) : 1;
  const std::string backend = arg(8) ? arg(8) : "chain";
  if (backend != "chain" && backend != "network") {
    std::cerr << "unknown backend: " << backend << " (chain | network)\n";
    return 1;
  }
  const int shards = arg(9) ? std::atoi(arg(9)) : 1;
  if (shards < 1) {
    std::cerr << "shards must be >= 1\n";
    return 1;
  }
  if (shards > 1 && (backend != "network" || replicas > 1)) {
    std::cerr << "shards > 1 needs the network backend and replicas = 1\n";
    return 1;
  }

  util::Rng grng(seed);
  const auto g = build_graph(kind, n, grng);

  core::SamplerOptions opt;
  opt.algorithm = alg == "lg" ? core::Algorithm::luby_glauber
                              : core::Algorithm::local_metropolis;
  opt.backend = backend == "network" ? core::Backend::local_network
                                     : core::Backend::chain;
  opt.seed = seed;
  opt.epsilon = 0.01;
  opt.num_threads = threads;
  opt.num_replicas = replicas;
  opt.num_shards = shards;
  opt.stop = stop;
  if (stop != chains::StopRule::fixed && backend != "chain") {
    std::cerr << "stop=" << chains::stop_rule_name(stop)
              << " needs the chain backend\n";
    return 1;
  }

  if (replicas > 1) {
    // Batch mode: R independent samples in one facade call, all replicas
    // against one shared compiled model.
    core::BatchSampleResult batch;
    int constraint_ok = -1;  // -1 = not applicable
    if (model == "coloring") {
      batch = core::sample_many_colorings(g, static_cast<int>(param), opt);
      constraint_ok = 0;
      for (const auto& c : batch.configs)
        constraint_ok += graph::is_proper_coloring(*g, c) ? 1 : 0;
    } else if (model == "hardcore") {
      opt.rounds = 400;  // outside guaranteed regimes for large lambda
      batch = core::sample_many(mrf::make_hardcore(g, param), opt);
      constraint_ok = 0;
      for (const auto& c : batch.configs)
        constraint_ok += graph::is_independent_set(*g, c) ? 1 : 0;
    } else if (model == "ising") {
      opt.rounds = 400;
      batch = core::sample_many(mrf::make_ising(g, param), opt);
    } else if (model == "dominating") {
      // Weighted dominating sets — a genuinely multi-ary CSP — batched on
      // the compiled CSP runtime.  The all-chosen set is trivially feasible.
      if (backend != "chain") {
        std::cerr << "dominating supports the chain backend only\n";
        return 1;
      }
      opt.rounds = 300;
      const csp::FactorGraph fg = csp::make_dominating_set(*g, param);
      const csp::Config x0(static_cast<std::size_t>(fg.n()), 1);
      batch = core::sample_many_csp(fg, x0, opt);
      constraint_ok = batch.feasible_count;  // w > 0 iff S is dominating
    } else {
      std::cerr << "replicas > 1 supports coloring | hardcore | ising | "
                   "dominating\n";
      return 1;
    }
    double spins0 = 0;
    for (const auto& c : batch.configs)
      for (int s : c) spins0 += s == 0 ? 1 : 0;
    util::Table bt({"field", "value"});
    bt.begin_row().cell("graph").cell(
        kind + " (n=" + std::to_string(g->num_vertices()) +
        ", Delta=" + std::to_string(g->max_degree()) + ")");
    bt.begin_row().cell("model").cell(model);
    bt.begin_row().cell("replicas").cell(replicas);
    bt.begin_row().cell("rounds each").cell(batch.rounds);
    if (batch.stop_rule != chains::StopRule::fixed) {
      bt.begin_row().cell("stop rule").cell(
          std::string(chains::stop_rule_name(batch.stop_rule)) +
          (batch.stopped_early ? " (converged)" : " (fell back to budget)"));
      bt.begin_row().cell("rounds used / budget").cell(
          std::to_string(batch.rounds_used) + " / " +
          std::to_string(batch.budget_rounds));
      if (batch.stopped_early && batch.rounds_used > 0 &&
          batch.budget_rounds > 0)
        bt.begin_row().cell("savings vs budget").cell(
            static_cast<double>(batch.budget_rounds) /
                static_cast<double>(batch.rounds_used),
            2);
    }
    bt.begin_row().cell("backend").cell(backend);
    bt.begin_row().cell("threads").cell(threads);
    bt.begin_row().cell("feasible replicas").cell(batch.feasible_count);
    if (opt.backend == core::Backend::local_network) {
      bt.begin_row().cell("simulated rounds (all replicas)").cell(
          batch.message_stats.rounds);
      bt.begin_row().cell("messages").cell(batch.message_stats.messages);
      bt.begin_row().cell("total bits").cell(batch.message_stats.bits);
    }
    if (constraint_ok >= 0)
      bt.begin_row().cell("constraint check").cell(
          std::to_string(constraint_ok) + "/" + std::to_string(replicas) +
          " ok");
    if (batch.theory_alpha >= 0.0)
      bt.begin_row().cell("Dobrushin alpha").cell(batch.theory_alpha, 3);
    bt.begin_row().cell("fraction at spin 0").cell(
        spins0 / (static_cast<double>(replicas) * g->num_vertices()), 3);
    bt.print(std::cout);
    return 0;
  }

  core::SampleResult result;
  std::string verdict;
  if (model == "coloring") {
    result = core::sample_coloring(g, static_cast<int>(param), opt);
    verdict = graph::is_proper_coloring(*g, result.config) ? "proper" : "IMPROPER";
  } else if (model == "listcoloring") {
    // Random lists of size param out of 2*param colors.
    const int q = 2 * static_cast<int>(param);
    std::vector<std::vector<int>> lists(
        static_cast<std::size_t>(g->num_vertices()));
    for (auto& list : lists) {
      while (static_cast<int>(list.size()) < static_cast<int>(param)) {
        const int c = grng.uniform_int(q);
        bool seen = false;
        for (int x : list) seen = seen || x == c;
        if (!seen) list.push_back(c);
      }
    }
    result = core::sample_list_coloring(g, q, lists, opt);
    verdict = graph::is_proper_coloring(*g, result.config) ? "proper" : "IMPROPER";
  } else if (model == "hardcore") {
    opt.rounds = 400;  // outside guaranteed regimes for large lambda
    result = core::sample_hardcore(g, param, opt);
    verdict = graph::is_independent_set(*g, result.config) ? "independent" : "VIOLATED";
  } else if (model == "ising") {
    const mrf::Mrf m = mrf::make_ising(g, param);
    opt.rounds = 400;
    result = core::sample_mrf(m, opt);
    verdict = "n/a";
  } else if (model == "dominating") {
    if (backend != "chain") {
      std::cerr << "dominating supports the chain backend only\n";
      return 1;
    }
    opt.rounds = 300;
    const csp::FactorGraph fg = csp::make_dominating_set(*g, param);
    const csp::Config x0(static_cast<std::size_t>(fg.n()), 1);
    result = core::sample_csp(fg, x0, opt);
    verdict = result.feasible ? "dominating" : "VIOLATED";
  } else {
    std::cerr << "unknown model: " << model << "\n";
    return 1;
  }

  util::Table t({"field", "value"});
  t.begin_row().cell("graph").cell(kind + " (n=" + std::to_string(g->num_vertices()) +
                                   ", Delta=" + std::to_string(g->max_degree()) + ")");
  t.begin_row().cell("model").cell(model);
  t.begin_row().cell("algorithm").cell(
      opt.algorithm == core::Algorithm::luby_glauber ? "LubyGlauber"
                                                     : "LocalMetropolis");
  t.begin_row().cell("backend").cell(backend);
  t.begin_row().cell("rounds").cell(result.rounds);
  if (result.stop_rule != chains::StopRule::fixed) {
    t.begin_row().cell("stop rule").cell(
        std::string(chains::stop_rule_name(result.stop_rule)) +
        (result.stopped_early ? " (converged)" : " (fell back to budget)"));
    t.begin_row().cell("rounds used / budget").cell(
        std::to_string(result.rounds_used) + " / " +
        std::to_string(result.budget_rounds));
    if (result.stopped_early && result.rounds_used > 0 &&
        result.budget_rounds > 0)
      t.begin_row().cell("savings vs budget").cell(
          static_cast<double>(result.budget_rounds) /
              static_cast<double>(result.rounds_used),
          2);
  }
  t.begin_row().cell("threads").cell(threads);
  t.begin_row().cell("feasible").cell(result.feasible ? "yes" : "no");
  if (opt.backend == core::Backend::local_network) {
    t.begin_row().cell("simulated rounds").cell(result.message_stats.rounds);
    t.begin_row().cell("messages").cell(result.message_stats.messages);
    t.begin_row().cell("total bits").cell(result.message_stats.bits);
    if (result.message_stats.messages > 0)  // edgeless graphs send nothing
      t.begin_row().cell("bits/message").cell(
          static_cast<std::int64_t>(result.message_stats.bits /
                                    result.message_stats.messages));
    if (shards > 1) {
      // The facade partitions the same way (BFS order, greedy refinement),
      // so this quality report describes the shards the sample ran on.
      graph::PartitionOptions popt;
      popt.num_shards = shards;
      const graph::Partition part = graph::make_partition(*g, popt);
      t.begin_row().cell("partition").cell(
          graph::describe(graph::partition_quality(*g, part)));
      t.begin_row().cell("halo messages").cell(result.halo_stats.halo_messages);
      t.begin_row().cell("halo wire bytes").cell(result.halo_stats.wire_bytes);
      if (result.halo_stats.cut_slots > 0 && result.halo_stats.rounds > 0)
        t.begin_row().cell("halo bytes/round/cut-edge").cell(
            static_cast<double>(result.halo_stats.wire_bytes) /
                (static_cast<double>(result.halo_stats.rounds) *
                 result.halo_stats.cut_slots),
            2);
    }
  }
  t.begin_row().cell("constraint check").cell(verdict);
  if (result.theory_alpha >= 0.0)
    t.begin_row().cell("Dobrushin alpha").cell(result.theory_alpha, 3);
  int spins0 = 0;
  for (int s : result.config) spins0 += s == 0 ? 1 : 0;
  t.begin_row().cell("fraction at spin 0").cell(
      static_cast<double>(spins0) / result.config.size(), 3);
  t.print(std::cout);
  return 0;
}
