// Command-line sampler: pick a graph family, a model, and an algorithm, and
// draw a sample with statistics.  Runs a sensible demo with no arguments.
//
//   $ ./example_sampler_cli [graph] [n] [model] [q_or_lambda] [alg] [seed] [threads] [replicas] [backend] [shards]
//     graph:    cycle | grid | torus | regular4 | regular6
//     model:    coloring | listcoloring | hardcore | ising | dominating
//               (dominating = the weighted dominating-set CSP with activity
//               lambda^|S|, sampled through core::sample_csp /
//               core::sample_many_csp on the compiled CSP runtime)
//     alg:      lm | lg
//     threads:  worker threads (0 = all hardware threads); samples are
//               bit-identical at any thread count
//     replicas: independent samples per call (> 1 batches them through
//               core::sample_many over one shared compiled model)
//     backend:  chain (in-memory reference chains, default) | network (the
//               message-passing LOCAL-model runtime; same bits, plus a
//               communication profile)
//     shards:   partition the network into this many shards exchanging only
//               boundary ("halo") messages (network backend, replicas = 1);
//               the sample is bit-identical at any shard count, and the
//               report adds the partition quality and halo traffic
//   e.g. ./example_sampler_cli torus 16 coloring 14 lm 7 4 8 network
//   e.g. ./example_sampler_cli torus 16 coloring 14 lg 7 1 1 network 4
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/sampler.hpp"
#include "csp/csp_models.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"
#include "graph/properties.hpp"
#include "mrf/models.hpp"
#include "util/table.hpp"

namespace {

using namespace lsample;

graph::GraphPtr build_graph(const std::string& kind, int n, util::Rng& rng) {
  if (kind == "cycle") return graph::make_cycle(n);
  if (kind == "grid") return graph::make_grid(n, n);
  if (kind == "torus") return graph::make_torus(n, n);
  if (kind == "regular4") return graph::make_random_regular(n, 4, rng);
  if (kind == "regular6") return graph::make_random_regular(n, 6, rng);
  throw std::invalid_argument("unknown graph kind: " + kind);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string kind = argc > 1 ? argv[1] : "torus";
  const int n = argc > 2 ? std::atoi(argv[2]) : 12;
  const std::string model = argc > 3 ? argv[3] : "coloring";
  const double param = argc > 4 ? std::atof(argv[4]) : 16.0;
  const std::string alg = argc > 5 ? argv[5] : "lm";
  const std::uint64_t seed = argc > 6
                                 ? static_cast<std::uint64_t>(std::atoll(argv[6]))
                                 : 2024;
  const int threads = argc > 7 ? std::atoi(argv[7]) : 1;
  const int replicas = argc > 8 ? std::atoi(argv[8]) : 1;
  const std::string backend = argc > 9 ? argv[9] : "chain";
  if (backend != "chain" && backend != "network") {
    std::cerr << "unknown backend: " << backend << " (chain | network)\n";
    return 1;
  }
  const int shards = argc > 10 ? std::atoi(argv[10]) : 1;
  if (shards < 1) {
    std::cerr << "shards must be >= 1\n";
    return 1;
  }
  if (shards > 1 && (backend != "network" || replicas > 1)) {
    std::cerr << "shards > 1 needs the network backend and replicas = 1\n";
    return 1;
  }

  util::Rng grng(seed);
  const auto g = build_graph(kind, n, grng);

  core::SamplerOptions opt;
  opt.algorithm = alg == "lg" ? core::Algorithm::luby_glauber
                              : core::Algorithm::local_metropolis;
  opt.backend = backend == "network" ? core::Backend::local_network
                                     : core::Backend::chain;
  opt.seed = seed;
  opt.epsilon = 0.01;
  opt.num_threads = threads;
  opt.num_replicas = replicas;
  opt.num_shards = shards;

  if (replicas > 1) {
    // Batch mode: R independent samples in one facade call, all replicas
    // against one shared compiled model.
    core::BatchSampleResult batch;
    int constraint_ok = -1;  // -1 = not applicable
    if (model == "coloring") {
      batch = core::sample_many_colorings(g, static_cast<int>(param), opt);
      constraint_ok = 0;
      for (const auto& c : batch.configs)
        constraint_ok += graph::is_proper_coloring(*g, c) ? 1 : 0;
    } else if (model == "hardcore") {
      opt.rounds = 400;  // outside guaranteed regimes for large lambda
      batch = core::sample_many(mrf::make_hardcore(g, param), opt);
      constraint_ok = 0;
      for (const auto& c : batch.configs)
        constraint_ok += graph::is_independent_set(*g, c) ? 1 : 0;
    } else if (model == "ising") {
      opt.rounds = 400;
      batch = core::sample_many(mrf::make_ising(g, param), opt);
    } else if (model == "dominating") {
      // Weighted dominating sets — a genuinely multi-ary CSP — batched on
      // the compiled CSP runtime.  The all-chosen set is trivially feasible.
      if (backend != "chain") {
        std::cerr << "dominating supports the chain backend only\n";
        return 1;
      }
      opt.rounds = 300;
      const csp::FactorGraph fg = csp::make_dominating_set(*g, param);
      const csp::Config x0(static_cast<std::size_t>(fg.n()), 1);
      batch = core::sample_many_csp(fg, x0, opt);
      constraint_ok = batch.feasible_count;  // w > 0 iff S is dominating
    } else {
      std::cerr << "replicas > 1 supports coloring | hardcore | ising | "
                   "dominating\n";
      return 1;
    }
    double spins0 = 0;
    for (const auto& c : batch.configs)
      for (int s : c) spins0 += s == 0 ? 1 : 0;
    util::Table bt({"field", "value"});
    bt.begin_row().cell("graph").cell(
        kind + " (n=" + std::to_string(g->num_vertices()) +
        ", Delta=" + std::to_string(g->max_degree()) + ")");
    bt.begin_row().cell("model").cell(model);
    bt.begin_row().cell("replicas").cell(replicas);
    bt.begin_row().cell("rounds each").cell(batch.rounds);
    bt.begin_row().cell("backend").cell(backend);
    bt.begin_row().cell("threads").cell(threads);
    bt.begin_row().cell("feasible replicas").cell(batch.feasible_count);
    if (opt.backend == core::Backend::local_network) {
      bt.begin_row().cell("simulated rounds (all replicas)").cell(
          batch.message_stats.rounds);
      bt.begin_row().cell("messages").cell(batch.message_stats.messages);
      bt.begin_row().cell("total bits").cell(batch.message_stats.bits);
    }
    if (constraint_ok >= 0)
      bt.begin_row().cell("constraint check").cell(
          std::to_string(constraint_ok) + "/" + std::to_string(replicas) +
          " ok");
    if (batch.theory_alpha >= 0.0)
      bt.begin_row().cell("Dobrushin alpha").cell(batch.theory_alpha, 3);
    bt.begin_row().cell("fraction at spin 0").cell(
        spins0 / (static_cast<double>(replicas) * g->num_vertices()), 3);
    bt.print(std::cout);
    return 0;
  }

  core::SampleResult result;
  std::string verdict;
  if (model == "coloring") {
    result = core::sample_coloring(g, static_cast<int>(param), opt);
    verdict = graph::is_proper_coloring(*g, result.config) ? "proper" : "IMPROPER";
  } else if (model == "listcoloring") {
    // Random lists of size param out of 2*param colors.
    const int q = 2 * static_cast<int>(param);
    std::vector<std::vector<int>> lists(
        static_cast<std::size_t>(g->num_vertices()));
    for (auto& list : lists) {
      while (static_cast<int>(list.size()) < static_cast<int>(param)) {
        const int c = grng.uniform_int(q);
        bool seen = false;
        for (int x : list) seen = seen || x == c;
        if (!seen) list.push_back(c);
      }
    }
    result = core::sample_list_coloring(g, q, lists, opt);
    verdict = graph::is_proper_coloring(*g, result.config) ? "proper" : "IMPROPER";
  } else if (model == "hardcore") {
    opt.rounds = 400;  // outside guaranteed regimes for large lambda
    result = core::sample_hardcore(g, param, opt);
    verdict = graph::is_independent_set(*g, result.config) ? "independent" : "VIOLATED";
  } else if (model == "ising") {
    const mrf::Mrf m = mrf::make_ising(g, param);
    opt.rounds = 400;
    result = core::sample_mrf(m, opt);
    verdict = "n/a";
  } else if (model == "dominating") {
    if (backend != "chain") {
      std::cerr << "dominating supports the chain backend only\n";
      return 1;
    }
    opt.rounds = 300;
    const csp::FactorGraph fg = csp::make_dominating_set(*g, param);
    const csp::Config x0(static_cast<std::size_t>(fg.n()), 1);
    result = core::sample_csp(fg, x0, opt);
    verdict = result.feasible ? "dominating" : "VIOLATED";
  } else {
    std::cerr << "unknown model: " << model << "\n";
    return 1;
  }

  util::Table t({"field", "value"});
  t.begin_row().cell("graph").cell(kind + " (n=" + std::to_string(g->num_vertices()) +
                                   ", Delta=" + std::to_string(g->max_degree()) + ")");
  t.begin_row().cell("model").cell(model);
  t.begin_row().cell("algorithm").cell(
      opt.algorithm == core::Algorithm::luby_glauber ? "LubyGlauber"
                                                     : "LocalMetropolis");
  t.begin_row().cell("backend").cell(backend);
  t.begin_row().cell("rounds").cell(result.rounds);
  t.begin_row().cell("threads").cell(threads);
  t.begin_row().cell("feasible").cell(result.feasible ? "yes" : "no");
  if (opt.backend == core::Backend::local_network) {
    t.begin_row().cell("simulated rounds").cell(result.message_stats.rounds);
    t.begin_row().cell("messages").cell(result.message_stats.messages);
    t.begin_row().cell("total bits").cell(result.message_stats.bits);
    if (result.message_stats.messages > 0)  // edgeless graphs send nothing
      t.begin_row().cell("bits/message").cell(
          static_cast<std::int64_t>(result.message_stats.bits /
                                    result.message_stats.messages));
    if (shards > 1) {
      // The facade partitions the same way (BFS order, greedy refinement),
      // so this quality report describes the shards the sample ran on.
      graph::PartitionOptions popt;
      popt.num_shards = shards;
      const graph::Partition part = graph::make_partition(*g, popt);
      t.begin_row().cell("partition").cell(
          graph::describe(graph::partition_quality(*g, part)));
      t.begin_row().cell("halo messages").cell(result.halo_stats.halo_messages);
      t.begin_row().cell("halo wire bytes").cell(result.halo_stats.wire_bytes);
      if (result.halo_stats.cut_slots > 0 && result.halo_stats.rounds > 0)
        t.begin_row().cell("halo bytes/round/cut-edge").cell(
            static_cast<double>(result.halo_stats.wire_bytes) /
                (static_cast<double>(result.halo_stats.rounds) *
                 result.halo_stats.cut_slots),
            2);
    }
  }
  t.begin_row().cell("constraint check").cell(verdict);
  if (result.theory_alpha >= 0.0)
    t.begin_row().cell("Dobrushin alpha").cell(result.theory_alpha, 3);
  int spins0 = 0;
  for (int s : result.config) spins0 += s == 0 ? 1 : 0;
  t.begin_row().cell("fraction at spin 0").cell(
      static_cast<double>(spins0) / result.config.size(), 3);
  t.print(std::cout);
  return 0;
}
