// Beyond pairwise MRFs: sample weighted dominating sets — a genuinely
// multi-ary local CSP (one cover constraint per inclusive neighborhood,
// §2.2) — with the CSP generalizations of both algorithms.
//
//   $ ./example_csp_dominating_set
#include <iostream>
#include <memory>

#include "csp/csp_chains.hpp"
#include "csp/csp_models.hpp"
#include "graph/generators.hpp"
#include "util/table.hpp"

int main() {
  using namespace lsample;

  const auto g = graph::make_grid(8, 8);
  // lambda < 1 biases toward *small* dominating sets.
  util::Table t({"lambda", "chain", "mean |S|", "min |S| seen"});
  for (double lambda : {0.3, 1.0}) {
    const csp::FactorGraph fg = csp::make_dominating_set(*g, lambda);
    // All runs of both chains share one compiled view of this model.
    const auto cfg = std::make_shared<const csp::CompiledFactorGraph>(fg);
    for (const std::string which : {"LubyGlauber", "LocalMetropolis"}) {
      double total = 0.0;
      int best = fg.n();
      const int runs = 60;
      for (int r = 0; r < runs; ++r) {
        csp::Config x(static_cast<std::size_t>(fg.n()), 1);
        if (which == "LubyGlauber") {
          csp::CspLubyGlauberChain chain(cfg,
                                         7 + static_cast<std::uint64_t>(r));
          for (int s = 0; s < 500; ++s) chain.step(x, s);
        } else {
          csp::CspLocalMetropolisChain chain(cfg,
                                             7 + static_cast<std::uint64_t>(r));
          for (int s = 0; s < 200; ++s) chain.step(x, s);
        }
        int size = 0;
        for (int s : x) size += s;
        total += size;
        best = std::min(best, size);
      }
      t.begin_row()
          .cell(lambda, 1)
          .cell(which)
          .cell(total / runs, 1)
          .cell(best);
    }
  }
  t.print(std::cout);
  std::cout << "the Luby step runs on the conflict graph (strongly "
               "independent updates); LocalMetropolis filters each cover "
               "constraint with 2^k - 1 mixed factors (remarks in Sections 3 "
               "and 4 of the paper).\n";
  return 0;
}
