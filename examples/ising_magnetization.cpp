// Physics scenario: the Ising model on a torus, sampled distributively with
// LubyGlauber across a temperature sweep.  The absolute-magnetization curve
// rises sharply near the critical coupling beta_c = ln(1+sqrt(2))/2 ~ 0.44
// of the 2D Ising model.
//
//   $ ./example_ising_magnetization
#include <cmath>
#include <iostream>

#include "chains/chain.hpp"
#include "chains/init.hpp"
#include "chains/luby_glauber.hpp"
#include "graph/generators.hpp"
#include "mrf/models.hpp"
#include "util/table.hpp"

int main() {
  using namespace lsample;

  const int side = 24;
  const auto g = graph::make_torus(side, side);
  const int n = g->num_vertices();

  util::Table t({"beta", "E |magnetization|", "regime"});
  for (double beta : {0.1, 0.25, 0.35, 0.44, 0.55, 0.8}) {
    const mrf::Mrf model = mrf::make_ising(g, beta);
    double mag_sum = 0.0;
    const int samples = 8;
    for (int s = 0; s < samples; ++s) {
      chains::LubyGlauberChain chain(model,
                                     10 + static_cast<std::uint64_t>(s));
      mrf::Config x = chains::random_config(model, 77 + s);
      chains::run(chain, x, 0, 800);
      double mag = 0.0;
      for (int spin : x) mag += spin == 1 ? 1.0 : -1.0;
      mag_sum += std::abs(mag) / n;
    }
    const double m = mag_sum / samples;
    t.begin_row().cell(beta, 2).cell(m, 3).cell(
        beta < 0.44 ? "disordered" : "ordered");
  }
  t.print(std::cout);
  std::cout << "2D Ising critical coupling beta_c = ln(1+sqrt 2)/2 ~ 0.4407; "
               "|m| should jump across it.\n";
  return 0;
}
