// Quickstart: sample an approximately uniform proper coloring of a grid with
// the high-level API, using both of the paper's algorithms.
//
//   $ ./example_quickstart
#include <iostream>

#include "core/sampler.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"

int main() {
  using namespace lsample;

  // A 12x12 grid network (n = 144, Delta = 4).
  const auto g = graph::make_grid(12, 12);
  const int q = 16;  // q > (2+sqrt 2)*Delta: both theorems apply

  core::SamplerOptions options;
  options.epsilon = 0.01;
  options.seed = 2024;

  // Algorithm 2 (LocalMetropolis): O(log(n/eps)) rounds.
  options.algorithm = core::Algorithm::local_metropolis;
  const auto lm = core::sample_coloring(g, q, options);
  std::cout << "LocalMetropolis: " << lm.rounds << " rounds, proper = "
            << graph::is_proper_coloring(*g, lm.config) << "\n";

  // Algorithm 1 (LubyGlauber): O(Delta log(n/eps)) rounds.
  options.algorithm = core::Algorithm::luby_glauber;
  const auto lg = core::sample_coloring(g, q, options);
  std::cout << "LubyGlauber:     " << lg.rounds
            << " rounds (Dobrushin alpha = " << lg.theory_alpha
            << "), proper = " << graph::is_proper_coloring(*g, lg.config)
            << "\n";

  // The same LubyGlauber sample, drawn by message-passing node programs in
  // the LOCAL-model simulator, then again with the network partitioned into
  // 4 shards exchanging only serialized boundary ("halo") messages — both
  // bit-identical to the chain backend.
  options.backend = core::Backend::local_network;
  const auto lg_net = core::sample_coloring(g, q, options);
  options.num_shards = 4;
  const auto lg_sharded = core::sample_coloring(g, q, options);
  std::cout << "LOCAL network:   " << lg_net.message_stats.messages
            << " messages; sharded == unsharded == chain: "
            << (lg_sharded.config == lg_net.config &&
                lg_net.config == lg.config)
            << ", halo bytes = " << lg_sharded.halo_stats.wire_bytes << "\n";
  options.backend = core::Backend::chain;
  options.num_shards = 1;

  // Adaptive stopping: pay measured mixing instead of the worst-case theory
  // budget.  stop=auto picks a rule per model class (grand-coupling
  // coalescence here); the budget stays as a hard cap.
  options.stop = chains::StopRule::automatic;
  const auto ad = core::sample_coloring(g, q, options);
  std::cout << "stop=auto:       " << ad.rounds_used << " of "
            << ad.budget_rounds << " budgeted rounds (rule "
            << chains::stop_rule_name(ad.stop_rule)
            << ", stopped early = " << ad.stopped_early << ")\n";
  options.stop = chains::StopRule::fixed;

  // Print a corner of the sampled coloring.
  std::cout << "sample (top-left 6x6 corner):\n";
  for (int r = 0; r < 6; ++r) {
    for (int c = 0; c < 6; ++c)
      std::cout << lm.config[static_cast<std::size_t>(r * 12 + c)] << '\t';
    std::cout << '\n';
  }
  return 0;
}
