#include "inference/exact.hpp"

#include <cmath>

#include "util/require.hpp"
#include "util/summary.hpp"

namespace lsample::inference {

namespace {

double config_weight(const mrf::Mrf& m, const mrf::Config& x) {
  double w = 1.0;
  for (int v = 0; v < m.n() && w > 0.0; ++v)
    w *= m.vertex_activity(v)[static_cast<std::size_t>(
        x[static_cast<std::size_t>(v)])];
  for (int e = 0; e < m.g().num_edges() && w > 0.0; ++e) {
    const graph::Edge& ed = m.g().edge(e);
    w *= m.edge_activity(e).at(x[static_cast<std::size_t>(ed.u)],
                               x[static_cast<std::size_t>(ed.v)]);
  }
  return w;
}

}  // namespace

std::vector<double> weight_vector(const mrf::Mrf& m, const StateSpace& ss) {
  LS_REQUIRE(ss.n() == m.n() && ss.q() == m.q(),
             "state space must match the model");
  std::vector<double> w(static_cast<std::size_t>(ss.size()));
  mrf::Config x;
  for (std::int64_t i = 0; i < ss.size(); ++i) {
    ss.decode_into(i, x);
    w[static_cast<std::size_t>(i)] = config_weight(m, x);
  }
  return w;
}

std::vector<double> gibbs_distribution(const mrf::Mrf& m,
                                       const StateSpace& ss) {
  auto mu = weight_vector(m, ss);
  const double z = util::normalize(mu);
  LS_REQUIRE(z > 0.0, "partition function is zero: no feasible configuration");
  return mu;
}

double partition_function(const mrf::Mrf& m, const StateSpace& ss) {
  const auto w = weight_vector(m, ss);
  double z = 0.0;
  for (double x : w) z += x;
  return z;
}

double stationarity_error(const DenseMatrix& p, const std::vector<double>& mu) {
  const auto mup = p.left_multiply(mu);
  double err = 0.0;
  for (std::size_t i = 0; i < mu.size(); ++i)
    err += std::abs(mup[i] - mu[i]);
  return err;
}

double detailed_balance_error(const DenseMatrix& p,
                              const std::vector<double>& mu) {
  double worst = 0.0;
  for (std::int64_t i = 0; i < p.size(); ++i)
    for (std::int64_t j = 0; j < p.size(); ++j) {
      const double flow_ij = mu[static_cast<std::size_t>(i)] * p.at(i, j);
      const double flow_ji = mu[static_cast<std::size_t>(j)] * p.at(j, i);
      worst = std::max(worst, std::abs(flow_ij - flow_ji));
    }
  return worst;
}

namespace {

double row_tv(const DenseMatrix& pt, std::int64_t row,
              const std::vector<double>& mu) {
  double d = 0.0;
  for (std::int64_t j = 0; j < pt.size(); ++j)
    d += std::abs(pt.at(row, j) - mu[static_cast<std::size_t>(j)]);
  return 0.5 * d;
}

DenseMatrix matrix_power(const DenseMatrix& p, std::int64_t t) {
  LS_REQUIRE(t >= 1, "power must be >= 1");
  // Square-and-multiply.
  DenseMatrix result(p.size());
  bool have_result = false;
  DenseMatrix base = p;
  while (t > 0) {
    if (t & 1) {
      result = have_result ? result.multiply(base) : base;
      have_result = true;
    }
    t >>= 1;
    if (t > 0) base = base.multiply(base);
  }
  return result;
}

}  // namespace

double worst_case_tv(const DenseMatrix& p, const std::vector<double>& mu,
                     std::int64_t t) {
  LS_REQUIRE(static_cast<std::int64_t>(mu.size()) == p.size(),
             "size mismatch");
  const DenseMatrix pt = matrix_power(p, t);
  double worst = 0.0;
  for (std::int64_t i = 0; i < p.size(); ++i) {
    if (mu[static_cast<std::size_t>(i)] <= 0.0) continue;
    worst = std::max(worst, row_tv(pt, i, mu));
  }
  return worst;
}

double tv_from_start(const DenseMatrix& p, const std::vector<double>& mu,
                     std::int64_t start_index, std::int64_t t) {
  LS_REQUIRE(start_index >= 0 && start_index < p.size(),
             "start index out of range");
  std::vector<double> dist(static_cast<std::size_t>(p.size()), 0.0);
  dist[static_cast<std::size_t>(start_index)] = 1.0;
  for (std::int64_t s = 0; s < t; ++s) dist = p.left_multiply(dist);
  double d = 0.0;
  for (std::size_t j = 0; j < dist.size(); ++j)
    d += std::abs(dist[j] - mu[j]);
  return 0.5 * d;
}

std::int64_t exact_mixing_time(const DenseMatrix& p,
                               const std::vector<double>& mu, double eps,
                               std::int64_t t_max) {
  // Propagate all feasible point masses jointly by repeated multiplication.
  std::vector<std::int64_t> starts;
  for (std::int64_t i = 0; i < p.size(); ++i)
    if (mu[static_cast<std::size_t>(i)] > 0.0) starts.push_back(i);
  DenseMatrix pt = p;
  for (std::int64_t t = 1; t <= t_max; ++t) {
    double worst = 0.0;
    for (std::int64_t i : starts) worst = std::max(worst, row_tv(pt, i, mu));
    if (worst <= eps) return t;
    if (t < t_max) pt = pt.multiply(p);
  }
  return t_max + 1;
}

double min_feasible_self_loop(const DenseMatrix& p,
                              const std::vector<double>& mu) {
  double worst = 1.0;
  for (std::int64_t i = 0; i < p.size(); ++i)
    if (mu[static_cast<std::size_t>(i)] > 0.0)
      worst = std::min(worst, p.at(i, i));
  return worst;
}

double feasible_escape_mass(const DenseMatrix& p,
                            const std::vector<double>& mu) {
  double worst = 0.0;
  for (std::int64_t i = 0; i < p.size(); ++i) {
    if (mu[static_cast<std::size_t>(i)] <= 0.0) continue;
    double mass = 0.0;
    for (std::int64_t j = 0; j < p.size(); ++j)
      if (mu[static_cast<std::size_t>(j)] <= 0.0) mass += p.at(i, j);
    worst = std::max(worst, mass);
  }
  return worst;
}

}  // namespace lsample::inference
