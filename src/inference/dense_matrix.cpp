#include "inference/dense_matrix.hpp"

#include <cmath>

#include "util/require.hpp"

namespace lsample::inference {

DenseMatrix::DenseMatrix(std::int64_t n) : n_(n) {
  LS_REQUIRE(n >= 1, "matrix size must be positive");
  LS_REQUIRE(n <= (1 << 14), "dense matrix too large; shrink the model");
  data_.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0.0);
}

DenseMatrix DenseMatrix::multiply(const DenseMatrix& other) const {
  LS_REQUIRE(n_ == other.n_, "size mismatch");
  DenseMatrix out(n_);
  for (std::int64_t i = 0; i < n_; ++i)
    for (std::int64_t k = 0; k < n_; ++k) {
      const double a = at(i, k);
      if (a == 0.0) continue;
      for (std::int64_t j = 0; j < n_; ++j) out.at(i, j) += a * other.at(k, j);
    }
  return out;
}

std::vector<double> DenseMatrix::left_multiply(
    const std::vector<double>& v) const {
  LS_REQUIRE(static_cast<std::int64_t>(v.size()) == n_, "size mismatch");
  std::vector<double> out(static_cast<std::size_t>(n_), 0.0);
  for (std::int64_t i = 0; i < n_; ++i) {
    const double vi = v[static_cast<std::size_t>(i)];
    if (vi == 0.0) continue;
    for (std::int64_t j = 0; j < n_; ++j)
      out[static_cast<std::size_t>(j)] += vi * at(i, j);
  }
  return out;
}

double DenseMatrix::row_sum_error() const noexcept {
  double worst = 0.0;
  for (std::int64_t i = 0; i < n_; ++i) {
    double s = 0.0;
    for (std::int64_t j = 0; j < n_; ++j) s += at(i, j);
    worst = std::max(worst, std::abs(s - 1.0));
  }
  return worst;
}

}  // namespace lsample::inference
