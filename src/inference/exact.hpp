// Exact Gibbs distributions and exact chain analysis on small models.
//
// These routines are the ground truth against which the samplers are tested:
// Proposition 3.1 and Theorem 4.1 (reversibility / stationarity) are verified
// with zero statistical error by building the full transition matrices.
#pragma once

#include <vector>

#include "inference/dense_matrix.hpp"
#include "inference/state_space.hpp"
#include "mrf/mrf.hpp"

namespace lsample::inference {

/// Unnormalized weights of every configuration, indexed by StateSpace code.
[[nodiscard]] std::vector<double> weight_vector(const mrf::Mrf& m,
                                                const StateSpace& ss);

/// The Gibbs distribution µ (normalized weight vector).  Throws if Z = 0.
[[nodiscard]] std::vector<double> gibbs_distribution(const mrf::Mrf& m,
                                                     const StateSpace& ss);

/// Partition function Z (sum of weights).
[[nodiscard]] double partition_function(const mrf::Mrf& m,
                                        const StateSpace& ss);

/// ||µP - µ||_1: zero iff µ is stationary for P.
[[nodiscard]] double stationarity_error(const DenseMatrix& p,
                                        const std::vector<double>& mu);

/// max |µ(x)P(x,y) - µ(y)P(y,x)|: zero iff P is reversible w.r.t. µ.
[[nodiscard]] double detailed_balance_error(const DenseMatrix& p,
                                            const std::vector<double>& mu);

/// TV distance between the t-step distribution from the worst feasible start
/// and µ: max_{x: µ(x)>0} d_TV(e_x P^t, µ).
[[nodiscard]] double worst_case_tv(const DenseMatrix& p,
                                   const std::vector<double>& mu,
                                   std::int64_t t);

/// TV distance of the t-step distribution started from a point mass at x0.
[[nodiscard]] double tv_from_start(const DenseMatrix& p,
                                   const std::vector<double>& mu,
                                   std::int64_t start_index, std::int64_t t);

/// Smallest t <= t_max with worst_case_tv(P, µ, t) <= eps; returns t_max+1
/// if not reached.  (The exact mixing time tau(eps) on small models.)
[[nodiscard]] std::int64_t exact_mixing_time(const DenseMatrix& p,
                                             const std::vector<double>& mu,
                                             double eps, std::int64_t t_max);

/// min_{x feasible} P(x,x) — positive for aperiodicity checks.
[[nodiscard]] double min_feasible_self_loop(const DenseMatrix& p,
                                            const std::vector<double>& mu);

/// max over feasible x of sum of P(x, y) over infeasible y — zero iff the
/// chain never leaves the feasible region (absorption direction 1).
[[nodiscard]] double feasible_escape_mass(const DenseMatrix& p,
                                          const std::vector<double>& mu);

}  // namespace lsample::inference
