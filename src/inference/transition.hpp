// Exact transition matrices of every chain in the library, for small models.
//
// These matrices make the paper's structural claims checkable with zero
// statistical error:
//   * Proposition 3.1 — LubyGlauber is reversible w.r.t. the Gibbs
//     distribution (the Luby step is integrated exactly by enumerating all
//     n! priority orderings);
//   * Theorem 4.1   — LocalMetropolis is reversible w.r.t. the Gibbs
//     distribution (edge coins are integrated exactly; for hard-constraint
//     models the checks are deterministic, for soft models all coin subsets
//     are enumerated);
//   * the "third filtering rule" of §4.2 is necessary — the two-rule variant
//     provably breaks detailed balance, which tests assert numerically.
#pragma once

#include "inference/dense_matrix.hpp"
#include "inference/state_space.hpp"
#include "mrf/mrf.hpp"

namespace lsample::inference {

/// Single-site heat-bath Glauber: P = (1/n) sum_v P_v.
[[nodiscard]] DenseMatrix glauber_transition(const mrf::Mrf& m,
                                             const StateSpace& ss);

/// Single-site Metropolis with proposal ~ b_v and filter prod Ã(c, X_u).
[[nodiscard]] DenseMatrix metropolis_transition(const mrf::Mrf& m,
                                                const StateSpace& ss);

/// Systematic scan: P = P_0 P_1 ... P_{n-1}.
[[nodiscard]] DenseMatrix scan_transition(const mrf::Mrf& m,
                                          const StateSpace& ss);

/// LubyGlauber (Algorithm 1) with the Luby-step set distribution computed
/// exactly over all n! priority orderings.  Requires n <= 9.
[[nodiscard]] DenseMatrix luby_glauber_transition(const mrf::Mrf& m,
                                                  const StateSpace& ss);

/// Chromatic-scheduler parallel Glauber: uniform random greedy color class,
/// all its vertices resampled in parallel.
[[nodiscard]] DenseMatrix chromatic_transition(const mrf::Mrf& m,
                                               const StateSpace& ss);

/// LocalMetropolis (Algorithm 2), exact in proposals and edge coins.
/// Enumerates all q^n proposals; coin subsets only over edges whose pass
/// probability is strictly between 0 and 1 (at most max_uncertain_edges).
[[nodiscard]] DenseMatrix local_metropolis_transition(
    const mrf::Mrf& m, const StateSpace& ss, int max_uncertain_edges = 20);

/// Fully synchronous parallel Glauber (all vertices resample at once from
/// the previous state) — the naive parallelization whose stationary
/// distribution is NOT the Gibbs distribution in general; negative control
/// motivating the Luby step.  Requires n <= 12.
[[nodiscard]] DenseMatrix synchronous_glauber_transition(const mrf::Mrf& m,
                                                         const StateSpace& ss);

/// The two-rule negative control (drops the third filter rule); hard
/// constraints only.
[[nodiscard]] DenseMatrix local_metropolis_two_rule_transition(
    const mrf::Mrf& m, const StateSpace& ss);

}  // namespace lsample::inference
