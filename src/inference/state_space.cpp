#include "inference/state_space.hpp"

#include "util/require.hpp"

namespace lsample::inference {

StateSpace::StateSpace(int n, int q, std::int64_t max_states) : n_(n), q_(q) {
  LS_REQUIRE(n >= 1 && q >= 2, "need n >= 1 and q >= 2");
  size_ = 1;
  pow_.resize(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    pow_[static_cast<std::size_t>(v)] = size_;
    LS_REQUIRE(size_ <= max_states / q,
               "state space exceeds max_states; use a smaller model");
    size_ *= q;
  }
}

std::int64_t StateSpace::encode(const mrf::Config& x) const {
  LS_REQUIRE(static_cast<int>(x.size()) == n_, "config size mismatch");
  std::int64_t idx = 0;
  for (int v = 0; v < n_; ++v) {
    LS_REQUIRE(x[static_cast<std::size_t>(v)] >= 0 &&
                   x[static_cast<std::size_t>(v)] < q_,
               "spin out of range");
    idx += pow_[static_cast<std::size_t>(v)] * x[static_cast<std::size_t>(v)];
  }
  return idx;
}

mrf::Config StateSpace::decode(std::int64_t index) const {
  mrf::Config x(static_cast<std::size_t>(n_));
  decode_into(index, x);
  return x;
}

void StateSpace::decode_into(std::int64_t index, mrf::Config& x) const {
  LS_REQUIRE(index >= 0 && index < size_, "state index out of range");
  x.resize(static_cast<std::size_t>(n_));
  for (int v = 0; v < n_; ++v) {
    x[static_cast<std::size_t>(v)] = static_cast<int>(index % q_);
    index /= q_;
  }
}

std::int64_t StateSpace::with_spin(std::int64_t base, int v, int s) const {
  LS_REQUIRE(v >= 0 && v < n_ && s >= 0 && s < q_, "coordinates out of range");
  const int old = spin_of(base, v);
  return base + pow_[static_cast<std::size_t>(v)] *
                    static_cast<std::int64_t>(s - old);
}

int StateSpace::spin_of(std::int64_t index, int v) const {
  LS_REQUIRE(index >= 0 && index < size_ && v >= 0 && v < n_,
             "coordinates out of range");
  return static_cast<int>((index / pow_[static_cast<std::size_t>(v)]) % q_);
}

}  // namespace lsample::inference
