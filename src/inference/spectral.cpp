#include "inference/spectral.hpp"

#include <cmath>

#include "inference/exact.hpp"
#include "util/require.hpp"

namespace lsample::inference {

SpectralSummary spectral_summary(const DenseMatrix& p,
                                 const std::vector<double>& mu,
                                 int iterations) {
  LS_REQUIRE(static_cast<std::int64_t>(mu.size()) == p.size(),
             "size mismatch");
  LS_REQUIRE(detailed_balance_error(p, mu) < 1e-8,
             "spectral_summary requires a mu-reversible chain");

  // Restrict to the support of mu.
  std::vector<std::int64_t> support;
  for (std::int64_t i = 0; i < p.size(); ++i)
    if (mu[static_cast<std::size_t>(i)] > 0.0) support.push_back(i);
  const std::size_t k = support.size();
  LS_REQUIRE(k >= 2, "need at least two feasible states");

  // Symmetrized kernel S(a,b) = sqrt(mu_a/mu_b) P(a,b) on the support.
  std::vector<double> s(k * k);
  std::vector<double> sqrt_mu(k);
  for (std::size_t a = 0; a < k; ++a)
    sqrt_mu[a] = std::sqrt(mu[static_cast<std::size_t>(support[a])]);
  for (std::size_t a = 0; a < k; ++a)
    for (std::size_t b = 0; b < k; ++b)
      s[a * k + b] =
          sqrt_mu[a] / sqrt_mu[b] * p.at(support[a], support[b]);

  // Power iteration with deflation of the top eigenvector sqrt(mu)
  // (eigenvalue 1).  Converges to |lambda_2| of S.
  std::vector<double> v(k);
  for (std::size_t a = 0; a < k; ++a)
    v[a] = (a % 2 == 0 ? 1.0 : -1.0) + 1e-3 * static_cast<double>(a % 7);
  std::vector<double> w(k);
  double lambda = 0.0;
  for (int it = 0; it < iterations; ++it) {
    // Deflate: v -= <v, sqrt_mu> sqrt_mu  (sqrt_mu is unit in l2 since
    // sum mu = 1 on the support).
    double dot = 0.0;
    for (std::size_t a = 0; a < k; ++a) dot += v[a] * sqrt_mu[a];
    for (std::size_t a = 0; a < k; ++a) v[a] -= dot * sqrt_mu[a];
    // w = S v.
    for (std::size_t a = 0; a < k; ++a) {
      double acc = 0.0;
      for (std::size_t b = 0; b < k; ++b) acc += s[a * k + b] * v[b];
      w[a] = acc;
    }
    double norm_v = 0.0;
    double norm_w = 0.0;
    for (std::size_t a = 0; a < k; ++a) {
      norm_v += v[a] * v[a];
      norm_w += w[a] * w[a];
    }
    if (norm_v <= 0.0 || norm_w <= 0.0) {
      lambda = 0.0;
      break;
    }
    lambda = std::sqrt(norm_w / norm_v);
    const double inv = 1.0 / std::sqrt(norm_w);
    for (std::size_t a = 0; a < k; ++a) v[a] = w[a] * inv;
  }

  SpectralSummary out;
  out.lambda_star = std::min(lambda, 1.0);
  out.gap = 1.0 - out.lambda_star;
  out.relaxation_time = out.gap > 0.0 ? 1.0 / out.gap : 0.0;
  return out;
}

double spectral_mixing_upper_bound(const SpectralSummary& s,
                                   const std::vector<double>& mu,
                                   double eps) {
  LS_REQUIRE(s.gap > 0.0, "zero spectral gap");
  LS_REQUIRE(eps > 0.0 && eps < 1.0, "epsilon in (0,1)");
  double mu_min = 1.0;
  for (double m : mu)
    if (m > 0.0) mu_min = std::min(mu_min, m);
  return std::log(1.0 / (eps * mu_min)) / s.gap;
}

}  // namespace lsample::inference
