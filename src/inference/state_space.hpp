// Enumeration of the configuration space Omega = [q]^V for exact analysis of
// small models (exact Gibbs vectors, exact chain transition matrices).
#pragma once

#include <cstdint>
#include <vector>

#include "mrf/mrf.hpp"

namespace lsample::inference {

class StateSpace {
 public:
  /// Throws if q^n exceeds max_states (guards accidental blow-ups).
  StateSpace(int n, int q, std::int64_t max_states = 1 << 20);

  [[nodiscard]] int n() const noexcept { return n_; }
  [[nodiscard]] int q() const noexcept { return q_; }
  [[nodiscard]] std::int64_t size() const noexcept { return size_; }

  [[nodiscard]] std::int64_t encode(const mrf::Config& x) const;
  [[nodiscard]] mrf::Config decode(std::int64_t index) const;
  void decode_into(std::int64_t index, mrf::Config& x) const;

  /// Index of the state equal to `base` except spin s at vertex v.
  [[nodiscard]] std::int64_t with_spin(std::int64_t base, int v, int s) const;

  /// Spin of vertex v in the encoded state.
  [[nodiscard]] int spin_of(std::int64_t index, int v) const;

 private:
  int n_;
  int q_;
  std::int64_t size_;
  std::vector<std::int64_t> pow_;  // pow_[v] = q^v
};

}  // namespace lsample::inference
