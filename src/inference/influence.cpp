#include "inference/influence.hpp"

#include <algorithm>

#include "util/require.hpp"
#include "util/summary.hpp"

namespace lsample::inference {

namespace {

std::vector<double> heat_bath_marginal(const mrf::Mrf& m, int i,
                                       const mrf::Config& x) {
  std::vector<double> w;
  m.marginal_weights(i, x, w);
  util::normalize(w);
  return w;
}

}  // namespace

std::vector<double> influence_matrix(const mrf::Mrf& m, const StateSpace& ss) {
  LS_REQUIRE(ss.n() == m.n() && ss.q() == m.q(), "state space mismatch");
  const int n = m.n();
  std::vector<double> rho(static_cast<std::size_t>(n) *
                              static_cast<std::size_t>(n),
                          0.0);
  mrf::Config sigma;
  mrf::Config tau;
  for (std::int64_t si = 0; si < ss.size(); ++si) {
    ss.decode_into(si, sigma);
    if (!m.feasible(sigma)) continue;
    for (int j = 0; j < n; ++j) {
      tau = sigma;
      for (int s = 0; s < m.q(); ++s) {
        if (s == sigma[static_cast<std::size_t>(j)]) continue;
        tau[static_cast<std::size_t>(j)] = s;
        if (!m.feasible(tau)) continue;
        for (int i = 0; i < n; ++i) {
          if (i == j) continue;
          const auto mi_sigma = heat_bath_marginal(m, i, sigma);
          const auto mi_tau = heat_bath_marginal(m, i, tau);
          const double d = util::total_variation(mi_sigma, mi_tau);
          auto& cell = rho[static_cast<std::size_t>(i) *
                               static_cast<std::size_t>(n) +
                           static_cast<std::size_t>(j)];
          cell = std::max(cell, d);
        }
      }
      tau[static_cast<std::size_t>(j)] = sigma[static_cast<std::size_t>(j)];
    }
  }
  return rho;
}

double total_influence(const std::vector<double>& rho, int n) {
  LS_REQUIRE(rho.size() == static_cast<std::size_t>(n) *
                               static_cast<std::size_t>(n),
             "matrix size mismatch");
  double alpha = 0.0;
  for (int i = 0; i < n; ++i) {
    double row = 0.0;
    for (int j = 0; j < n; ++j)
      row += rho[static_cast<std::size_t>(i) * static_cast<std::size_t>(n) +
                 static_cast<std::size_t>(j)];
    alpha = std::max(alpha, row);
  }
  return alpha;
}

double coloring_total_influence(const graph::Graph& g,
                                const std::vector<int>& list_sizes) {
  LS_REQUIRE(static_cast<int>(list_sizes.size()) == g.num_vertices(),
             "one list size per vertex");
  double alpha = 0.0;
  for (int v = 0; v < g.num_vertices(); ++v) {
    const int d = g.degree(v);
    const int qv = list_sizes[static_cast<std::size_t>(v)];
    LS_REQUIRE(qv > d, "need q_v > d_v for the coloring influence bound");
    if (d > 0) alpha = std::max(alpha, static_cast<double>(d) / (qv - d));
  }
  return alpha;
}

double coloring_total_influence(const graph::Graph& g, int q) {
  return coloring_total_influence(
      g, std::vector<int>(static_cast<std::size_t>(g.num_vertices()), q));
}

}  // namespace lsample::inference
