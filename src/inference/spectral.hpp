// Spectral analysis of reversible chains on small state spaces.
//
// For a chain P reversible w.r.t. mu, the similarity transform
// S = D^{1/2} P D^{-1/2} (D = diag(mu)) is symmetric; its second-largest
// absolute eigenvalue lambda_* gives the relaxation time 1/(1-lambda_*) and
// the classic two-sided mixing bounds
//   (lambda_*/(1-lambda_*)) ln(1/2eps)  <=  tau(eps)  <=
//   (1/(1-lambda_*)) ln(1/(eps mu_min)).
// Used by tests to cross-validate the exact mixing times of both parallel
// chains.
#pragma once

#include <vector>

#include "inference/dense_matrix.hpp"

namespace lsample::inference {

struct SpectralSummary {
  double lambda_star = 0.0;  ///< second-largest absolute eigenvalue
  double gap = 0.0;          ///< 1 - lambda_star
  double relaxation_time = 0.0;
};

/// Estimates lambda_* of a mu-reversible chain restricted to the support of
/// mu, by power iteration on the symmetrized kernel after deflating the top
/// eigenvector sqrt(mu).  Requires P reversible w.r.t. mu (checked up to
/// tolerance) and an aperiodic irreducible restriction.
[[nodiscard]] SpectralSummary spectral_summary(const DenseMatrix& p,
                                               const std::vector<double>& mu,
                                               int iterations = 2000);

/// Upper bound tau(eps) <= ln(1/(eps*mu_min)) / gap.
[[nodiscard]] double spectral_mixing_upper_bound(const SpectralSummary& s,
                                                 const std::vector<double>& mu,
                                                 double eps);

}  // namespace lsample::inference
