#include "inference/transition.hpp"

#include <algorithm>
#include <map>
#include <numeric>

#include "graph/properties.hpp"
#include "util/require.hpp"
#include "util/summary.hpp"

namespace lsample::inference {

namespace {

void check_model(const mrf::Mrf& m, const StateSpace& ss) {
  LS_REQUIRE(ss.n() == m.n() && ss.q() == m.q(),
             "state space must match the model");
}

/// Normalized heat-bath marginal at v given the configuration x.  If the
/// marginal is the zero vector (well-definedness assumption of §3 fails at
/// this infeasible state) the chain keeps the current spin, i.e. the update
/// distribution is a point mass at x_v — matching the runtime chains.
std::vector<double> heat_bath_marginal(const mrf::Mrf& m, int v,
                                       const mrf::Config& x) {
  std::vector<double> w;
  m.marginal_weights(v, x, w);
  const double z = util::normalize(w);
  if (z <= 0.0) {
    w.assign(static_cast<std::size_t>(m.q()), 0.0);
    w[static_cast<std::size_t>(x[static_cast<std::size_t>(v)])] = 1.0;
  }
  return w;
}

/// Normalized proposal distribution b̃_v.
std::vector<double> proposal_distribution(const mrf::Mrf& m, int v) {
  const auto b = m.proposal_weights(v);
  std::vector<double> p(b.begin(), b.end());
  const double z = util::normalize(p);
  LS_REQUIRE(z > 0.0, "vertex activity must not be identically zero");
  return p;
}

/// Exact distribution of the Luby-step independent set: each of the n!
/// priority orderings is equally likely; v is selected iff its priority
/// beats every neighbor's.
std::map<std::uint32_t, double> luby_set_distribution(const graph::Graph& g) {
  const int n = g.num_vertices();
  LS_REQUIRE(n <= 9, "exact Luby-step enumeration limited to n <= 9");
  std::vector<int> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  std::map<std::uint32_t, double> dist;
  std::int64_t count = 0;
  do {
    // perm[v] = rank of v; higher rank = higher priority.
    std::uint32_t mask = 0;
    for (int v = 0; v < n; ++v) {
      bool is_max = true;
      for (int u : g.neighbors(v))
        if (perm[static_cast<std::size_t>(u)] >
            perm[static_cast<std::size_t>(v)]) {
          is_max = false;
          break;
        }
      if (is_max) mask |= (1u << v);
    }
    dist[mask] += 1.0;
    ++count;
  } while (std::next_permutation(perm.begin(), perm.end()));
  for (auto& [mask, p] : dist) p /= static_cast<double>(count);
  return dist;
}

/// Adds, for every assignment of spins to the vertices in `mask`, the
/// probability of jointly resampling them (product of heat-bath marginals
/// conditioned on x) times `base_prob` into row `row` of P.
void add_parallel_heat_bath(const mrf::Mrf& m, const StateSpace& ss,
                            const mrf::Config& x, std::int64_t xi,
                            std::uint32_t mask, double base_prob,
                            DenseMatrix& p, std::int64_t row) {
  std::vector<int> sel;
  for (int v = 0; v < m.n(); ++v)
    if (mask & (1u << v)) sel.push_back(v);
  if (sel.empty()) {
    p.at(row, xi) += base_prob;
    return;
  }
  std::vector<std::vector<double>> marg;
  marg.reserve(sel.size());
  for (int v : sel) marg.push_back(heat_bath_marginal(m, v, x));

  std::vector<int> assign(sel.size(), 0);
  while (true) {
    double prob = base_prob;
    std::int64_t target = xi;
    for (std::size_t i = 0; i < sel.size(); ++i) {
      prob *= marg[i][static_cast<std::size_t>(assign[i])];
      target = ss.with_spin(target, sel[i], assign[i]);
    }
    if (prob > 0.0) p.at(row, target) += prob;
    std::size_t i = 0;
    while (i < assign.size() && ++assign[i] == m.q()) assign[i++] = 0;
    if (i == assign.size()) break;
  }
}

}  // namespace

DenseMatrix glauber_transition(const mrf::Mrf& m, const StateSpace& ss) {
  check_model(m, ss);
  DenseMatrix p(ss.size());
  mrf::Config x;
  const double pick = 1.0 / m.n();
  for (std::int64_t xi = 0; xi < ss.size(); ++xi) {
    ss.decode_into(xi, x);
    for (int v = 0; v < m.n(); ++v) {
      const auto marg = heat_bath_marginal(m, v, x);
      for (int c = 0; c < m.q(); ++c)
        if (marg[static_cast<std::size_t>(c)] > 0.0)
          p.at(xi, ss.with_spin(xi, v, c)) +=
              pick * marg[static_cast<std::size_t>(c)];
    }
  }
  return p;
}

DenseMatrix metropolis_transition(const mrf::Mrf& m, const StateSpace& ss) {
  check_model(m, ss);
  DenseMatrix p(ss.size());
  mrf::Config x;
  const double pick = 1.0 / m.n();
  for (std::int64_t xi = 0; xi < ss.size(); ++xi) {
    ss.decode_into(xi, x);
    for (int v = 0; v < m.n(); ++v) {
      const auto prop = proposal_distribution(m, v);
      const auto inc = m.g().incident_edges(v);
      const auto nbr = m.g().neighbors(v);
      for (int c = 0; c < m.q(); ++c) {
        const double pc = prop[static_cast<std::size_t>(c)];
        if (pc <= 0.0) continue;
        double acc = 1.0;
        for (std::size_t i = 0; i < inc.size(); ++i)
          acc *= m.edge_activity(inc[i]).normalized_at(
              c, x[static_cast<std::size_t>(nbr[i])]);
        p.at(xi, ss.with_spin(xi, v, c)) += pick * pc * acc;
        p.at(xi, xi) += pick * pc * (1.0 - acc);
      }
    }
  }
  return p;
}

DenseMatrix scan_transition(const mrf::Mrf& m, const StateSpace& ss) {
  check_model(m, ss);
  // P = P_0 P_1 ... P_{n-1} where P_v resamples only vertex v.
  DenseMatrix result(ss.size());
  bool first = true;
  mrf::Config x;
  for (int v = 0; v < m.n(); ++v) {
    DenseMatrix pv(ss.size());
    for (std::int64_t xi = 0; xi < ss.size(); ++xi) {
      ss.decode_into(xi, x);
      const auto marg = heat_bath_marginal(m, v, x);
      for (int c = 0; c < m.q(); ++c)
        if (marg[static_cast<std::size_t>(c)] > 0.0)
          pv.at(xi, ss.with_spin(xi, v, c)) +=
              marg[static_cast<std::size_t>(c)];
    }
    result = first ? pv : result.multiply(pv);
    first = false;
  }
  return result;
}

DenseMatrix luby_glauber_transition(const mrf::Mrf& m, const StateSpace& ss) {
  check_model(m, ss);
  const auto set_dist = luby_set_distribution(m.g());
  DenseMatrix p(ss.size());
  mrf::Config x;
  for (std::int64_t xi = 0; xi < ss.size(); ++xi) {
    ss.decode_into(xi, x);
    for (const auto& [mask, prob] : set_dist)
      add_parallel_heat_bath(m, ss, x, xi, mask, prob, p, xi);
  }
  return p;
}

DenseMatrix chromatic_transition(const mrf::Mrf& m, const StateSpace& ss) {
  check_model(m, ss);
  const auto class_of = graph::greedy_coloring(m.g());
  const int k = graph::count_distinct(class_of);
  LS_REQUIRE(m.n() <= 30, "chromatic transition limited to n <= 30");
  DenseMatrix p(ss.size());
  mrf::Config x;
  for (std::int64_t xi = 0; xi < ss.size(); ++xi) {
    ss.decode_into(xi, x);
    for (int cls = 0; cls < k; ++cls) {
      std::uint32_t mask = 0;
      for (int v = 0; v < m.n(); ++v)
        if (class_of[static_cast<std::size_t>(v)] == cls) mask |= (1u << v);
      add_parallel_heat_bath(m, ss, x, xi, mask, 1.0 / k, p, xi);
    }
  }
  return p;
}

DenseMatrix local_metropolis_transition(const mrf::Mrf& m,
                                        const StateSpace& ss,
                                        int max_uncertain_edges) {
  check_model(m, ss);
  const int ne = m.g().num_edges();
  LS_REQUIRE(ne <= 30, "LocalMetropolis transition limited to <= 30 edges");
  DenseMatrix p(ss.size());
  mrf::Config x;
  mrf::Config sigma;

  std::vector<std::vector<double>> prop;
  prop.reserve(static_cast<std::size_t>(m.n()));
  for (int v = 0; v < m.n(); ++v) prop.push_back(proposal_distribution(m, v));

  std::vector<double> pass_prob(static_cast<std::size_t>(ne));
  std::vector<int> uncertain;
  std::vector<char> passes(static_cast<std::size_t>(ne));

  for (std::int64_t xi = 0; xi < ss.size(); ++xi) {
    ss.decode_into(xi, x);
    for (std::int64_t si = 0; si < ss.size(); ++si) {
      ss.decode_into(si, sigma);
      double prob_sigma = 1.0;
      for (int v = 0; v < m.n() && prob_sigma > 0.0; ++v)
        prob_sigma *= prop[static_cast<std::size_t>(v)][static_cast<std::size_t>(
            sigma[static_cast<std::size_t>(v)])];
      if (prob_sigma <= 0.0) continue;

      uncertain.clear();
      bool possible = true;
      for (int e = 0; e < ne; ++e) {
        const graph::Edge& ed = m.g().edge(e);
        const double pe = m.edge_pass_prob(
            e, sigma[static_cast<std::size_t>(ed.u)],
            sigma[static_cast<std::size_t>(ed.v)],
            x[static_cast<std::size_t>(ed.u)],
            x[static_cast<std::size_t>(ed.v)]);
        pass_prob[static_cast<std::size_t>(e)] = pe;
        if (pe > 0.0 && pe < 1.0) uncertain.push_back(e);
        passes[static_cast<std::size_t>(e)] = pe >= 1.0 ? 1 : 0;
      }
      (void)possible;
      LS_REQUIRE(static_cast<int>(uncertain.size()) <= max_uncertain_edges,
                 "too many soft edges for exact coin enumeration");

      const std::uint64_t combos = 1ull << uncertain.size();
      for (std::uint64_t bits = 0; bits < combos; ++bits) {
        double prob_coins = 1.0;
        for (std::size_t i = 0; i < uncertain.size(); ++i) {
          const int e = uncertain[i];
          const bool pass = (bits >> i) & 1ull;
          passes[static_cast<std::size_t>(e)] = pass ? 1 : 0;
          prob_coins *= pass ? pass_prob[static_cast<std::size_t>(e)]
                             : 1.0 - pass_prob[static_cast<std::size_t>(e)];
        }
        if (prob_coins <= 0.0) continue;

        std::int64_t target = xi;
        // v accepts iff every incident edge passes.
        for (int v = 0; v < m.n(); ++v) {
          bool accept = true;
          for (int e : m.g().incident_edges(v))
            if (passes[static_cast<std::size_t>(e)] == 0) {
              accept = false;
              break;
            }
          if (accept)
            target =
                ss.with_spin(target, v, sigma[static_cast<std::size_t>(v)]);
        }
        p.at(xi, target) += prob_sigma * prob_coins;
      }
    }
  }
  return p;
}

DenseMatrix synchronous_glauber_transition(const mrf::Mrf& m,
                                           const StateSpace& ss) {
  check_model(m, ss);
  LS_REQUIRE(m.n() <= 12, "synchronous transition limited to n <= 12");
  DenseMatrix p(ss.size());
  mrf::Config x;
  for (std::int64_t xi = 0; xi < ss.size(); ++xi) {
    ss.decode_into(xi, x);
    // All vertices update together: the joint kernel is the product of the
    // per-vertex marginals conditioned on the OLD state x.
    const std::uint32_t all = (1u << m.n()) - 1u;
    add_parallel_heat_bath(m, ss, x, ss.encode(mrf::Config(
                               static_cast<std::size_t>(m.n()), 0)),
                           all, 1.0, p, xi);
  }
  return p;
}

DenseMatrix local_metropolis_two_rule_transition(const mrf::Mrf& m,
                                                 const StateSpace& ss) {
  check_model(m, ss);
  for (int e = 0; e < m.g().num_edges(); ++e) {
    const auto& a = m.edge_activity(e);
    for (int i = 0; i < m.q(); ++i)
      for (int j = 0; j < m.q(); ++j)
        LS_REQUIRE(a.at(i, j) == 0.0 || a.at(i, j) == a.max_entry(),
                   "two-rule variant requires hard constraints");
  }
  DenseMatrix p(ss.size());
  mrf::Config x;
  mrf::Config sigma;
  std::vector<std::vector<double>> prop;
  for (int v = 0; v < m.n(); ++v) prop.push_back(proposal_distribution(m, v));

  for (std::int64_t xi = 0; xi < ss.size(); ++xi) {
    ss.decode_into(xi, x);
    for (std::int64_t si = 0; si < ss.size(); ++si) {
      ss.decode_into(si, sigma);
      double prob_sigma = 1.0;
      for (int v = 0; v < m.n() && prob_sigma > 0.0; ++v)
        prob_sigma *= prop[static_cast<std::size_t>(v)][static_cast<std::size_t>(
            sigma[static_cast<std::size_t>(v)])];
      if (prob_sigma <= 0.0) continue;

      std::int64_t target = xi;
      for (int v = 0; v < m.n(); ++v) {
        const auto inc = m.g().incident_edges(v);
        const auto nbr = m.g().neighbors(v);
        const int sv = sigma[static_cast<std::size_t>(v)];
        bool accept = true;
        for (std::size_t i = 0; i < inc.size() && accept; ++i) {
          const auto& a = m.edge_activity(inc[i]);
          const int su = sigma[static_cast<std::size_t>(nbr[i])];
          const int xu = x[static_cast<std::size_t>(nbr[i])];
          if (a.at(sv, su) == 0.0 || a.at(sv, xu) == 0.0) accept = false;
        }
        if (accept) target = ss.with_spin(target, v, sv);
      }
      p.at(xi, target) += prob_sigma;
    }
  }
  return p;
}

}  // namespace lsample::inference
