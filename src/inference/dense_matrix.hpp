// Minimal dense square matrix for exact Markov-chain analysis.
#pragma once

#include <cstdint>
#include <vector>

namespace lsample::inference {

class DenseMatrix {
 public:
  explicit DenseMatrix(std::int64_t n);

  [[nodiscard]] std::int64_t size() const noexcept { return n_; }

  [[nodiscard]] double at(std::int64_t i, std::int64_t j) const noexcept {
    return data_[static_cast<std::size_t>(i * n_ + j)];
  }
  double& at(std::int64_t i, std::int64_t j) noexcept {
    return data_[static_cast<std::size_t>(i * n_ + j)];
  }

  /// this * other.
  [[nodiscard]] DenseMatrix multiply(const DenseMatrix& other) const;

  /// Row vector times matrix: result_j = sum_i v_i * M(i,j).
  [[nodiscard]] std::vector<double> left_multiply(
      const std::vector<double>& v) const;

  /// max_i |sum_j M(i,j) - 1| (how far from row-stochastic).
  [[nodiscard]] double row_sum_error() const noexcept;

 private:
  std::int64_t n_;
  std::vector<double> data_;
};

}  // namespace lsample::inference
