#include "inference/tree_bp.hpp"

#include <cmath>
#include <queue>

#include "graph/properties.hpp"
#include "util/require.hpp"
#include "util/summary.hpp"

namespace lsample::inference {

TreeBp::TreeBp(const mrf::Mrf& m) : m_(m) {
  LS_REQUIRE(m.g().num_edges() == m.n() - 1 && graph::is_connected(m.g()),
             "TreeBp requires a connected tree");
  const int n = m.n();
  order_.reserve(static_cast<std::size_t>(n));
  parent_.assign(static_cast<std::size_t>(n), -1);
  parent_edge_.assign(static_cast<std::size_t>(n), -1);
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  std::queue<int> q;
  q.push(0);
  seen[0] = 1;
  while (!q.empty()) {
    const int v = q.front();
    q.pop();
    order_.push_back(v);
    const auto inc = m.g().incident_edges(v);
    const auto nbr = m.g().neighbors(v);
    for (std::size_t i = 0; i < inc.size(); ++i) {
      const int u = nbr[i];
      if (seen[static_cast<std::size_t>(u)] != 0) continue;
      seen[static_cast<std::size_t>(u)] = 1;
      parent_[static_cast<std::size_t>(u)] = v;
      parent_edge_[static_cast<std::size_t>(u)] = inc[i];
      q.push(u);
    }
  }
}

TreeBp::Result TreeBp::run(
    const std::vector<std::vector<double>>& overrides) const {
  const int n = m_.n();
  const int q = m_.q();
  auto activity = [&](int v) -> std::vector<double> {
    if (!overrides.empty() &&
        !overrides[static_cast<std::size_t>(v)].empty())
      return overrides[static_cast<std::size_t>(v)];
    const auto b = m_.vertex_activity(v);
    return {b.begin(), b.end()};
  };

  // Upward pass (reverse BFS order): up[v](x_parent).
  std::vector<std::vector<double>> up(
      static_cast<std::size_t>(n), std::vector<double>(static_cast<std::size_t>(q), 1.0));
  double log_z = 0.0;
  // belief_base[v](x_v) = b_v(x_v) * prod_{c child of v} up[c](x_v).
  std::vector<std::vector<double>> belief_base(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) belief_base[static_cast<std::size_t>(v)] = activity(v);

  for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
    const int v = *it;
    const int par = parent_[static_cast<std::size_t>(v)];
    if (par < 0) continue;
    const auto& a = m_.edge_activity(parent_edge_[static_cast<std::size_t>(v)]);
    std::vector<double> msg(static_cast<std::size_t>(q), 0.0);
    for (int xp = 0; xp < q; ++xp) {
      double s = 0.0;
      for (int xv = 0; xv < q; ++xv)
        s += belief_base[static_cast<std::size_t>(v)]
                        [static_cast<std::size_t>(xv)] *
             a.at(xv, xp);
      msg[static_cast<std::size_t>(xp)] = s;
    }
    const double norm = util::normalize(msg);
    LS_REQUIRE(norm > 0.0, "zero message: clamped model is infeasible");
    log_z += std::log(norm);
    for (int xp = 0; xp < q; ++xp)
      belief_base[static_cast<std::size_t>(par)][static_cast<std::size_t>(xp)] *=
          msg[static_cast<std::size_t>(xp)];
    up[static_cast<std::size_t>(v)] = std::move(msg);
  }
  {
    double root_sum = 0.0;
    for (double x : belief_base[static_cast<std::size_t>(order_.front())])
      root_sum += x;
    LS_REQUIRE(root_sum > 0.0, "zero partition function");
    log_z += std::log(root_sum);
  }

  // Downward pass (BFS order): down[v](x_v) = message from parent into v.
  std::vector<std::vector<double>> down(
      static_cast<std::size_t>(n),
      std::vector<double>(static_cast<std::size_t>(q), 1.0));
  Result result;
  result.log_z = log_z;
  result.marginals.assign(static_cast<std::size_t>(n), {});
  for (int v : order_) {
    // Marginal of v: belief_base[v] * down[v].
    std::vector<double> marg(static_cast<std::size_t>(q));
    for (int c = 0; c < q; ++c)
      marg[static_cast<std::size_t>(c)] =
          belief_base[static_cast<std::size_t>(v)][static_cast<std::size_t>(c)] *
          down[static_cast<std::size_t>(v)][static_cast<std::size_t>(c)];
    const double norm = util::normalize(marg);
    LS_REQUIRE(norm > 0.0, "zero marginal");
    result.marginals[static_cast<std::size_t>(v)] = marg;

    // Messages to children: down[c](x_c) = sum_{x_v} (belief of v without
    // child c's up message) * A(x_v, x_c).
    const auto inc = m_.g().incident_edges(v);
    const auto nbr = m_.g().neighbors(v);
    for (std::size_t i = 0; i < inc.size(); ++i) {
      const int c = nbr[i];
      if (parent_[static_cast<std::size_t>(c)] != v ||
          parent_edge_[static_cast<std::size_t>(c)] != inc[i])
        continue;
      const auto& a = m_.edge_activity(inc[i]);
      std::vector<double> without(static_cast<std::size_t>(q));
      for (int xv = 0; xv < q; ++xv) {
        const double upc =
            up[static_cast<std::size_t>(c)][static_cast<std::size_t>(xv)];
        without[static_cast<std::size_t>(xv)] =
            upc > 0.0
                ? belief_base[static_cast<std::size_t>(v)]
                             [static_cast<std::size_t>(xv)] *
                      down[static_cast<std::size_t>(v)]
                          [static_cast<std::size_t>(xv)] /
                      upc
                : 0.0;
      }
      // If up[c](xv) was zero the division above is invalid; recompute the
      // product explicitly in that (rare) case.
      bool has_zero = false;
      for (int xv = 0; xv < q; ++xv)
        if (up[static_cast<std::size_t>(c)][static_cast<std::size_t>(xv)] <=
            0.0)
          has_zero = true;
      if (has_zero) {
        const auto bv = activity(v);
        for (int xv = 0; xv < q; ++xv) {
          double w = bv[static_cast<std::size_t>(xv)] *
                     down[static_cast<std::size_t>(v)]
                         [static_cast<std::size_t>(xv)];
          for (std::size_t j = 0; j < inc.size(); ++j) {
            const int other = nbr[j];
            if (other == c && inc[j] == inc[i]) continue;
            if (parent_[static_cast<std::size_t>(other)] == v &&
                parent_edge_[static_cast<std::size_t>(other)] == inc[j])
              w *= up[static_cast<std::size_t>(other)]
                     [static_cast<std::size_t>(xv)];
          }
          without[static_cast<std::size_t>(xv)] = w;
        }
      }
      std::vector<double> msg(static_cast<std::size_t>(q), 0.0);
      for (int xc = 0; xc < q; ++xc) {
        double s = 0.0;
        for (int xv = 0; xv < q; ++xv)
          s += without[static_cast<std::size_t>(xv)] * a.at(xv, xc);
        msg[static_cast<std::size_t>(xc)] = s;
      }
      util::normalize(msg);
      down[static_cast<std::size_t>(c)] = std::move(msg);
    }
  }
  return result;
}

std::vector<double> TreeBp::marginal(int v) const {
  LS_REQUIRE(v >= 0 && v < m_.n(), "vertex out of range");
  return run({}).marginals[static_cast<std::size_t>(v)];
}

double TreeBp::log_partition() const { return run({}).log_z; }

std::vector<double> TreeBp::conditional_marginal(int v, int u, int a) const {
  LS_REQUIRE(v >= 0 && v < m_.n() && u >= 0 && u < m_.n(), "vertex range");
  LS_REQUIRE(a >= 0 && a < m_.q(), "spin out of range");
  std::vector<std::vector<double>> overrides(
      static_cast<std::size_t>(m_.n()));
  std::vector<double> clamp(static_cast<std::size_t>(m_.q()), 0.0);
  clamp[static_cast<std::size_t>(a)] = 1.0;
  overrides[static_cast<std::size_t>(u)] = std::move(clamp);
  return run(overrides).marginals[static_cast<std::size_t>(v)];
}

std::vector<double> TreeBp::pair_joint(int u, int v) const {
  const int q = m_.q();
  const auto mu_u = marginal(u);
  std::vector<double> joint(static_cast<std::size_t>(q) *
                                static_cast<std::size_t>(q),
                            0.0);
  for (int a = 0; a < q; ++a) {
    if (mu_u[static_cast<std::size_t>(a)] <= 0.0) continue;
    const auto cond = conditional_marginal(v, u, a);
    for (int b = 0; b < q; ++b)
      joint[static_cast<std::size_t>(a) * static_cast<std::size_t>(q) +
            static_cast<std::size_t>(b)] =
          mu_u[static_cast<std::size_t>(a)] *
          cond[static_cast<std::size_t>(b)];
  }
  return joint;
}

}  // namespace lsample::inference
