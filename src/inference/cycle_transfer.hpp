// Exact inference on cycles via transfer matrices.
#pragma once

#include <vector>

#include "mrf/mrf.hpp"

namespace lsample::inference {

/// Exact partition function of an MRF whose graph is the standard cycle
/// 0-1-...-(n-1)-0 (as built by graph::make_cycle).
[[nodiscard]] double cycle_partition_function(const mrf::Mrf& m);

/// Exact joint pmf of (sigma_u, sigma_v) on the cycle, row-major q x q.
[[nodiscard]] std::vector<double> cycle_pair_joint(const mrf::Mrf& m, int u,
                                                   int v);

}  // namespace lsample::inference
