// Exact inference on tree-structured MRFs via belief propagation.
//
// Used by the Theorem 5.1 reproduction: on a path, the conditional marginals
// µ_v(· | σ_u) are exact, so the exponential correlation property (28) can be
// measured directly, and the joint law of two far-apart vertices gives the
// ground truth that t-round protocols provably cannot match.
#pragma once

#include <vector>

#include "mrf/mrf.hpp"

namespace lsample::inference {

class TreeBp {
 public:
  /// Requires a connected tree (m = n-1 edges).
  explicit TreeBp(const mrf::Mrf& m);

  /// Exact marginal distribution of vertex v.
  [[nodiscard]] std::vector<double> marginal(int v) const;

  /// Exact log partition function.
  [[nodiscard]] double log_partition() const;

  /// Exact conditional marginal of v given sigma_u = a.  Requires the
  /// clamped model to have positive partition function.
  [[nodiscard]] std::vector<double> conditional_marginal(int v, int u,
                                                         int a) const;

  /// Exact joint pmf of (sigma_u, sigma_v), row-major q x q.
  [[nodiscard]] std::vector<double> pair_joint(int u, int v) const;

 private:
  struct Result {
    std::vector<std::vector<double>> marginals;
    double log_z = 0.0;
  };

  /// Runs two-pass BP with per-vertex activity overrides (empty = use the
  /// model's own activities).
  [[nodiscard]] Result run(const std::vector<std::vector<double>>& overrides)
      const;

  const mrf::Mrf& m_;
  std::vector<int> order_;       // BFS order from root 0
  std::vector<int> parent_;      // parent vertex (-1 for root)
  std::vector<int> parent_edge_; // edge id to parent (-1 for root)
};

}  // namespace lsample::inference
