#include "inference/ssaw.hpp"

#include <functional>

#include "util/require.hpp"

namespace lsample::inference {

namespace {

/// DFS over SSAW extensions.  `on_path` marks path vertices; a vertex u may
/// extend the walk iff u is unvisited and u is adjacent to no path vertex
/// except the current endpoint (the strong self-avoidance chord condition).
void extend(const graph::Graph& g, std::vector<char>& on_path, int tail,
            int length, int max_length,
            const std::function<void(int)>& visit) {
  if (length >= max_length) return;
  for (int u : g.neighbors(tail)) {
    if (on_path[static_cast<std::size_t>(u)] != 0) continue;
    bool chord = false;
    for (int w : g.neighbors(u)) {
      if (w != tail && on_path[static_cast<std::size_t>(w)] != 0) {
        chord = true;
        break;
      }
    }
    if (chord) continue;
    on_path[static_cast<std::size_t>(u)] = 1;
    visit(length + 1);
    extend(g, on_path, u, length + 1, max_length, visit);
    on_path[static_cast<std::size_t>(u)] = 0;
  }
}

}  // namespace

std::vector<std::int64_t> count_ssaws(const graph::Graph& g, int v0,
                                      int max_length) {
  LS_REQUIRE(v0 >= 0 && v0 < g.num_vertices(), "vertex out of range");
  LS_REQUIRE(max_length >= 0 && max_length <= 64, "max_length in [0,64]");
  std::vector<std::int64_t> counts(static_cast<std::size_t>(max_length) + 1,
                                   0);
  counts[0] = 1;
  std::vector<char> on_path(static_cast<std::size_t>(g.num_vertices()), 0);
  on_path[static_cast<std::size_t>(v0)] = 1;
  // Every SSAW is visited exactly once, at the step that appends its final
  // vertex, so the callback tallies counts[l] correctly for every l.
  extend(g, on_path, v0, 0, max_length,
         [&](int len) { ++counts[static_cast<std::size_t>(len)]; });
  return counts;
}

double ssaw_series(const graph::Graph& g, int v0, double x, int max_length) {
  const auto counts = count_ssaws(g, v0, max_length);
  double sum = 0.0;
  double pow_x = 1.0;  // x^{l-1} for l = 1
  for (int l = 1; l <= max_length; ++l) {
    sum += static_cast<double>(counts[static_cast<std::size_t>(l)]) * pow_x;
    pow_x *= x;
  }
  return sum;
}

bool is_ssaw(const graph::Graph& g, const std::vector<int>& walk) {
  LS_REQUIRE(!walk.empty(), "walk must be non-empty");
  // Simple path: all vertices distinct and consecutive pairs adjacent.
  std::vector<char> seen(static_cast<std::size_t>(g.num_vertices()), 0);
  for (std::size_t i = 0; i < walk.size(); ++i) {
    const int v = walk[i];
    LS_REQUIRE(v >= 0 && v < g.num_vertices(), "walk vertex out of range");
    if (seen[static_cast<std::size_t>(v)] != 0) return false;
    seen[static_cast<std::size_t>(v)] = 1;
    if (i > 0 && !g.has_edge(walk[i - 1], v)) return false;
  }
  // No chord v_i v_j with i + 1 < j.
  for (std::size_t i = 0; i + 2 < walk.size(); ++i)
    for (std::size_t j = i + 2; j < walk.size(); ++j)
      if (g.has_edge(walk[i], walk[j])) return false;
  return true;
}

}  // namespace lsample::inference
