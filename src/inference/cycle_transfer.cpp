#include "inference/cycle_transfer.hpp"

#include <cmath>

#include "util/require.hpp"
#include "util/summary.hpp"

namespace lsample::inference {

namespace {

using Matrix = std::vector<double>;  // q x q row-major

/// Finds the edge id joining consecutive cycle vertices a -> b.
int cycle_edge(const mrf::Mrf& m, int a, int b) {
  const auto inc = m.g().incident_edges(a);
  const auto nbr = m.g().neighbors(a);
  for (std::size_t i = 0; i < inc.size(); ++i)
    if (nbr[i] == b) return inc[i];
  LS_REQUIRE(false, "graph is not the standard cycle");
  return -1;
}

void check_cycle(const mrf::Mrf& m) {
  const int n = m.n();
  LS_REQUIRE(n >= 3 && m.g().num_edges() == n,
             "cycle transfer requires the standard cycle");
  for (int v = 0; v < n; ++v)
    LS_REQUIRE(m.g().degree(v) == 2, "cycle transfer requires a 2-regular graph");
}

/// F(a, b) = sum over assignments of the interior vertices of the directed
/// path from `from` to `to` (exclusive endpoints, walking +1 mod n) of
/// prod of edge activities and interior vertex activities.
Matrix path_transfer(const mrf::Mrf& m, int from, int to) {
  const int q = m.q();
  const int n = m.n();
  Matrix f(static_cast<std::size_t>(q) * static_cast<std::size_t>(q), 0.0);
  // Start with the single edge from -> from+1.
  int cur = from;
  int nxt = (from + 1) % n;
  {
    const auto& a = m.edge_activity(cycle_edge(m, cur, nxt));
    for (int i = 0; i < q; ++i)
      for (int j = 0; j < q; ++j)
        f[static_cast<std::size_t>(i) * static_cast<std::size_t>(q) +
          static_cast<std::size_t>(j)] = a.at(i, j);
  }
  cur = nxt;
  while (cur != to) {
    nxt = (cur + 1) % n;
    const auto bv = m.vertex_activity(cur);
    const auto& a = m.edge_activity(cycle_edge(m, cur, nxt));
    Matrix g(static_cast<std::size_t>(q) * static_cast<std::size_t>(q), 0.0);
    for (int i = 0; i < q; ++i)
      for (int k = 0; k < q; ++k) {
        const double fik =
            f[static_cast<std::size_t>(i) * static_cast<std::size_t>(q) +
              static_cast<std::size_t>(k)] *
            bv[static_cast<std::size_t>(k)];
        if (fik == 0.0) continue;
        for (int j = 0; j < q; ++j)
          g[static_cast<std::size_t>(i) * static_cast<std::size_t>(q) +
            static_cast<std::size_t>(j)] += fik * a.at(k, j);
      }
    f = std::move(g);
    cur = nxt;
  }
  return f;
}

}  // namespace

double cycle_partition_function(const mrf::Mrf& m) {
  check_cycle(m);
  const int q = m.q();
  // Z = sum_a b_0(a) * [transfer 0 -> 0 all the way around](a, a).
  // Split as path 0 -> k and k -> 0 for k = n/2 to reuse path_transfer.
  const int k = m.n() / 2;
  const Matrix f1 = path_transfer(m, 0, k);
  const Matrix f2 = path_transfer(m, k, 0);
  const auto b0 = m.vertex_activity(0);
  const auto bk = m.vertex_activity(k);
  double z = 0.0;
  for (int a = 0; a < q; ++a)
    for (int b = 0; b < q; ++b)
      z += b0[static_cast<std::size_t>(a)] * bk[static_cast<std::size_t>(b)] *
           f1[static_cast<std::size_t>(a) * static_cast<std::size_t>(q) +
              static_cast<std::size_t>(b)] *
           f2[static_cast<std::size_t>(b) * static_cast<std::size_t>(q) +
              static_cast<std::size_t>(a)];
  return z;
}

std::vector<double> cycle_pair_joint(const mrf::Mrf& m, int u, int v) {
  check_cycle(m);
  LS_REQUIRE(u >= 0 && u < m.n() && v >= 0 && v < m.n() && u != v,
             "need two distinct cycle vertices");
  const int q = m.q();
  const Matrix fuv = path_transfer(m, u, v);
  const Matrix fvu = path_transfer(m, v, u);
  const auto bu = m.vertex_activity(u);
  const auto bv = m.vertex_activity(v);
  std::vector<double> joint(static_cast<std::size_t>(q) *
                                static_cast<std::size_t>(q),
                            0.0);
  for (int a = 0; a < q; ++a)
    for (int b = 0; b < q; ++b)
      joint[static_cast<std::size_t>(a) * static_cast<std::size_t>(q) +
            static_cast<std::size_t>(b)] =
          bu[static_cast<std::size_t>(a)] * bv[static_cast<std::size_t>(b)] *
          fuv[static_cast<std::size_t>(a) * static_cast<std::size_t>(q) +
              static_cast<std::size_t>(b)] *
          fvu[static_cast<std::size_t>(b) * static_cast<std::size_t>(q) +
              static_cast<std::size_t>(a)];
  const double z = util::normalize(joint);
  LS_REQUIRE(z > 0.0, "zero partition function");
  return joint;
}

}  // namespace lsample::inference
