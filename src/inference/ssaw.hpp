// Strongly self-avoiding walks (SSAWs), the combinatorial object driving the
// global path-coupling analysis of §4.2.3.
//
// A walk P = (v0, v1, ..., vl) is strongly self-avoiding if it is a simple
// path AND no chord v_i v_j with i+1 < j exists in the graph.  The coupling
// argument bounds the disagreement percolation by
//     sum over SSAWs P from v0 of (2/q)^{len(P)-1},
// and Lemma 4.12 caps that series by the fixpoint Delta/(q-2Delta+2) (times
// a (1-2/q)^{Delta-1} factor).  This module enumerates/counts SSAWs so the
// bound can be checked numerically on concrete graphs (experiment E3).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace lsample::inference {

/// counts[l] = number of SSAWs of length l starting at v0 (l = 0 is the
/// trivial walk).  Enumerates up to max_length (inclusive).
[[nodiscard]] std::vector<std::int64_t> count_ssaws(const graph::Graph& g,
                                                    int v0, int max_length);

/// The §4.2.3 disagreement series sum over SSAWs P from v0, excluding the
/// trivial walk, of x^{len(P)-1}, truncated at max_length.
[[nodiscard]] double ssaw_series(const graph::Graph& g, int v0, double x,
                                 int max_length);

/// True if (v0, ..., vl) given as a vertex sequence is an SSAW of g.
[[nodiscard]] bool is_ssaw(const graph::Graph& g,
                           const std::vector<int>& walk);

}  // namespace lsample::inference
