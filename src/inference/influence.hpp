// Dobrushin influence matrix (Definition 3.1) and total influence
// (Definition 3.2), driving Theorem 3.2's mixing condition.
#pragma once

#include <vector>

#include "inference/state_space.hpp"
#include "mrf/mrf.hpp"

namespace lsample::inference {

/// Exact influence matrix rho_{i,j} by brute force over all feasible pairs
/// differing only at j (small models only).  Row-major n x n.
[[nodiscard]] std::vector<double> influence_matrix(const mrf::Mrf& m,
                                                   const StateSpace& ss);

/// Total influence alpha = max_i sum_j rho_{i,j} of a row-major n x n matrix.
[[nodiscard]] double total_influence(const std::vector<double>& rho, int n);

/// Closed-form total influence bound for list colorings (§3.2):
/// alpha = max_v d_v / (q_v - d_v), where q_v is the list size.  Throws if
/// some q_v <= d_v.
[[nodiscard]] double coloring_total_influence(const graph::Graph& g,
                                              const std::vector<int>& list_sizes);

/// Convenience: uniform lists of size q.
[[nodiscard]] double coloring_total_influence(const graph::Graph& g, int q);

}  // namespace lsample::inference
