#include "mrf/mrf.hpp"

#include <cmath>
#include <limits>

#include "util/require.hpp"

namespace lsample::mrf {

Mrf::Mrf(graph::GraphPtr g, int q) : graph_(std::move(g)), q_(q) {
  LS_REQUIRE(graph_ != nullptr, "graph must not be null");
  LS_REQUIRE(q >= 2, "MRF needs q >= 2 spin states");
  ActivityMatrix ones(q_);
  for (int i = 0; i < q_; ++i)
    for (int j = i; j < q_; ++j) ones.set(i, j, 1.0);
  ones.freeze();
  edge_acts_.assign(static_cast<std::size_t>(graph_->num_edges()), ones);
  vertex_acts_.assign(static_cast<std::size_t>(graph_->num_vertices()),
                      std::vector<double>(static_cast<std::size_t>(q_), 1.0));
}

void Mrf::check_spin(int s) const {
  LS_REQUIRE(s >= 0 && s < q_, "spin out of range");
}

void Mrf::set_edge_activity(int e, ActivityMatrix a) {
  LS_REQUIRE(e >= 0 && e < g().num_edges(), "edge id out of range");
  LS_REQUIRE(a.q() == q_, "activity matrix size must match q");
  edge_acts_[static_cast<std::size_t>(e)] = std::move(a);
}

void Mrf::set_all_edge_activities(const ActivityMatrix& a) {
  LS_REQUIRE(a.q() == q_, "activity matrix size must match q");
  for (auto& ea : edge_acts_) ea = a;
}

void Mrf::set_vertex_activity(int v, std::vector<double> b) {
  LS_REQUIRE(v >= 0 && v < n(), "vertex id out of range");
  LS_REQUIRE(b.size() == static_cast<std::size_t>(q_),
             "vertex activity must have q entries");
  double total = 0.0;
  for (double x : b) {
    LS_REQUIRE(x >= 0.0 && std::isfinite(x),
               "vertex activities are non-negative");
    total += x;
  }
  LS_REQUIRE(total > 0.0, "vertex activity must not be identically zero");
  vertex_acts_[static_cast<std::size_t>(v)] = std::move(b);
}

void Mrf::set_all_vertex_activities(const std::vector<double>& b) {
  for (int v = 0; v < n(); ++v) set_vertex_activity(v, b);
}

const ActivityMatrix& Mrf::edge_activity(int e) const {
  LS_REQUIRE(e >= 0 && e < g().num_edges(), "edge id out of range");
  return edge_acts_[static_cast<std::size_t>(e)];
}

std::span<const double> Mrf::vertex_activity(int v) const {
  LS_REQUIRE(v >= 0 && v < n(), "vertex id out of range");
  return vertex_acts_[static_cast<std::size_t>(v)];
}

double Mrf::log_weight(const Config& x) const {
  check_config(*this, x);
  double lw = 0.0;
  for (int v = 0; v < n(); ++v) {
    const double b = vertex_acts_[static_cast<std::size_t>(v)]
                                 [static_cast<std::size_t>(x[v])];
    if (b <= 0.0) return -std::numeric_limits<double>::infinity();
    lw += std::log(b);
  }
  for (int e = 0; e < g().num_edges(); ++e) {
    const graph::Edge& ed = g().edge(e);
    const double a = edge_acts_[static_cast<std::size_t>(e)].at(
        x[static_cast<std::size_t>(ed.u)], x[static_cast<std::size_t>(ed.v)]);
    if (a <= 0.0) return -std::numeric_limits<double>::infinity();
    lw += std::log(a);
  }
  return lw;
}

bool Mrf::feasible(const Config& x) const {
  check_config(*this, x);
  for (int v = 0; v < n(); ++v)
    if (vertex_acts_[static_cast<std::size_t>(v)]
                    [static_cast<std::size_t>(x[v])] <= 0.0)
      return false;
  for (int e = 0; e < g().num_edges(); ++e) {
    const graph::Edge& ed = g().edge(e);
    if (edge_acts_[static_cast<std::size_t>(e)].at(
            x[static_cast<std::size_t>(ed.u)],
            x[static_cast<std::size_t>(ed.v)]) <= 0.0)
      return false;
  }
  return true;
}

void Mrf::marginal_weights(int v, const Config& x,
                           std::vector<double>& out) const {
  LS_REQUIRE(v >= 0 && v < n(), "vertex id out of range");
  out.assign(static_cast<std::size_t>(q_), 0.0);
  const auto& bv = vertex_acts_[static_cast<std::size_t>(v)];
  const auto inc = g().incident_edges(v);
  const auto nbr = g().neighbors(v);
  for (int c = 0; c < q_; ++c) {
    double w = bv[static_cast<std::size_t>(c)];
    for (std::size_t i = 0; i < inc.size() && w > 0.0; ++i) {
      w *= edge_acts_[static_cast<std::size_t>(inc[i])].at(
          c, x[static_cast<std::size_t>(nbr[i])]);
    }
    out[static_cast<std::size_t>(c)] = w;
  }
}

double Mrf::edge_pass_prob(int e, int su, int sv, int xu, int xv) const {
  check_spin(su);
  check_spin(sv);
  check_spin(xu);
  check_spin(xv);
  const ActivityMatrix& a = edge_activity(e);
  return a.normalized_at(su, sv) * a.normalized_at(xu, sv) *
         a.normalized_at(su, xv);
}

bool Mrf::marginals_always_defined_at(int v) const {
  const auto nbr = g().neighbors(v);
  const std::size_t d = nbr.size();
  LS_REQUIRE(d <= 8, "brute-force check limited to degree <= 8");
  std::vector<int> assign(d, 0);
  Config x(static_cast<std::size_t>(n()), 0);
  std::vector<double> w;
  while (true) {
    for (std::size_t i = 0; i < d; ++i)
      x[static_cast<std::size_t>(nbr[i])] = assign[i];
    marginal_weights(v, x, w);
    double total = 0.0;
    for (double ww : w) total += ww;
    if (total <= 0.0) return false;
    // Increment the neighborhood assignment (odometer).
    std::size_t i = 0;
    while (i < d && ++assign[i] == q_) assign[i++] = 0;
    if (i == d) break;
    if (d == 0) break;
  }
  return true;
}

void check_config(const Mrf& m, const Config& x) {
  LS_REQUIRE(static_cast<int>(x.size()) == m.n(),
             "configuration size must equal vertex count");
  for (int s : x) LS_REQUIRE(s >= 0 && s < m.q(), "spin out of range");
}

}  // namespace lsample::mrf
