#include "mrf/activity.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace lsample::mrf {

ActivityMatrix::ActivityMatrix(int q) : q_(q) {
  LS_REQUIRE(q >= 1, "activity matrix needs q >= 1");
  a_.assign(static_cast<std::size_t>(q) * static_cast<std::size_t>(q), 0.0);
}

ActivityMatrix::ActivityMatrix(int q, std::vector<double> entries) : q_(q) {
  LS_REQUIRE(q >= 1, "activity matrix needs q >= 1");
  LS_REQUIRE(entries.size() == static_cast<std::size_t>(q) *
                                   static_cast<std::size_t>(q),
             "entry count must be q*q");
  a_ = std::move(entries);
  freeze();
}

void ActivityMatrix::set(int i, int j, double v) {
  LS_REQUIRE(i >= 0 && i < q_ && j >= 0 && j < q_, "index out of range");
  LS_REQUIRE(v >= 0.0 && std::isfinite(v), "activities are non-negative");
  a_[static_cast<std::size_t>(i) * static_cast<std::size_t>(q_) +
     static_cast<std::size_t>(j)] = v;
  a_[static_cast<std::size_t>(j) * static_cast<std::size_t>(q_) +
     static_cast<std::size_t>(i)] = v;
}

void ActivityMatrix::freeze() {
  max_ = 0.0;
  for (int i = 0; i < q_; ++i)
    for (int j = 0; j < q_; ++j) {
      LS_REQUIRE(at(i, j) >= 0.0 && std::isfinite(at(i, j)),
                 "activities must be finite and non-negative");
      LS_REQUIRE(std::abs(at(i, j) - at(j, i)) <= 1e-12 *
                     std::max(1.0, std::abs(at(i, j))),
                 "edge activity must be symmetric");
      max_ = std::max(max_, at(i, j));
    }
  LS_REQUIRE(max_ > 0.0, "activity matrix must not be identically zero");
  inv_max_ = 1.0 / max_;
}

}  // namespace lsample::mrf
