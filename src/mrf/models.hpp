// Builders for the standard MRFs the paper discusses (§2.2):
// proper q-colorings, list colorings, hardcore / uniform independent sets,
// Ising, and Potts.
#pragma once

#include <memory>
#include <vector>

#include "mrf/mrf.hpp"

namespace lsample::mrf {

/// Uniform distribution over proper q-colorings: A(i,i)=0, A(i,j)=1 (i!=j),
/// b = all-ones.
[[nodiscard]] Mrf make_proper_coloring(graph::GraphPtr g, int q);

/// Uniform distribution over proper list colorings: b_v is the indicator of
/// v's list L_v subset of [q]; edges as in proper coloring.
[[nodiscard]] Mrf make_list_coloring(graph::GraphPtr g, int q,
                                     const std::vector<std::vector<int>>& lists);

/// Hardcore model with fugacity lambda: q=2, spin 1 = "in the independent
/// set", A = [[1,1],[1,0]], b = (1, lambda).
[[nodiscard]] Mrf make_hardcore(graph::GraphPtr g, double lambda);

/// Uniform distribution over independent sets (hardcore with lambda = 1).
[[nodiscard]] Mrf make_uniform_independent_set(graph::GraphPtr g);

/// Ising model: q=2 (spins -/+), A(i,i)=exp(beta), A(i,j)=exp(-beta),
/// b = (exp(-field), exp(field)).  beta>0 ferromagnetic.
[[nodiscard]] Mrf make_ising(graph::GraphPtr g, double beta,
                             double field = 0.0);

/// Potts model: A(i,i)=exp(beta), A(i,j)=1 for i!=j, b = all-ones.
/// beta < 0 is antiferromagnetic; beta -> -infinity recovers colorings.
[[nodiscard]] Mrf make_potts(graph::GraphPtr g, int q, double beta);

/// Graph homomorphisms from g into a constraint graph H given by its q x q
/// 0/1 adjacency structure (with optional loops): A_e = adjacency of H, so
/// feasible configurations are exactly the homomorphisms g -> H (§1 lists
/// graph homomorphism among the motivating MRFs).  `h_adjacency` is
/// row-major q x q and must be symmetric.
[[nodiscard]] Mrf make_homomorphism(graph::GraphPtr g, int q,
                                    const std::vector<int>& h_adjacency,
                                    std::vector<double> weights = {});

/// Widom-Rowlinson model: two particle species that each exclude the other
/// on adjacent sites (q = 3: 0 = empty, 1/2 = species), with activity
/// lambda per particle.  A classic homomorphism model.
[[nodiscard]] Mrf make_widom_rowlinson(graph::GraphPtr g, double lambda);

/// Critical hardcore fugacity lambda_c(Delta) = (Delta-1)^(Delta-1) /
/// (Delta-2)^Delta (§5.1).  Requires Delta >= 3.
[[nodiscard]] double hardcore_uniqueness_threshold(int delta);

}  // namespace lsample::mrf
