#include "mrf/compiled.hpp"

#include <map>

namespace lsample::mrf {

CompiledMrf::CompiledMrf(const Mrf& m) : CompiledMrf(m, Options()) {}

CompiledMrf::CompiledMrf(const Mrf& m, const Options& options)
    : m_(&m),
      q_(m.q()),
      n_(m.n()),
      tier_(options.tier),
      reorder_(options.reorder) {
  const graph::Graph& g = m.g();
  g.finalize();
  offsets_ = g.csr_offsets();
  inc_flat_ = g.incident_edges_flat();
  nbr_flat_ = g.neighbors_flat();

  const int mm = g.num_edges();
  edge_u_.resize(static_cast<std::size_t>(mm));
  edge_v_.resize(static_cast<std::size_t>(mm));
  table_of_edge_.resize(static_cast<std::size_t>(mm));

  // Dedup tables on exact (bitwise-comparable) entries so two edges share a
  // pooled block only when the kernels would read identical doubles.
  std::map<std::vector<double>, int> pool;
  const std::size_t stride = table_stride();
  for (int e = 0; e < mm; ++e) {
    const graph::Edge& ed = g.edge(e);
    edge_u_[static_cast<std::size_t>(e)] = ed.u;
    edge_v_[static_cast<std::size_t>(e)] = ed.v;

    const ActivityMatrix& a = m.edge_activity(e);
    std::vector<double> entries(stride);
    for (int i = 0; i < q_; ++i)
      for (int j = 0; j < q_; ++j)
        entries[static_cast<std::size_t>(i) * static_cast<std::size_t>(q_) +
                static_cast<std::size_t>(j)] = a.at(i, j);
    auto [it, inserted] = pool.try_emplace(std::move(entries), num_tables());
    if (inserted) {
      tables_.insert(tables_.end(), it->first.begin(), it->first.end());
      tables_t_.resize(tables_.size());
      norm_tables_.resize(tables_.size());
      const std::size_t base = static_cast<std::size_t>(it->second) * stride;
      const double inv_max = 1.0 / a.max_entry();
      for (int i = 0; i < q_; ++i)
        for (int j = 0; j < q_; ++j) {
          const std::size_t ij = static_cast<std::size_t>(i) *
                                     static_cast<std::size_t>(q_) +
                                 static_cast<std::size_t>(j);
          const std::size_t ji = static_cast<std::size_t>(j) *
                                     static_cast<std::size_t>(q_) +
                                 static_cast<std::size_t>(i);
          tables_t_[base + ji] = tables_[base + ij];
          // Same expression as ActivityMatrix::normalized_at, so the pooled
          // entry is the identical double.
          norm_tables_[base + ij] = tables_[base + ij] * inv_max;
        }
    }
    table_of_edge_[static_cast<std::size_t>(e)] = it->second;
  }

  // Sweep order + row layout.  For the identity order the rows alias the
  // graph CSR; a real reorder copies each row (edge order within a row
  // preserved) so that rows appear consecutively in rank order.
  order_ = graph::compute_vertex_order(g, reorder_);
  rank_ = graph::invert_order(order_);
  row_begin_.resize(static_cast<std::size_t>(n_));
  row_end_.resize(static_cast<std::size_t>(n_));
  if (reorder_ == graph::VertexOrder::none) {
    for (int v = 0; v < n_; ++v) {
      row_begin_[static_cast<std::size_t>(v)] =
          offsets_[static_cast<std::size_t>(v)];
      row_end_[static_cast<std::size_t>(v)] =
          offsets_[static_cast<std::size_t>(v) + 1];
    }
    inc_rows_ = inc_flat_;
    nbr_rows_ = nbr_flat_;
  } else {
    own_inc_.resize(inc_flat_.size());
    own_nbr_.resize(nbr_flat_.size());
    int pos = 0;
    for (int i = 0; i < n_; ++i) {
      const int v = order_[static_cast<std::size_t>(i)];
      row_begin_[static_cast<std::size_t>(v)] = pos;
      for (int k = offsets_[static_cast<std::size_t>(v)];
           k < offsets_[static_cast<std::size_t>(v) + 1]; ++k, ++pos) {
        own_inc_[static_cast<std::size_t>(pos)] =
            inc_flat_[static_cast<std::size_t>(k)];
        own_nbr_[static_cast<std::size_t>(pos)] =
            nbr_flat_[static_cast<std::size_t>(k)];
      }
      row_end_[static_cast<std::size_t>(v)] = pos;
    }
    inc_rows_ = own_inc_;
    nbr_rows_ = own_nbr_;
  }

  vert_act_.resize(static_cast<std::size_t>(n_) * static_cast<std::size_t>(q_));
  for (int v = 0; v < n_; ++v) {
    const auto bv = m.vertex_activity(v);
    const std::size_t slot =
        static_cast<std::size_t>(rank_[static_cast<std::size_t>(v)]) *
        static_cast<std::size_t>(q_);
    for (int c = 0; c < q_; ++c)
      vert_act_[slot + static_cast<std::size_t>(c)] =
          bv[static_cast<std::size_t>(c)];
  }
}

void CompiledMrf::marginal_weights(int v, const Config& x,
                                   std::vector<double>& out) const {
  const std::size_t q = static_cast<std::size_t>(q_);
  out.resize(q);
  double* __restrict o = out.data();
  const double* __restrict bv =
      vert_act_.data() +
      static_cast<std::size_t>(rank_[static_cast<std::size_t>(v)]) * q;
  for (std::size_t c = 0; c < q; ++c) o[c] = bv[c];
  const int begin = row_begin_[static_cast<std::size_t>(v)];
  const int end = row_end_[static_cast<std::size_t>(v)];
  const int* inc = inc_rows_.data();
  const int* nbr = nbr_rows_.data();
  const double* tt = tables_t_.data();
  if (tier_ == Tier::fast_math) {
    // Pairwise accumulation: two independent transposed rows per inner pass
    // (better ILP and wider SIMD).  Reassociates (o*r0)*r1 into o*(r0*r1) —
    // same product up to rounding, hence statistical (not bitwise)
    // equivalence with the seed chain.
    int i = begin;
    for (; i + 1 < end; i += 2) {
      const int x0 = x[static_cast<std::size_t>(nbr[i])];
      const int x1 = x[static_cast<std::size_t>(nbr[i + 1])];
      const double* __restrict r0 =
          tt + table_offset(inc[i]) + static_cast<std::size_t>(x0) * q;
      const double* __restrict r1 =
          tt + table_offset(inc[i + 1]) + static_cast<std::size_t>(x1) * q;
      for (std::size_t c = 0; c < q; ++c) o[c] *= r0[c] * r1[c];
    }
    if (i < end) {
      const int xu = x[static_cast<std::size_t>(nbr[i])];
      const double* __restrict row =
          tt + table_offset(inc[i]) + static_cast<std::size_t>(xu) * q;
      for (std::size_t c = 0; c < q; ++c) o[c] *= row[c];
    }
    return;
  }
  // Edge-outer / color-inner keeps each out[c] accumulating its factors in
  // incident-edge order — the exact product order of Mrf::marginal_weights —
  // while every inner pass reads one contiguous transposed-table row.
  for (int i = begin; i < end; ++i) {
    const int xu = x[static_cast<std::size_t>(nbr[i])];
    const double* __restrict row =
        tt + table_offset(inc[i]) + static_cast<std::size_t>(xu) * q;
    for (std::size_t c = 0; c < q; ++c) o[c] *= row[c];
  }
}

}  // namespace lsample::mrf
