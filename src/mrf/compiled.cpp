#include "mrf/compiled.hpp"

#include <map>

namespace lsample::mrf {

CompiledMrf::CompiledMrf(const Mrf& m) : m_(&m), q_(m.q()), n_(m.n()) {
  const graph::Graph& g = m.g();
  g.finalize();
  offsets_ = g.csr_offsets();
  inc_flat_ = g.incident_edges_flat();
  nbr_flat_ = g.neighbors_flat();

  const int mm = g.num_edges();
  edge_u_.resize(static_cast<std::size_t>(mm));
  edge_v_.resize(static_cast<std::size_t>(mm));
  table_of_edge_.resize(static_cast<std::size_t>(mm));

  // Dedup tables on exact (bitwise-comparable) entries so two edges share a
  // pooled block only when the kernels would read identical doubles.
  std::map<std::vector<double>, int> pool;
  const std::size_t stride = table_stride();
  for (int e = 0; e < mm; ++e) {
    const graph::Edge& ed = g.edge(e);
    edge_u_[static_cast<std::size_t>(e)] = ed.u;
    edge_v_[static_cast<std::size_t>(e)] = ed.v;

    const ActivityMatrix& a = m.edge_activity(e);
    std::vector<double> entries(stride);
    for (int i = 0; i < q_; ++i)
      for (int j = 0; j < q_; ++j)
        entries[static_cast<std::size_t>(i) * static_cast<std::size_t>(q_) +
                static_cast<std::size_t>(j)] = a.at(i, j);
    auto [it, inserted] = pool.try_emplace(std::move(entries), num_tables());
    if (inserted) {
      tables_.insert(tables_.end(), it->first.begin(), it->first.end());
      tables_t_.resize(tables_.size());
      norm_tables_.resize(tables_.size());
      const std::size_t base = static_cast<std::size_t>(it->second) * stride;
      const double inv_max = 1.0 / a.max_entry();
      for (int i = 0; i < q_; ++i)
        for (int j = 0; j < q_; ++j) {
          const std::size_t ij = static_cast<std::size_t>(i) *
                                     static_cast<std::size_t>(q_) +
                                 static_cast<std::size_t>(j);
          const std::size_t ji = static_cast<std::size_t>(j) *
                                     static_cast<std::size_t>(q_) +
                                 static_cast<std::size_t>(i);
          tables_t_[base + ji] = tables_[base + ij];
          // Same expression as ActivityMatrix::normalized_at, so the pooled
          // entry is the identical double.
          norm_tables_[base + ij] = tables_[base + ij] * inv_max;
        }
    }
    table_of_edge_[static_cast<std::size_t>(e)] = it->second;
  }

  vert_act_.resize(static_cast<std::size_t>(n_) * static_cast<std::size_t>(q_));
  for (int v = 0; v < n_; ++v) {
    const auto bv = m.vertex_activity(v);
    for (int c = 0; c < q_; ++c)
      vert_act_[static_cast<std::size_t>(v) * static_cast<std::size_t>(q_) +
                static_cast<std::size_t>(c)] = bv[static_cast<std::size_t>(c)];
  }
}

void CompiledMrf::marginal_weights(int v, const Config& x,
                                   std::vector<double>& out) const {
  const std::size_t q = static_cast<std::size_t>(q_);
  out.resize(q);
  const double* bv = vert_act_.data() + static_cast<std::size_t>(v) * q;
  for (std::size_t c = 0; c < q; ++c) out[c] = bv[c];
  const int begin = offsets_[static_cast<std::size_t>(v)];
  const int end = offsets_[static_cast<std::size_t>(v) + 1];
  // Edge-outer / color-inner keeps each out[c] accumulating its factors in
  // incident-edge order — the exact product order of Mrf::marginal_weights —
  // while every inner pass reads one contiguous transposed-table row.
  for (int i = begin; i < end; ++i) {
    const int e = inc_flat_[static_cast<std::size_t>(i)];
    const int xu = x[static_cast<std::size_t>(
        nbr_flat_[static_cast<std::size_t>(i)])];
    const double* row = tables_t_.data() + table_offset(e) +
                        static_cast<std::size_t>(xu) * q;
    for (std::size_t c = 0; c < q; ++c) out[c] *= row[c];
  }
}

}  // namespace lsample::mrf
