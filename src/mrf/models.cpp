#include "mrf/models.hpp"

#include <cmath>

#include "util/require.hpp"

namespace lsample::mrf {

namespace {

ActivityMatrix coloring_matrix(int q) {
  ActivityMatrix a(q);
  for (int i = 0; i < q; ++i)
    for (int j = i; j < q; ++j) a.set(i, j, i == j ? 0.0 : 1.0);
  a.freeze();
  return a;
}

}  // namespace

Mrf make_proper_coloring(graph::GraphPtr g, int q) {
  LS_REQUIRE(q >= 2, "colorings need q >= 2");
  Mrf m(std::move(g), q);
  m.set_all_edge_activities(coloring_matrix(q));
  return m;
}

Mrf make_list_coloring(graph::GraphPtr g, int q,
                       const std::vector<std::vector<int>>& lists) {
  LS_REQUIRE(g != nullptr, "graph must not be null");
  LS_REQUIRE(static_cast<int>(lists.size()) == g->num_vertices(),
             "one color list per vertex");
  Mrf m(g, q);
  m.set_all_edge_activities(coloring_matrix(q));
  for (int v = 0; v < g->num_vertices(); ++v) {
    std::vector<double> b(static_cast<std::size_t>(q), 0.0);
    LS_REQUIRE(!lists[static_cast<std::size_t>(v)].empty(),
               "color lists must be non-empty");
    for (int c : lists[static_cast<std::size_t>(v)]) {
      LS_REQUIRE(c >= 0 && c < q, "list color out of range");
      b[static_cast<std::size_t>(c)] = 1.0;
    }
    m.set_vertex_activity(v, std::move(b));
  }
  return m;
}

Mrf make_hardcore(graph::GraphPtr g, double lambda) {
  LS_REQUIRE(lambda > 0.0, "fugacity must be positive");
  Mrf m(std::move(g), 2);
  ActivityMatrix a(2);
  a.set(0, 0, 1.0);
  a.set(0, 1, 1.0);
  a.set(1, 1, 0.0);
  a.freeze();
  m.set_all_edge_activities(a);
  m.set_all_vertex_activities({1.0, lambda});
  return m;
}

Mrf make_uniform_independent_set(graph::GraphPtr g) {
  return make_hardcore(std::move(g), 1.0);
}

Mrf make_ising(graph::GraphPtr g, double beta, double field) {
  Mrf m(std::move(g), 2);
  ActivityMatrix a(2);
  a.set(0, 0, std::exp(beta));
  a.set(1, 1, std::exp(beta));
  a.set(0, 1, std::exp(-beta));
  a.freeze();
  m.set_all_edge_activities(a);
  m.set_all_vertex_activities({std::exp(-field), std::exp(field)});
  return m;
}

Mrf make_potts(graph::GraphPtr g, int q, double beta) {
  LS_REQUIRE(q >= 2, "Potts needs q >= 2");
  Mrf m(std::move(g), q);
  ActivityMatrix a(q);
  for (int i = 0; i < q; ++i)
    for (int j = i; j < q; ++j) a.set(i, j, i == j ? std::exp(beta) : 1.0);
  a.freeze();
  m.set_all_edge_activities(a);
  return m;
}

Mrf make_homomorphism(graph::GraphPtr g, int q,
                      const std::vector<int>& h_adjacency,
                      std::vector<double> weights) {
  LS_REQUIRE(q >= 2, "homomorphism target needs q >= 2 vertices");
  LS_REQUIRE(h_adjacency.size() == static_cast<std::size_t>(q) *
                                       static_cast<std::size_t>(q),
             "adjacency must be q*q");
  Mrf m(std::move(g), q);
  ActivityMatrix a(q);
  for (int i = 0; i < q; ++i)
    for (int j = i; j < q; ++j) {
      const int ij = h_adjacency[static_cast<std::size_t>(i) *
                                     static_cast<std::size_t>(q) +
                                 static_cast<std::size_t>(j)];
      const int ji = h_adjacency[static_cast<std::size_t>(j) *
                                     static_cast<std::size_t>(q) +
                                 static_cast<std::size_t>(i)];
      LS_REQUIRE(ij == ji, "H adjacency must be symmetric");
      LS_REQUIRE(ij == 0 || ij == 1, "H adjacency entries must be 0/1");
      a.set(i, j, static_cast<double>(ij));
    }
  a.freeze();
  m.set_all_edge_activities(a);
  if (!weights.empty()) m.set_all_vertex_activities(weights);
  return m;
}

Mrf make_widom_rowlinson(graph::GraphPtr g, double lambda) {
  LS_REQUIRE(lambda > 0.0, "activity must be positive");
  // H: empty(0) adjacent to everything incl. itself; species 1 and 2
  // adjacent to themselves and to empty but not to each other.
  const std::vector<int> h = {1, 1, 1,
                              1, 1, 0,
                              1, 0, 1};
  return make_homomorphism(std::move(g), 3, h, {1.0, lambda, lambda});
}

double hardcore_uniqueness_threshold(int delta) {
  LS_REQUIRE(delta >= 3, "uniqueness threshold needs Delta >= 3");
  const double d = delta;
  return std::pow(d - 1.0, d - 1.0) / std::pow(d - 2.0, d);
}

}  // namespace lsample::mrf
