// Edge activity matrices A_e and their normalizations Ã_e = A_e / max A_e
// (used by the LocalMetropolis filter).
#pragma once

#include <vector>

namespace lsample::mrf {

/// Symmetric non-negative q x q matrix with a cached maximum entry.
class ActivityMatrix {
 public:
  /// Zero matrix of the given size.
  explicit ActivityMatrix(int q);

  /// Builds from row-major entries; must be symmetric, non-negative, and
  /// not identically zero.
  ActivityMatrix(int q, std::vector<double> entries);

  [[nodiscard]] int q() const noexcept { return q_; }

  [[nodiscard]] double at(int i, int j) const noexcept {
    return a_[static_cast<std::size_t>(i) * static_cast<std::size_t>(q_) +
              static_cast<std::size_t>(j)];
  }

  /// Sets A(i,j) = A(j,i) = v.  Call freeze() after the last mutation.
  void set(int i, int j, double v);

  /// Validates and caches the maximum entry; called automatically by the
  /// entries constructor.
  void freeze();

  /// Ã(i,j) = A(i,j) / max entry, in [0,1].
  [[nodiscard]] double normalized_at(int i, int j) const noexcept {
    return at(i, j) * inv_max_;
  }

  [[nodiscard]] double max_entry() const noexcept { return max_; }

 private:
  int q_;
  std::vector<double> a_;
  double max_ = 0.0;
  double inv_max_ = 0.0;
};

}  // namespace lsample::mrf
