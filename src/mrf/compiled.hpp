// CompiledMrf — a flat, read-only execution view of an Mrf.
//
// The Mrf class stores one heap-allocated ActivityMatrix per edge and one
// activity vector per vertex, which is the right shape for model *building*
// but wrong for the sampling hot path: almost every model in the paper (and
// every model the facade builds) shares a single activity matrix across all
// edges, and the per-round kernels touch every edge of every updated vertex.
//
// Compiling an Mrf produces:
//   * a deduplicated table pool — edges mapping to byte-identical activity
//     matrices share one contiguous q*q block (a proper q-coloring compiles
//     to exactly one table regardless of edge count);
//   * for each pooled table, three layouts: raw row-major entries, a
//     transposed copy (so the heat-bath kernel reads a contiguous row for a
//     fixed neighbor spin), and precomputed normalized entries
//     Ã(i,j) = A(i,j)/max A for the LocalMetropolis filter;
//   * vertex activities packed into one n*q array;
//   * edge endpoints packed into flat arrays, and the graph's CSR adjacency
//     finalized.
//
// Options add two compile-time layout/codegen choices:
//   * reorder — a cache-aware vertex ordering (graph/reorder.hpp).  The
//     per-vertex rows and packed activities are laid out in that order and
//     the chains sweep vertices as v = order()[i], so a vertex's row and its
//     neighbors' state live in nearby cache lines.  Pure layout: external
//     vertex ids, edge ids, RNG keys, per-row edge order, and hence whole
//     trajectories are unchanged for ANY ordering (the reorder tests assert
//     bitwise equality).  The ORIGINAL graph CSR stays exposed through
//     csr_offsets()/..._flat() because the LOCAL runtime's port layout is
//     defined on it.
//   * tier — kernel tier.  Tier::exact (default) keeps every kernel
//     value-identical (bit-for-bit) to the corresponding Mrf method: the
//     same doubles multiplied in the same order, so chains on the compiled
//     view reproduce their seed trajectories exactly.  Tier::fast_math lets
//     the heat-bath marginal reassociate the per-edge factor products
//     (pairwise accumulation, better ILP/SIMD); trajectories then differ in
//     rounding but the stationary law does not — the fuzzer's TV checker
//     validates the tier statistically instead of bitwise.
//
// The view borrows the Mrf and its graph; both must outlive it and must not
// be mutated while the view is alive.
#pragma once

#include <span>
#include <vector>

#include "graph/reorder.hpp"
#include "mrf/mrf.hpp"

namespace lsample::mrf {

class CompiledMrf {
 public:
  enum class Tier {
    exact,      // bit-identical to Mrf methods (default)
    fast_math,  // reassociated marginal products; statistical equivalence
  };

  struct Options {
    graph::VertexOrder reorder = graph::VertexOrder::none;
    Tier tier = Tier::exact;
  };

  /// Compiles m: dedups tables, packs activities, finalizes the graph CSR,
  /// and lays rows out per `options`.
  explicit CompiledMrf(const Mrf& m);
  CompiledMrf(const Mrf& m, const Options& options);

  [[nodiscard]] const Mrf& mrf() const noexcept { return *m_; }
  [[nodiscard]] const graph::Graph& g() const noexcept { return m_->g(); }
  [[nodiscard]] int q() const noexcept { return q_; }
  [[nodiscard]] int n() const noexcept { return n_; }
  [[nodiscard]] int num_edges() const noexcept {
    return static_cast<int>(edge_u_.size());
  }

  [[nodiscard]] Tier tier() const noexcept { return tier_; }
  [[nodiscard]] graph::VertexOrder reorder() const noexcept { return reorder_; }

  /// The sweep order: order()[i] is the external id of the vertex whose row
  /// sits at layout position i (identity when reorder == none).  Chains
  /// iterate i = begin..end and update v = order()[i]; since every slot
  /// write is keyed by the external id, the sweep order is invisible in the
  /// trajectory.
  [[nodiscard]] std::span<const int> order() const noexcept { return order_; }
  /// Inverse permutation: rank()[order()[i]] == i.
  [[nodiscard]] std::span<const int> rank() const noexcept { return rank_; }

  /// Incident edge ids of external vertex v in the (possibly permuted) row
  /// layout.  Entry order within the row is ALWAYS the graph's insertion
  /// order, so kernels accumulate factors identically for any reorder.
  [[nodiscard]] std::span<const int> incident_row(int v) const noexcept {
    const auto b = static_cast<std::size_t>(row_begin_[static_cast<std::size_t>(v)]);
    const auto e = static_cast<std::size_t>(row_end_[static_cast<std::size_t>(v)]);
    return inc_rows_.subspan(b, e - b);
  }
  /// Neighbor ids aligned index-for-index with incident_row(v).
  [[nodiscard]] std::span<const int> neighbor_row(int v) const noexcept {
    const auto b = static_cast<std::size_t>(row_begin_[static_cast<std::size_t>(v)]);
    const auto e = static_cast<std::size_t>(row_end_[static_cast<std::size_t>(v)]);
    return nbr_rows_.subspan(b, e - b);
  }

  /// Number of distinct activity tables after deduplication.
  [[nodiscard]] int num_tables() const noexcept {
    return static_cast<int>(tables_.size() / table_stride());
  }
  [[nodiscard]] int table_index(int e) const noexcept {
    return table_of_edge_[static_cast<std::size_t>(e)];
  }

  /// Raw row-major entries of edge e's table (q*q doubles, A(i,j) at i*q+j).
  [[nodiscard]] std::span<const double> table(int e) const noexcept {
    return {tables_.data() + table_offset(e), table_stride()};
  }
  /// Transposed entries of edge e's table (A(i,j) at j*q+i); row s is the
  /// contiguous vector c -> A(c, s) the heat-bath kernel consumes.
  [[nodiscard]] std::span<const double> table_transposed(int e) const noexcept {
    return {tables_t_.data() + table_offset(e), table_stride()};
  }
  /// Normalized entries Ã(i,j) = A(i,j)/max A, row-major.
  [[nodiscard]] std::span<const double> norm_table(int e) const noexcept {
    return {norm_tables_.data() + table_offset(e), table_stride()};
  }

  [[nodiscard]] std::span<const double> vertex_activity(int v) const noexcept {
    return {vert_act_.data() +
                static_cast<std::size_t>(rank_[static_cast<std::size_t>(v)]) *
                    static_cast<std::size_t>(q_),
            static_cast<std::size_t>(q_)};
  }
  [[nodiscard]] std::span<const double> proposal_weights(int v) const noexcept {
    return vertex_activity(v);
  }

  [[nodiscard]] int edge_u(int e) const noexcept {
    return edge_u_[static_cast<std::size_t>(e)];
  }
  [[nodiscard]] int edge_v(int e) const noexcept {
    return edge_v_[static_cast<std::size_t>(e)];
  }

  /// ORIGINAL (external-id order) CSR adjacency, finalized at construction;
  /// safe for concurrent reads.  The LOCAL runtime's message-port layout is
  /// defined on these arrays, so they are never permuted — kernels use
  /// incident_row()/neighbor_row() for the cache-aware layout instead.
  [[nodiscard]] std::span<const int> csr_offsets() const noexcept {
    return offsets_;
  }
  [[nodiscard]] std::span<const int> incident_edges_flat() const noexcept {
    return inc_flat_;
  }
  [[nodiscard]] std::span<const int> neighbors_flat() const noexcept {
    return nbr_flat_;
  }

  /// Unnormalized heat-bath marginal of eq. (2).  Tier::exact is
  /// value-identical to Mrf::marginal_weights: out[c] = b_v(c) * prod_i
  /// A_{e_i}(c, x_{u_i}) with factors multiplied in incident-edge order.
  /// Tier::fast_math accumulates edge factors pairwise (reassociated — same
  /// product up to rounding).  `out` is resized to q.
  void marginal_weights(int v, const Config& x, std::vector<double>& out) const;

  /// LocalMetropolis filter probability Ã(su,sv)·Ã(xu,sv)·Ã(su,xv),
  /// value-identical to Mrf::edge_pass_prob.
  [[nodiscard]] double edge_pass_prob(int e, int su, int sv, int xu,
                                      int xv) const noexcept {
    const double* nt = norm_tables_.data() + table_offset(e);
    const std::size_t q = static_cast<std::size_t>(q_);
    return nt[static_cast<std::size_t>(su) * q + static_cast<std::size_t>(sv)] *
           nt[static_cast<std::size_t>(xu) * q + static_cast<std::size_t>(sv)] *
           nt[static_cast<std::size_t>(su) * q + static_cast<std::size_t>(xv)];
  }

 private:
  [[nodiscard]] std::size_t table_stride() const noexcept {
    return static_cast<std::size_t>(q_) * static_cast<std::size_t>(q_);
  }
  [[nodiscard]] std::size_t table_offset(int e) const noexcept {
    return static_cast<std::size_t>(table_of_edge_[static_cast<std::size_t>(e)]) *
           table_stride();
  }

  const Mrf* m_;
  int q_ = 0;
  int n_ = 0;
  Tier tier_ = Tier::exact;
  graph::VertexOrder reorder_ = graph::VertexOrder::none;
  std::vector<int> table_of_edge_;
  std::vector<double> tables_;       // pooled, row-major
  std::vector<double> tables_t_;     // pooled, transposed
  std::vector<double> norm_tables_;  // pooled, row-major, / max entry
  std::vector<double> vert_act_;     // n * q, packed in rank order
  std::vector<int> edge_u_;
  std::vector<int> edge_v_;
  std::span<const int> offsets_;   // original graph CSR (borrowed)
  std::span<const int> inc_flat_;
  std::span<const int> nbr_flat_;

  // Row layout: external vertex v's row is inc_rows_[row_begin_[v] ..
  // row_end_[v]).  Aliases the graph CSR when reorder == none; otherwise
  // owned copies permuted so that rows appear in rank order.
  std::vector<int> order_;
  std::vector<int> rank_;
  std::vector<int> row_begin_;  // indexed by external id
  std::vector<int> row_end_;
  std::vector<int> own_inc_;
  std::vector<int> own_nbr_;
  std::span<const int> inc_rows_;
  std::span<const int> nbr_rows_;
};

[[nodiscard]] constexpr const char* tier_name(CompiledMrf::Tier t) noexcept {
  return t == CompiledMrf::Tier::fast_math ? "fast_math" : "exact";
}

}  // namespace lsample::mrf
