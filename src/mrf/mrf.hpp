// Markov random field on a network (eq. (1) of the paper):
//
//   w(sigma) = prod_{e=uv in E} A_e(sigma_u, sigma_v) * prod_v b_v(sigma_v)
//
// with symmetric non-negative edge activities A_e and non-negative vertex
// activities b_v.  The class provides exactly the local quantities the
// paper's algorithms need:
//   * the heat-bath marginal of eq. (2) for Glauber-type updates, and
//   * the per-edge filter probability Ã(σu,σv)·Ã(Xu,σv)·Ã(σu,Xv) of
//     Algorithm 2 (LocalMetropolis).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "mrf/activity.hpp"

namespace lsample::mrf {

/// Spin configuration: one value in [0,q) per vertex.
using Config = std::vector<int>;

class Mrf {
 public:
  /// All edges start with the all-ones activity and all vertices with the
  /// all-ones activity vector (i.e. the uniform distribution over [q]^V).
  Mrf(graph::GraphPtr g, int q);

  [[nodiscard]] const graph::Graph& g() const noexcept { return *graph_; }
  [[nodiscard]] graph::GraphPtr graph_ptr() const noexcept { return graph_; }
  [[nodiscard]] int q() const noexcept { return q_; }
  [[nodiscard]] int n() const noexcept { return graph_->num_vertices(); }

  void set_edge_activity(int e, ActivityMatrix a);
  void set_all_edge_activities(const ActivityMatrix& a);
  void set_vertex_activity(int v, std::vector<double> b);
  void set_all_vertex_activities(const std::vector<double>& b);

  [[nodiscard]] const ActivityMatrix& edge_activity(int e) const;
  [[nodiscard]] std::span<const double> vertex_activity(int v) const;

  /// log w(sigma); -infinity when w(sigma) = 0 (infeasible).
  [[nodiscard]] double log_weight(const Config& x) const;

  /// w(sigma) > 0?
  [[nodiscard]] bool feasible(const Config& x) const;

  /// Unnormalized heat-bath marginal weights of eq. (2):
  /// out[c] = b_v(c) * prod_{u in Γ(v)} A_uv(c, x_u).
  /// `out` is resized to q.
  void marginal_weights(int v, const Config& x, std::vector<double>& out) const;

  /// LocalMetropolis edge-check pass probability
  /// Ã_e(su,sv) * Ã_e(xu,sv) * Ã_e(su,xv), where (u,v) are e's endpoints in
  /// the graph's stored orientation.
  [[nodiscard]] double edge_pass_prob(int e, int su, int sv, int xu,
                                      int xv) const;

  /// Proposal weights for LocalMetropolis at v (a copy of b_v; callers
  /// normalize via categorical sampling).
  [[nodiscard]] std::span<const double> proposal_weights(int v) const {
    return vertex_activity(v);
  }

  /// Checks the well-definedness assumption of §3 (the marginal (2) is never
  /// the zero vector) by brute force over x restricted to v's neighborhood.
  /// Only intended for small-degree sanity checks in tests.
  [[nodiscard]] bool marginals_always_defined_at(int v) const;

 private:
  void check_spin(int s) const;

  graph::GraphPtr graph_;
  int q_;
  std::vector<ActivityMatrix> edge_acts_;
  std::vector<std::vector<double>> vertex_acts_;
};

/// Validates that x has one spin in [0,q) per vertex of m's graph.
void check_config(const Mrf& m, const Config& x);

}  // namespace lsample::mrf
