// Closed-form quantities from the paper's analysis: mixing conditions,
// round budgets, and the coupling-contraction functions whose roots give the
// 2+sqrt(2) and alpha* thresholds (§3.1, §4.2).
#pragma once

#include <cstdint>

namespace lsample::core {

/// 2 + sqrt(2) ≈ 3.4142: the ideal-coupling threshold of Theorem 4.2.
[[nodiscard]] double ideal_threshold() noexcept;

/// alpha* ≈ 3.6336: the positive root of alpha = 2 e^{1/alpha} + 1, the
/// threshold of the easy local coupling (Lemma 4.4).
[[nodiscard]] double alpha_star() noexcept;

/// Expected number of disagreeing vertices after one step of the ideal
/// coupling on the Delta-regular tree (§4.2.1):
///   1 - (1 - Delta/q)(1 - 2/q)^Delta + Delta/(q - 2Delta) (1 - 2/q)^{Delta-1}.
/// Path coupling contracts iff this is < 1.  Requires q > 2*Delta.
[[nodiscard]] double ideal_coupling_expected_disagreement(double q, int delta);

/// Delta -> infinity limit of the above at q = alpha*Delta:
///   1 - e^{-2/alpha} (1 - 1/alpha - 1/(alpha-2)).
[[nodiscard]] double ideal_coupling_limit(double alpha);

/// Contraction margin of the easy local coupling (LHS of (13)):
///   (1 - Delta/q)(1 - 3/q)^Delta - (2 Delta/q)(1 - 2/q)^Delta.
/// Positive => Lemma 4.4 applies (tau = O(log(n/eps))).
[[nodiscard]] double easy_coupling_margin(double q, int delta);

/// Delta -> infinity limit of the easy margin at q = alpha*Delta:
///   (1 - 1/alpha) e^{-3/alpha} - (2/alpha) e^{-2/alpha}.
[[nodiscard]] double easy_coupling_limit(double alpha);

/// Contraction margin of the global coupling (LHS of (26)):
///   (1 - Delta/q)(1 - 2/q)^Delta - Delta/(q - 2Delta + 2) (1 - 2/q)^{Delta-1}.
/// Positive => Lemma 4.5 applies.  Requires q > 2*Delta - 2.
[[nodiscard]] double global_coupling_margin(double q, int delta);

/// Dobrushin total influence for uniform q-colorings on a graph of maximum
/// degree Delta: Delta / (q - Delta) (requires q > Delta).
[[nodiscard]] double coloring_dobrushin_alpha(int q, int delta);

/// LubyGlauber round budget from the proof of Theorem 3.2 with scheduler
/// selection probability >= gamma and total influence alpha < 1:
///   T = ceil(ln(4n/eps)/gamma) + ceil(ln(2n/eps)/((1-alpha) gamma)).
[[nodiscard]] std::int64_t luby_glauber_round_budget(std::int64_t n,
                                                     double gamma,
                                                     double alpha, double eps);

/// LocalMetropolis round budget from Lemma 4.3 with path-coupling contraction
/// margin delta and pre-metric diameter <= n * Delta:
///   T = ceil(ln(n Delta / eps) / delta).
[[nodiscard]] std::int64_t local_metropolis_round_budget(std::int64_t n,
                                                         int delta_max,
                                                         double contraction,
                                                         double eps);

}  // namespace lsample::core
