// High-level public API: "give me a sample within eps of the Gibbs
// distribution" with round budgets derived from the paper's theorems.
//
// This is the facade a downstream user should start from; everything else in
// the library is reachable from here (the chains for custom schedules, the
// LOCAL simulator for distributed execution, inference/ for exact analysis).
#pragma once

#include <cstdint>
#include <optional>

#include "chains/stopping.hpp"
#include "csp/factor_graph.hpp"
#include "graph/reorder.hpp"
#include "local/message_stats.hpp"
#include "mrf/mrf.hpp"

namespace lsample::core {

enum class Algorithm {
  luby_glauber,      ///< Algorithm 1: O(Delta log(n/eps)) under Dobrushin
  local_metropolis,  ///< Algorithm 2: O(log(n/eps)) under Thm 4.2 conditions
};

enum class Backend {
  /// In-memory reference chains (chains/) — the fast default.
  chain,
  /// The message-passing LOCAL-model runtime (local/): every vertex runs as
  /// a node program reading only its ports, one chain step per communication
  /// round.  The sampled configuration is bit-identical to the chain backend
  /// with the same (model, algorithm, seed, rounds) — at any thread count —
  /// and the result carries the communication profile (MessageStats).
  local_network,
};

struct SamplerOptions {
  Algorithm algorithm = Algorithm::local_metropolis;
  Backend backend = Backend::chain;
  double epsilon = 0.01;       ///< target total-variation distance
  std::uint64_t seed = 1;
  /// Override the theory-derived round budget (useful outside guaranteed
  /// regimes; required when no theorem applies to the instance).
  std::optional<std::int64_t> rounds;
  /// Worker threads for each round's parallel update (>= 1).  The sampled
  /// configuration is a pure function of (model, seed, rounds) and does NOT
  /// depend on this — any thread count yields the bit-identical sample; 0
  /// means "use all hardware threads".
  int num_threads = 1;
  /// Independent samples per sample_many() call (>= 1).  Replica r runs with
  /// seed chains::replica_seed(seed, r) against one shared compiled model
  /// view; the batch is bit-identical at any num_threads.  The single-sample
  /// facade functions ignore this field.
  int num_replicas = 1;
  /// Cache-aware vertex reordering for the compiled model views (pure
  /// layout: the sample is bit-identical for ANY choice, which the reorder
  /// tests assert).
  graph::VertexOrder reorder = graph::VertexOrder::none;
  /// Shards for the local_network backend (>= 1).  With num_shards > 1 the
  /// network is partitioned (contiguous-by-BFS-order with greedy edge-cut
  /// refinement) into per-shard message arenas that exchange only boundary
  /// ("halo") slots each round; the sampled configuration and MessageStats
  /// stay bit-identical to the unsharded run at any shard count, and the
  /// result's halo_stats reports the bytes that crossed shard boundaries.
  /// Single-sample entry points only; rejected by the chain backend and by
  /// sample_many.
  int num_shards = 1;
  /// Enables CompiledMrf::Tier::fast_math for the chain backend's MRF
  /// kernels: the heat-bath marginal accumulates edge factors pairwise
  /// (reassociated — faster, same stationary law, validated by the fuzzer's
  /// TV checks) so trajectories are no longer bit-identical to the seed
  /// path.  The default keeps every bit-identity guarantee.  Ignored by the
  /// local_network backend (its node programs keep the exact product order,
  /// so backend bit-equality holds only with fast_math off) and by the CSP
  /// entry points.
  bool fast_math = false;
  /// Stopping policy (chains/stopping.hpp): `fixed` runs the full round
  /// budget; `coupling` stops at the first doubling checkpoint where a
  /// fleet of independently-seeded grand-coupled pairs (payload init vs
  /// adversarial init) has fully coalesced, then runs the payload that many
  /// rounds on its own stream; `cftp`
  /// returns a PERFECT hardcore sample via sandwich coupling from the past
  /// (hardcore-shaped models only; throws chains::StoppingError instead of
  /// hanging when the sandwich cannot close); `rhat` stops when a
  /// cross-replica Gelman–Rubin diagnostic over a fixed fleet of 4
  /// diagnostic replicas converges; `automatic` picks cftp for
  /// hardcore-shaped models, coupling for other MRFs, rhat for CSPs.  The
  /// round budget (theory-derived or options.rounds) becomes the hard cap:
  /// adaptive runs never exceed it, and an unconverged diagnostic falls
  /// back to it (result.stopped_early == false).  The decision is a pure
  /// function of (model, seed, rule): bit-identical at any num_threads and
  /// independent of num_replicas.  Chain backend only.
  chains::StopRule stop = chains::StopRule::fixed;
};

struct SampleResult {
  mrf::Config config;
  std::int64_t rounds = 0;   ///< chain steps spent (= communication rounds)
  bool feasible = false;     ///< w(config) > 0
  double theory_alpha = -1;  ///< Dobrushin alpha used (LubyGlauber), if any
  /// Communication profile when backend == local_network (all-zero for the
  /// chain backend).  rounds here counts SIMULATED rounds: completing R
  /// chain steps costs R+1 rounds (round 0 is the initial broadcast).
  local::MessageStats message_stats;
  /// Shard-boundary traffic when backend == local_network and
  /// options.num_shards > 1 (all-zero otherwise).
  local::HaloStats halo_stats;
  /// Rounds the payload chain actually ran (== rounds; for stop == cftp,
  /// total CFTP sweeps — one sweep is n single-site updates).
  std::int64_t rounds_used = 0;
  /// The budget the fixed policy would have paid (theory-derived or
  /// options.rounds; 0 when cftp runs without any applicable budget).
  std::int64_t budget_rounds = 0;
  /// True iff an adaptive rule certified convergence within the budget
  /// (rounds_used < budget_rounds implies actual savings; false means the
  /// diagnostic never converged and the full fixed budget was paid).
  bool stopped_early = false;
  /// The rule that actually decided (automatic resolved; fixed otherwise).
  chains::StopRule stop_rule = chains::StopRule::fixed;
};

/// Samples an approximately uniform proper q-coloring of g (Theorems 1.1 /
/// 1.2).  If options.rounds is unset, the budget comes from the theorems and
/// the call throws when the instance lies outside every guaranteed regime
/// (q <= 2*Delta for LubyGlauber; no positive coupling margin for
/// LocalMetropolis).
[[nodiscard]] SampleResult sample_coloring(graph::GraphPtr g, int q,
                                           const SamplerOptions& options);

/// Samples an approximately uniform proper list coloring (Corollary 3.4:
/// LubyGlauber mixes in O(Delta log(n/eps)) when every list satisfies
/// q_v >= (2+delta) d_v).  If options.rounds is unset the budget uses the
/// list-coloring Dobrushin bound alpha = max_v d_v/(q_v - d_v), which must
/// be < 1.
[[nodiscard]] SampleResult sample_list_coloring(
    graph::GraphPtr g, int q, const std::vector<std::vector<int>>& lists,
    const SamplerOptions& options);

/// Samples from the hardcore distribution with fugacity lambda.  There is no
/// general theorem budget here (and Theorem 1.3 says none can exist for
/// large lambda), so options.rounds must be set unless the Dobrushin bound
/// applies (lambda < 1/(Delta - 1) is used as a sufficient condition).
[[nodiscard]] SampleResult sample_hardcore(graph::GraphPtr g, double lambda,
                                           const SamplerOptions& options);

/// Samples from an arbitrary MRF with an explicit round budget.
[[nodiscard]] SampleResult sample_mrf(const mrf::Mrf& m,
                                      const SamplerOptions& options);

/// A batch of independent samples drawn in one call.
struct BatchSampleResult {
  std::vector<mrf::Config> configs;  ///< one per replica, in replica order
  std::int64_t rounds = 0;           ///< rounds spent by EACH replica
  int feasible_count = 0;            ///< replicas with w(config) > 0
  double theory_alpha = -1;          ///< Dobrushin alpha used, if any
  /// Summed communication profile over all replicas when
  /// backend == local_network (all-zero for the chain backend).
  local::MessageStats message_stats;
  /// Rounds each replica actually ran (cftp: max sweeps over replicas —
  /// each replica's perfect sampler stops on its own).
  std::int64_t rounds_used = 0;
  std::int64_t budget_rounds = 0;  ///< the fixed policy's budget
  bool stopped_early = false;      ///< adaptive rule converged under budget
  chains::StopRule stop_rule = chains::StopRule::fixed;  ///< resolved rule
};

/// Draws options.num_replicas independent samples from m in one call — the
/// batching primitive for a serving front end.  All replicas share one
/// compiled model view and one thread pool (options.num_threads workers,
/// 0 = all hardware threads); replica r's trajectory is seeded by
/// chains::replica_seed(options.seed, r) and is bit-identical to
/// sample_mrf(m, ...) with that seed — at any thread count and any replica
/// batch size.  Requires an explicit round budget (options.rounds), like
/// sample_mrf.
[[nodiscard]] BatchSampleResult sample_many(const mrf::Mrf& m,
                                            const SamplerOptions& options);

/// sample_many for proper q-colorings, with the round budget derived from
/// the paper's theorems when options.rounds is unset (same regime rules as
/// sample_coloring).
[[nodiscard]] BatchSampleResult sample_many_colorings(
    graph::GraphPtr g, int q, const SamplerOptions& options);

/// Samples from a weighted local CSP (§4's generalization beyond pairwise
/// MRFs) with an explicit round budget and initial configuration.  x0 is
/// explicit because finding any feasible configuration of a general CSP is
/// itself NP-hard — the caller knows the trivially feasible state of their
/// model (e.g. the all-chosen dominating set).  options.algorithm selects
/// CspLubyGlauber (the Luby step on the conflict graph, §3's remark) or
/// CspLocalMetropolis (one shared coin per constraint, §4's remark); both
/// run on one CompiledFactorGraph view, node-parallel at
/// options.num_threads with a bit-identical sample at any thread count.
/// Supports the chain backend only.
[[nodiscard]] SampleResult sample_csp(const csp::FactorGraph& fg,
                                      const csp::Config& x0,
                                      const SamplerOptions& options);

/// Draws options.num_replicas independent CSP samples in one call.  All
/// replicas share one compiled view and one thread pool; replica r's
/// trajectory is seeded by chains::replica_seed(options.seed, r) and is
/// bit-identical to sample_csp with that seed — at any thread count and any
/// replica batch size.
[[nodiscard]] BatchSampleResult sample_many_csp(const csp::FactorGraph& fg,
                                                const csp::Config& x0,
                                                const SamplerOptions& options);

/// The round budget the library would use for a coloring instance (exposed
/// for planning and for the benches).
[[nodiscard]] std::int64_t coloring_round_budget(int n, int delta, int q,
                                                 Algorithm algorithm,
                                                 double epsilon);

}  // namespace lsample::core
