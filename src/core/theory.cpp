#include "core/theory.hpp"

#include <cmath>

#include "util/require.hpp"

namespace lsample::core {

double ideal_threshold() noexcept { return 2.0 + std::sqrt(2.0); }

double alpha_star() noexcept {
  // Positive root of f(a) = a - 2 e^{1/a} - 1 by bisection.
  double lo = 3.0;
  double hi = 4.0;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    const double f = mid - 2.0 * std::exp(1.0 / mid) - 1.0;
    (f < 0.0 ? lo : hi) = mid;
  }
  return 0.5 * (lo + hi);
}

double ideal_coupling_expected_disagreement(double q, int delta) {
  LS_REQUIRE(delta >= 1 && q > 2.0 * delta, "requires q > 2*Delta");
  const double d = delta;
  return 1.0 - (1.0 - d / q) * std::pow(1.0 - 2.0 / q, d) +
         d / (q - 2.0 * d) * std::pow(1.0 - 2.0 / q, d - 1.0);
}

double ideal_coupling_limit(double alpha) {
  LS_REQUIRE(alpha > 2.0, "requires alpha > 2");
  return 1.0 - std::exp(-2.0 / alpha) *
                   (1.0 - 1.0 / alpha - 1.0 / (alpha - 2.0));
}

double easy_coupling_margin(double q, int delta) {
  LS_REQUIRE(delta >= 1 && q > delta, "requires q > Delta");
  const double d = delta;
  return (1.0 - d / q) * std::pow(1.0 - 3.0 / q, d) -
         (2.0 * d / q) * std::pow(1.0 - 2.0 / q, d);
}

double easy_coupling_limit(double alpha) {
  LS_REQUIRE(alpha > 0.0, "requires alpha > 0");
  return (1.0 - 1.0 / alpha) * std::exp(-3.0 / alpha) -
         (2.0 / alpha) * std::exp(-2.0 / alpha);
}

double global_coupling_margin(double q, int delta) {
  LS_REQUIRE(delta >= 1 && q > 2.0 * delta - 2.0,
             "requires q > 2*Delta - 2");
  const double d = delta;
  return (1.0 - d / q) * std::pow(1.0 - 2.0 / q, d) -
         d / (q - 2.0 * d + 2.0) * std::pow(1.0 - 2.0 / q, d - 1.0);
}

double coloring_dobrushin_alpha(int q, int delta) {
  LS_REQUIRE(q > delta && delta >= 0, "requires q > Delta");
  return delta == 0 ? 0.0 : static_cast<double>(delta) / (q - delta);
}

std::int64_t luby_glauber_round_budget(std::int64_t n, double gamma,
                                       double alpha, double eps) {
  LS_REQUIRE(n >= 1 && gamma > 0.0 && gamma <= 1.0, "invalid n or gamma");
  LS_REQUIRE(alpha >= 0.0 && alpha < 1.0, "Dobrushin condition needs alpha<1");
  LS_REQUIRE(eps > 0.0 && eps < 1.0, "epsilon in (0,1)");
  const double t1 = std::ceil(std::log(4.0 * static_cast<double>(n) / eps) /
                              gamma);
  const double t2 = std::ceil(std::log(2.0 * static_cast<double>(n) / eps) /
                              ((1.0 - alpha) * gamma));
  return static_cast<std::int64_t>(t1 + t2);
}

std::int64_t local_metropolis_round_budget(std::int64_t n, int delta_max,
                                           double contraction, double eps) {
  LS_REQUIRE(n >= 1 && delta_max >= 1, "invalid n or Delta");
  LS_REQUIRE(contraction > 0.0 && contraction <= 1.0,
             "contraction margin must be in (0,1]");
  LS_REQUIRE(eps > 0.0 && eps < 1.0, "epsilon in (0,1)");
  return static_cast<std::int64_t>(
      std::ceil(std::log(static_cast<double>(n) * delta_max / eps) /
                contraction));
}

}  // namespace lsample::core
