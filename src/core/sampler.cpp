#include "core/sampler.hpp"

#include <memory>
#include <optional>

#include "chains/chain.hpp"
#include "chains/engine.hpp"
#include "chains/init.hpp"
#include "chains/local_metropolis.hpp"
#include "chains/luby_glauber.hpp"
#include "chains/replicas.hpp"
#include "csp/compiled.hpp"
#include "csp/csp_chains.hpp"
#include "local/node_programs.hpp"
#include "local/sharding.hpp"
#include "mrf/compiled.hpp"
#include "inference/influence.hpp"
#include "core/theory.hpp"
#include "mrf/models.hpp"
#include "util/require.hpp"

namespace lsample::core {

namespace {

/// Compile options for the MRF view derived from the facade options.
mrf::CompiledMrf::Options mrf_compile_options(const SamplerOptions& options) {
  return {options.reorder, options.fast_math
                               ? mrf::CompiledMrf::Tier::fast_math
                               : mrf::CompiledMrf::Tier::exact};
}

/// Resolves StopRule::automatic to the strongest applicable rule for an
/// MRF: perfect sampling (cftp) when the sandwich structure exists,
/// otherwise the grand-coupling certificate.  (CSP entry points resolve
/// automatic to rhat — no coupling structure on a general CSP.)
chains::StopRule resolve_stop_rule(chains::StopRule rule, const mrf::Mrf& m) {
  if (rule != chains::StopRule::automatic) return rule;
  return chains::is_hardcore_shaped(m) ? chains::StopRule::cftp
                                       : chains::StopRule::coupling;
}

/// Adversarial twin init for the coupling rule: the extremal configuration
/// farthest from the library's canonical payload init (greedy assigns the
/// lowest feasible spins, so all-(q-1) maximizes Hamming distance; for
/// hardcore it is the fully-occupied upper extreme).
mrf::Config adversarial_config(const mrf::Mrf& m, const mrf::Config& x0) {
  mrf::Config y = chains::constant_config(m, m.q() - 1);
  if (y == x0) y = chains::constant_config(m, 0);
  return y;
}

std::unique_ptr<chains::Chain> make_mrf_chain(
    Algorithm algorithm, std::shared_ptr<const mrf::CompiledMrf> cm,
    std::uint64_t seed) {
  if (algorithm == Algorithm::luby_glauber)
    return std::make_unique<chains::LubyGlauberChain>(std::move(cm), seed);
  return std::make_unique<chains::LocalMetropolisChain>(std::move(cm), seed);
}

/// CFTP horizon cap in sweeps: the round budget when one exists (generous —
/// the sandwich closes in O(log n) sweeps in-regime while budgets are
/// Omega(Delta log n) rounds), else the module default backstop.
std::int64_t cftp_horizon_cap(std::int64_t budget_rounds) {
  return budget_rounds > 0
             ? std::max<std::int64_t>(std::int64_t{64}, budget_rounds)
             : chains::StoppingOptions{}.cftp_max_horizon;
}

/// The coupling stopping decision for an MRF: a fixed fleet of 4 coupled
/// pairs (payload init vs adversarial extremal init, each pair sharing its
/// own salted seed so coalescence realizes the Lemma 4.4 grand coupling),
/// stopped at the first checkpoint where every pair has coalesced.  The
/// diagnostic seeds are disjoint from the payload stream on purpose — the
/// payload must not be stopped at its OWN coalescence time (naive forward
/// coupling is biased; the fuzzer's TV gate demonstrates it).  Pure
/// function of (m, algorithm, seed, max_rounds).
chains::StopDecision coupling_decision_mrf(
    const std::shared_ptr<const mrf::CompiledMrf>& cm, const mrf::Mrf& m,
    const mrf::Config& x0, Algorithm algorithm, std::uint64_t seed,
    std::int64_t max_rounds, int num_threads) {
  chains::StoppingOptions sopt;
  sopt.max_rounds = max_rounds;
  sopt.num_threads = num_threads;
  const mrf::Config y0 = adversarial_config(m, x0);
  const auto factory = [&](int, std::uint64_t pseed) -> chains::CouplingPair {
    chains::CouplingPair pair;
    pair.x = x0;
    pair.y = y0;
    const std::shared_ptr<chains::Chain> cx =
        make_mrf_chain(algorithm, cm, pseed);
    const std::shared_ptr<chains::Chain> cy =
        make_mrf_chain(algorithm, cm, pseed);
    pair.step = [cx, cy](mrf::Config& x, mrf::Config& y, std::int64_t t) {
      cx->step(x, t);
      cy->step(y, t);
    };
    return pair;
  };
  return chains::coupling_fleet_stop(factory, seed, sopt);
}

/// The R-hat stopping decision for an MRF: a fixed fleet of 4 diagnostic
/// replicas on the shared compiled view — replica 0 from the payload init,
/// the rest from iid-uniform random configurations (overdispersed relative
/// to the Gibbs law) — advanced in doubling checkpoints.  Pure function of
/// (m, algorithm, seed, max_rounds): independent of num_threads (asserted
/// by the stopping tests) and of the caller's replica batch size.
chains::StopDecision rhat_decision_mrf(
    const std::shared_ptr<const mrf::CompiledMrf>& cm, const mrf::Mrf& m,
    const mrf::Config& x0, Algorithm algorithm, std::uint64_t seed,
    std::int64_t max_rounds, int num_threads) {
  chains::StoppingOptions sopt;
  sopt.max_rounds = max_rounds;
  sopt.num_threads = num_threads;
  const auto factory = [&](int r,
                           std::uint64_t rseed) -> chains::DiagnosticReplica {
    chains::DiagnosticReplica rep;
    rep.x = r == 0 ? x0
                   : chains::random_config(
                         m, util::mix64(rseed ^ 0x243f6a8885a308d3ULL));
    std::shared_ptr<chains::Chain> chain = make_mrf_chain(algorithm, cm, rseed);
    rep.step = [chain](mrf::Config& x, std::int64_t t) { chain->step(x, t); };
    return rep;
  };
  return chains::rhat_stop(factory, seed, sopt);
}

/// Builds the LOCAL-model network for (algorithm, view, x0, seed).
local::Network make_network(Algorithm algorithm,
                            std::shared_ptr<const mrf::CompiledMrf> cm,
                            const mrf::Config& x0, std::uint64_t seed) {
  return algorithm == Algorithm::luby_glauber
             ? local::make_luby_glauber_network(std::move(cm), x0, seed)
             : local::make_local_metropolis_network(std::move(cm), x0, seed);
}

SampleResult run_chain(const mrf::Mrf& m, const SamplerOptions& options,
                       std::int64_t rounds, double alpha) {
  LS_REQUIRE(options.num_threads >= 0, "num_threads must be >= 0");
  LS_REQUIRE(options.num_shards >= 1, "num_shards must be >= 1");
  LS_REQUIRE(options.num_shards == 1 || options.backend == Backend::local_network,
             "num_shards > 1 requires the local_network backend (the chain "
             "backend has no network to shard)");
  LS_REQUIRE(
      options.stop == chains::StopRule::fixed ||
          options.backend == Backend::chain,
      "adaptive stopping (options.stop != fixed) requires the chain backend");
  SampleResult result;
  result.rounds = rounds;
  result.rounds_used = rounds;
  result.budget_rounds = rounds;
  result.theory_alpha = alpha;
  mrf::Config x = chains::greedy_feasible_config(m);
  const int threads = options.num_threads == 0
                          ? chains::ParallelEngine::hardware_threads()
                          : options.num_threads;
  std::optional<chains::ParallelEngine> engine;
  if (threads > 1) engine.emplace(threads);
  if (options.backend == Backend::local_network &&
      options.num_shards > 1) {
    // The SHARDED LOCAL runtime: same bit-identical contract as the
    // single-arena branch below (at any shard count and thread count), plus
    // the halo traffic profile.  The partition follows the BFS order with
    // greedy edge-cut refinement — pure layout, like `reorder`.
    local::ShardedNetwork::Options net_options;
    net_options.partition.num_shards = options.num_shards;
    const auto cm = std::make_shared<const mrf::CompiledMrf>(
        m, mrf::CompiledMrf::Options{options.reorder,
                                     mrf::CompiledMrf::Tier::exact});
    local::ShardedNetwork net =
        options.algorithm == Algorithm::luby_glauber
            ? local::make_sharded_luby_glauber_network(cm, x, options.seed,
                                                       std::move(net_options))
            : local::make_sharded_local_metropolis_network(
                  cm, x, options.seed, std::move(net_options));
    if (engine.has_value()) net.set_engine(&*engine);
    net.run_rounds(rounds + 1);
    result.message_stats = net.stats();
    result.halo_stats = net.halo_stats();
    result.config = net.outputs();
    result.feasible = m.feasible(result.config);
    return result;
  }
  if (options.backend == Backend::local_network) {
    // The LOCAL runtime: R+1 simulated rounds complete R chain steps, and
    // the outputs are bit-identical to the chain backend below — the
    // contract the test suite asserts per algorithm and thread count.  The
    // node programs inline the exact product order, so fast_math is not
    // forwarded (reorder is pure layout and safe on either backend).
    local::Network net = make_network(
        options.algorithm,
        std::make_shared<const mrf::CompiledMrf>(
            m, mrf::CompiledMrf::Options{options.reorder,
                                         mrf::CompiledMrf::Tier::exact}),
        x, options.seed);
    if (engine.has_value()) net.set_engine(&*engine);
    net.run_rounds(rounds + 1);
    result.message_stats = net.stats();
    result.config = net.outputs();
    result.feasible = m.feasible(result.config);
    return result;
  }
  const chains::StopRule rule = resolve_stop_rule(options.stop, m);
  result.stop_rule = rule;
  if (rule == chains::StopRule::cftp) {
    // Perfect sampling: no payload chain at all.  rounds_used counts CFTP
    // sweeps (n single-site updates each); the budget is kept for the
    // savings report and as a generous horizon cap.
    LS_REQUIRE(chains::is_hardcore_shaped(m),
               "stop = cftp requires a hardcore-shaped model (q = 2, "
               "A = c*[[1,1],[1,0]]); use stop = coupling or rhat");
    const chains::CftpResult perfect = chains::cftp_hardcore(
        m, options.seed, /*first_horizon=*/8, cftp_horizon_cap(rounds));
    result.config = perfect.config;
    result.feasible = m.feasible(result.config);
    result.rounds = perfect.sweeps;
    result.rounds_used = perfect.sweeps;
    result.stopped_early = true;
    return result;
  }
  // One shared view per call so the facade options (reorder, fast_math)
  // reach the kernels; the shared-view constructors are bit-identical to
  // the compile-their-own ones, which the view tests assert.
  const auto cm =
      std::make_shared<const mrf::CompiledMrf>(m, mrf_compile_options(options));
  std::int64_t payload_rounds = rounds;
  if (rule == chains::StopRule::coupling ||
      rule == chains::StopRule::rhat) {
    // The diagnostic fleets run on their own salted streams; the payload
    // below is an ordinary fixed-round run for the decided round count —
    // identical to stop = fixed with rounds = rounds_used.
    const chains::StopDecision decision =
        rule == chains::StopRule::coupling
            ? coupling_decision_mrf(cm, m, x, options.algorithm, options.seed,
                                    rounds, options.num_threads)
            : rhat_decision_mrf(cm, m, x, options.algorithm, options.seed,
                                rounds, options.num_threads);
    payload_rounds = decision.rounds_used;
    result.rounds = payload_rounds;
    result.rounds_used = payload_rounds;
    result.stopped_early = decision.converged;
  }
  auto chain = make_mrf_chain(options.algorithm, cm, options.seed);
  if (engine.has_value()) chain->set_engine(&*engine);
  chains::run(*chain, x, 0, payload_rounds);
  result.feasible = m.feasible(x);
  result.config = std::move(x);
  return result;
}

BatchSampleResult run_replicas(const mrf::Mrf& m, const SamplerOptions& options,
                               std::int64_t rounds, double alpha) {
  LS_REQUIRE(options.num_replicas >= 1, "num_replicas must be >= 1");
  LS_REQUIRE(options.num_threads >= 0, "num_threads must be >= 0");
  LS_REQUIRE(options.num_shards == 1,
             "sample_many does not support sharded networks (num_shards > 1); "
             "replicas already parallelize across whole networks — draw "
             "sharded samples one at a time via the single-sample entry "
             "points");
  LS_REQUIRE(
      options.stop == chains::StopRule::fixed ||
          options.backend == Backend::chain,
      "adaptive stopping (options.stop != fixed) requires the chain backend");
  const int replicas = options.num_replicas;
  // One compiled view shared read-only by every replica; CompiledMrf
  // construction also finalizes the graph CSR, so the concurrent reads
  // below (including m.feasible) never race a lazy rebuild.
  const auto cm =
      std::make_shared<const mrf::CompiledMrf>(m, mrf_compile_options(options));
  const mrf::Config x0 = chains::greedy_feasible_config(m);
  BatchSampleResult result;
  result.rounds = rounds;
  result.rounds_used = rounds;
  result.budget_rounds = rounds;
  result.theory_alpha = alpha;
  const chains::StopRule rule = resolve_stop_rule(options.stop, m);
  result.stop_rule = rule;
  if (rule == chains::StopRule::cftp) {
    // Each replica draws its own PERFECT sample (CFTP horizons differ per
    // replica; rounds_used reports the largest).  Replica r is a pure
    // function of (m, options.seed, r), so batches of any size agree.
    LS_REQUIRE(chains::is_hardcore_shaped(m),
               "stop = cftp requires a hardcore-shaped model (q = 2, "
               "A = c*[[1,1],[1,0]]); use stop = coupling or rhat");
    const std::int64_t cap = cftp_horizon_cap(rounds);
    result.configs.assign(static_cast<std::size_t>(replicas), mrf::Config{});
    std::vector<std::int64_t> sweeps(static_cast<std::size_t>(replicas), 0);
    std::vector<char> ok(static_cast<std::size_t>(replicas), 0);
    chains::ReplicaRunner runner(options.num_threads);
    runner.run(replicas, [&](int r) {
      const chains::CftpResult perfect = chains::cftp_hardcore(
          m, chains::replica_seed(options.seed, static_cast<std::uint64_t>(r)),
          /*first_horizon=*/8, cap);
      sweeps[static_cast<std::size_t>(r)] = perfect.sweeps;
      ok[static_cast<std::size_t>(r)] =
          m.feasible(perfect.config) ? 1 : 0;
      result.configs[static_cast<std::size_t>(r)] = perfect.config;
    });
    result.rounds_used = 0;
    for (const std::int64_t s : sweeps)
      result.rounds_used = std::max(result.rounds_used, s);
    result.rounds = result.rounds_used;
    result.stopped_early = true;
    for (const char f : ok) result.feasible_count += f != 0 ? 1 : 0;
    return result;
  }
  std::int64_t effective_rounds = rounds;
  if (rule == chains::StopRule::coupling ||
      rule == chains::StopRule::rhat) {
    // ONE stopping decision for the whole batch, keyed to the BASE seed —
    // so the decision cannot depend on the batch size, and batches of any
    // num_replicas run the same rounds.
    const chains::StopDecision decision =
        rule == chains::StopRule::coupling
            ? coupling_decision_mrf(cm, m, x0, options.algorithm,
                                    options.seed, rounds, options.num_threads)
            : rhat_decision_mrf(cm, m, x0, options.algorithm, options.seed,
                                rounds, options.num_threads);
    effective_rounds = decision.rounds_used;
    result.stopped_early = decision.converged;
  }
  result.rounds = effective_rounds;
  result.rounds_used = effective_rounds;
  rounds = effective_rounds;
  result.configs.assign(static_cast<std::size_t>(replicas), mrf::Config{});
  std::vector<char> feasible(static_cast<std::size_t>(replicas), 0);
  std::vector<local::MessageStats> net_stats(
      static_cast<std::size_t>(replicas));
  chains::ReplicaRunner runner(options.num_threads);
  runner.run(replicas, [&](int r) {
    const std::uint64_t seed =
        chains::replica_seed(options.seed, static_cast<std::uint64_t>(r));
    mrf::Config x;
    if (options.backend == Backend::local_network) {
      // Replica r on the LOCAL runtime — bit-identical to sample_mrf with
      // this replica's seed and backend (each network runs its rounds
      // sequentially; the runner parallelizes across replicas).
      local::Network net = make_network(options.algorithm, cm, x0, seed);
      net.run_rounds(rounds + 1);
      net_stats[static_cast<std::size_t>(r)] = net.stats();
      x = net.outputs();
    } else {
      std::unique_ptr<chains::Chain> chain;
      if (options.algorithm == Algorithm::luby_glauber)
        chain = std::make_unique<chains::LubyGlauberChain>(cm, seed);
      else
        chain = std::make_unique<chains::LocalMetropolisChain>(cm, seed);
      x = x0;
      chains::run(*chain, x, 0, rounds);
    }
    feasible[static_cast<std::size_t>(r)] = m.feasible(x) ? 1 : 0;
    result.configs[static_cast<std::size_t>(r)] = std::move(x);
  });
  for (char f : feasible) result.feasible_count += f != 0 ? 1 : 0;
  // Deterministic reduction in replica order.
  for (const auto& s : net_stats) {
    result.message_stats.rounds += s.rounds;
    result.message_stats.messages += s.messages;
    result.message_stats.bits += s.bits;
  }
  return result;
}

// The shared instance derivation for proper q-colorings, used by both the
// single-sample and batch entry points so the regime rules can never drift
// apart.
struct ColoringPlan {
  mrf::Mrf m;
  std::int64_t rounds = 0;
  double alpha = -1.0;
};

ColoringPlan plan_coloring(const graph::GraphPtr& g, int q,
                           const SamplerOptions& options) {
  LS_REQUIRE(g != nullptr, "graph must not be null");
  const int delta = g->max_degree();
  LS_REQUIRE(q >= delta + 1, "colorings need q >= Delta + 1 to be feasible");
  ColoringPlan plan{mrf::make_proper_coloring(g, q), 0, -1.0};
  plan.rounds = options.rounds.has_value()
                    ? *options.rounds
                    : coloring_round_budget(g->num_vertices(), delta, q,
                                            options.algorithm, options.epsilon);
  plan.alpha = q > 2 * delta ? coloring_dobrushin_alpha(q, delta) : -1.0;
  return plan;
}

/// Builds the selected CSP chain against a shared compiled view.
std::unique_ptr<csp::CspChain> make_csp_chain(
    Algorithm algorithm, std::shared_ptr<const csp::CompiledFactorGraph> cfg,
    std::uint64_t seed) {
  if (algorithm == Algorithm::luby_glauber)
    return std::make_unique<csp::CspLubyGlauberChain>(std::move(cfg), seed);
  return std::make_unique<csp::CspLocalMetropolisChain>(std::move(cfg), seed);
}

void check_csp_options(const SamplerOptions& options) {
  LS_REQUIRE(options.rounds.has_value(),
             "CSP sampling needs an explicit round budget (no theorem budget "
             "applies to a general weighted local CSP)");
  LS_REQUIRE(options.backend == Backend::chain,
             "CSP sampling supports the chain backend only");
  LS_REQUIRE(options.num_threads >= 0, "num_threads must be >= 0");
  LS_REQUIRE(options.num_shards == 1,
             "CSP sampling does not support sharded networks");
}

/// Resolves the stopping rule for CSP entry points: automatic means rhat
/// (a general CSP has neither the grand-coupling adversarial-init story —
/// finding a second feasible config is itself NP-hard — nor a monotone
/// sandwich), and coupling/cftp are rejected with a named error.
chains::StopRule resolve_csp_stop_rule(chains::StopRule rule) {
  if (rule == chains::StopRule::automatic) return chains::StopRule::rhat;
  LS_REQUIRE(rule == chains::StopRule::fixed || rule == chains::StopRule::rhat,
             "CSP sampling supports stop = fixed, rhat, or auto (no "
             "coupling/cftp structure on a general CSP)");
  return rule;
}

/// The R-hat stopping decision for a CSP: like rhat_decision_mrf, but every
/// diagnostic replica starts from the caller's x0 (the one configuration
/// known to be feasible) and dispersion comes from the independent replica
/// streams.
chains::StopDecision rhat_decision_csp(
    const std::shared_ptr<const csp::CompiledFactorGraph>& cfg,
    const csp::Config& x0, Algorithm algorithm, std::uint64_t seed,
    std::int64_t max_rounds, int num_threads) {
  chains::StoppingOptions sopt;
  sopt.max_rounds = max_rounds;
  sopt.num_threads = num_threads;
  const auto factory = [&](int /*r*/,
                           std::uint64_t rseed) -> chains::DiagnosticReplica {
    chains::DiagnosticReplica rep;
    rep.x = x0;
    std::shared_ptr<csp::CspChain> chain = make_csp_chain(algorithm, cfg, rseed);
    rep.step = [chain](csp::Config& x, std::int64_t t) { chain->step(x, t); };
    return rep;
  };
  return chains::rhat_stop(factory, seed, sopt);
}

}  // namespace

SampleResult sample_csp(const csp::FactorGraph& fg, const csp::Config& x0,
                        const SamplerOptions& options) {
  check_csp_options(options);
  csp::check_config(fg, x0);
  const std::int64_t budget = *options.rounds;
  const chains::StopRule rule = resolve_csp_stop_rule(options.stop);
  SampleResult result;
  result.budget_rounds = budget;
  result.stop_rule = rule;
  const auto cfg = std::make_shared<const csp::CompiledFactorGraph>(
      fg, csp::CompiledFactorGraph::Options{options.reorder});
  std::int64_t rounds = budget;
  if (rule == chains::StopRule::rhat) {
    const chains::StopDecision decision =
        rhat_decision_csp(cfg, x0, options.algorithm, options.seed, budget,
                          options.num_threads);
    rounds = decision.rounds_used;
    result.stopped_early = decision.converged;
  }
  result.rounds = rounds;
  result.rounds_used = rounds;
  const auto chain = make_csp_chain(options.algorithm, cfg, options.seed);
  const int threads = options.num_threads == 0
                          ? chains::ParallelEngine::hardware_threads()
                          : options.num_threads;
  std::optional<chains::ParallelEngine> engine;
  if (threads > 1) {
    engine.emplace(threads);
    chain->set_engine(&*engine);
  }
  csp::Config x = x0;
  for (std::int64_t t = 0; t < rounds; ++t) chain->step(x, t);
  result.feasible = fg.feasible(x);
  result.config = std::move(x);
  return result;
}

BatchSampleResult sample_many_csp(const csp::FactorGraph& fg,
                                  const csp::Config& x0,
                                  const SamplerOptions& options) {
  check_csp_options(options);
  LS_REQUIRE(options.num_replicas >= 1, "num_replicas must be >= 1");
  csp::check_config(fg, x0);
  const std::int64_t budget = *options.rounds;
  const chains::StopRule rule = resolve_csp_stop_rule(options.stop);
  const int replicas = options.num_replicas;
  // One compiled view shared read-only by every replica (it also finalizes
  // the conflict graph, so worker-thread chain construction never races a
  // lazy CSR rebuild).
  const auto cfg = std::make_shared<const csp::CompiledFactorGraph>(
      fg, csp::CompiledFactorGraph::Options{options.reorder});
  BatchSampleResult result;
  result.budget_rounds = budget;
  result.stop_rule = rule;
  std::int64_t rounds = budget;
  if (rule == chains::StopRule::rhat) {
    // One decision for the whole batch, keyed to the base seed — batches of
    // any size run the same rounds (asserted by the stopping tests).
    const chains::StopDecision decision =
        rhat_decision_csp(cfg, x0, options.algorithm, options.seed, budget,
                          options.num_threads);
    rounds = decision.rounds_used;
    result.stopped_early = decision.converged;
  }
  result.rounds = rounds;
  result.rounds_used = rounds;
  result.configs.assign(static_cast<std::size_t>(replicas), csp::Config{});
  std::vector<char> feasible(static_cast<std::size_t>(replicas), 0);
  chains::ReplicaRunner runner(options.num_threads);
  runner.run(replicas, [&](int r) {
    const std::uint64_t seed =
        chains::replica_seed(options.seed, static_cast<std::uint64_t>(r));
    const auto chain = make_csp_chain(options.algorithm, cfg, seed);
    csp::Config x = x0;
    for (std::int64_t t = 0; t < rounds; ++t) chain->step(x, t);
    feasible[static_cast<std::size_t>(r)] = fg.feasible(x) ? 1 : 0;
    result.configs[static_cast<std::size_t>(r)] = std::move(x);
  });
  for (char f : feasible) result.feasible_count += f != 0 ? 1 : 0;
  return result;
}

BatchSampleResult sample_many(const mrf::Mrf& m,
                              const SamplerOptions& options) {
  LS_REQUIRE(options.rounds.has_value(),
             "sample_many needs an explicit round budget");
  return run_replicas(m, options, *options.rounds, -1.0);
}

BatchSampleResult sample_many_colorings(graph::GraphPtr g, int q,
                                        const SamplerOptions& options) {
  const ColoringPlan plan = plan_coloring(g, q, options);
  return run_replicas(plan.m, options, plan.rounds, plan.alpha);
}

std::int64_t coloring_round_budget(int n, int delta, int q,
                                   Algorithm algorithm, double epsilon) {
  LS_REQUIRE(n >= 1 && delta >= 0 && q >= 2, "invalid instance");
  if (algorithm == Algorithm::luby_glauber) {
    LS_REQUIRE(q > 2 * delta,
               "LubyGlauber budget requires Dobrushin's condition q > 2*Delta;"
               " set options.rounds explicitly otherwise");
    const double alpha = coloring_dobrushin_alpha(q, delta);
    const double gamma = 1.0 / (delta + 1.0);
    return luby_glauber_round_budget(n, gamma, alpha, epsilon);
  }
  const int d = std::max(delta, 1);
  const double margin_easy = q > d ? easy_coupling_margin(q, d) : 0.0;
  const double margin_global =
      q > 2 * d - 2 ? global_coupling_margin(q, d) : 0.0;
  const double margin = std::max(margin_easy, margin_global);
  LS_REQUIRE(margin > 0.0,
             "LocalMetropolis budget requires a positive path-coupling margin"
             " (roughly q > (2+sqrt 2)*Delta); set options.rounds explicitly"
             " otherwise");
  return local_metropolis_round_budget(n, d, margin, epsilon);
}

SampleResult sample_coloring(graph::GraphPtr g, int q,
                             const SamplerOptions& options) {
  const ColoringPlan plan = plan_coloring(g, q, options);
  return run_chain(plan.m, options, plan.rounds, plan.alpha);
}

SampleResult sample_list_coloring(graph::GraphPtr g, int q,
                                  const std::vector<std::vector<int>>& lists,
                                  const SamplerOptions& options) {
  LS_REQUIRE(g != nullptr, "graph must not be null");
  const mrf::Mrf m = mrf::make_list_coloring(g, q, lists);
  std::int64_t rounds = 0;
  double alpha = -1.0;
  if (options.rounds.has_value()) {
    rounds = *options.rounds;
  } else {
    std::vector<int> sizes;
    sizes.reserve(lists.size());
    for (const auto& l : lists) sizes.push_back(static_cast<int>(l.size()));
    alpha = inference::coloring_total_influence(*g, sizes);
    LS_REQUIRE(alpha < 1.0,
               "list-coloring budget requires Dobrushin's condition "
               "max_v d_v/(q_v - d_v) < 1; set options.rounds otherwise");
    const double gamma = 1.0 / (g->max_degree() + 1.0);
    rounds = luby_glauber_round_budget(g->num_vertices(), gamma, alpha,
                                       options.epsilon);
  }
  // List colorings fall outside Theorem 4.2's analysis, so the budgeted
  // algorithm is always LubyGlauber; an explicit rounds override still
  // honors options.algorithm.
  SamplerOptions effective = options;
  if (!options.rounds.has_value())
    effective.algorithm = Algorithm::luby_glauber;
  effective.rounds = rounds;
  auto result = run_chain(m, effective, rounds, alpha);
  return result;
}

SampleResult sample_hardcore(graph::GraphPtr g, double lambda,
                             const SamplerOptions& options) {
  LS_REQUIRE(g != nullptr, "graph must not be null");
  const mrf::Mrf m = mrf::make_hardcore(g, lambda);
  std::int64_t rounds = 0;
  double alpha = -1.0;
  if (options.rounds.has_value()) {
    rounds = *options.rounds;
  } else {
    const int delta = std::max(g->max_degree(), 1);
    // Sufficient Dobrushin-style condition: the influence of one neighbor on
    // the hardcore marginal is at most lambda/(1+lambda); the total influence
    // is below 1 when Delta * lambda / (1 + lambda) < 1.
    alpha = delta * lambda / (1.0 + lambda);
    if (alpha >= 1.0) {
      // CFTP needs no a-priori budget: it either returns a perfect sample
      // or throws chains::StoppingError at the horizon cap — so stop =
      // cftp/auto is the one budget-free path outside the guaranteed
      // regime.  Everything else keeps the strict refusal.
      LS_REQUIRE(resolve_stop_rule(options.stop, m) == chains::StopRule::cftp,
                 "no mixing guarantee for this (Delta, lambda); Theorem 1.3 "
                 "shows none can exist in the non-uniqueness regime — set "
                 "options.rounds explicitly, or use stop = cftp / auto for a "
                 "perfect sample that fails loudly instead of mixing slowly");
      return run_chain(m, options, 0, alpha);
    }
    const double gamma = 1.0 / (delta + 1.0);
    rounds = luby_glauber_round_budget(g->num_vertices(), gamma, alpha,
                                       options.epsilon);
  }
  return run_chain(m, options, rounds, alpha);
}

SampleResult sample_mrf(const mrf::Mrf& m, const SamplerOptions& options) {
  LS_REQUIRE(options.rounds.has_value(),
             "sample_mrf needs an explicit round budget");
  return run_chain(m, options, *options.rounds, -1.0);
}

}  // namespace lsample::core
