#include "csp/csp_exact.hpp"

#include <algorithm>
#include <map>
#include <numeric>

#include "util/require.hpp"
#include "util/summary.hpp"

namespace lsample::csp {

using inference::DenseMatrix;
using inference::StateSpace;

namespace {

void check_sizes(const FactorGraph& fg, const StateSpace& ss) {
  LS_REQUIRE(ss.n() == fg.n() && ss.q() == fg.q(),
             "state space must match the factor graph");
}

std::vector<double> heat_bath_marginal(const FactorGraph& fg, int v,
                                       const Config& x) {
  std::vector<double> w;
  fg.marginal_weights(v, x, w);
  const double z = util::normalize(w);
  if (z <= 0.0) {
    // Zero marginal at an infeasible state: the chain keeps the current
    // spin (matching csp_heat_bath_resample).
    w.assign(static_cast<std::size_t>(fg.q()), 0.0);
    w[static_cast<std::size_t>(x[static_cast<std::size_t>(v)])] = 1.0;
  }
  return w;
}

std::vector<double> proposal_distribution(const FactorGraph& fg, int v) {
  const auto b = fg.vertex_activity(v);
  std::vector<double> p(b.begin(), b.end());
  util::normalize(p);
  return p;
}

std::map<std::uint32_t, double> luby_set_distribution(const graph::Graph& g) {
  const int n = g.num_vertices();
  LS_REQUIRE(n <= 9, "exact Luby enumeration limited to n <= 9");
  std::vector<int> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  std::map<std::uint32_t, double> dist;
  std::int64_t count = 0;
  do {
    std::uint32_t mask = 0;
    for (int v = 0; v < n; ++v) {
      bool is_max = true;
      for (int u : g.neighbors(v))
        if (perm[static_cast<std::size_t>(u)] >
            perm[static_cast<std::size_t>(v)]) {
          is_max = false;
          break;
        }
      if (is_max) mask |= (1u << v);
    }
    dist[mask] += 1.0;
    ++count;
  } while (std::next_permutation(perm.begin(), perm.end()));
  for (auto& [mask, p] : dist) p /= static_cast<double>(count);
  return dist;
}

}  // namespace

std::vector<double> csp_gibbs_distribution(const FactorGraph& fg,
                                           const StateSpace& ss) {
  check_sizes(fg, ss);
  std::vector<double> mu(static_cast<std::size_t>(ss.size()), 0.0);
  Config x;
  for (std::int64_t i = 0; i < ss.size(); ++i) {
    ss.decode_into(i, x);
    double w = 1.0;
    for (int v = 0; v < fg.n() && w > 0.0; ++v)
      w *= fg.vertex_activity(v)[static_cast<std::size_t>(
          x[static_cast<std::size_t>(v)])];
    for (int c = 0; c < fg.num_constraints() && w > 0.0; ++c)
      w *= fg.table_value(c, x);
    mu[static_cast<std::size_t>(i)] = w;
  }
  const double z = util::normalize(mu);
  LS_REQUIRE(z > 0.0, "CSP partition function is zero");
  return mu;
}

DenseMatrix csp_glauber_transition(const FactorGraph& fg,
                                   const StateSpace& ss) {
  check_sizes(fg, ss);
  DenseMatrix p(ss.size());
  Config x;
  const double pick = 1.0 / fg.n();
  for (std::int64_t xi = 0; xi < ss.size(); ++xi) {
    ss.decode_into(xi, x);
    for (int v = 0; v < fg.n(); ++v) {
      const auto marg = heat_bath_marginal(fg, v, x);
      for (int s = 0; s < fg.q(); ++s)
        if (marg[static_cast<std::size_t>(s)] > 0.0)
          p.at(xi, ss.with_spin(xi, v, s)) +=
              pick * marg[static_cast<std::size_t>(s)];
    }
  }
  return p;
}

DenseMatrix csp_luby_glauber_transition(const FactorGraph& fg,
                                        const StateSpace& ss) {
  check_sizes(fg, ss);
  const auto conflict = fg.make_conflict_graph();
  const auto set_dist = luby_set_distribution(*conflict);
  DenseMatrix p(ss.size());
  Config x;
  for (std::int64_t xi = 0; xi < ss.size(); ++xi) {
    ss.decode_into(xi, x);
    for (const auto& [mask, prob] : set_dist) {
      // Enumerate joint assignments to the selected (strongly independent)
      // vertices; their marginals conditioned on x are independent.
      std::vector<int> sel;
      for (int v = 0; v < fg.n(); ++v)
        if (mask & (1u << v)) sel.push_back(v);
      if (sel.empty()) {
        p.at(xi, xi) += prob;
        continue;
      }
      std::vector<std::vector<double>> marg;
      marg.reserve(sel.size());
      for (int v : sel) marg.push_back(heat_bath_marginal(fg, v, x));
      std::vector<int> assign(sel.size(), 0);
      while (true) {
        double pr = prob;
        std::int64_t target = xi;
        for (std::size_t i = 0; i < sel.size(); ++i) {
          pr *= marg[i][static_cast<std::size_t>(assign[i])];
          target = ss.with_spin(target, sel[i], assign[i]);
        }
        if (pr > 0.0) p.at(xi, target) += pr;
        std::size_t i = 0;
        while (i < assign.size() && ++assign[i] == fg.q()) assign[i++] = 0;
        if (i == assign.size()) break;
      }
    }
  }
  return p;
}

DenseMatrix csp_local_metropolis_transition(const FactorGraph& fg,
                                            const StateSpace& ss,
                                            int max_uncertain_constraints) {
  check_sizes(fg, ss);
  const int nc = fg.num_constraints();
  DenseMatrix p(ss.size());
  Config x;
  Config sigma;
  std::vector<std::vector<double>> prop;
  for (int v = 0; v < fg.n(); ++v)
    prop.push_back(proposal_distribution(fg, v));

  std::vector<double> pass_prob(static_cast<std::size_t>(nc));
  std::vector<char> passes(static_cast<std::size_t>(nc));
  std::vector<int> uncertain;

  for (std::int64_t xi = 0; xi < ss.size(); ++xi) {
    ss.decode_into(xi, x);
    for (std::int64_t si = 0; si < ss.size(); ++si) {
      ss.decode_into(si, sigma);
      double prob_sigma = 1.0;
      for (int v = 0; v < fg.n() && prob_sigma > 0.0; ++v)
        prob_sigma *= prop[static_cast<std::size_t>(v)][static_cast<std::size_t>(
            sigma[static_cast<std::size_t>(v)])];
      if (prob_sigma <= 0.0) continue;

      uncertain.clear();
      for (int c = 0; c < nc; ++c) {
        const double pc = fg.constraint_pass_prob(c, sigma, x);
        pass_prob[static_cast<std::size_t>(c)] = pc;
        if (pc > 0.0 && pc < 1.0) uncertain.push_back(c);
        passes[static_cast<std::size_t>(c)] = pc >= 1.0 ? 1 : 0;
      }
      LS_REQUIRE(
          static_cast<int>(uncertain.size()) <= max_uncertain_constraints,
          "too many soft constraints for exact coin enumeration");

      const std::uint64_t combos = 1ull << uncertain.size();
      for (std::uint64_t bits = 0; bits < combos; ++bits) {
        double prob_coins = 1.0;
        for (std::size_t i = 0; i < uncertain.size(); ++i) {
          const int c = uncertain[i];
          const bool pass = (bits >> i) & 1ull;
          passes[static_cast<std::size_t>(c)] = pass ? 1 : 0;
          prob_coins *= pass ? pass_prob[static_cast<std::size_t>(c)]
                             : 1.0 - pass_prob[static_cast<std::size_t>(c)];
        }
        if (prob_coins <= 0.0) continue;

        std::int64_t target = xi;
        for (int v = 0; v < fg.n(); ++v) {
          bool accept = true;
          for (int c : fg.constraints_of(v))
            if (passes[static_cast<std::size_t>(c)] == 0) {
              accept = false;
              break;
            }
          if (accept)
            target =
                ss.with_spin(target, v, sigma[static_cast<std::size_t>(v)]);
        }
        p.at(xi, target) += prob_sigma * prob_coins;
      }
    }
  }
  return p;
}

}  // namespace lsample::csp
