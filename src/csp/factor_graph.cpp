#include "csp/factor_graph.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <string>

#include "util/require.hpp"

namespace lsample::csp {

FactorGraph::FactorGraph(int n, int q) : n_(n), q_(q) {
  LS_REQUIRE(n >= 1 && q >= 2, "need n >= 1 and q >= 2");
  constraints_of_.resize(static_cast<std::size_t>(n));
  vertex_acts_.assign(static_cast<std::size_t>(n),
                      std::vector<double>(static_cast<std::size_t>(q), 1.0));
}

int FactorGraph::add_constraint(std::vector<int> scope,
                                std::vector<double> table) {
  LS_REQUIRE(!scope.empty() && scope.size() <= 16, "scope arity in [1,16]");
  std::set<int> distinct(scope.begin(), scope.end());
  LS_REQUIRE(distinct.size() == scope.size(), "scope vertices must be distinct");
  for (int v : scope) LS_REQUIRE(v >= 0 && v < n_, "scope vertex out of range");
  std::size_t expected = 1;
  for (std::size_t i = 0; i < scope.size(); ++i)
    expected *= static_cast<std::size_t>(q_);
  LS_REQUIRE(table.size() == expected, "table must have q^|scope| entries");
  Constraint c;
  c.scope = std::move(scope);
  c.max_entry = 0.0;
  for (double x : table) {
    LS_REQUIRE(x >= 0.0 && std::isfinite(x), "constraint values non-negative");
    c.max_entry = std::max(c.max_entry, x);
  }
  LS_REQUIRE(c.max_entry > 0.0, "constraint must not be identically zero");
  c.table = std::move(table);
  const int id = num_constraints();
  for (int v : c.scope)
    constraints_of_[static_cast<std::size_t>(v)].push_back(id);
  constraints_.push_back(std::move(c));
  return id;
}

void FactorGraph::set_vertex_activity(int v, std::vector<double> b) {
  LS_REQUIRE(v >= 0 && v < n_, "vertex out of range");
  LS_REQUIRE(b.size() == static_cast<std::size_t>(q_), "need q entries");
  double total = 0.0;
  for (double x : b) {
    LS_REQUIRE(x >= 0.0 && std::isfinite(x), "activities non-negative");
    total += x;
  }
  LS_REQUIRE(total > 0.0, "vertex activity of vertex " + std::to_string(v) +
                              " must not be identically zero");
  vertex_acts_[static_cast<std::size_t>(v)] = std::move(b);
}

const Constraint& FactorGraph::constraint(int c) const {
  LS_REQUIRE(c >= 0 && c < num_constraints(), "constraint id out of range");
  return constraints_[static_cast<std::size_t>(c)];
}

std::span<const int> FactorGraph::constraints_of(int v) const {
  LS_REQUIRE(v >= 0 && v < n_, "vertex out of range");
  return constraints_of_[static_cast<std::size_t>(v)];
}

std::span<const double> FactorGraph::vertex_activity(int v) const {
  LS_REQUIRE(v >= 0 && v < n_, "vertex out of range");
  return vertex_acts_[static_cast<std::size_t>(v)];
}

std::size_t FactorGraph::table_index(const Constraint& c,
                                     const Config& x) const {
  std::size_t idx = 0;
  std::size_t mult = 1;
  for (int v : c.scope) {
    idx += static_cast<std::size_t>(x[static_cast<std::size_t>(v)]) * mult;
    mult *= static_cast<std::size_t>(q_);
  }
  return idx;
}

double FactorGraph::table_value(int c, const Config& x) const {
  const Constraint& con = constraint(c);
  return con.table[table_index(con, x)];
}

double FactorGraph::log_weight(const Config& x) const {
  check_config(*this, x);
  double lw = 0.0;
  for (int v = 0; v < n_; ++v) {
    const double b = vertex_acts_[static_cast<std::size_t>(v)]
                                 [static_cast<std::size_t>(
                                     x[static_cast<std::size_t>(v)])];
    if (b <= 0.0) return -std::numeric_limits<double>::infinity();
    lw += std::log(b);
  }
  for (int c = 0; c < num_constraints(); ++c) {
    const double f = table_value(c, x);
    if (f <= 0.0) return -std::numeric_limits<double>::infinity();
    lw += std::log(f);
  }
  return lw;
}

bool FactorGraph::feasible(const Config& x) const {
  check_config(*this, x);
  for (int v = 0; v < n_; ++v)
    if (vertex_acts_[static_cast<std::size_t>(v)][static_cast<std::size_t>(
            x[static_cast<std::size_t>(v)])] <= 0.0)
      return false;
  for (int c = 0; c < num_constraints(); ++c)
    if (table_value(c, x) <= 0.0) return false;
  return true;
}

void FactorGraph::marginal_weights(int v, const Config& x,
                                   std::vector<double>& out) const {
  LS_REQUIRE(v >= 0 && v < n_, "vertex out of range");
  out.assign(static_cast<std::size_t>(q_), 0.0);
  Config y = x;
  for (int s = 0; s < q_; ++s) {
    y[static_cast<std::size_t>(v)] = s;
    double w = vertex_acts_[static_cast<std::size_t>(v)]
                           [static_cast<std::size_t>(s)];
    for (int c : constraints_of(v)) {
      if (w <= 0.0) break;
      w *= table_value(c, y);
    }
    out[static_cast<std::size_t>(s)] = w;
  }
}

double FactorGraph::constraint_pass_prob(int c, const Config& sigma,
                                         const Config& x) const {
  const Constraint& con = constraint(c);
  const std::size_t k = con.scope.size();
  LS_ASSERT(k <= 16, "arity too large");
  Config tau = x;
  double p = 1.0;
  const std::uint32_t combos = 1u << k;
  // Subset T of scope positions that take the proposal; T = 0 (all-X) is
  // excluded per the paper's remark.
  for (std::uint32_t t = 1; t < combos && p > 0.0; ++t) {
    for (std::size_t i = 0; i < k; ++i) {
      const int v = con.scope[i];
      tau[static_cast<std::size_t>(v)] = (t >> i) & 1u
                                             ? sigma[static_cast<std::size_t>(v)]
                                             : x[static_cast<std::size_t>(v)];
    }
    p *= con.table[table_index(con, tau)] / con.max_entry;
  }
  return p;
}

std::shared_ptr<graph::Graph> FactorGraph::make_conflict_graph() const {
  auto g = std::make_shared<graph::Graph>(n_);
  std::set<std::pair<int, int>> seen;
  for (const auto& con : constraints_)
    for (std::size_t i = 0; i < con.scope.size(); ++i)
      for (std::size_t j = i + 1; j < con.scope.size(); ++j) {
        const int a = std::min(con.scope[i], con.scope[j]);
        const int b = std::max(con.scope[i], con.scope[j]);
        if (seen.emplace(a, b).second) g->add_edge(a, b);
      }
  return g;
}

void check_config(const FactorGraph& fg, const Config& x) {
  LS_REQUIRE(static_cast<int>(x.size()) == fg.n(), "config size mismatch");
  for (int s : x) LS_REQUIRE(s >= 0 && s < fg.q(), "spin out of range");
}

}  // namespace lsample::csp
