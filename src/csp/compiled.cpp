#include "csp/compiled.hpp"

#include <map>
#include <string>

#include "util/require.hpp"

namespace lsample::csp {

CompiledFactorGraph::CompiledFactorGraph(const FactorGraph& fg)
    : CompiledFactorGraph(fg, Options()) {}

CompiledFactorGraph::CompiledFactorGraph(const FactorGraph& fg,
                                         const Options& options)
    : n_(fg.n()), q_(fg.q()), nc_(fg.num_constraints()),
      reorder_(options.reorder) {
  // The shared conflict graph, finalized once so chains and replicas built
  // on this view only ever do contiguous concurrent reads.  Built first
  // because the cache-aware ordering is computed on it.
  auto conflict = fg.make_conflict_graph();
  conflict->finalize();
  conflict_ = std::move(conflict);
  order_ = graph::compute_vertex_order(*conflict_, reorder_);
  rank_ = graph::invert_order(order_);

  // Vertex activities, packed in rank order — and re-validated as
  // intentional defense-in-depth: FactorGraph::set_vertex_activity already
  // rejects identically-zero rows, but the proposal kernel assumes every
  // row has a positive total, so the view re-checks the property it depends
  // on and names the offending vertex, guarding against any future
  // FactorGraph construction path that might skip the setter.
  vert_act_.resize(static_cast<std::size_t>(n_) * static_cast<std::size_t>(q_));
  for (int v = 0; v < n_; ++v) {
    const auto b = fg.vertex_activity(v);
    const std::size_t slot =
        static_cast<std::size_t>(rank_[static_cast<std::size_t>(v)]) *
        static_cast<std::size_t>(q_);
    double total = 0.0;
    for (int s = 0; s < q_; ++s) {
      vert_act_[slot + static_cast<std::size_t>(s)] =
          b[static_cast<std::size_t>(s)];
      total += b[static_cast<std::size_t>(s)];
    }
    LS_REQUIRE(total > 0.0, "vertex activity of vertex " + std::to_string(v) +
                                " must not be identically zero");
  }

  // Variable → constraint rows, flattened in rank order (per-row constraint
  // order stays FactorGraph insertion order), and constraint → scope CSR.
  var_begin_.assign(static_cast<std::size_t>(n_), 0);
  var_end_.assign(static_cast<std::size_t>(n_), 0);
  scope_offsets_.assign(static_cast<std::size_t>(nc_) + 1, 0);
  {
    std::size_t total = 0;
    for (int v = 0; v < n_; ++v) total += fg.constraints_of(v).size();
    cons_flat_.reserve(total);
  }
  for (int i = 0; i < n_; ++i) {
    const int v = order_[static_cast<std::size_t>(i)];
    var_begin_[static_cast<std::size_t>(v)] = static_cast<int>(cons_flat_.size());
    for (int c : fg.constraints_of(v)) cons_flat_.push_back(c);
    var_end_[static_cast<std::size_t>(v)] = static_cast<int>(cons_flat_.size());
  }
  for (int c = 0; c < nc_; ++c)
    scope_offsets_[static_cast<std::size_t>(c) + 1] =
        scope_offsets_[static_cast<std::size_t>(c)] +
        static_cast<int>(fg.constraint(c).scope.size());
  scope_flat_.reserve(static_cast<std::size_t>(scope_offsets_.back()));
  for (int c = 0; c < nc_; ++c)
    for (int v : fg.constraint(c).scope) scope_flat_.push_back(v);

  // Table pool: byte-identical tables collapse to one block (raw entries
  // plus the normalized f̃ = f / max f quotients the LocalMetropolis filter
  // divides out per factor in the reference implementation).
  table_of_.resize(static_cast<std::size_t>(nc_));
  std::map<std::vector<double>, int> pool_ids;
  for (int c = 0; c < nc_; ++c) {
    const Constraint& con = fg.constraint(c);
    const auto [it, inserted] =
        pool_ids.emplace(con.table, static_cast<int>(pool_offsets_.size()));
    table_of_[static_cast<std::size_t>(c)] = it->second;
    if (!inserted) continue;
    pool_offsets_.push_back(tables_.size());
    pool_sizes_.push_back(con.table.size());
    for (double x : con.table) {
      tables_.push_back(x);
      norm_tables_.push_back(x / con.max_entry);
    }
  }

  // Conflict rows: alias the conflict CSR for the identity order, otherwise
  // copy each row into rank order (row contents keep CSR order).
  const auto coff = conflict_->csr_offsets();
  const auto cnbr = conflict_->neighbors_flat();
  conflict_begin_.resize(static_cast<std::size_t>(n_));
  conflict_end_.resize(static_cast<std::size_t>(n_));
  if (reorder_ == graph::VertexOrder::none) {
    for (int v = 0; v < n_; ++v) {
      conflict_begin_[static_cast<std::size_t>(v)] =
          coff[static_cast<std::size_t>(v)];
      conflict_end_[static_cast<std::size_t>(v)] =
          coff[static_cast<std::size_t>(v) + 1];
    }
    conflict_rows_ = cnbr;
  } else {
    own_conflict_.resize(cnbr.size());
    int pos = 0;
    for (int i = 0; i < n_; ++i) {
      const int v = order_[static_cast<std::size_t>(i)];
      conflict_begin_[static_cast<std::size_t>(v)] = pos;
      for (int k = coff[static_cast<std::size_t>(v)];
           k < coff[static_cast<std::size_t>(v) + 1]; ++k, ++pos)
        own_conflict_[static_cast<std::size_t>(pos)] =
            cnbr[static_cast<std::size_t>(k)];
      conflict_end_[static_cast<std::size_t>(v)] = pos;
    }
    conflict_rows_ = own_conflict_;
  }
}

void CompiledFactorGraph::marginal_weights(int v, const Config& x,
                                           std::vector<double>& out) const {
  // Reference order (FactorGraph::marginal_weights): for each spin s the
  // product starts at b_v(s) and multiplies the constraint tables in
  // incidence order, stopping once the partial product is nonpositive.
  // Iterating constraints in the OUTER loop multiplies the same doubles in
  // the same order per spin (a spin whose product went nonpositive is
  // skipped from then on, which is exactly what the reference's break
  // produces), but computes each constraint's base table index once instead
  // of once per spin — and never copies the configuration.
  out.assign(static_cast<std::size_t>(q_), 0.0);
  const double* b =
      vert_act_.data() +
      static_cast<std::size_t>(rank_[static_cast<std::size_t>(v)]) *
          static_cast<std::size_t>(q_);
  for (int s = 0; s < q_; ++s) out[static_cast<std::size_t>(s)] = b[s];
  for (int c : constraints_of(v)) {
    std::size_t base = 0;    // index contribution of the non-v scope spins
    std::size_t mult = 1;
    std::size_t mult_v = 0;  // q^position(v) in c's scope
    for (int u : scope(c)) {
      if (u == v)
        mult_v = mult;
      else
        base += static_cast<std::size_t>(x[static_cast<std::size_t>(u)]) * mult;
      mult *= static_cast<std::size_t>(q_);
    }
    const double* tab =
        tables_.data() +
        pool_offsets_[static_cast<std::size_t>(
            table_of_[static_cast<std::size_t>(c)])];
    for (int s = 0; s < q_; ++s) {
      double& w = out[static_cast<std::size_t>(s)];
      if (w <= 0.0) continue;
      w *= tab[base + static_cast<std::size_t>(s) * mult_v];
    }
  }
}

double CompiledFactorGraph::constraint_pass_prob(
    int c, const Config& sigma, const Config& x) const {
  const auto sc = scope(c);
  const std::size_t k = sc.size();
  LS_ASSERT(k <= 16, "arity too large");
  const double* nt =
      norm_tables_.data() +
      pool_offsets_[static_cast<std::size_t>(table_of_[static_cast<std::size_t>(c)])];
  // Per-position index contributions, precomputed so each of the 2^k - 1
  // subsets only sums deltas instead of re-multiplying spins by q^i.
  long long base = 0;
  long long delta[16];  // (sigma_u - x_u) * q^position
  long long mult = 1;
  for (std::size_t i = 0; i < k; ++i) {
    const auto u = static_cast<std::size_t>(sc[i]);
    base += static_cast<long long>(x[u]) * mult;
    delta[i] = (static_cast<long long>(sigma[u]) -
                static_cast<long long>(x[u])) *
               mult;
    mult *= q_;
  }
  double p = 1.0;
  const std::uint32_t combos = 1u << k;
  // Subset T of scope positions that take the proposal; T = 0 (all-X) is
  // excluded per the paper's remark.
  for (std::uint32_t t = 1; t < combos && p > 0.0; ++t) {
    long long idx = base;
    for (std::size_t i = 0; i < k; ++i)
      if ((t >> i) & 1u) idx += delta[i];
    p *= nt[idx];
  }
  return p;
}

}  // namespace lsample::csp
