// The paper's two algorithms generalized to weighted local CSPs, plus the
// single-site Glauber baseline on CSPs — running on the compiled runtime.
//
// All three chains execute on a CompiledFactorGraph view (CSR incidence,
// deduplicated tables, packed activities, one shared finalized conflict
// graph) through per-vertex / per-constraint kernels that are pure functions
// of (model, seed, id, t, previous state).  With a ParallelEngine attached,
// each phase of a step is partitioned across threads; because every kernel
// writes only its own slot and counter-RNG draws are pure functions, the
// trajectory is bit-identical to the sequential path at any thread count —
// and bit-identical to the pre-compiled reference implementations on the
// FactorGraph itself, which the test suite asserts.  Chains constructed from
// a shared view (the replica layer builds R chains against ONE view) are
// bit-identical to chains that compiled their own.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "csp/compiled.hpp"
#include "csp/factor_graph.hpp"
#include "util/rng.hpp"

namespace lsample::chains {
class ParallelEngine;
}  // namespace lsample::chains

namespace lsample::csp {

/// Common interface mirroring chains::Chain for factor graphs.
class CspChain {
 public:
  virtual ~CspChain() = default;
  virtual void step(Config& x, std::int64_t t) = 0;
  /// Attaches a ParallelEngine for the chain's rounds (nullptr restores
  /// sequential execution).  The engine must outlive the chain or the next
  /// set_engine call; the trajectory MUST be bit-identical with or without
  /// an engine, at any thread count.  The default ignores the engine, which
  /// is trivially conforming (and right for single-site Glauber).
  virtual void set_engine(chains::ParallelEngine* /*engine*/) {}
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
};

/// Single-site heat-bath Glauber on a CSP.
class CspGlauberChain final : public CspChain {
 public:
  CspGlauberChain(const FactorGraph& fg, std::uint64_t seed);
  /// Shares a compiled view (read-only) instead of compiling its own.
  CspGlauberChain(std::shared_ptr<const CompiledFactorGraph> cfg,
                  std::uint64_t seed);
  void step(Config& x, std::int64_t t) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "CspGlauber";
  }

 private:
  std::shared_ptr<const CompiledFactorGraph> cfg_;
  util::CounterRng rng_;
  std::vector<double> weights_;
};

/// LubyGlauber on a CSP: the Luby step runs on the conflict graph, so the
/// selected set is strongly independent in the constraint hypergraph and the
/// parallel heat-bath update is well defined (Remark in §3).  The conflict
/// graph comes finalized from the compiled view (one per view, not one per
/// chain).  Priority draw, selection, and the resampling of the strongly
/// independent set are each node-parallel under an attached engine.
class CspLubyGlauberChain final : public CspChain {
 public:
  CspLubyGlauberChain(const FactorGraph& fg, std::uint64_t seed);
  /// Shares a compiled view (read-only) instead of compiling its own.
  CspLubyGlauberChain(std::shared_ptr<const CompiledFactorGraph> cfg,
                      std::uint64_t seed);
  void step(Config& x, std::int64_t t) override;
  void set_engine(chains::ParallelEngine* engine) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "CspLubyGlauber";
  }

  /// The strongly independent set selected at the previous step.
  [[nodiscard]] const std::vector<char>& last_selected() const noexcept {
    return selected_;
  }

 private:
  std::shared_ptr<const CompiledFactorGraph> cfg_;
  util::CounterRng rng_;
  chains::ParallelEngine* engine_ = nullptr;
  std::vector<double> priorities_;
  std::vector<char> selected_;
  std::vector<std::vector<double>> scratch_;  // marginal weights, per thread
};

/// LocalMetropolis on a CSP: every vertex proposes from b_v; every k-ary
/// constraint flips one shared coin that passes with probability equal to
/// the product of the 2^k - 1 mixed normalized factors (Remark in §4); a
/// vertex accepts iff all constraints containing it pass.  Propose (over
/// vertices), coin (over constraints), and accept (over vertices) are each
/// parallel phases writing only their own slots.
class CspLocalMetropolisChain final : public CspChain {
 public:
  CspLocalMetropolisChain(const FactorGraph& fg, std::uint64_t seed);
  /// Shares a compiled view (read-only) instead of compiling its own.
  CspLocalMetropolisChain(std::shared_ptr<const CompiledFactorGraph> cfg,
                          std::uint64_t seed);
  void step(Config& x, std::int64_t t) override;
  void set_engine(chains::ParallelEngine* engine) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "CspLocalMetropolis";
  }

 private:
  std::shared_ptr<const CompiledFactorGraph> cfg_;
  util::CounterRng rng_;
  chains::ParallelEngine* engine_ = nullptr;
  Config proposal_;
  std::vector<char> pass_;
};

// --- Per-vertex / per-constraint kernels on the compiled view -------------
// Pure functions of (view, seed, id, t, previous state); each is
// value-identical to the FactorGraph-based reference path (same RNG tuples
// queried, same doubles multiplied in the same order).

/// Heat-bath resample of vertex v; value-identical to
/// csp_heat_bath_resample on the underlying FactorGraph.  `scratch` holds
/// the marginal weights; pass a per-thread buffer when running under an
/// engine.
[[nodiscard]] int csp_heat_bath_kernel(const CompiledFactorGraph& cfg,
                                       const util::CounterRng& rng, int v,
                                       std::int64_t t, const Config& x,
                                       std::vector<double>& scratch);

/// LocalMetropolis proposal draw for v at time t (a spin ~ b_v).  The
/// compiled view validated at construction that no vertex activity is
/// identically zero, so the draw always succeeds.
[[nodiscard]] int csp_proposal_kernel(const CompiledFactorGraph& cfg,
                                      const util::CounterRng& rng, int v,
                                      std::int64_t t);

/// The shared coin of constraint c at time t: true iff the coin passes the
/// 2^k - 1 mixed-factor filter.  A pure function of (c, t), so any thread
/// (or any scope member) evaluating it sees the same outcome.
[[nodiscard]] bool csp_constraint_coin_kernel(const CompiledFactorGraph& cfg,
                                              const util::CounterRng& rng,
                                              int c, std::int64_t t,
                                              const Config& proposal,
                                              const Config& x);

/// Heat-bath resample of vertex v on a CSP (the pre-compiled reference,
/// kept for the LOCAL node programs and as the seed comparison path).
[[nodiscard]] int csp_heat_bath_resample(const FactorGraph& fg,
                                         const util::CounterRng& rng, int v,
                                         std::int64_t t, const Config& x,
                                         std::vector<double>& scratch);

}  // namespace lsample::csp
