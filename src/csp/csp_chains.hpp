// The paper's two algorithms generalized to weighted local CSPs, plus the
// single-site Glauber baseline on CSPs.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "csp/factor_graph.hpp"
#include "util/rng.hpp"

namespace lsample::csp {

/// Common interface mirroring chains::Chain for factor graphs.
class CspChain {
 public:
  virtual ~CspChain() = default;
  virtual void step(Config& x, std::int64_t t) = 0;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
};

/// Single-site heat-bath Glauber on a CSP.
class CspGlauberChain final : public CspChain {
 public:
  CspGlauberChain(const FactorGraph& fg, std::uint64_t seed);
  void step(Config& x, std::int64_t t) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "CspGlauber";
  }

 private:
  const FactorGraph& fg_;
  util::CounterRng rng_;
  std::vector<double> weights_;
};

/// LubyGlauber on a CSP: the Luby step runs on the conflict graph, so the
/// selected set is strongly independent in the constraint hypergraph and the
/// parallel heat-bath update is well defined (Remark in §3).
class CspLubyGlauberChain final : public CspChain {
 public:
  CspLubyGlauberChain(const FactorGraph& fg, std::uint64_t seed);
  void step(Config& x, std::int64_t t) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "CspLubyGlauber";
  }

 private:
  const FactorGraph& fg_;
  util::CounterRng rng_;
  std::shared_ptr<graph::Graph> conflict_;
  std::vector<double> priorities_;
  std::vector<double> weights_;
};

/// LocalMetropolis on a CSP: every vertex proposes from b_v; every k-ary
/// constraint flips one shared coin that passes with probability equal to
/// the product of the 2^k - 1 mixed normalized factors (Remark in §4); a
/// vertex accepts iff all constraints containing it pass.
class CspLocalMetropolisChain final : public CspChain {
 public:
  CspLocalMetropolisChain(const FactorGraph& fg, std::uint64_t seed);
  void step(Config& x, std::int64_t t) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "CspLocalMetropolis";
  }

 private:
  const FactorGraph& fg_;
  util::CounterRng rng_;
  Config proposal_;
  std::vector<char> pass_;
};

/// Heat-bath resample of vertex v on a CSP (shared by the chains above).
[[nodiscard]] int csp_heat_bath_resample(const FactorGraph& fg,
                                         const util::CounterRng& rng, int v,
                                         std::int64_t t, const Config& x,
                                         std::vector<double>& scratch);

}  // namespace lsample::csp
