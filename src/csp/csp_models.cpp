#include "csp/csp_models.hpp"

#include <algorithm>
#include <set>

#include "util/require.hpp"

namespace lsample::csp {

FactorGraph make_dominating_set(const graph::Graph& g, double lambda) {
  LS_REQUIRE(lambda > 0.0, "lambda must be positive");
  FactorGraph fg(g.num_vertices(), 2);
  for (int v = 0; v < g.num_vertices(); ++v)
    fg.set_vertex_activity(v, {1.0, lambda});
  for (int v = 0; v < g.num_vertices(); ++v) {
    // Inclusive neighborhood with duplicates (multi-edges) removed.
    std::set<int> scope_set{v};
    for (int u : g.neighbors(v)) scope_set.insert(u);
    std::vector<int> scope(scope_set.begin(), scope_set.end());
    LS_REQUIRE(scope.size() <= 16, "degree too large for a cover constraint");
    const std::size_t entries = std::size_t{1} << scope.size();
    std::vector<double> table(entries, 1.0);
    table[0] = 0.0;  // all-zero assignment leaves v uncovered
    fg.add_constraint(std::move(scope), std::move(table));
  }
  return fg;
}

FactorGraph make_hypergraph_nae(
    int n, int q, const std::vector<std::vector<int>>& hyperedges) {
  FactorGraph fg(n, q);
  for (const auto& he : hyperedges) {
    LS_REQUIRE(he.size() >= 2 && he.size() <= 8, "hyperedge arity in [2,8]");
    std::size_t entries = 1;
    for (std::size_t i = 0; i < he.size(); ++i)
      entries *= static_cast<std::size_t>(q);
    std::vector<double> table(entries, 1.0);
    // All-equal assignments have index s * (1 + q + q^2 + ...) .
    std::size_t step = 0;
    std::size_t mult = 1;
    for (std::size_t i = 0; i < he.size(); ++i) {
      step += mult;
      mult *= static_cast<std::size_t>(q);
    }
    for (int s = 0; s < q; ++s)
      table[static_cast<std::size_t>(s) * step] = 0.0;
    fg.add_constraint(he, std::move(table));
  }
  return fg;
}

FactorGraph make_hypergraph_independent_set(
    int n, const std::vector<std::vector<int>>& hyperedges, double lambda) {
  LS_REQUIRE(lambda > 0.0, "lambda must be positive");
  FactorGraph fg(n, 2);
  for (int v = 0; v < n; ++v) fg.set_vertex_activity(v, {1.0, lambda});
  for (const auto& he : hyperedges) {
    LS_REQUIRE(he.size() >= 2 && he.size() <= 16, "hyperedge arity in [2,16]");
    const std::size_t entries = std::size_t{1} << he.size();
    std::vector<double> table(entries, 1.0);
    table[entries - 1] = 0.0;  // all-chosen violates independence
    fg.add_constraint(he, std::move(table));
  }
  return fg;
}

FactorGraph make_mrf_as_csp(const mrf::Mrf& m) {
  FactorGraph fg(m.n(), m.q());
  for (int v = 0; v < m.n(); ++v) {
    const auto b = m.vertex_activity(v);
    fg.set_vertex_activity(v, {b.begin(), b.end()});
  }
  for (int e = 0; e < m.g().num_edges(); ++e) {
    const graph::Edge& ed = m.g().edge(e);
    const auto& a = m.edge_activity(e);
    std::vector<double> table(static_cast<std::size_t>(m.q()) *
                              static_cast<std::size_t>(m.q()));
    // Scope (u, v): index = x_u + q * x_v.
    for (int xu = 0; xu < m.q(); ++xu)
      for (int xv = 0; xv < m.q(); ++xv)
        table[static_cast<std::size_t>(xu) +
              static_cast<std::size_t>(m.q()) * static_cast<std::size_t>(xv)] =
            a.at(xu, xv);
    fg.add_constraint({ed.u, ed.v}, std::move(table));
  }
  return fg;
}

}  // namespace lsample::csp
