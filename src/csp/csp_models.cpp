#include "csp/csp_models.hpp"

#include <algorithm>
#include <cstdlib>
#include <set>

#include "util/require.hpp"

namespace lsample::csp {

FactorGraph make_dominating_set(const graph::Graph& g, double lambda) {
  LS_REQUIRE(lambda > 0.0, "lambda must be positive");
  FactorGraph fg(g.num_vertices(), 2);
  for (int v = 0; v < g.num_vertices(); ++v)
    fg.set_vertex_activity(v, {1.0, lambda});
  for (int v = 0; v < g.num_vertices(); ++v) {
    // Inclusive neighborhood with duplicates (multi-edges) removed.
    std::set<int> scope_set{v};
    for (int u : g.neighbors(v)) scope_set.insert(u);
    std::vector<int> scope(scope_set.begin(), scope_set.end());
    LS_REQUIRE(scope.size() <= 16, "degree too large for a cover constraint");
    const std::size_t entries = std::size_t{1} << scope.size();
    std::vector<double> table(entries, 1.0);
    table[0] = 0.0;  // all-zero assignment leaves v uncovered
    fg.add_constraint(std::move(scope), std::move(table));
  }
  return fg;
}

FactorGraph make_hypergraph_nae(
    int n, int q, const std::vector<std::vector<int>>& hyperedges) {
  FactorGraph fg(n, q);
  for (const auto& he : hyperedges) {
    LS_REQUIRE(he.size() >= 2 && he.size() <= 8, "hyperedge arity in [2,8]");
    std::size_t entries = 1;
    for (std::size_t i = 0; i < he.size(); ++i)
      entries *= static_cast<std::size_t>(q);
    std::vector<double> table(entries, 1.0);
    // All-equal assignments have index s * (1 + q + q^2 + ...) .
    std::size_t step = 0;
    std::size_t mult = 1;
    for (std::size_t i = 0; i < he.size(); ++i) {
      step += mult;
      mult *= static_cast<std::size_t>(q);
    }
    for (int s = 0; s < q; ++s)
      table[static_cast<std::size_t>(s) * step] = 0.0;
    fg.add_constraint(he, std::move(table));
  }
  return fg;
}

FactorGraph make_hypergraph_independent_set(
    int n, const std::vector<std::vector<int>>& hyperedges, double lambda) {
  LS_REQUIRE(lambda > 0.0, "lambda must be positive");
  FactorGraph fg(n, 2);
  for (int v = 0; v < n; ++v) fg.set_vertex_activity(v, {1.0, lambda});
  for (const auto& he : hyperedges) {
    LS_REQUIRE(he.size() >= 2 && he.size() <= 16, "hyperedge arity in [2,16]");
    const std::size_t entries = std::size_t{1} << he.size();
    std::vector<double> table(entries, 1.0);
    table[entries - 1] = 0.0;  // all-chosen violates independence
    fg.add_constraint(he, std::move(table));
  }
  return fg;
}

FactorGraph make_monomer_dimer(const graph::Graph& g, double dimer_weight) {
  LS_REQUIRE(dimer_weight > 0.0, "dimer weight must be positive");
  LS_REQUIRE(g.num_edges() >= 1, "monomer-dimer needs at least one edge");
  FactorGraph fg(g.num_edges(), 2);
  for (int e = 0; e < g.num_edges(); ++e)
    fg.set_vertex_activity(e, {1.0, dimer_weight});
  for (int v = 0; v < g.num_vertices(); ++v) {
    const auto inc = g.incident_edges(v);
    if (inc.empty()) continue;  // isolated vertices constrain nothing
    LS_REQUIRE(inc.size() <= 16, "degree too large for a matching constraint");
    std::vector<int> scope(inc.begin(), inc.end());
    const std::size_t entries = std::size_t{1} << scope.size();
    std::vector<double> table(entries, 0.0);
    // At most one incident dimer: the all-zero assignment plus each single.
    table[0] = 1.0;
    for (std::size_t i = 0; i < scope.size(); ++i)
      table[std::size_t{1} << i] = 1.0;
    fg.add_constraint(std::move(scope), std::move(table));
  }
  return fg;
}

FactorGraph make_hypergraph_coloring(
    int n, int q, const std::vector<std::vector<int>>& hyperedges,
    bool strong) {
  FactorGraph fg(n, q);
  for (const auto& he : hyperedges) {
    LS_REQUIRE(he.size() >= 2 && he.size() <= 8, "hyperedge arity in [2,8]");
    LS_REQUIRE(!strong || static_cast<std::size_t>(q) >= he.size(),
               "strong coloring needs q >= hyperedge arity");
    std::size_t entries = 1;
    for (std::size_t i = 0; i < he.size(); ++i)
      entries *= static_cast<std::size_t>(q);
    std::vector<double> table(entries);
    std::vector<int> colors(he.size());
    for (std::size_t idx = 0; idx < entries; ++idx) {
      std::size_t rest = idx;
      for (std::size_t i = 0; i < he.size(); ++i) {
        colors[i] = static_cast<int>(rest % static_cast<std::size_t>(q));
        rest /= static_cast<std::size_t>(q);
      }
      bool ok;
      if (strong) {
        ok = true;
        for (std::size_t i = 0; i < colors.size() && ok; ++i)
          for (std::size_t j = i + 1; j < colors.size(); ++j)
            if (colors[i] == colors[j]) {
              ok = false;
              break;
            }
      } else {
        ok = false;
        for (std::size_t i = 1; i < colors.size(); ++i)
          if (colors[i] != colors[0]) {
            ok = true;
            break;
          }
      }
      table[idx] = ok ? 1.0 : 0.0;
    }
    fg.add_constraint(he, std::move(table));
  }
  return fg;
}

FactorGraph make_ksat(int num_vars,
                      const std::vector<std::vector<int>>& clauses,
                      double lambda) {
  LS_REQUIRE(lambda > 0.0, "lambda must be positive");
  FactorGraph fg(num_vars, 2);
  for (int v = 0; v < num_vars; ++v) fg.set_vertex_activity(v, {1.0, lambda});
  for (const auto& clause : clauses) {
    LS_REQUIRE(!clause.empty() && clause.size() <= 16,
               "clause width in [1,16]");
    std::vector<int> scope;
    scope.reserve(clause.size());
    std::size_t falsifying = 0;
    for (std::size_t i = 0; i < clause.size(); ++i) {
      const int lit = clause[i];
      LS_REQUIRE(lit != 0 && std::abs(lit) <= num_vars,
                 "literal out of range (DIMACS-style, nonzero, <= num_vars)");
      scope.push_back(std::abs(lit) - 1);
      // The clause is false iff every positive literal is 0 and every
      // negative literal is 1.
      if (lit < 0) falsifying |= std::size_t{1} << i;
    }
    std::vector<double> table(std::size_t{1} << clause.size(), 1.0);
    table[falsifying] = 0.0;
    fg.add_constraint(std::move(scope), std::move(table));
  }
  return fg;
}

FactorGraph make_mrf_as_csp(const mrf::Mrf& m) {
  FactorGraph fg(m.n(), m.q());
  for (int v = 0; v < m.n(); ++v) {
    const auto b = m.vertex_activity(v);
    fg.set_vertex_activity(v, {b.begin(), b.end()});
  }
  for (int e = 0; e < m.g().num_edges(); ++e) {
    const graph::Edge& ed = m.g().edge(e);
    const auto& a = m.edge_activity(e);
    std::vector<double> table(static_cast<std::size_t>(m.q()) *
                              static_cast<std::size_t>(m.q()));
    // Scope (u, v): index = x_u + q * x_v.
    for (int xu = 0; xu < m.q(); ++xu)
      for (int xv = 0; xv < m.q(); ++xv)
        table[static_cast<std::size_t>(xu) +
              static_cast<std::size_t>(m.q()) * static_cast<std::size_t>(xv)] =
            a.at(xu, xv);
    fg.add_constraint({ed.u, ed.v}, std::move(table));
  }
  return fg;
}

}  // namespace lsample::csp
