// Exact analysis of CSP chains on small factor graphs: Gibbs vectors and
// exact transition matrices, mirroring inference/ for MRFs.  Used to verify
// that the CSP generalizations of both algorithms (the §3 and §4 remarks)
// are stationary / reversible for the CSP Gibbs distribution.
#pragma once

#include "csp/factor_graph.hpp"
#include "inference/dense_matrix.hpp"
#include "inference/state_space.hpp"

namespace lsample::csp {

/// Gibbs distribution of the factor graph over [q]^n, indexed by StateSpace
/// codes.  Throws if the partition function is zero.
[[nodiscard]] std::vector<double> csp_gibbs_distribution(
    const FactorGraph& fg, const inference::StateSpace& ss);

/// Exact single-site Glauber transition matrix.
[[nodiscard]] inference::DenseMatrix csp_glauber_transition(
    const FactorGraph& fg, const inference::StateSpace& ss);

/// Exact CSP LubyGlauber transition matrix (Luby step on the conflict graph,
/// integrated over all priority orderings).  Requires n <= 9.
[[nodiscard]] inference::DenseMatrix csp_luby_glauber_transition(
    const FactorGraph& fg, const inference::StateSpace& ss);

/// Exact CSP LocalMetropolis transition matrix (constraint coins integrated
/// exactly).
[[nodiscard]] inference::DenseMatrix csp_local_metropolis_transition(
    const FactorGraph& fg, const inference::StateSpace& ss,
    int max_uncertain_constraints = 20);

}  // namespace lsample::csp
