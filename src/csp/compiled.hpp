// CompiledFactorGraph — a flat, read-only execution view of a FactorGraph,
// mirroring mrf::CompiledMrf for weighted local CSPs (§4's generalization).
//
// FactorGraph stores one heap-allocated table per constraint and one
// activity vector per vertex, and its evaluation helpers copy the whole
// configuration per call (marginal_weights builds a scratch Config y = x;
// constraint_pass_prob builds a scratch Config tau = x).  That is the right
// shape for model *building* but O(n) per local evaluation on the sampling
// hot path.  Compiling a FactorGraph produces:
//   * CSR variable→constraint incidence (insertion order preserved) and
//     constraint→variable scopes, both contiguous;
//   * a deduplicated table pool — constraints with byte-identical tables
//     share one contiguous block (a dominating-set model on a regular graph
//     compiles to one table regardless of vertex count) — in two layouts:
//     raw entries for the heat-bath marginal and precomputed normalized
//     entries f̃_c = f_c / max f_c for the LocalMetropolis constraint
//     pass-probability product (the 2^k − 1 mixings of §4's remark);
//   * vertex activities packed into one n*q array;
//   * ONE finalized conflict graph (u ~ v iff they share a constraint),
//     shared by every chain and replica built on the view — previously
//     CspLubyGlauberChain rebuilt its own per instance.
//
// Every evaluation here is value-identical (bit-for-bit, not just
// approximately) to the corresponding FactorGraph method: the same doubles
// are multiplied in the same order, only without the scratch copies — so
// chains migrated onto the view reproduce their previous trajectories
// exactly, which the test suite asserts.
//
// The view copies everything it evaluates with, so it is self-contained: the
// source FactorGraph may go out of scope once construction returns.
#pragma once

#include <span>
#include <vector>

#include "csp/factor_graph.hpp"
#include "graph/reorder.hpp"

namespace lsample::csp {

class CompiledFactorGraph {
 public:
  struct Options {
    /// Cache-aware vertex ordering, computed on the CONFLICT graph (the
    /// structure the CSP chains sweep).  Pure layout: external ids, RNG
    /// keys, per-row incidence order and hence trajectories are unchanged.
    graph::VertexOrder reorder = graph::VertexOrder::none;
  };

  /// Compiles fg: flattens incidences, dedups tables, packs activities, and
  /// finalizes the shared conflict graph.  Re-validates the user-constructed
  /// input (vertex activities must not be identically zero, naming the
  /// offending vertex) so the kernels can assume well-formed proposals.
  explicit CompiledFactorGraph(const FactorGraph& fg);
  CompiledFactorGraph(const FactorGraph& fg, const Options& options);

  [[nodiscard]] int n() const noexcept { return n_; }
  [[nodiscard]] int q() const noexcept { return q_; }
  [[nodiscard]] int num_constraints() const noexcept { return nc_; }

  /// Number of distinct constraint tables after deduplication.
  [[nodiscard]] int num_tables() const noexcept {
    return static_cast<int>(pool_offsets_.size());
  }
  [[nodiscard]] int table_index(int c) const noexcept {
    return table_of_[static_cast<std::size_t>(c)];
  }

  [[nodiscard]] graph::VertexOrder reorder() const noexcept {
    return reorder_;
  }
  /// The sweep order over variables: order()[i] is the external id at layout
  /// position i (identity when reorder == none); rank() is the inverse.
  [[nodiscard]] std::span<const int> order() const noexcept { return order_; }
  [[nodiscard]] std::span<const int> rank() const noexcept { return rank_; }

  /// Ids of constraints containing v, in FactorGraph insertion order (rows
  /// stored in rank order for locality).
  [[nodiscard]] std::span<const int> constraints_of(int v) const noexcept {
    const auto b = static_cast<std::size_t>(var_begin_[v]);
    const auto e = static_cast<std::size_t>(var_end_[v]);
    return {cons_flat_.data() + b, e - b};
  }
  /// Scope of constraint c (distinct vertex ids, table-index order).
  [[nodiscard]] std::span<const int> scope(int c) const noexcept {
    const auto b = static_cast<std::size_t>(scope_offsets_[c]);
    const auto e = static_cast<std::size_t>(scope_offsets_[c + 1]);
    return {scope_flat_.data() + b, e - b};
  }
  /// Raw entries of c's table (q^|scope| doubles, FactorGraph indexing).
  [[nodiscard]] std::span<const double> table(int c) const noexcept {
    const auto t = static_cast<std::size_t>(table_of_[c]);
    return {tables_.data() + pool_offsets_[t], pool_sizes_[t]};
  }
  /// Normalized entries f̃_c = f_c / max f_c, same indexing.
  [[nodiscard]] std::span<const double> norm_table(int c) const noexcept {
    const auto t = static_cast<std::size_t>(table_of_[c]);
    return {norm_tables_.data() + pool_offsets_[t], pool_sizes_[t]};
  }

  [[nodiscard]] std::span<const double> vertex_activity(int v) const noexcept {
    return {vert_act_.data() +
                static_cast<std::size_t>(rank_[static_cast<std::size_t>(v)]) *
                    static_cast<std::size_t>(q_),
            static_cast<std::size_t>(q_)};
  }

  /// The finalized conflict graph the CSP Luby step runs on (shared across
  /// chains and replicas; safe for concurrent reads).
  [[nodiscard]] const graph::Graph& conflict_graph() const noexcept {
    return *conflict_;
  }
  [[nodiscard]] graph::GraphPtr conflict_graph_ptr() const noexcept {
    return conflict_;
  }
  /// v's conflict-graph neighbors through row spans cached at construction
  /// (rank-ordered rows when reordered) — pure contiguous reads, no per-call
  /// revalidation.
  [[nodiscard]] std::span<const int> conflict_neighbors(int v) const noexcept {
    const auto b = static_cast<std::size_t>(conflict_begin_[v]);
    const auto e = static_cast<std::size_t>(conflict_end_[v]);
    return conflict_rows_.subspan(b, e - b);
  }

  /// Heat-bath marginal weights at v, value-identical to
  /// FactorGraph::marginal_weights (same factors in the same order) but
  /// reading only v's scope-mates instead of copying the configuration.
  void marginal_weights(int v, const Config& x, std::vector<double>& out) const;

  /// LocalMetropolis constraint filter — the product over the 2^k − 1
  /// non-(all-X) mixings of sigma and x on c's scope — value-identical to
  /// FactorGraph::constraint_pass_prob (f̃ entries are the same precomputed
  /// quotients the reference divides out per factor).
  [[nodiscard]] double constraint_pass_prob(int c, const Config& sigma,
                                            const Config& x) const;

 private:
  int n_ = 0;
  int q_ = 0;
  int nc_ = 0;
  graph::VertexOrder reorder_ = graph::VertexOrder::none;
  std::vector<int> order_;
  std::vector<int> rank_;
  std::vector<int> var_begin_;      // variable → constraint rows (rank order)
  std::vector<int> var_end_;
  std::vector<int> cons_flat_;
  std::vector<int> scope_offsets_;  // nc+1: constraint → scope CSR
  std::vector<int> scope_flat_;
  std::vector<int> table_of_;                // constraint → pooled table id
  std::vector<std::size_t> pool_offsets_;    // pooled id → offset into pools
  std::vector<std::size_t> pool_sizes_;      // pooled id → q^arity
  std::vector<double> tables_;               // pooled raw entries
  std::vector<double> norm_tables_;          // pooled entries / max entry
  std::vector<double> vert_act_;             // n * q, packed in rank order
  graph::GraphPtr conflict_;
  std::vector<int> conflict_begin_;          // conflict rows per external id
  std::vector<int> conflict_end_;
  std::vector<int> own_conflict_;            // owned permuted rows (reordered)
  std::span<const int> conflict_rows_;       // CSR alias or own_conflict_
};

}  // namespace lsample::csp
