#include "csp/csp_chains.hpp"

#include "chains/engine.hpp"
#include "chains/glauber.hpp"
#include "chains/schedulers.hpp"
#include "util/require.hpp"

namespace lsample::csp {

int csp_heat_bath_resample(const FactorGraph& fg, const util::CounterRng& rng,
                           int v, std::int64_t t, const Config& x,
                           std::vector<double>& scratch) {
  fg.marginal_weights(v, x, scratch);
  const int s = chains::shared_stream_sample(scratch, rng,
                                             util::RngDomain::vertex_update,
                                             static_cast<std::uint64_t>(v), t);
  // Zero marginal (possible at infeasible states, e.g. a dominating-set
  // violation no single vertex can repair): keep the current spin.
  return s >= 0 ? s : x[static_cast<std::size_t>(v)];
}

int csp_heat_bath_kernel(const CompiledFactorGraph& cfg,
                         const util::CounterRng& rng, int v, std::int64_t t,
                         const Config& x, std::vector<double>& scratch) {
  cfg.marginal_weights(v, x, scratch);
  const int s = chains::shared_stream_sample(scratch, rng,
                                             util::RngDomain::vertex_update,
                                             static_cast<std::uint64_t>(v), t);
  return s >= 0 ? s : x[static_cast<std::size_t>(v)];
}

int csp_proposal_kernel(const CompiledFactorGraph& cfg,
                        const util::CounterRng& rng, int v, std::int64_t t) {
  const double u = rng.u01(util::RngDomain::vertex_proposal,
                           static_cast<std::uint64_t>(v),
                           static_cast<std::uint64_t>(t));
  // Never -1: the view rejects identically-zero vertex activities at
  // construction (naming the vertex), so the weight total is positive.
  return util::categorical(cfg.vertex_activity(v), u);
}

bool csp_constraint_coin_kernel(const CompiledFactorGraph& cfg,
                                const util::CounterRng& rng, int c,
                                std::int64_t t, const Config& proposal,
                                const Config& x) {
  const double p = cfg.constraint_pass_prob(c, proposal, x);
  const double u = rng.u01(util::RngDomain::constraint_coin,
                           static_cast<std::uint64_t>(c),
                           static_cast<std::uint64_t>(t));
  return u < p;
}

CspGlauberChain::CspGlauberChain(const FactorGraph& fg, std::uint64_t seed)
    : CspGlauberChain(std::make_shared<const CompiledFactorGraph>(fg), seed) {}

CspGlauberChain::CspGlauberChain(
    std::shared_ptr<const CompiledFactorGraph> cfg, std::uint64_t seed)
    : cfg_(std::move(cfg)), rng_(seed) {
  LS_REQUIRE(cfg_ != nullptr, "compiled view must not be null");
}

void CspGlauberChain::step(Config& x, std::int64_t t) {
  const int v = rng_.uniform_int(util::RngDomain::global_choice, 0,
                                 static_cast<std::uint64_t>(t), 0, cfg_->n());
  x[static_cast<std::size_t>(v)] =
      csp_heat_bath_kernel(*cfg_, rng_, v, t, x, weights_);
}

CspLubyGlauberChain::CspLubyGlauberChain(const FactorGraph& fg,
                                         std::uint64_t seed)
    : CspLubyGlauberChain(std::make_shared<const CompiledFactorGraph>(fg),
                          seed) {}

CspLubyGlauberChain::CspLubyGlauberChain(
    std::shared_ptr<const CompiledFactorGraph> cfg, std::uint64_t seed)
    : cfg_(std::move(cfg)), rng_(seed), scratch_(1) {
  LS_REQUIRE(cfg_ != nullptr, "compiled view must not be null");
}

void CspLubyGlauberChain::set_engine(chains::ParallelEngine* engine) {
  engine_ = engine;
  scratch_.resize(engine_ != nullptr
                      ? static_cast<std::size_t>(engine_->num_threads())
                      : 1);
}

void CspLubyGlauberChain::step(Config& x, std::int64_t t) {
  const int n = cfg_->n();
  const auto order = cfg_->order();
  priorities_.resize(static_cast<std::size_t>(n));
  chains::run_partitioned(engine_, n, [&](int /*thread*/, int begin, int end) {
    for (int i = begin; i < end; ++i) {
      const int v = order[static_cast<std::size_t>(i)];
      priorities_[static_cast<std::size_t>(v)] =
          chains::luby_priority(rng_, v, t);
    }
  });
  // Fused selection + resample.  Strongly independent set: local maxima of
  // the conflict graph — a pure predicate of the fixed priority vector, so
  // it can be evaluated in the SAME pass as the resample: no two selected
  // vertices share a constraint, hence no resampled vertex reads a slot
  // another resampled vertex writes, and the predicate itself reads only
  // priorities_.  Two barriers per round instead of three.
  selected_.resize(static_cast<std::size_t>(n));
  chains::run_partitioned(engine_, n, [&](int thread, int begin, int end) {
    auto& scratch = scratch_[static_cast<std::size_t>(thread)];
    for (int i = begin; i < end; ++i) {
      const int v = order[static_cast<std::size_t>(i)];
      const double pv = priorities_[static_cast<std::size_t>(v)];
      bool is_max = true;
      for (int u : cfg_->conflict_neighbors(v)) {
        const double pu = priorities_[static_cast<std::size_t>(u)];
        if (pu > pv || (pu == pv && u > v)) {
          is_max = false;
          break;
        }
      }
      selected_[static_cast<std::size_t>(v)] = is_max ? 1 : 0;
      if (is_max)
        x[static_cast<std::size_t>(v)] =
            csp_heat_bath_kernel(*cfg_, rng_, v, t, x, scratch);
    }
  });
}

CspLocalMetropolisChain::CspLocalMetropolisChain(const FactorGraph& fg,
                                                 std::uint64_t seed)
    : CspLocalMetropolisChain(std::make_shared<const CompiledFactorGraph>(fg),
                              seed) {}

CspLocalMetropolisChain::CspLocalMetropolisChain(
    std::shared_ptr<const CompiledFactorGraph> cfg, std::uint64_t seed)
    : cfg_(std::move(cfg)), rng_(seed) {
  LS_REQUIRE(cfg_ != nullptr, "compiled view must not be null");
}

void CspLocalMetropolisChain::set_engine(chains::ParallelEngine* engine) {
  engine_ = engine;
}

void CspLocalMetropolisChain::step(Config& x, std::int64_t t) {
  // Three barriers by necessity: the constraint coins are shared across
  // their whole scope, so the coin phase must complete before any vertex
  // can decide acceptance (unlike the MRF chain, whose per-edge coins are
  // recomputed at both endpoints and admit a fused filter+adopt pass).
  const int n = cfg_->n();
  const auto order = cfg_->order();
  proposal_.resize(static_cast<std::size_t>(n));
  chains::run_partitioned(engine_, n, [&](int /*thread*/, int begin, int end) {
    for (int i = begin; i < end; ++i) {
      const int v = order[static_cast<std::size_t>(i)];
      proposal_[static_cast<std::size_t>(v)] =
          csp_proposal_kernel(*cfg_, rng_, v, t);
    }
  });
  const int nc = cfg_->num_constraints();
  pass_.resize(static_cast<std::size_t>(nc));
  chains::run_partitioned(engine_, nc, [&](int /*thread*/, int begin, int end) {
    for (int c = begin; c < end; ++c)
      pass_[static_cast<std::size_t>(c)] =
          csp_constraint_coin_kernel(*cfg_, rng_, c, t, proposal_, x) ? 1 : 0;
  });
  chains::run_partitioned(engine_, n, [&](int /*thread*/, int begin, int end) {
    for (int i = begin; i < end; ++i) {
      const int v = order[static_cast<std::size_t>(i)];
      bool accept = true;
      for (int c : cfg_->constraints_of(v))
        if (pass_[static_cast<std::size_t>(c)] == 0) {
          accept = false;
          break;
        }
      if (accept)
        x[static_cast<std::size_t>(v)] =
            proposal_[static_cast<std::size_t>(v)];
    }
  });
}

}  // namespace lsample::csp
