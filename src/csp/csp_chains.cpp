#include "csp/csp_chains.hpp"

#include "chains/glauber.hpp"
#include "chains/schedulers.hpp"
#include "util/require.hpp"

namespace lsample::csp {

int csp_heat_bath_resample(const FactorGraph& fg, const util::CounterRng& rng,
                           int v, std::int64_t t, const Config& x,
                           std::vector<double>& scratch) {
  fg.marginal_weights(v, x, scratch);
  const int s = chains::shared_stream_sample(scratch, rng,
                                             util::RngDomain::vertex_update,
                                             static_cast<std::uint64_t>(v), t);
  // Zero marginal (possible at infeasible states, e.g. a dominating-set
  // violation no single vertex can repair): keep the current spin.
  return s >= 0 ? s : x[static_cast<std::size_t>(v)];
}

CspGlauberChain::CspGlauberChain(const FactorGraph& fg, std::uint64_t seed)
    : fg_(fg), rng_(seed) {}

void CspGlauberChain::step(Config& x, std::int64_t t) {
  const int v = rng_.uniform_int(util::RngDomain::global_choice, 0,
                                 static_cast<std::uint64_t>(t), 0, fg_.n());
  x[static_cast<std::size_t>(v)] =
      csp_heat_bath_resample(fg_, rng_, v, t, x, weights_);
}

CspLubyGlauberChain::CspLubyGlauberChain(const FactorGraph& fg,
                                         std::uint64_t seed)
    : fg_(fg), rng_(seed), conflict_(fg.make_conflict_graph()) {}

void CspLubyGlauberChain::step(Config& x, std::int64_t t) {
  const int n = fg_.n();
  priorities_.resize(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v)
    priorities_[static_cast<std::size_t>(v)] =
        chains::luby_priority(rng_, v, t);
  // Strongly independent set: local maxima of the conflict graph.  No two
  // selected vertices share a constraint, so in-place updates are parallel.
  for (int v = 0; v < n; ++v) {
    bool is_max = true;
    for (int u : conflict_->neighbors(v)) {
      const double pu = priorities_[static_cast<std::size_t>(u)];
      const double pv = priorities_[static_cast<std::size_t>(v)];
      if (pu > pv || (pu == pv && u > v)) {
        is_max = false;
        break;
      }
    }
    if (is_max)
      x[static_cast<std::size_t>(v)] =
          csp_heat_bath_resample(fg_, rng_, v, t, x, weights_);
  }
}

CspLocalMetropolisChain::CspLocalMetropolisChain(const FactorGraph& fg,
                                                 std::uint64_t seed)
    : fg_(fg), rng_(seed) {}

void CspLocalMetropolisChain::step(Config& x, std::int64_t t) {
  const int n = fg_.n();
  proposal_.resize(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    const double u = rng_.u01(util::RngDomain::vertex_proposal,
                              static_cast<std::uint64_t>(v),
                              static_cast<std::uint64_t>(t));
    const int s = util::categorical(fg_.vertex_activity(v), u);
    LS_ASSERT(s >= 0, "vertex activity must not be identically zero");
    proposal_[static_cast<std::size_t>(v)] = s;
  }
  const int nc = fg_.num_constraints();
  pass_.resize(static_cast<std::size_t>(nc));
  for (int c = 0; c < nc; ++c) {
    const double p = fg_.constraint_pass_prob(c, proposal_, x);
    const double u = rng_.u01(util::RngDomain::constraint_coin,
                              static_cast<std::uint64_t>(c),
                              static_cast<std::uint64_t>(t));
    pass_[static_cast<std::size_t>(c)] = u < p ? 1 : 0;
  }
  for (int v = 0; v < n; ++v) {
    bool accept = true;
    for (int c : fg_.constraints_of(v))
      if (pass_[static_cast<std::size_t>(c)] == 0) {
        accept = false;
        break;
      }
    if (accept)
      x[static_cast<std::size_t>(v)] = proposal_[static_cast<std::size_t>(v)];
  }
}

}  // namespace lsample::csp
