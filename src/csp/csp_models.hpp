// Weighted local CSP model builders (§2.2 examples: dominating sets, and
// MRFs embedded as binary CSPs).
#pragma once

#include <vector>

#include "csp/factor_graph.hpp"
#include "graph/graph.hpp"
#include "mrf/mrf.hpp"

namespace lsample::csp {

/// Dominating sets of g weighted by lambda^|S|: q = 2, spin 1 = "chosen";
/// for every vertex a cover constraint on the inclusive neighborhood
/// Gamma+(v) requiring at least one chosen vertex (§2.2).
[[nodiscard]] FactorGraph make_dominating_set(const graph::Graph& g,
                                              double lambda);

/// Uniform distribution over not-all-equal labelings of a k-uniform
/// hypergraph with q labels: one NAE constraint per hyperedge.
[[nodiscard]] FactorGraph make_hypergraph_nae(
    int n, int q, const std::vector<std::vector<int>>& hyperedges);

/// Independent sets of a hypergraph weighted by lambda^|S|: a hyperedge is
/// violated iff all its vertices are chosen.
[[nodiscard]] FactorGraph make_hypergraph_independent_set(
    int n, const std::vector<std::vector<int>>& hyperedges, double lambda);

/// Embeds a pairwise MRF as a CSP with one binary constraint per edge; the
/// Gibbs distributions coincide (tested), demonstrating that the CSP
/// machinery strictly generalizes the MRF machinery.
[[nodiscard]] FactorGraph make_mrf_as_csp(const mrf::Mrf& m);

/// Monomer-dimer / weighted-matchings model of g (§2.2 covers any weighted
/// local CSP; matchings are the classic non-pairwise example): one binary
/// variable per EDGE of g (spin 1 = "dimer placed"), weight
/// dimer_weight^|M|, and for every vertex an at-most-one constraint over its
/// incident edge variables.  Requires at least one edge and max degree <= 16.
[[nodiscard]] FactorGraph make_monomer_dimer(const graph::Graph& g,
                                             double dimer_weight);

/// Uniform distribution over proper colorings of a hypergraph with q colors.
/// weak (strong = false, the standard notion): a hyperedge only forbids
/// monochromatic assignments — the constraint of make_hypergraph_nae;
/// strong = true: the colors inside every hyperedge must be pairwise
/// distinct, which requires q >= the hyperedge's arity.
[[nodiscard]] FactorGraph make_hypergraph_coloring(
    int n, int q, const std::vector<std::vector<int>>& hyperedges,
    bool strong = false);

/// k-SAT solution sampling: the distribution over assignments of num_vars
/// boolean variables proportional to lambda^{#true} restricted to models of
/// the CNF formula (lambda = 1 is uniform over solutions).  Clauses are
/// DIMACS-style signed 1-based literals (+v = variable v-1 true, -v =
/// false); each clause becomes one constraint zeroing exactly its single
/// falsifying assignment.  Variables inside a clause must be distinct.
[[nodiscard]] FactorGraph make_ksat(int num_vars,
                                    const std::vector<std::vector<int>>& clauses,
                                    double lambda = 1.0);

}  // namespace lsample::csp
