// Weighted local CSP model builders (§2.2 examples: dominating sets, and
// MRFs embedded as binary CSPs).
#pragma once

#include <vector>

#include "csp/factor_graph.hpp"
#include "graph/graph.hpp"
#include "mrf/mrf.hpp"

namespace lsample::csp {

/// Dominating sets of g weighted by lambda^|S|: q = 2, spin 1 = "chosen";
/// for every vertex a cover constraint on the inclusive neighborhood
/// Gamma+(v) requiring at least one chosen vertex (§2.2).
[[nodiscard]] FactorGraph make_dominating_set(const graph::Graph& g,
                                              double lambda);

/// Uniform distribution over not-all-equal labelings of a k-uniform
/// hypergraph with q labels: one NAE constraint per hyperedge.
[[nodiscard]] FactorGraph make_hypergraph_nae(
    int n, int q, const std::vector<std::vector<int>>& hyperedges);

/// Independent sets of a hypergraph weighted by lambda^|S|: a hyperedge is
/// violated iff all its vertices are chosen.
[[nodiscard]] FactorGraph make_hypergraph_independent_set(
    int n, const std::vector<std::vector<int>>& hyperedges, double lambda);

/// Embeds a pairwise MRF as a CSP with one binary constraint per edge; the
/// Gibbs distributions coincide (tested), demonstrating that the CSP
/// machinery strictly generalizes the MRF machinery.
[[nodiscard]] FactorGraph make_mrf_as_csp(const mrf::Mrf& m);

}  // namespace lsample::csp
