// Weighted local CSPs (factor graphs, §2.2): a collection of constraints
// c = (f_c, S_c) with non-negative constraint functions over scopes S_c,
// weight w(sigma) = prod_c f_c(sigma|S_c) * prod_v b_v(sigma_v).
//
// Both of the paper's algorithms extend to this model:
//  * LubyGlauber runs its Luby step on the *conflict graph* (u ~ v iff they
//    share a constraint), so the selected set is strongly independent in the
//    constraint hypergraph (Remark in §3);
//  * LocalMetropolis filters each k-ary constraint with a product of 2^k - 1
//    normalized factors f̃_c(tau), one per way of mixing the proposals
//    sigma_Sc with the current X_Sc other than X_Sc itself (Remark in §4).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "mrf/mrf.hpp"

namespace lsample::csp {

using mrf::Config;

struct Constraint {
  std::vector<int> scope;     ///< distinct vertex ids
  std::vector<double> table;  ///< q^|scope| values; index = sum x_i * q^i
  double max_entry = 0.0;
};

class FactorGraph {
 public:
  FactorGraph(int n, int q);

  /// Adds constraint (f, S); the table is indexed by sum_i x_{S[i]} q^i.
  int add_constraint(std::vector<int> scope, std::vector<double> table);

  void set_vertex_activity(int v, std::vector<double> b);

  [[nodiscard]] int n() const noexcept { return n_; }
  [[nodiscard]] int q() const noexcept { return q_; }
  [[nodiscard]] int num_constraints() const noexcept {
    return static_cast<int>(constraints_.size());
  }
  [[nodiscard]] const Constraint& constraint(int c) const;
  [[nodiscard]] std::span<const int> constraints_of(int v) const;
  [[nodiscard]] std::span<const double> vertex_activity(int v) const;

  /// f_c evaluated on the restriction of x to the scope.
  [[nodiscard]] double table_value(int c, const Config& x) const;

  [[nodiscard]] double log_weight(const Config& x) const;
  [[nodiscard]] bool feasible(const Config& x) const;

  /// Heat-bath marginal weights at v: out[s] = b_v(s) prod_{c: v in S_c}
  /// f_c(x with x_v = s).
  void marginal_weights(int v, const Config& x, std::vector<double>& out) const;

  /// LocalMetropolis constraint filter: prod over the 2^k - 1 non-(all-X)
  /// mixings tau of sigma and X on the scope of f̃_c(tau).
  [[nodiscard]] double constraint_pass_prob(int c, const Config& sigma,
                                            const Config& x) const;

  /// Conflict graph: u ~ v iff u != v share at least one constraint
  /// (deduplicated simple graph).  This is the graph the CSP Luby step runs
  /// on.
  [[nodiscard]] std::shared_ptr<graph::Graph> make_conflict_graph() const;

 private:
  [[nodiscard]] std::size_t table_index(const Constraint& c,
                                        const Config& x) const;

  int n_;
  int q_;
  std::vector<Constraint> constraints_;
  std::vector<std::vector<int>> constraints_of_;
  std::vector<std::vector<double>> vertex_acts_;
};

void check_config(const FactorGraph& fg, const Config& x);

}  // namespace lsample::csp
