// Continuous randomized correctness fuzzing for every execution path in the
// library (ROADMAP item "scenario breadth + a correctness fuzzer that scales
// with it").
//
// The harness generates random small instances across every model family the
// paper's framework covers (§2.2 MRFs, §2.2/§4 weighted local CSPs) and runs
// a cross-check matrix per instance:
//
//   * seed-vs-compiled — the compiled chains (CompiledMrf /
//     CompiledFactorGraph kernels) against direct reference steppers built
//     from the legacy helpers, bitwise, step by step;
//   * sequential-vs-threaded — bit-identical trajectories at 1/2/4/hw
//     threads under a ParallelEngine;
//   * chain-vs-LOCAL-network — the message-passing runtime against the
//     in-memory chain, bitwise (R+1 simulated rounds = R chain steps);
//   * replica streams — sample_many / sample_many_csp batches against the
//     sequential replica_seed loop, bitwise, plus thread-count invariance;
//   * empirical-vs-exact — TV distance between the sampled empirical
//     distribution and the exact Gibbs distribution by full enumeration,
//     on instances whose feasible state space is small enough (the
//     tolerance adapts to support size and sample count);
//   * tempering ground truth on torpid instances — in the non-uniqueness
//     regime of §5 (hardcore on K_{b,b} above lambda_c) the harness checks
//     that ParallelTempering still matches exact enumeration while the
//     budgeted local chain is measurably far from it (the lower bound
//     regime actually bites).
//
// Failures are minimized (the instance size rank is shrunk while the same
// check still fails) and carry a reproducer snippet: family, parameters,
// instance seed, and the fuzz_driver command line that replays the case.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "core/sampler.hpp"

namespace lsample::testing {

/// Every model family the fuzzer exercises.  The first seven are pairwise
/// MRFs (§2.2), the rest weighted local CSPs (§2.2 examples / §4).
enum class Family : int {
  coloring = 0,
  list_coloring,
  hardcore,
  ising,
  potts,
  widom_rowlinson,
  homomorphism,
  dominating_set,
  nae_hypergraph,
  hypergraph_independent_set,
  monomer_dimer,
  hypergraph_coloring,
  ksat,
};

inline constexpr int kNumFamilies = 13;

/// All families, in declaration order.
[[nodiscard]] const std::array<Family, kNumFamilies>& all_families() noexcept;

[[nodiscard]] std::string_view family_name(Family f) noexcept;

/// Inverse of family_name; nullopt for unknown names.
[[nodiscard]] std::optional<Family> parse_family(std::string_view name) noexcept;

[[nodiscard]] bool family_is_csp(Family f) noexcept;

struct FuzzOptions {
  std::uint64_t seed = 1;  ///< base seed; instance i of family f derives from it
  int iterations = 3;      ///< instances generated per family
  /// Families to fuzz; empty means all of them.
  std::vector<Family> families;
  /// Steps for the bitwise trajectory-equality checks.
  std::int64_t equality_steps = 48;
  /// Replicas per batch-vs-loop check.
  int replica_batch = 5;
  /// Samples for the empirical-vs-exact TV check.
  int tv_samples = 6000;
  /// Chain steps per TV sample (the mixing budget for these tiny instances;
  /// sized for the slowest case, LocalMetropolis on hard-constraint CSPs,
  /// whose per-vertex acceptance is throttled by every incident constraint).
  std::int64_t tv_rounds = 240;
  /// Base TV tolerance; the effective tolerance per instance is
  /// tv_tolerance + 0.9 * sqrt(support / tv_samples) (sampling noise).
  double tv_tolerance = 0.06;
  /// Feasible-support cap for TV checks; larger instances skip the check.
  std::int64_t tv_max_support = 300;
  bool check_exact_tv = true;
  /// Torpid-instance tempering cross-check (hardcore above lambda_c).
  bool check_tempering = true;
  int tempering_sweeps = 4000;
  int tempering_burnin = 400;
  /// Attempt to shrink a failing instance's size rank before reporting.
  bool minimize = true;
  /// Progress / failure stream (nullptr = silent).
  std::ostream* log = nullptr;
};

struct FuzzFailure {
  Family family{};
  std::uint64_t instance_seed = 0;
  int size_rank = 0;
  std::string check;   ///< which cross-check failed
  std::string params;  ///< human-readable instance description
  std::string detail;  ///< what differed
  /// A ready-to-paste snippet (and fuzz_driver command) replaying the case.
  [[nodiscard]] std::string reproducer() const;
};

struct FuzzReport {
  int instances = 0;
  std::int64_t checks = 0;
  std::vector<Family> families_covered;
  std::vector<FuzzFailure> failures;
  [[nodiscard]] bool ok() const noexcept { return failures.empty(); }
  [[nodiscard]] std::string summary() const;
};

class FuzzHarness {
 public:
  explicit FuzzHarness(FuzzOptions options);

  /// The full cross-check matrix over options.iterations instances per
  /// family (plus the torpid tempering checks when enabled).
  [[nodiscard]] FuzzReport run();

  /// Only the thread-count / replica / network determinism checks — the
  /// subset CI runs under ThreadSanitizer (reference steppers and TV
  /// sampling add nothing under TSan and would dominate its runtime).
  [[nodiscard]] FuzzReport run_determinism_subset();

  /// Replays one instance: every applicable check for (family,
  /// instance_seed, size_rank).  This is what reproducer snippets call.
  [[nodiscard]] std::vector<FuzzFailure> run_instance(Family f,
                                                      std::uint64_t instance_seed,
                                                      int size_rank);

  /// The torpid-instance check (tempering-vs-exact + chain torpidity),
  /// exposed for reproducers; rank scales the gadget size.
  [[nodiscard]] std::vector<FuzzFailure> run_torpid_instance(
      std::uint64_t instance_seed, int size_rank);

 private:
  [[nodiscard]] FuzzReport run_mode(bool determinism_only);
  FuzzOptions options_;
};

/// The derived per-instance seed the harness feeds run_instance for
/// iteration i of family f under base seed `base` (exposed so reproducers
/// and golden tests can name instances stably).
[[nodiscard]] std::uint64_t instance_seed(std::uint64_t base, Family f,
                                          int iteration) noexcept;

/// FNV-1a hash of the whole trajectory (every config after every step) of
/// the generated instance (f, seed, size_rank) under the given algorithm.
/// MRF families run LubyGlauberChain / LocalMetropolisChain; CSP families
/// run CspLubyGlauberChain / CspLocalMetropolisChain.  Golden values of this
/// hash pin the RNG stream layout: any accidental change to seed derivation,
/// draw ordering, or instance generation fails the pin loudly instead of
/// silently shifting statistics.
[[nodiscard]] std::uint64_t trajectory_hash(Family f, core::Algorithm algorithm,
                                            std::uint64_t seed,
                                            std::int64_t steps,
                                            int size_rank = 0);

/// TV distance between the empirical distribution of `samples` facade
/// samples (seeded replica streams, `rounds` steps each) and the exact Gibbs
/// distribution by enumeration.  Shared by the fuzzer and the model-zoo
/// exactness tests.  Requires q^n within StateSpace limits.  `fast_math`
/// runs the batch on the reassociated CompiledMrf::Tier::fast_math kernels
/// (with RCM layout, covering the combined configuration) — the statistical
/// check that validates the tier, since its trajectories are deliberately
/// not bit-comparable to the exact path.
[[nodiscard]] double empirical_tv_vs_exact(const mrf::Mrf& m,
                                           core::Algorithm algorithm,
                                           std::uint64_t seed, int samples,
                                           std::int64_t rounds,
                                           bool fast_math = false);
[[nodiscard]] double empirical_tv_vs_exact(const csp::FactorGraph& fg,
                                           const csp::Config& x0,
                                           core::Algorithm algorithm,
                                           std::uint64_t seed, int samples,
                                           std::int64_t rounds);

/// Number of configurations with positive weight (the feasible support of
/// the Gibbs distribution), by enumeration.
[[nodiscard]] std::int64_t feasible_support(const mrf::Mrf& m);
[[nodiscard]] std::int64_t feasible_support(const csp::FactorGraph& fg);

}  // namespace lsample::testing
