// Standalone fuzzing entry point for long randomized runs.
//
//   fuzz_driver [--seed=N] [--iterations=N] [--families=a,b,c]
//               [--determinism-only] [--no-tv] [--no-tempering]
//               [--family=F --instance-seed=N [--rank=R]]   (replay one case)
//               [--goldens]                                  (print hash table)
//
// Exit status: 0 when every check passed, 1 on any failure (each failure
// prints a reproducer snippet), 2 on bad usage.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "testing/fuzz.hpp"

namespace {

using lsample::testing::Family;
using lsample::testing::FuzzHarness;
using lsample::testing::FuzzOptions;

[[nodiscard]] bool parse_u64(std::string_view s, std::uint64_t* out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

[[nodiscard]] int usage() {
  std::cerr
      << "usage: fuzz_driver [--seed=N] [--iterations=N] [--families=a,b,c]\n"
         "                   [--determinism-only] [--no-tv] [--no-tempering]\n"
         "                   [--family=F --instance-seed=N [--rank=R]]\n"
         "                   [--goldens]\n"
         "families:";
  for (Family f : lsample::testing::all_families())
    std::cerr << " " << lsample::testing::family_name(f);
  std::cerr << "\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  FuzzOptions options;
  options.log = &std::cout;
  bool determinism_only = false;
  bool goldens = false;
  std::optional<Family> replay_family;
  std::optional<std::uint64_t> replay_seed;
  int replay_rank = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value = [&](std::string_view prefix) {
      return arg.substr(prefix.size());
    };
    std::uint64_t v = 0;
    if (arg.rfind("--seed=", 0) == 0 && parse_u64(value("--seed="), &v)) {
      options.seed = v;
    } else if (arg.rfind("--iterations=", 0) == 0 &&
               parse_u64(value("--iterations="), &v) && v >= 1) {
      options.iterations = static_cast<int>(v);
    } else if (arg.rfind("--families=", 0) == 0) {
      std::istringstream is{std::string(value("--families="))};
      std::string name;
      while (std::getline(is, name, ',')) {
        const auto f = lsample::testing::parse_family(name);
        if (!f) {
          std::cerr << "unknown family: " << name << "\n";
          return usage();
        }
        options.families.push_back(*f);
      }
    } else if (arg == "--determinism-only") {
      determinism_only = true;
    } else if (arg == "--no-tv") {
      options.check_exact_tv = false;
    } else if (arg == "--no-tempering") {
      options.check_tempering = false;
    } else if (arg.rfind("--family=", 0) == 0) {
      replay_family = lsample::testing::parse_family(value("--family="));
      if (!replay_family) {
        std::cerr << "unknown family: " << value("--family=") << "\n";
        return usage();
      }
    } else if (arg.rfind("--instance-seed=", 0) == 0 &&
               parse_u64(value("--instance-seed="), &v)) {
      replay_seed = v;
    } else if (arg.rfind("--rank=", 0) == 0 &&
               parse_u64(value("--rank="), &v)) {
      replay_rank = static_cast<int>(v);
    } else if (arg == "--goldens") {
      goldens = true;
    } else {
      std::cerr << "bad argument: " << arg << "\n";
      return usage();
    }
  }

  if (goldens) {
    // Prints the table tests/golden_trajectory_test.cpp pins; regenerate
    // after an INTENTIONAL RNG-stream or generator change and paste it in.
    for (Family f : lsample::testing::all_families())
      for (auto alg : {lsample::core::Algorithm::luby_glauber,
                       lsample::core::Algorithm::local_metropolis}) {
        const std::uint64_t h =
            lsample::testing::trajectory_hash(f, alg, 1234, 32, 0);
        std::cout << "    {Family::" << lsample::testing::family_name(f)
                  << ", Algorithm::"
                  << (alg == lsample::core::Algorithm::luby_glauber
                          ? "luby_glauber"
                          : "local_metropolis")
                  << ", " << h << "ULL},\n";
      }
    return 0;
  }

  if (replay_family || replay_seed) {
    if (!replay_family || !replay_seed) {
      std::cerr << "--family and --instance-seed must be given together\n";
      return usage();
    }
    FuzzHarness harness(options);
    const auto failures =
        harness.run_instance(*replay_family, *replay_seed, replay_rank);
    for (const auto& f : failures) std::cout << f.reproducer();
    std::cout << (failures.empty() ? "replay: all checks passed\n"
                                   : "replay: checks FAILED\n");
    return failures.empty() ? 0 : 1;
  }

  FuzzHarness harness(options);
  const auto report =
      determinism_only ? harness.run_determinism_subset() : harness.run();
  return report.ok() ? 0 : 1;
}
