#include "testing/fuzz.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <functional>
#include <memory>
#include <sstream>

#include "chains/engine.hpp"
#include "chains/glauber.hpp"
#include "chains/init.hpp"
#include "chains/local_metropolis.hpp"
#include "chains/luby_glauber.hpp"
#include "chains/replicas.hpp"
#include "chains/schedulers.hpp"
#include "csp/csp_chains.hpp"
#include "csp/csp_exact.hpp"
#include "csp/csp_models.hpp"
#include "gadget/tempering.hpp"
#include "graph/generators.hpp"
#include "inference/exact.hpp"
#include "inference/state_space.hpp"
#include "local/csp_node_programs.hpp"
#include "local/network.hpp"
#include "local/node_programs.hpp"
#include "mrf/models.hpp"
#include "util/require.hpp"
#include "util/summary.hpp"

namespace lsample::testing {

namespace {

constexpr std::array<std::string_view, kNumFamilies> kFamilyNames = {
    "coloring",       "list_coloring",
    "hardcore",       "ising",
    "potts",          "widom_rowlinson",
    "homomorphism",   "dominating_set",
    "nae_hypergraph", "hypergraph_independent_set",
    "monomer_dimer",  "hypergraph_coloring",
    "ksat",
};

/// Seed for the chains of instance `inst`, decorrelated from the generation
/// stream by salt.  Stable forever: golden trajectory hashes pin it.
[[nodiscard]] std::uint64_t chain_seed(std::uint64_t instance_seed,
                                       std::uint64_t salt) noexcept {
  return util::mix64(instance_seed ^
                     (salt + 1) * 0x9e3779b97f4a7c15ULL);
}

// ---------------------------------------------------------------------------
// Instance generation
// ---------------------------------------------------------------------------

/// One generated fuzz case.  Exactly one of `m` / `fg` is set; `x0` is a
/// feasible initial configuration (chains and the facade both need one).
struct Instance {
  Family family{};
  std::uint64_t seed = 0;
  int rank = 0;
  std::string params;
  graph::GraphPtr g;  // keeps the model's graph alive where one exists
  std::optional<mrf::Mrf> m;
  std::optional<csp::FactorGraph> fg;
  mrf::Config x0;
};

[[nodiscard]] graph::GraphPtr random_base_graph(util::Rng& rng, int n,
                                                std::string* name) {
  switch (rng.uniform_int(5)) {
    case 0:
      *name = "path";
      return graph::make_path(n);
    case 1:
      *name = "cycle";
      return graph::make_cycle(n);
    case 2:
      *name = "star";
      return graph::make_star(n - 1);
    case 3:
      *name = "tree";
      return graph::make_random_tree(n, rng);
    default: {
      auto g = graph::make_erdos_renyi(n, 0.5, rng);
      if (g->num_edges() == 0) {
        *name = "path";
        return graph::make_path(n);
      }
      *name = "gnp";
      return g;
    }
  }
}

[[nodiscard]] std::vector<std::vector<int>> random_hyperedges(
    util::Rng& rng, int n, int count, int min_arity, int max_arity) {
  std::vector<std::vector<int>> hes;
  hes.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    int k = std::min(n, min_arity + rng.uniform_int(max_arity - min_arity + 1));
    std::vector<int> he;
    while (static_cast<int>(he.size()) < k) {
      const int v = rng.uniform_int(n);
      if (std::find(he.begin(), he.end(), v) == he.end()) he.push_back(v);
    }
    hes.push_back(std::move(he));
  }
  return hes;
}

/// Lowest-code feasible configuration by enumeration (all fuzz instances
/// keep q^n tiny, so this is exact and cheap); nullopt for unsatisfiable
/// candidates, which the generator rerolls.
[[nodiscard]] std::optional<csp::Config> first_feasible(
    const csp::FactorGraph& fg) {
  const inference::StateSpace ss(fg.n(), fg.q());
  csp::Config x(static_cast<std::size_t>(fg.n()));
  for (std::int64_t i = 0; i < ss.size(); ++i) {
    ss.decode_into(i, x);
    if (fg.feasible(x)) return x;
  }
  return std::nullopt;
}

[[nodiscard]] Instance make_instance(Family f, std::uint64_t seed, int rank) {
  Instance inst;
  inst.family = f;
  inst.seed = seed;
  inst.rank = std::clamp(rank, 0, 2);
  const int r = inst.rank;
  util::Rng rng(util::mix64(
      util::mix64(seed ^ (static_cast<std::uint64_t>(f) + 1) *
                             0xbf58476d1ce4e5b9ULL) ^
      (static_cast<std::uint64_t>(r) + 1)));
  std::ostringstream ps;
  std::string gname;
  switch (f) {
    case Family::coloring: {
      const int n = 4 + r;
      inst.g = random_base_graph(rng, n, &gname);
      const int q = inst.g->max_degree() + 2 + rng.uniform_int(2);
      inst.m = mrf::make_proper_coloring(inst.g, q);
      ps << "coloring " << gname << " n=" << n << " q=" << q;
      break;
    }
    case Family::list_coloring: {
      const int n = 4 + r;
      inst.g = random_base_graph(rng, n, &gname);
      const int q = inst.g->max_degree() + 3;
      std::vector<std::vector<int>> lists(static_cast<std::size_t>(n));
      std::vector<int> colors(static_cast<std::size_t>(q));
      for (int v = 0; v < n; ++v) {
        const int dv = static_cast<int>(inst.g->neighbors(v).size());
        const int lv = std::min(q, dv + 2);
        for (int c = 0; c < q; ++c) colors[static_cast<std::size_t>(c)] = c;
        for (int i = 0; i < lv; ++i) {
          const int j = i + rng.uniform_int(q - i);
          std::swap(colors[static_cast<std::size_t>(i)],
                    colors[static_cast<std::size_t>(j)]);
        }
        lists[static_cast<std::size_t>(v)] = {colors.begin(),
                                              colors.begin() + lv};
        std::sort(lists[static_cast<std::size_t>(v)].begin(),
                  lists[static_cast<std::size_t>(v)].end());
      }
      inst.m = mrf::make_list_coloring(inst.g, q, lists);
      ps << "list_coloring " << gname << " n=" << n << " q=" << q;
      break;
    }
    case Family::hardcore: {
      const int n = 5 + r;
      inst.g = random_base_graph(rng, n, &gname);
      const double lambda = 0.4 + 1.2 * rng.u01();
      inst.m = mrf::make_hardcore(inst.g, lambda);
      ps << "hardcore " << gname << " n=" << n << " lambda=" << lambda;
      break;
    }
    case Family::ising: {
      const int n = 4 + std::min(r, 1);
      inst.g = random_base_graph(rng, n, &gname);
      const double beta = -0.5 + rng.u01();
      const double field = -0.4 + 0.8 * rng.u01();
      inst.m = mrf::make_ising(inst.g, beta, field);
      ps << "ising " << gname << " n=" << n << " beta=" << beta
         << " field=" << field;
      break;
    }
    case Family::potts: {
      const int n = 4 + std::min(r, 1);
      inst.g = random_base_graph(rng, n, &gname);
      const double beta = -0.8 + 1.6 * rng.u01();
      inst.m = mrf::make_potts(inst.g, 3, beta);
      ps << "potts " << gname << " n=" << n << " q=3 beta=" << beta;
      break;
    }
    case Family::widom_rowlinson: {
      const int n = 4 + std::min(r, 1);
      inst.g = random_base_graph(rng, n, &gname);
      const double lambda = 0.5 + 1.5 * rng.u01();
      inst.m = mrf::make_widom_rowlinson(inst.g, lambda);
      ps << "widom_rowlinson " << gname << " n=" << n << " lambda=" << lambda;
      break;
    }
    case Family::homomorphism: {
      const int n = 4 + std::min(r, 1);
      inst.g = random_base_graph(rng, n, &gname);
      // Constraint graph H on 3 spins: complete with loops, minus a random
      // nonempty subset of {loop at 2, edge {1,2}}.  The loop at 0 survives,
      // so the all-0 map is always a homomorphism and greedy init succeeds.
      std::vector<int> h(9, 1);
      const bool drop_loop = rng.bernoulli(0.5);
      const bool drop_edge = rng.bernoulli(0.5);
      if (drop_loop || !drop_edge) h[2 * 3 + 2] = 0;
      if (drop_edge) h[1 * 3 + 2] = h[2 * 3 + 1] = 0;
      std::vector<double> weights;
      if (rng.bernoulli(0.5)) {
        weights.resize(3);
        for (auto& w : weights) w = 0.5 + 1.5 * rng.u01();
      }
      inst.m = mrf::make_homomorphism(inst.g, 3, h, weights);
      ps << "homomorphism " << gname << " n=" << n << " q=3 H=[";
      for (int x : h) ps << x;
      ps << "]" << (weights.empty() ? "" : " weighted");
      break;
    }
    case Family::dominating_set: {
      const int n = 4 + r;
      inst.g = random_base_graph(rng, n, &gname);
      const double lambda = 0.5 + 1.5 * rng.u01();
      inst.fg = csp::make_dominating_set(*inst.g, lambda);
      ps << "dominating_set " << gname << " n=" << n << " lambda=" << lambda;
      break;
    }
    case Family::nae_hypergraph: {
      const int q = 2 + rng.uniform_int(2);
      const int n = q == 2 ? 5 + r : 4 + std::min(r, 1);
      for (int attempt = 0; attempt < 32 && !inst.fg; ++attempt) {
        const auto hes =
            random_hyperedges(rng, n, n - 1 + rng.uniform_int(2), 2, 3);
        auto fg = csp::make_hypergraph_nae(n, q, hes);
        if (first_feasible(fg)) {
          inst.fg = std::move(fg);
          ps << "nae_hypergraph n=" << n << " q=" << q << " m=" << hes.size();
        }
      }
      if (!inst.fg) {
        inst.fg = csp::make_hypergraph_nae(n, q, {{0, 1}});
        ps << "nae_hypergraph n=" << n << " q=" << q << " m=1 (fallback)";
      }
      break;
    }
    case Family::hypergraph_independent_set: {
      const int n = 5 + r;
      const auto hes =
          random_hyperedges(rng, n, n - 1 + rng.uniform_int(2), 2, 3);
      const double lambda = 0.5 + rng.u01();
      inst.fg = csp::make_hypergraph_independent_set(n, hes, lambda);
      ps << "hypergraph_independent_set n=" << n << " m=" << hes.size()
         << " lambda=" << lambda;
      break;
    }
    case Family::monomer_dimer: {
      const int nb = 4 + std::min(r, 1);
      // Keep 1 <= |E| <= 9 so the edge-indexed state space stays enumerable.
      do {
        inst.g = random_base_graph(rng, nb, &gname);
      } while (inst.g->num_edges() < 1 || inst.g->num_edges() > 9);
      const double w = 0.5 + 1.5 * rng.u01();
      inst.fg = csp::make_monomer_dimer(*inst.g, w);
      ps << "monomer_dimer " << gname << " nv=" << nb
         << " ne=" << inst.g->num_edges() << " w=" << w;
      break;
    }
    case Family::hypergraph_coloring: {
      const int q = 3 + rng.uniform_int(2);
      const int n = 4 + std::min(r, 1);
      // Arity stays below q so a strongly colored hyperedge always has an
      // unused color: random strong instances at arity == q freeze solid
      // (no vertex has a legal move) and fuzz nothing.
      for (int attempt = 0; attempt < 32 && !inst.fg; ++attempt) {
        const auto hes = random_hyperedges(
            rng, n, n - 2 + rng.uniform_int(2), 2, std::min(3, q - 1));
        auto fg = csp::make_hypergraph_coloring(n, q, hes, /*strong=*/true);
        if (first_feasible(fg)) {
          inst.fg = std::move(fg);
          ps << "hypergraph_coloring(strong) n=" << n << " q=" << q
             << " m=" << hes.size();
        }
      }
      if (!inst.fg) {
        inst.fg = csp::make_hypergraph_coloring(n, q, {{0, 1}}, true);
        ps << "hypergraph_coloring(strong) n=" << n << " q=" << q
           << " m=1 (fallback)";
      }
      break;
    }
    case Family::ksat: {
      const int n = 5 + r;
      const double lambda = 0.7 + 0.8 * rng.u01();
      for (int attempt = 0; attempt < 32 && !inst.fg; ++attempt) {
        const auto clause_vars =
            random_hyperedges(rng, n, n + rng.uniform_int(3), 3, 3);
        std::vector<std::vector<int>> clauses;
        clauses.reserve(clause_vars.size());
        for (const auto& vars : clause_vars) {
          std::vector<int> clause;
          clause.reserve(vars.size());
          for (int v : vars)
            clause.push_back(rng.bernoulli(0.5) ? (v + 1) : -(v + 1));
          clauses.push_back(std::move(clause));
        }
        auto fg = csp::make_ksat(n, clauses, lambda);
        if (first_feasible(fg)) {
          inst.fg = std::move(fg);
          ps << "ksat n=" << n << " m=" << clauses.size()
             << " lambda=" << lambda;
        }
      }
      if (!inst.fg) {
        inst.fg = csp::make_ksat(n, {{1}}, lambda);
        ps << "ksat n=" << n << " m=1 (fallback)";
      }
      break;
    }
  }
  if (inst.m) {
    inst.x0 = chains::greedy_feasible_config(*inst.m);
  } else {
    const auto x0 = first_feasible(*inst.fg);
    LS_REQUIRE(x0.has_value(),
               "fuzz instance generation produced an infeasible CSP");
    inst.x0 = *x0;
  }
  inst.params = ps.str();
  return inst;
}

// ---------------------------------------------------------------------------
// Reference steppers (the seed comparison path: pre-compiled helpers only)
// ---------------------------------------------------------------------------

/// LubyGlauber on an Mrf through the legacy helpers (luby_priority +
/// gather_neighbor_spins + heat_bath_resample), no CompiledMrf involved.
class RefLubyGlauber {
 public:
  RefLubyGlauber(const mrf::Mrf& m, std::uint64_t seed) : m_(m), rng_(seed) {}
  void step(mrf::Config& x, std::int64_t t) {
    const int n = m_.n();
    pri_.resize(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v)
      pri_[static_cast<std::size_t>(v)] = chains::luby_priority(rng_, v, t);
    for (int v = 0; v < n; ++v) {
      bool is_max = true;
      for (int u : m_.g().neighbors(v)) {
        const double pu = pri_[static_cast<std::size_t>(u)];
        const double pv = pri_[static_cast<std::size_t>(v)];
        if (pu > pv || (pu == pv && u > v)) {
          is_max = false;
          break;
        }
      }
      if (!is_max) continue;
      // Selected vertices form an independent set, so the in-place update
      // never feeds a resampled spin into another selected vertex.
      chains::gather_neighbor_spins(m_, v, x, nbr_);
      x[static_cast<std::size_t>(v)] = chains::heat_bath_resample(
          m_, rng_, v, t, nbr_, scratch_, x[static_cast<std::size_t>(v)]);
    }
  }

 private:
  const mrf::Mrf& m_;
  util::CounterRng rng_;
  std::vector<double> pri_;
  std::vector<int> nbr_;
  std::vector<double> scratch_;
};

/// LocalMetropolis on an Mrf through the legacy helpers.
class RefLocalMetropolis {
 public:
  RefLocalMetropolis(const mrf::Mrf& m, std::uint64_t seed)
      : m_(m), rng_(seed) {}
  void step(mrf::Config& x, std::int64_t t) {
    const int n = m_.n();
    prop_.resize(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v)
      prop_[static_cast<std::size_t>(v)] =
          chains::metropolis_proposal(m_, rng_, v, t);
    acc_.assign(static_cast<std::size_t>(n), 1);
    for (int v = 0; v < n; ++v) {
      for (int e : m_.g().incident_edges(v)) {
        const graph::Edge& ed = m_.g().edge(e);
        const double p = m_.edge_pass_prob(
            e, prop_[static_cast<std::size_t>(ed.u)],
            prop_[static_cast<std::size_t>(ed.v)],
            x[static_cast<std::size_t>(ed.u)],
            x[static_cast<std::size_t>(ed.v)]);
        if (!(chains::edge_coin(rng_, e, t) < p)) {
          acc_[static_cast<std::size_t>(v)] = 0;
          break;
        }
      }
    }
    for (int v = 0; v < n; ++v)
      if (acc_[static_cast<std::size_t>(v)] != 0)
        x[static_cast<std::size_t>(v)] = prop_[static_cast<std::size_t>(v)];
  }

 private:
  const mrf::Mrf& m_;
  util::CounterRng rng_;
  std::vector<int> prop_;
  std::vector<char> acc_;
};

/// CspGlauber through csp_heat_bath_resample on the FactorGraph.
class RefCspGlauber {
 public:
  RefCspGlauber(const csp::FactorGraph& fg, std::uint64_t seed)
      : fg_(fg), rng_(seed) {}
  void step(csp::Config& x, std::int64_t t) {
    const int v = rng_.uniform_int(util::RngDomain::global_choice, 0,
                                   static_cast<std::uint64_t>(t), 0, fg_.n());
    x[static_cast<std::size_t>(v)] =
        csp::csp_heat_bath_resample(fg_, rng_, v, t, x, scratch_);
  }

 private:
  const csp::FactorGraph& fg_;
  util::CounterRng rng_;
  std::vector<double> scratch_;
};

/// CSP LubyGlauber on the conflict graph, through the FactorGraph helpers.
class RefCspLubyGlauber {
 public:
  RefCspLubyGlauber(const csp::FactorGraph& fg, std::uint64_t seed)
      : fg_(fg), rng_(seed), conflict_(fg.make_conflict_graph()) {}
  void step(csp::Config& x, std::int64_t t) {
    const int n = fg_.n();
    pri_.resize(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v)
      pri_[static_cast<std::size_t>(v)] = chains::luby_priority(rng_, v, t);
    for (int v = 0; v < n; ++v) {
      bool is_max = true;
      for (int u : conflict_->neighbors(v)) {
        const double pu = pri_[static_cast<std::size_t>(u)];
        const double pv = pri_[static_cast<std::size_t>(v)];
        if (pu > pv || (pu == pv && u > v)) {
          is_max = false;
          break;
        }
      }
      if (is_max)
        x[static_cast<std::size_t>(v)] =
            csp::csp_heat_bath_resample(fg_, rng_, v, t, x, scratch_);
    }
  }

 private:
  const csp::FactorGraph& fg_;
  util::CounterRng rng_;
  std::shared_ptr<graph::Graph> conflict_;
  std::vector<double> pri_;
  std::vector<double> scratch_;
};

/// CSP LocalMetropolis through constraint_pass_prob on the FactorGraph.
class RefCspLocalMetropolis {
 public:
  RefCspLocalMetropolis(const csp::FactorGraph& fg, std::uint64_t seed)
      : fg_(fg), rng_(seed) {}
  void step(csp::Config& x, std::int64_t t) {
    const int n = fg_.n();
    prop_.resize(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v) {
      const double u = rng_.u01(util::RngDomain::vertex_proposal,
                                static_cast<std::uint64_t>(v),
                                static_cast<std::uint64_t>(t));
      prop_[static_cast<std::size_t>(v)] =
          util::categorical(fg_.vertex_activity(v), u);
    }
    const int nc = fg_.num_constraints();
    pass_.resize(static_cast<std::size_t>(nc));
    for (int c = 0; c < nc; ++c) {
      const double p = fg_.constraint_pass_prob(c, prop_, x);
      const double u = rng_.u01(util::RngDomain::constraint_coin,
                                static_cast<std::uint64_t>(c),
                                static_cast<std::uint64_t>(t));
      pass_[static_cast<std::size_t>(c)] = u < p ? 1 : 0;
    }
    for (int v = 0; v < n; ++v) {
      bool accept = true;
      for (int c : fg_.constraints_of(v))
        if (pass_[static_cast<std::size_t>(c)] == 0) {
          accept = false;
          break;
        }
      if (accept)
        x[static_cast<std::size_t>(v)] = prop_[static_cast<std::size_t>(v)];
    }
  }

 private:
  const csp::FactorGraph& fg_;
  util::CounterRng rng_;
  std::vector<int> prop_;
  std::vector<char> pass_;
};

// ---------------------------------------------------------------------------
// Check plumbing
// ---------------------------------------------------------------------------

struct Collector {
  const Instance* inst = nullptr;
  std::vector<FuzzFailure>* failures = nullptr;
  std::int64_t checks = 0;

  void expect(bool ok, std::string_view check, const std::string& detail) {
    ++checks;
    if (ok) return;
    FuzzFailure f;
    f.family = inst->family;
    f.instance_seed = inst->seed;
    f.size_rank = inst->rank;
    f.check = std::string(check);
    f.params = inst->params;
    f.detail = detail;
    failures->push_back(std::move(f));
  }
};

[[nodiscard]] std::string config_diff(const mrf::Config& a,
                                      const mrf::Config& b,
                                      std::int64_t step) {
  std::ostringstream os;
  os << "diverged at step " << step;
  for (std::size_t i = 0; i < a.size() && i < b.size(); ++i)
    if (a[i] != b[i]) {
      os << ": vertex " << i << " is " << a[i] << " vs " << b[i];
      break;
    }
  if (a.size() != b.size()) os << ": size " << a.size() << " vs " << b.size();
  return os.str();
}

[[nodiscard]] std::vector<int> thread_counts() {
  std::vector<int> tcs = {2, 4};
  const int hw = chains::ParallelEngine::hardware_threads();
  if (hw != 1 && hw != 2 && hw != 4) tcs.push_back(hw);
  return tcs;
}

/// Steps `a` with the compiled chain and `b` with the reference stepper in
/// lockstep, expecting bitwise equality after every step.
template <typename ChainT, typename RefT>
void expect_lockstep(Collector& col, std::string_view check, ChainT&& chain,
                     RefT&& ref, const mrf::Config& x0, std::int64_t steps) {
  mrf::Config a = x0;
  mrf::Config b = x0;
  for (std::int64_t t = 0; t < steps; ++t) {
    chain.step(a, t);
    ref.step(b, t);
    if (a != b) {
      col.expect(false, check, config_diff(a, b, t));
      return;
    }
  }
  col.expect(true, check, "");
}

/// Runs `steps` of a freshly built chain (builder() -> unique_ptr-like) with
/// an optional engine attached; returns the final configuration.
template <typename Builder>
[[nodiscard]] mrf::Config run_with_threads(Builder&& build,
                                           const mrf::Config& x0,
                                           std::int64_t steps,
                                           int num_threads) {
  auto chain = build();
  std::optional<chains::ParallelEngine> engine;
  if (num_threads > 1) {
    engine.emplace(num_threads);
    chain->set_engine(&*engine);
  }
  mrf::Config x = x0;
  for (std::int64_t t = 0; t < steps; ++t) chain->step(x, t);
  return x;
}

template <typename Builder>
void expect_thread_invariance(Collector& col, std::string_view check,
                              Builder&& build, const mrf::Config& x0,
                              std::int64_t steps) {
  const mrf::Config seq = run_with_threads(build, x0, steps, 1);
  for (int tc : thread_counts()) {
    const mrf::Config par = run_with_threads(build, x0, steps, tc);
    if (par != seq) {
      std::ostringstream os;
      os << "final configs differ at " << tc << " threads; "
         << config_diff(par, seq, steps - 1);
      col.expect(false, check, os.str());
      return;
    }
  }
  col.expect(true, check, "");
}

// ---------------------------------------------------------------------------
// Per-instance checks
// ---------------------------------------------------------------------------

void check_seed_equivalence(const Instance& inst, const FuzzOptions& opt,
                            Collector& col) {
  const std::int64_t steps = opt.equality_steps;
  if (inst.m) {
    const std::uint64_t s = chain_seed(inst.seed, 1);
    expect_lockstep(col, "luby_glauber_seed_vs_compiled",
                    chains::LubyGlauberChain(*inst.m, s),
                    RefLubyGlauber(*inst.m, s), inst.x0, steps);
    expect_lockstep(col, "local_metropolis_seed_vs_compiled",
                    chains::LocalMetropolisChain(*inst.m, s),
                    RefLocalMetropolis(*inst.m, s), inst.x0, steps);
  } else {
    const std::uint64_t s = chain_seed(inst.seed, 2);
    expect_lockstep(col, "csp_glauber_seed_vs_compiled",
                    csp::CspGlauberChain(*inst.fg, s),
                    RefCspGlauber(*inst.fg, s), inst.x0, steps);
    expect_lockstep(col, "csp_luby_glauber_seed_vs_compiled",
                    csp::CspLubyGlauberChain(*inst.fg, s),
                    RefCspLubyGlauber(*inst.fg, s), inst.x0, steps);
    expect_lockstep(col, "csp_local_metropolis_seed_vs_compiled",
                    csp::CspLocalMetropolisChain(*inst.fg, s),
                    RefCspLocalMetropolis(*inst.fg, s), inst.x0, steps);
  }
}

void check_thread_invariance(const Instance& inst, const FuzzOptions& opt,
                             Collector& col) {
  const std::int64_t steps = opt.equality_steps;
  if (inst.m) {
    const std::uint64_t s = chain_seed(inst.seed, 3);
    expect_thread_invariance(
        col, "luby_glauber_threads",
        [&] { return std::make_unique<chains::LubyGlauberChain>(*inst.m, s); },
        inst.x0, steps);
    expect_thread_invariance(
        col, "local_metropolis_threads",
        [&] {
          return std::make_unique<chains::LocalMetropolisChain>(*inst.m, s);
        },
        inst.x0, steps);
  } else {
    const std::uint64_t s = chain_seed(inst.seed, 4);
    expect_thread_invariance(
        col, "csp_luby_glauber_threads",
        [&] {
          return std::make_unique<csp::CspLubyGlauberChain>(*inst.fg, s);
        },
        inst.x0, steps);
    expect_thread_invariance(
        col, "csp_local_metropolis_threads",
        [&] {
          return std::make_unique<csp::CspLocalMetropolisChain>(*inst.fg, s);
        },
        inst.x0, steps);
  }
}

/// Chain backend vs the LOCAL message-passing runtime: R simulated rounds
/// complete R-1 chain steps (round 0 is the initial broadcast).
void check_network_equivalence(const Instance& inst, const FuzzOptions& opt,
                               Collector& col, bool with_engine) {
  const std::int64_t steps = opt.equality_steps;
  const auto run_net = [&](local::Network& net) {
    std::optional<chains::ParallelEngine> engine;
    if (with_engine) {
      engine.emplace(2);
      net.set_engine(&*engine);
    }
    net.run_rounds(steps + 1);
    return net.outputs();
  };
  const std::string_view suffix =
      with_engine ? "_network_threads" : "_network";
  if (inst.m) {
    const std::uint64_t s = chain_seed(inst.seed, 5);
    {
      local::Network net = local::make_luby_glauber_network(*inst.m, inst.x0, s);
      const mrf::Config out = run_net(net);
      chains::LubyGlauberChain chain(*inst.m, s);
      mrf::Config x = inst.x0;
      for (std::int64_t t = 0; t < steps; ++t) chain.step(x, t);
      col.expect(out == x, std::string("luby_glauber") + std::string(suffix),
                 out == x ? "" : config_diff(out, x, steps - 1));
    }
    {
      local::Network net =
          local::make_local_metropolis_network(*inst.m, inst.x0, s);
      const mrf::Config out = run_net(net);
      chains::LocalMetropolisChain chain(*inst.m, s);
      mrf::Config x = inst.x0;
      for (std::int64_t t = 0; t < steps; ++t) chain.step(x, t);
      col.expect(out == x,
                 std::string("local_metropolis") + std::string(suffix),
                 out == x ? "" : config_diff(out, x, steps - 1));
    }
  } else {
    const std::uint64_t s = chain_seed(inst.seed, 6);
    local::Network net =
        local::make_csp_local_metropolis_network(*inst.fg, inst.x0, s);
    const mrf::Config out = run_net(net);
    csp::CspLocalMetropolisChain chain(*inst.fg, s);
    csp::Config x = inst.x0;
    for (std::int64_t t = 0; t < steps; ++t) chain.step(x, t);
    col.expect(out == x,
               std::string("csp_local_metropolis") + std::string(suffix),
               out == x ? "" : config_diff(out, x, steps - 1));
  }
}

void check_replica_streams(const Instance& inst, const FuzzOptions& opt,
                           Collector& col) {
  core::SamplerOptions o;
  o.algorithm = (inst.seed & 1) != 0 ? core::Algorithm::luby_glauber
                                     : core::Algorithm::local_metropolis;
  o.rounds = opt.equality_steps;
  o.seed = chain_seed(inst.seed, 7);
  o.num_replicas = opt.replica_batch;
  o.num_threads = 1;
  const auto batch = inst.m ? core::sample_many(*inst.m, o)
                            : core::sample_many_csp(*inst.fg, inst.x0, o);
  // Batch replica r == the single-sample facade seeded by replica_seed.
  bool singles_ok = true;
  std::string detail;
  for (int r = 0; r < opt.replica_batch && singles_ok; ++r) {
    core::SamplerOptions so = o;
    so.num_replicas = 1;
    so.seed = chains::replica_seed(o.seed, static_cast<std::uint64_t>(r));
    const auto single = inst.m ? core::sample_mrf(*inst.m, so)
                               : core::sample_csp(*inst.fg, inst.x0, so);
    if (single.config != batch.configs[static_cast<std::size_t>(r)]) {
      singles_ok = false;
      detail = "replica " + std::to_string(r) + ": " +
               config_diff(batch.configs[static_cast<std::size_t>(r)],
                           single.config, opt.equality_steps - 1);
    }
  }
  col.expect(singles_ok, "replica_batch_vs_sequential", detail);
  // Batch at higher thread counts == batch at one thread, bitwise.
  bool threads_ok = true;
  std::string tdetail;
  for (int tc : thread_counts()) {
    core::SamplerOptions to = o;
    to.num_threads = tc;
    const auto par = inst.m ? core::sample_many(*inst.m, to)
                            : core::sample_many_csp(*inst.fg, inst.x0, to);
    if (par.configs != batch.configs) {
      threads_ok = false;
      tdetail = "batch differs at " + std::to_string(tc) + " threads";
      break;
    }
  }
  col.expect(threads_ok, "replica_batch_threads", tdetail);
}

/// True iff the feasible states form one component under single-site flips.
/// Both chains can realize any single-site move with positive probability,
/// so this is a sufficient ergodicity condition; disconnected supports
/// (possible for k-SAT / strong colorings) skip the TV check instead of
/// reporting a false positive.
[[nodiscard]] bool single_flip_connected(const std::vector<double>& mu,
                                         const inference::StateSpace& ss,
                                         int n, int q) {
  std::int64_t start = -1;
  std::int64_t feasible = 0;
  for (std::int64_t i = 0; i < ss.size(); ++i)
    if (mu[static_cast<std::size_t>(i)] > 0.0) {
      ++feasible;
      if (start < 0) start = i;
    }
  if (feasible == 0) return false;
  std::vector<char> seen(static_cast<std::size_t>(ss.size()), 0);
  std::deque<std::int64_t> queue = {start};
  seen[static_cast<std::size_t>(start)] = 1;
  std::int64_t reached = 1;
  while (!queue.empty()) {
    const std::int64_t cur = queue.front();
    queue.pop_front();
    for (int v = 0; v < n; ++v)
      for (int s = 0; s < q; ++s) {
        const std::int64_t nxt = ss.with_spin(cur, v, s);
        if (seen[static_cast<std::size_t>(nxt)] == 0 &&
            mu[static_cast<std::size_t>(nxt)] > 0.0) {
          seen[static_cast<std::size_t>(nxt)] = 1;
          ++reached;
          queue.push_back(nxt);
        }
      }
  }
  return reached == feasible;
}

void check_empirical_vs_exact(const Instance& inst, const FuzzOptions& opt,
                              Collector& col) {
  const int n = inst.m ? inst.m->n() : inst.fg->n();
  const int q = inst.m ? inst.m->q() : inst.fg->q();
  const inference::StateSpace ss(n, q);
  const std::vector<double> mu =
      inst.m ? inference::gibbs_distribution(*inst.m, ss)
             : csp::csp_gibbs_distribution(*inst.fg, ss);
  std::int64_t support = 0;
  for (double p : mu) support += p > 0.0 ? 1 : 0;
  if (support > opt.tv_max_support) return;  // too noisy at this sample size
  if (!single_flip_connected(mu, ss, n, q)) return;  // chain may not be ergodic
  // Alternate the sampling algorithm by seed, except on strong hypergraph
  // colorings: their hard k-ary constraints make LocalMetropolis acceptance
  // deterministic and rare (a constraint passes only when every mixing of
  // random proposals stays feasible), so its mixing time dwarfs any fixed
  // round budget.  Heat-bath LubyGlauber carries the TV check there;
  // LocalMetropolis is still covered by the four bitwise checks above.
  const core::Algorithm alg =
      inst.family == Family::hypergraph_coloring || (inst.seed & 2) != 0
          ? core::Algorithm::luby_glauber
          : core::Algorithm::local_metropolis;
  const auto measure = [&](std::uint64_t s, std::int64_t rounds,
                           bool fast_math) {
    return inst.m ? empirical_tv_vs_exact(*inst.m, alg, s, opt.tv_samples,
                                          rounds, fast_math)
                  : empirical_tv_vs_exact(*inst.fg, inst.x0, alg, s,
                                          opt.tv_samples, rounds);
  };
  const double tol =
      opt.tv_tolerance +
      0.9 * std::sqrt(static_cast<double>(support) /
                      static_cast<double>(opt.tv_samples));
  const char* alg_name = alg == core::Algorithm::luby_glauber
                             ? "luby_glauber"
                             : "local_metropolis";
  // Kernel tiers: the exact tier always; fast_math additionally for MRF
  // instances (its reassociated marginal changes trajectories in rounding
  // only, so a TV check against enumeration — not bitwise equality — is the
  // property that validates it; CSP kernels have no fast_math tier).
  const int num_tiers = inst.m ? 2 : 1;
  for (int tier = 0; tier < num_tiers; ++tier) {
    const bool fast_math = tier == 1;
    const double tv =
        measure(chain_seed(inst.seed, 8), opt.tv_rounds, fast_math);
    double tv_retry = tv;
    if (tv > tol) {
      // Slow mixing and genuine bias both overshoot the tolerance at the
      // base budget; only bias survives more rounds.  One retry at 4x the
      // budget (fresh seed) separates them — an instance whose exact chain
      // needs more than 4x is possible but has never appeared in seed
      // sweeps.
      tv_retry =
          measure(chain_seed(inst.seed, 12), 4 * opt.tv_rounds, fast_math);
    }
    std::ostringstream os;
    os << "TV(empirical, exact) = " << tv << " at " << opt.tv_rounds
       << " rounds and " << tv_retry << " at " << 4 * opt.tv_rounds
       << " rounds > tol " << tol << " (support " << support << ", "
       << opt.tv_samples << " samples, " << alg_name
       << (fast_math ? ", fast_math" : "") << ")";
    col.expect(tv_retry <= tol,
               fast_math ? "empirical_vs_exact_tv_fast_math"
                         : "empirical_vs_exact_tv",
               os.str());
  }
}

// Adaptive stopping must not bias the sample: batches drawn with
// stop = coupling (MRFs), stop = cftp (hardcore-shaped MRFs) and
// stop = rhat (CSPs) face the SAME empirical-vs-exact TV gate as the
// fixed-budget path.  This is the honesty check for the whole stopping
// subsystem — a rule that stops before mixing shows up here as excess TV
// on instances where enumeration is the ground truth.  CFTP additionally
// claims PERFECT samples, so its gate doubles as an exactness test.
void check_adaptive_stopping(const Instance& inst, const FuzzOptions& opt,
                             Collector& col) {
  const int n = inst.m ? inst.m->n() : inst.fg->n();
  const int q = inst.m ? inst.m->q() : inst.fg->q();
  const inference::StateSpace ss(n, q);
  const std::vector<double> mu =
      inst.m ? inference::gibbs_distribution(*inst.m, ss)
             : csp::csp_gibbs_distribution(*inst.fg, ss);
  std::int64_t support = 0;
  for (double p : mu) support += p > 0.0 ? 1 : 0;
  if (support > opt.tv_max_support) return;
  if (!single_flip_connected(mu, ss, n, q)) return;
  const double tol =
      opt.tv_tolerance +
      0.9 * std::sqrt(static_cast<double>(support) /
                      static_cast<double>(opt.tv_samples));
  const auto gate = [&](chains::StopRule rule, std::uint64_t s,
                        std::int64_t budget, const char* name) {
    core::SamplerOptions o;
    o.algorithm = core::Algorithm::luby_glauber;
    o.seed = s;
    o.rounds = budget;
    o.num_replicas = opt.tv_samples;
    o.num_threads = 0;
    o.stop = rule;
    std::vector<double> counts(static_cast<std::size_t>(ss.size()), 0.0);
    std::int64_t rounds_used = 0;
    try {
      if (inst.m) {
        const auto batch = core::sample_many(*inst.m, o);
        for (const auto& c : batch.configs)
          counts[static_cast<std::size_t>(ss.encode(c))] += 1.0;
        rounds_used = batch.rounds_used;
      } else {
        const auto batch = core::sample_many_csp(*inst.fg, inst.x0, o);
        for (const auto& c : batch.configs)
          counts[static_cast<std::size_t>(ss.encode(c))] += 1.0;
        rounds_used = batch.rounds_used;
      }
    } catch (const chains::StoppingError& e) {
      col.expect(false, name,
                 std::string("StoppingError on a tiny instance: ") + e.what());
      return;
    }
    const double tv = util::total_variation(counts, mu);
    std::ostringstream os;
    os << "TV(adaptive, exact) = " << tv << " > tol " << tol << " (rule "
       << chains::stop_rule_name(rule) << ", rounds_used " << rounds_used
       << " of budget " << budget << ", support " << support << ", "
       << opt.tv_samples << " samples)";
    col.expect(tv <= tol && rounds_used <= budget, name, os.str());
  };
  if (inst.m) {
    gate(chains::StopRule::coupling, chain_seed(inst.seed, 13), opt.tv_rounds,
         "adaptive_coupling_tv");
    // The sandwich cap only bounds the failure mode; generosity is free.
    if (chains::is_hardcore_shaped(*inst.m))
      gate(chains::StopRule::cftp, chain_seed(inst.seed, 14),
           4 * opt.tv_rounds, "adaptive_cftp_tv");
  } else {
    gate(chains::StopRule::rhat, chain_seed(inst.seed, 15), opt.tv_rounds,
         "adaptive_rhat_tv");
  }
}

void run_instance_checks(const Instance& inst, const FuzzOptions& opt,
                         Collector& col, bool determinism_only) {
  if (!determinism_only) check_seed_equivalence(inst, opt, col);
  check_thread_invariance(inst, opt, col);
  check_network_equivalence(inst, opt, col, /*with_engine=*/false);
  check_network_equivalence(inst, opt, col, /*with_engine=*/true);
  check_replica_streams(inst, opt, col);
  if (!determinism_only && opt.check_exact_tv) {
    check_empirical_vs_exact(inst, opt, col);
    check_adaptive_stopping(inst, opt, col);
  }
}

// ---------------------------------------------------------------------------
// Torpid instances (§5 non-uniqueness): tempering stays exact, chains stall
// ---------------------------------------------------------------------------

void run_torpid_checks(std::uint64_t seed, int rank, const FuzzOptions& opt,
                       Collector& col, Instance& inst_out) {
  // K_{b,b} far above lambda_c(Delta) = (b-1)^(b-1)/(b-2)^b: the feasible
  // states split into left-occupied and right-occupied phases joined only
  // through the all-empty bottleneck.
  const int b = 3 + std::min(std::max(rank, 0), 1);
  auto g = graph::make_complete_bipartite(b, b);
  util::Rng rng(util::mix64(seed ^ 0xa24baed4963ee407ULL));
  const double lambda = 8.0 + 4.0 * rng.u01();
  const mrf::Mrf m = mrf::make_hardcore(g, lambda);

  inst_out.family = Family::hardcore;
  inst_out.seed = seed;
  inst_out.rank = rank;
  {
    std::ostringstream ps;
    ps << "torpid hardcore K_{" << b << "," << b << "} lambda=" << lambda;
    inst_out.params = ps.str();
  }
  col.inst = &inst_out;

  const inference::StateSpace ss(m.n(), m.q());
  const auto mu = inference::gibbs_distribution(m, ss);

  // Parallel tempering across a fugacity ladder tunnels between the two
  // phases and must match exact enumeration.
  auto ladder = gadget::hardcore_ladder(g, 0.25, lambda, 6);
  gadget::ParallelTempering pt(std::move(ladder), chain_seed(seed, 9));
  pt.run_sweeps(opt.tempering_burnin);
  std::vector<double> counts(static_cast<std::size_t>(ss.size()), 0.0);
  for (int s = 0; s < opt.tempering_sweeps; ++s) {
    pt.run_sweeps(1);
    counts[static_cast<std::size_t>(ss.encode(pt.target_config()))] += 1.0;
  }
  const double tv_tempering = util::total_variation(counts, mu);
  {
    std::ostringstream os;
    os << "TV(tempering, exact) = " << tv_tempering
       << " > 0.15 (swap acceptance " << pt.swap_acceptance_rate() << ")";
    col.expect(tv_tempering <= 0.15, "tempering_vs_exact", os.str());
  }

  // The budgeted local chain must be measurably torpid from a one-phase
  // start (left side fully occupied): every replica stays in its phase, so
  // the right-phase mass it never visits keeps TV near 1/2.  A symmetric
  // start would hide this — replicas split evenly between the phases and
  // the mixture imitates mu without any single replica mixing.  If this
  // check ever "passes", the lower-bound regime stopped biting and the
  // gadget instances need revisiting.
  mrf::Config left(static_cast<std::size_t>(2 * b), 0);
  for (int v = 0; v < b; ++v) left[static_cast<std::size_t>(v)] = 1;
  std::vector<double> chain_counts(static_cast<std::size_t>(ss.size()), 0.0);
  const int chain_samples = 400;
  const std::int64_t chain_steps = 150;
  const std::uint64_t cs = chain_seed(seed, 10);
  for (int r = 0; r < chain_samples; ++r) {
    chains::LubyGlauberChain chain(
        m, chains::replica_seed(cs, static_cast<std::uint64_t>(r)));
    mrf::Config x = left;
    for (std::int64_t t = 0; t < chain_steps; ++t) chain.step(x, t);
    chain_counts[static_cast<std::size_t>(ss.encode(x))] += 1.0;
  }
  const double tv_chain = util::total_variation(chain_counts, mu);
  {
    std::ostringstream os;
    os << "TV(budgeted chain from one phase, exact) = " << tv_chain
       << " < 0.3: the torpid instance mixed";
    col.expect(tv_chain >= 0.3, "local_chain_torpid", os.str());
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

const std::array<Family, kNumFamilies>& all_families() noexcept {
  static const std::array<Family, kNumFamilies> fams = [] {
    std::array<Family, kNumFamilies> a{};
    for (int i = 0; i < kNumFamilies; ++i) a[static_cast<std::size_t>(i)] =
        static_cast<Family>(i);
    return a;
  }();
  return fams;
}

std::string_view family_name(Family f) noexcept {
  const int i = static_cast<int>(f);
  if (i < 0 || i >= kNumFamilies) return "unknown";
  return kFamilyNames[static_cast<std::size_t>(i)];
}

std::optional<Family> parse_family(std::string_view name) noexcept {
  for (int i = 0; i < kNumFamilies; ++i)
    if (kFamilyNames[static_cast<std::size_t>(i)] == name)
      return static_cast<Family>(i);
  return std::nullopt;
}

bool family_is_csp(Family f) noexcept {
  switch (f) {
    case Family::coloring:
    case Family::list_coloring:
    case Family::hardcore:
    case Family::ising:
    case Family::potts:
    case Family::widom_rowlinson:
    case Family::homomorphism:
      return false;
    default:
      return true;
  }
}

std::uint64_t instance_seed(std::uint64_t base, Family f,
                            int iteration) noexcept {
  return util::mix64(
      util::mix64(base ^ (static_cast<std::uint64_t>(f) + 1) *
                             0x9e3779b97f4a7c15ULL) ^
      (static_cast<std::uint64_t>(iteration) + 0x100));
}

std::string FuzzFailure::reproducer() const {
  std::ostringstream os;
  os << "FAIL [" << check << "] " << params << "\n"
     << "  instance: family=" << family_name(family) << " seed=" << instance_seed
     << " rank=" << size_rank << "\n"
     << "  detail: " << detail << "\n"
     << "  replay (C++):\n"
     << "    lsample::testing::FuzzHarness h({});\n"
     << "    auto fails = h.run_instance(lsample::testing::Family::"
     << family_name(family) << ", " << instance_seed << "ULL, " << size_rank
     << ");\n"
     << "  replay (CLI):\n"
     << "    fuzz_driver --family=" << family_name(family)
     << " --instance-seed=" << instance_seed << " --rank=" << size_rank
     << "\n";
  return os.str();
}

std::string FuzzReport::summary() const {
  std::ostringstream os;
  os << "fuzz: " << instances << " instances, " << checks << " checks, "
     << failures.size() << " failure" << (failures.size() == 1 ? "" : "s")
     << " across " << families_covered.size() << " families";
  return os.str();
}

FuzzHarness::FuzzHarness(FuzzOptions options) : options_(std::move(options)) {
  LS_REQUIRE(options_.iterations >= 1, "iterations must be >= 1");
  LS_REQUIRE(options_.equality_steps >= 1, "equality_steps must be >= 1");
  LS_REQUIRE(options_.replica_batch >= 1, "replica_batch must be >= 1");
}

FuzzReport FuzzHarness::run() { return run_mode(false); }

FuzzReport FuzzHarness::run_determinism_subset() { return run_mode(true); }

std::vector<FuzzFailure> FuzzHarness::run_instance(Family f,
                                                   std::uint64_t instance_seed,
                                                   int size_rank) {
  std::vector<FuzzFailure> failures;
  const Instance inst = make_instance(f, instance_seed, size_rank);
  Collector col{&inst, &failures, 0};
  run_instance_checks(inst, options_, col, /*determinism_only=*/false);
  return failures;
}

std::vector<FuzzFailure> FuzzHarness::run_torpid_instance(
    std::uint64_t instance_seed, int size_rank) {
  std::vector<FuzzFailure> failures;
  Instance inst;
  Collector col{nullptr, &failures, 0};
  run_torpid_checks(instance_seed, size_rank, options_, col, inst);
  return failures;
}

FuzzReport FuzzHarness::run_mode(bool determinism_only) {
  FuzzReport report;
  const std::vector<Family> fams =
      options_.families.empty()
          ? std::vector<Family>(all_families().begin(), all_families().end())
          : options_.families;
  for (Family f : fams) {
    report.families_covered.push_back(f);
    for (int i = 0; i < options_.iterations; ++i) {
      const std::uint64_t iseed = instance_seed(options_.seed, f, i);
      const int rank = i % 3;
      const Instance inst = make_instance(f, iseed, rank);
      if (options_.log != nullptr)
        *options_.log << "fuzz: " << inst.params << " (seed " << iseed
                      << ", rank " << rank << ")\n";
      std::vector<FuzzFailure> failures;
      Collector col{&inst, &failures, 0};
      run_instance_checks(inst, options_, col, determinism_only);
      ++report.instances;
      report.checks += col.checks;
      if (!failures.empty() && options_.minimize && rank > 0) {
        // Shrink the instance while the same checks still fail; report the
        // smallest reproduction.
        for (int r2 = rank - 1; r2 >= 0; --r2) {
          const Instance small = make_instance(f, iseed, r2);
          std::vector<FuzzFailure> small_failures;
          Collector scol{&small, &small_failures, 0};
          run_instance_checks(small, options_, scol, determinism_only);
          report.checks += scol.checks;
          std::vector<FuzzFailure> same;
          for (auto& sf : small_failures)
            for (const auto& of : failures)
              if (sf.check == of.check) {
                same.push_back(sf);
                break;
              }
          if (same.empty()) break;
          failures = std::move(same);
        }
      }
      for (auto& fail : failures) {
        if (options_.log != nullptr) *options_.log << fail.reproducer();
        report.failures.push_back(std::move(fail));
      }
    }
  }
  if (!determinism_only && options_.check_tempering) {
    const int torpid_runs = std::min(options_.iterations, 2);
    for (int i = 0; i < torpid_runs; ++i) {
      const std::uint64_t iseed =
          instance_seed(options_.seed, Family::hardcore, 100 + i);
      std::vector<FuzzFailure> failures;
      Instance inst;
      Collector col{nullptr, &failures, 0};
      run_torpid_checks(iseed, 0, options_, col, inst);
      ++report.instances;
      report.checks += col.checks;
      for (auto& fail : failures) {
        if (options_.log != nullptr) *options_.log << fail.reproducer();
        report.failures.push_back(std::move(fail));
      }
    }
  }
  if (options_.log != nullptr) *options_.log << report.summary() << "\n";
  return report;
}

std::uint64_t trajectory_hash(Family f, core::Algorithm algorithm,
                              std::uint64_t seed, std::int64_t steps,
                              int size_rank) {
  const Instance inst = make_instance(f, seed, size_rank);
  const std::uint64_t s = chain_seed(seed, 11);
  std::function<void(mrf::Config&, std::int64_t)> step;
  std::unique_ptr<chains::Chain> mrf_chain;
  std::unique_ptr<csp::CspChain> csp_chain;
  if (inst.m) {
    if (algorithm == core::Algorithm::luby_glauber)
      mrf_chain = std::make_unique<chains::LubyGlauberChain>(*inst.m, s);
    else
      mrf_chain = std::make_unique<chains::LocalMetropolisChain>(*inst.m, s);
    step = [&](mrf::Config& x, std::int64_t t) { mrf_chain->step(x, t); };
  } else {
    if (algorithm == core::Algorithm::luby_glauber)
      csp_chain = std::make_unique<csp::CspLubyGlauberChain>(*inst.fg, s);
    else
      csp_chain = std::make_unique<csp::CspLocalMetropolisChain>(*inst.fg, s);
    step = [&](csp::Config& x, std::int64_t t) { csp_chain->step(x, t); };
  }
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a
  const auto mix = [&h](std::uint64_t w) {
    h ^= w;
    h *= 1099511628211ULL;
  };
  mrf::Config x = inst.x0;
  for (int spin : x) mix(static_cast<std::uint64_t>(spin) + 1);
  for (std::int64_t t = 0; t < steps; ++t) {
    step(x, t);
    mix(0x9e3779b9ULL);  // step separator
    for (int spin : x) mix(static_cast<std::uint64_t>(spin) + 1);
  }
  return h;
}

double empirical_tv_vs_exact(const mrf::Mrf& m, core::Algorithm algorithm,
                             std::uint64_t seed, int samples,
                             std::int64_t rounds, bool fast_math) {
  const inference::StateSpace ss(m.n(), m.q());
  const auto mu = inference::gibbs_distribution(m, ss);
  core::SamplerOptions o;
  o.algorithm = algorithm;
  o.seed = seed;
  o.rounds = rounds;
  o.num_replicas = samples;
  o.num_threads = 0;  // all hardware threads; the batch is thread-invariant
  o.fast_math = fast_math;
  if (fast_math) o.reorder = graph::VertexOrder::rcm;
  const auto batch = core::sample_many(m, o);
  std::vector<double> counts(static_cast<std::size_t>(ss.size()), 0.0);
  for (const auto& c : batch.configs)
    counts[static_cast<std::size_t>(ss.encode(c))] += 1.0;
  return util::total_variation(counts, mu);
}

double empirical_tv_vs_exact(const csp::FactorGraph& fg, const csp::Config& x0,
                             core::Algorithm algorithm, std::uint64_t seed,
                             int samples, std::int64_t rounds) {
  const inference::StateSpace ss(fg.n(), fg.q());
  const auto mu = csp::csp_gibbs_distribution(fg, ss);
  core::SamplerOptions o;
  o.algorithm = algorithm;
  o.seed = seed;
  o.rounds = rounds;
  o.num_replicas = samples;
  o.num_threads = 0;
  const auto batch = core::sample_many_csp(fg, x0, o);
  std::vector<double> counts(static_cast<std::size_t>(ss.size()), 0.0);
  for (const auto& c : batch.configs)
    counts[static_cast<std::size_t>(ss.encode(c))] += 1.0;
  return util::total_variation(counts, mu);
}

std::int64_t feasible_support(const mrf::Mrf& m) {
  const inference::StateSpace ss(m.n(), m.q());
  const auto w = inference::weight_vector(m, ss);
  std::int64_t support = 0;
  for (double x : w) support += x > 0.0 ? 1 : 0;
  return support;
}

std::int64_t feasible_support(const csp::FactorGraph& fg) {
  const inference::StateSpace ss(fg.n(), fg.q());
  csp::Config x(static_cast<std::size_t>(fg.n()));
  std::int64_t support = 0;
  for (std::int64_t i = 0; i < ss.size(); ++i) {
    ss.decode_into(i, x);
    support += fg.feasible(x) ? 1 : 0;
  }
  return support;
}

}  // namespace lsample::testing
