// Graph partitioning for the sharded LOCAL runtime.
//
// A partition assigns every vertex to one of `num_shards` shards.  The
// sharded network (local/sharding.hpp) gives each shard its own message
// arena and exchanges only the boundary-edge ("halo") slots per round, so
// the quality figure that matters is the edge cut: every cut edge costs two
// directed halo slots per round.  Shard sizes should stay balanced because a
// round is as slow as its largest shard.
//
// The seed partition cuts a bandwidth-reducing vertex order (the PR 7 BFS /
// RCM orders from reorder.hpp) into contiguous chunks — neighbors sit close
// in those orders, so contiguous chunks already keep most edges internal.  A
// greedy refinement pass then moves individual vertices to the neighboring
// shard holding the plurality of their edges when that strictly reduces the
// cut and respects the balance bound.
//
// Everything here is deterministic: orders break ties by vertex id, chunk
// boundaries are arithmetic, and refinement sweeps vertices in ascending id
// with lowest-shard-wins tie-breaks.  The same graph and options always
// yield the same partition — a prerequisite for the sharded runtime's
// bit-identical trajectories and for rebuilding the identical partition
// inside shard worker processes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "graph/reorder.hpp"

namespace lsample::graph {

struct PartitionOptions {
  int num_shards = 1;
  /// Vertex order whose contiguous chunks seed the shards.
  VertexOrder order = VertexOrder::bfs;
  /// Greedy edge-cut refinement (never increases the cut).
  bool refine = true;
  /// Maximum refinement sweeps over the vertex set (stops early when a
  /// sweep moves nothing).
  int refine_passes = 4;
  /// A shard may grow to balance_factor * ceil(n / num_shards) vertices
  /// during refinement (>= 1).
  double balance_factor = 1.10;
};

/// A vertex -> shard assignment plus the per-shard vertex lists (ascending
/// vertex ids; every vertex appears in exactly one list).
struct Partition {
  int num_shards = 1;
  std::vector<int> shard_of;
  std::vector<std::vector<int>> shards;
};

struct PartitionQuality {
  int num_shards = 0;
  std::int64_t cut_edges = 0;       ///< edges with endpoints in two shards
  std::int64_t internal_edges = 0;  ///< cut_edges + internal_edges == |E|
  int min_shard_size = 0;
  int max_shard_size = 0;
  double balance = 1.0;       ///< max_shard_size / ceil(n / num_shards)
  double cut_fraction = 0.0;  ///< cut_edges / |E| (0 when |E| == 0)
};

/// Deterministically partitions g per `options`.
[[nodiscard]] Partition make_partition(const Graph& g,
                                       const PartitionOptions& options = {});

/// Rebuilds a Partition from a vertex -> shard assignment (validates it and
/// fills the per-shard lists).  Used by shard workers, which receive only
/// shard_of over the wire.
[[nodiscard]] Partition partition_from_assignment(int num_shards,
                                                  std::vector<int> shard_of);

[[nodiscard]] PartitionQuality partition_quality(const Graph& g,
                                                 const Partition& part);

/// One-line human-readable summary (sampler_cli's shard report).
[[nodiscard]] std::string describe(const PartitionQuality& q);

}  // namespace lsample::graph
