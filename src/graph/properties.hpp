// Structural graph queries: BFS distances, diameter, connectivity,
// independence / coloring predicates, greedy coloring.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace lsample::graph {

/// BFS distances from src; unreachable vertices get -1.
[[nodiscard]] std::vector<int> bfs_distances(const Graph& g, int src);

[[nodiscard]] bool is_connected(const Graph& g);

/// Component id per vertex (ids are 0..k-1 in discovery order).
[[nodiscard]] std::vector<int> connected_components(const Graph& g);

/// Exact diameter via BFS from every vertex: O(n(n+m)).  Throws on
/// disconnected input.
[[nodiscard]] int diameter(const Graph& g);

/// Lower bound on the diameter via a double BFS sweep — cheap, used for large
/// instances where the exact diameter is unnecessary.
[[nodiscard]] int diameter_lower_bound(const Graph& g, int start = 0);

/// True if the 0/1 vector marks an independent set.
[[nodiscard]] bool is_independent_set(const Graph& g,
                                      const std::vector<int>& indicator);

/// True if no edge is monochromatic.
[[nodiscard]] bool is_proper_coloring(const Graph& g,
                                      const std::vector<int>& colors);

/// Greedy coloring in vertex order; uses at most max_degree+1 colors.
[[nodiscard]] std::vector<int> greedy_coloring(const Graph& g);

/// Number of distinct values in a vector (e.g. colors used).
[[nodiscard]] int count_distinct(const std::vector<int>& xs);

}  // namespace lsample::graph
