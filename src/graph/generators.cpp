#include "graph/generators.hpp"

#include <algorithm>
#include <numeric>
#include <set>
#include <utility>

#include "util/require.hpp"

namespace lsample::graph {

std::shared_ptr<Graph> make_path(int n) {
  LS_REQUIRE(n >= 1, "path needs at least one vertex");
  auto g = std::make_shared<Graph>(n);
  for (int i = 0; i + 1 < n; ++i) g->add_edge(i, i + 1);
  return g;
}

std::shared_ptr<Graph> make_cycle(int n) {
  LS_REQUIRE(n >= 3, "cycle needs at least three vertices");
  auto g = std::make_shared<Graph>(n);
  for (int i = 0; i < n; ++i) g->add_edge(i, (i + 1) % n);
  return g;
}

std::shared_ptr<Graph> make_complete(int n) {
  LS_REQUIRE(n >= 1, "complete graph needs at least one vertex");
  auto g = std::make_shared<Graph>(n);
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j) g->add_edge(i, j);
  return g;
}

std::shared_ptr<Graph> make_star(int leaves) {
  LS_REQUIRE(leaves >= 0, "negative leaf count");
  auto g = std::make_shared<Graph>(leaves + 1);
  for (int i = 1; i <= leaves; ++i) g->add_edge(0, i);
  return g;
}

std::shared_ptr<Graph> make_complete_bipartite(int a, int b) {
  LS_REQUIRE(a >= 1 && b >= 1, "bipartite sides must be non-empty");
  auto g = std::make_shared<Graph>(a + b);
  for (int i = 0; i < a; ++i)
    for (int j = 0; j < b; ++j) g->add_edge(i, a + j);
  return g;
}

std::shared_ptr<Graph> make_grid(int rows, int cols) {
  LS_REQUIRE(rows >= 1 && cols >= 1, "grid dimensions must be positive");
  auto g = std::make_shared<Graph>(rows * cols);
  auto id = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) g->add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g->add_edge(id(r, c), id(r + 1, c));
    }
  return g;
}

std::shared_ptr<Graph> make_torus(int rows, int cols) {
  LS_REQUIRE(rows >= 3 && cols >= 3, "torus dimensions must be >= 3");
  auto g = std::make_shared<Graph>(rows * cols);
  auto id = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) {
      g->add_edge(id(r, c), id(r, (c + 1) % cols));
      g->add_edge(id(r, c), id((r + 1) % rows, c));
    }
  return g;
}

std::shared_ptr<Graph> make_hypercube(int d) {
  LS_REQUIRE(d >= 0 && d <= 20, "hypercube dimension out of range");
  const int n = 1 << d;
  auto g = std::make_shared<Graph>(n);
  for (int v = 0; v < n; ++v)
    for (int b = 0; b < d; ++b) {
      const int w = v ^ (1 << b);
      if (w > v) g->add_edge(v, w);
    }
  return g;
}

std::shared_ptr<Graph> make_binary_tree(int n) {
  LS_REQUIRE(n >= 1, "tree needs at least one vertex");
  auto g = std::make_shared<Graph>(n);
  for (int v = 1; v < n; ++v) g->add_edge((v - 1) / 2, v);
  return g;
}

std::shared_ptr<Graph> make_random_tree(int n, util::Rng& rng) {
  LS_REQUIRE(n >= 1, "tree needs at least one vertex");
  auto g = std::make_shared<Graph>(n);
  if (n <= 1) return g;
  if (n == 2) {
    g->add_edge(0, 1);
    return g;
  }
  // Prüfer decoding.
  std::vector<int> prufer(static_cast<std::size_t>(n - 2));
  for (auto& x : prufer) x = rng.uniform_int(n);
  std::vector<int> deg(static_cast<std::size_t>(n), 1);
  for (int x : prufer) ++deg[static_cast<std::size_t>(x)];
  std::set<int> leaves;
  for (int v = 0; v < n; ++v)
    if (deg[static_cast<std::size_t>(v)] == 1) leaves.insert(v);
  for (int x : prufer) {
    const int leaf = *leaves.begin();
    leaves.erase(leaves.begin());
    g->add_edge(leaf, x);
    if (--deg[static_cast<std::size_t>(x)] == 1) leaves.insert(x);
  }
  const int a = *leaves.begin();
  const int b = *std::next(leaves.begin());
  g->add_edge(a, b);
  return g;
}

std::shared_ptr<Graph> make_erdos_renyi(int n, double p, util::Rng& rng) {
  LS_REQUIRE(n >= 1, "graph needs at least one vertex");
  LS_REQUIRE(p >= 0.0 && p <= 1.0, "edge probability must be in [0,1]");
  auto g = std::make_shared<Graph>(n);
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j)
      if (rng.bernoulli(p)) g->add_edge(i, j);
  return g;
}

std::shared_ptr<Graph> make_random_regular(int n, int d, util::Rng& rng,
                                           int max_tries) {
  LS_REQUIRE(n >= 1 && d >= 0 && d < n, "need 0 <= d < n");
  LS_REQUIRE((static_cast<long long>(n) * d) % 2 == 0, "n*d must be even");
  const auto norm = [](int a, int b) {
    return std::pair{std::min(a, b), std::max(a, b)};
  };
  for (int attempt = 0; attempt < max_tries; ++attempt) {
    // Configuration model followed by double-edge-swap repair: pure
    // rejection has success probability ~exp(-(d*d-1)/4) per draw, which is
    // hopeless for d >= 5.  Every accepted swap replaces one defective edge
    // with two simple ones, so total badness strictly decreases.
    std::vector<int> stubs;
    stubs.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(d));
    for (int v = 0; v < n; ++v)
      for (int k = 0; k < d; ++k) stubs.push_back(v);
    for (std::size_t i = stubs.size(); i > 1; --i)
      std::swap(stubs[i - 1],
                stubs[static_cast<std::size_t>(rng.uniform_int(
                    static_cast<int>(i)))]);
    std::vector<std::pair<int, int>> edges;
    edges.reserve(stubs.size() / 2);
    for (std::size_t i = 0; i + 1 < stubs.size(); i += 2)
      edges.emplace_back(stubs[i], stubs[i + 1]);

    std::multiset<std::pair<int, int>> counts;
    for (const auto& [u, v] : edges) counts.insert(norm(u, v));
    const auto is_bad = [&](const std::pair<int, int>& e) {
      return e.first == e.second || counts.count(norm(e.first, e.second)) > 1;
    };

    const int swap_budget = 400 * static_cast<int>(edges.size()) + 400;
    int iters = 0;
    bool stuck = false;
    while (!stuck) {
      // Find a defective edge.
      std::size_t bi = edges.size();
      for (std::size_t i = 0; i < edges.size(); ++i)
        if (is_bad(edges[i])) {
          bi = i;
          break;
        }
      if (bi == edges.size()) break;  // fully repaired
      // Attempt random swaps until one is accepted (or budget runs out).
      bool accepted = false;
      while (!accepted && iters < swap_budget) {
        ++iters;
        const std::size_t pj = static_cast<std::size_t>(
            rng.uniform_int(static_cast<int>(edges.size())));
        if (pj == bi) continue;
        const auto [u, v] = edges[bi];
        auto [x, y] = edges[pj];
        if (rng.bernoulli(0.5)) std::swap(x, y);
        // Proposed replacements: {u,x} and {v,y}.
        if (u == x || v == y) continue;
        counts.erase(counts.find(norm(u, v)));
        counts.erase(counts.find(norm(x, y)));
        const auto e1 = norm(u, x);
        const auto e2 = norm(v, y);
        if (counts.count(e1) == 0 && counts.count(e2) == 0 && e1 != e2) {
          counts.insert(e1);
          counts.insert(e2);
          edges[bi] = {u, x};
          edges[pj] = {v, y};
          accepted = true;
        } else {
          counts.insert(norm(u, v));
          counts.insert(norm(x, y));
        }
      }
      if (!accepted) stuck = true;
    }
    if (stuck) continue;

    auto g = std::make_shared<Graph>(n);
    for (const auto& [u, v] : edges) g->add_edge(u, v);
    return g;
  }
  throw std::runtime_error(
      "make_random_regular: failed to build a simple graph; raise max_tries "
      "or lower d");
}

std::vector<int> add_random_matching(Graph& g, const std::vector<int>& left,
                                     const std::vector<int>& right,
                                     util::Rng& rng) {
  LS_REQUIRE(left.size() == right.size(),
             "matching requires equal-size sides");
  std::vector<int> perm(right);
  for (std::size_t i = perm.size(); i > 1; --i)
    std::swap(perm[i - 1], perm[static_cast<std::size_t>(rng.uniform_int(
                               static_cast<int>(i)))]);
  std::vector<int> edge_ids;
  edge_ids.reserve(left.size());
  for (std::size_t i = 0; i < left.size(); ++i)
    edge_ids.push_back(g.add_edge(left[i], perm[i]));
  return edge_ids;
}

}  // namespace lsample::graph
