#include "graph/properties.hpp"

#include <algorithm>
#include <queue>
#include <set>

#include "util/require.hpp"

namespace lsample::graph {

std::vector<int> bfs_distances(const Graph& g, int src) {
  LS_REQUIRE(src >= 0 && src < g.num_vertices(), "source out of range");
  std::vector<int> dist(static_cast<std::size_t>(g.num_vertices()), -1);
  std::queue<int> q;
  dist[static_cast<std::size_t>(src)] = 0;
  q.push(src);
  while (!q.empty()) {
    const int v = q.front();
    q.pop();
    for (int u : g.neighbors(v)) {
      if (dist[static_cast<std::size_t>(u)] < 0) {
        dist[static_cast<std::size_t>(u)] =
            dist[static_cast<std::size_t>(v)] + 1;
        q.push(u);
      }
    }
  }
  return dist;
}

bool is_connected(const Graph& g) {
  if (g.num_vertices() == 0) return true;
  const auto dist = bfs_distances(g, 0);
  return std::none_of(dist.begin(), dist.end(),
                      [](int d) { return d < 0; });
}

std::vector<int> connected_components(const Graph& g) {
  std::vector<int> comp(static_cast<std::size_t>(g.num_vertices()), -1);
  int next = 0;
  for (int s = 0; s < g.num_vertices(); ++s) {
    if (comp[static_cast<std::size_t>(s)] >= 0) continue;
    std::queue<int> q;
    comp[static_cast<std::size_t>(s)] = next;
    q.push(s);
    while (!q.empty()) {
      const int v = q.front();
      q.pop();
      for (int u : g.neighbors(v))
        if (comp[static_cast<std::size_t>(u)] < 0) {
          comp[static_cast<std::size_t>(u)] = next;
          q.push(u);
        }
    }
    ++next;
  }
  return comp;
}

int diameter(const Graph& g) {
  LS_REQUIRE(g.num_vertices() >= 1, "diameter of empty graph");
  int best = 0;
  for (int v = 0; v < g.num_vertices(); ++v) {
    const auto dist = bfs_distances(g, v);
    for (int d : dist) {
      LS_REQUIRE(d >= 0, "diameter of disconnected graph");
      best = std::max(best, d);
    }
  }
  return best;
}

int diameter_lower_bound(const Graph& g, int start) {
  LS_REQUIRE(g.num_vertices() >= 1, "diameter of empty graph");
  auto far = [&](int src) {
    const auto dist = bfs_distances(g, src);
    int arg = src;
    for (int v = 0; v < g.num_vertices(); ++v)
      if (dist[static_cast<std::size_t>(v)] >
          dist[static_cast<std::size_t>(arg)])
        arg = v;
    return std::pair{arg, dist[static_cast<std::size_t>(arg)]};
  };
  const auto [a, da] = far(start);
  (void)da;
  const auto [b, db] = far(a);
  (void)b;
  return db;
}

bool is_independent_set(const Graph& g, const std::vector<int>& indicator) {
  LS_REQUIRE(static_cast<int>(indicator.size()) == g.num_vertices(),
             "indicator size mismatch");
  for (int e = 0; e < g.num_edges(); ++e) {
    const Edge& ed = g.edge(e);
    if (indicator[static_cast<std::size_t>(ed.u)] != 0 &&
        indicator[static_cast<std::size_t>(ed.v)] != 0)
      return false;
  }
  return true;
}

bool is_proper_coloring(const Graph& g, const std::vector<int>& colors) {
  LS_REQUIRE(static_cast<int>(colors.size()) == g.num_vertices(),
             "coloring size mismatch");
  for (int e = 0; e < g.num_edges(); ++e) {
    const Edge& ed = g.edge(e);
    if (colors[static_cast<std::size_t>(ed.u)] ==
        colors[static_cast<std::size_t>(ed.v)])
      return false;
  }
  return true;
}

std::vector<int> greedy_coloring(const Graph& g) {
  std::vector<int> colors(static_cast<std::size_t>(g.num_vertices()), -1);
  std::vector<char> used;
  for (int v = 0; v < g.num_vertices(); ++v) {
    used.assign(static_cast<std::size_t>(g.degree(v)) + 1, 0);
    for (int u : g.neighbors(v)) {
      const int c = colors[static_cast<std::size_t>(u)];
      if (c >= 0 && c < static_cast<int>(used.size()))
        used[static_cast<std::size_t>(c)] = 1;
    }
    int c = 0;
    while (used[static_cast<std::size_t>(c)] != 0) ++c;
    colors[static_cast<std::size_t>(v)] = c;
  }
  return colors;
}

int count_distinct(const std::vector<int>& xs) {
  return static_cast<int>(std::set<int>(xs.begin(), xs.end()).size());
}

}  // namespace lsample::graph
