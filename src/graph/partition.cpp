#include "graph/partition.hpp"

#include <algorithm>
#include <cstdio>

#include "util/require.hpp"

namespace lsample::graph {

namespace {

[[nodiscard]] int ideal_shard_size(int n, int num_shards) noexcept {
  return (n + num_shards - 1) / num_shards;  // ceil(n / S)
}

void fill_shard_lists(Partition& part) {
  part.shards.assign(static_cast<std::size_t>(part.num_shards), {});
  for (std::size_t v = 0; v < part.shard_of.size(); ++v)
    part.shards[static_cast<std::size_t>(part.shard_of[v])].push_back(
        static_cast<int>(v));
}

/// One greedy sweep: move each vertex (ascending id) to the shard holding
/// the plurality of its incident edges when that strictly reduces the cut
/// and both shards stay within [1, max_size].  Returns the number of moves.
int refine_sweep(const Graph& g, std::vector<int>& shard_of,
                 std::vector<int>& sizes, int num_shards, int max_size) {
  const int n = g.num_vertices();
  const auto off = g.csr_offsets();
  const auto nbr = g.neighbors_flat();
  // Per-shard incident-edge counts for the current vertex, reset via the
  // touched list (degree, not num_shards, bounds the reset cost).
  std::vector<std::int64_t> count(static_cast<std::size_t>(num_shards), 0);
  std::vector<int> touched;
  int moves = 0;
  for (int v = 0; v < n; ++v) {
    const int cur = shard_of[static_cast<std::size_t>(v)];
    if (sizes[static_cast<std::size_t>(cur)] <= 1) continue;  // never empty
    touched.clear();
    const int begin = off[static_cast<std::size_t>(v)];
    const int end = off[static_cast<std::size_t>(v) + 1];
    for (int p = begin; p < end; ++p) {
      const int s = shard_of[static_cast<std::size_t>(
          nbr[static_cast<std::size_t>(p)])];
      if (count[static_cast<std::size_t>(s)] == 0) touched.push_back(s);
      ++count[static_cast<std::size_t>(s)];  // parallel edges count twice
    }
    // Plurality shard, lowest id on ties (deterministic).
    int best = cur;
    std::int64_t best_count = count[static_cast<std::size_t>(cur)];
    std::sort(touched.begin(), touched.end());
    for (const int s : touched) {
      if (count[static_cast<std::size_t>(s)] > best_count) {
        best = s;
        best_count = count[static_cast<std::size_t>(s)];
      }
    }
    const bool fits = sizes[static_cast<std::size_t>(best)] + 1 <= max_size;
    if (best != cur && best_count > count[static_cast<std::size_t>(cur)] &&
        fits) {
      shard_of[static_cast<std::size_t>(v)] = best;
      --sizes[static_cast<std::size_t>(cur)];
      ++sizes[static_cast<std::size_t>(best)];
      ++moves;
    }
    for (const int s : touched) count[static_cast<std::size_t>(s)] = 0;
  }
  return moves;
}

}  // namespace

Partition make_partition(const Graph& g, const PartitionOptions& options) {
  const int n = g.num_vertices();
  const int num_shards = options.num_shards;
  LS_REQUIRE(num_shards >= 1, "num_shards must be at least 1, got " +
                                  std::to_string(num_shards));
  LS_REQUIRE(n == 0 || num_shards <= n,
             "num_shards (" + std::to_string(num_shards) +
                 ") must not exceed the number of vertices (" +
                 std::to_string(n) + ")");
  LS_REQUIRE(options.balance_factor >= 1.0,
             "balance_factor must be at least 1");

  Partition part;
  part.num_shards = num_shards;
  part.shard_of.assign(static_cast<std::size_t>(n), 0);

  // Contiguous chunks of the chosen order: the first n % S shards get one
  // extra vertex.
  const std::vector<int> order = compute_vertex_order(g, options.order);
  const int base = num_shards > 0 ? n / num_shards : 0;
  const int extra = num_shards > 0 ? n % num_shards : 0;
  int pos = 0;
  std::vector<int> sizes(static_cast<std::size_t>(num_shards), 0);
  for (int s = 0; s < num_shards; ++s) {
    const int size = base + (s < extra ? 1 : 0);
    for (int i = 0; i < size; ++i)
      part.shard_of[static_cast<std::size_t>(order[static_cast<std::size_t>(
          pos + i)])] = s;
    sizes[static_cast<std::size_t>(s)] = size;
    pos += size;
  }

  if (options.refine && num_shards > 1 && n > 0) {
    const int ideal = ideal_shard_size(n, num_shards);
    const int max_size = std::max(
        ideal, static_cast<int>(options.balance_factor *
                                static_cast<double>(ideal)));
    for (int pass = 0; pass < options.refine_passes; ++pass)
      if (refine_sweep(g, part.shard_of, sizes, num_shards, max_size) == 0)
        break;
  }

  fill_shard_lists(part);
  return part;
}

Partition partition_from_assignment(int num_shards,
                                    std::vector<int> shard_of) {
  LS_REQUIRE(num_shards >= 1, "num_shards must be at least 1, got " +
                                  std::to_string(num_shards));
  for (const int s : shard_of)
    LS_REQUIRE(s >= 0 && s < num_shards, "shard assignment out of range");
  Partition part;
  part.num_shards = num_shards;
  part.shard_of = std::move(shard_of);
  fill_shard_lists(part);
  return part;
}

PartitionQuality partition_quality(const Graph& g, const Partition& part) {
  const int n = g.num_vertices();
  LS_REQUIRE(static_cast<int>(part.shard_of.size()) == n,
             "partition does not cover this graph's vertex set");
  LS_REQUIRE(part.num_shards >= 1, "partition has no shards");

  PartitionQuality q;
  q.num_shards = part.num_shards;
  for (int e = 0; e < g.num_edges(); ++e) {
    const Edge& ed = g.edge(e);
    if (part.shard_of[static_cast<std::size_t>(ed.u)] !=
        part.shard_of[static_cast<std::size_t>(ed.v)])
      ++q.cut_edges;
    else
      ++q.internal_edges;
  }
  std::vector<int> sizes(static_cast<std::size_t>(part.num_shards), 0);
  for (const int s : part.shard_of) ++sizes[static_cast<std::size_t>(s)];
  q.min_shard_size = n;
  for (const int size : sizes) {
    q.min_shard_size = std::min(q.min_shard_size, size);
    q.max_shard_size = std::max(q.max_shard_size, size);
  }
  if (n == 0) q.min_shard_size = 0;
  const int ideal = n > 0 ? ideal_shard_size(n, part.num_shards) : 1;
  q.balance = static_cast<double>(q.max_shard_size) /
              static_cast<double>(ideal);
  q.cut_fraction = g.num_edges() > 0
                       ? static_cast<double>(q.cut_edges) /
                             static_cast<double>(g.num_edges())
                       : 0.0;
  return q;
}

std::string describe(const PartitionQuality& q) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%d shard(s): sizes [%d, %d], balance %.2f; cut %lld/%lld "
                "edges (%.1f%%)",
                q.num_shards, q.min_shard_size, q.max_shard_size, q.balance,
                static_cast<long long>(q.cut_edges),
                static_cast<long long>(q.cut_edges + q.internal_edges),
                100.0 * q.cut_fraction);
  return std::string(buf);
}

}  // namespace lsample::graph
