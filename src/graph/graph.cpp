#include "graph/graph.hpp"

#include <algorithm>
#include <limits>

#include "util/require.hpp"

namespace lsample::graph {

Graph::Graph(int num_vertices) {
  LS_REQUIRE(num_vertices >= 0, "vertex count must be non-negative");
  degree_.assign(static_cast<std::size_t>(num_vertices), 0);
}

void Graph::check_vertex(int v) const {
  LS_REQUIRE(v >= 0 && v < num_vertices(), "vertex id out of range");
}

int Graph::add_edge(int u, int v) {
  check_vertex(u);
  check_vertex(v);
  LS_REQUIRE(u != v, "self-loops are not supported");
  const int e = num_edges();
  edges_.push_back(Edge{u, v});
  ++degree_[static_cast<std::size_t>(u)];
  ++degree_[static_cast<std::size_t>(v)];
  max_degree_ = std::max({max_degree_, degree_[static_cast<std::size_t>(u)],
                          degree_[static_cast<std::size_t>(v)]});
  csr_valid_.store(false, std::memory_order_release);
  return e;
}

void Graph::finalize() const {
  if (csr_valid_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(csr_mutex_);
  if (csr_valid_.load(std::memory_order_relaxed)) return;
  const int n = num_vertices();
  const int m = num_edges();
  // The CSR stores offsets, edge ids, and directed-slot positions as int:
  // 2m directed slots must fit a 32-bit signed index.  (Arena WORD indices
  // downstream are std::size_t, so slot-count times message capacity is not
  // limited by this.)
  LS_REQUIRE(2ll * m <= std::numeric_limits<int>::max(),
             "graph has " + std::to_string(2ll * m) +
                 " directed edge slots, exceeding the 32-bit CSR slot-index "
                 "limit of " +
                 std::to_string(std::numeric_limits<int>::max()));
  offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (int v = 0; v < n; ++v)
    offsets_[static_cast<std::size_t>(v) + 1] =
        offsets_[static_cast<std::size_t>(v)] +
        degree_[static_cast<std::size_t>(v)];
  inc_flat_.resize(2 * static_cast<std::size_t>(m));
  nbr_flat_.resize(2 * static_cast<std::size_t>(m));
  // Filling in ascending edge-id order, endpoint u before v, reproduces the
  // per-vertex insertion order the incremental adjacency lists had.
  std::vector<int> cursor(offsets_.begin(), offsets_.end() - 1);
  for (int e = 0; e < m; ++e) {
    const Edge& ed = edges_[static_cast<std::size_t>(e)];
    const int cu = cursor[static_cast<std::size_t>(ed.u)]++;
    inc_flat_[static_cast<std::size_t>(cu)] = e;
    nbr_flat_[static_cast<std::size_t>(cu)] = ed.v;
    const int cv = cursor[static_cast<std::size_t>(ed.v)]++;
    inc_flat_[static_cast<std::size_t>(cv)] = e;
    nbr_flat_[static_cast<std::size_t>(cv)] = ed.u;
  }
  csr_valid_.store(true, std::memory_order_release);
}

const Edge& Graph::edge(int e) const {
  LS_REQUIRE(e >= 0 && e < num_edges(), "edge id out of range");
  return edges_[static_cast<std::size_t>(e)];
}

int Graph::other_endpoint(int e, int w) const {
  const Edge& ed = edge(e);
  LS_REQUIRE(ed.u == w || ed.v == w, "vertex is not an endpoint of edge");
  return ed.u == w ? ed.v : ed.u;
}

std::span<const int> Graph::incident_edges(int v) const {
  check_vertex(v);
  finalize();
  return std::span<const int>(inc_flat_)
      .subspan(static_cast<std::size_t>(offsets_[static_cast<std::size_t>(v)]),
               static_cast<std::size_t>(degree_[static_cast<std::size_t>(v)]));
}

std::span<const int> Graph::neighbors(int v) const {
  check_vertex(v);
  finalize();
  return std::span<const int>(nbr_flat_)
      .subspan(static_cast<std::size_t>(offsets_[static_cast<std::size_t>(v)]),
               static_cast<std::size_t>(degree_[static_cast<std::size_t>(v)]));
}

std::span<const int> Graph::csr_offsets() const {
  finalize();
  return offsets_;
}

std::span<const int> Graph::incident_edges_flat() const {
  finalize();
  return inc_flat_;
}

std::span<const int> Graph::neighbors_flat() const {
  finalize();
  return nbr_flat_;
}

int Graph::degree(int v) const {
  check_vertex(v);
  return degree_[static_cast<std::size_t>(v)];
}

int Graph::max_degree() const noexcept { return max_degree_; }

bool Graph::has_edge(int u, int v) const {
  check_vertex(u);
  check_vertex(v);
  const auto nb = neighbors(u);
  return std::find(nb.begin(), nb.end(), v) != nb.end();
}

}  // namespace lsample::graph
