#include "graph/graph.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace lsample::graph {

Graph::Graph(int num_vertices) {
  LS_REQUIRE(num_vertices >= 0, "vertex count must be non-negative");
  incident_.resize(static_cast<std::size_t>(num_vertices));
  neighbors_.resize(static_cast<std::size_t>(num_vertices));
}

void Graph::check_vertex(int v) const {
  LS_REQUIRE(v >= 0 && v < num_vertices(), "vertex id out of range");
}

int Graph::add_edge(int u, int v) {
  check_vertex(u);
  check_vertex(v);
  LS_REQUIRE(u != v, "self-loops are not supported");
  const int e = num_edges();
  edges_.push_back(Edge{u, v});
  incident_[static_cast<std::size_t>(u)].push_back(e);
  incident_[static_cast<std::size_t>(v)].push_back(e);
  neighbors_[static_cast<std::size_t>(u)].push_back(v);
  neighbors_[static_cast<std::size_t>(v)].push_back(u);
  max_degree_ = std::max({max_degree_, degree(u), degree(v)});
  return e;
}

const Edge& Graph::edge(int e) const {
  LS_REQUIRE(e >= 0 && e < num_edges(), "edge id out of range");
  return edges_[static_cast<std::size_t>(e)];
}

int Graph::other_endpoint(int e, int w) const {
  const Edge& ed = edge(e);
  LS_REQUIRE(ed.u == w || ed.v == w, "vertex is not an endpoint of edge");
  return ed.u == w ? ed.v : ed.u;
}

std::span<const int> Graph::incident_edges(int v) const {
  check_vertex(v);
  return incident_[static_cast<std::size_t>(v)];
}

std::span<const int> Graph::neighbors(int v) const {
  check_vertex(v);
  return neighbors_[static_cast<std::size_t>(v)];
}

int Graph::degree(int v) const {
  check_vertex(v);
  return static_cast<int>(incident_[static_cast<std::size_t>(v)].size());
}

int Graph::max_degree() const noexcept { return max_degree_; }

bool Graph::has_edge(int u, int v) const {
  check_vertex(u);
  check_vertex(v);
  const auto& nb = neighbors_[static_cast<std::size_t>(u)];
  return std::find(nb.begin(), nb.end(), v) != nb.end();
}

}  // namespace lsample::graph
