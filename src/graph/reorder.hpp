// Cache-aware vertex orderings for the compiled views.
//
// The compiled MRF/CSP views store their per-vertex rows (incident edges,
// neighbor ids, activities) in a flat layout and the chains sweep every
// vertex each round, so the memory-access pattern is fixed at compile time.
// Laying rows out in a bandwidth-reducing order (BFS or reverse
// Cuthill–McKee) keeps a vertex's neighbors' state in nearby cache lines
// during the sweep.  The ordering is pure layout: external vertex ids, edge
// ids, RNG keys, and trajectories are unchanged — the views keep an
// explicit order/rank permutation pair and translate internally.
//
// All tie-breaks are by vertex id, so an ordering is a deterministic
// function of the graph alone.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace lsample::graph {

enum class VertexOrder {
  none,  // identity: rows stay in external-id order
  bfs,   // breadth-first order from a min-degree root per component
  rcm,   // reverse Cuthill–McKee (BFS with degree-sorted fronts, reversed)
};

[[nodiscard]] const char* vertex_order_name(VertexOrder kind) noexcept;

/// Returns a permutation `order` of [0, n): order[i] is the external id of
/// the vertex placed at position i.  Identity for VertexOrder::none.
/// Deterministic; covers disconnected graphs component by component.
[[nodiscard]] std::vector<int> compute_vertex_order(const Graph& g,
                                                    VertexOrder kind);

/// Inverse permutation: rank[order[i]] == i.
[[nodiscard]] std::vector<int> invert_order(const std::vector<int>& order);

/// Mean |rank[u] - rank[v]| over edges — the locality figure of merit the
/// orderings try to shrink (used by tests and the kernel bench).
[[nodiscard]] double mean_edge_span(const Graph& g,
                                    const std::vector<int>& rank);

}  // namespace lsample::graph
