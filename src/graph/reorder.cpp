#include "graph/reorder.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "util/require.hpp"

namespace lsample::graph {
namespace {

// BFS from `root`, appending visited vertices to `order`.  When
// `degree_sorted` (Cuthill–McKee), each vertex's unvisited neighbors are
// enqueued in increasing (degree, id) order; otherwise in row order.
void bfs_component(const Graph& g, int root, bool degree_sorted,
                   std::vector<char>& visited, std::vector<int>& order,
                   std::vector<int>& frontier_scratch) {
  const std::size_t head0 = order.size();
  visited[static_cast<std::size_t>(root)] = 1;
  order.push_back(root);
  for (std::size_t head = head0; head < order.size(); ++head) {
    const int v = order[head];
    auto& fresh = frontier_scratch;
    fresh.clear();
    for (int u : g.neighbors(v)) {
      if (visited[static_cast<std::size_t>(u)] != 0) continue;
      visited[static_cast<std::size_t>(u)] = 1;
      fresh.push_back(u);
    }
    if (degree_sorted) {
      std::sort(fresh.begin(), fresh.end(), [&g](int a, int b) {
        const int da = g.degree(a);
        const int db = g.degree(b);
        return da != db ? da < db : a < b;
      });
    }
    order.insert(order.end(), fresh.begin(), fresh.end());
  }
}

}  // namespace

const char* vertex_order_name(VertexOrder kind) noexcept {
  switch (kind) {
    case VertexOrder::none:
      return "none";
    case VertexOrder::bfs:
      return "bfs";
    case VertexOrder::rcm:
      return "rcm";
  }
  return "?";
}

std::vector<int> compute_vertex_order(const Graph& g, VertexOrder kind) {
  const int n = g.num_vertices();
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  if (kind == VertexOrder::none) {
    for (int v = 0; v < n; ++v) order.push_back(v);
    return order;
  }
  g.finalize();
  // Roots in increasing (degree, id): peripheral low-degree starts give
  // Cuthill–McKee its narrow bands, and make the root choice deterministic.
  std::vector<int> by_degree(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) by_degree[static_cast<std::size_t>(v)] = v;
  std::sort(by_degree.begin(), by_degree.end(), [&g](int a, int b) {
    const int da = g.degree(a);
    const int db = g.degree(b);
    return da != db ? da < db : a < b;
  });
  std::vector<char> visited(static_cast<std::size_t>(n), 0);
  std::vector<int> scratch;
  for (int root : by_degree) {
    if (visited[static_cast<std::size_t>(root)] != 0) continue;
    bfs_component(g, root, /*degree_sorted=*/kind == VertexOrder::rcm, visited,
                  order, scratch);
  }
  LS_ASSERT(order.size() == static_cast<std::size_t>(n),
            "ordering must cover every vertex");
  if (kind == VertexOrder::rcm) std::reverse(order.begin(), order.end());
  return order;
}

std::vector<int> invert_order(const std::vector<int>& order) {
  std::vector<int> rank(order.size(), -1);
  for (std::size_t i = 0; i < order.size(); ++i) {
    const int v = order[i];
    LS_REQUIRE(v >= 0 && static_cast<std::size_t>(v) < order.size() &&
                   rank[static_cast<std::size_t>(v)] == -1,
               "order must be a permutation");
    rank[static_cast<std::size_t>(v)] = static_cast<int>(i);
  }
  return rank;
}

double mean_edge_span(const Graph& g, const std::vector<int>& rank) {
  const int m = g.num_edges();
  if (m == 0) return 0.0;
  double total = 0.0;
  for (int e = 0; e < m; ++e) {
    const Edge& ed = g.edge(e);
    total += std::abs(rank[static_cast<std::size_t>(ed.u)] -
                      rank[static_cast<std::size_t>(ed.v)]);
  }
  return total / m;
}

}  // namespace lsample::graph
