// Undirected multigraph with stable edge identifiers.
//
// Parallel edges are permitted because the lower-bound gadget of §5.1
// (unions of random perfect matchings) is naturally a multigraph, and the
// LocalMetropolis filter flips an independent coin *per edge*, so parallel
// edges are semantically distinct.  Self-loops are rejected — no model in the
// paper uses them and they would break the Luby step.
//
// Storage is CSR (compressed sparse row): one contiguous edge-id array and
// one contiguous neighbor array, indexed by a per-vertex offset table.  The
// CSR arrays are rebuilt lazily after mutation; `incident_edges(v)` and
// `neighbors(v)` return spans into them, index-aligned, with edges listed in
// insertion order per vertex.  Sampling-side code (chains, the parallel
// engine) only ever sees finalized graphs behind `GraphPtr =
// shared_ptr<const Graph>`, so the hot path is pure contiguous reads.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

namespace lsample::graph {

struct Edge {
  int u = -1;
  int v = -1;
};

class Graph {
 public:
  explicit Graph(int num_vertices);

  /// Adds edge {u,v} (u != v) and returns its id.  Parallel edges allowed.
  /// Invalidates the CSR arrays (and any spans into them).
  int add_edge(int u, int v);

  [[nodiscard]] int num_vertices() const noexcept {
    return static_cast<int>(degree_.size());
  }
  [[nodiscard]] int num_edges() const noexcept {
    return static_cast<int>(edges_.size());
  }

  [[nodiscard]] const Edge& edge(int e) const;

  /// Endpoint of edge e that is not w (w must be an endpoint of e).
  [[nodiscard]] int other_endpoint(int e, int w) const;

  /// Ids of edges incident to v, in insertion order.
  [[nodiscard]] std::span<const int> incident_edges(int v) const;

  /// Neighbors of v aligned index-for-index with incident_edges(v); a
  /// neighbor joined by k parallel edges appears k times.
  [[nodiscard]] std::span<const int> neighbors(int v) const;

  [[nodiscard]] int degree(int v) const;
  [[nodiscard]] int max_degree() const noexcept;

  /// True if some edge joins u and v.
  [[nodiscard]] bool has_edge(int u, int v) const;

  /// Rebuilds the CSR arrays if stale.  Accessors call this lazily; the
  /// rebuild is double-checked behind a mutex, so concurrent readers may
  /// race to trigger it safely (the replica layer constructs chains from
  /// worker threads).  Mutation (add_edge) remains single-threaded-only.
  void finalize() const;

  /// Per-vertex CSR offsets into incident_edges_flat()/neighbors_flat();
  /// size num_vertices()+1.  Finalizes first.
  [[nodiscard]] std::span<const int> csr_offsets() const;

  /// All incident-edge ids, vertex-major (v's slice is
  /// [offsets[v], offsets[v+1])).  Finalizes first.
  [[nodiscard]] std::span<const int> incident_edges_flat() const;

  /// All neighbor ids, vertex-major, index-aligned with
  /// incident_edges_flat().  Finalizes first.
  [[nodiscard]] std::span<const int> neighbors_flat() const;

 private:
  void check_vertex(int v) const;

  std::vector<Edge> edges_;
  std::vector<int> degree_;  // vertex -> incident edge count
  int max_degree_ = 0;

  // Lazily rebuilt CSR arrays; csr_valid_ flips false on add_edge.  The
  // rebuild is guarded by csr_mutex_ with csr_valid_ as the double-checked
  // publication flag (release store after the arrays are complete).
  mutable std::vector<int> offsets_;   // size n+1
  mutable std::vector<int> inc_flat_;  // size 2m, edge ids
  mutable std::vector<int> nbr_flat_;  // size 2m, neighbor ids
  mutable std::mutex csr_mutex_;
  mutable std::atomic<bool> csr_valid_{false};
};

using GraphPtr = std::shared_ptr<const Graph>;

}  // namespace lsample::graph
