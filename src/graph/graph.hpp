// Undirected multigraph with stable edge identifiers.
//
// Parallel edges are permitted because the lower-bound gadget of §5.1
// (unions of random perfect matchings) is naturally a multigraph, and the
// LocalMetropolis filter flips an independent coin *per edge*, so parallel
// edges are semantically distinct.  Self-loops are rejected — no model in the
// paper uses them and they would break the Luby step.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace lsample::graph {

struct Edge {
  int u = -1;
  int v = -1;
};

class Graph {
 public:
  explicit Graph(int num_vertices);

  /// Adds edge {u,v} (u != v) and returns its id.  Parallel edges allowed.
  int add_edge(int u, int v);

  [[nodiscard]] int num_vertices() const noexcept {
    return static_cast<int>(incident_.size());
  }
  [[nodiscard]] int num_edges() const noexcept {
    return static_cast<int>(edges_.size());
  }

  [[nodiscard]] const Edge& edge(int e) const;

  /// Endpoint of edge e that is not w (w must be an endpoint of e).
  [[nodiscard]] int other_endpoint(int e, int w) const;

  /// Ids of edges incident to v, in insertion order.
  [[nodiscard]] std::span<const int> incident_edges(int v) const;

  /// Neighbors of v aligned index-for-index with incident_edges(v); a
  /// neighbor joined by k parallel edges appears k times.
  [[nodiscard]] std::span<const int> neighbors(int v) const;

  [[nodiscard]] int degree(int v) const;
  [[nodiscard]] int max_degree() const noexcept;

  /// True if some edge joins u and v.
  [[nodiscard]] bool has_edge(int u, int v) const;

 private:
  void check_vertex(int v) const;

  std::vector<Edge> edges_;
  std::vector<std::vector<int>> incident_;   // vertex -> edge ids
  std::vector<std::vector<int>> neighbors_;  // vertex -> neighbor ids
  int max_degree_ = 0;
};

using GraphPtr = std::shared_ptr<const Graph>;

}  // namespace lsample::graph
