// Graph generators used by the experiments.
//
// Every generator returns a freshly allocated graph wrapped in a shared_ptr
// because models (MRFs, CSPs, chains) hold non-owning views into the graph for
// their whole lifetime.
#pragma once

#include <memory>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace lsample::graph {

[[nodiscard]] std::shared_ptr<Graph> make_path(int n);
[[nodiscard]] std::shared_ptr<Graph> make_cycle(int n);
[[nodiscard]] std::shared_ptr<Graph> make_complete(int n);
[[nodiscard]] std::shared_ptr<Graph> make_star(int leaves);
[[nodiscard]] std::shared_ptr<Graph> make_complete_bipartite(int a, int b);

/// rows x cols grid (4-neighbor).
[[nodiscard]] std::shared_ptr<Graph> make_grid(int rows, int cols);

/// rows x cols torus (4-regular when rows, cols >= 3).
[[nodiscard]] std::shared_ptr<Graph> make_torus(int rows, int cols);

/// d-dimensional hypercube on 2^d vertices.
[[nodiscard]] std::shared_ptr<Graph> make_hypercube(int d);

/// Complete binary tree with given number of vertices.
[[nodiscard]] std::shared_ptr<Graph> make_binary_tree(int n);

/// Uniform random labeled tree (Prüfer sequence).
[[nodiscard]] std::shared_ptr<Graph> make_random_tree(int n, util::Rng& rng);

/// Erdős–Rényi G(n,p).
[[nodiscard]] std::shared_ptr<Graph> make_erdos_renyi(int n, double p,
                                                      util::Rng& rng);

/// Simple random d-regular graph via the configuration model with rejection;
/// throws after max_tries failed attempts.  Requires n*d even and d < n.
[[nodiscard]] std::shared_ptr<Graph> make_random_regular(int n, int d,
                                                         util::Rng& rng,
                                                         int max_tries = 200);

/// Uniform random perfect matching between two equal-size vertex sets,
/// added to an existing graph (used by the §5.1 gadget).  Returns edge ids.
std::vector<int> add_random_matching(Graph& g, const std::vector<int>& left,
                                     const std::vector<int>& right,
                                     util::Rng& rng);

}  // namespace lsample::graph
