#include "chains/metropolis.hpp"

#include "chains/local_metropolis.hpp"

namespace lsample::chains {

MetropolisChain::MetropolisChain(const mrf::Mrf& m, std::uint64_t seed)
    : m_(m), rng_(seed) {}

void MetropolisChain::step(Config& x, std::int64_t t) {
  const int v = rng_.uniform_int(util::RngDomain::global_choice, 0,
                                 static_cast<std::uint64_t>(t), 0, m_.n());
  const int c = metropolis_proposal(m_, rng_, v, t);
  const auto inc = m_.g().incident_edges(v);
  const auto nbr = m_.g().neighbors(v);
  double p = 1.0;
  for (std::size_t i = 0; i < inc.size(); ++i)
    p *= m_.edge_activity(inc[i]).normalized_at(
        c, x[static_cast<std::size_t>(nbr[i])]);
  const double u =
      rng_.u01(util::RngDomain::aux, static_cast<std::uint64_t>(v),
               static_cast<std::uint64_t>(t));
  if (u < p) x[static_cast<std::size_t>(v)] = c;
}

}  // namespace lsample::chains
