// Coupling-based mixing diagnostics.
//
// Two chain instances built with the same seed share every proposal and coin
// (the randomness is counter-based), so running them from different initial
// configurations realizes the grand coupling — for LocalMetropolis on
// colorings this is exactly the "local coupling" of Lemma 4.4.  Coalescence
// time of the grand coupling upper-bounds the mixing time pathwise, and its
// growth in (n, Delta, q) is how the benches reproduce the shapes of
// Theorems 1.1, 1.2, 3.2 and 4.2.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "chains/chain.hpp"

namespace lsample::chains {

/// Builds a fresh chain instance for a given seed; each coupling trial uses
/// one seed for both replicas.
using ChainFactory =
    std::function<std::unique_ptr<Chain>(std::uint64_t seed)>;

struct CoalescenceOptions {
  int trials = 20;
  std::int64_t max_rounds = 100000;
  std::uint64_t base_seed = 1;
};

struct CoalescenceResult {
  /// Rounds to coalescence per trial; censored trials report max_rounds.
  std::vector<double> rounds;
  int censored = 0;

  [[nodiscard]] double mean() const;
  [[nodiscard]] double quantile(double p) const;
};

/// Runs the grand coupling from (x0, y0) until X == Y, for each trial.
[[nodiscard]] CoalescenceResult coalescence_time(const ChainFactory& factory,
                                                 const Config& x0,
                                                 const Config& y0,
                                                 const CoalescenceOptions& opt);

/// Average Hamming disagreement (fraction of vertices) after each round,
/// averaged over trials; curve[t] is the disagreement after t rounds.
[[nodiscard]] std::vector<double> disagreement_curve(
    const ChainFactory& factory, const Config& x0, const Config& y0,
    int trials, std::int64_t rounds, std::uint64_t base_seed);

/// Empirical probability mass function of a projection statistic of the
/// chain's state after `rounds` steps, over `runs` independent runs.
/// `statistic` must return a category in [0, num_categories).
[[nodiscard]] std::vector<double> empirical_pmf(
    const ChainFactory& factory, const Config& x0, std::int64_t rounds,
    int runs, const std::function<int(const Config&)>& statistic,
    int num_categories, std::uint64_t base_seed);

}  // namespace lsample::chains
