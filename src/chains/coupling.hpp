// Coupling-based mixing diagnostics.
//
// Two chain instances built with the same seed share every proposal and coin
// (the randomness is counter-based), so running them from different initial
// configurations realizes the grand coupling — for LocalMetropolis on
// colorings this is exactly the "local coupling" of Lemma 4.4.  Coalescence
// time of the grand coupling upper-bounds the mixing time pathwise, and its
// growth in (n, Delta, q) is how the benches reproduce the shapes of
// Theorems 1.1, 1.2, 3.2 and 4.2.
//
// All three estimators run their independent trials over the replica layer
// (chains/replicas.hpp): trial r is seeded by replica_seed(base_seed, r) and
// trials are partitioned across a thread pool, with results bit-identical to
// the sequential trial loop at any thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "chains/chain.hpp"

namespace lsample::chains {

/// Builds a fresh chain instance for a given seed; each coupling trial uses
/// one seed for both replicas.  Factories are invoked concurrently from the
/// replica pool, so they must be safe to call from multiple threads (the
/// library's chains are: construction only reads the shared model).
using ChainFactory =
    std::function<std::unique_ptr<Chain>(std::uint64_t seed)>;

struct CoalescenceOptions {
  int trials = 20;
  std::int64_t max_rounds = 100000;
  std::uint64_t base_seed = 1;
  /// Trial-parallel worker threads (0 = all hardware threads).  Results are
  /// bit-identical at any value.
  int num_threads = 1;
};

struct CoalescenceResult {
  /// Rounds to coalescence for the UNCENSORED trials only, in trial order.
  /// Trials still disagreeing after max_rounds are counted in `censored`
  /// instead of being pushed here — averaging the budget in as if it were a
  /// coalescence time would bias every statistic downward.
  std::vector<double> rounds;
  int censored = 0;
  std::int64_t max_rounds = 0;  ///< the per-trial round budget

  [[nodiscard]] int trials() const noexcept {
    return static_cast<int>(rounds.size()) + censored;
  }

  /// Mean over the uncensored trials (NaN if every trial was censored).
  /// With censoring this is NOT an estimate of the true mean coalescence
  /// time — see mean_lower_bound().
  [[nodiscard]] double mean() const;

  /// Censored-aware lower bound on the true mean: censored trials counted at
  /// max_rounds (each true coalescence time is >= the budget it exhausted).
  [[nodiscard]] double mean_lower_bound() const;

  /// p-quantile over the uncensored trials only (NaN if every trial was
  /// censored).  Valid as stated whenever p < fraction uncensored.
  [[nodiscard]] double quantile(double p) const;
};

/// Runs the grand coupling from (x0, y0) until X == Y, for each trial.
[[nodiscard]] CoalescenceResult coalescence_time(const ChainFactory& factory,
                                                 const Config& x0,
                                                 const Config& y0,
                                                 const CoalescenceOptions& opt);

/// Average Hamming disagreement (fraction of vertices) after each round,
/// averaged over trials; curve[t] is the disagreement after t rounds.
[[nodiscard]] std::vector<double> disagreement_curve(
    const ChainFactory& factory, const Config& x0, const Config& y0,
    int trials, std::int64_t rounds, std::uint64_t base_seed,
    int num_threads = 1);

/// Empirical probability mass function of a projection statistic of the
/// chain's state after `rounds` steps, over `runs` independent runs.
/// `statistic` must return a category in [0, num_categories) and be safe to
/// call concurrently; a value out of range throws std::invalid_argument.
[[nodiscard]] std::vector<double> empirical_pmf(
    const ChainFactory& factory, const Config& x0, std::int64_t rounds,
    int runs, const std::function<int(const Config&)>& statistic,
    int num_categories, std::uint64_t base_seed, int num_threads = 1);

}  // namespace lsample::chains
