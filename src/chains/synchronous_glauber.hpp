// Fully synchronous parallel Glauber ("Hogwild-style" all-at-once heat
// bath): EVERY vertex resamples simultaneously from its marginal conditioned
// on the previous state.
//
// This is the naive parallelization the paper's Algorithm 1 deliberately
// avoids: without restricting updates to an independent set, the chain's
// stationary distribution is NOT the Gibbs distribution in general (on a
// single edge it converges to a product measure).  It is included as a
// negative control — the exact tests show its stationarity error is bounded
// away from zero on the same models where LubyGlauber is exact — and as the
// synchronous baseline discussed in the related-work comparison (Hogwild!
// samplers, De Sa et al.).
//
// The round is a pure map over vertices (double-buffered), so an attached
// ParallelEngine partitions it across threads with a bit-identical result.
#pragma once

#include <memory>
#include <vector>

#include "chains/chain.hpp"
#include "mrf/compiled.hpp"
#include "util/rng.hpp"

namespace lsample::chains {

class SynchronousGlauberChain final : public Chain {
 public:
  SynchronousGlauberChain(const mrf::Mrf& m, std::uint64_t seed);

  /// Shares a compiled view (read-only) instead of compiling its own — the
  /// replica layer builds R chains against ONE view.  The view's Mrf and
  /// graph must outlive the chain.
  SynchronousGlauberChain(std::shared_ptr<const mrf::CompiledMrf> cm,
                          std::uint64_t seed);

  void step(Config& x, std::int64_t t) override;
  void set_engine(ParallelEngine* engine) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "SynchronousGlauber";
  }
  [[nodiscard]] double updates_per_step() const noexcept override {
    return static_cast<double>(cm_->n());
  }

 private:
  std::shared_ptr<const mrf::CompiledMrf> cm_;
  util::CounterRng rng_;
  ParallelEngine* engine_ = nullptr;
  Config next_;
  std::vector<std::vector<double>> scratch_;  // marginal weights, per thread
};

}  // namespace lsample::chains
