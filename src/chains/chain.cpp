#include "chains/chain.hpp"

namespace lsample::chains {

std::int64_t run(Chain& chain, Config& x, std::int64_t t0,
                 std::int64_t steps) {
  for (std::int64_t t = t0; t < t0 + steps; ++t) chain.step(x, t);
  return t0 + steps;
}

}  // namespace lsample::chains
