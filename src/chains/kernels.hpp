// Per-vertex update kernels on the compiled model view.
//
// Each kernel is a pure function of (model, seed, vertex, t, input state):
// it reads the previous round's configuration and counter-RNG streams and
// returns one vertex's decision, touching no shared mutable state.  That is
// the shape that makes the paper's "every vertex updates simultaneously"
// semantics literal: the ParallelEngine maps a kernel over the active vertex
// set and the result cannot depend on execution order or thread count.
//
// Every kernel is value-identical to the legacy gather-based helpers in
// glauber.hpp / local_metropolis.hpp (same RNG tuples queried, same doubles
// multiplied in the same order), so migrating a chain onto kernels preserves
// its trajectory bit-for-bit — including against the LOCAL-model simulator,
// whose node programs still call the legacy helpers.
#pragma once

#include <cstdint>
#include <vector>

#include "chains/chain.hpp"
#include "mrf/compiled.hpp"
#include "util/rng.hpp"

namespace lsample::chains {

/// Heat-bath resampling of v at time t against configuration x, reading
/// neighbor spins through the CSR view.  Value-identical to
/// gather_neighbor_spins + heat_bath_resample.  `scratch` holds the marginal
/// weights; pass a per-thread buffer when running under an engine.
[[nodiscard]] int heat_bath_kernel(const mrf::CompiledMrf& cm,
                                   const util::CounterRng& rng, int v,
                                   std::int64_t t, const Config& x,
                                   std::vector<double>& scratch);

/// LocalMetropolis proposal draw for v at time t; value-identical to
/// metropolis_proposal.
[[nodiscard]] int proposal_kernel(const mrf::CompiledMrf& cm,
                                  const util::CounterRng& rng, int v,
                                  std::int64_t t);

/// LocalMetropolis accept decision for v: true iff every incident edge's
/// shared-coin filter passes.  Both endpoints of an edge evaluate the same
/// pure function of (edge id, t) and therefore see the same coin, so the
/// per-vertex formulation equals the per-edge sweep of the sequential chain.
[[nodiscard]] bool lm_accept_kernel(const mrf::CompiledMrf& cm,
                                    const util::CounterRng& rng, int v,
                                    std::int64_t t, const Config& proposal,
                                    const Config& x);

/// Accept decision for the two-rule negative control (drops the third filter
/// rule); requires hard-constraint activities, like the chain it serves.
[[nodiscard]] bool lm_two_rule_accept_kernel(const mrf::CompiledMrf& cm,
                                             const util::CounterRng& rng, int v,
                                             std::int64_t t,
                                             const Config& proposal,
                                             const Config& x);

}  // namespace lsample::chains
