// Independent-set schedulers for the generalized LubyGlauber chain.
//
// The Remark after Theorem 3.2 notes that the "Luby step" can be replaced by
// any subroutine that independently samples a random independent set I with
// Pr[v in I] >= gamma > 0, giving mixing rate O(1/((1-alpha) gamma) log(n/e)).
// We provide three schedulers:
//   * LubyScheduler    — the paper's Algorithm 1: v joins I iff its random
//                        priority beats all neighbors'; gamma = 1/(Delta+1).
//   * SlackLubyScheduler(p) — v activates with probability p and joins I iff
//                        no neighbor activated; gamma >= p (1-p)^Delta.
//   * ChromaticScheduler — a uniformly random greedy color class per step
//                        (the Gonzalez et al. baseline); gamma = 1/k classes.
// All schedulers draw from counter-based streams, so a LOCAL implementation
// and the in-memory chain agree round for round.
#pragma once

#include <memory>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace lsample::chains {

class ParallelEngine;

class IndependentSetScheduler {
 public:
  virtual ~IndependentSetScheduler() = default;

  /// Fills `selected` (size n) with 1 for vertices in this step's independent
  /// set.  Must be a deterministic function of (seed, t) — including under an
  /// attached engine, at any thread count.
  virtual void select(std::int64_t t, std::vector<char>& selected) = 0;

  /// Split protocol for fused chain rounds: prepare(t) draws/derives this
  /// step's randomness (one engine pass at most); afterwards in_set(v) must
  /// be a pure thread-safe predicate over that state, so the chain can
  /// evaluate membership and resample in the SAME pass.  Membership must
  /// match what select(t, ...) would produce.  The default bridges
  /// subclasses that only implement select().
  virtual void prepare(std::int64_t t) { select(t, prepared_); }
  [[nodiscard]] virtual bool in_set(int v) const {
    return prepared_[static_cast<std::size_t>(v)] != 0;
  }

  /// Attaches a ParallelEngine for selection (nullptr = sequential).  All
  /// schedulers here compute per-vertex pure functions of (seed, t), so the
  /// parallel selection is bit-identical to the sequential one.
  virtual void set_engine(ParallelEngine* engine) { engine_ = engine; }

  /// Lower bound gamma on Pr[v in I] (for round-budget formulas).
  [[nodiscard]] virtual double gamma_lower_bound() const noexcept = 0;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

 protected:
  ParallelEngine* engine_ = nullptr;

 private:
  std::vector<char> prepared_;  // only used by the default prepare/in_set
};

/// The Luby step, exposed so the LOCAL node program can reuse it verbatim.
[[nodiscard]] double luby_priority(const util::CounterRng& rng, int v,
                                   std::int64_t t) noexcept;

class LubyScheduler final : public IndependentSetScheduler {
 public:
  LubyScheduler(graph::GraphPtr g, std::uint64_t seed);
  void select(std::int64_t t, std::vector<char>& selected) override;
  void prepare(std::int64_t t) override;
  [[nodiscard]] bool in_set(int v) const override;
  [[nodiscard]] double gamma_lower_bound() const noexcept override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "luby";
  }

 private:
  graph::GraphPtr g_;
  util::CounterRng rng_;
  std::vector<double> priorities_;
};

class SlackLubyScheduler final : public IndependentSetScheduler {
 public:
  SlackLubyScheduler(graph::GraphPtr g, double activation_prob,
                     std::uint64_t seed);
  void select(std::int64_t t, std::vector<char>& selected) override;
  void prepare(std::int64_t t) override;
  [[nodiscard]] bool in_set(int v) const override;
  [[nodiscard]] double gamma_lower_bound() const noexcept override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "slack-luby";
  }

 private:
  graph::GraphPtr g_;
  double p_;
  util::CounterRng rng_;
  std::vector<char> activated_;
};

class ChromaticScheduler final : public IndependentSetScheduler {
 public:
  /// Classes come from a greedy coloring of the graph.
  ChromaticScheduler(graph::GraphPtr g, std::uint64_t seed);
  void select(std::int64_t t, std::vector<char>& selected) override;
  void prepare(std::int64_t t) override;
  [[nodiscard]] bool in_set(int v) const override;
  [[nodiscard]] double gamma_lower_bound() const noexcept override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "chromatic";
  }
  [[nodiscard]] int num_classes() const noexcept { return num_classes_; }

 private:
  graph::GraphPtr g_;
  util::CounterRng rng_;
  std::vector<int> class_of_;
  int num_classes_ = 0;
  int cls_ = -1;  // the class drawn by the latest prepare(t)
};

}  // namespace lsample::chains
