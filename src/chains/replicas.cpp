#include "chains/replicas.hpp"

#include <atomic>
#include <exception>
#include <mutex>

#include "util/require.hpp"

namespace lsample::chains {

namespace {

int resolve_threads(int num_threads) {
  LS_REQUIRE(num_threads >= 0, "num_threads must be >= 0 (0 = all hardware)");
  return num_threads == 0 ? ParallelEngine::hardware_threads() : num_threads;
}

}  // namespace

ReplicaRunner::ReplicaRunner(int num_threads)
    : engine_(resolve_threads(num_threads)) {}

void ReplicaRunner::run(int num_replicas,
                        const std::function<void(int replica)>& job) {
  LS_REQUIRE(num_replicas >= 0, "num_replicas must be >= 0");
  // Exception barrier: a throw from a job must not escape a worker thread
  // (std::terminate) or unwind the caller past the pool barrier while
  // workers still run.  The first captured exception is rethrown on the
  // caller after every thread finished; replicas not yet started when a
  // failure is observed are skipped.
  std::exception_ptr error = nullptr;
  std::mutex error_mu;
  std::atomic<bool> failed{false};
  engine_.parallel_for(num_replicas, [&](int /*thread*/, int begin, int end) {
    for (int r = begin; r < end; ++r) {
      if (failed.load(std::memory_order_relaxed)) return;
      try {
        job(r);
      } catch (...) {
        failed.store(true, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(error_mu);
        if (error == nullptr) error = std::current_exception();
      }
    }
  });
  if (error != nullptr) std::rethrow_exception(error);
}

}  // namespace lsample::chains
