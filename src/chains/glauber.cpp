#include "chains/glauber.hpp"

#include "chains/kernels.hpp"
#include "util/require.hpp"

namespace lsample::chains {

int heat_bath_resample(const mrf::Mrf& m, const util::CounterRng& rng, int v,
                       std::int64_t t, std::span<const int> neighbor_spins,
                       std::vector<double>& scratch, int current_spin) {
  scratch.assign(static_cast<std::size_t>(m.q()), 0.0);
  const auto inc = m.g().incident_edges(v);
  LS_REQUIRE(neighbor_spins.size() == inc.size(),
             "neighbor spin vector must match incident edge list");
  const auto bv = m.vertex_activity(v);
  for (int c = 0; c < m.q(); ++c) {
    double w = bv[static_cast<std::size_t>(c)];
    for (std::size_t i = 0; i < inc.size() && w > 0.0; ++i)
      w *= m.edge_activity(inc[i]).at(c, neighbor_spins[i]);
    scratch[static_cast<std::size_t>(c)] = w;
  }
  const int c =
      shared_stream_sample(scratch, rng, util::RngDomain::vertex_update,
                           static_cast<std::uint64_t>(v), t);
  // Zero marginal: the well-definedness assumption of Section 3 fails at
  // this (necessarily infeasible) state; keep the current spin so the chain
  // stays total.  On feasible states this never triggers.
  return c >= 0 ? c : current_spin;
}

int shared_stream_sample(std::span<const double> weights,
                         const util::CounterRng& rng, util::RngDomain domain,
                         std::uint64_t stream, std::int64_t t) {
  const int q = static_cast<int>(weights.size());
  double wmax = 0.0;
  double total = 0.0;
  for (double w : weights) {
    wmax = std::max(wmax, w);
    total += w;
  }
  if (total <= 0.0) return -1;
  // Rejection sampling from the shared (candidate, coin) stream: the
  // accepted value is exactly distributed as weights/total, and two coupled
  // chains disagree only if the first accepted candidate differs — the
  // coupling used in path-coupling arguments for colorings.  The fallback
  // keeps the worst case bounded and remains exact (conditioned on reaching
  // it, a fresh categorical draw is still the target marginal).
  const int max_tries = 16 * q;
  for (int k = 0; k < max_tries; ++k) {
    const double u_cand = rng.u01(domain, stream, static_cast<std::uint64_t>(t),
                                  2 * static_cast<std::uint64_t>(k));
    const int c = std::min(q - 1, static_cast<int>(u_cand * q));
    const double u_acc = rng.u01(domain, stream, static_cast<std::uint64_t>(t),
                                 2 * static_cast<std::uint64_t>(k) + 1);
    if (u_acc * wmax < weights[static_cast<std::size_t>(c)]) return c;
  }
  const int c = util::categorical(
      weights, rng.u01(domain, stream, static_cast<std::uint64_t>(t),
                       2 * static_cast<std::uint64_t>(max_tries)));
  LS_ASSERT(c >= 0, "categorical fallback failed on positive-total weights");
  return c;
}

void gather_neighbor_spins(const mrf::Mrf& m, int v, const Config& x,
                           std::vector<int>& out) {
  const auto nbr = m.g().neighbors(v);
  out.resize(nbr.size());
  for (std::size_t i = 0; i < nbr.size(); ++i)
    out[i] = x[static_cast<std::size_t>(nbr[i])];
}

GlauberChain::GlauberChain(const mrf::Mrf& m, std::uint64_t seed)
    : cm_(m), rng_(seed) {}

void GlauberChain::step(Config& x, std::int64_t t) {
  const int v = rng_.uniform_int(util::RngDomain::global_choice, 0,
                                 static_cast<std::uint64_t>(t), 0, cm_.n());
  x[static_cast<std::size_t>(v)] = heat_bath_kernel(cm_, rng_, v, t, x, weights_);
}

}  // namespace lsample::chains
