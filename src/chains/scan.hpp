// Systematic scan Glauber dynamics: one step = one deterministic left-to-right
// sweep of heat-bath updates.  The paper cites scans (Dyer–Goldberg–Jerrum)
// as the ancestor of chromatic-scheduler parallelization; we include it as a
// sequential baseline.  A scan sweep is stationary for the Gibbs distribution
// but not reversible — the exact tests check stationarity only.
#pragma once

#include <vector>

#include "chains/chain.hpp"
#include "util/rng.hpp"

namespace lsample::chains {

class SystematicScanChain final : public Chain {
 public:
  SystematicScanChain(const mrf::Mrf& m, std::uint64_t seed);

  void step(Config& x, std::int64_t t) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "SystematicScan";
  }
  [[nodiscard]] double updates_per_step() const noexcept override {
    return static_cast<double>(m_.n());
  }

 private:
  const mrf::Mrf& m_;
  util::CounterRng rng_;
  std::vector<double> weights_;
  std::vector<int> nbr_spins_;
};

}  // namespace lsample::chains
