// Systematic scan Glauber dynamics: one step = one deterministic left-to-right
// sweep of heat-bath updates.  The paper cites scans (Dyer–Goldberg–Jerrum)
// as the ancestor of chromatic-scheduler parallelization; we include it as a
// sequential baseline.  A scan sweep is stationary for the Gibbs distribution
// but not reversible — the exact tests check stationarity only.
//
// The sweep runs on the same per-vertex heat-bath kernel as the parallel
// chains but is inherently sequential: vertex v's update reads the updates of
// all u < v from the same sweep.  set_engine is therefore a deliberate no-op
// (the Chain default) — partitioning a scan would change the trajectory, not
// just the schedule.
#pragma once

#include <vector>

#include "chains/chain.hpp"
#include "mrf/compiled.hpp"
#include "util/rng.hpp"

namespace lsample::chains {

class SystematicScanChain final : public Chain {
 public:
  SystematicScanChain(const mrf::Mrf& m, std::uint64_t seed);

  void step(Config& x, std::int64_t t) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "SystematicScan";
  }
  [[nodiscard]] double updates_per_step() const noexcept override {
    return static_cast<double>(cm_.n());
  }

 private:
  mrf::CompiledMrf cm_;
  util::CounterRng rng_;
  std::vector<double> weights_;
};

}  // namespace lsample::chains
