// The LocalMetropolis algorithm (Algorithm 2 of the paper).
//
// One step:
//   Propose:      every vertex independently proposes sigma_v ~ b_v.
//   Local filter: every edge e=uv flips one shared coin and passes with
//                 probability Ã_e(σu,σv) · Ã_e(Xu,σv) · Ã_e(σu,Xv).
//   Accept:       v adopts sigma_v iff all incident edges passed.
//
// Theorem 4.1: reversible with stationary distribution µ.  Theorem 4.2: for
// proper q-colorings with q >= alpha*Delta, alpha > 2+sqrt(2), Delta >= 9,
// tau(eps) = O(log(n/eps)) independent of Delta.
//
// The shared edge coin is realized as a counter-RNG stream keyed by the edge
// id: both endpoints (in the LOCAL simulator, and each thread of the
// ParallelEngine) evaluate the same pure function and therefore see the same
// coin, exactly as the paper stipulates.  The step runs as TWO engine
// passes: propose, then a fused filter+adopt pass that writes the next
// configuration into a scratch buffer (swapped in afterwards) — each phase
// is a pure map over vertices, so an attached engine partitions them across
// threads with a bit-identical trajectory; the filter recomputes an edge's
// coin at both endpoints instead of sharing a flag, trading two cheap
// hashes for the absence of any cross-thread write.
#pragma once

#include <memory>
#include <vector>

#include "chains/chain.hpp"
#include "mrf/compiled.hpp"
#include "util/rng.hpp"

namespace lsample::chains {

/// The proposal draw for vertex v at time t, exposed for the LOCAL node
/// program.  Returns a spin sampled with probability b_v(c)/sum b_v.
[[nodiscard]] int metropolis_proposal(const mrf::Mrf& m,
                                      const util::CounterRng& rng, int v,
                                      std::int64_t t);

/// The shared coin for edge e at time t (uniform in [0,1)).
[[nodiscard]] double edge_coin(const util::CounterRng& rng, int e,
                               std::int64_t t) noexcept;

class LocalMetropolisChain final : public Chain {
 public:
  LocalMetropolisChain(const mrf::Mrf& m, std::uint64_t seed);

  /// Shares a compiled view (read-only) instead of compiling its own — the
  /// replica layer builds R chains against ONE view.  The view's Mrf and
  /// graph must outlive the chain.
  LocalMetropolisChain(std::shared_ptr<const mrf::CompiledMrf> cm,
                       std::uint64_t seed);

  void step(Config& x, std::int64_t t) override;
  void set_engine(ParallelEngine* engine) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "LocalMetropolis";
  }
  [[nodiscard]] double updates_per_step() const noexcept override {
    return static_cast<double>(cm_->n());
  }

  /// Fraction of vertices that accepted their proposal in the last step.
  [[nodiscard]] double last_acceptance_fraction() const noexcept {
    return last_accept_fraction_;
  }

 private:
  std::shared_ptr<const mrf::CompiledMrf> cm_;
  util::CounterRng rng_;
  ParallelEngine* engine_ = nullptr;
  Config proposal_;
  Config next_;  // fused filter+adopt writes here, then swaps into x
  std::vector<long long> accepted_per_thread_;
  double last_accept_fraction_ = 0.0;
};

/// Negative-control variant used by tests: drops the third filtering rule
/// ("the neighbor proposed v's current color"), which the paper remarks looks
/// redundant but is required for reversibility.  Only valid for models with
/// 0/1 edge activities (the checks are then deterministic).  Its stationary
/// distribution is provably NOT the Gibbs distribution in general; the test
/// suite asserts the violation numerically.
class LocalMetropolisTwoRuleChain final : public Chain {
 public:
  LocalMetropolisTwoRuleChain(const mrf::Mrf& m, std::uint64_t seed);

  void step(Config& x, std::int64_t t) override;
  void set_engine(ParallelEngine* engine) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "LocalMetropolis-noRule3";
  }
  [[nodiscard]] double updates_per_step() const noexcept override {
    return static_cast<double>(cm_.n());
  }

 private:
  mrf::CompiledMrf cm_;
  util::CounterRng rng_;
  ParallelEngine* engine_ = nullptr;
  Config proposal_;
  Config next_;
};

}  // namespace lsample::chains
