#include "chains/schedulers.hpp"

#include <cmath>

#include "chains/engine.hpp"
#include "graph/properties.hpp"
#include "util/require.hpp"

namespace lsample::chains {

double luby_priority(const util::CounterRng& rng, int v,
                     std::int64_t t) noexcept {
  return rng.u01(util::RngDomain::luby_priority,
                 static_cast<std::uint64_t>(v), static_cast<std::uint64_t>(t));
}

LubyScheduler::LubyScheduler(graph::GraphPtr g, std::uint64_t seed)
    : g_(std::move(g)), rng_(seed) {
  LS_REQUIRE(g_ != nullptr, "graph must not be null");
  g_->finalize();
}

void LubyScheduler::prepare(std::int64_t t) {
  const int n = g_->num_vertices();
  priorities_.resize(static_cast<std::size_t>(n));
  LS_AUDIT_SCOPE("LubyScheduler.prepare");
  run_partitioned(engine_, n, [&](int /*thread*/, int begin, int end) {
    for (int v = begin; v < end; ++v) {
      LS_AUDIT_UNIT(v);
      priorities_[static_cast<std::size_t>(v)] = luby_priority(rng_, v, t);
      LS_AUDIT_WRITE(scheduler, v, &priorities_[static_cast<std::size_t>(v)],
                     sizeof(priorities_[0]));
    }
  });
}

bool LubyScheduler::in_set(int v) const {
  // Membership reads the neighbors' priorities, all fixed in prepare's epoch;
  // declaring the reads pins that phase ordering under the auditor.
  LS_AUDIT_ONLY(
      LS_AUDIT_READ(scheduler, v, &priorities_[static_cast<std::size_t>(v)],
                    sizeof(priorities_[0]));
      for (const int u
           : g_->neighbors(v))
          LS_AUDIT_READ(scheduler, u,
                        &priorities_[static_cast<std::size_t>(u)],
                        sizeof(priorities_[0])););
  const double pv = priorities_[static_cast<std::size_t>(v)];
  for (int u : g_->neighbors(v)) {
    // Lexicographic (priority, id) tie-break keeps the selected set a true
    // independent set even in the measure-zero event of equal priorities.
    const double pu = priorities_[static_cast<std::size_t>(u)];
    if (pu > pv || (pu == pv && u > v)) return false;
  }
  return true;
}

void LubyScheduler::select(std::int64_t t, std::vector<char>& selected) {
  const int n = g_->num_vertices();
  prepare(t);
  selected.resize(static_cast<std::size_t>(n));
  LS_AUDIT_SCOPE("LubyScheduler.select");
  run_partitioned(engine_, n, [&](int /*thread*/, int begin, int end) {
    for (int v = begin; v < end; ++v) {
      LS_AUDIT_UNIT(v);
      selected[static_cast<std::size_t>(v)] = in_set(v) ? 1 : 0;
      LS_AUDIT_WRITE(selected, v, &selected[static_cast<std::size_t>(v)],
                     sizeof(char));
    }
  });
}

double LubyScheduler::gamma_lower_bound() const noexcept {
  return 1.0 / (g_->max_degree() + 1.0);
}

SlackLubyScheduler::SlackLubyScheduler(graph::GraphPtr g,
                                       double activation_prob,
                                       std::uint64_t seed)
    : g_(std::move(g)), p_(activation_prob), rng_(seed) {
  LS_REQUIRE(g_ != nullptr, "graph must not be null");
  LS_REQUIRE(p_ > 0.0 && p_ <= 1.0, "activation probability in (0,1]");
  g_->finalize();
}

void SlackLubyScheduler::prepare(std::int64_t t) {
  const int n = g_->num_vertices();
  activated_.resize(static_cast<std::size_t>(n));
  LS_AUDIT_SCOPE("SlackLubyScheduler.prepare");
  run_partitioned(engine_, n, [&](int /*thread*/, int begin, int end) {
    for (int v = begin; v < end; ++v) {
      LS_AUDIT_UNIT(v);
      activated_[static_cast<std::size_t>(v)] =
          rng_.u01(util::RngDomain::luby_priority,
                   static_cast<std::uint64_t>(v),
                   static_cast<std::uint64_t>(t)) < p_
              ? 1
              : 0;
      LS_AUDIT_WRITE(scheduler, v, &activated_[static_cast<std::size_t>(v)],
                     sizeof(activated_[0]));
    }
  });
}

bool SlackLubyScheduler::in_set(int v) const {
  LS_AUDIT_ONLY(
      LS_AUDIT_READ(scheduler, v, &activated_[static_cast<std::size_t>(v)],
                    sizeof(activated_[0]));
      for (const int u
           : g_->neighbors(v))
          LS_AUDIT_READ(scheduler, u,
                        &activated_[static_cast<std::size_t>(u)],
                        sizeof(activated_[0])););
  if (activated_[static_cast<std::size_t>(v)] == 0) return false;
  for (int u : g_->neighbors(v))
    if (activated_[static_cast<std::size_t>(u)] != 0) return false;
  return true;
}

void SlackLubyScheduler::select(std::int64_t t, std::vector<char>& selected) {
  const int n = g_->num_vertices();
  prepare(t);
  selected.resize(static_cast<std::size_t>(n));
  run_partitioned(engine_, n, [&](int /*thread*/, int begin, int end) {
    for (int v = begin; v < end; ++v)
      selected[static_cast<std::size_t>(v)] = in_set(v) ? 1 : 0;
  });
}

double SlackLubyScheduler::gamma_lower_bound() const noexcept {
  return p_ * std::pow(1.0 - p_, g_->max_degree());
}

ChromaticScheduler::ChromaticScheduler(graph::GraphPtr g, std::uint64_t seed)
    : g_(std::move(g)), rng_(seed) {
  LS_REQUIRE(g_ != nullptr, "graph must not be null");
  g_->finalize();
  class_of_ = graph::greedy_coloring(*g_);
  num_classes_ = graph::count_distinct(class_of_);
}

void ChromaticScheduler::prepare(std::int64_t t) {
  cls_ = rng_.uniform_int(util::RngDomain::global_choice, 0,
                          static_cast<std::uint64_t>(t), 0, num_classes_);
}

bool ChromaticScheduler::in_set(int v) const {
  return class_of_[static_cast<std::size_t>(v)] == cls_;
}

void ChromaticScheduler::select(std::int64_t t, std::vector<char>& selected) {
  const int n = g_->num_vertices();
  prepare(t);
  selected.resize(static_cast<std::size_t>(n));
  run_partitioned(engine_, n, [&](int /*thread*/, int begin, int end) {
    for (int v = begin; v < end; ++v)
      selected[static_cast<std::size_t>(v)] = in_set(v) ? 1 : 0;
  });
}

double ChromaticScheduler::gamma_lower_bound() const noexcept {
  return num_classes_ > 0 ? 1.0 / num_classes_ : 0.0;
}

}  // namespace lsample::chains
