#include "chains/scan.hpp"

#include "chains/kernels.hpp"

namespace lsample::chains {

SystematicScanChain::SystematicScanChain(const mrf::Mrf& m, std::uint64_t seed)
    : cm_(m), rng_(seed) {}

void SystematicScanChain::step(Config& x, std::int64_t t) {
  for (int v = 0; v < cm_.n(); ++v)
    x[static_cast<std::size_t>(v)] =
        heat_bath_kernel(cm_, rng_, v, t, x, weights_);
}

}  // namespace lsample::chains
