#include "chains/scan.hpp"

#include "chains/glauber.hpp"

namespace lsample::chains {

SystematicScanChain::SystematicScanChain(const mrf::Mrf& m, std::uint64_t seed)
    : m_(m), rng_(seed) {}

void SystematicScanChain::step(Config& x, std::int64_t t) {
  for (int v = 0; v < m_.n(); ++v) {
    gather_neighbor_spins(m_, v, x, nbr_spins_);
    x[static_cast<std::size_t>(v)] = heat_bath_resample(
        m_, rng_, v, t, nbr_spins_, weights_, x[static_cast<std::size_t>(v)]);
  }
}

}  // namespace lsample::chains
