// Common interface for the Markov chains in this library.
//
// Every chain draws its randomness from a CounterRng, so a chain's whole
// trajectory is a pure function of (model, seed, initial configuration).
// Running two chain instances with the same seed from different initial
// configurations yields the *grand coupling* (identical proposals and coins),
// which is exactly the coupling analyzed in Lemma 4.4 of the paper and the
// basis of the coalescence estimators in chains/coupling.hpp.
#pragma once

#include <cstdint>
#include <string_view>

#include "mrf/mrf.hpp"

namespace lsample::chains {

using mrf::Config;

class ParallelEngine;

class Chain {
 public:
  virtual ~Chain() = default;

  /// Advances x by one step of the chain at time index t.  Chains must be
  /// deterministic functions of (x, t, seed): calling step with the same
  /// arguments twice gives the same result.
  virtual void step(Config& x, std::int64_t t) = 0;

  /// Attaches a ParallelEngine for the chain's rounds (nullptr restores
  /// sequential execution).  The engine must outlive the chain or the next
  /// set_engine call.  Chains that support parallel rounds override this;
  /// the trajectory MUST be bit-identical with or without an engine, at any
  /// thread count — the default ignores the engine, which is trivially
  /// conforming (and the right behavior for inherently sequential chains
  /// like the systematic scan).
  virtual void set_engine(ParallelEngine* /*engine*/) {}

  /// Human-readable chain name for reports.
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// How many single-site updates one step performs in expectation — used to
  /// compare parallel rounds against sequential steps fairly.
  [[nodiscard]] virtual double updates_per_step() const noexcept = 0;
};

/// Runs `steps` steps starting at time t0; returns the next unused time index.
std::int64_t run(Chain& chain, Config& x, std::int64_t t0, std::int64_t steps);

}  // namespace lsample::chains
