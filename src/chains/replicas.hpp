// Replica layer — trial-parallel execution of many independent chains (or
// coupled chain pairs) over one ParallelEngine thread pool.
//
// The intra-chain engine (engine.hpp) parallelizes ONE round of ONE chain
// across vertices; this layer parallelizes ACROSS chains: R replicas, each a
// whole trajectory (or a coupled pair stepped in lockstep), partitioned
// statically over the pool.  This is the shape every repeated-trial
// measurement in the paper's experiments has (E1/E2 coalescence trials, the
// E11 series, empirical stationarity checks), and also the shape of a
// batched sampling service: many requests against one shared read-only
// CompiledMrf.
//
// Determinism contract: replica r's work must be a pure function of
// (shared read-only inputs, r) — in this library that means a chain seeded
// by replica_seed(base_seed, r), which makes the trajectory a pure function
// of (model, base_seed, r, x0).  Jobs write only their own result slots and
// never touch another replica's state, so the static partition decides WHO
// runs a replica, never WHAT it computes: results are bit-identical to the
// sequential trial loop at any thread count and any replica-partition.
//
// Jobs may throw: run() catches on the worker, drains the pool, and
// rethrows the first captured exception on the caller (replicas not yet
// started when a failure is observed are skipped, so which replicas ran is
// unspecified after a throw).  Jobs must not use the runner's pool
// reentrantly — run intra-replica rounds sequentially.
#pragma once

#include <cstdint>
#include <functional>

#include "chains/engine.hpp"
#include "util/rng.hpp"

namespace lsample::chains {

/// Derives the RNG seed for replica r of a trial batch from the batch's base
/// seed, with SplitMix64 finalizer mixing on both words.  Unlike the additive
/// `base_seed + r` scheme this replaces, nearby base seeds do not produce
/// overlapping replica streams (`replica_seed(s, r) != replica_seed(s+1, r-1)`
/// in general), so two measurements keyed by adjacent base seeds never share
/// a trajectory.
[[nodiscard]] constexpr std::uint64_t replica_seed(
    std::uint64_t base_seed, std::uint64_t replica) noexcept {
  // Distinct salt from CounterRng's internal seed whitening so the replica
  // key schedule and the per-draw counter hash are independent functions.
  return util::mix64(util::mix64(base_seed ^ 0xd1b54a32d192ed03ULL) ^ replica);
}

/// Runs R replica jobs over a persistent thread pool.
class ReplicaRunner {
 public:
  /// num_threads >= 1, or 0 for all hardware threads.  With one thread the
  /// runner degenerates to the plain sequential trial loop on the caller.
  explicit ReplicaRunner(int num_threads = 1);

  [[nodiscard]] int num_threads() const noexcept {
    return engine_.num_threads();
  }

  /// Invokes job(r) once for every replica r in [0, num_replicas), replicas
  /// partitioned statically over the pool (the caller participates as
  /// thread 0).  Returns after every thread finished; if any job threw, the
  /// first captured exception is rethrown here (see the header comment).
  void run(int num_replicas, const std::function<void(int replica)>& job);

 private:
  ParallelEngine engine_;
};

}  // namespace lsample::chains
