#include "chains/stopping.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "chains/replicas.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace lsample::chains {

namespace {

// Seed salts keeping the diagnostic streams disjoint from every payload
// stream (which use the base seed directly or replica_seed(base, r)).
constexpr std::uint64_t kRhatSeedSalt = 0x5b4ac1f3a0e9d287ULL;
constexpr std::uint64_t kCouplingSeedSalt = 0x7fb5d329728ea185ULL;
constexpr std::uint64_t kObservableSalt = 0x1f83d9abfb41bd6bULL;

/// Shortest half-chain the split-R-hat estimate may decide on.  With fewer
/// samples the variance estimates are noise and the diagnostic passes
/// spuriously (the fuzzer's TV gate catches exactly this at half-length 2),
/// so earlier checkpoints report "not yet decidable".
constexpr std::int64_t kRhatMinHalfChain = 4;

/// Split potential scale reduction factor over the window [T/2, T) of each
/// replica's observable history.  Each replica's window is split into two
/// half-chains (Gelman et al.'s split-R-hat), so a within-chain burn-in
/// trend inflates the between-chain variance and delays stopping even when
/// all replicas share one initial configuration (the CSP case).  With W =
/// mean within-half-chain variance and B/m = between-half-chain variance of
/// the means, var+ = (m-1)/m W + B/m and R-hat = sqrt(var+ / W).
/// Degenerate W == 0 (a frozen observable) counts as converged only if the
/// half-chains also agree (B == 0).
double rhat_over_window(const std::vector<std::vector<double>>& obs,
                        std::int64_t checkpoint) {
  const std::int64_t lo = checkpoint / 2;
  const std::int64_t nw = checkpoint - lo;
  const std::int64_t m = nw / 2;
  if (m < kRhatMinHalfChain) return std::numeric_limits<double>::infinity();
  const int replicas = static_cast<int>(obs.size());
  const int halves = 2 * replicas;
  // Half-chain h of replica r covers [start, start + m) with the odd
  // leftover sample (if any) dropped at the front of the window.
  const std::int64_t base = checkpoint - 2 * m;
  double w_acc = 0.0;
  double grand = 0.0;
  std::vector<double> means(static_cast<std::size_t>(halves), 0.0);
  for (int r = 0; r < replicas; ++r) {
    const auto& o = obs[static_cast<std::size_t>(r)];
    for (int h = 0; h < 2; ++h) {
      const std::int64_t start = base + h * m;
      double s = 0.0;
      for (std::int64_t t = start; t < start + m; ++t)
        s += o[static_cast<std::size_t>(t)];
      const double mean = s / static_cast<double>(m);
      means[static_cast<std::size_t>(2 * r + h)] = mean;
      grand += mean;
      double v = 0.0;
      for (std::int64_t t = start; t < start + m; ++t) {
        const double d = o[static_cast<std::size_t>(t)] - mean;
        v += d * d;
      }
      w_acc += v / static_cast<double>(m - 1);
    }
  }
  const double w_mean = w_acc / halves;
  grand /= halves;
  double b = 0.0;
  for (double mean : means) {
    const double d = mean - grand;
    b += d * d;
  }
  b *= static_cast<double>(m) / (halves - 1);
  if (w_mean <= 0.0)
    return b <= 0.0 ? 1.0 : std::numeric_limits<double>::infinity();
  const double var_plus =
      (static_cast<double>(m - 1) / static_cast<double>(m)) * w_mean +
      b / static_cast<double>(m);
  return std::sqrt(var_plus / w_mean);
}

}  // namespace

std::string_view stop_rule_name(StopRule rule) noexcept {
  switch (rule) {
    case StopRule::fixed: return "fixed";
    case StopRule::coupling: return "coupling";
    case StopRule::cftp: return "cftp";
    case StopRule::rhat: return "rhat";
    case StopRule::automatic: return "auto";
  }
  return "?";
}

std::optional<StopRule> parse_stop_rule(std::string_view name) noexcept {
  if (name == "fixed") return StopRule::fixed;
  if (name == "coupling") return StopRule::coupling;
  if (name == "cftp") return StopRule::cftp;
  if (name == "rhat") return StopRule::rhat;
  if (name == "auto" || name == "automatic") return StopRule::automatic;
  return std::nullopt;
}

std::vector<std::int64_t> checkpoint_schedule(std::int64_t first,
                                              std::int64_t max_rounds) {
  LS_REQUIRE(first >= 1, "checkpoint schedule needs first >= 1");
  LS_REQUIRE(max_rounds >= 1, "checkpoint schedule needs max_rounds >= 1");
  std::vector<std::int64_t> schedule;
  for (std::int64_t t = first; t < max_rounds; t *= 2) schedule.push_back(t);
  schedule.push_back(max_rounds);
  return schedule;
}

StopDecision coupling_fleet_stop(const CouplingPairFactory& factory,
                                 std::uint64_t base_seed,
                                 const StoppingOptions& opt) {
  LS_REQUIRE(opt.coupling_pairs >= 1,
             "coupling_fleet_stop needs >= 1 coupled pair");
  LS_REQUIRE(opt.max_rounds >= 1, "coupling_fleet_stop needs max_rounds >= 1");
  const int pairs = opt.coupling_pairs;
  const std::uint64_t diag_base = util::mix64(base_seed ^ kCouplingSeedSalt);
  std::vector<CouplingPair> fleet;
  fleet.reserve(static_cast<std::size_t>(pairs));
  for (int p = 0; p < pairs; ++p)
    fleet.push_back(
        factory(p, replica_seed(diag_base, static_cast<std::uint64_t>(p))));
  for (const auto& pair : fleet)
    LS_REQUIRE(pair.x.size() == pair.y.size(),
               "coupling pair needs configurations of equal size");
  std::vector<char> met(static_cast<std::size_t>(pairs), 0);
  ReplicaRunner runner(opt.num_threads);
  StopDecision decision;
  decision.rule = StopRule::coupling;
  std::int64_t done = 0;
  for (const std::int64_t checkpoint :
       checkpoint_schedule(opt.first_checkpoint, opt.max_rounds)) {
    // Each job touches only its own pair and met flag, so the coalescence
    // pattern — and hence the decision — is bit-identical at any thread
    // count.  A coalesced pair shares every subsequent draw and can never
    // split again, so it is not re-stepped.
    runner.run(pairs, [&](int p) {
      if (met[static_cast<std::size_t>(p)] != 0) return;
      auto& pair = fleet[static_cast<std::size_t>(p)];
      for (std::int64_t t = done; t < checkpoint; ++t)
        pair.step(pair.x, pair.y, t);
      if (pair.x == pair.y) met[static_cast<std::size_t>(p)] = 1;
    });
    done = checkpoint;
    bool all_met = true;
    for (const char f : met) all_met = all_met && f != 0;
    if (all_met) {
      decision.rounds_used = checkpoint;
      decision.converged = true;
      return decision;
    }
  }
  decision.rounds_used = opt.max_rounds;
  decision.converged = false;
  return decision;
}

bool is_hardcore_shaped(const mrf::Mrf& m) {
  if (m.q() != 2) return false;
  for (int v = 0; v < m.n(); ++v) {
    const auto b = m.vertex_activity(v);
    if (!(b[0] > 0.0) || !(b[1] > 0.0)) return false;
  }
  for (int e = 0; e < m.g().num_edges(); ++e) {
    const auto& a = m.edge_activity(e);
    if (a.at(1, 1) != 0.0) return false;
    const double base = a.at(0, 0);
    if (!(base > 0.0)) return false;
    if (a.at(0, 1) != base || a.at(1, 0) != base) return false;
  }
  return true;
}

CftpResult cftp_hardcore(const mrf::Mrf& m, std::uint64_t seed,
                         std::int64_t first_horizon,
                         std::int64_t max_horizon) {
  LS_REQUIRE(is_hardcore_shaped(m),
             "cftp_hardcore requires a hardcore-shaped model "
             "(q = 2, A = c*[[1,1],[1,0]], positive vertex activities)");
  LS_REQUIRE(first_horizon >= 1, "cftp needs first_horizon >= 1");
  LS_REQUIRE(max_horizon >= first_horizon,
             "cftp needs max_horizon >= first_horizon");
  const int n = m.n();
  // Per-vertex occupancy probability when no neighbor is occupied:
  // p_v = b_v(1) / (b_v(0) + b_v(1)) (= lambda/(1+lambda) for
  // make_hardcore).  Edge scalings cancel between the two spins.
  std::vector<double> p(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    const auto b = m.vertex_activity(v);
    p[static_cast<std::size_t>(v)] = b[1] / (b[0] + b[1]);
  }
  const graph::Graph& g = m.g();
  const util::CounterRng rng(seed);
  // Bounding-chain sandwich (Häggström–Nelander): lower chain L starts
  // empty, upper chain U fully occupied; the heat-bath update at v is
  // anti-monotone, so U updates against L's neighborhood and vice versa,
  // and every true trajectory started in between stays bracketed.  The
  // update at absolute time t for vertex v draws
  // u = rng.u01(aux, v, bits(t)); "occupied" iff u < p_v and no neighbor
  // occupied in the OTHER bound.  Keying by absolute (negative) time makes
  // the randomness reuse that CFTP's correctness requires automatic when
  // the horizon doubles.
  Config lower(static_cast<std::size_t>(n), 0);
  Config upper(static_cast<std::size_t>(n), 1);
  CftpResult result;
  for (std::int64_t horizon = first_horizon;; horizon *= 2) {
    std::fill(lower.begin(), lower.end(), 0);
    std::fill(upper.begin(), upper.end(), 1);
    for (std::int64_t t = -horizon; t < 0; ++t) {
      for (int v = 0; v < n; ++v) {
        const double u = rng.u01(util::RngDomain::aux,
                                 static_cast<std::uint64_t>(v),
                                 static_cast<std::uint64_t>(t));
        const bool want = u < p[static_cast<std::size_t>(v)];
        bool lower_neighbor_occupied = false;
        bool upper_neighbor_occupied = false;
        for (const int nbr : g.neighbors(v)) {
          if (lower[static_cast<std::size_t>(nbr)] != 0)
            lower_neighbor_occupied = true;
          if (upper[static_cast<std::size_t>(nbr)] != 0)
            upper_neighbor_occupied = true;
        }
        upper[static_cast<std::size_t>(v)] =
            want && !lower_neighbor_occupied ? 1 : 0;
        lower[static_cast<std::size_t>(v)] =
            want && !upper_neighbor_occupied ? 1 : 0;
      }
    }
    result.sweeps += horizon;
    if (lower == upper) {
      result.config = lower;
      result.horizon = horizon;
      return result;
    }
    if (horizon * 2 > max_horizon)
      throw StoppingError(
          "cftp_hardcore: sandwich still apart at the horizon cap (" +
          std::to_string(horizon) + " sweeps; cap " +
          std::to_string(max_horizon) +
          ") — the instance is likely outside the fast-coalescence regime "
          "(Theorem 1.3 territory); use a fixed budget you trust");
  }
}

StopDecision rhat_stop(const DiagnosticFactory& factory,
                       std::uint64_t base_seed, const StoppingOptions& opt) {
  LS_REQUIRE(opt.rhat_replicas >= 2, "rhat_stop needs >= 2 replicas");
  LS_REQUIRE(opt.max_rounds >= 1, "rhat_stop needs max_rounds >= 1");
  const int replicas = opt.rhat_replicas;
  const std::uint64_t diag_base = util::mix64(base_seed ^ kRhatSeedSalt);
  std::vector<DiagnosticReplica> fleet;
  fleet.reserve(static_cast<std::size_t>(replicas));
  for (int r = 0; r < replicas; ++r)
    fleet.push_back(
        factory(r, replica_seed(diag_base, static_cast<std::uint64_t>(r))));
  const std::size_t n = fleet.front().x.size();
  LS_REQUIRE(n > 0, "rhat_stop needs a non-empty configuration");
  // A fixed pseudo-random linear observable h(x) = sum_v w_v x_v with
  // w_v in [1,2): breaks spin symmetries a plain sum would be blind to,
  // and is a pure function of v, so decisions cannot drift across runs.
  std::vector<double> weights(n);
  for (std::size_t v = 0; v < n; ++v)
    weights[v] =
        1.0 + static_cast<double>(util::mix64(kObservableSalt ^ v) >> 11) *
                  0x1.0p-53;
  std::vector<std::vector<double>> obs(static_cast<std::size_t>(replicas));
  for (auto& o : obs) o.reserve(static_cast<std::size_t>(opt.max_rounds));
  ReplicaRunner runner(opt.num_threads);
  StopDecision decision;
  decision.rule = StopRule::rhat;
  std::int64_t done = 0;
  for (const std::int64_t checkpoint :
       checkpoint_schedule(opt.first_checkpoint, opt.max_rounds)) {
    // Advance every replica to the checkpoint, replica-parallel.  Each job
    // touches only its own replica and observable slot, and the per-round
    // observable is accumulated in fixed vertex order, so the recorded
    // histories are bit-identical at any thread count.
    runner.run(replicas, [&](int r) {
      auto& rep = fleet[static_cast<std::size_t>(r)];
      auto& o = obs[static_cast<std::size_t>(r)];
      for (std::int64_t t = done; t < checkpoint; ++t) {
        rep.step(rep.x, t);
        double s = 0.0;
        for (std::size_t v = 0; v < n; ++v)
          s += weights[v] * static_cast<double>(rep.x[v]);
        o.push_back(s);
      }
    });
    done = checkpoint;
    decision.diagnostic = rhat_over_window(obs, checkpoint);
    if (decision.diagnostic <= opt.rhat_threshold) {
      decision.rounds_used = checkpoint;
      decision.converged = true;
      return decision;
    }
  }
  decision.rounds_used = opt.max_rounds;
  decision.converged = false;
  return decision;
}

}  // namespace lsample::chains
