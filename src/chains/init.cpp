#include "chains/init.hpp"

#include "util/require.hpp"
#include "util/rng.hpp"

namespace lsample::chains {

mrf::Config constant_config(const mrf::Mrf& m, int s) {
  LS_REQUIRE(s >= 0 && s < m.q(), "spin out of range");
  return mrf::Config(static_cast<std::size_t>(m.n()), s);
}

mrf::Config random_config(const mrf::Mrf& m, std::uint64_t seed) {
  util::Rng rng(seed);
  mrf::Config x(static_cast<std::size_t>(m.n()));
  for (auto& s : x) s = rng.uniform_int(m.q());
  return x;
}

mrf::Config greedy_feasible_config(const mrf::Mrf& m) {
  mrf::Config x(static_cast<std::size_t>(m.n()), -1);
  for (int v = 0; v < m.n(); ++v) {
    const auto inc = m.g().incident_edges(v);
    const auto nbr = m.g().neighbors(v);
    const auto bv = m.vertex_activity(v);
    int chosen = -1;
    for (int c = 0; c < m.q() && chosen < 0; ++c) {
      if (bv[static_cast<std::size_t>(c)] <= 0.0) continue;
      bool ok = true;
      for (std::size_t i = 0; i < inc.size() && ok; ++i) {
        const int u = nbr[i];
        const int xu = x[static_cast<std::size_t>(u)];
        if (xu >= 0 && m.edge_activity(inc[i]).at(c, xu) <= 0.0) ok = false;
      }
      if (ok) chosen = c;
    }
    LS_REQUIRE(chosen >= 0,
               "greedy feasible construction got stuck; the model has no "
               "greedily constructible feasible configuration");
    x[static_cast<std::size_t>(v)] = chosen;
  }
  return x;
}

int hamming_distance(const mrf::Config& a, const mrf::Config& b) {
  LS_REQUIRE(a.size() == b.size(), "configs must have equal size");
  int d = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] != b[i]) ++d;
  return d;
}

}  // namespace lsample::chains
