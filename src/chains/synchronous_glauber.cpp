#include "chains/synchronous_glauber.hpp"

#include "chains/glauber.hpp"

namespace lsample::chains {

SynchronousGlauberChain::SynchronousGlauberChain(const mrf::Mrf& m,
                                                 std::uint64_t seed)
    : m_(m), rng_(seed) {}

void SynchronousGlauberChain::step(Config& x, std::int64_t t) {
  next_ = x;
  for (int v = 0; v < m_.n(); ++v) {
    gather_neighbor_spins(m_, v, x, nbr_spins_);
    next_[static_cast<std::size_t>(v)] = heat_bath_resample(
        m_, rng_, v, t, nbr_spins_, weights_, x[static_cast<std::size_t>(v)]);
  }
  x = next_;
}

}  // namespace lsample::chains
