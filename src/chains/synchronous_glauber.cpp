#include "chains/synchronous_glauber.hpp"

#include <utility>

#include "chains/engine.hpp"
#include "chains/kernels.hpp"
#include "util/require.hpp"

namespace lsample::chains {

SynchronousGlauberChain::SynchronousGlauberChain(const mrf::Mrf& m,
                                                 std::uint64_t seed)
    : cm_(std::make_shared<const mrf::CompiledMrf>(m)),
      rng_(seed),
      scratch_(1) {}

SynchronousGlauberChain::SynchronousGlauberChain(
    std::shared_ptr<const mrf::CompiledMrf> cm, std::uint64_t seed)
    : cm_(std::move(cm)), rng_(seed), scratch_(1) {
  LS_REQUIRE(cm_ != nullptr, "compiled view must not be null");
}

void SynchronousGlauberChain::set_engine(ParallelEngine* engine) {
  engine_ = engine;
  scratch_.resize(engine_ != nullptr
                      ? static_cast<std::size_t>(engine_->num_threads())
                      : 1);
}

void SynchronousGlauberChain::step(Config& x, std::int64_t t) {
  next_.resize(x.size());
  const auto order = cm_->order();
  LS_AUDIT_SCOPE("SynchronousGlauber.step");
  run_partitioned(engine_, cm_->n(), [&](int thread, int begin, int end) {
    auto& scratch = scratch_[static_cast<std::size_t>(thread)];
    for (int i = begin; i < end; ++i) {
      const int v = order[static_cast<std::size_t>(i)];
      LS_AUDIT_UNIT(v);
      next_[static_cast<std::size_t>(v)] =
          heat_bath_kernel(*cm_, rng_, v, t, x, scratch);
      LS_AUDIT_WRITE(next_config, v, &next_[static_cast<std::size_t>(v)],
                     sizeof(next_[0]));
    }
  });
  std::swap(x, next_);
}

}  // namespace lsample::chains
