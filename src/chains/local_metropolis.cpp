#include "chains/local_metropolis.hpp"

#include <utility>

#include "chains/engine.hpp"
#include "chains/kernels.hpp"
#include "util/require.hpp"

namespace lsample::chains {

int metropolis_proposal(const mrf::Mrf& m, const util::CounterRng& rng, int v,
                        std::int64_t t) {
  const double u = rng.u01(util::RngDomain::vertex_proposal,
                           static_cast<std::uint64_t>(v),
                           static_cast<std::uint64_t>(t));
  const int c = util::categorical(m.proposal_weights(v), u);
  LS_ASSERT(c >= 0, "vertex activity must not be identically zero");
  return c;
}

double edge_coin(const util::CounterRng& rng, int e, std::int64_t t) noexcept {
  return rng.u01(util::RngDomain::edge_coin, static_cast<std::uint64_t>(e),
                 static_cast<std::uint64_t>(t));
}

LocalMetropolisChain::LocalMetropolisChain(const mrf::Mrf& m,
                                           std::uint64_t seed)
    : cm_(std::make_shared<const mrf::CompiledMrf>(m)),
      rng_(seed),
      accepted_per_thread_(1) {}

LocalMetropolisChain::LocalMetropolisChain(
    std::shared_ptr<const mrf::CompiledMrf> cm, std::uint64_t seed)
    : cm_(std::move(cm)), rng_(seed), accepted_per_thread_(1) {
  LS_REQUIRE(cm_ != nullptr, "compiled view must not be null");
}

void LocalMetropolisChain::set_engine(ParallelEngine* engine) {
  engine_ = engine;
  accepted_per_thread_.resize(
      engine_ != nullptr ? static_cast<std::size_t>(engine_->num_threads())
                         : 1);
}

void LocalMetropolisChain::step(Config& x, std::int64_t t) {
  const int n = cm_->n();
  const auto order = cm_->order();
  proposal_.resize(static_cast<std::size_t>(n));
  {
    LS_AUDIT_SCOPE("LocalMetropolis.propose");
    run_partitioned(engine_, n, [&](int /*thread*/, int begin, int end) {
      for (int i = begin; i < end; ++i) {
        const int v = order[static_cast<std::size_t>(i)];
        LS_AUDIT_UNIT(v);
        proposal_[static_cast<std::size_t>(v)] =
            proposal_kernel(*cm_, rng_, v, t);
        LS_AUDIT_WRITE(proposal, v, &proposal_[static_cast<std::size_t>(v)],
                       sizeof(proposal_[0]));
      }
    });
  }

  // Fused filter + adopt: the accept decision reads only (proposal_, x), so
  // each vertex can write its next spin immediately — into next_, not x,
  // because other vertices' filters still read x this pass.  One barrier
  // instead of two; contents are identical to the unfused sweep.  The
  // accepted counters are integer and accumulated with += (a thread may run
  // several chunks), so the total is independent of partitioning.
  next_.resize(static_cast<std::size_t>(n));
  for (auto& c : accepted_per_thread_) c = 0;
  LS_AUDIT_SCOPE("LocalMetropolis.accept");
  run_partitioned(engine_, n, [&](int thread, int begin, int end) {
    long long accepted = 0;
    for (int i = begin; i < end; ++i) {
      const int v = order[static_cast<std::size_t>(i)];
      LS_AUDIT_UNIT(v);
      const bool a = lm_accept_kernel(*cm_, rng_, v, t, proposal_, x);
      next_[static_cast<std::size_t>(v)] =
          a ? proposal_[static_cast<std::size_t>(v)]
            : x[static_cast<std::size_t>(v)];
      LS_AUDIT_WRITE(next_config, v, &next_[static_cast<std::size_t>(v)],
                     sizeof(next_[0]));
      accepted += a ? 1 : 0;
    }
    accepted_per_thread_[static_cast<std::size_t>(thread)] += accepted;
  });
  std::swap(x, next_);
  long long accepted = 0;
  for (long long c : accepted_per_thread_) accepted += c;
  last_accept_fraction_ = n > 0 ? static_cast<double>(accepted) / n : 0.0;
}

LocalMetropolisTwoRuleChain::LocalMetropolisTwoRuleChain(const mrf::Mrf& m,
                                                         std::uint64_t seed)
    : cm_(m), rng_(seed) {
  for (int e = 0; e < m.g().num_edges(); ++e) {
    const auto& a = m.edge_activity(e);
    for (int i = 0; i < m.q(); ++i)
      for (int j = 0; j < m.q(); ++j)
        LS_REQUIRE(a.at(i, j) == 0.0 || a.at(i, j) == a.max_entry(),
                   "two-rule variant requires hard-constraint activities");
  }
}

void LocalMetropolisTwoRuleChain::set_engine(ParallelEngine* engine) {
  engine_ = engine;
}

void LocalMetropolisTwoRuleChain::step(Config& x, std::int64_t t) {
  const int n = cm_.n();
  proposal_.resize(static_cast<std::size_t>(n));
  {
    LS_AUDIT_SCOPE("LocalMetropolisTwoRule.propose");
    run_partitioned(engine_, n, [&](int /*thread*/, int begin, int end) {
      for (int v = begin; v < end; ++v) {
        LS_AUDIT_UNIT(v);
        proposal_[static_cast<std::size_t>(v)] =
            proposal_kernel(cm_, rng_, v, t);
        LS_AUDIT_WRITE(proposal, v, &proposal_[static_cast<std::size_t>(v)],
                       sizeof(proposal_[0]));
      }
    });
  }

  // Per-vertex check with only the first two rules: v rejects iff some
  // incident edge has A(sigma_v, sigma_u) = 0 or A(sigma_v, X_u) = 0.  The
  // third rule A(sigma_u, X_v) is deliberately dropped.  Fused with the
  // adopt phase through the next_ buffer, as in LocalMetropolisChain.
  next_.resize(static_cast<std::size_t>(n));
  LS_AUDIT_SCOPE("LocalMetropolisTwoRule.accept");
  run_partitioned(engine_, n, [&](int /*thread*/, int begin, int end) {
    for (int v = begin; v < end; ++v) {
      LS_AUDIT_UNIT(v);
      next_[static_cast<std::size_t>(v)] =
          lm_two_rule_accept_kernel(cm_, rng_, v, t, proposal_, x)
              ? proposal_[static_cast<std::size_t>(v)]
              : x[static_cast<std::size_t>(v)];
      LS_AUDIT_WRITE(next_config, v, &next_[static_cast<std::size_t>(v)],
                     sizeof(next_[0]));
    }
  });
  std::swap(x, next_);
}

}  // namespace lsample::chains
