#include "chains/local_metropolis.hpp"

#include "util/require.hpp"

namespace lsample::chains {

int metropolis_proposal(const mrf::Mrf& m, const util::CounterRng& rng, int v,
                        std::int64_t t) {
  const double u = rng.u01(util::RngDomain::vertex_proposal,
                           static_cast<std::uint64_t>(v),
                           static_cast<std::uint64_t>(t));
  const int c = util::categorical(m.proposal_weights(v), u);
  LS_ASSERT(c >= 0, "vertex activity must not be identically zero");
  return c;
}

double edge_coin(const util::CounterRng& rng, int e, std::int64_t t) noexcept {
  return rng.u01(util::RngDomain::edge_coin, static_cast<std::uint64_t>(e),
                 static_cast<std::uint64_t>(t));
}

LocalMetropolisChain::LocalMetropolisChain(const mrf::Mrf& m,
                                           std::uint64_t seed)
    : m_(m), rng_(seed) {}

void LocalMetropolisChain::step(Config& x, std::int64_t t) {
  const int n = m_.n();
  proposal_.resize(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v)
    proposal_[static_cast<std::size_t>(v)] =
        metropolis_proposal(m_, rng_, v, t);

  accept_.assign(static_cast<std::size_t>(n), 1);
  for (int e = 0; e < m_.g().num_edges(); ++e) {
    const graph::Edge& ed = m_.g().edge(e);
    const int su = proposal_[static_cast<std::size_t>(ed.u)];
    const int sv = proposal_[static_cast<std::size_t>(ed.v)];
    const int xu = x[static_cast<std::size_t>(ed.u)];
    const int xv = x[static_cast<std::size_t>(ed.v)];
    const double p = m_.edge_pass_prob(e, su, sv, xu, xv);
    // One shared coin per edge per step, as in the paper.
    const bool pass = edge_coin(rng_, e, t) < p;
    if (!pass) {
      accept_[static_cast<std::size_t>(ed.u)] = 0;
      accept_[static_cast<std::size_t>(ed.v)] = 0;
    }
  }

  int accepted = 0;
  for (int v = 0; v < n; ++v)
    if (accept_[static_cast<std::size_t>(v)] != 0) {
      x[static_cast<std::size_t>(v)] = proposal_[static_cast<std::size_t>(v)];
      ++accepted;
    }
  last_accept_fraction_ = n > 0 ? static_cast<double>(accepted) / n : 0.0;
}

LocalMetropolisTwoRuleChain::LocalMetropolisTwoRuleChain(const mrf::Mrf& m,
                                                         std::uint64_t seed)
    : m_(m), rng_(seed) {
  for (int e = 0; e < m.g().num_edges(); ++e) {
    const auto& a = m.edge_activity(e);
    for (int i = 0; i < m.q(); ++i)
      for (int j = 0; j < m.q(); ++j)
        LS_REQUIRE(a.at(i, j) == 0.0 || a.at(i, j) == a.max_entry(),
                   "two-rule variant requires hard-constraint activities");
  }
}

void LocalMetropolisTwoRuleChain::step(Config& x, std::int64_t t) {
  const int n = m_.n();
  proposal_.resize(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v)
    proposal_[static_cast<std::size_t>(v)] =
        metropolis_proposal(m_, rng_, v, t);

  // Per-vertex check with only the first two rules: v rejects iff some
  // incident edge has A(sigma_v, sigma_u) = 0 or A(sigma_v, X_u) = 0.  The
  // third rule A(sigma_u, X_v) is deliberately dropped.
  accept_.assign(static_cast<std::size_t>(n), 1);
  for (int v = 0; v < n; ++v) {
    const auto inc = m_.g().incident_edges(v);
    const auto nbr = m_.g().neighbors(v);
    const int sv = proposal_[static_cast<std::size_t>(v)];
    for (std::size_t i = 0; i < inc.size(); ++i) {
      const auto& a = m_.edge_activity(inc[i]);
      const int su = proposal_[static_cast<std::size_t>(nbr[i])];
      const int xu = x[static_cast<std::size_t>(nbr[i])];
      if (a.at(sv, su) == 0.0 || a.at(sv, xu) == 0.0) {
        accept_[static_cast<std::size_t>(v)] = 0;
        break;
      }
    }
  }
  for (int v = 0; v < n; ++v)
    if (accept_[static_cast<std::size_t>(v)] != 0)
      x[static_cast<std::size_t>(v)] = proposal_[static_cast<std::size_t>(v)];
}

}  // namespace lsample::chains
