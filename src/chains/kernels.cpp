#include "chains/kernels.hpp"

#include "chains/glauber.hpp"
#include "chains/local_metropolis.hpp"
#include "chains/write_audit.hpp"
#include "util/require.hpp"

namespace lsample::chains {

int heat_bath_kernel(const mrf::CompiledMrf& cm, const util::CounterRng& rng,
                     int v, std::int64_t t, const Config& x,
                     std::vector<double>& scratch) {
  // marginal_weights reads the neighbors' current spins; declaring the reads
  // is what lets the auditor catch a scheduler whose selected set is not
  // independent (a selected neighbor's same-epoch write would conflict).
  LS_AUDIT_ONLY(for (const int u : cm.neighbor_row(v)) LS_AUDIT_READ(
      config, u, &x[static_cast<std::size_t>(u)], sizeof(x[0])););
  cm.marginal_weights(v, x, scratch);
  const int c =
      shared_stream_sample(scratch, rng, util::RngDomain::vertex_update,
                           static_cast<std::uint64_t>(v), t);
  // Zero marginal: keep the current spin, as heat_bath_resample does.
  return c >= 0 ? c : x[static_cast<std::size_t>(v)];
}

int proposal_kernel(const mrf::CompiledMrf& cm, const util::CounterRng& rng,
                    int v, std::int64_t t) {
  const double u = rng.u01(util::RngDomain::vertex_proposal,
                           static_cast<std::uint64_t>(v),
                           static_cast<std::uint64_t>(t));
  const int c = util::categorical(cm.proposal_weights(v), u);
  LS_ASSERT(c >= 0, "vertex activity must not be identically zero");
  return c;
}

bool lm_accept_kernel(const mrf::CompiledMrf& cm, const util::CounterRng& rng,
                      int v, std::int64_t t, const Config& proposal,
                      const Config& x) {
  // Rows come from the cache-aware layout; per-row edge order matches the
  // graph's insertion order, so the coins are checked in the same sequence
  // as the seed chain (and the early exit skips only pure, keyed draws —
  // skipping them changes nothing downstream).
  LS_AUDIT_ONLY(for (const int u : cm.neighbor_row(v)) {
    LS_AUDIT_READ(proposal, u, &proposal[static_cast<std::size_t>(u)],
                  sizeof(proposal[0]));
    LS_AUDIT_READ(config, u, &x[static_cast<std::size_t>(u)], sizeof(x[0]));
  });
  for (const int e : cm.incident_row(v)) {
    const int eu = cm.edge_u(e);
    const int ev = cm.edge_v(e);
    const double p = cm.edge_pass_prob(e, proposal[static_cast<std::size_t>(eu)],
                                       proposal[static_cast<std::size_t>(ev)],
                                       x[static_cast<std::size_t>(eu)],
                                       x[static_cast<std::size_t>(ev)]);
    if (!(edge_coin(rng, e, t) < p)) return false;
  }
  return true;
}

bool lm_two_rule_accept_kernel(const mrf::CompiledMrf& cm,
                               const util::CounterRng& /*rng*/, int v,
                               std::int64_t /*t*/, const Config& proposal,
                               const Config& x) {
  // The two-rule filter is deterministic given hard-constraint activities;
  // rng and t stay in the signature to mirror lm_accept_kernel.
  const auto inc = cm.incident_row(v);
  const auto nbr = cm.neighbor_row(v);
  LS_AUDIT_ONLY(for (const int u : nbr) {
    LS_AUDIT_READ(proposal, u, &proposal[static_cast<std::size_t>(u)],
                  sizeof(proposal[0]));
    LS_AUDIT_READ(config, u, &x[static_cast<std::size_t>(u)], sizeof(x[0]));
  });
  const std::size_t q = static_cast<std::size_t>(cm.q());
  const int sv = proposal[static_cast<std::size_t>(v)];
  for (std::size_t i = 0; i < inc.size(); ++i) {
    const int e = inc[i];
    const int u = nbr[i];
    const double* row = cm.table(e).data() + static_cast<std::size_t>(sv) * q;
    if (row[static_cast<std::size_t>(
            proposal[static_cast<std::size_t>(u)])] == 0.0 ||
        row[static_cast<std::size_t>(x[static_cast<std::size_t>(u)])] == 0.0)
      return false;
  }
  return true;
}

}  // namespace lsample::chains
