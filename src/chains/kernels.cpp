#include "chains/kernels.hpp"

#include "chains/glauber.hpp"
#include "chains/local_metropolis.hpp"
#include "util/require.hpp"

namespace lsample::chains {

int heat_bath_kernel(const mrf::CompiledMrf& cm, const util::CounterRng& rng,
                     int v, std::int64_t t, const Config& x,
                     std::vector<double>& scratch) {
  cm.marginal_weights(v, x, scratch);
  const int c =
      shared_stream_sample(scratch, rng, util::RngDomain::vertex_update,
                           static_cast<std::uint64_t>(v), t);
  // Zero marginal: keep the current spin, as heat_bath_resample does.
  return c >= 0 ? c : x[static_cast<std::size_t>(v)];
}

int proposal_kernel(const mrf::CompiledMrf& cm, const util::CounterRng& rng,
                    int v, std::int64_t t) {
  const double u = rng.u01(util::RngDomain::vertex_proposal,
                           static_cast<std::uint64_t>(v),
                           static_cast<std::uint64_t>(t));
  const int c = util::categorical(cm.proposal_weights(v), u);
  LS_ASSERT(c >= 0, "vertex activity must not be identically zero");
  return c;
}

bool lm_accept_kernel(const mrf::CompiledMrf& cm, const util::CounterRng& rng,
                      int v, std::int64_t t, const Config& proposal,
                      const Config& x) {
  const auto off = cm.csr_offsets();
  const auto inc = cm.incident_edges_flat();
  const int begin = off[static_cast<std::size_t>(v)];
  const int end = off[static_cast<std::size_t>(v) + 1];
  for (int i = begin; i < end; ++i) {
    const int e = inc[static_cast<std::size_t>(i)];
    const int eu = cm.edge_u(e);
    const int ev = cm.edge_v(e);
    const double p = cm.edge_pass_prob(e, proposal[static_cast<std::size_t>(eu)],
                                       proposal[static_cast<std::size_t>(ev)],
                                       x[static_cast<std::size_t>(eu)],
                                       x[static_cast<std::size_t>(ev)]);
    if (!(edge_coin(rng, e, t) < p)) return false;
  }
  return true;
}

bool lm_two_rule_accept_kernel(const mrf::CompiledMrf& cm,
                               const util::CounterRng& /*rng*/, int v,
                               std::int64_t /*t*/, const Config& proposal,
                               const Config& x) {
  // The two-rule filter is deterministic given hard-constraint activities;
  // rng and t stay in the signature to mirror lm_accept_kernel.
  const auto off = cm.csr_offsets();
  const auto inc = cm.incident_edges_flat();
  const auto nbr = cm.neighbors_flat();
  const std::size_t q = static_cast<std::size_t>(cm.q());
  const int sv = proposal[static_cast<std::size_t>(v)];
  const int begin = off[static_cast<std::size_t>(v)];
  const int end = off[static_cast<std::size_t>(v) + 1];
  for (int i = begin; i < end; ++i) {
    const int e = inc[static_cast<std::size_t>(i)];
    const int u = nbr[static_cast<std::size_t>(i)];
    const double* row = cm.table(e).data() + static_cast<std::size_t>(sv) * q;
    if (row[static_cast<std::size_t>(
            proposal[static_cast<std::size_t>(u)])] == 0.0 ||
        row[static_cast<std::size_t>(x[static_cast<std::size_t>(u)])] == 0.0)
      return false;
  }
  return true;
}

}  // namespace lsample::chains
