#include "chains/luby_glauber.hpp"

#include "chains/glauber.hpp"
#include "util/require.hpp"

namespace lsample::chains {

LubyGlauberChain::LubyGlauberChain(const mrf::Mrf& m, std::uint64_t seed)
    : LubyGlauberChain(m, seed,
                       std::make_unique<LubyScheduler>(m.graph_ptr(), seed)) {}

LubyGlauberChain::LubyGlauberChain(
    const mrf::Mrf& m, std::uint64_t seed,
    std::unique_ptr<IndependentSetScheduler> scheduler)
    : m_(m), rng_(seed), scheduler_(std::move(scheduler)) {
  LS_REQUIRE(scheduler_ != nullptr, "scheduler must not be null");
}

void LubyGlauberChain::step(Config& x, std::int64_t t) {
  scheduler_->select(t, selected_);
  LS_ASSERT(selected_.size() == static_cast<std::size_t>(m_.n()),
            "scheduler produced wrong-size selection");
  // The selected set is independent, so updating in place is equivalent to
  // the parallel update: no resampled vertex reads another resampled vertex.
  for (int v = 0; v < m_.n(); ++v) {
    if (selected_[static_cast<std::size_t>(v)] == 0) continue;
    gather_neighbor_spins(m_, v, x, nbr_spins_);
    x[static_cast<std::size_t>(v)] = heat_bath_resample(
        m_, rng_, v, t, nbr_spins_, weights_, x[static_cast<std::size_t>(v)]);
  }
}

double LubyGlauberChain::updates_per_step() const noexcept {
  return scheduler_->gamma_lower_bound() * m_.n();
}

}  // namespace lsample::chains
