#include "chains/luby_glauber.hpp"

#include "chains/engine.hpp"
#include "chains/kernels.hpp"
#include "util/require.hpp"

namespace lsample::chains {

LubyGlauberChain::LubyGlauberChain(const mrf::Mrf& m, std::uint64_t seed)
    : LubyGlauberChain(m, seed,
                       std::make_unique<LubyScheduler>(m.graph_ptr(), seed)) {}

LubyGlauberChain::LubyGlauberChain(
    const mrf::Mrf& m, std::uint64_t seed,
    std::unique_ptr<IndependentSetScheduler> scheduler)
    : cm_(std::make_shared<const mrf::CompiledMrf>(m)),
      rng_(seed),
      scheduler_(std::move(scheduler)),
      scratch_(1) {
  LS_REQUIRE(scheduler_ != nullptr, "scheduler must not be null");
}

LubyGlauberChain::LubyGlauberChain(std::shared_ptr<const mrf::CompiledMrf> cm,
                                   std::uint64_t seed)
    : cm_(std::move(cm)), rng_(seed), scratch_(1) {
  LS_REQUIRE(cm_ != nullptr, "compiled view must not be null");
  scheduler_ =
      std::make_unique<LubyScheduler>(cm_->mrf().graph_ptr(), seed);
}

void LubyGlauberChain::set_engine(ParallelEngine* engine) {
  engine_ = engine;
  scheduler_->set_engine(engine);
  scratch_.resize(engine_ != nullptr
                      ? static_cast<std::size_t>(engine_->num_threads())
                      : 1);
}

void LubyGlauberChain::step(Config& x, std::int64_t t) {
  const int n = cm_->n();
  // Fused round: prepare(t) draws the scheduler's randomness (at most one
  // barrier), then ONE pass both evaluates the membership predicate and
  // resamples — in_set reads only prepare's state, and the selected set is
  // independent, so no resampled vertex reads another resampled vertex and
  // the in-place parallel update equals the paper's synchronous one.
  scheduler_->prepare(t);
  selected_.resize(static_cast<std::size_t>(n));
  const auto order = cm_->order();
  LS_AUDIT_SCOPE("LubyGlauber.step");
  run_partitioned(engine_, n, [&](int thread, int begin, int end) {
    auto& scratch = scratch_[static_cast<std::size_t>(thread)];
    for (int i = begin; i < end; ++i) {
      const int v = order[static_cast<std::size_t>(i)];
      LS_AUDIT_UNIT(v);
      const char s = scheduler_->in_set(v) ? 1 : 0;
      selected_[static_cast<std::size_t>(v)] = s;
      LS_AUDIT_WRITE(selected, v, &selected_[static_cast<std::size_t>(v)],
                     sizeof(char));
      if (s != 0) {
        x[static_cast<std::size_t>(v)] =
            heat_bath_kernel(*cm_, rng_, v, t, x, scratch);
        // The in-place update is legal exactly because the selected set is
        // independent; declaring the write lets the auditor prove it against
        // the kernel's declared neighbor reads.
        LS_AUDIT_WRITE(config, v, &x[static_cast<std::size_t>(v)],
                       sizeof(x[0]));
      }
    }
  });
}

double LubyGlauberChain::updates_per_step() const noexcept {
  return scheduler_->gamma_lower_bound() * cm_->n();
}

}  // namespace lsample::chains
