// ParallelEngine — a persistent thread pool that partitions each round's
// active vertex set across threads.
//
// Determinism contract: parallel_for(n, fn) invokes fn(thread, begin, end)
// over a static contiguous partition of [0, n).  The engine never reorders,
// splits dynamically, or work-steals, and the library's chains only pass
// body functions where iteration i writes slot i from inputs fixed before
// the call (the previous round's configuration plus counter-RNG draws keyed
// by (i, t)).  Under that discipline the result is bit-identical to the
// sequential loop at ANY thread count — which is exactly the "fully parallel
// round" semantics of the paper's Algorithms 1 and 2, and what the
// determinism tests assert.
//
// Job bodies may throw (the LOCAL-model runtime maps user node programs over
// vertices, and their precondition checks are exceptions): parallel_for
// catches on each worker, waits for the full barrier, and rethrows the
// lowest-thread-index exception on the caller, so a throwing job can never
// std::terminate a worker or unwind past the barrier while threads run.
//
// The pool is persistent: workers are spawned once and parked on a condition
// variable between rounds, so a step() costs two notifications, not T thread
// spawns.  The calling thread participates as thread 0.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lsample::chains {

class ParallelEngine {
 public:
  /// Spawns num_threads - 1 workers (the caller is thread 0).
  /// num_threads must be >= 1.
  explicit ParallelEngine(int num_threads);
  ~ParallelEngine();

  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;

  [[nodiscard]] int num_threads() const noexcept { return num_threads_; }

  /// Runs fn(thread, begin, end) for thread = 0..T-1 over the static
  /// partition [floor(n*thread/T), floor(n*(thread+1)/T)); returns after all
  /// threads finish.  With one thread (or n == 0) this is a plain call on the
  /// caller.  If any invocation throws, the exception of the lowest thread
  /// index is rethrown here after every thread reached the barrier.  Not
  /// reentrant: fn must not call parallel_for on this engine.
  void parallel_for(int n, const std::function<void(int, int, int)>& fn);

  /// std::thread::hardware_concurrency with a floor of 1.
  [[nodiscard]] static int hardware_threads() noexcept;

 private:
  void worker_loop(int thread);
  [[nodiscard]] static int slice_begin(int n, int thread, int threads) noexcept {
    return static_cast<int>(static_cast<long long>(n) * thread / threads);
  }

  int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int, int, int)>* job_ = nullptr;
  int job_n_ = 0;
  std::uint64_t generation_ = 0;
  int pending_ = 0;
  bool shutdown_ = false;
  // One slot per thread; written only by that thread during a job, read by
  // the caller after the barrier (the pending_-mutex handoff orders both).
  std::vector<std::exception_ptr> errors_;
};

/// Runs fn over [0, n): through the engine when one is attached, as a plain
/// sequential call otherwise.  The single dispatch point the chains use, so
/// "no engine" and "engine with one thread" are the same code path.
inline void run_partitioned(ParallelEngine* engine, int n,
                            const std::function<void(int, int, int)>& fn) {
  if (engine != nullptr) {
    engine->parallel_for(n, fn);
  } else if (n > 0) {
    fn(0, 0, n);
  }
}

}  // namespace lsample::chains
