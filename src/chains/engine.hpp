// ParallelEngine — a persistent thread pool that partitions each round's
// active vertex set across threads.
//
// Determinism contract: parallel_for(n, fn) invokes fn(thread, begin, end)
// over chunks that exactly tile [0, n).  Chunk boundaries are a fixed
// function of n and the thread count; WHICH thread runs a chunk is decided
// dynamically by an atomic cursor.  The library's chains only pass body
// functions where iteration i writes slot i from inputs fixed before the
// call (the previous round's configuration plus counter-RNG draws keyed by
// (i, t)), so the result is independent of the chunk-to-thread assignment
// and bit-identical to the sequential loop at ANY thread count — exactly
// the "fully parallel round" semantics of the paper's Algorithms 1 and 2,
// and what the determinism tests assert.  Per-thread accumulators (the
// `thread` argument) may be visited for several chunks per round, so bodies
// must combine with `+=`-style updates, never `=`.
//
// Hand-off is a generation-counter barrier, not a mutex/condvar pair: the
// caller publishes the job in a fixed slot (raw function pointer + context
// pointer — no std::function, no per-call allocation), bumps an atomic
// generation and notifies; workers spin briefly on the generation and then
// park in std::atomic::wait (a futex on Linux).  Completion is an atomic
// countdown the caller spins/waits on.  A round therefore costs two futex
// words in the common case, with zero heap traffic.
//
// Job bodies may throw (the LOCAL-model runtime maps user node programs
// over vertices, and their precondition checks are exceptions): each chunk
// runs under a catch-all that stores into a preallocated per-thread error
// slot and stops that round's remaining chunks; after the barrier the
// caller rethrows the lowest-thread-index exception.  A throwing job can
// never std::terminate a worker or unwind past the barrier while threads
// run.
//
// The calling thread participates as thread 0 and drains chunks like any
// worker.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>
#include <thread>
#include <vector>

#include "chains/write_audit.hpp"

namespace lsample::chains {

class ParallelEngine {
 public:
  /// Spawns num_threads - 1 workers (the caller is thread 0).
  /// num_threads must be >= 1.
  explicit ParallelEngine(int num_threads);
  ~ParallelEngine();

  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;

  [[nodiscard]] int num_threads() const noexcept { return num_threads_; }

  /// Runs fn(thread, begin, end) over chunks tiling [0, n); returns after
  /// all threads finish.  With one thread (or n <= 0) this is a plain call
  /// on the caller.  fn must be const-invocable; a given thread index may
  /// receive several (begin, end) chunks per call.  If any invocation
  /// throws, the exception of the lowest thread index is rethrown here
  /// after every thread reached the barrier.  Not reentrant: fn must not
  /// call parallel_for on this engine.
  template <typename F>
  void parallel_for(int n, const F& fn) {
    if (n <= 0) return;
#if defined(LSAMPLE_AUDIT)
    if (audit::enabled()) {
      // Audited dispatch: per-thread recording buffers are installed for the
      // round and the write/read sets are verified at the closing barrier.
      dispatch_audited(n, std::addressof(fn),
                       [](const void* ctx, int thread, int begin, int end) {
                         (*static_cast<const F*>(ctx))(thread, begin, end);
                       });
      return;
    }
#endif
    if (num_threads_ == 1) {
      fn(0, 0, n);  // exceptions propagate directly on the caller
      return;
    }
    dispatch(n, std::addressof(fn),
             [](const void* ctx, int thread, int begin, int end) {
               (*static_cast<const F*>(ctx))(thread, begin, end);
             });
  }

  /// std::thread::hardware_concurrency with a floor of 1.
  [[nodiscard]] static int hardware_threads() noexcept;

 private:
  using RawFn = void (*)(const void* ctx, int thread, int begin, int end);

  void worker_loop(int thread);
  // Publishes the job, runs the barrier round, rethrows errors.
  void dispatch(int n, const void* ctx, RawFn fn);
#if defined(LSAMPLE_AUDIT)
  // dispatch plus write-set recording and the closing-barrier ownership
  // check; throws audit::AuditError on a violation.
  void dispatch_audited(int n, const void* ctx, RawFn fn);
#endif
  // Drains chunks from cursor_ as the given thread; never throws (errors
  // land in errors_[thread]).
  void drain(int thread) noexcept;

  int num_threads_;
  std::vector<std::thread> workers_;

  // Job slot: written by the caller before the generation bump, read by
  // workers after they observe the new generation (release/acquire on
  // generation_ orders the plain fields).
  const void* job_ctx_ = nullptr;
  RawFn job_fn_ = nullptr;
  int job_n_ = 0;
  int chunk_ = 1;
  bool shutdown_ = false;

  // Hot atomics on separate cache lines: generation_ is the start barrier
  // workers spin/wait on, cursor_ is contended by every chunk claim, and
  // pending_ is the completion countdown the caller spins/waits on.
  alignas(64) std::atomic<std::uint64_t> generation_{0};
  alignas(64) std::atomic<int> cursor_{0};
  alignas(64) std::atomic<std::uint32_t> pending_{0};

  // One slot per thread; written only by that thread during a job, read by
  // the caller after the barrier (pending_ release/acquire orders both).
  // Preallocated in the constructor — steady-state rounds never touch the
  // allocator.
  std::vector<std::exception_ptr> errors_;
  std::atomic<bool> has_error_{false};

#if defined(LSAMPLE_AUDIT)
  // Lazily created per-thread recording buffers; audit_active_ is a plain
  // job field (published by the generation bump, like job_fn_) telling
  // drain() to install this round's buffer on its thread.
  std::unique_ptr<audit::EpochContext> audit_ctx_;
  bool audit_active_ = false;
#endif
};

/// Runs fn over [0, n): through the engine when one is attached, as a plain
/// sequential call otherwise.  The single dispatch point the chains use, so
/// "no engine" and "engine with one thread" are the same code path.
template <typename F>
inline void run_partitioned(ParallelEngine* engine, int n, const F& fn) {
  if (engine != nullptr) {
    engine->parallel_for(n, fn);
    return;
  }
  if (n <= 0) return;
#if defined(LSAMPLE_AUDIT)
  if (audit::enabled()) {
    // The engine-less path is still one barrier epoch: the ownership
    // discipline must hold whether or not threads happen to be attached,
    // so sequential runs audit (and fail) exactly like parallel ones.
    audit::SequentialEpoch epoch;
    fn(0, 0, n);
    epoch.check();
    return;
  }
#endif
  fn(0, 0, n);
}

}  // namespace lsample::chains
