#include "chains/write_audit.hpp"

#include <algorithm>
#include <atomic>
#include <sstream>

namespace lsample::chains::audit {

const char* region_name(Region r) noexcept {
  switch (r) {
    case Region::config: return "config";
    case Region::next_config: return "next_config";
    case Region::proposal: return "proposal";
    case Region::selected: return "selected";
    case Region::scheduler: return "scheduler";
    case Region::arena_words: return "arena_words";
    case Region::arena_meta: return "arena_meta";
    case Region::halo: return "halo";
    case Region::program_state: return "program_state";
    case Region::other: return "other";
  }
  return "?";
}

#if defined(LSAMPLE_AUDIT)

namespace detail {
thread_local Buffer* tl_buf = nullptr;
thread_local std::int64_t tl_unit = -1;
thread_local const char* tl_label = "";
}  // namespace detail

namespace {

std::atomic<bool> g_enabled{false};
std::atomic<std::uint64_t> g_epochs{0};
std::atomic<std::uint64_t> g_writes{0};
std::atomic<std::uint64_t> g_reads{0};

[[noreturn]] void throw_conflict(const char* label, const char* kind,
                                 const Entry& a, const Entry& b) {
  // a is the read (or second write), b the conflicting write.
  std::ostringstream os;
  os << "determinism audit [" << (label != nullptr && *label != '\0'
                                      ? label
                                      : "unlabeled epoch")
     << "]: " << kind << ": unit " << a.unit << ' '
     << (a.is_write ? "wrote" : "read") << ' ' << region_name(a.region) << '['
     << a.index << "] while unit " << b.unit << " wrote "
     << region_name(b.region) << '[' << b.index
     << "] in the same barrier epoch";
  if (!a.is_write)
    os << " — reads of shared state must resolve to the previous epoch's "
          "snapshot";
  else
    os << " — write sets of parallel units must be pairwise disjoint";
  throw AuditError(os.str());
}

}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

Totals totals() noexcept {
  return {g_epochs.load(std::memory_order_relaxed),
          g_writes.load(std::memory_order_relaxed),
          g_reads.load(std::memory_order_relaxed)};
}

void reset_totals() noexcept {
  g_epochs.store(0, std::memory_order_relaxed);
  g_writes.store(0, std::memory_order_relaxed);
  g_reads.store(0, std::memory_order_relaxed);
}

const char* current_label() noexcept { return detail::tl_label; }

EpochContext::EpochContext(int num_threads)
    : buffers_(static_cast<std::size_t>(num_threads)) {}

void EpochContext::begin() noexcept { label_ = detail::tl_label; }

void EpochContext::abandon() noexcept {
  for (auto& b : buffers_) b.entries.clear();
}

void EpochContext::check_and_clear() {
  writes_.clear();
  reads_.clear();
  for (auto& b : buffers_) {
    for (const Entry& e : b.entries) (e.is_write ? writes_ : reads_).push_back(e);
    b.entries.clear();
  }
  g_epochs.fetch_add(1, std::memory_order_relaxed);
  g_writes.fetch_add(writes_.size(), std::memory_order_relaxed);
  g_reads.fetch_add(reads_.size(), std::memory_order_relaxed);
  if (writes_.empty()) return;  // reads of stable state can never conflict

  // The verdict must be a pure function of the SET of declared accesses, so
  // sort the merged (schedule-ordered) entries into a canonical order first.
  const auto canon = [](const Entry& x, const Entry& y) {
    if (x.addr != y.addr) return x.addr < y.addr;
    if (x.unit != y.unit) return x.unit < y.unit;
    return x.bytes < y.bytes;
  };
  std::sort(writes_.begin(), writes_.end(), canon);

  // (1) write/write disjointness: sweep the sorted ranges, carrying the
  // interval with the furthest end seen so far.  Any range starting inside
  // the carried interval under a different unit is a conflict.
  {
    const Entry* cur = &writes_.front();
    std::uintptr_t cur_end = cur->addr + cur->bytes;
    for (std::size_t i = 1; i < writes_.size(); ++i) {
      const Entry& w = writes_[i];
      if (w.addr < cur_end && w.unit != cur->unit)
        throw_conflict(label_, "write/write overlap", w, *cur);
      if (w.addr + w.bytes >= cur_end) {
        cur = &w;
        cur_end = w.addr + w.bytes;
      }
    }
  }

  // (2) read/write conflicts: for each read, look for a write range of a
  // DIFFERENT unit overlapping it.  pmax_[i] = max end over writes_[0..i]
  // turns "does any earlier-starting write reach into this read?" into one
  // comparison; only actual overlaps walk backwards (same-unit overlaps are
  // legal and skipped — a unit may re-read its own writes).
  pmax_.resize(writes_.size());
  std::uintptr_t run = 0;
  for (std::size_t i = 0; i < writes_.size(); ++i) {
    run = std::max(run, writes_[i].addr + writes_[i].bytes);
    pmax_[i] = run;
  }
  for (const Entry& r : reads_) {
    // First write starting at or beyond the read's end: candidates are
    // strictly before it.
    auto it = std::lower_bound(
        writes_.begin(), writes_.end(), r.addr + r.bytes,
        [](const Entry& w, std::uintptr_t end) { return w.addr < end; });
    if (it == writes_.begin()) continue;
    std::size_t j = static_cast<std::size_t>(it - writes_.begin());
    while (j-- > 0) {
      if (pmax_[j] <= r.addr) break;  // nothing at or before j reaches r
      const Entry& w = writes_[j];
      if (w.addr + w.bytes > r.addr && w.unit != r.unit)
        throw_conflict(label_, "read of concurrently written state", r, w);
    }
  }
}

#endif  // LSAMPLE_AUDIT

}  // namespace lsample::chains::audit
