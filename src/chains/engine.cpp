#include "chains/engine.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace lsample::chains {

ParallelEngine::ParallelEngine(int num_threads) : num_threads_(num_threads) {
  LS_REQUIRE(num_threads >= 1, "engine needs at least one thread");
  workers_.reserve(static_cast<std::size_t>(num_threads_ - 1));
  for (int i = 1; i < num_threads_; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ParallelEngine::~ParallelEngine() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

int ParallelEngine::hardware_threads() noexcept {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ParallelEngine::parallel_for(int n,
                                  const std::function<void(int, int, int)>& fn) {
  if (n <= 0) return;
  if (num_threads_ == 1) {
    fn(0, 0, n);  // exceptions propagate directly on the caller
    return;
  }
  errors_.assign(static_cast<std::size_t>(num_threads_), nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    job_n_ = n;
    pending_ = num_threads_ - 1;
    ++generation_;
  }
  start_cv_.notify_all();
  try {
    fn(0, 0, slice_begin(n, 1, num_threads_));
  } catch (...) {
    errors_[0] = std::current_exception();
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return pending_ == 0; });
    job_ = nullptr;
  }
  for (auto& e : errors_) {
    if (e != nullptr) {
      const std::exception_ptr err = e;
      errors_.clear();
      std::rethrow_exception(err);
    }
  }
}

void ParallelEngine::worker_loop(int thread) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(int, int, int)>* job;
    int n;
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock,
                     [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      job = job_;
      n = job_n_;
    }
    try {
      (*job)(thread, slice_begin(n, thread, num_threads_),
             slice_begin(n, thread + 1, num_threads_));
    } catch (...) {
      errors_[static_cast<std::size_t>(thread)] = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) done_cv_.notify_one();
    }
  }
}

}  // namespace lsample::chains
