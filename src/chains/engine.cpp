#include "chains/engine.hpp"

#include <algorithm>
#include <optional>

#include "util/require.hpp"

namespace lsample::chains {
namespace {

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#endif
}

// Bounded spin before parking in std::atomic::wait.  A few thousand pause
// iterations (~1-2 us) cover the inter-phase gap of a chain round on
// multicore hardware; past that the futex wake cost is the cheaper option
// (and the only sane one on an oversubscribed core).
constexpr int kSpinIters = 1 << 12;

}  // namespace

ParallelEngine::ParallelEngine(int num_threads) : num_threads_(num_threads) {
  LS_REQUIRE(num_threads >= 1, "engine needs at least one thread");
  errors_.assign(static_cast<std::size_t>(num_threads_), nullptr);
  workers_.reserve(static_cast<std::size_t>(num_threads_ - 1));
  for (int i = 1; i < num_threads_; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ParallelEngine::~ParallelEngine() {
  shutdown_ = true;
  generation_.fetch_add(1, std::memory_order_release);
  generation_.notify_all();
  for (auto& w : workers_) w.join();
}

int ParallelEngine::hardware_threads() noexcept {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ParallelEngine::drain(int thread) noexcept {
  const int n = job_n_;
  const int chunk = chunk_;
  const RawFn fn = job_fn_;
  const void* ctx = job_ctx_;
#if defined(LSAMPLE_AUDIT)
  // Audited rounds record into this thread's epoch buffer; the scope restores
  // any enclosing buffer when the round's chunks are drained.
  std::optional<audit::BufferScope> audit_scope;
  if (audit_active_) audit_scope.emplace(audit_ctx_->buffer(thread));
#endif
  for (;;) {
    // After a throw anywhere, skip the round's remaining chunks: the caller
    // is about to rethrow, so partial results are dead anyway.
    if (has_error_.load(std::memory_order_relaxed)) return;
    const int begin = cursor_.fetch_add(chunk, std::memory_order_relaxed);
    if (begin >= n) return;
    const int end = std::min(n, begin + chunk);
    try {
      fn(ctx, thread, begin, end);
    } catch (...) {
      errors_[static_cast<std::size_t>(thread)] = std::current_exception();
      has_error_.store(true, std::memory_order_relaxed);
    }
  }
}

void ParallelEngine::dispatch(int n, const void* ctx, RawFn fn) {
  job_ctx_ = ctx;
  job_fn_ = fn;
  job_n_ = n;
  // Chunks small enough that dynamic assignment load-balances uneven
  // per-vertex work, large enough that the cursor is claimed O(8T) times
  // per round.  Boundaries depend only on (n, T), never on timing.
  chunk_ = std::max(1, n / (num_threads_ * 8));
  cursor_.store(0, std::memory_order_relaxed);
  pending_.store(static_cast<std::uint32_t>(num_threads_ - 1),
                 std::memory_order_relaxed);
  // Release-publishes every plain job field to workers that acquire the new
  // generation value.
  generation_.fetch_add(1, std::memory_order_release);
  generation_.notify_all();

  drain(0);  // caller participates as thread 0

  // Completion barrier: spin briefly, then park on the countdown word.
  std::uint32_t left = pending_.load(std::memory_order_acquire);
  int spins = kSpinIters;
  while (left != 0) {
    if (spins-- > 0) {
      cpu_relax();
    } else {
      pending_.wait(left, std::memory_order_acquire);
    }
    left = pending_.load(std::memory_order_acquire);
  }

  if (has_error_.load(std::memory_order_relaxed)) {
    has_error_.store(false, std::memory_order_relaxed);
    std::exception_ptr err;
    for (auto& e : errors_) {
      if (e != nullptr) {
        if (err == nullptr) err = e;
        e = nullptr;  // leave the preallocated slots clean for the next round
      }
    }
    std::rethrow_exception(err);
  }
}

#if defined(LSAMPLE_AUDIT)
void ParallelEngine::dispatch_audited(int n, const void* ctx, RawFn fn) {
  if (audit_ctx_ == nullptr)
    audit_ctx_ = std::make_unique<audit::EpochContext>(num_threads_);
  audit_ctx_->begin();
  if (num_threads_ == 1) {
    audit::BufferScope scope(audit_ctx_->buffer(0));
    try {
      fn(ctx, 0, 0, n);
    } catch (...) {
      audit_ctx_->abandon();
      throw;
    }
  } else {
    audit_active_ = true;  // published to workers by the generation bump
    try {
      dispatch(n, ctx, fn);
    } catch (...) {
      audit_active_ = false;
      audit_ctx_->abandon();
      throw;
    }
    audit_active_ = false;
  }
  // Workers are quiescent after the completion barrier, so the merge reads
  // their buffers race-free.  Throws AuditError naming the conflict.
  audit_ctx_->check_and_clear();
}
#endif

void ParallelEngine::worker_loop(int thread) {
  std::uint64_t seen = 0;
  for (;;) {
    // Start barrier: spin on the generation word, then park in the futex.
    std::uint64_t gen = generation_.load(std::memory_order_acquire);
    int spins = kSpinIters;
    while (gen == seen) {
      if (spins-- > 0) {
        cpu_relax();
      } else {
        generation_.wait(seen, std::memory_order_acquire);
      }
      gen = generation_.load(std::memory_order_acquire);
    }
    seen = gen;
    if (shutdown_) return;

    drain(thread);

    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1)
      pending_.notify_one();
  }
}

}  // namespace lsample::chains
