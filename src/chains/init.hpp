// Initial-configuration helpers for chains and experiments.
#pragma once

#include <cstdint>

#include "mrf/mrf.hpp"

namespace lsample::chains {

/// All vertices at spin s.
[[nodiscard]] mrf::Config constant_config(const mrf::Mrf& m, int s);

/// Uniform random spins (not necessarily feasible).
[[nodiscard]] mrf::Config random_config(const mrf::Mrf& m, std::uint64_t seed);

/// A feasible configuration built by greedy sequential choice: vertex v takes
/// the first spin with positive marginal weight given already-assigned
/// neighbors.  Works for colorings with q >= Delta+1, hardcore (all-empty),
/// soft models (anything), and throws if greedy gets stuck.
[[nodiscard]] mrf::Config greedy_feasible_config(const mrf::Mrf& m);

/// Hamming distance between two configurations.
[[nodiscard]] int hamming_distance(const mrf::Config& a, const mrf::Config& b);

}  // namespace lsample::chains
