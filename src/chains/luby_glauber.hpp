// The LubyGlauber algorithm (Algorithm 1 of the paper).
//
// One step: every vertex draws a uniform priority beta_v; the local maxima
// form an independent set I (the "Luby step"); every v in I is resampled in
// parallel from the heat-bath marginal (2) conditioned on the *current*
// neighbor spins.  Since I is independent, no two resampled vertices are
// adjacent and the parallel update is well defined.
//
// Theorem 3.2: tau(eps) = O(Delta/(1-alpha) * log(n/eps)) under Dobrushin's
// condition alpha < 1.  With a generalized scheduler of selection probability
// gamma the rate is O(1/((1-alpha) gamma) * log(n/eps)) (Remark after
// Thm 3.2) — pass any IndependentSetScheduler to explore this.
//
// With a ParallelEngine attached, both the scheduler's selection and the
// resampling of I are partitioned across threads.  The in-place parallel
// resample is exactly the paper's parallel round: I is independent, so no
// updated vertex reads another updated vertex, and each new spin is a pure
// function of (previous state, v, t) — bit-identical at any thread count.
#pragma once

#include <memory>
#include <vector>

#include "chains/chain.hpp"
#include "chains/schedulers.hpp"
#include "mrf/compiled.hpp"
#include "util/rng.hpp"

namespace lsample::chains {

class LubyGlauberChain final : public Chain {
 public:
  /// Default scheduler: the paper's Luby step.
  LubyGlauberChain(const mrf::Mrf& m, std::uint64_t seed);

  /// Generalized scheduler (Remark after Theorem 3.2).
  LubyGlauberChain(const mrf::Mrf& m, std::uint64_t seed,
                   std::unique_ptr<IndependentSetScheduler> scheduler);

  /// Shares a compiled view (read-only) instead of compiling its own — the
  /// replica layer builds R chains against ONE view.  The view's Mrf and
  /// graph must outlive the chain.
  LubyGlauberChain(std::shared_ptr<const mrf::CompiledMrf> cm,
                   std::uint64_t seed);

  void step(Config& x, std::int64_t t) override;
  void set_engine(ParallelEngine* engine) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "LubyGlauber";
  }
  [[nodiscard]] double updates_per_step() const noexcept override;

  [[nodiscard]] const IndependentSetScheduler& scheduler() const noexcept {
    return *scheduler_;
  }

  /// The independent set selected at the previous step (for tests/metrics).
  [[nodiscard]] const std::vector<char>& last_selected() const noexcept {
    return selected_;
  }

 private:
  std::shared_ptr<const mrf::CompiledMrf> cm_;
  util::CounterRng rng_;
  std::unique_ptr<IndependentSetScheduler> scheduler_;
  ParallelEngine* engine_ = nullptr;
  std::vector<char> selected_;
  std::vector<std::vector<double>> scratch_;  // marginal weights, per thread
};

}  // namespace lsample::chains
