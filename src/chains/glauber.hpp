// Single-site heat-bath Glauber dynamics (§3): pick a uniform random vertex,
// resample it from the conditional marginal (2).  This is the sequential
// baseline both parallel algorithms are measured against.
#pragma once

#include <vector>

#include "chains/chain.hpp"
#include "mrf/compiled.hpp"
#include "util/rng.hpp"

namespace lsample::chains {

/// Heat-bath resampling helper shared by Glauber, systematic scan, the
/// chromatic scheduler, LubyGlauber, and the LOCAL-model node program:
/// returns the new spin of v at time t given the neighbor spins of v (aligned
/// with mrf.g().incident_edges(v)).  If the marginal is the zero vector (the
/// paper's well-definedness assumption fails at this state, which can only
/// happen at infeasible configurations) the current spin is kept.
[[nodiscard]] int heat_bath_resample(const mrf::Mrf& m,
                                     const util::CounterRng& rng, int v,
                                     std::int64_t t,
                                     std::span<const int> neighbor_spins,
                                     std::vector<double>& scratch,
                                     int current_spin);

/// Samples an index proportional to `weights` from the counter-RNG stream
/// (domain, stream, t) by rejection sampling over shared candidates; returns
/// -1 if all weights are zero.  Exact, and designed so that two chains
/// sharing the stream disagree only when their weight vectors force it (a
/// good grand coupling — inverse-CDF sampling would misalign whole color
/// ranges on a single-color difference).
[[nodiscard]] int shared_stream_sample(std::span<const double> weights,
                                       const util::CounterRng& rng,
                                       util::RngDomain domain,
                                       std::uint64_t stream, std::int64_t t);

/// Gathers the spins of v's neighbors from a full configuration, aligned with
/// incident_edges(v).
void gather_neighbor_spins(const mrf::Mrf& m, int v, const Config& x,
                           std::vector<int>& out);

class GlauberChain final : public Chain {
 public:
  GlauberChain(const mrf::Mrf& m, std::uint64_t seed);

  void step(Config& x, std::int64_t t) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "Glauber";
  }
  [[nodiscard]] double updates_per_step() const noexcept override {
    return 1.0;
  }

 private:
  mrf::CompiledMrf cm_;
  util::CounterRng rng_;
  std::vector<double> weights_;
};

}  // namespace lsample::chains
