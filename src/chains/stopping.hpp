// Online stopping rules — pay measured mixing instead of worst-case budgets.
//
// The facade's theory budgets (core::luby_glauber_round_budget,
// local_metropolis_round_budget) are worst-case over all instances AND all
// initial configurations; fig_e1/e2 measure actual coalescence a factor
// 3–7x below them on the guarded workloads.  This module turns that gap
// into per-sample savings by running a convergence diagnostic INSIDE the
// sampler and stopping at the first checkpoint that certifies mixing.
//
// Three rules behind one interface, all on a doubling checkpoint schedule
// (decisions at rounds k, 2k, 4k, ..., so diagnostic cost is amortized O(1)
// per round):
//
//  (1) coupling_fleet_stop — grand-coupling coalescence.  A coupled pair is
//      two chain instances built with the SAME seed, sharing every
//      counter-based draw (exactly the Lemma 4.4 local coupling realized by
//      coupling.cpp); started from the payload init and an adversarial
//      extremal init, their agreement is a pathwise "the chain has
//      forgotten its starting point" event.  The rule runs a small fleet of
//      such pairs on seeds salted AWAY from the payload stream and stops
//      when ALL pairs have coalesced; the payload then runs that many
//      rounds on its own stream.  The decoupling matters: stopping a chain
//      at ITS OWN coalescence time is the classic naive-forward-coupling
//      bias (the stopping time is correlated with the trajectory — Propp &
//      Wilson's motivating example), which the fuzzer's TV gate catches on
//      small instances.  With independent diagnostic streams the payload is
//      an ordinary fixed-round run whose round count carries no information
//      about its own randomness.
//
//  (2) cftp_hardcore — coupling from the past (Propp & Wilson 1996) with
//      the Häggström–Nelander bounding-chain sandwich for the hardcore
//      model (heat-bath hardcore dynamics are anti-monotone: a lower/upper
//      pair run with each other's neighborhoods brackets every trajectory).
//      Returns a PERFECT sample from the hardcore distribution — no
//      epsilon at all — whenever the sandwich coalesces within the horizon
//      cap, and throws StoppingError (a named error, never a hang)
//      otherwise.
//
//  (3) rhat_stop — cross-replica disagreement in the spirit of
//      Gelman–Rubin R-hat, over a small fixed fleet of diagnostic replicas
//      (ReplicaRunner-parallel, seeds split from the base seed).  The
//      fallback when no coupling structure applies (CSP chains, general
//      MRFs).  Heuristic rather than a certificate; the fuzzer validates
//      it against exact enumeration on small instances.
//
// Determinism contract (same as every other knob in the library): each
// decision is a pure function of (model, seed, rule) — bit-identical at
// any thread count and independent of the caller's replica batch size (the
// diagnostic fleet size is fixed, not options.num_replicas).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "chains/chain.hpp"

namespace lsample::chains {

/// Stopping policy for the facade (SamplerOptions.stop).  `automatic`
/// resolves to the strongest applicable rule: cftp for hardcore-shaped
/// models, coupling for other pairwise MRFs, rhat for CSPs.  ("auto" on the
/// CLI; it is a C++ keyword.)
enum class StopRule { fixed, coupling, cftp, rhat, automatic };

[[nodiscard]] std::string_view stop_rule_name(StopRule rule) noexcept;

/// Parses "fixed" / "coupling" / "cftp" / "rhat" / "auto" (also accepts
/// "automatic"); nullopt on anything else.
[[nodiscard]] std::optional<StopRule> parse_stop_rule(
    std::string_view name) noexcept;

/// Named error for never-converged adaptive runs (e.g. the CFTP sandwich
/// still apart at the horizon cap).  Rules throw this instead of spinning
/// forever — an adaptive sampler must fail loudly, not hang.
class StoppingError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct StoppingOptions {
  /// Hard cap on rounds for coupling_fleet_stop / rhat_stop (the theory
  /// budget or the caller's explicit budget).  Reaching it uncoalesced is
  /// NOT an error: the rule reports converged = false and the sampler falls
  /// back to the full fixed budget it would have paid anyway.
  std::int64_t max_rounds = 0;
  /// First checkpoint k of the doubling schedule k, 2k, 4k, ...
  std::int64_t first_checkpoint = 8;
  /// Worker threads for the diagnostic fleets (coupling pairs and rhat
  /// replicas); 0 = all hardware threads.  Decisions are bit-identical at
  /// any value.
  int num_threads = 1;
  /// Coupled pairs for coupling_fleet_stop (>= 1).  More pairs sharpen the
  /// implicit tail estimate (stop only when every pair has coalesced) at
  /// proportional diagnostic cost.
  int coupling_pairs = 4;
  /// Diagnostic replicas for rhat_stop (>= 2).  Deliberately NOT tied to
  /// SamplerOptions.num_replicas: the decision must not change with the
  /// caller's batch size.
  int rhat_replicas = 4;
  /// Stop when the potential-scale-reduction estimate drops below this.
  /// 1.05 is between the classic 1.1 and the modern conservative 1.01.
  double rhat_threshold = 1.05;
  /// CFTP horizon cap in SWEEPS (one sweep = n single-site updates).  The
  /// sandwich doubles its from-the-past horizon until coalescence; a
  /// horizon beyond this throws StoppingError.
  std::int64_t cftp_max_horizon = 1 << 16;
};

/// Outcome of a stopping decision.
struct StopDecision {
  StopRule rule = StopRule::fixed;  ///< the rule that decided (never automatic)
  std::int64_t rounds_used = 0;     ///< rounds the payload chain must run
  bool converged = false;           ///< false => fell back to max_rounds
  double diagnostic = 0.0;          ///< last R-hat value (rhat rule only)
};

/// The doubling checkpoint schedule: first, 2*first, 4*first, ... capped at
/// max_rounds, with max_rounds always included as the final checkpoint.
[[nodiscard]] std::vector<std::int64_t> checkpoint_schedule(
    std::int64_t first, std::int64_t max_rounds);

/// One coupled pair for coupling_fleet_stop: the two bracketing states plus
/// a stepper advancing BOTH by one round on the pair's shared randomness
/// (build both underlying chains with the same seed).  Type-erased so any
/// chain family plugs in.
struct CouplingPair {
  Config x;  ///< started from the payload init
  Config y;  ///< started from the adversarial extremal init
  std::function<void(Config&, Config&, std::int64_t)> step;
};

/// Builds coupled pair p with the given (already salted) RNG seed.  Invoked
/// concurrently from the replica pool; must only read shared state.
using CouplingPairFactory =
    std::function<CouplingPair(int p, std::uint64_t seed)>;

/// Rule (1): advances opt.coupling_pairs independent coupled pairs in
/// lockstep (pair-parallel over ReplicaRunner) and stops at the first
/// checkpoint where EVERY pair has coalesced (x == y; under the grand
/// coupling a coalesced pair stays coalesced, so met pairs are not
/// re-stepped).  Pair p is seeded replica_seed(salted base_seed, p) —
/// deliberately disjoint from the payload stream, so the returned
/// rounds_used is a data-independent round count for the payload to run.
/// If any pair never agrees, rounds_used = opt.max_rounds and
/// converged = false.
[[nodiscard]] StopDecision coupling_fleet_stop(
    const CouplingPairFactory& factory, std::uint64_t base_seed,
    const StoppingOptions& opt);

/// True iff m is "hardcore-shaped": q = 2, every edge activity has
/// A(1,1) = 0 and A(0,0) = A(0,1) = A(1,0) > 0, and every vertex activity
/// is strictly positive — i.e. the weighted-independent-set models
/// cftp_hardcore's sandwich is exact for (mrf::make_hardcore and scalings).
[[nodiscard]] bool is_hardcore_shaped(const mrf::Mrf& m);

struct CftpResult {
  Config config;              ///< the perfect sample
  std::int64_t sweeps = 0;    ///< total sweeps over all horizons (the work)
  std::int64_t horizon = 0;   ///< the coalesced from-the-past horizon
};

/// Rule (2): monotone-sandwich coupling from the past for hardcore-shaped
/// models.  Runs lower (empty) and upper (fully occupied) bounding chains
/// from time -T with T doubling per attempt; randomness is keyed by
/// absolute time through the counter RNG, so the suffix reuse CFTP requires
/// is automatic.  When the sandwich closes at time 0 the returned
/// configuration is an EXACT draw from the Gibbs distribution.  Throws
/// std::invalid_argument if !is_hardcore_shaped(m) and StoppingError if the
/// horizon cap is exceeded.  Sequential by construction — the decision and
/// sample are pure functions of (m, seed).
[[nodiscard]] CftpResult cftp_hardcore(const mrf::Mrf& m, std::uint64_t seed,
                                       std::int64_t first_horizon,
                                       std::int64_t max_horizon);

/// One diagnostic replica for rhat_stop: a state plus a stepper that
/// advances it by one round.  The stepper owns whatever chain object drives
/// it (type-erased so mrf chains and csp chains both plug in).
struct DiagnosticReplica {
  Config x;
  std::function<void(Config&, std::int64_t)> step;
};

/// Builds diagnostic replica r with the given RNG seed.  Invoked
/// concurrently from the replica pool; must only read shared state.
using DiagnosticFactory =
    std::function<DiagnosticReplica(int r, std::uint64_t seed)>;

/// Rule (3): advances opt.rhat_replicas independent diagnostic replicas in
/// checkpoint segments (replica-parallel over ReplicaRunner) and stops at
/// the first checkpoint where the potential scale reduction factor of a
/// fixed pseudo-random linear observable, computed over the second half of
/// each trajectory, drops below opt.rhat_threshold.  Replica r is seeded by
/// replica_seed(salted base_seed, r); the decision is a pure function of
/// (factory semantics, base_seed, opt) — independent of thread count.
[[nodiscard]] StopDecision rhat_stop(const DiagnosticFactory& factory,
                                     std::uint64_t base_seed,
                                     const StoppingOptions& opt);

}  // namespace lsample::chains
