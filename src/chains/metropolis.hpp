// Single-site Metropolis chain: pick a uniform random vertex, propose a spin
// from b_v, accept with probability prod_{u ~ v} Ã(c, X_u).
//
// This is the sequential specialization of the LocalMetropolis filter (the
// paper treats the single-site Glauber and Metropolis chains interchangeably
// for irreducibility, footnote 2).  For colorings it is the classic
// "propose a uniform color, accept iff no neighbor holds it" chain.
// Reversible w.r.t. the Gibbs distribution (verified exactly in tests).
#pragma once

#include "chains/chain.hpp"
#include "util/rng.hpp"

namespace lsample::chains {

class MetropolisChain final : public Chain {
 public:
  MetropolisChain(const mrf::Mrf& m, std::uint64_t seed);

  void step(Config& x, std::int64_t t) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "Metropolis";
  }
  [[nodiscard]] double updates_per_step() const noexcept override {
    return 1.0;
  }

 private:
  const mrf::Mrf& m_;
  util::CounterRng rng_;
};

}  // namespace lsample::chains
