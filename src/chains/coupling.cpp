#include "chains/coupling.hpp"

#include "chains/init.hpp"
#include "util/require.hpp"
#include "util/summary.hpp"

namespace lsample::chains {

double CoalescenceResult::mean() const { return util::mean(rounds); }

double CoalescenceResult::quantile(double p) const {
  return util::quantile(rounds, p);
}

CoalescenceResult coalescence_time(const ChainFactory& factory,
                                   const Config& x0, const Config& y0,
                                   const CoalescenceOptions& opt) {
  LS_REQUIRE(opt.trials >= 1, "need at least one trial");
  LS_REQUIRE(opt.max_rounds >= 1, "need a positive round budget");
  CoalescenceResult result;
  result.rounds.reserve(static_cast<std::size_t>(opt.trials));
  for (int trial = 0; trial < opt.trials; ++trial) {
    const std::uint64_t seed = opt.base_seed + static_cast<std::uint64_t>(trial);
    auto cx = factory(seed);
    auto cy = factory(seed);
    Config x = x0;
    Config y = y0;
    std::int64_t t = 0;
    while (t < opt.max_rounds && x != y) {
      cx->step(x, t);
      cy->step(y, t);
      ++t;
    }
    if (x != y) ++result.censored;
    result.rounds.push_back(static_cast<double>(t));
  }
  return result;
}

std::vector<double> disagreement_curve(const ChainFactory& factory,
                                       const Config& x0, const Config& y0,
                                       int trials, std::int64_t rounds,
                                       std::uint64_t base_seed) {
  LS_REQUIRE(trials >= 1 && rounds >= 0, "invalid trial/round counts");
  std::vector<double> curve(static_cast<std::size_t>(rounds) + 1, 0.0);
  const double n = static_cast<double>(x0.size());
  for (int trial = 0; trial < trials; ++trial) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(trial);
    auto cx = factory(seed);
    auto cy = factory(seed);
    Config x = x0;
    Config y = y0;
    curve[0] += hamming_distance(x, y) / n;
    for (std::int64_t t = 0; t < rounds; ++t) {
      cx->step(x, t);
      cy->step(y, t);
      curve[static_cast<std::size_t>(t) + 1] += hamming_distance(x, y) / n;
    }
  }
  for (double& c : curve) c /= trials;
  return curve;
}

std::vector<double> empirical_pmf(
    const ChainFactory& factory, const Config& x0, std::int64_t rounds,
    int runs, const std::function<int(const Config&)>& statistic,
    int num_categories, std::uint64_t base_seed) {
  LS_REQUIRE(runs >= 1 && num_categories >= 1, "invalid run/category counts");
  std::vector<double> pmf(static_cast<std::size_t>(num_categories), 0.0);
  for (int r = 0; r < runs; ++r) {
    auto chain = factory(base_seed + static_cast<std::uint64_t>(r));
    Config x = x0;
    for (std::int64_t t = 0; t < rounds; ++t) chain->step(x, t);
    const int cat = statistic(x);
    LS_ASSERT(cat >= 0 && cat < num_categories,
              "statistic returned out-of-range category");
    pmf[static_cast<std::size_t>(cat)] += 1.0;
  }
  util::normalize(pmf);
  return pmf;
}

}  // namespace lsample::chains
