#include "chains/coupling.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "chains/init.hpp"
#include "chains/replicas.hpp"
#include "util/require.hpp"
#include "util/summary.hpp"

namespace lsample::chains {

double CoalescenceResult::mean() const {
  if (rounds.empty()) return std::numeric_limits<double>::quiet_NaN();
  return util::mean(rounds);
}

double CoalescenceResult::mean_lower_bound() const {
  // A hand-built result with censored trials but max_rounds left at 0 would
  // count them at 0 rounds and invert the lower-bound semantics.
  LS_ASSERT(censored == 0 || max_rounds >= 1,
            "censored trials require the max_rounds budget to be set");
  const int total = trials();
  if (total == 0) return std::numeric_limits<double>::quiet_NaN();
  double sum = 0.0;
  for (double r : rounds) sum += r;
  sum += static_cast<double>(censored) * static_cast<double>(max_rounds);
  return sum / total;
}

double CoalescenceResult::quantile(double p) const {
  // Branch before calling util::quantile — it rejects empty samples.
  if (rounds.empty()) return std::numeric_limits<double>::quiet_NaN();
  return util::quantile(rounds, p);
}

CoalescenceResult coalescence_time(const ChainFactory& factory,
                                   const Config& x0, const Config& y0,
                                   const CoalescenceOptions& opt) {
  LS_REQUIRE(opt.trials >= 1, "need at least one trial");
  LS_REQUIRE(opt.max_rounds >= 1, "need a positive round budget");
  std::vector<double> rounds(static_cast<std::size_t>(opt.trials), 0.0);
  std::vector<char> censored(static_cast<std::size_t>(opt.trials), 0);
  ReplicaRunner runner(opt.num_threads);
  runner.run(opt.trials, [&](int trial) {
    const std::uint64_t seed =
        replica_seed(opt.base_seed, static_cast<std::uint64_t>(trial));
    auto cx = factory(seed);
    auto cy = factory(seed);
    Config x = x0;
    Config y = y0;
    std::int64_t t = 0;
    while (t < opt.max_rounds && x != y) {
      cx->step(x, t);
      cy->step(y, t);
      ++t;
    }
    censored[static_cast<std::size_t>(trial)] = x != y ? 1 : 0;
    rounds[static_cast<std::size_t>(trial)] = static_cast<double>(t);
  });
  // Sequential assembly in trial order keeps the result independent of the
  // replica partition.
  CoalescenceResult result;
  result.max_rounds = opt.max_rounds;
  result.rounds.reserve(static_cast<std::size_t>(opt.trials));
  for (int trial = 0; trial < opt.trials; ++trial) {
    if (censored[static_cast<std::size_t>(trial)] != 0)
      ++result.censored;
    else
      result.rounds.push_back(rounds[static_cast<std::size_t>(trial)]);
  }
  return result;
}

std::vector<double> disagreement_curve(const ChainFactory& factory,
                                       const Config& x0, const Config& y0,
                                       int trials, std::int64_t rounds,
                                       std::uint64_t base_seed,
                                       int num_threads) {
  LS_REQUIRE(trials >= 1 && rounds >= 0, "invalid trial/round counts");
  const std::size_t len = static_cast<std::size_t>(rounds) + 1;
  const double n = static_cast<double>(x0.size());
  ReplicaRunner runner(num_threads);
  // Trials are processed in contiguous chunks through a bounded row buffer
  // (memory stays O(chunk * rounds), not O(trials * rounds)), and every
  // chunk is reduced into the curve sequentially in trial order.  Each row
  // is a pure function of its trial, so the curve — including the
  // floating-point sums — is bit-identical at any thread count and any
  // chunk size: the summation order is always trial 0, 1, 2, ...
  const int chunk =
      std::max(1, std::min(trials, 8 * runner.num_threads()));
  std::vector<double> rows(static_cast<std::size_t>(chunk) * len, 0.0);
  std::vector<double> curve(len, 0.0);
  for (int base = 0; base < trials; base += chunk) {
    const int count = std::min(chunk, trials - base);
    runner.run(count, [&](int i) {
      const std::uint64_t seed =
          replica_seed(base_seed, static_cast<std::uint64_t>(base + i));
      auto cx = factory(seed);
      auto cy = factory(seed);
      Config x = x0;
      Config y = y0;
      double* row = rows.data() + static_cast<std::size_t>(i) * len;
      row[0] = hamming_distance(x, y) / n;
      for (std::int64_t t = 0; t < rounds; ++t) {
        cx->step(x, t);
        cy->step(y, t);
        row[static_cast<std::size_t>(t) + 1] = hamming_distance(x, y) / n;
      }
    });
    for (int i = 0; i < count; ++i) {
      const double* row = rows.data() + static_cast<std::size_t>(i) * len;
      for (std::size_t t = 0; t < len; ++t) curve[t] += row[t];
    }
  }
  for (double& c : curve) c /= trials;
  return curve;
}

std::vector<double> empirical_pmf(
    const ChainFactory& factory, const Config& x0, std::int64_t rounds,
    int runs, const std::function<int(const Config&)>& statistic,
    int num_categories, std::uint64_t base_seed, int num_threads) {
  LS_REQUIRE(runs >= 1 && num_categories >= 1, "invalid run/category counts");
  std::vector<int> categories(static_cast<std::size_t>(runs), 0);
  ReplicaRunner runner(num_threads);
  runner.run(runs, [&](int r) {
    auto chain =
        factory(replica_seed(base_seed, static_cast<std::uint64_t>(r)));
    Config x = x0;
    for (std::int64_t t = 0; t < rounds; ++t) chain->step(x, t);
    categories[static_cast<std::size_t>(r)] = statistic(x);
  });
  // Validate after the parallel region, in run order, with LS_REQUIRE: the
  // statistic is caller-supplied input, and indexing with an unchecked
  // out-of-range category would corrupt memory.  (The runner would also
  // propagate a throw from inside a job, but which trial's error surfaces
  // first would then depend on the partition.)
  std::vector<double> pmf(static_cast<std::size_t>(num_categories), 0.0);
  for (int cat : categories) {
    LS_REQUIRE(cat >= 0 && cat < num_categories,
               "statistic returned out-of-range category");
    pmf[static_cast<std::size_t>(cat)] += 1.0;
  }
  util::normalize(pmf);
  return pmf;
}

}  // namespace lsample::chains
