// Write-set determinism auditor (opt-in, compiled in via -DLSAMPLE_AUDIT).
//
// The whole library rests on one contract: every parallel unit of work (one
// vertex update, one replica, one halo frame) writes only the slots it owns
// and reads shared state only as of the previous barrier epoch, so that a
// trajectory is a pure function of (model, seed, options) at any thread
// count.  ThreadSanitizer can only see a violation of that contract if the
// schedule happens to interleave the racing accesses; this auditor checks the
// LOGICAL ownership discipline instead, so a violation fails on every run,
// deterministically, with the exact region/slot/units named.
//
// Model.  An *epoch* is one parallel region — one ParallelEngine::parallel_for
// (or engine-less run_partitioned) call, or one explicitly scoped phase such
// as the sharded runtime's halo exchange.  Within an epoch, instrumented code
// declares
//   LS_AUDIT_UNIT(i)                     — the current parallel unit of work
//   LS_AUDIT_WRITE(region, index, p, n)  — this unit writes [p, p+n)
//   LS_AUDIT_READ(region, index, p, n)   — this unit reads  [p, p+n)
// At the closing barrier the auditor verifies
//   (1) write/write: byte ranges written by different units are pairwise
//       disjoint (two units writing one slot would make the result depend on
//       the chunk-to-thread schedule), and
//   (2) read/write: no unit reads a byte range another unit wrote in the SAME
//       epoch (reads must resolve to the previous epoch's snapshot; a
//       same-epoch foreign write makes the read schedule-dependent).
// A unit may freely re-write and re-read its own slots: its chunk runs
// sequentially.  Violations throw AuditError naming the phase label, the
// region and slot index, and the offending units.
//
// Cost.  With LSAMPLE_AUDIT undefined every macro below expands to ((void)0)
// and no auditor symbol is referenced — the instrumented build is
// token-for-token the uninstrumented one (bench guard (i) additionally holds
// the measured throughput to the committed baseline).  With LSAMPLE_AUDIT
// defined but auditing disabled at runtime (the default), engine dispatch
// skips the epoch hooks after one relaxed atomic load and records nothing.
//
// Recording is wait-free: each engine thread appends to its own buffer; the
// dispatching thread merges and verifies after the completion barrier, while
// workers are quiescent.  The verdict is a pure function of the SET of
// declared accesses — independent of chunk-to-thread assignment — so an
// audited run either always passes or always fails for a given (model, seed,
// options).
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace lsample::chains::audit {

/// Logical state regions, used only to render readable reports ("config[17]"
/// instead of a raw address).  Ownership is checked on byte ranges, so two
/// regions that alias the same memory are still checked correctly.
enum class Region : std::uint8_t {
  config,         ///< the chain configuration x
  next_config,    ///< a double-buffered next configuration
  proposal,       ///< LocalMetropolis proposal vector
  selected,       ///< Luby-step membership marks
  scheduler,      ///< scheduler state (priorities / activation marks)
  arena_words,    ///< LOCAL message arena payload words
  arena_meta,     ///< LOCAL message arena slot metadata
  halo,           ///< sharded halo frame scatter targets
  program_state,  ///< node-program per-vertex state
  other,
};

[[nodiscard]] const char* region_name(Region r) noexcept;

/// Thrown by the closing-barrier check when two units' declared accesses
/// conflict.  Deliberately a std::logic_error: an ownership violation is a
/// bug in the library, never a user-input problem.
class AuditError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Aggregate recording counters, for tests to assert the instrumentation is
/// actually live (a mutation test that passes because nothing was recorded
/// would be vacuous).
struct Totals {
  std::uint64_t epochs = 0;  ///< epochs checked at a closing barrier
  std::uint64_t writes = 0;  ///< write declarations merged
  std::uint64_t reads = 0;   ///< read declarations merged
};

#if defined(LSAMPLE_AUDIT)

/// One declared access.  POD so per-thread buffers are plain vectors.
struct Entry {
  std::uintptr_t addr;
  std::uint32_t bytes;
  std::int64_t unit;
  std::int64_t index;
  Region region;
  bool is_write;
};

struct Buffer {
  std::vector<Entry> entries;
};

namespace detail {
extern thread_local Buffer* tl_buf;
extern thread_local std::int64_t tl_unit;
extern thread_local const char* tl_label;
}  // namespace detail

/// Runtime switch (process-global).  Off by default even in audited builds;
/// tests and the bench guard turn it on around the phases they check.
[[nodiscard]] bool enabled() noexcept;
void set_enabled(bool on) noexcept;
[[nodiscard]] constexpr bool compiled_in() noexcept { return true; }

[[nodiscard]] Totals totals() noexcept;
void reset_totals() noexcept;

/// Label of the phase currently being audited (for reports); stacked by
/// ScopedLabel in the chains' step functions.
[[nodiscard]] const char* current_label() noexcept;

inline void set_unit(std::int64_t unit) noexcept { detail::tl_unit = unit; }

inline void on_access(Region r, std::int64_t index, const void* p,
                      std::size_t bytes, bool is_write) noexcept {
  if (Buffer* b = detail::tl_buf; b != nullptr)
    b->entries.push_back({reinterpret_cast<std::uintptr_t>(p),
                          static_cast<std::uint32_t>(bytes), detail::tl_unit,
                          index, r, is_write});
}

inline void on_write(Region r, std::int64_t index, const void* p,
                     std::size_t bytes) noexcept {
  on_access(r, index, p, bytes, true);
}

inline void on_read(Region r, std::int64_t index, const void* p,
                    std::size_t bytes) noexcept {
  on_access(r, index, p, bytes, false);
}

/// Names the phase for violation reports while in scope ("LubyGlauber.step").
class ScopedLabel {
 public:
  explicit ScopedLabel(const char* label) noexcept : prev_(detail::tl_label) {
    detail::tl_label = label;
  }
  ~ScopedLabel() { detail::tl_label = prev_; }
  ScopedLabel(const ScopedLabel&) = delete;
  ScopedLabel& operator=(const ScopedLabel&) = delete;

 private:
  const char* prev_;
};

/// Per-thread recording buffers for one parallel region plus the closing
/// check.  The ParallelEngine owns one (lazily) and re-begins it per audited
/// dispatch; engine-less sequential regions use a stack-local context.
class EpochContext {
 public:
  explicit EpochContext(int num_threads);

  /// Arms the context for a new epoch (captures the current phase label).
  void begin() noexcept;
  [[nodiscard]] Buffer* buffer(int thread) noexcept {
    return &buffers_[static_cast<std::size_t>(thread)];
  }
  /// Discards recorded entries without checking (the region threw).
  void abandon() noexcept;
  /// Merges all buffers, verifies the two invariants, clears for reuse.
  /// Throws AuditError on a violation.
  void check_and_clear();

 private:
  std::vector<Buffer> buffers_;
  const char* label_ = "";
  std::vector<Entry> writes_;       // merge scratch, reused across epochs
  std::vector<Entry> reads_;        // merge scratch, reused across epochs
  std::vector<std::uintptr_t> pmax_;  // prefix max of write range ends
};

/// Installs a buffer as the calling thread's recording target while in scope.
class BufferScope {
 public:
  explicit BufferScope(Buffer* b) noexcept : prev_(detail::tl_buf) {
    detail::tl_buf = b;
  }
  ~BufferScope() { detail::tl_buf = prev_; }
  BufferScope(const BufferScope&) = delete;
  BufferScope& operator=(const BufferScope&) = delete;

 private:
  Buffer* prev_;
};

/// An explicitly scoped single-threaded epoch, for phases that are not a
/// parallel_for (the sharded runtime's halo gather/scatter).  Call check()
/// at the end of the phase; destruction without check() abandons the epoch
/// (exception unwind must not turn into a second throw).
class SequentialEpoch {
 public:
  SequentialEpoch() : ctx_(1), scope_(detail::tl_buf) {
    ctx_.begin();
    detail::tl_buf = ctx_.buffer(0);
  }
  ~SequentialEpoch() {
    detail::tl_buf = scope_;
    if (!checked_) ctx_.abandon();
  }
  SequentialEpoch(const SequentialEpoch&) = delete;
  SequentialEpoch& operator=(const SequentialEpoch&) = delete;

  /// Closes the epoch and verifies it; throws AuditError on a violation.
  void check() {
    checked_ = true;
    detail::tl_buf = scope_;
    ctx_.check_and_clear();
  }

 private:
  EpochContext ctx_;
  Buffer* scope_;  // the enclosing epoch's buffer, restored on exit
  bool checked_ = false;
};

#else  // !defined(LSAMPLE_AUDIT) — every hook folds to nothing

[[nodiscard]] constexpr bool enabled() noexcept { return false; }
inline void set_enabled(bool) noexcept {}
[[nodiscard]] constexpr bool compiled_in() noexcept { return false; }
[[nodiscard]] inline Totals totals() noexcept { return {}; }
inline void reset_totals() noexcept {}

#endif  // LSAMPLE_AUDIT

}  // namespace lsample::chains::audit

// Instrumentation macros: active only in audited builds, so the default
// build carries zero overhead — not even a branch.  `region` is an
// audit::Region enumerator name; `index` is the logical slot used in
// reports; `p`/`n` give the written/read byte range.
#if defined(LSAMPLE_AUDIT)
#define LS_AUDIT_UNIT(u) \
  ::lsample::chains::audit::set_unit(static_cast<std::int64_t>(u))
#define LS_AUDIT_WRITE(region, index, p, n)                     \
  ::lsample::chains::audit::on_write(                           \
      ::lsample::chains::audit::Region::region,                 \
      static_cast<std::int64_t>(index), (p), (n))
#define LS_AUDIT_READ(region, index, p, n)                      \
  ::lsample::chains::audit::on_read(                            \
      ::lsample::chains::audit::Region::region,                 \
      static_cast<std::int64_t>(index), (p), (n))
#define LS_AUDIT_SCOPE(label) \
  ::lsample::chains::audit::ScopedLabel ls_audit_scoped_label_(label)
// Wraps a statement block that exists only to feed the auditor (e.g. a loop
// declaring neighbor reads); compiled out entirely in unaudited builds.
#define LS_AUDIT_ONLY(...)                                   \
  do {                                                       \
    if (::lsample::chains::audit::enabled()) { __VA_ARGS__ } \
  } while (false)
#else
#define LS_AUDIT_UNIT(u) ((void)0)
#define LS_AUDIT_WRITE(region, index, p, n) ((void)0)
#define LS_AUDIT_READ(region, index, p, n) ((void)0)
#define LS_AUDIT_SCOPE(label) ((void)0)
#define LS_AUDIT_ONLY(...) ((void)0)
#endif
