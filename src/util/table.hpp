// Plain-text table printer used by the benchmark harnesses so that every
// experiment prints its rows in a uniform, diff-friendly format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace lsample::util {

/// Accumulates rows of strings/numbers and prints a GitHub-style markdown
/// table.  Numeric cells are formatted with a fixed precision.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& begin_row();
  Table& cell(const std::string& s);
  Table& cell(const char* s);
  Table& cell(double v, int precision = 4);
  Table& cell(std::int64_t v);
  Table& cell(int v);
  Table& cell(std::size_t v);

  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner for experiment output.
void print_banner(std::ostream& os, const std::string& title);

}  // namespace lsample::util
