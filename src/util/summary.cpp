#include "util/summary.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace lsample::util {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double quantile(std::vector<double> xs, double p) {
  LS_REQUIRE(!xs.empty(), "quantile of empty sample");
  LS_REQUIRE(p >= 0.0 && p <= 1.0, "quantile order must be in [0,1]");
  std::sort(xs.begin(), xs.end());
  const double pos = p * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= xs.size()) return xs.back();
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

double normalize(std::vector<double>& v) noexcept {
  double s = 0.0;
  for (double x : v) s += x;
  if (s > 0.0)
    for (double& x : v) x /= s;
  return s;
}

double total_variation(std::span<const double> p, std::span<const double> q) {
  LS_REQUIRE(p.size() == q.size(), "TV distance needs equal supports");
  std::vector<double> pn(p.begin(), p.end());
  std::vector<double> qn(q.begin(), q.end());
  normalize(pn);
  normalize(qn);
  double d = 0.0;
  for (std::size_t i = 0; i < pn.size(); ++i) d += std::abs(pn[i] - qn[i]);
  return 0.5 * d;
}

double ls_slope(std::span<const double> x, std::span<const double> y) noexcept {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  const double mx = mean(x);
  const double my = mean(y);
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    num += (x[i] - mx) * (y[i] - my);
    den += (x[i] - mx) * (x[i] - mx);
  }
  return den > 0.0 ? num / den : 0.0;
}

double correlation(std::span<const double> x,
                   std::span<const double> y) noexcept {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  const double mx = mean(x);
  const double my = mean(y);
  double num = 0.0;
  double dx = 0.0;
  double dy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    num += (x[i] - mx) * (y[i] - my);
    dx += (x[i] - mx) * (x[i] - mx);
    dy += (y[i] - my) * (y[i] - my);
  }
  const double den = std::sqrt(dx * dy);
  return den > 0.0 ? num / den : 0.0;
}

}  // namespace lsample::util
