// Random number generation.
//
// Two generators are provided:
//
//  * CounterRng — a counter-based (stateless) generator: every draw is a pure
//    function of (seed, domain, stream, time, index).  This is the backbone of
//    the whole library.  The paper's protocols require (a) per-vertex private
//    randomness and (b) a *shared* coin per edge readable by both endpoints
//    ("the two endpoints u and v access the same random coin", §4).  With a
//    counter-based generator both are trivially reproducible, and the
//    message-passing LOCAL simulator produces bit-identical trajectories with
//    the fast in-memory reference chains — which the test suite asserts.
//
//  * Rng — a conventional sequential engine (xoshiro256**) for everything that
//    does not need coordinated streams (graph generation, shuffling, ...).
//    It satisfies std::uniform_random_bit_generator.
#pragma once

#include <cstdint>
#include <span>

namespace lsample::util {

/// SplitMix64 finalizer; good avalanche, used to mix words into the counter
/// hash and to seed the sequential engine.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Independent randomness "domains" keep the streams used by different parts
/// of a protocol from colliding (vertex proposals vs. edge coins vs. ...).
enum class RngDomain : std::uint64_t {
  luby_priority = 1,   ///< the beta_v drawn in the Luby step
  vertex_update = 2,   ///< heat-bath resampling at a vertex
  vertex_proposal = 3, ///< LocalMetropolis proposals
  edge_coin = 4,       ///< LocalMetropolis shared edge coins
  constraint_coin = 5, ///< CSP LocalMetropolis shared constraint coins
  global_choice = 6,   ///< sequential chains: which vertex / class to update
  aux = 7,             ///< anything else (tempering swaps, initialization)
};

/// Counter-based RNG.  Cheap to copy; all methods are const and thread-safe.
class CounterRng {
 public:
  explicit CounterRng(std::uint64_t seed) noexcept : seed_(seed) {}

  /// 64 uniform bits as a pure function of the full coordinate tuple.
  [[nodiscard]] std::uint64_t bits(RngDomain d, std::uint64_t stream,
                                   std::uint64_t t,
                                   std::uint64_t k = 0) const noexcept {
    std::uint64_t h = mix64(seed_ ^ 0x6a09e667f3bcc908ULL);
    h = mix64(h ^ (static_cast<std::uint64_t>(d) * 0xbb67ae8584caa73bULL));
    h = mix64(h ^ stream);
    h = mix64(h ^ t);
    h = mix64(h ^ k);
    return h;
  }

  /// Uniform double in [0,1) with 53 bits of precision.
  [[nodiscard]] double u01(RngDomain d, std::uint64_t stream, std::uint64_t t,
                           std::uint64_t k = 0) const noexcept {
    return static_cast<double>(bits(d, stream, t, k) >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, m).  m must be positive.
  [[nodiscard]] int uniform_int(RngDomain d, std::uint64_t stream,
                                std::uint64_t t, std::uint64_t k,
                                int m) const noexcept {
    return static_cast<int>(u01(d, stream, t, k) * m);
  }

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

 private:
  std::uint64_t seed_;
};

/// Sample an index from unnormalized non-negative weights given a uniform
/// variate u in [0,1).  Returns -1 if all weights are zero (callers decide
/// whether that is an error).  Deterministic given (weights, u) — this exact
/// routine is shared by the reference chains and the LOCAL node programs so
/// their trajectories coincide.
[[nodiscard]] int categorical(std::span<const double> weights, double u) noexcept;

/// xoshiro256** sequential engine.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) noexcept;

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return ~std::uint64_t{0};
  }

  result_type operator()() noexcept;

  /// Uniform double in [0,1).
  [[nodiscard]] double u01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, m); m must be positive.
  [[nodiscard]] int uniform_int(int m) noexcept {
    return static_cast<int>(u01() * m);
  }

  /// Bernoulli(p).
  [[nodiscard]] bool bernoulli(double p) noexcept { return u01() < p; }

 private:
  std::uint64_t s_[4];
};

}  // namespace lsample::util
