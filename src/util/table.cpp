#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/require.hpp"

namespace lsample::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  LS_REQUIRE(!headers_.empty(), "table needs at least one column");
}

Table& Table::begin_row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(const std::string& s) {
  LS_REQUIRE(!rows_.empty(), "call begin_row() before cell()");
  rows_.back().push_back(s);
  return *this;
}

Table& Table::cell(const char* s) { return cell(std::string(s)); }

Table& Table::cell(double v, int precision) {
  std::ostringstream os;
  os << std::setprecision(precision) << std::fixed << v;
  return cell(os.str());
}

Table& Table::cell(std::int64_t v) { return cell(std::to_string(v)); }
Table& Table::cell(int v) { return cell(std::to_string(v)); }
Table& Table::cell(std::size_t v) { return cell(std::to_string(v)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& v = c < row.size() ? row[c] : std::string{};
      os << ' ' << v << std::string(widths[c] - v.size(), ' ') << " |";
    }
    os << '\n';
  };

  print_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << std::string(widths[c] + 2, '-') << '|';
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

void print_banner(std::ostream& os, const std::string& title) {
  os << '\n' << "== " << title << " ==" << '\n';
}

}  // namespace lsample::util
