// Precondition / invariant checking helpers.
//
// Library entry points validate their arguments with LS_REQUIRE (throws
// std::invalid_argument) so that misuse is reported eagerly; internal
// invariants use LS_ASSERT (throws std::logic_error) so that broken states
// never propagate silently into statistical results.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace lsample::util {

[[noreturn]] inline void throw_requirement_failure(const char* expr,
                                                   const char* file, int line,
                                                   const std::string& msg) {
  std::ostringstream os;
  os << "requirement failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_assert_failure(const char* expr,
                                              const char* file, int line,
                                              const std::string& msg) {
  std::ostringstream os;
  os << "internal invariant violated: " << expr << " at " << file << ':'
     << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace lsample::util

#define LS_REQUIRE(cond, msg)                                              \
  do {                                                                     \
    if (!(cond))                                                           \
      ::lsample::util::throw_requirement_failure(#cond, __FILE__, __LINE__, \
                                                 (msg));                   \
  } while (false)

#define LS_ASSERT(cond, msg)                                          \
  do {                                                                \
    if (!(cond))                                                      \
      ::lsample::util::throw_assert_failure(#cond, __FILE__, __LINE__, \
                                            (msg));                   \
  } while (false)
