// Small summary-statistics helpers shared by coupling estimators and benches.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace lsample::util {

/// Mean of a sample (0 for empty input).
[[nodiscard]] double mean(std::span<const double> xs) noexcept;

/// Unbiased sample standard deviation (0 for size < 2).
[[nodiscard]] double stddev(std::span<const double> xs) noexcept;

/// p-quantile by linear interpolation of the sorted sample; p in [0,1].
[[nodiscard]] double quantile(std::vector<double> xs, double p);

/// Total-variation distance between two distributions over the same support:
/// (1/2) * sum |p_i - q_i|.  Inputs need not be normalized identically; they
/// are normalized first (all-zero input counts as the zero vector).
[[nodiscard]] double total_variation(std::span<const double> p,
                                     std::span<const double> q);

/// Normalizes a non-negative vector in place to sum to 1; returns the original
/// sum (0 if the vector was all zeros, in which case it is left unchanged).
double normalize(std::vector<double>& v) noexcept;

/// Least-squares slope of y against x (for growth-rate fits in benches).
[[nodiscard]] double ls_slope(std::span<const double> x,
                              std::span<const double> y) noexcept;

/// Pearson correlation of two samples (0 if degenerate).
[[nodiscard]] double correlation(std::span<const double> x,
                                 std::span<const double> y) noexcept;

}  // namespace lsample::util
