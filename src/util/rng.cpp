#include "util/rng.hpp"

namespace lsample::util {

int categorical(std::span<const double> weights, double u) noexcept {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) return -1;
  double x = u * total;
  double acc = 0.0;
  int last_positive = -1;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] <= 0.0) continue;
    last_positive = static_cast<int>(i);
    acc += weights[i];
    if (x < acc) return static_cast<int>(i);
  }
  // Floating-point slack: u*total landed at/above the accumulated sum.
  return last_positive;
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  // Seed the four words with SplitMix64 per the xoshiro authors' advice.
  std::uint64_t z = seed;
  for (auto& w : s_) {
    z += 0x9e3779b97f4a7c15ULL;
    w = mix64(z);
  }
  // Avoid the all-zero state (probability ~0 but cheap to rule out).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

}  // namespace lsample::util
