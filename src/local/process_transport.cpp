// ProcessTransport: one shard_worker OS process per shard, wired to the
// parent over Unix socketpairs in a star topology.  The parent never holds
// shard arenas — each worker rebuilds the graph, partition, plan, and
// program table from the setup frame (activities travel as raw IEEE-754
// bit patterns, so the rebuild is bit-exact) and the parent only routes
// halo frames between workers.
//
// Per-round protocol (deadlock-free by ordered blocking I/O: the parent
// writes RUN to every worker before reading any reply, so all workers
// compute concurrently; socketpair buffers hold the small command frames):
//
//   parent -> all workers : RUN
//   worker -> parent      : halo buffers destined for each peer
//   parent -> all workers : DELIVER (the buffers routed from its peers)
//   worker                : scatter + buffer swap, round advances
//
// STATS / OUTPUTS / MEMORY are synchronous queries; QUIT ends the worker.
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <exception>

#include "local/shard_wire.hpp"
#include "local/sharding.hpp"
#include "util/require.hpp"

namespace lsample::local {

namespace {

enum class Cmd : std::int32_t {
  run = 1,
  deliver = 2,
  stats = 3,
  outputs = 4,
  memory = 5,
  quit = 6,
};

void write_all(int fd, const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (len > 0) {
    // MSG_NOSIGNAL: a dead worker surfaces as EPIPE, not SIGPIPE.
    const ssize_t k = ::send(fd, p, len, MSG_NOSIGNAL);
    if (k < 0) {
      if (errno == EINTR) continue;
      LS_REQUIRE(false, std::string("shard transport write failed: ") +
                            std::strerror(errno));
    }
    p += k;
    len -= static_cast<std::size_t>(k);
  }
}

void read_all(int fd, void* data, std::size_t len) {
  auto* p = static_cast<std::uint8_t*>(data);
  while (len > 0) {
    const ssize_t k = ::recv(fd, p, len, 0);
    if (k < 0) {
      if (errno == EINTR) continue;
      LS_REQUIRE(false, std::string("shard transport read failed: ") +
                            std::strerror(errno));
    }
    LS_REQUIRE(k > 0, "shard worker closed its transport socket");
    p += k;
    len -= static_cast<std::size_t>(k);
  }
}

void write_frame(int fd, const std::vector<std::uint8_t>& buf) {
  const auto len = static_cast<std::int64_t>(buf.size());
  write_all(fd, &len, sizeof(len));
  if (!buf.empty()) write_all(fd, buf.data(), buf.size());
}

std::vector<std::uint8_t> read_frame(int fd) {
  std::int64_t len = 0;
  read_all(fd, &len, sizeof(len));
  LS_REQUIRE(len >= 0, "malformed shard frame: negative length");
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(len));
  if (len > 0) read_all(fd, buf.data(), buf.size());
  return buf;
}

}  // namespace

// ---------------------------------------------------------------------------
// Parent side
// ---------------------------------------------------------------------------

class ProcessTransport final : public Transport {
 public:
  explicit ProcessTransport(ProcessTransportOptions options)
      : options_(std::move(options)) {}

  ~ProcessTransport() override {
    std::vector<std::uint8_t> quit;
    wire::put<std::int32_t>(quit, static_cast<std::int32_t>(Cmd::quit));
    for (std::size_t s = 0; s < fds_.size(); ++s) {
      if (fds_[s] < 0) continue;
      // Best effort — a crashed worker must not turn teardown into a throw.
      const auto len = static_cast<std::int64_t>(quit.size());
      (void)::send(fds_[s], &len, sizeof(len), MSG_NOSIGNAL);
      (void)::send(fds_[s], quit.data(), quit.size(), MSG_NOSIGNAL);
      ::close(fds_[s]);
    }
    for (const pid_t pid : pids_)
      if (pid > 0) ::waitpid(pid, nullptr, 0);
  }

  [[nodiscard]] const char* name() const noexcept override {
    return "process";
  }
  [[nodiscard]] bool remote() const noexcept override { return true; }

  void attach(ShardedNetwork& net) override {
    LS_REQUIRE(net.options().program_spec.has_value(),
               "the process transport needs a serialized program "
               "(ShardedNetwork::Options.program_spec); the factory fills it "
               "for Luby-Glauber and LocalMetropolis tables — CSP and MIS "
               "programs are in-process only");
    std::string path = options_.worker_path;
    if (path.empty()) {
      const char* env = std::getenv("LSAMPLE_SHARD_WORKER");
      if (env != nullptr) path = env;
    }
    LS_REQUIRE(!path.empty(),
               "the process transport needs the shard_worker binary: set "
               "ProcessTransportOptions.worker_path or $LSAMPLE_SHARD_WORKER");

    const ShardPlan& plan = net.plan();
    const int S = plan.num_shards();
    fds_.assign(static_cast<std::size_t>(S), -1);
    pids_.assign(static_cast<std::size_t>(S), -1);
    for (int s = 0; s < S; ++s) spawn_worker(path, s);
    for (int s = 0; s < S; ++s) send_setup(net, s);
    for (int s = 0; s < S; ++s) {
      // Workers reply READY (an empty frame) once the shard is built; a
      // failed rebuild surfaces here instead of deadlocking the first round.
      const auto ready = read_frame(fds_[static_cast<std::size_t>(s)]);
      LS_REQUIRE(ready.empty(), "shard worker sent an unexpected READY frame");
    }
  }

  void set_engine(ShardedNetwork&, chains::ParallelEngine* engine) override {
    LS_REQUIRE(engine == nullptr,
               "the process transport runs one OS process per shard; a "
               "ParallelEngine cannot drive remote shards — use the "
               "in-process transport for engine-threaded sharding");
  }

  void run_round(ShardedNetwork& net) override {
    const int S = net.plan().num_shards();
    std::vector<std::uint8_t> run;
    wire::put<std::int32_t>(run, static_cast<std::int32_t>(Cmd::run));
    for (int s = 0; s < S; ++s)
      write_frame(fds_[static_cast<std::size_t>(s)], run);

    // route[t][s]: bytes from shard s destined for shard t.
    std::vector<std::vector<std::vector<std::uint8_t>>> route(
        static_cast<std::size_t>(S),
        std::vector<std::vector<std::uint8_t>>(static_cast<std::size_t>(S)));
    for (int s = 0; s < S; ++s) {
      const auto reply = read_frame(fds_[static_cast<std::size_t>(s)]);
      wire::Reader reader(reply);
      for (int t = 0; t < S; ++t) {
        if (t == s) continue;
        auto buf = reader.get_vector<std::uint8_t>();
        accumulate_halo_frames(buf, net.halo_);
        route[static_cast<std::size_t>(t)][static_cast<std::size_t>(s)] =
            std::move(buf);
      }
      LS_REQUIRE(reader.remaining() == 0,
                 "shard worker round reply has trailing bytes");
    }
    for (int t = 0; t < S; ++t) {
      std::vector<std::uint8_t> deliver;
      wire::put<std::int32_t>(deliver, static_cast<std::int32_t>(Cmd::deliver));
      for (int s = 0; s < S; ++s) {
        if (s == t) continue;
        wire::put_vector(deliver,
                         route[static_cast<std::size_t>(t)]
                              [static_cast<std::size_t>(s)]);
      }
      write_frame(fds_[static_cast<std::size_t>(t)], deliver);
    }
  }

  void fill_outputs(const ShardedNetwork& net, mrf::Config& x) override {
    const ShardPlan& plan = net.plan();
    std::vector<std::uint8_t> cmd;
    wire::put<std::int32_t>(cmd, static_cast<std::int32_t>(Cmd::outputs));
    for (int s = 0; s < plan.num_shards(); ++s) {
      write_frame(fds_[static_cast<std::size_t>(s)], cmd);
      const auto reply = read_frame(fds_[static_cast<std::size_t>(s)]);
      wire::Reader reader(reply);
      const auto spins = reader.get_vector<std::int32_t>();
      const auto& owned = plan.part.shards[static_cast<std::size_t>(s)];
      LS_REQUIRE(spins.size() == owned.size(),
                 "shard worker returned the wrong number of outputs");
      for (std::size_t i = 0; i < owned.size(); ++i)
        x[static_cast<std::size_t>(owned[i])] = spins[i];
    }
  }

  [[nodiscard]] MessageStats program_stats(
      const ShardedNetwork& net) const override {
    // Logically const: a pure query round-trip on the sockets.
    auto* self = const_cast<ProcessTransport*>(this);
    MessageStats total;
    std::vector<std::uint8_t> cmd;
    wire::put<std::int32_t>(cmd, static_cast<std::int32_t>(Cmd::stats));
    for (int s = 0; s < net.plan().num_shards(); ++s) {
      write_frame(self->fds_[static_cast<std::size_t>(s)], cmd);
      const auto reply = read_frame(self->fds_[static_cast<std::size_t>(s)]);
      wire::Reader reader(reply);
      total.messages += reader.get<std::int64_t>();
      total.bits += reader.get<std::int64_t>();
    }
    return total;
  }

  [[nodiscard]] MemoryReport memory_report(
      const ShardedNetwork& net) const override {
    auto* self = const_cast<ProcessTransport*>(this);
    MemoryReport r;
    std::vector<std::uint8_t> cmd;
    wire::put<std::int32_t>(cmd, static_cast<std::int32_t>(Cmd::memory));
    for (int s = 0; s < net.plan().num_shards(); ++s) {
      write_frame(self->fds_[static_cast<std::size_t>(s)], cmd);
      const auto reply = read_frame(self->fds_[static_cast<std::size_t>(s)]);
      wire::Reader reader(reply);
      r.slots += reader.get<std::int64_t>();
      r.capacity_words = reader.get<std::int64_t>();
      r.arena_bytes += reader.get<std::int64_t>();
    }
    return r;
  }

 private:
  void spawn_worker(const std::string& path, int shard) {
    int pair[2];
    LS_REQUIRE(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair) == 0,
               std::string("socketpair failed: ") + std::strerror(errno));
    const pid_t pid = ::fork();
    LS_REQUIRE(pid >= 0, std::string("fork failed: ") + std::strerror(errno));
    if (pid == 0) {
      ::close(pair[0]);
      // Drop the parent ends of earlier workers' sockets.
      for (const int fd : fds_)
        if (fd >= 0) ::close(fd);
      char fd_arg[16];
      std::snprintf(fd_arg, sizeof(fd_arg), "%d", pair[1]);
      ::execl(path.c_str(), path.c_str(), fd_arg,
              static_cast<char*>(nullptr));
      std::fprintf(stderr, "shard_worker exec failed: %s: %s\n", path.c_str(),
                   std::strerror(errno));
      ::_exit(127);
    }
    ::close(pair[1]);
    fds_[static_cast<std::size_t>(shard)] = pair[0];
    pids_[static_cast<std::size_t>(shard)] = pid;
  }

  void send_setup(const ShardedNetwork& net, int shard) {
    const graph::Graph& g = net.g();
    const ShardPlan& plan = net.plan();
    const ShardProgramSpec& spec = *net.options().program_spec;

    std::vector<std::uint8_t> buf;
    wire::put<std::uint64_t>(buf, net.seed());
    wire::put<std::int32_t>(buf, shard);
    wire::put<std::int32_t>(buf, plan.num_shards());
    wire::put<std::int32_t>(buf, g.num_vertices());
    // Edges in id order: re-adding them yields the identical CSR, hence the
    // identical slots, mirror, and plan on the worker side.
    std::vector<std::int32_t> edges;
    edges.reserve(2 * static_cast<std::size_t>(g.num_edges()));
    for (int e = 0; e < g.num_edges(); ++e) {
      edges.push_back(g.edge(e).u);
      edges.push_back(g.edge(e).v);
    }
    wire::put_vector(buf, edges);
    wire::put_vector(buf, plan.part.shard_of);
    wire::put<std::int32_t>(buf, net.options().plan.compact_indices ? 1 : 0);
    wire::put<std::int64_t>(buf, net.options().plan.compact_index_limit);
    wire::put<std::int32_t>(buf, static_cast<std::int32_t>(spec.kind));
    wire::put<std::int32_t>(buf, spec.q);
    wire::put<std::int32_t>(buf, spec.priority_bits);
    wire::put_vector(buf, spec.vertex_activity);
    wire::put_vector(buf, spec.edge_activity);
    wire::put_vector(buf, spec.x0);
    write_frame(fds_[static_cast<std::size_t>(shard)], buf);
  }

  ProcessTransportOptions options_;
  std::vector<int> fds_;
  std::vector<pid_t> pids_;
};

std::unique_ptr<Transport> make_process_transport(
    ProcessTransportOptions options) {
  return std::make_unique<ProcessTransport>(std::move(options));
}

// ---------------------------------------------------------------------------
// Worker side (the shard_worker binary's whole logic)
// ---------------------------------------------------------------------------

namespace {

int serve_shard(int fd) {
  // --- setup frame ---
  const auto setup = read_frame(fd);
  wire::Reader reader(setup);
  const auto seed = reader.get<std::uint64_t>();
  const auto shard = reader.get<std::int32_t>();
  const auto num_shards = reader.get<std::int32_t>();
  const auto n = reader.get<std::int32_t>();
  const auto edges = reader.get_vector<std::int32_t>();
  const auto shard_of = reader.get_vector<std::int32_t>();
  ShardPlanOptions plan_options;
  plan_options.compact_indices = reader.get<std::int32_t>() != 0;
  plan_options.compact_index_limit = reader.get<std::int64_t>();
  ShardProgramSpec spec;
  spec.kind = static_cast<ShardProgramSpec::Kind>(reader.get<std::int32_t>());
  spec.q = reader.get<std::int32_t>();
  spec.priority_bits = reader.get<std::int32_t>();
  spec.vertex_activity = reader.get_vector<std::uint64_t>();
  spec.edge_activity = reader.get_vector<std::uint64_t>();
  spec.x0 = reader.get_vector<std::int32_t>();
  LS_REQUIRE(reader.remaining() == 0, "setup frame has trailing bytes");

  auto g = std::make_shared<graph::Graph>(n);
  LS_REQUIRE(edges.size() % 2 == 0, "setup frame edge list has odd length");
  for (std::size_t i = 0; i < edges.size(); i += 2)
    g->add_edge(edges[i], edges[i + 1]);
  const graph::GraphPtr gp = g;

  const graph::Partition part = graph::partition_from_assignment(
      num_shards, std::vector<int>(shard_of.begin(), shard_of.end()));
  const ShardPlan plan = make_shard_plan(*gp, part, plan_options);
  const std::vector<int> mirror = make_mirror_index(*gp);
  SpecProgram prog = instantiate_spec(spec, gp);
  prog.table->set_num_threads(1);

  Network net =
      ShardAccess::make_shard(gp, seed, plan, shard, mirror, prog.table.get());
  const auto& owned = plan.part.shards[static_cast<std::size_t>(shard)];

  write_frame(fd, {});  // READY

  std::vector<std::vector<std::uint8_t>> send_bufs(
      static_cast<std::size_t>(num_shards));
  std::vector<std::vector<std::uint8_t>> recv_bufs(
      static_cast<std::size_t>(num_shards));
  for (;;) {
    const auto frame = read_frame(fd);
    wire::Reader cmd_reader(frame);
    const auto cmd = static_cast<Cmd>(cmd_reader.get<std::int32_t>());
    switch (cmd) {
      case Cmd::run: {
        ShardAccess::begin_round(net);
        ShardAccess::run_vertices(net, 0, owned);
        ShardAccess::gather_halo(plan, shard, net, send_bufs, nullptr);
        std::vector<std::uint8_t> reply;
        for (int t = 0; t < num_shards; ++t)
          if (t != shard)
            wire::put_vector(reply, send_bufs[static_cast<std::size_t>(t)]);
        write_frame(fd, reply);
        break;
      }
      case Cmd::deliver: {
        for (int s = 0; s < num_shards; ++s)
          if (s != shard)
            recv_bufs[static_cast<std::size_t>(s)] =
                cmd_reader.get_vector<std::uint8_t>();
        LS_REQUIRE(cmd_reader.remaining() == 0,
                   "deliver frame has trailing bytes");
        ShardAccess::scatter_halo(plan, shard, net, recv_bufs);
        ShardAccess::finish_round(net);
        break;
      }
      case Cmd::stats: {
        std::vector<std::uint8_t> reply;
        wire::put<std::int64_t>(reply, ShardAccess::stats(net).messages);
        wire::put<std::int64_t>(reply, ShardAccess::stats(net).bits);
        write_frame(fd, reply);
        break;
      }
      case Cmd::outputs: {
        std::vector<std::int32_t> spins;
        spins.reserve(owned.size());
        for (const int v : owned)
          spins.push_back(prog.table->output(v));
        std::vector<std::uint8_t> reply;
        wire::put_vector(reply, spins);
        write_frame(fd, reply);
        break;
      }
      case Cmd::memory: {
        const MemoryReport r = net.memory_report();
        std::vector<std::uint8_t> reply;
        wire::put<std::int64_t>(reply, r.slots);
        wire::put<std::int64_t>(reply, r.capacity_words);
        wire::put<std::int64_t>(reply, r.arena_bytes);
        write_frame(fd, reply);
        break;
      }
      case Cmd::quit:
        return 0;
    }
  }
}

}  // namespace

int run_shard_worker(int fd) {
  try {
    return serve_shard(fd);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "shard_worker: %s\n", e.what());
    return 1;
  }
}

}  // namespace lsample::local
