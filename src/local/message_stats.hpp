// Communication accounting for the LOCAL-model simulator: rounds executed,
// messages delivered, and semantic bits transmitted (experiment E9 measures
// the paper's end-of-§1.1 "O(log n) bits per message" claim with these).
// Split out of network.hpp so the core facade can carry a MessageStats in
// its results without pulling in the whole runtime.
#pragma once

#include <cstdint>

namespace lsample::local {

struct MessageStats {
  std::int64_t rounds = 0;
  std::int64_t messages = 0;
  std::int64_t bits = 0;

  friend bool operator==(const MessageStats& a, const MessageStats& b) {
    return a.rounds == b.rounds && a.messages == b.messages && a.bits == b.bits;
  }
};

}  // namespace lsample::local
