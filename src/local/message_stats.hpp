// Communication accounting for the LOCAL-model simulator: rounds executed,
// messages delivered, and semantic bits transmitted (experiment E9 measures
// the paper's end-of-§1.1 "O(log n) bits per message" claim with these).
// Split out of network.hpp so the core facade can carry a MessageStats in
// its results without pulling in the whole runtime.
#pragma once

#include <cstdint>

namespace lsample::local {

struct MessageStats {
  std::int64_t rounds = 0;
  std::int64_t messages = 0;
  std::int64_t bits = 0;

  friend bool operator==(const MessageStats& a, const MessageStats& b) {
    return a.rounds == b.rounds && a.messages == b.messages && a.bits == b.bits;
  }
};

/// Halo (boundary) traffic of a SHARDED network (local/sharding.hpp): the
/// subset of the message volume that actually crosses a shard boundary.
/// `wire_bytes` counts what a transport serializes — an 8-byte (words, bits)
/// frame header per boundary slot per round plus 8 bytes per payload word —
/// while `semantic_bits` counts the accounted message bits that crossed (the
/// paper's §1.1 unit).
struct HaloStats {
  std::int64_t rounds = 0;
  std::int64_t cut_slots = 0;      ///< directed boundary slots per round
  std::int64_t halo_messages = 0;  ///< non-empty boundary messages (total)
  std::int64_t wire_bytes = 0;     ///< serialized bytes (total)
  std::int64_t semantic_bits = 0;  ///< accounted bits moved (total)
};

}  // namespace lsample::local
