// Internal byte-packing primitives shared by the sharded runtime's halo
// frames (sharding.cpp) and the process transport's socket protocol
// (process_transport.cpp / shard_worker).  Little-endian, memcpy-based —
// parent and workers run on the same host, so no byte-order translation.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "util/require.hpp"

namespace lsample::local::wire {

inline void put_bytes(std::vector<std::uint8_t>& buf, const void* data,
                      std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  buf.insert(buf.end(), p, p + len);
}

template <typename T>
inline void put(std::vector<std::uint8_t>& buf, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  put_bytes(buf, &value, sizeof(T));
}

template <typename T>
inline void put_vector(std::vector<std::uint8_t>& buf,
                       const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  put<std::int64_t>(buf, static_cast<std::int64_t>(v.size()));
  put_bytes(buf, v.data(), v.size() * sizeof(T));
}

/// Bounds-checked sequential reader over a received buffer.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> buf)
      : p_(buf.data()), end_(buf.data() + buf.size()) {}

  template <typename T>
  [[nodiscard]] T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    T value;
    take(&value, sizeof(T));
    return value;
  }

  template <typename T>
  [[nodiscard]] std::vector<T> get_vector() {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto size = get<std::int64_t>();
    LS_REQUIRE(size >= 0, "malformed shard frame: negative vector size");
    std::vector<T> v(static_cast<std::size_t>(size));
    take(v.data(), v.size() * sizeof(T));
    return v;
  }

  void take(void* dst, std::size_t len) {
    LS_REQUIRE(remaining() >= len, "malformed shard frame: truncated");
    std::memcpy(dst, p_, len);
    p_ += len;
  }

  void skip(std::size_t len) {
    LS_REQUIRE(remaining() >= len, "malformed shard frame: truncated");
    p_ += len;
  }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return static_cast<std::size_t>(end_ - p_);
  }

 private:
  const std::uint8_t* p_;
  const std::uint8_t* end_;
};

}  // namespace lsample::local::wire
