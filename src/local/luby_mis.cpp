#include "local/luby_mis.hpp"

#include <bit>

#include "chains/schedulers.hpp"
#include "util/require.hpp"

namespace lsample::local {

void LubyMisTable::run_nodes(Network& net, int thread,
                             std::span<const int> vertices) {
  const util::CounterRng& rng = net.rng();
  const auto off = net.g().csr_offsets();
  const auto nbr = net.g().neighbors_flat();
  const std::int64_t r = net.round();
  // Phases of two rounds: even round = publish (priority, state); odd round
  // = decide from received priorities, publish (priority unused, state).
  const bool publish_round = (r % 2) == 0;

  for (const int v : vertices) {
    NodeContext ctx = net.context(v, thread);
    const int base = off[static_cast<std::size_t>(v)];
    const int deg = off[static_cast<std::size_t>(v) + 1] - base;
    auto& state = state_[static_cast<std::size_t>(v)];

    if (!publish_round && state == undecided) {
      // Decide using the priorities published last round.
      const std::int64_t phase = r / 2;
      const double mine = chains::luby_priority(rng, v, phase);
      bool is_max = true;
      bool neighbor_joined = false;
      for (int port = 0; port < deg; ++port) {
        const auto msg = ctx.received(port);
        LS_ASSERT(msg.size() == 2, "malformed MIS message");
        const auto their_state = static_cast<State>(msg[1]);
        if (their_state == in_mis) neighbor_joined = true;
        if (their_state != undecided) continue;  // decided don't compete
        const double theirs = std::bit_cast<double>(msg[0]);
        const int u = nbr[static_cast<std::size_t>(base + port)];
        if (theirs > mine || (theirs == mine && u > v)) is_max = false;
      }
      if (neighbor_joined)
        state = out_mis;
      else if (is_max)
        state = in_mis;
    }

    // Publish this phase's priority and current state.
    const std::int64_t phase = (r + 1) / 2;
    const double priority = chains::luby_priority(rng, v, phase);
    const std::uint64_t words[2] = {std::bit_cast<std::uint64_t>(priority),
                                    static_cast<std::uint64_t>(state)};
    ctx.broadcast(words, 64 + 2);
  }
}

Network make_luby_mis_network(graph::GraphPtr g, std::uint64_t seed) {
  LS_REQUIRE(g != nullptr, "graph must not be null");
  const int n = g->num_vertices();
  return Network(std::move(g), seed, std::make_unique<LubyMisTable>(n));
}

std::int64_t run_luby_mis(Network& net, std::int64_t max_rounds) {
  const int n = net.g().num_vertices();
  for (std::int64_t r = 0; r < max_rounds; ++r) {
    net.run_round();
    // Termination check: output() alone cannot distinguish undecided from
    // out; use the known invariant that after each decide round the outputs
    // form an independent set and we can test maximality directly.
    if (r % 2 == 0) continue;
    const auto indicator = net.outputs();
    bool maximal = true;
    for (int v = 0; v < n && maximal; ++v) {
      if (indicator[static_cast<std::size_t>(v)] != 0) continue;
      bool dominated = false;
      for (int u : net.g().neighbors(v))
        if (indicator[static_cast<std::size_t>(u)] != 0) dominated = true;
      if (!dominated) maximal = false;
    }
    if (maximal) return r + 1;
  }
  return max_rounds;
}

}  // namespace lsample::local
