#include "local/network.hpp"

#include "chains/engine.hpp"
#include "util/require.hpp"

namespace lsample::local {

void NodeContext::fail_port(int port, const char* what) const {
  util::throw_requirement_failure(
      "0 <= port && port < degree()", __FILE__, __LINE__,
      std::string(what) + ": node " + std::to_string(id_) + ": port " +
          std::to_string(port) + " out of range [0, " +
          std::to_string(degree()) + ")");
}

Network::Network(graph::GraphPtr g, std::uint64_t seed,
                 const ProgramFactory& make, int message_capacity_words)
    : graph_(std::move(g)), rng_(seed) {
  LS_REQUIRE(graph_ != nullptr, "graph must not be null");
  programs_.reserve(static_cast<std::size_t>(graph_->num_vertices()));
  for (int v = 0; v < graph_->num_vertices(); ++v) {
    auto p = make(v);
    LS_REQUIRE(p != nullptr, "program factory returned null");
    programs_.push_back(std::move(p));
  }
  init_arena(message_capacity_words);
}

Network::Network(graph::GraphPtr g, std::uint64_t seed,
                 std::unique_ptr<NodeProgramTable> table)
    : graph_(std::move(g)), rng_(seed), table_(std::move(table)) {
  LS_REQUIRE(graph_ != nullptr, "graph must not be null");
  LS_REQUIRE(table_ != nullptr, "program table must not be null");
  init_arena(table_->message_capacity_words());
  table_->set_num_threads(1);
}

void Network::init_arena(int message_capacity_words) {
  LS_REQUIRE(message_capacity_words >= 1,
             "message capacity must be at least one word");
  cap_ = message_capacity_words;
  graph_->finalize();
  off_ = graph_->csr_offsets();
  inc_ = graph_->incident_edges_flat();
  nbr_ = graph_->neighbors_flat();

  // Every edge id appears exactly once in each endpoint's incident list
  // (self-loops are rejected by Graph), so pairing the two directed CSR
  // positions of each edge yields the mirror index received() follows.
  const std::size_t slots = inc_.size();
  mirror_.assign(slots, -1);
  std::vector<int> first_pos(static_cast<std::size_t>(graph_->num_edges()), -1);
  for (std::size_t p = 0; p < slots; ++p) {
    const auto e = static_cast<std::size_t>(inc_[p]);
    if (first_pos[e] < 0) {
      first_pos[e] = static_cast<int>(p);
    } else {
      mirror_[p] = first_pos[e];
      mirror_[static_cast<std::size_t>(first_pos[e])] = static_cast<int>(p);
    }
  }
  for (std::size_t p = 0; p < slots; ++p)
    LS_ASSERT(mirror_[p] >= 0, "unpaired directed edge slot");

  cur_words_.assign(slots * static_cast<std::size_t>(cap_), 0);
  next_words_.assign(slots * static_cast<std::size_t>(cap_), 0);
  cur_meta_.assign(slots, {});
  next_meta_.assign(slots, {});
  worker_stats_.assign(1, {});
}

void Network::set_engine(chains::ParallelEngine* engine) {
  engine_ = engine;
  const int threads = engine_ != nullptr ? engine_->num_threads() : 1;
  worker_stats_.assign(static_cast<std::size_t>(threads), {});
  if (table_ != nullptr) table_->set_num_threads(threads);
}

void Network::run_round() {
  const int n = graph_->num_vertices();
  for (auto& ws : worker_stats_) ws = {};
  const auto job = [&](int thread, int begin, int end) {
    // Clear this slice's out-slots: vertex slices partition the directed
    // slots, so each slot is cleared by exactly the thread that may write it.
    const auto slot_begin = static_cast<std::size_t>(
        off_[static_cast<std::size_t>(begin)]);
    const auto slot_end =
        static_cast<std::size_t>(off_[static_cast<std::size_t>(end)]);
    for (std::size_t s = slot_begin; s < slot_end; ++s) next_meta_[s] = {};
    if (table_ != nullptr) {
      table_->run_nodes(*this, thread, begin, end);
    } else {
      for (int v = begin; v < end; ++v) {
        NodeContext ctx(*this, v, thread);
        programs_[static_cast<std::size_t>(v)]->on_round(ctx);
      }
    }
  };
  chains::run_partitioned(engine_, n, job);
  std::swap(cur_words_, next_words_);
  std::swap(cur_meta_, next_meta_);
  ++round_;
  ++stats_.rounds;
  // Deterministic reduction in thread order (integer sums, so any order
  // would agree — the fixed order keeps the contract obvious).
  for (const auto& ws : worker_stats_) {
    stats_.messages += ws.messages;
    stats_.bits += ws.bits;
  }
}

void Network::run_rounds(std::int64_t rounds) {
  for (std::int64_t r = 0; r < rounds; ++r) run_round();
}

mrf::Config Network::outputs() const {
  mrf::Config x(static_cast<std::size_t>(graph_->num_vertices()));
  if (table_ != nullptr) {
    for (int v = 0; v < graph_->num_vertices(); ++v)
      x[static_cast<std::size_t>(v)] = table_->output(v);
  } else {
    for (int v = 0; v < graph_->num_vertices(); ++v)
      x[static_cast<std::size_t>(v)] =
          programs_[static_cast<std::size_t>(v)]->output();
  }
  return x;
}

}  // namespace lsample::local
