#include "local/network.hpp"

#include "util/require.hpp"

namespace lsample::local {

std::int64_t NodeContext::round() const noexcept { return net_->round_; }

int NodeContext::degree() const { return net_->g().degree(id_); }

int NodeContext::edge_of_port(int port) const {
  const auto inc = net_->g().incident_edges(id_);
  LS_REQUIRE(port >= 0 && port < static_cast<int>(inc.size()),
             "port out of range");
  return inc[static_cast<std::size_t>(port)];
}

int NodeContext::neighbor_of_port(int port) const {
  const auto nbr = net_->g().neighbors(id_);
  LS_REQUIRE(port >= 0 && port < static_cast<int>(nbr.size()),
             "port out of range");
  return nbr[static_cast<std::size_t>(port)];
}

void NodeContext::send(int port, std::span<const std::uint64_t> words,
                       int bits) {
  LS_REQUIRE(bits >= 0, "negative bit count");
  const int e = edge_of_port(port);
  const int receiver = neighbor_of_port(port);
  auto& msg = net_->next_[net_->buffer_index(e, receiver)];
  msg.words.assign(words.begin(), words.end());
  msg.bits = bits;
  msg.present = true;
  ++net_->stats_.messages;
  net_->stats_.bits += bits;
}

std::span<const std::uint64_t> NodeContext::received(int port) const {
  const int e = edge_of_port(port);
  const auto& msg = net_->cur_[net_->buffer_index(e, id_)];
  if (!msg.present) return {};
  return msg.words;
}

const util::CounterRng& NodeContext::rng() const noexcept {
  return net_->rng_;
}

Network::Network(graph::GraphPtr g, std::uint64_t seed,
                 const ProgramFactory& make)
    : graph_(std::move(g)), rng_(seed) {
  LS_REQUIRE(graph_ != nullptr, "graph must not be null");
  programs_.reserve(static_cast<std::size_t>(graph_->num_vertices()));
  for (int v = 0; v < graph_->num_vertices(); ++v) {
    auto p = make(v);
    LS_REQUIRE(p != nullptr, "program factory returned null");
    programs_.push_back(std::move(p));
  }
  cur_.assign(static_cast<std::size_t>(graph_->num_edges()) * 2, {});
  next_.assign(static_cast<std::size_t>(graph_->num_edges()) * 2, {});
}

std::size_t Network::buffer_index(int e, int receiver) const {
  const graph::Edge& ed = graph_->edge(e);
  LS_ASSERT(ed.u == receiver || ed.v == receiver, "receiver not on edge");
  return static_cast<std::size_t>(e) * 2 + (ed.v == receiver ? 1 : 0);
}

void Network::run_round() {
  for (auto& msg : next_) msg.present = false;
  for (int v = 0; v < graph_->num_vertices(); ++v) {
    NodeContext ctx(*this, v);
    programs_[static_cast<std::size_t>(v)]->on_round(ctx);
  }
  std::swap(cur_, next_);
  ++round_;
  ++stats_.rounds;
}

void Network::run_rounds(std::int64_t rounds) {
  for (std::int64_t r = 0; r < rounds; ++r) run_round();
}

mrf::Config Network::outputs() const {
  mrf::Config x(static_cast<std::size_t>(graph_->num_vertices()));
  for (int v = 0; v < graph_->num_vertices(); ++v)
    x[static_cast<std::size_t>(v)] =
        programs_[static_cast<std::size_t>(v)]->output();
  return x;
}

}  // namespace lsample::local
