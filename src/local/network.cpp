#include "local/network.hpp"

#include <numeric>

#include "chains/engine.hpp"
#include "util/require.hpp"

namespace lsample::local {

void NodeContext::fail_port(int port, const char* what) const {
  util::throw_requirement_failure(
      "0 <= port && port < degree()", __FILE__, __LINE__,
      std::string(what) + ": node " + std::to_string(id_) + ": port " +
          std::to_string(port) + " out of range [0, " +
          std::to_string(degree()) + ")");
}

Network::Network(graph::GraphPtr g, std::uint64_t seed,
                 const ProgramFactory& make, int message_capacity_words)
    : graph_(std::move(g)), rng_(seed) {
  LS_REQUIRE(graph_ != nullptr, "graph must not be null");
  programs_.reserve(static_cast<std::size_t>(graph_->num_vertices()));
  for (int v = 0; v < graph_->num_vertices(); ++v) {
    auto p = make(v);
    LS_REQUIRE(p != nullptr, "program factory returned null");
    programs_.push_back(std::move(p));
  }
  init_csr_views();
  build_mirror();
  init_arena(static_cast<std::int64_t>(inc_.size()), message_capacity_words);
  all_vertices_.resize(static_cast<std::size_t>(graph_->num_vertices()));
  std::iota(all_vertices_.begin(), all_vertices_.end(), 0);
}

Network::Network(graph::GraphPtr g, std::uint64_t seed,
                 std::unique_ptr<NodeProgramTable> table)
    : graph_(std::move(g)), rng_(seed), table_(std::move(table)) {
  LS_REQUIRE(graph_ != nullptr, "graph must not be null");
  LS_REQUIRE(table_ != nullptr, "program table must not be null");
  init_csr_views();
  build_mirror();
  init_arena(static_cast<std::int64_t>(inc_.size()),
             table_->message_capacity_words());
  all_vertices_.resize(static_cast<std::size_t>(graph_->num_vertices()));
  std::iota(all_vertices_.begin(), all_vertices_.end(), 0);
  table_->set_num_threads(1);
}

Network::Network(graph::GraphPtr g, std::uint64_t seed,
                 const ShardBinding& binding)
    : graph_(std::move(g)), rng_(seed) {
  LS_REQUIRE(graph_ != nullptr, "graph must not be null");
  LS_REQUIRE(binding.table != nullptr,
             "shard-mode networks require a shared program table");
  shard_mode_ = true;
  shared_table_ = binding.table;
  owned_vertices_ = binding.owned_vertices;
  out_local64_ = binding.out_local64;
  in_local64_ = binding.in_local64;
  out_local32_ = binding.out_local32;
  in_local32_ = binding.in_local32;
  init_csr_views();
  mirror_ = binding.mirror;
  LS_REQUIRE(mirror_.size() == inc_.size(),
             "shard mirror does not match this graph");
  init_arena(binding.local_slots, shared_table_->message_capacity_words());
}

void Network::init_csr_views() {
  graph_->finalize();
  off_ = graph_->csr_offsets();
  inc_ = graph_->incident_edges_flat();
  nbr_ = graph_->neighbors_flat();
}

std::vector<int> make_mirror_index(const graph::Graph& g) {
  // Every edge id appears exactly once in each endpoint's incident list
  // (self-loops are rejected by Graph), so pairing the two directed CSR
  // positions of each edge yields the mirror index received() follows.
  g.finalize();
  const auto inc = g.incident_edges_flat();
  const std::size_t slots = inc.size();
  std::vector<int> mirror(slots, -1);
  std::vector<int> first_pos(static_cast<std::size_t>(g.num_edges()), -1);
  for (std::size_t p = 0; p < slots; ++p) {
    const auto e = static_cast<std::size_t>(inc[p]);
    if (first_pos[e] < 0) {
      first_pos[e] = static_cast<int>(p);
    } else {
      mirror[p] = first_pos[e];
      mirror[static_cast<std::size_t>(first_pos[e])] = static_cast<int>(p);
    }
  }
  for (std::size_t p = 0; p < slots; ++p)
    LS_ASSERT(mirror[p] >= 0, "unpaired directed edge slot");
  return mirror;
}

void Network::build_mirror() {
  mirror_storage_ = make_mirror_index(*graph_);
  mirror_ = mirror_storage_;
}

void Network::init_arena(std::int64_t slots, int message_capacity_words) {
  LS_REQUIRE(message_capacity_words >= 1,
             "message capacity must be at least one word");
  LS_REQUIRE(slots >= 0, "negative slot count");
  cap_ = message_capacity_words;
  // Word indices are computed as slot * cap_ in std::size_t; this arena is
  // allocated up front, so the only scale limit is address space.
  const auto words =
      static_cast<std::size_t>(slots) * static_cast<std::size_t>(cap_);
  cur_words_.assign(words, 0);
  next_words_.assign(words, 0);
  cur_meta_.assign(static_cast<std::size_t>(slots), {});
  next_meta_.assign(static_cast<std::size_t>(slots), {});
  worker_stats_.assign(1, {});
}

void Network::set_engine(chains::ParallelEngine* engine) {
  LS_REQUIRE(!shard_mode_,
             "a shard-mode network is driven by its sharded runtime; attach "
             "the engine to the ShardedNetwork instead");
  engine_ = engine;
  const int threads = engine_ != nullptr ? engine_->num_threads() : 1;
  worker_stats_.assign(static_cast<std::size_t>(threads), {});
  if (table_ != nullptr) table_->set_num_threads(threads);
}

void Network::run_vertex_list(int thread, std::span<const int> vertices) {
  // Clear these vertices' out-slots: vertex lists partition the directed
  // slots, so each slot is cleared by exactly the call that may write it.
  for (const int v : vertices) {
    const auto begin = static_cast<std::size_t>(off_[static_cast<std::size_t>(v)]);
    const auto end =
        static_cast<std::size_t>(off_[static_cast<std::size_t>(v) + 1]);
    // Owned slots are consecutive in the local arena, so translate once.
    const std::size_t base = out_local(begin);
    LS_AUDIT_UNIT(v);
    LS_AUDIT_ONLY(for (std::size_t s = 0; s < end - begin; ++s) LS_AUDIT_WRITE(
        arena_meta, base + s, &next_meta_[base + s], sizeof(SlotMeta)););
    for (std::size_t s = 0; s < end - begin; ++s) next_meta_[base + s] = {};
  }
  if (NodeProgramTable* table = table_ptr(); table != nullptr) {
    table->run_nodes(*this, thread, vertices);
  } else {
    for (const int v : vertices) {
      NodeContext ctx(*this, v, thread);
      programs_[static_cast<std::size_t>(v)]->on_round(ctx);
    }
  }
}

void Network::finish_round() {
  std::swap(cur_words_, next_words_);
  std::swap(cur_meta_, next_meta_);
  ++round_;
  ++stats_.rounds;
  // Deterministic reduction in thread order (integer sums, so any order
  // would agree — the fixed order keeps the contract obvious).
  for (const auto& ws : worker_stats_) {
    stats_.messages += ws.messages;
    stats_.bits += ws.bits;
  }
}

void Network::run_round() {
  LS_REQUIRE(!shard_mode_,
             "a shard-mode network is driven by its sharded runtime; call "
             "ShardedNetwork::run_round instead");
  const int n = graph_->num_vertices();
  for (auto& ws : worker_stats_) ws = {};
  const auto job = [&](int thread, int begin, int end) {
    run_vertex_list(thread, std::span<const int>(all_vertices_)
                                .subspan(static_cast<std::size_t>(begin),
                                         static_cast<std::size_t>(end - begin)));
  };
  LS_AUDIT_SCOPE("Network.run_round");
  chains::run_partitioned(engine_, n, job);
  finish_round();
}

void Network::run_rounds(std::int64_t rounds) {
  for (std::int64_t r = 0; r < rounds; ++r) run_round();
}

mrf::Config Network::outputs() const {
  mrf::Config x(static_cast<std::size_t>(graph_->num_vertices()));
  if (const NodeProgramTable* table = table_ptr(); table != nullptr) {
    for (int v = 0; v < graph_->num_vertices(); ++v)
      x[static_cast<std::size_t>(v)] = table->output(v);
  } else {
    for (int v = 0; v < graph_->num_vertices(); ++v)
      x[static_cast<std::size_t>(v)] =
          programs_[static_cast<std::size_t>(v)]->output();
  }
  return x;
}

MemoryReport Network::memory_report() const noexcept {
  MemoryReport r;
  r.slots = static_cast<std::int64_t>(cur_meta_.size());
  r.capacity_words = cap_;
  r.arena_bytes =
      static_cast<std::int64_t>((cur_words_.size() + next_words_.size()) *
                                sizeof(std::uint64_t)) +
      static_cast<std::int64_t>((cur_meta_.size() + next_meta_.size()) *
                                sizeof(SlotMeta));
  r.mirror_bytes =
      static_cast<std::int64_t>(mirror_storage_.size() * sizeof(int));
  r.vertex_list_bytes =
      static_cast<std::int64_t>(all_vertices_.size() * sizeof(int));
  r.graph_csr_bytes = static_cast<std::int64_t>(
      (off_.size() + inc_.size() + nbr_.size()) * sizeof(int));
  return r;
}

}  // namespace lsample::local
