// Luby's classic distributed Maximal Independent Set protocol, as a LOCAL
// node program.
//
// Included for the paper's headline separation (discussion after Thm 1.3):
// *constructing* an independent set locally is trivial, and even a maximal
// one takes O(log n) rounds w.h.p. via Luby's algorithm — while *sampling* a
// uniform independent set requires Omega(diam) rounds (Theorem 1.3).
// Experiment E10 runs both on the same lower-bound graph.
//
// Protocol (per phase, 2 rounds):
//   round A: every live vertex draws a priority and sends (priority, state);
//   round B: local maxima join the MIS and announce it; their neighbors
//            drop out.
#pragma once

#include "local/network.hpp"

namespace lsample::local {

class LubyMisNode final : public NodeProgram {
 public:
  enum State : int { undecided = 0, in_mis = 1, out_mis = 2 };

  explicit LubyMisNode(int vertex) : v_(vertex) {}

  void on_round(NodeContext& ctx) override;

  /// 1 if the node decided to join the MIS, 0 otherwise (including still
  /// undecided).
  [[nodiscard]] int output() const noexcept override {
    return state_ == in_mis ? 1 : 0;
  }

  [[nodiscard]] State state() const noexcept { return state_; }

 private:
  int v_;
  State state_ = undecided;
};

/// Builds a Luby-MIS network over g.
[[nodiscard]] Network make_luby_mis_network(graph::GraphPtr g,
                                            std::uint64_t seed);

/// Runs the protocol until every node decided (or max_rounds); returns the
/// number of rounds used.  The output of the network is then the MIS
/// indicator.
std::int64_t run_luby_mis(Network& net, std::int64_t max_rounds = 10000);

}  // namespace lsample::local
