// Luby's classic distributed Maximal Independent Set protocol, as a LOCAL
// node-program table.
//
// Included for the paper's headline separation (discussion after Thm 1.3):
// *constructing* an independent set locally is trivial, and even a maximal
// one takes O(log n) rounds w.h.p. via Luby's algorithm — while *sampling* a
// uniform independent set requires Omega(diam) rounds (Theorem 1.3).
// Experiment E10 runs both on the same lower-bound graph.
//
// Protocol (per phase, 2 rounds):
//   round A: every live vertex draws a priority and sends (priority, state);
//   round B: local maxima join the MIS and announce it; their neighbors
//            drop out.
#pragma once

#include <vector>

#include "local/network.hpp"

namespace lsample::local {

/// The per-node protocol state, in one structure-of-arrays table.
class LubyMisTable final : public NodeProgramTable {
 public:
  enum State : int { undecided = 0, in_mis = 1, out_mis = 2 };

  explicit LubyMisTable(int num_vertices)
      : state_(static_cast<std::size_t>(num_vertices), undecided) {}

  [[nodiscard]] int message_capacity_words() const noexcept override {
    return 2;  // (priority, state)
  }
  void run_nodes(Network& net, int thread,
                 std::span<const int> vertices) override;

  /// 1 if the node decided to join the MIS, 0 otherwise (including still
  /// undecided).
  [[nodiscard]] int output(int v) const override {
    return state_[static_cast<std::size_t>(v)] == in_mis ? 1 : 0;
  }

  [[nodiscard]] State state(int v) const noexcept {
    return static_cast<State>(state_[static_cast<std::size_t>(v)]);
  }

 private:
  std::vector<int> state_;
};

/// Builds a Luby-MIS network over g.
[[nodiscard]] Network make_luby_mis_network(graph::GraphPtr g,
                                            std::uint64_t seed);

/// Runs the protocol until every node decided (or max_rounds); returns the
/// number of rounds used.  The output of the network is then the MIS
/// indicator.
std::int64_t run_luby_mis(Network& net, std::int64_t max_rounds = 10000);

}  // namespace lsample::local
