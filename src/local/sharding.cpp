#include "local/sharding.hpp"

#include <algorithm>
#include <bit>

#include "chains/engine.hpp"
#include "local/shard_wire.hpp"
#include "util/require.hpp"

namespace lsample::local {

// ---------------------------------------------------------------------------
// ShardPlan
// ---------------------------------------------------------------------------

ShardPlan make_shard_plan(const graph::Graph& g, graph::Partition part,
                          const ShardPlanOptions& options) {
  g.finalize();
  const auto off = g.csr_offsets();
  const auto nbr = g.neighbors_flat();
  const int n = g.num_vertices();
  const int S = part.num_shards;
  LS_REQUIRE(static_cast<int>(part.shard_of.size()) == n,
             "partition does not cover this graph's vertex set");

  ShardPlan plan;
  plan.part = std::move(part);
  const auto slots = static_cast<std::int64_t>(g.incident_edges_flat().size());
  plan.owned_slots.assign(static_cast<std::size_t>(S), 0);
  plan.halo_slots.assign(static_cast<std::size_t>(S), 0);
  plan.send_slots.assign(
      static_cast<std::size_t>(S),
      std::vector<std::vector<int>>(static_cast<std::size_t>(S)));
  if (S == 1) {
    // Identity wiring: empty translations, no boundary.
    plan.owned_slots[0] = slots;
    return plan;
  }

  const auto& shard_of = plan.part.shard_of;

  // Owned local indices: vertices ascending, so each vertex's slot slab is
  // contiguous in its shard arena and the owned region is in ascending
  // global slot order (broadcast() and the halo gather both rely on this).
  std::vector<std::int64_t> out64(static_cast<std::size_t>(slots), 0);
  std::vector<std::int64_t> in64(static_cast<std::size_t>(slots), 0);
  for (int v = 0; v < n; ++v) {
    const auto s = static_cast<std::size_t>(shard_of[static_cast<std::size_t>(v)]);
    for (int p = off[static_cast<std::size_t>(v)];
         p < off[static_cast<std::size_t>(v) + 1]; ++p)
      out64[static_cast<std::size_t>(p)] = plan.owned_slots[s]++;
  }

  // Reader-side indices: slot p, written by the vertex whose slab holds it,
  // is read by the shard of nbr[p], the vertex at the other end of the
  // edge.  Cross-shard slots land in the reader's halo region, after its
  // owned slots, in ascending global slot order — the same order
  // gather/scatter walk send_slots in.
  for (int v = 0; v < n; ++v) {
    const int owner = shard_of[static_cast<std::size_t>(v)];
    for (int p = off[static_cast<std::size_t>(v)];
         p < off[static_cast<std::size_t>(v) + 1]; ++p) {
      const int reader = shard_of[static_cast<std::size_t>(
          nbr[static_cast<std::size_t>(p)])];
      if (owner == reader) {
        in64[static_cast<std::size_t>(p)] = out64[static_cast<std::size_t>(p)];
      } else {
        in64[static_cast<std::size_t>(p)] =
            plan.owned_slots[static_cast<std::size_t>(reader)] +
            plan.halo_slots[static_cast<std::size_t>(reader)]++;
        plan.send_slots[static_cast<std::size_t>(owner)]
                       [static_cast<std::size_t>(reader)]
                           .push_back(p);
        ++plan.cut_slots;
      }
    }
  }

  if (options.compact_indices) {
    for (int s = 0; s < S; ++s) {
      const std::int64_t local =
          plan.owned_slots[static_cast<std::size_t>(s)] +
          plan.halo_slots[static_cast<std::size_t>(s)];
      LS_REQUIRE(
          local <= options.compact_index_limit,
          "32-bit compact slot indices requested but shard " +
              std::to_string(s) + " needs " + std::to_string(local) +
              " local arena slots, exceeding the compact-index limit of " +
              std::to_string(options.compact_index_limit) +
              "; use 64-bit indices (compact_indices = false)");
    }
    plan.out_local32.assign(out64.begin(), out64.end());
    plan.in_local32.assign(in64.begin(), in64.end());
  } else {
    plan.out_local64 = std::move(out64);
    plan.in_local64 = std::move(in64);
  }
  return plan;
}

// ---------------------------------------------------------------------------
// Program specs (process-transport serialization)
// ---------------------------------------------------------------------------

namespace {

void fill_model_spec(ShardProgramSpec& spec, const mrf::Mrf& m,
                     const mrf::Config& x0) {
  const int n = m.n();
  const int q = m.q();
  spec.q = q;
  spec.vertex_activity.reserve(static_cast<std::size_t>(n) *
                               static_cast<std::size_t>(q));
  for (int v = 0; v < n; ++v)
    for (const double b : m.vertex_activity(v))
      spec.vertex_activity.push_back(std::bit_cast<std::uint64_t>(b));
  spec.edge_activity.reserve(static_cast<std::size_t>(m.g().num_edges()) *
                             static_cast<std::size_t>(q) *
                             static_cast<std::size_t>(q));
  for (int e = 0; e < m.g().num_edges(); ++e) {
    const mrf::ActivityMatrix& a = m.edge_activity(e);
    for (int i = 0; i < q; ++i)
      for (int j = 0; j < q; ++j)
        spec.edge_activity.push_back(std::bit_cast<std::uint64_t>(a.at(i, j)));
  }
  spec.x0.assign(x0.begin(), x0.end());
}

}  // namespace

ShardProgramSpec make_luby_glauber_spec(const mrf::Mrf& m,
                                        const mrf::Config& x0,
                                        LubyGlauberNetOptions options) {
  ShardProgramSpec spec;
  spec.kind = ShardProgramSpec::Kind::luby_glauber;
  spec.priority_bits = options.priority_bits;
  fill_model_spec(spec, m, x0);
  return spec;
}

ShardProgramSpec make_local_metropolis_spec(const mrf::Mrf& m,
                                            const mrf::Config& x0) {
  ShardProgramSpec spec;
  spec.kind = ShardProgramSpec::Kind::local_metropolis;
  fill_model_spec(spec, m, x0);
  return spec;
}

SpecProgram instantiate_spec(const ShardProgramSpec& spec, graph::GraphPtr g) {
  LS_REQUIRE(g != nullptr, "graph must not be null");
  const int n = g->num_vertices();
  const int q = spec.q;
  LS_REQUIRE(q >= 1, "program spec has no spin domain");
  LS_REQUIRE(spec.vertex_activity.size() ==
                 static_cast<std::size_t>(n) * static_cast<std::size_t>(q),
             "program spec vertex activities do not match the graph");
  LS_REQUIRE(spec.edge_activity.size() ==
                 static_cast<std::size_t>(g->num_edges()) *
                     static_cast<std::size_t>(q) * static_cast<std::size_t>(q),
             "program spec edge activities do not match the graph");
  LS_REQUIRE(spec.x0.size() == static_cast<std::size_t>(n),
             "program spec initial configuration does not match the graph");

  auto m = std::make_unique<mrf::Mrf>(g, q);
  {
    std::vector<double> b(static_cast<std::size_t>(q));
    for (int v = 0; v < n; ++v) {
      for (int c = 0; c < q; ++c)
        b[static_cast<std::size_t>(c)] = std::bit_cast<double>(
            spec.vertex_activity[static_cast<std::size_t>(v) *
                                     static_cast<std::size_t>(q) +
                                 static_cast<std::size_t>(c)]);
      m->set_vertex_activity(v, b);
    }
    std::vector<double> entries(static_cast<std::size_t>(q) *
                                static_cast<std::size_t>(q));
    for (int e = 0; e < g->num_edges(); ++e) {
      const std::size_t base = static_cast<std::size_t>(e) * entries.size();
      for (std::size_t k = 0; k < entries.size(); ++k)
        entries[k] = std::bit_cast<double>(spec.edge_activity[base + k]);
      m->set_edge_activity(e, mrf::ActivityMatrix(q, entries));
    }
  }
  mrf::Config x0(spec.x0.begin(), spec.x0.end());
  auto cm = std::make_shared<const mrf::CompiledMrf>(*m);

  SpecProgram out;
  switch (spec.kind) {
    case ShardProgramSpec::Kind::luby_glauber: {
      LubyGlauberNetOptions opt;
      opt.priority_bits = spec.priority_bits;
      out.table = std::make_unique<LubyGlauberTable>(std::move(cm), x0, opt);
      break;
    }
    case ShardProgramSpec::Kind::local_metropolis:
      out.table = std::make_unique<LocalMetropolisTable>(std::move(cm), x0);
      break;
    default:
      LS_REQUIRE(false, "unknown program spec kind");
  }
  out.mrf = std::move(m);
  return out;
}

// ---------------------------------------------------------------------------
// ShardAccess — the Network shard-mode bridge
// ---------------------------------------------------------------------------

Network ShardAccess::make_shard(graph::GraphPtr g, std::uint64_t seed,
                                const ShardPlan& plan, int shard,
                                std::span<const int> mirror,
                                NodeProgramTable* table) {
  LS_REQUIRE(shard >= 0 && shard < plan.num_shards(), "shard id out of range");
  Network::ShardBinding binding;
  binding.owned_vertices =
      plan.part.shards[static_cast<std::size_t>(shard)];
  binding.mirror = mirror;
  binding.out_local64 = plan.out_local64;
  binding.in_local64 = plan.in_local64;
  binding.out_local32 = plan.out_local32;
  binding.in_local32 = plan.in_local32;
  binding.local_slots = plan.owned_slots[static_cast<std::size_t>(shard)] +
                        plan.halo_slots[static_cast<std::size_t>(shard)];
  binding.table = table;
  return Network(std::move(g), seed, binding);
}

void ShardAccess::set_threads(Network& net, int threads) {
  net.worker_stats_.assign(static_cast<std::size_t>(threads), {});
}

void ShardAccess::begin_round(Network& net) {
  for (auto& ws : net.worker_stats_) ws = {};
}

void ShardAccess::run_vertices(Network& net, int thread,
                               std::span<const int> vertices) {
  net.run_vertex_list(thread, vertices);
}

void ShardAccess::finish_round(Network& net) { net.finish_round(); }

const MessageStats& ShardAccess::stats(const Network& net) {
  return net.stats_;
}

void ShardAccess::gather_halo(const ShardPlan& plan, int shard,
                              const Network& net,
                              std::vector<std::vector<std::uint8_t>>& bufs,
                              HaloStats* halo) {
  const int S = plan.num_shards();
  const auto cap = static_cast<std::size_t>(net.cap_);
  for (int t = 0; t < S; ++t) {
    if (t == shard) continue;
    // One halo frame (ordered shard pair) is one audit unit: gathers read
    // the sender's owned slots, scatters write the receiver's halo slots,
    // and any aliasing between the two shows up at the epoch check.
    LS_AUDIT_UNIT(static_cast<std::int64_t>(shard) * S + t);
    auto& buf = bufs[static_cast<std::size_t>(t)];
    buf.clear();
    for (const int p : plan.send_slots[static_cast<std::size_t>(shard)]
                                      [static_cast<std::size_t>(t)]) {
      const std::size_t lp = net.out_local(static_cast<std::size_t>(p));
      LS_AUDIT_ONLY(
          LS_AUDIT_READ(arena_meta, lp, &net.next_meta_[lp],
                        sizeof(Network::SlotMeta));
          LS_AUDIT_READ(arena_words, lp, net.next_words_.data() + lp * cap,
                        cap * sizeof(std::uint64_t)););
      const auto meta = net.next_meta_[lp];
      wire::put<std::int32_t>(buf, meta.words);
      wire::put<std::int32_t>(buf, meta.bits);
      if (meta.words > 0)
        wire::put_bytes(buf, net.next_words_.data() + lp * cap,
                        static_cast<std::size_t>(meta.words) *
                            sizeof(std::uint64_t));
      if (halo != nullptr) {
        halo->wire_bytes +=
            8 + (meta.words > 0 ? std::int64_t{8} * meta.words : 0);
        if (meta.words >= 0) {
          ++halo->halo_messages;
          halo->semantic_bits += meta.bits;
        }
      }
    }
  }
}

void ShardAccess::scatter_halo(
    const ShardPlan& plan, int shard, Network& net,
    const std::vector<std::vector<std::uint8_t>>& bufs) {
  const int S = plan.num_shards();
  const auto cap = static_cast<std::size_t>(net.cap_);
  for (int s = 0; s < S; ++s) {
    if (s == shard) continue;
    LS_AUDIT_UNIT(static_cast<std::int64_t>(s) * S + shard);
    wire::Reader reader(bufs[static_cast<std::size_t>(s)]);
    for (const int p : plan.send_slots[static_cast<std::size_t>(s)]
                                      [static_cast<std::size_t>(shard)]) {
      const auto words = reader.get<std::int32_t>();
      const auto bits = reader.get<std::int32_t>();
      LS_REQUIRE(words <= net.cap_,
                 "halo frame exceeds this arena's message capacity");
      const std::size_t lp = net.in_local(static_cast<std::size_t>(p));
      LS_AUDIT_WRITE(halo, lp, &net.next_meta_[lp],
                     sizeof(Network::SlotMeta));
      LS_AUDIT_ONLY(if (words > 0) LS_AUDIT_WRITE(
          halo, lp, net.next_words_.data() + lp * cap,
          static_cast<std::size_t>(words) * sizeof(std::uint64_t)););
      net.next_meta_[lp] = {words, bits};
      if (words > 0)
        reader.take(net.next_words_.data() + lp * cap,
                    static_cast<std::size_t>(words) * sizeof(std::uint64_t));
    }
    LS_REQUIRE(reader.remaining() == 0,
               "halo frame has trailing bytes: sender/receiver plans differ");
  }
}

void accumulate_halo_frames(std::span<const std::uint8_t> buf,
                            HaloStats& halo) {
  wire::Reader reader(buf);
  while (reader.remaining() > 0) {
    const auto words = reader.get<std::int32_t>();
    const auto bits = reader.get<std::int32_t>();
    if (words > 0)
      reader.skip(static_cast<std::size_t>(words) * sizeof(std::uint64_t));
    halo.wire_bytes += 8 + (words > 0 ? std::int64_t{8} * words : 0);
    if (words >= 0) {
      ++halo.halo_messages;
      halo.semantic_bits += bits;
    }
  }
}

// ---------------------------------------------------------------------------
// InProcessTransport — shards as engine jobs in one address space
// ---------------------------------------------------------------------------

class InProcessTransport final : public Transport {
 public:
  [[nodiscard]] const char* name() const noexcept override {
    return "in_process";
  }

  void attach(ShardedNetwork& net) override {
    const ShardPlan& plan = net.plan();
    const int S = plan.num_shards();
    shards_.reserve(static_cast<std::size_t>(S));
    for (int s = 0; s < S; ++s)
      shards_.push_back(ShardAccess::make_shard(
          net.graph_ptr(), net.seed(), plan, s, net.mirror(), net.table()));
    send_.assign(static_cast<std::size_t>(S),
                 std::vector<std::vector<std::uint8_t>>(
                     static_cast<std::size_t>(S)));
    recv_ = send_;
    starts_.assign(static_cast<std::size_t>(S) + 1, 0);
    for (int s = 0; s < S; ++s)
      starts_[static_cast<std::size_t>(s) + 1] =
          starts_[static_cast<std::size_t>(s)] +
          static_cast<int>(plan.part.shards[static_cast<std::size_t>(s)].size());
    net.table()->set_num_threads(1);
  }

  void set_engine(ShardedNetwork& net,
                  chains::ParallelEngine* engine) override {
    engine_ = engine;
    const int threads = engine_ != nullptr ? engine_->num_threads() : 1;
    for (auto& shard : shards_) ShardAccess::set_threads(shard, threads);
    net.table()->set_num_threads(threads);
  }

  void run_round(ShardedNetwork& net) override {
    const ShardPlan& plan = net.plan();
    const int S = plan.num_shards();
    for (auto& shard : shards_) ShardAccess::begin_round(shard);

    // One engine job over the concatenation of the shard vertex lists —
    // "shards as engine jobs".  Chunk boundaries are deterministic, every
    // write is slot- or vertex-owned, and per-(shard, thread) stats are
    // integer sums, so the trajectory and MessageStats are thread-count
    // invariant exactly as in the single-arena network.
    const int total = starts_[static_cast<std::size_t>(S)];
    const auto job = [&](int thread, int begin, int end) {
      int pos = begin;
      while (pos < end) {
        const auto it =
            std::upper_bound(starts_.begin(), starts_.end(), pos);
        const int s = static_cast<int>(it - starts_.begin()) - 1;
        const int run_end =
            std::min(end, starts_[static_cast<std::size_t>(s) + 1]);
        const auto& verts = plan.part.shards[static_cast<std::size_t>(s)];
        ShardAccess::run_vertices(
            shards_[static_cast<std::size_t>(s)], thread,
            std::span<const int>(verts).subspan(
                static_cast<std::size_t>(pos -
                                         starts_[static_cast<std::size_t>(s)]),
                static_cast<std::size_t>(run_end - pos)));
        pos = run_end;
      }
    };
    chains::run_partitioned(engine_, total, job);

    if (S > 1) {
      const auto exchange = [&] {
        for (int s = 0; s < S; ++s)
          ShardAccess::gather_halo(plan, s,
                                   shards_[static_cast<std::size_t>(s)],
                                   send_[static_cast<std::size_t>(s)],
                                   &net.halo_);
        // The in-process "wire" is a buffer swap; byte accounting above is
        // what a real transport would serialize.
        for (int t = 0; t < S; ++t)
          for (int s = 0; s < S; ++s)
            if (s != t)
              recv_[static_cast<std::size_t>(t)][static_cast<std::size_t>(s)]
                  .swap(send_[static_cast<std::size_t>(s)]
                             [static_cast<std::size_t>(t)]);
        for (int t = 0; t < S; ++t)
          ShardAccess::scatter_halo(plan, t,
                                    shards_[static_cast<std::size_t>(t)],
                                    recv_[static_cast<std::size_t>(t)]);
      };
#if defined(LSAMPLE_AUDIT)
      if (chains::audit::enabled()) {
        // The whole exchange is one barrier epoch: gathers read owned
        // slots, scatters write halo slots, and the closing check proves
        // the two never alias in any shard's arena.
        LS_AUDIT_SCOPE("ShardedNetwork.halo_exchange");
        chains::audit::SequentialEpoch epoch;
        exchange();
        epoch.check();
      } else {
        exchange();
      }
#else
      exchange();
#endif
    }
    for (auto& shard : shards_) ShardAccess::finish_round(shard);
  }

  void fill_outputs(const ShardedNetwork& net, mrf::Config& x) override {
    const NodeProgramTable* table = net.table();
    for (std::size_t v = 0; v < x.size(); ++v)
      x[v] = table->output(static_cast<int>(v));
  }

  [[nodiscard]] MessageStats program_stats(
      const ShardedNetwork&) const override {
    MessageStats s;
    for (const auto& shard : shards_) {
      s.messages += ShardAccess::stats(shard).messages;
      s.bits += ShardAccess::stats(shard).bits;
    }
    return s;
  }

  [[nodiscard]] MemoryReport memory_report(
      const ShardedNetwork&) const override {
    MemoryReport r;
    for (const auto& shard : shards_) {
      const MemoryReport sr = shard.memory_report();
      r.slots += sr.slots;
      r.capacity_words = sr.capacity_words;
      r.arena_bytes += sr.arena_bytes;
    }
    return r;
  }

 private:
  std::vector<Network> shards_;
  std::vector<std::vector<std::vector<std::uint8_t>>> send_, recv_;
  std::vector<int> starts_;  ///< concat offsets of the shard vertex lists
  chains::ParallelEngine* engine_ = nullptr;
};

std::unique_ptr<Transport> make_in_process_transport() {
  return std::make_unique<InProcessTransport>();
}

// ---------------------------------------------------------------------------
// ShardedNetwork
// ---------------------------------------------------------------------------

ShardedNetwork::ShardedNetwork(graph::GraphPtr g, std::uint64_t seed,
                               std::unique_ptr<NodeProgramTable> table,
                               Options options,
                               std::unique_ptr<Transport> transport)
    : graph_(std::move(g)),
      seed_(seed),
      table_(std::move(table)),
      options_(std::move(options)) {
  LS_REQUIRE(graph_ != nullptr, "graph must not be null");
  LS_REQUIRE(table_ != nullptr, "sharded networks require a program table");
  plan_ = make_shard_plan(
      *graph_, graph::make_partition(*graph_, options_.partition),
      options_.plan);
  quality_ = graph::partition_quality(*graph_, plan_.part);
  mirror_ = make_mirror_index(*graph_);
  halo_.cut_slots = plan_.cut_slots;
  transport_ =
      transport != nullptr ? std::move(transport) : make_in_process_transport();
  transport_->attach(*this);
}

void ShardedNetwork::set_engine(chains::ParallelEngine* engine) {
  transport_->set_engine(*this, engine);
  engine_ = engine;
}

void ShardedNetwork::run_round() {
  transport_->run_round(*this);
  ++round_;
  ++halo_.rounds;
}

void ShardedNetwork::run_rounds(std::int64_t rounds) {
  for (std::int64_t r = 0; r < rounds; ++r) run_round();
}

MessageStats ShardedNetwork::stats() const {
  MessageStats s = transport_->program_stats(*this);
  s.rounds = round_;
  return s;
}

mrf::Config ShardedNetwork::outputs() const {
  mrf::Config x(static_cast<std::size_t>(graph_->num_vertices()));
  transport_->fill_outputs(*this, x);
  return x;
}

MemoryReport ShardedNetwork::memory_report() const {
  MemoryReport r = transport_->memory_report(*this);
  r.mirror_bytes +=
      static_cast<std::int64_t>(mirror_.size() * sizeof(int));
  r.translation_bytes += plan_.translation_bytes();
  std::int64_t vertex_list = static_cast<std::int64_t>(
      plan_.part.shard_of.size() * sizeof(int));
  for (const auto& verts : plan_.part.shards)
    vertex_list += static_cast<std::int64_t>(verts.size() * sizeof(int));
  r.vertex_list_bytes += vertex_list;
  r.graph_csr_bytes = static_cast<std::int64_t>(
      (graph_->csr_offsets().size() + graph_->incident_edges_flat().size() +
       graph_->neighbors_flat().size()) *
      sizeof(int));
  return r;
}

// ---------------------------------------------------------------------------
// Factories
// ---------------------------------------------------------------------------

ShardedNetwork make_sharded_luby_glauber_network(
    std::shared_ptr<const mrf::CompiledMrf> cm, const mrf::Config& x0,
    std::uint64_t seed, ShardedNetwork::Options options,
    LubyGlauberNetOptions net_options, std::unique_ptr<Transport> transport) {
  LS_REQUIRE(cm != nullptr, "compiled view must not be null");
  auto g = cm->mrf().graph_ptr();
  if (transport != nullptr && transport->remote() &&
      !options.program_spec.has_value())
    options.program_spec = make_luby_glauber_spec(cm->mrf(), x0, net_options);
  auto table = std::make_unique<LubyGlauberTable>(std::move(cm), x0,
                                                  net_options);
  return ShardedNetwork(std::move(g), seed, std::move(table),
                        std::move(options), std::move(transport));
}

ShardedNetwork make_sharded_luby_glauber_network(
    const mrf::Mrf& m, const mrf::Config& x0, std::uint64_t seed,
    ShardedNetwork::Options options, LubyGlauberNetOptions net_options,
    std::unique_ptr<Transport> transport) {
  return make_sharded_luby_glauber_network(
      std::make_shared<const mrf::CompiledMrf>(m), x0, seed,
      std::move(options), net_options, std::move(transport));
}

ShardedNetwork make_sharded_local_metropolis_network(
    std::shared_ptr<const mrf::CompiledMrf> cm, const mrf::Config& x0,
    std::uint64_t seed, ShardedNetwork::Options options,
    std::unique_ptr<Transport> transport) {
  LS_REQUIRE(cm != nullptr, "compiled view must not be null");
  auto g = cm->mrf().graph_ptr();
  if (transport != nullptr && transport->remote() &&
      !options.program_spec.has_value())
    options.program_spec = make_local_metropolis_spec(cm->mrf(), x0);
  auto table = std::make_unique<LocalMetropolisTable>(std::move(cm), x0);
  return ShardedNetwork(std::move(g), seed, std::move(table),
                        std::move(options), std::move(transport));
}

ShardedNetwork make_sharded_local_metropolis_network(
    const mrf::Mrf& m, const mrf::Config& x0, std::uint64_t seed,
    ShardedNetwork::Options options, std::unique_ptr<Transport> transport) {
  return make_sharded_local_metropolis_network(
      std::make_shared<const mrf::CompiledMrf>(m), x0, seed,
      std::move(options), std::move(transport));
}

}  // namespace lsample::local
