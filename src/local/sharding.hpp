// Sharded LOCAL runtime: the network partitioned into per-shard message
// arenas exchanging only boundary-edge ("halo") slots per round.
//
// The paper's model IS a distributed system; this module makes the
// simulator one.  A graph::Partition assigns every vertex to a shard; each
// shard owns the arena slots of its vertices (a contiguous re-indexing of
// the global CSR slots) plus a halo region holding the boundary slots it
// reads from other shards.  One round is:
//
//   1. every shard runs its vertices' node programs (writes land in the
//      shard's own next-round buffer),
//   2. HALO EXCHANGE: for every ordered shard pair (s, t), the boundary
//      slots owned by s and read by t are gathered into a byte buffer,
//      moved by the Transport, and scattered into t's halo region,
//   3. every shard swaps buffers and the round advances.
//
// Because slots are CSR-indexed, the gather/scatter walks a precomputed
// ascending slot list per pair — no per-message routing.  And because every
// counter-RNG draw is a pure function of (node/edge id, round), the sharded
// trajectory is BIT-IDENTICAL to the single-arena local::Network at any
// shard count and any thread count, with identical MessageStats — the tests
// assert both.  What sharding adds is an honest measurement: HaloStats
// counts the bytes that actually cross a shard boundary, which is the
// paper's end-of-§1.1 O(log n)-bits-per-message claim measured on the wire
// (bench/fig_e9_message_bits).
//
// Transports:
//   * InProcessTransport (default) — shards share one address space and one
//     program table; rounds run as ParallelEngine jobs over the
//     concatenated shard vertex lists; the halo exchange is a buffer swap.
//   * ProcessTransport — one shard_worker process per shard over
//     socketpairs; workers rebuild the graph, partition, and program from a
//     serialized ShardProgramSpec bit-exactly, and the parent routes halo
//     frames between them (star topology).  MRF tables only (CSP and MIS
//     state is not serialized); incompatible with an attached engine.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "graph/partition.hpp"
#include "local/network.hpp"
#include "local/node_programs.hpp"
#include "mrf/compiled.hpp"
#include "mrf/mrf.hpp"

namespace lsample::chains {
class ParallelEngine;
}  // namespace lsample::chains

namespace lsample::local {

class ShardedNetwork;
class InProcessTransport;
class ProcessTransport;

struct ShardPlanOptions {
  /// Store the global->local slot translations as 32-bit ints (halves the
  /// plan's footprint at n·Δ scale); rejected with a named error when a
  /// shard's arena needs more local slots than the limit below.
  bool compact_indices = false;
  /// The largest local arena 32-bit compact indices may address.  A test
  /// hook — leave at the default (2^31 - 1) in real use.
  std::int64_t compact_index_limit = std::numeric_limits<std::int32_t>::max();
};

/// Global wiring of one partition: local arena sizes, the global-slot ->
/// local-arena translations, and the per-ordered-pair boundary slot lists
/// the halo exchange walks.  Deterministic function of (graph, partition,
/// options) — shard worker processes rebuild the identical plan from the
/// shard assignment alone.
struct ShardPlan {
  graph::Partition part;
  /// Per shard: owned directed slots / halo slots read from other shards.
  /// A shard's arena holds owned_slots[s] + halo_slots[s] slots: owned
  /// slots first (ascending global slot id, so a vertex's slab stays
  /// contiguous), then halo slots (ascending global slot id).
  std::vector<std::int64_t> owned_slots;
  std::vector<std::int64_t> halo_slots;
  /// Translations, global slot -> local arena index; exactly one pair is
  /// populated when num_shards > 1 (both empty = identity, the single-shard
  /// case).  out_local indexes the OWNER shard's arena, in_local the READER
  /// shard's arena.
  std::vector<std::int64_t> out_local64, in_local64;
  std::vector<std::int32_t> out_local32, in_local32;
  /// send_slots[s][t]: global slots owned by shard s and read by shard t,
  /// ascending (empty when s == t).  Gather and scatter walk the same list,
  /// so frames need no addressing.
  std::vector<std::vector<std::vector<int>>> send_slots;
  std::int64_t cut_slots = 0;  ///< total directed boundary slots

  [[nodiscard]] int num_shards() const noexcept { return part.num_shards; }
  [[nodiscard]] std::int64_t translation_bytes() const noexcept {
    return static_cast<std::int64_t>(
        (out_local64.size() + in_local64.size()) * sizeof(std::int64_t) +
        (out_local32.size() + in_local32.size()) * sizeof(std::int32_t));
  }
};

[[nodiscard]] ShardPlan make_shard_plan(const graph::Graph& g,
                                        graph::Partition part,
                                        const ShardPlanOptions& options = {});

/// Everything a shard_worker process needs to rebuild the model and program
/// table bit-exactly: q, the program kind and parameters, activities as raw
/// IEEE-754 bit patterns (no decimal round-trip), and the initial spins.
/// The graph's edge list and the shard assignment travel separately.
struct ShardProgramSpec {
  enum class Kind : std::int32_t {
    luby_glauber = 1,
    local_metropolis = 2,
  };
  Kind kind = Kind::luby_glauber;
  std::int32_t q = 0;
  std::int32_t priority_bits = kPriorityBits;  ///< luby_glauber only
  std::vector<std::uint64_t> vertex_activity;  ///< n*q doubles, bit-cast
  std::vector<std::uint64_t> edge_activity;    ///< m*q*q doubles, bit-cast
  std::vector<std::int32_t> x0;
};

[[nodiscard]] ShardProgramSpec make_luby_glauber_spec(
    const mrf::Mrf& m, const mrf::Config& x0,
    LubyGlauberNetOptions options = {});
[[nodiscard]] ShardProgramSpec make_local_metropolis_spec(
    const mrf::Mrf& m, const mrf::Config& x0);

/// A spec instantiated in this process: the rebuilt Mrf must outlive the
/// table's compiled view, so both travel together.
struct SpecProgram {
  std::unique_ptr<mrf::Mrf> mrf;
  std::unique_ptr<NodeProgramTable> table;
};
[[nodiscard]] SpecProgram instantiate_spec(const ShardProgramSpec& spec,
                                           graph::GraphPtr g);

/// Strategy executing rounds of a ShardedNetwork: run every shard's node
/// programs, move the halo bytes, advance the round.  Implementations live
/// behind make_in_process_transport / make_process_transport.
class Transport {
 public:
  virtual ~Transport() = default;

  [[nodiscard]] virtual const char* name() const noexcept = 0;
  /// True when shard state lives outside this process.
  [[nodiscard]] virtual bool remote() const noexcept { return false; }

  /// Called once, from the ShardedNetwork constructor.
  virtual void attach(ShardedNetwork& net) = 0;
  virtual void run_round(ShardedNetwork& net) = 0;
  /// Writes every vertex's current output spin into x (sized n).
  virtual void fill_outputs(const ShardedNetwork& net, mrf::Config& x) = 0;
  /// Messages/bits sent by node programs so far (rounds left at 0; the
  /// network fills it).
  [[nodiscard]] virtual MessageStats program_stats(
      const ShardedNetwork& net) const = 0;
  virtual void set_engine(ShardedNetwork& net,
                          chains::ParallelEngine* engine) = 0;
  [[nodiscard]] virtual MemoryReport memory_report(
      const ShardedNetwork& net) const = 0;
};

[[nodiscard]] std::unique_ptr<Transport> make_in_process_transport();

struct ProcessTransportOptions {
  /// Path to the shard_worker binary; empty = $LSAMPLE_SHARD_WORKER.
  std::string worker_path;
};
[[nodiscard]] std::unique_ptr<Transport> make_process_transport(
    ProcessTransportOptions options = {});

/// The sharded counterpart of local::Network: same observable behavior
/// (round-for-round bit-identical trajectory and MessageStats), plus
/// HaloStats and a partition quality report.  Table programs only — the
/// per-vertex NodeProgram fallback stays on the single-arena Network.
class ShardedNetwork {
 public:
  struct Options {
    graph::PartitionOptions partition;
    ShardPlanOptions plan;
    /// Required by the process transport (ignored in-process): the
    /// serialized program the shard workers rebuild.
    std::optional<ShardProgramSpec> program_spec;
  };

  /// Builds the partition, plan, and shards, and attaches the transport
  /// (in-process when null).  The table must not be null.
  ShardedNetwork(graph::GraphPtr g, std::uint64_t seed,
                 std::unique_ptr<NodeProgramTable> table, Options options,
                 std::unique_ptr<Transport> transport = nullptr);

  ShardedNetwork(ShardedNetwork&&) = default;
  ShardedNetwork& operator=(ShardedNetwork&&) = delete;

  /// Attaches a ParallelEngine (in-process transport only): shards run as
  /// engine jobs over the concatenated shard vertex lists, bit-identical at
  /// any thread count.  nullptr restores sequential execution.
  void set_engine(chains::ParallelEngine* engine);

  void run_round();
  void run_rounds(std::int64_t rounds);

  [[nodiscard]] std::int64_t round() const noexcept { return round_; }
  /// Bit-identical to the single-arena Network's stats after the same
  /// number of rounds.
  [[nodiscard]] MessageStats stats() const;
  [[nodiscard]] const HaloStats& halo_stats() const noexcept { return halo_; }
  [[nodiscard]] mrf::Config outputs() const;

  [[nodiscard]] const graph::Graph& g() const noexcept { return *graph_; }
  [[nodiscard]] graph::GraphPtr graph_ptr() const noexcept { return graph_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] int num_shards() const noexcept { return plan_.num_shards(); }
  [[nodiscard]] const ShardPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] const graph::PartitionQuality& quality() const noexcept {
    return quality_;
  }
  [[nodiscard]] std::span<const int> mirror() const noexcept {
    return mirror_;
  }
  [[nodiscard]] NodeProgramTable* table() noexcept { return table_.get(); }
  [[nodiscard]] const NodeProgramTable* table() const noexcept {
    return table_.get();
  }
  [[nodiscard]] const Options& options() const noexcept { return options_; }
  [[nodiscard]] chains::ParallelEngine* engine() const noexcept {
    return engine_;
  }
  [[nodiscard]] const char* transport_name() const noexcept {
    return transport_->name();
  }

  /// Aggregate footprint: every shard arena (in-process), the shared mirror
  /// and translation tables, and the graph CSR counted once.  With the
  /// process transport, worker-side arenas are not visible here.
  [[nodiscard]] MemoryReport memory_report() const;

 private:
  friend class InProcessTransport;
  friend class ProcessTransport;

  graph::GraphPtr graph_;
  std::uint64_t seed_ = 0;
  std::unique_ptr<NodeProgramTable> table_;
  Options options_;
  ShardPlan plan_;
  graph::PartitionQuality quality_;
  std::vector<int> mirror_;  ///< one mirror index shared by every shard
  std::unique_ptr<Transport> transport_;
  chains::ParallelEngine* engine_ = nullptr;
  std::int64_t round_ = 0;
  HaloStats halo_;
};

/// Internal bridge giving the sharded runtime (and shard workers) access to
/// Network's shard mode.  Not for general use.
struct ShardAccess {
  /// Builds shard `shard`'s Network over the plan (arena sized owned +
  /// halo, translations bound, mirror shared, table externally owned).
  [[nodiscard]] static Network make_shard(graph::GraphPtr g,
                                          std::uint64_t seed,
                                          const ShardPlan& plan, int shard,
                                          std::span<const int> mirror,
                                          NodeProgramTable* table);
  static void set_threads(Network& net, int threads);
  /// Resets per-round worker stats; call once per shard per round before
  /// any run_vertices call.
  static void begin_round(Network& net);
  static void run_vertices(Network& net, int thread,
                           std::span<const int> vertices);
  static void finish_round(Network& net);
  [[nodiscard]] static const MessageStats& stats(const Network& net);

  /// Serializes shard `shard`'s outgoing boundary slots (this round's
  /// writes) into bufs[t] for every peer t; accumulates into *halo when
  /// non-null.  Frame per slot: int32 words (-1 = empty), int32 bits, then
  /// words * 8 payload bytes.
  static void gather_halo(const ShardPlan& plan, int shard,
                          const Network& net,
                          std::vector<std::vector<std::uint8_t>>& bufs,
                          HaloStats* halo);
  /// Writes the frames received from each peer s (bufs[s]) into shard
  /// `shard`'s halo region.
  static void scatter_halo(const ShardPlan& plan, int shard, Network& net,
                           const std::vector<std::vector<std::uint8_t>>& bufs);
};

/// Walks a gather_halo byte buffer and accumulates its traffic into halo
/// (the process transport's parent-side accounting).
void accumulate_halo_frames(std::span<const std::uint8_t> buf,
                            HaloStats& halo);

/// The shard_worker binary's entry point: serves one shard over the given
/// socket until the parent sends quit.  Returns a process exit code.
int run_shard_worker(int fd);

/// Factories mirroring make_luby_glauber_network /
/// make_local_metropolis_network.  The Mrf (or the shared view's Mrf) must
/// outlive the network.  When the transport is remote, the program spec is
/// filled automatically.
[[nodiscard]] ShardedNetwork make_sharded_luby_glauber_network(
    std::shared_ptr<const mrf::CompiledMrf> cm, const mrf::Config& x0,
    std::uint64_t seed, ShardedNetwork::Options options = {},
    LubyGlauberNetOptions net_options = {},
    std::unique_ptr<Transport> transport = nullptr);
[[nodiscard]] ShardedNetwork make_sharded_luby_glauber_network(
    const mrf::Mrf& m, const mrf::Config& x0, std::uint64_t seed,
    ShardedNetwork::Options options = {},
    LubyGlauberNetOptions net_options = {},
    std::unique_ptr<Transport> transport = nullptr);
[[nodiscard]] ShardedNetwork make_sharded_local_metropolis_network(
    std::shared_ptr<const mrf::CompiledMrf> cm, const mrf::Config& x0,
    std::uint64_t seed, ShardedNetwork::Options options = {},
    std::unique_ptr<Transport> transport = nullptr);
[[nodiscard]] ShardedNetwork make_sharded_local_metropolis_network(
    const mrf::Mrf& m, const mrf::Config& x0, std::uint64_t seed,
    ShardedNetwork::Options options = {},
    std::unique_ptr<Transport> transport = nullptr);

}  // namespace lsample::local
