// A synchronous message-passing simulator of Linial's LOCAL model (§2.1).
//
// Computation proceeds in synchronized rounds.  In each round every node may
// send one message to each neighbor and read the messages its neighbors sent
// in the previous round; message sizes are accounted in bits so that the
// paper's "each message is of O(log n) bits" claim (end of §1.1) can be
// measured (experiment E9).
//
// Faithfulness: node programs may only interact with the network through a
// NodeContext — neighbor state is visible exclusively via received messages.
// Randomness comes from counter-based streams: private per-vertex streams
// and shared per-edge streams (the paper's shared edge coins).  Because the
// reference chains in chains/ draw from the same streams, the simulator must
// reproduce their trajectories bit for bit — asserted by tests.
//
// Execution model.  Messages live in a double-buffered contiguous arena: one
// fixed-capacity slot per directed edge, indexed by the graph's CSR ports
// (the slot for the message v sends on port i is csr_offsets[v] + i, so a
// node's outgoing messages are one contiguous slab; received() follows a
// precomputed mirror index into the sender's slot).  A round maps node
// programs over the vertex set — sequentially, or partitioned across a
// chains::ParallelEngine.  Because a node writes only its own out-slots and
// its own program state, and reads only the immutable previous-round buffer,
// the trajectory AND the message statistics are bit-identical at any thread
// count.  Per-worker MessageStats are reduced in thread order after each
// round.
//
// Sharding.  A Network can also act as ONE shard of a sharded runtime
// (local/sharding.hpp): it then owns the arena slots of its shard's
// vertices plus the halo slots it reads from other shards, and global
// CSR slot indices are translated into the local arena through compact
// translation tables.  All slot arithmetic goes through out_local()/
// in_local() on std::size_t, so nothing overflows at n·Δ scale; the
// translation tables come in a 64-bit and a 32-bit compact variant (the
// latter rejected with a named error when a shard needs more local slots
// than 32 bits can index).  A shard-mode network cannot run rounds on its
// own — halo exchange is the ShardedNetwork's job.
//
// Two program representations are supported:
//   * NodeProgramTable (preferred) — ONE value-type object owning the state
//     of every node in structure-of-arrays form; the network makes one
//     virtual call per thread-slice per round, so the per-node loop
//     devirtualizes.  The tables in node_programs.hpp / luby_mis.hpp /
//     csp_node_programs.hpp run on compiled model views (mrf::CompiledMrf).
//   * NodeProgram + ProgramFactory (fallback) — one heap-allocated program
//     per vertex with a virtual call per node per round; the extension point
//     for user programs.  Under an engine a program may touch only its own
//     state (the library's tables obey this by construction).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "chains/write_audit.hpp"
#include "graph/graph.hpp"
#include "local/message_stats.hpp"
#include "mrf/mrf.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace lsample::chains {
class ParallelEngine;
}  // namespace lsample::chains

namespace lsample::local {

class Network;
struct ShardAccess;

/// Per-node view of the network for a single round.
class NodeContext {
 public:
  [[nodiscard]] int id() const noexcept { return id_; }
  [[nodiscard]] std::int64_t round() const noexcept;
  [[nodiscard]] int degree() const noexcept;

  /// Edge id behind a port (ports number v's incident edges 0..deg-1).
  [[nodiscard]] int edge_of_port(int port) const;
  /// Neighbor behind a port.
  [[nodiscard]] int neighbor_of_port(int port) const;

  /// Sends `words` to the neighbor behind `port`; `bits` is the semantic
  /// message size used for accounting (may be smaller than 64*words).
  /// words.size() must not exceed the network's per-message word capacity.
  void send(int port, std::span<const std::uint64_t> words, int bits);

  /// Sends the same `words` on EVERY port (degree() messages of `bits` bits
  /// each) — equivalent to send() per port, but validated once and written
  /// as one contiguous slab pass.  All of the paper's protocols broadcast.
  void broadcast(std::span<const std::uint64_t> words, int bits);

  /// Message received from `port`'s neighbor this round (sent by it last
  /// round); empty in round 0.
  [[nodiscard]] std::span<const std::uint64_t> received(int port) const;

  /// The network-wide counter RNG (nodes use their own id / incident edge
  /// ids as stream keys; the edge streams realize shared coins).
  [[nodiscard]] const util::CounterRng& rng() const noexcept;

 private:
  friend class Network;
  NodeContext(Network& net, int id, int thread) noexcept
      : net_(&net), id_(id), thread_(thread) {}

  [[noreturn]] void fail_port(int port, const char* what) const;

  Network* net_;
  int id_;
  int thread_;  ///< worker slot for stats accounting
};

/// A distributed program executed by one node (the user-extension fallback;
/// the library's own protocols use NodeProgramTable).
class NodeProgram {
 public:
  virtual ~NodeProgram() = default;

  /// Called once per round (round 0 included).
  virtual void on_round(NodeContext& ctx) = 0;

  /// The node's current output spin.
  [[nodiscard]] virtual int output() const noexcept = 0;
};

using ProgramFactory = std::function<std::unique_ptr<NodeProgram>(int vertex)>;

/// Value-type program storage: one object owns the per-node state of EVERY
/// node (structure-of-arrays), and executes whole vertex lists per virtual
/// call.  run_nodes(net, thread, vertices) must run each listed node exactly
/// as a NodeProgram would — reading only received messages and its own
/// state, and writing only its own state and out-ports — so that a table is
/// invariant to thread count AND to how the vertex set is sliced into lists
/// (the sharded runtime passes per-shard vertex lists instead of contiguous
/// ranges).
class NodeProgramTable {
 public:
  virtual ~NodeProgramTable() = default;

  /// Largest message (in 64-bit words) any node of this program ever sends;
  /// the network sizes its arena slots to this capacity.
  [[nodiscard]] virtual int message_capacity_words() const noexcept = 0;

  /// Executes one round for the listed vertices (ascending ids); `thread`
  /// identifies the worker slot (for per-thread scratch).  Obtain contexts
  /// from Network::context(v, thread).
  virtual void run_nodes(Network& net, int thread,
                         std::span<const int> vertices) = 0;

  /// The node's current output spin.
  [[nodiscard]] virtual int output(int v) const = 0;

  /// Called when the network's thread count changes; size per-thread scratch
  /// here.  Always called at least once (with 1) before the first round.
  virtual void set_num_threads(int /*num_threads*/) {}
};

/// Arena slot capacity for the ProgramFactory fallback when no table
/// negotiates one (all library protocols send 2-word messages).
inline constexpr int kDefaultMessageCapacityWords = 4;

/// mirror[p] = the directed CSR slot of the same edge at the other
/// endpoint (received() follows it into the sender's slot).  One mirror
/// serves every shard of a sharded network.
[[nodiscard]] std::vector<int> make_mirror_index(const graph::Graph& g);

/// Byte-level footprint of one network arena (Network::memory_report), so
/// n = 10^7-vertex instances can be sized before they are built.  A sharded
/// network aggregates its shards' reports and adds the translation tables.
struct MemoryReport {
  std::int64_t slots = 0;             ///< directed slots in this arena
  std::int64_t capacity_words = 0;    ///< words per slot
  std::int64_t arena_bytes = 0;       ///< double-buffered words + slot meta
  std::int64_t mirror_bytes = 0;      ///< mirror index owned by this network
  std::int64_t vertex_list_bytes = 0; ///< identity / shard vertex lists
  std::int64_t translation_bytes = 0; ///< global->local slot tables (sharded)
  std::int64_t graph_csr_bytes = 0;   ///< shared CSR views (graph-owned)

  [[nodiscard]] std::int64_t total_bytes() const noexcept {
    return arena_bytes + mirror_bytes + vertex_list_bytes +
           translation_bytes + graph_csr_bytes;
  }
};

class Network {
 public:
  /// Fallback path: one heap-allocated NodeProgram per vertex.  Messages of
  /// more than `message_capacity_words` words are rejected with LS_REQUIRE.
  Network(graph::GraphPtr g, std::uint64_t seed, const ProgramFactory& make,
          int message_capacity_words = kDefaultMessageCapacityWords);

  /// Compiled path: a single NodeProgramTable owning all node state; the
  /// arena capacity is negotiated from the table.
  Network(graph::GraphPtr g, std::uint64_t seed,
          std::unique_ptr<NodeProgramTable> table);

  /// Attaches a ParallelEngine: run_round() partitions the node map across
  /// its threads with a bit-identical trajectory and identical MessageStats
  /// at any thread count.  nullptr restores sequential execution.  The
  /// engine must outlive the network or the next set_engine call.
  void set_engine(chains::ParallelEngine* engine);

  /// Executes one synchronous round for all nodes.
  void run_round();
  void run_rounds(std::int64_t rounds);

  [[nodiscard]] std::int64_t round() const noexcept { return round_; }
  [[nodiscard]] const MessageStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const util::CounterRng& rng() const noexcept { return rng_; }
  [[nodiscard]] const graph::Graph& g() const noexcept { return *graph_; }
  [[nodiscard]] int message_capacity_words() const noexcept { return cap_; }

  /// Current outputs of all nodes.
  [[nodiscard]] mrf::Config outputs() const;

  /// Byte-level footprint of this network's arena and index structures.
  [[nodiscard]] MemoryReport memory_report() const noexcept;

  /// The per-node view for tables (thread = worker slot passed to
  /// run_nodes).
  [[nodiscard]] NodeContext context(int v, int thread = 0) noexcept {
    return NodeContext(*this, v, thread);
  }

  /// The table driving this network (the shared table in shard mode), or
  /// nullptr on the fallback path.
  [[nodiscard]] NodeProgramTable* table() noexcept { return table_ptr(); }
  [[nodiscard]] const NodeProgramTable* table() const noexcept {
    return table_ptr();
  }

 private:
  friend class NodeContext;
  friend struct ShardAccess;  // sharded-runtime bridge (local/sharding.hpp)

  struct SlotMeta {
    std::int32_t words = -1;  ///< -1 = no message present
    std::int32_t bits = 0;
  };
  struct WorkerStats {
    std::int64_t messages = 0;
    std::int64_t bits = 0;
  };

  /// Wiring for one shard of a sharded network: the vertices this arena
  /// owns, the global-slot -> local-arena translations (at most one of the
  /// 32/64-bit pairs non-empty; both empty = identity), the shared mirror
  /// index, and the externally-owned shared program table.  All spans must
  /// outlive the network.
  struct ShardBinding {
    std::span<const int> owned_vertices;
    std::span<const int> mirror;
    std::span<const std::int64_t> out_local64, in_local64;
    std::span<const std::int32_t> out_local32, in_local32;
    std::int64_t local_slots = 0;  ///< owned + halo slots
    NodeProgramTable* table = nullptr;
  };

  /// Shard-mode constructor (driven only through ShardAccess).
  Network(graph::GraphPtr g, std::uint64_t seed, const ShardBinding& binding);

  void init_csr_views();
  void init_arena(std::int64_t slots, int message_capacity_words);
  void build_mirror();

  /// Local arena index of a global directed slot this network WRITES
  /// (identity unless shard translations are bound).
  [[nodiscard]] std::size_t out_local(std::size_t p) const noexcept {
    if (!out_local32_.empty()) return static_cast<std::size_t>(out_local32_[p]);
    if (!out_local64_.empty()) return static_cast<std::size_t>(out_local64_[p]);
    return p;
  }
  /// Local arena index of a global directed slot this network READS.
  [[nodiscard]] std::size_t in_local(std::size_t p) const noexcept {
    if (!in_local32_.empty()) return static_cast<std::size_t>(in_local32_[p]);
    if (!in_local64_.empty()) return static_cast<std::size_t>(in_local64_[p]);
    return p;
  }

  [[nodiscard]] NodeProgramTable* table_ptr() const noexcept {
    return shared_table_ != nullptr ? shared_table_ : table_.get();
  }

  /// Clears the listed vertices' out-slots and runs their programs.  Every
  /// directed slot is cleared by exactly the one call that may write it.
  void run_vertex_list(int thread, std::span<const int> vertices);
  /// Swaps buffers, advances the round, folds worker stats in thread order.
  void finish_round();

  graph::GraphPtr graph_;
  util::CounterRng rng_;
  std::unique_ptr<NodeProgramTable> table_;             // compiled path
  std::vector<std::unique_ptr<NodeProgram>> programs_;  // fallback path
  chains::ParallelEngine* engine_ = nullptr;

  // CSR views into *graph_ (finalized at construction; stable thereafter).
  std::span<const int> off_;
  std::span<const int> inc_;
  std::span<const int> nbr_;
  // mirror_[p] is the directed slot of the same edge on the other endpoint:
  // node v receives on port i from slot mirror_[off_[v] + i] of the previous
  // round's buffer.  Owned by mirror_storage_, or shared by the sharded
  // runtime (one mirror serves every shard).
  std::vector<int> mirror_storage_;
  std::span<const int> mirror_;

  // Shard mode (see ShardBinding).
  bool shard_mode_ = false;
  NodeProgramTable* shared_table_ = nullptr;
  std::span<const int> owned_vertices_;
  std::span<const std::int64_t> out_local64_, in_local64_;
  std::span<const std::int32_t> out_local32_, in_local32_;

  // Identity vertex list [0, n) sliced by run_round's partitions (empty in
  // shard mode — the sharded runtime supplies its own lists).
  std::vector<int> all_vertices_;

  // Double-buffered message arena: cap_ words per directed slot; cur_ is
  // readable this round, next_ is being written.
  int cap_ = 0;
  std::vector<std::uint64_t> cur_words_;
  std::vector<std::uint64_t> next_words_;
  std::vector<SlotMeta> cur_meta_;
  std::vector<SlotMeta> next_meta_;

  std::vector<WorkerStats> worker_stats_;  // reduced in thread order
  std::int64_t round_ = 0;
  MessageStats stats_;
};

inline std::int64_t NodeContext::round() const noexcept { return net_->round_; }

inline int NodeContext::degree() const noexcept {
  return net_->off_[static_cast<std::size_t>(id_) + 1] -
         net_->off_[static_cast<std::size_t>(id_)];
}

inline int NodeContext::edge_of_port(int port) const {
  if (port < 0 || port >= degree()) fail_port(port, "edge_of_port");
  return net_->inc_[static_cast<std::size_t>(
      net_->off_[static_cast<std::size_t>(id_)] + port)];
}

inline int NodeContext::neighbor_of_port(int port) const {
  if (port < 0 || port >= degree()) fail_port(port, "neighbor_of_port");
  return net_->nbr_[static_cast<std::size_t>(
      net_->off_[static_cast<std::size_t>(id_)] + port)];
}

inline void NodeContext::send(int port, std::span<const std::uint64_t> words,
                              int bits) {
  Network& net = *net_;
  if (port < 0 || port >= degree()) fail_port(port, "send");
  LS_REQUIRE(bits >= 0, "node " + std::to_string(id_) + ": negative bit count");
  LS_REQUIRE(static_cast<int>(words.size()) <= net.cap_,
             "node " + std::to_string(id_) + ", port " + std::to_string(port) +
                 ": message of " + std::to_string(words.size()) +
                 " words exceeds the arena capacity of " +
                 std::to_string(net.cap_) + " words per message");
  const std::size_t slot = net.out_local(
      static_cast<std::size_t>(net.off_[static_cast<std::size_t>(id_)] + port));
  std::uint64_t* dst =
      net.next_words_.data() + slot * static_cast<std::size_t>(net.cap_);
  // The sending node is the parallel unit: a slot written by two nodes means
  // the slot translation (or the vertex partition) aliased two senders.
  LS_AUDIT_UNIT(id_);
  LS_AUDIT_WRITE(arena_words, slot, dst,
                 words.size() * sizeof(std::uint64_t));
  LS_AUDIT_WRITE(arena_meta, slot, &net.next_meta_[slot],
                 sizeof(Network::SlotMeta));
  for (std::size_t i = 0; i < words.size(); ++i) dst[i] = words[i];
  net.next_meta_[slot] = {static_cast<std::int32_t>(words.size()), bits};
  auto& ws = net.worker_stats_[static_cast<std::size_t>(thread_)];
  ++ws.messages;
  ws.bits += bits;
}

inline void NodeContext::broadcast(std::span<const std::uint64_t> words,
                                   int bits) {
  Network& net = *net_;
  const int deg = degree();
  LS_REQUIRE(bits >= 0, "node " + std::to_string(id_) + ": negative bit count");
  LS_REQUIRE(static_cast<int>(words.size()) <= net.cap_,
             "node " + std::to_string(id_) + ": broadcast message of " +
                 std::to_string(words.size()) +
                 " words exceeds the arena capacity of " +
                 std::to_string(net.cap_) + " words per message");
  // A vertex's owned slots stay consecutive in shard arenas (the plan
  // assigns local indices in global-slot order), so the slab write survives
  // translation of the base slot alone.
  const std::size_t base = net.out_local(
      static_cast<std::size_t>(net.off_[static_cast<std::size_t>(id_)]));
  const auto cap = static_cast<std::size_t>(net.cap_);
  std::uint64_t* dst = net.next_words_.data() + base * cap;
  const auto meta =
      Network::SlotMeta{static_cast<std::int32_t>(words.size()), bits};
  LS_AUDIT_UNIT(id_);
  for (int port = 0; port < deg; ++port) {
    const std::size_t slot = base + static_cast<std::size_t>(port);
    LS_AUDIT_WRITE(arena_words, slot, dst,
                   words.size() * sizeof(std::uint64_t));
    LS_AUDIT_WRITE(arena_meta, slot, &net.next_meta_[slot],
                   sizeof(Network::SlotMeta));
    for (std::size_t i = 0; i < words.size(); ++i) dst[i] = words[i];
    dst += cap;
    net.next_meta_[slot] = meta;
  }
  auto& ws = net.worker_stats_[static_cast<std::size_t>(thread_)];
  ws.messages += deg;
  ws.bits += static_cast<std::int64_t>(deg) * bits;
}

inline std::span<const std::uint64_t> NodeContext::received(int port) const {
  const Network& net = *net_;
  if (port < 0 || port >= degree()) fail_port(port, "received");
  const std::size_t slot =
      net.in_local(static_cast<std::size_t>(net.mirror_[static_cast<std::size_t>(
          net.off_[static_cast<std::size_t>(id_)] + port)]));
  // Receives must resolve to the previous round's buffer; declaring the read
  // catches any same-epoch write into the readable buffer (e.g. a halo
  // scatter overlapping an owned slot).
  LS_AUDIT_ONLY(
      ::lsample::chains::audit::set_unit(static_cast<std::int64_t>(id_));
      LS_AUDIT_READ(arena_meta, slot, &net.cur_meta_[slot],
                    sizeof(Network::SlotMeta));
      LS_AUDIT_READ(arena_words, slot,
                    net.cur_words_.data() +
                        slot * static_cast<std::size_t>(net.cap_),
                    static_cast<std::size_t>(net.cap_) *
                        sizeof(std::uint64_t)););
  const auto meta = net.cur_meta_[slot];
  if (meta.words < 0) return {};
  return {net.cur_words_.data() + slot * static_cast<std::size_t>(net.cap_),
          static_cast<std::size_t>(meta.words)};
}

inline const util::CounterRng& NodeContext::rng() const noexcept {
  return net_->rng_;
}

}  // namespace lsample::local
