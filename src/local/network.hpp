// A synchronous message-passing simulator of Linial's LOCAL model (§2.1).
//
// Computation proceeds in synchronized rounds.  In each round every node may
// send one message to each neighbor and read the messages its neighbors sent
// in the previous round; message sizes are accounted in bits so that the
// paper's "each message is of O(log n) bits" claim (end of §1.1) can be
// measured (experiment E9).
//
// Faithfulness: node programs may only interact with the network through a
// NodeContext — neighbor state is visible exclusively via received messages.
// Randomness comes from counter-based streams: private per-vertex streams
// and shared per-edge streams (the paper's shared edge coins).  Because the
// reference chains in chains/ draw from the same streams, the simulator must
// reproduce their trajectories bit for bit — asserted by tests.
//
// Execution model.  Messages live in a double-buffered contiguous arena: one
// fixed-capacity slot per directed edge, indexed by the graph's CSR ports
// (the slot for the message v sends on port i is csr_offsets[v] + i, so a
// node's outgoing messages are one contiguous slab; received() follows a
// precomputed mirror index into the sender's slot).  A round maps node
// programs over the vertex set — sequentially, or partitioned across a
// chains::ParallelEngine.  Because a node writes only its own out-slots and
// its own program state, and reads only the immutable previous-round buffer,
// the trajectory AND the message statistics are bit-identical at any thread
// count.  Per-worker MessageStats are reduced in thread order after each
// round.
//
// Two program representations are supported:
//   * NodeProgramTable (preferred) — ONE value-type object owning the state
//     of every node in structure-of-arrays form; the network makes one
//     virtual call per thread-slice per round, so the per-node loop
//     devirtualizes.  The tables in node_programs.hpp / luby_mis.hpp /
//     csp_node_programs.hpp run on compiled model views (mrf::CompiledMrf).
//   * NodeProgram + ProgramFactory (fallback) — one heap-allocated program
//     per vertex with a virtual call per node per round; the extension point
//     for user programs.  Under an engine a program may touch only its own
//     state (the library's tables obey this by construction).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "local/message_stats.hpp"
#include "mrf/mrf.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace lsample::chains {
class ParallelEngine;
}  // namespace lsample::chains

namespace lsample::local {

class Network;

/// Per-node view of the network for a single round.
class NodeContext {
 public:
  [[nodiscard]] int id() const noexcept { return id_; }
  [[nodiscard]] std::int64_t round() const noexcept;
  [[nodiscard]] int degree() const noexcept;

  /// Edge id behind a port (ports number v's incident edges 0..deg-1).
  [[nodiscard]] int edge_of_port(int port) const;
  /// Neighbor behind a port.
  [[nodiscard]] int neighbor_of_port(int port) const;

  /// Sends `words` to the neighbor behind `port`; `bits` is the semantic
  /// message size used for accounting (may be smaller than 64*words).
  /// words.size() must not exceed the network's per-message word capacity.
  void send(int port, std::span<const std::uint64_t> words, int bits);

  /// Sends the same `words` on EVERY port (degree() messages of `bits` bits
  /// each) — equivalent to send() per port, but validated once and written
  /// as one contiguous slab pass.  All of the paper's protocols broadcast.
  void broadcast(std::span<const std::uint64_t> words, int bits);

  /// Message received from `port`'s neighbor this round (sent by it last
  /// round); empty in round 0.
  [[nodiscard]] std::span<const std::uint64_t> received(int port) const;

  /// The network-wide counter RNG (nodes use their own id / incident edge
  /// ids as stream keys; the edge streams realize shared coins).
  [[nodiscard]] const util::CounterRng& rng() const noexcept;

 private:
  friend class Network;
  NodeContext(Network& net, int id, int thread) noexcept
      : net_(&net), id_(id), thread_(thread) {}

  [[noreturn]] void fail_port(int port, const char* what) const;

  Network* net_;
  int id_;
  int thread_;  ///< worker slot for stats accounting
};

/// A distributed program executed by one node (the user-extension fallback;
/// the library's own protocols use NodeProgramTable).
class NodeProgram {
 public:
  virtual ~NodeProgram() = default;

  /// Called once per round (round 0 included).
  virtual void on_round(NodeContext& ctx) = 0;

  /// The node's current output spin.
  [[nodiscard]] virtual int output() const noexcept = 0;
};

using ProgramFactory = std::function<std::unique_ptr<NodeProgram>(int vertex)>;

/// Value-type program storage: one object owns the per-node state of EVERY
/// node (structure-of-arrays), and executes whole vertex ranges per virtual
/// call.  run_nodes(net, thread, begin, end) must run each node exactly as a
/// NodeProgram would — reading only received messages and its own state, and
/// writing only its own state and out-ports — so that a table is
/// thread-count-invariant by construction.
class NodeProgramTable {
 public:
  virtual ~NodeProgramTable() = default;

  /// Largest message (in 64-bit words) any node of this program ever sends;
  /// the network sizes its arena slots to this capacity.
  [[nodiscard]] virtual int message_capacity_words() const noexcept = 0;

  /// Executes one round for vertices [begin, end); `thread` identifies the
  /// worker slot (for per-thread scratch).  Obtain contexts from
  /// Network::context(v, thread).
  virtual void run_nodes(Network& net, int thread, int begin, int end) = 0;

  /// The node's current output spin.
  [[nodiscard]] virtual int output(int v) const = 0;

  /// Called when the network's thread count changes; size per-thread scratch
  /// here.  Always called at least once (with 1) before the first round.
  virtual void set_num_threads(int /*num_threads*/) {}
};

/// Arena slot capacity for the ProgramFactory fallback when no table
/// negotiates one (all library protocols send 2-word messages).
inline constexpr int kDefaultMessageCapacityWords = 4;

class Network {
 public:
  /// Fallback path: one heap-allocated NodeProgram per vertex.  Messages of
  /// more than `message_capacity_words` words are rejected with LS_REQUIRE.
  Network(graph::GraphPtr g, std::uint64_t seed, const ProgramFactory& make,
          int message_capacity_words = kDefaultMessageCapacityWords);

  /// Compiled path: a single NodeProgramTable owning all node state; the
  /// arena capacity is negotiated from the table.
  Network(graph::GraphPtr g, std::uint64_t seed,
          std::unique_ptr<NodeProgramTable> table);

  /// Attaches a ParallelEngine: run_round() partitions the node map across
  /// its threads with a bit-identical trajectory and identical MessageStats
  /// at any thread count.  nullptr restores sequential execution.  The
  /// engine must outlive the network or the next set_engine call.
  void set_engine(chains::ParallelEngine* engine);

  /// Executes one synchronous round for all nodes.
  void run_round();
  void run_rounds(std::int64_t rounds);

  [[nodiscard]] std::int64_t round() const noexcept { return round_; }
  [[nodiscard]] const MessageStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const util::CounterRng& rng() const noexcept { return rng_; }
  [[nodiscard]] const graph::Graph& g() const noexcept { return *graph_; }
  [[nodiscard]] int message_capacity_words() const noexcept { return cap_; }

  /// Current outputs of all nodes.
  [[nodiscard]] mrf::Config outputs() const;

  /// The per-node view for tables (thread = worker slot passed to
  /// run_nodes).
  [[nodiscard]] NodeContext context(int v, int thread = 0) noexcept {
    return NodeContext(*this, v, thread);
  }

  /// The table driving this network, or nullptr on the fallback path.
  [[nodiscard]] NodeProgramTable* table() noexcept { return table_.get(); }
  [[nodiscard]] const NodeProgramTable* table() const noexcept {
    return table_.get();
  }

 private:
  friend class NodeContext;

  struct SlotMeta {
    std::int32_t words = -1;  ///< -1 = no message present
    std::int32_t bits = 0;
  };
  struct WorkerStats {
    std::int64_t messages = 0;
    std::int64_t bits = 0;
  };

  void init_arena(int message_capacity_words);

  graph::GraphPtr graph_;
  util::CounterRng rng_;
  std::unique_ptr<NodeProgramTable> table_;             // compiled path
  std::vector<std::unique_ptr<NodeProgram>> programs_;  // fallback path
  chains::ParallelEngine* engine_ = nullptr;

  // CSR views into *graph_ (finalized at construction; stable thereafter).
  std::span<const int> off_;
  std::span<const int> inc_;
  std::span<const int> nbr_;
  // mirror_[p] is the directed slot of the same edge on the other endpoint:
  // node v receives on port i from slot mirror_[off_[v] + i] of the previous
  // round's buffer.
  std::vector<int> mirror_;

  // Double-buffered message arena: cap_ words per directed slot; cur_ is
  // readable this round, next_ is being written.
  int cap_ = 0;
  std::vector<std::uint64_t> cur_words_;
  std::vector<std::uint64_t> next_words_;
  std::vector<SlotMeta> cur_meta_;
  std::vector<SlotMeta> next_meta_;

  std::vector<WorkerStats> worker_stats_;  // reduced in thread order
  std::int64_t round_ = 0;
  MessageStats stats_;
};

inline std::int64_t NodeContext::round() const noexcept { return net_->round_; }

inline int NodeContext::degree() const noexcept {
  return net_->off_[static_cast<std::size_t>(id_) + 1] -
         net_->off_[static_cast<std::size_t>(id_)];
}

inline int NodeContext::edge_of_port(int port) const {
  if (port < 0 || port >= degree()) fail_port(port, "edge_of_port");
  return net_->inc_[static_cast<std::size_t>(
      net_->off_[static_cast<std::size_t>(id_)] + port)];
}

inline int NodeContext::neighbor_of_port(int port) const {
  if (port < 0 || port >= degree()) fail_port(port, "neighbor_of_port");
  return net_->nbr_[static_cast<std::size_t>(
      net_->off_[static_cast<std::size_t>(id_)] + port)];
}

inline void NodeContext::send(int port, std::span<const std::uint64_t> words,
                              int bits) {
  Network& net = *net_;
  if (port < 0 || port >= degree()) fail_port(port, "send");
  LS_REQUIRE(bits >= 0, "node " + std::to_string(id_) + ": negative bit count");
  LS_REQUIRE(static_cast<int>(words.size()) <= net.cap_,
             "node " + std::to_string(id_) + ", port " + std::to_string(port) +
                 ": message of " + std::to_string(words.size()) +
                 " words exceeds the arena capacity of " +
                 std::to_string(net.cap_) + " words per message");
  const std::size_t slot =
      static_cast<std::size_t>(net.off_[static_cast<std::size_t>(id_)] + port);
  std::uint64_t* dst =
      net.next_words_.data() + slot * static_cast<std::size_t>(net.cap_);
  for (std::size_t i = 0; i < words.size(); ++i) dst[i] = words[i];
  net.next_meta_[slot] = {static_cast<std::int32_t>(words.size()), bits};
  auto& ws = net.worker_stats_[static_cast<std::size_t>(thread_)];
  ++ws.messages;
  ws.bits += bits;
}

inline void NodeContext::broadcast(std::span<const std::uint64_t> words,
                                   int bits) {
  Network& net = *net_;
  const int deg = degree();
  LS_REQUIRE(bits >= 0, "node " + std::to_string(id_) + ": negative bit count");
  LS_REQUIRE(static_cast<int>(words.size()) <= net.cap_,
             "node " + std::to_string(id_) + ": broadcast message of " +
                 std::to_string(words.size()) +
                 " words exceeds the arena capacity of " +
                 std::to_string(net.cap_) + " words per message");
  const auto base =
      static_cast<std::size_t>(net.off_[static_cast<std::size_t>(id_)]);
  const auto cap = static_cast<std::size_t>(net.cap_);
  std::uint64_t* dst = net.next_words_.data() + base * cap;
  const auto meta =
      Network::SlotMeta{static_cast<std::int32_t>(words.size()), bits};
  for (int port = 0; port < deg; ++port) {
    for (std::size_t i = 0; i < words.size(); ++i) dst[i] = words[i];
    dst += cap;
    net.next_meta_[base + static_cast<std::size_t>(port)] = meta;
  }
  auto& ws = net.worker_stats_[static_cast<std::size_t>(thread_)];
  ws.messages += deg;
  ws.bits += static_cast<std::int64_t>(deg) * bits;
}

inline std::span<const std::uint64_t> NodeContext::received(int port) const {
  const Network& net = *net_;
  if (port < 0 || port >= degree()) fail_port(port, "received");
  const std::size_t slot = static_cast<std::size_t>(
      net.mirror_[static_cast<std::size_t>(
          net.off_[static_cast<std::size_t>(id_)] + port)]);
  const auto meta = net.cur_meta_[slot];
  if (meta.words < 0) return {};
  return {net.cur_words_.data() + slot * static_cast<std::size_t>(net.cap_),
          static_cast<std::size_t>(meta.words)};
}

inline const util::CounterRng& NodeContext::rng() const noexcept {
  return net_->rng_;
}

}  // namespace lsample::local
