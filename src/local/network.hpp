// A synchronous message-passing simulator of Linial's LOCAL model (§2.1).
//
// Computation proceeds in synchronized rounds.  In each round every node may
// send one message to each neighbor and read the messages its neighbors sent
// in the previous round; message sizes are accounted in bits so that the
// paper's "each message is of O(log n) bits" claim (end of §1.1) can be
// measured (experiment E9).
//
// Faithfulness: node programs may only interact with the network through a
// NodeContext — neighbor state is visible exclusively via received messages.
// Randomness comes from counter-based streams: private per-vertex streams
// and shared per-edge streams (the paper's shared edge coins).  Because the
// reference chains in chains/ draw from the same streams, the simulator must
// reproduce their trajectories bit for bit — asserted by tests.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "mrf/mrf.hpp"
#include "util/rng.hpp"

namespace lsample::local {

struct MessageStats {
  std::int64_t rounds = 0;
  std::int64_t messages = 0;
  std::int64_t bits = 0;
};

class Network;

/// Per-node view of the network for a single round.
class NodeContext {
 public:
  [[nodiscard]] int id() const noexcept { return id_; }
  [[nodiscard]] std::int64_t round() const noexcept;
  [[nodiscard]] int degree() const;

  /// Edge id behind a port (ports number v's incident edges 0..deg-1).
  [[nodiscard]] int edge_of_port(int port) const;
  /// Neighbor behind a port.
  [[nodiscard]] int neighbor_of_port(int port) const;

  /// Sends `words` to the neighbor behind `port`; `bits` is the semantic
  /// message size used for accounting (may be smaller than 64*words).
  void send(int port, std::span<const std::uint64_t> words, int bits);

  /// Message received from `port`'s neighbor this round (sent by it last
  /// round); empty in round 0.
  [[nodiscard]] std::span<const std::uint64_t> received(int port) const;

  /// The network-wide counter RNG (nodes use their own id / incident edge
  /// ids as stream keys; the edge streams realize shared coins).
  [[nodiscard]] const util::CounterRng& rng() const noexcept;

 private:
  friend class Network;
  NodeContext(Network& net, int id) : net_(&net), id_(id) {}
  Network* net_;
  int id_;
};

/// A distributed program executed by one node.
class NodeProgram {
 public:
  virtual ~NodeProgram() = default;

  /// Called once per round (round 0 included).
  virtual void on_round(NodeContext& ctx) = 0;

  /// The node's current output spin.
  [[nodiscard]] virtual int output() const noexcept = 0;
};

using ProgramFactory = std::function<std::unique_ptr<NodeProgram>(int vertex)>;

class Network {
 public:
  Network(graph::GraphPtr g, std::uint64_t seed, const ProgramFactory& make);

  /// Executes one synchronous round for all nodes.
  void run_round();
  void run_rounds(std::int64_t rounds);

  [[nodiscard]] std::int64_t round() const noexcept { return round_; }
  [[nodiscard]] const MessageStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const util::CounterRng& rng() const noexcept { return rng_; }
  [[nodiscard]] const graph::Graph& g() const noexcept { return *graph_; }

  /// Current outputs of all nodes.
  [[nodiscard]] mrf::Config outputs() const;

 private:
  friend class NodeContext;

  struct Message {
    std::vector<std::uint64_t> words;
    int bits = 0;
    bool present = false;
  };

  /// Buffer index for the message traveling over edge e toward vertex
  /// `receiver`.
  [[nodiscard]] std::size_t buffer_index(int e, int receiver) const;

  graph::GraphPtr graph_;
  util::CounterRng rng_;
  std::vector<std::unique_ptr<NodeProgram>> programs_;
  // Two directions per edge; cur = readable this round, next = being written.
  std::vector<Message> cur_;
  std::vector<Message> next_;
  std::int64_t round_ = 0;
  MessageStats stats_;
};

}  // namespace lsample::local
