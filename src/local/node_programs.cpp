#include "local/node_programs.hpp"

#include <bit>

#include "chains/glauber.hpp"
#include "chains/local_metropolis.hpp"
#include "chains/schedulers.hpp"
#include "util/require.hpp"

namespace lsample::local {

namespace {

/// Quantize a priority in [0,1) to `bits` bits (the value a node would
/// transmit under the O(log n)-bit budget).
[[nodiscard]] std::uint64_t quantize_priority(double p, int bits) noexcept {
  return static_cast<std::uint64_t>(p * static_cast<double>(1ULL << bits));
}

}  // namespace

int spin_bits(int q) noexcept {
  int b = 1;
  while ((1 << b) < q) ++b;
  return b;
}

int discretized_priority_bits(int n) noexcept {
  // Still O(log n): a union bound over the ~2|E| * tau(eps) = poly(n)
  // priority comparisons of a run needs a constant multiple of log2 n bits
  // for all of them to resolve as they would at full precision w.h.p.; two
  // log-factors plus constant slack cover every experiment in this repo.
  // The flips counter in LubyGlauberTable measures whether the budget
  // sufficed on a given run instead of assuming it.
  return 2 * spin_bits(n) + 8;
}

LubyGlauberTable::LubyGlauberTable(std::shared_ptr<const mrf::CompiledMrf> cm,
                                   const mrf::Config& x0,
                                   LubyGlauberNetOptions options)
    : cm_(std::move(cm)), opt_(options), x_(x0), scratch_(1) {
  LS_REQUIRE(cm_ != nullptr, "compiled view must not be null");
  LS_REQUIRE(opt_.priority_bits >= 1 && opt_.priority_bits <= kPriorityBits,
             "priority_bits must lie in [1, 64]");
  mrf::check_config(cm_->mrf(), x_);
}

void LubyGlauberTable::set_num_threads(int num_threads) {
  // Per-thread scratch only; flip counts already accumulated are folded into
  // slot 0 so quantized_comparison_flips() survives engine changes.
  std::int64_t flips = 0;
  for (const auto& sc : scratch_) flips += sc.flips;
  scratch_.assign(static_cast<std::size_t>(num_threads), {});
  scratch_[0].flips = flips;
}

std::int64_t LubyGlauberTable::quantized_comparison_flips() const {
  std::int64_t flips = 0;
  for (const auto& sc : scratch_) flips += sc.flips;
  return flips;
}

void LubyGlauberTable::run_nodes(Network& net, int thread,
                                 std::span<const int> vertices) {
  const mrf::CompiledMrf& cm = *cm_;
  const util::CounterRng& rng = net.rng();
  const auto off = cm.csr_offsets();
  const auto nbr = cm.neighbors_flat();
  const auto inc = cm.incident_edges_flat();
  const std::size_t q = static_cast<std::size_t>(cm.q());
  const std::int64_t r = net.round();
  const int msg_bits = opt_.priority_bits + spin_bits(cm.q());
  const bool discretized = opt_.priority_bits < kPriorityBits;
  auto& sc = scratch_[static_cast<std::size_t>(thread)];

  for (const int v : vertices) {
    NodeContext ctx = net.context(v, thread);
    const int base = off[static_cast<std::size_t>(v)];
    const int deg = off[static_cast<std::size_t>(v) + 1] - base;
    LS_AUDIT_UNIT(v);
    LS_AUDIT_WRITE(program_state, v, &x_[static_cast<std::size_t>(v)],
                   sizeof(x_[0]));

    if (r >= 1) {
      // Complete Markov-chain step t = r-1 using last round's messages.
      const std::int64_t t = r - 1;
      const double mine = chains::luby_priority(rng, v, t);
      bool selected = true;
      sc.spins.resize(static_cast<std::size_t>(deg));
      for (int port = 0; port < deg; ++port) {
        const auto msg = ctx.received(port);
        LS_ASSERT(msg.size() == 2, "malformed LubyGlauber message");
        const double theirs = std::bit_cast<double>(msg[0]);
        sc.spins[static_cast<std::size_t>(port)] = static_cast<int>(msg[1]);
        const int u = nbr[static_cast<std::size_t>(base + port)];
        const bool beaten = theirs > mine || (theirs == mine && u > v);
        if (beaten) selected = false;
        if (discretized) {
          // Measure (don't apply) the O(log n)-bit discretization: would
          // this comparison have resolved differently on quantized values?
          const std::uint64_t qm = quantize_priority(mine, opt_.priority_bits);
          const std::uint64_t qt =
              quantize_priority(theirs, opt_.priority_bits);
          const bool q_beaten = qt > qm || (qt == qm && u > v);
          if (q_beaten != beaten) ++sc.flips;
        } else if (beaten) {
          // Not selected and no accounting to finish: the remaining spins
          // would only feed a resample that will not happen.
          break;
        }
      }
      if (selected) {
        // Heat-bath marginal from the RECEIVED spins, multiplying the same
        // pooled transposed-table rows in the same incident-edge order as
        // CompiledMrf::marginal_weights — so the resample is bit-identical
        // to chains::heat_bath_kernel on the reference chain.
        sc.weights.resize(q);
        const auto bv = cm.vertex_activity(v);
        for (std::size_t c = 0; c < q; ++c) sc.weights[c] = bv[c];
        for (int port = 0; port < deg; ++port) {
          const int e = inc[static_cast<std::size_t>(base + port)];
          const auto xu =
              static_cast<std::size_t>(sc.spins[static_cast<std::size_t>(port)]);
          const double* row = cm.table_transposed(e).data() + xu * q;
          for (std::size_t c = 0; c < q; ++c) sc.weights[c] *= row[c];
        }
        const int c = chains::shared_stream_sample(
            sc.weights, rng, util::RngDomain::vertex_update,
            static_cast<std::uint64_t>(v), t);
        if (c >= 0) x_[static_cast<std::size_t>(v)] = c;
      }
    }

    // Send this round's priority and current spin for step r.
    const double priority = chains::luby_priority(rng, v, r);
    const std::uint64_t words[2] = {
        std::bit_cast<std::uint64_t>(priority),
        static_cast<std::uint64_t>(x_[static_cast<std::size_t>(v)])};
    ctx.broadcast(words, msg_bits);
  }
}

LocalMetropolisTable::LocalMetropolisTable(
    std::shared_ptr<const mrf::CompiledMrf> cm, const mrf::Config& x0)
    : cm_(std::move(cm)), x_(x0) {
  LS_REQUIRE(cm_ != nullptr, "compiled view must not be null");
  mrf::check_config(cm_->mrf(), x_);
  pending_.assign(x_.size(), -1);
}

void LocalMetropolisTable::run_nodes(Network& net, int thread,
                                     std::span<const int> vertices) {
  const mrf::CompiledMrf& cm = *cm_;
  const util::CounterRng& rng = net.rng();
  const auto off = cm.csr_offsets();
  const auto inc = cm.incident_edges_flat();
  const std::int64_t r = net.round();
  const int msg_bits = 2 * spin_bits(cm.q());

  for (const int v : vertices) {
    NodeContext ctx = net.context(v, thread);
    const int base = off[static_cast<std::size_t>(v)];
    const int deg = off[static_cast<std::size_t>(v) + 1] - base;
    LS_AUDIT_UNIT(v);
    LS_AUDIT_WRITE(program_state, v, &x_[static_cast<std::size_t>(v)],
                   sizeof(x_[0]));
    LS_AUDIT_WRITE(program_state, v, &pending_[static_cast<std::size_t>(v)],
                   sizeof(pending_[0]));
    const int xv = x_[static_cast<std::size_t>(v)];

    if (r >= 1) {
      // Complete step t = r-1: check all incident edges with shared coins.
      const std::int64_t t = r - 1;
      const int sv = pending_[static_cast<std::size_t>(v)];
      LS_ASSERT(sv >= 0, "missing pending proposal");
      bool all_pass = true;
      for (int port = 0; port < deg; ++port) {
        const auto msg = ctx.received(port);
        LS_ASSERT(msg.size() == 2, "malformed LocalMetropolis message");
        const int su = static_cast<int>(msg[0]);
        const int xu = static_cast<int>(msg[1]);
        const int e = inc[static_cast<std::size_t>(base + port)];
        // edge_pass_prob takes spins in the edge's stored (u,v) orientation;
        // the product is invariant under swapping because A is symmetric.
        const double p = cm.edge_u(e) == v
                             ? cm.edge_pass_prob(e, sv, su, xv, xu)
                             : cm.edge_pass_prob(e, su, sv, xu, xv);
        if (!(chains::edge_coin(rng, e, t) < p)) {
          all_pass = false;
          // Stop early, like the reference kernel: every edge coin is a pure
          // function of (e, t), so skipping the unread draws and messages
          // cannot change any other decision.
          break;
        }
      }
      if (all_pass) x_[static_cast<std::size_t>(v)] = sv;
    }

    // Draw and broadcast the proposal for step r with the current spin.
    const double u = rng.u01(util::RngDomain::vertex_proposal,
                             static_cast<std::uint64_t>(v),
                             static_cast<std::uint64_t>(r));
    const int sv = util::categorical(cm.proposal_weights(v), u);
    LS_ASSERT(sv >= 0, "zero vertex activity");
    pending_[static_cast<std::size_t>(v)] = sv;
    const std::uint64_t words[2] = {
        static_cast<std::uint64_t>(sv),
        static_cast<std::uint64_t>(x_[static_cast<std::size_t>(v)])};
    ctx.broadcast(words, msg_bits);
  }
}

Network make_luby_glauber_network(const mrf::Mrf& m, const mrf::Config& x0,
                                  std::uint64_t seed,
                                  LubyGlauberNetOptions options) {
  return make_luby_glauber_network(std::make_shared<const mrf::CompiledMrf>(m),
                                   x0, seed, options);
}

Network make_luby_glauber_network(std::shared_ptr<const mrf::CompiledMrf> cm,
                                  const mrf::Config& x0, std::uint64_t seed,
                                  LubyGlauberNetOptions options) {
  LS_REQUIRE(cm != nullptr, "compiled view must not be null");
  auto g = cm->mrf().graph_ptr();
  return Network(std::move(g), seed,
                 std::make_unique<LubyGlauberTable>(std::move(cm), x0,
                                                    options));
}

Network make_local_metropolis_network(const mrf::Mrf& m, const mrf::Config& x0,
                                      std::uint64_t seed) {
  return make_local_metropolis_network(
      std::make_shared<const mrf::CompiledMrf>(m), x0, seed);
}

Network make_local_metropolis_network(
    std::shared_ptr<const mrf::CompiledMrf> cm, const mrf::Config& x0,
    std::uint64_t seed) {
  LS_REQUIRE(cm != nullptr, "compiled view must not be null");
  auto g = cm->mrf().graph_ptr();
  return Network(std::move(g), seed,
                 std::make_unique<LocalMetropolisTable>(std::move(cm), x0));
}

}  // namespace lsample::local
