#include "local/node_programs.hpp"

#include <bit>

#include "chains/glauber.hpp"
#include "chains/local_metropolis.hpp"
#include "chains/schedulers.hpp"
#include "util/require.hpp"

namespace lsample::local {

int spin_bits(int q) noexcept {
  int b = 1;
  while ((1 << b) < q) ++b;
  return b;
}

LubyGlauberNode::LubyGlauberNode(const mrf::Mrf& m, int vertex,
                                 int initial_spin)
    : m_(m), v_(vertex), x_(initial_spin) {
  LS_REQUIRE(initial_spin >= 0 && initial_spin < m.q(), "spin out of range");
}

void LubyGlauberNode::on_round(NodeContext& ctx) {
  const std::int64_t r = ctx.round();
  const int deg = ctx.degree();

  if (r >= 1) {
    // Complete Markov-chain step t = r-1 using last round's messages.
    const std::int64_t t = r - 1;
    const double my_priority = chains::luby_priority(ctx.rng(), v_, t);
    bool selected = true;
    nbr_spins_.resize(static_cast<std::size_t>(deg));
    for (int port = 0; port < deg; ++port) {
      const auto msg = ctx.received(port);
      LS_ASSERT(msg.size() == 2, "malformed LubyGlauber message");
      const double their_priority = std::bit_cast<double>(msg[0]);
      nbr_spins_[static_cast<std::size_t>(port)] = static_cast<int>(msg[1]);
      const int u = ctx.neighbor_of_port(port);
      if (their_priority > my_priority ||
          (their_priority == my_priority && u > v_))
        selected = false;
    }
    if (selected)
      x_ = chains::heat_bath_resample(m_, ctx.rng(), v_, t, nbr_spins_,
                                      weights_, x_);
  }

  // Send this round's priority and current spin for step r.
  const double priority = chains::luby_priority(ctx.rng(), v_, r);
  const std::uint64_t words[2] = {std::bit_cast<std::uint64_t>(priority),
                                  static_cast<std::uint64_t>(x_)};
  for (int port = 0; port < deg; ++port)
    ctx.send(port, words, kPriorityBits + spin_bits(m_.q()));
}

LocalMetropolisNode::LocalMetropolisNode(const mrf::Mrf& m, int vertex,
                                         int initial_spin)
    : m_(m), v_(vertex), x_(initial_spin) {
  LS_REQUIRE(initial_spin >= 0 && initial_spin < m.q(), "spin out of range");
}

void LocalMetropolisNode::on_round(NodeContext& ctx) {
  const std::int64_t r = ctx.round();
  const int deg = ctx.degree();

  if (r >= 1) {
    // Complete step t = r-1: check all incident edges with the shared coins.
    const std::int64_t t = r - 1;
    const int sv = pending_proposal_;
    LS_ASSERT(sv >= 0, "missing pending proposal");
    bool all_pass = true;
    for (int port = 0; port < deg; ++port) {
      const auto msg = ctx.received(port);
      LS_ASSERT(msg.size() == 2, "malformed LocalMetropolis message");
      const int su = static_cast<int>(msg[0]);
      const int xu = static_cast<int>(msg[1]);
      const int e = ctx.edge_of_port(port);
      // edge_pass_prob takes spins in the edge's stored (u,v) orientation;
      // the product is invariant under swapping because A is symmetric.
      const graph::Edge& ed = m_.g().edge(e);
      const double p = (ed.u == v_) ? m_.edge_pass_prob(e, sv, su, x_, xu)
                                    : m_.edge_pass_prob(e, su, sv, xu, x_);
      const bool pass = chains::edge_coin(ctx.rng(), e, t) < p;
      if (!pass) {
        all_pass = false;
        // Keep reading the remaining ports so the message protocol stays in
        // lockstep, but the decision is already made.
      }
    }
    if (all_pass) x_ = sv;
  }

  // Draw and broadcast the proposal for step r together with the current
  // spin.
  pending_proposal_ = chains::metropolis_proposal(m_, ctx.rng(), v_, r);
  const std::uint64_t words[2] = {
      static_cast<std::uint64_t>(pending_proposal_),
      static_cast<std::uint64_t>(x_)};
  for (int port = 0; port < deg; ++port)
    ctx.send(port, words, 2 * spin_bits(m_.q()));
}

Network make_luby_glauber_network(const mrf::Mrf& m, const mrf::Config& x0,
                                  std::uint64_t seed) {
  mrf::check_config(m, x0);
  return Network(m.graph_ptr(), seed, [&m, &x0](int v) {
    return std::make_unique<LubyGlauberNode>(
        m, v, x0[static_cast<std::size_t>(v)]);
  });
}

Network make_local_metropolis_network(const mrf::Mrf& m, const mrf::Config& x0,
                                      std::uint64_t seed) {
  mrf::check_config(m, x0);
  return Network(m.graph_ptr(), seed, [&m, &x0](int v) {
    return std::make_unique<LocalMetropolisNode>(
        m, v, x0[static_cast<std::size_t>(v)]);
  });
}

}  // namespace lsample::local
