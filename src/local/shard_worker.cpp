// shard_worker: serves one shard of a sharded LOCAL network for the
// process transport.  Spawned by the parent with the worker end of a
// socketpair as argv[1]; everything else (graph, partition, program)
// arrives over the socket.  See process_transport.cpp for the protocol.
#include <cstdio>
#include <cstdlib>

#include "local/sharding.hpp"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr,
                 "usage: shard_worker <socket-fd>\n"
                 "(spawned by the process transport, not run by hand)\n");
    return 2;
  }
  char* end = nullptr;
  const long fd = std::strtol(argv[1], &end, 10);
  if (end == argv[1] || *end != '\0' || fd < 0) {
    std::fprintf(stderr, "shard_worker: bad socket fd '%s'\n", argv[1]);
    return 2;
  }
  return lsample::local::run_shard_worker(static_cast<int>(fd));
}
