// Distributed node programs implementing Algorithm 1 (LubyGlauber) and
// Algorithm 2 (LocalMetropolis) in the LOCAL model, as value-type program
// tables over compiled model views (mrf::CompiledMrf).
//
// Each Markov-chain step t costs exactly one communication round: at round r
// every node sends the randomness and state needed for step r (its Luby
// priority or proposal, plus its current spin), and at round r+1 it completes
// step r using the received messages.  After R simulated rounds, R-1 chain
// steps are complete, and the outputs equal the corresponding reference chain
// (chains::LubyGlauberChain / chains::LocalMetropolisChain) run for R-1 steps
// with the same seed — a bit-exact equivalence asserted by the test suite, at
// any thread count of an attached ParallelEngine.
//
// A table touches only vertex-local data: its own per-node state arrays, the
// compiled view's activity tables for incident edges, and the received
// messages — mirroring the paper's input model where v receives {A_uv} and
// b_v and everything else arrives over the wire.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "local/network.hpp"
#include "mrf/compiled.hpp"
#include "mrf/mrf.hpp"

namespace lsample::local {

/// Bits needed to transmit one spin in [0,q).
[[nodiscard]] int spin_bits(int q) noexcept;

/// Bits used to transmit one Luby priority when sending the full double (the
/// paper discretizes to O(log n) bits; see discretized_priority_bits).
inline constexpr int kPriorityBits = 64;

/// The paper's O(log n)-bit budget for one discretized Luby priority
/// (end of §1.1): ceil(log2 n) bits plus a small constant slack so that
/// priority comparisons still resolve w.h.p.
[[nodiscard]] int discretized_priority_bits(int n) noexcept;

struct LubyGlauberNetOptions {
  /// Bits accounted per transmitted priority.  kPriorityBits (default)
  /// models sending the full double — the seed simulator's accounting.  A
  /// smaller budget models the paper's O(log n)-bit discretization: the
  /// trajectory is still driven by the full-precision priorities (so it
  /// stays bit-identical to the reference chain), message bits are accounted
  /// at the budget, and quantized_comparison_flips() measures how many
  /// priority comparisons would have resolved differently had only
  /// priority_bits bits been transmitted — the end-of-§1.1 claim, measured.
  int priority_bits = kPriorityBits;
};

/// Algorithm 1 as a node-program table.
class LubyGlauberTable final : public NodeProgramTable {
 public:
  /// The view's Mrf and graph must outlive the table.
  LubyGlauberTable(std::shared_ptr<const mrf::CompiledMrf> cm,
                   const mrf::Config& x0, LubyGlauberNetOptions options = {});

  [[nodiscard]] int message_capacity_words() const noexcept override {
    return 2;  // (priority, spin)
  }
  void run_nodes(Network& net, int thread,
                 std::span<const int> vertices) override;
  [[nodiscard]] int output(int v) const override {
    return x_[static_cast<std::size_t>(v)];
  }
  void set_num_threads(int num_threads) override;

  /// Number of priority comparisons (summed over nodes, ports, and rounds)
  /// whose outcome under priority_bits-bit quantization differs from the
  /// full-precision outcome.  Always 0 when priority_bits == kPriorityBits.
  [[nodiscard]] std::int64_t quantized_comparison_flips() const;

 private:
  struct Scratch {
    std::vector<double> weights;  // heat-bath marginal
    std::vector<int> spins;       // received neighbor spins, port-aligned
    std::int64_t flips = 0;
  };

  std::shared_ptr<const mrf::CompiledMrf> cm_;
  LubyGlauberNetOptions opt_;
  std::vector<int> x_;
  std::vector<Scratch> scratch_;  // one per worker thread
};

/// Algorithm 2 as a node-program table.
class LocalMetropolisTable final : public NodeProgramTable {
 public:
  /// The view's Mrf and graph must outlive the table.
  LocalMetropolisTable(std::shared_ptr<const mrf::CompiledMrf> cm,
                       const mrf::Config& x0);

  [[nodiscard]] int message_capacity_words() const noexcept override {
    return 2;  // (proposal, spin)
  }
  void run_nodes(Network& net, int thread,
                 std::span<const int> vertices) override;
  [[nodiscard]] int output(int v) const override {
    return x_[static_cast<std::size_t>(v)];
  }

 private:
  std::shared_ptr<const mrf::CompiledMrf> cm_;
  std::vector<int> x_;
  std::vector<int> pending_;  // proposal drawn when the last message was sent
};

/// Convenience: builds a network of LubyGlauber nodes over m's graph,
/// compiling a fresh view (m must outlive the network).
[[nodiscard]] Network make_luby_glauber_network(
    const mrf::Mrf& m, const mrf::Config& x0, std::uint64_t seed,
    LubyGlauberNetOptions options = {});

/// Same over a shared compiled view (the facade's replica batches reuse ONE
/// view across networks).
[[nodiscard]] Network make_luby_glauber_network(
    std::shared_ptr<const mrf::CompiledMrf> cm, const mrf::Config& x0,
    std::uint64_t seed, LubyGlauberNetOptions options = {});

/// Convenience: builds a network of LocalMetropolis nodes over m's graph,
/// compiling a fresh view (m must outlive the network).
[[nodiscard]] Network make_local_metropolis_network(const mrf::Mrf& m,
                                                    const mrf::Config& x0,
                                                    std::uint64_t seed);

/// Same over a shared compiled view.
[[nodiscard]] Network make_local_metropolis_network(
    std::shared_ptr<const mrf::CompiledMrf> cm, const mrf::Config& x0,
    std::uint64_t seed);

}  // namespace lsample::local
