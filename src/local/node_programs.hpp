// Distributed node programs implementing Algorithm 1 (LubyGlauber) and
// Algorithm 2 (LocalMetropolis) in the LOCAL model.
//
// Each Markov-chain step t costs exactly one communication round: at round r
// every node sends the randomness and state needed for step r (its Luby
// priority or proposal, plus its current spin), and at round r+1 it completes
// step r using the received messages.  After R simulated rounds, R-1 chain
// steps are complete, and the outputs equal the corresponding reference chain
// (chains::LubyGlauberChain / chains::LocalMetropolisChain) run for R-1 steps
// with the same seed — a bit-exact equivalence asserted by the test suite.
//
// A node program holds a reference to the Mrf but touches only vertex-local
// data (its own activity vector and the activities of incident edges),
// mirroring the paper's input model where v receives {A_uv} and b_v.
#pragma once

#include <vector>

#include "local/network.hpp"
#include "mrf/mrf.hpp"

namespace lsample::local {

/// Bits needed to transmit one spin in [0,q).
[[nodiscard]] int spin_bits(int q) noexcept;

/// Bits used to transmit one Luby priority (we send the full double; the
/// paper discretizes to O(log n) bits).
inline constexpr int kPriorityBits = 64;

class LubyGlauberNode final : public NodeProgram {
 public:
  LubyGlauberNode(const mrf::Mrf& m, int vertex, int initial_spin);

  void on_round(NodeContext& ctx) override;
  [[nodiscard]] int output() const noexcept override { return x_; }

 private:
  const mrf::Mrf& m_;
  int v_;
  int x_;
  std::vector<int> nbr_spins_;
  std::vector<double> weights_;
};

class LocalMetropolisNode final : public NodeProgram {
 public:
  LocalMetropolisNode(const mrf::Mrf& m, int vertex, int initial_spin);

  void on_round(NodeContext& ctx) override;
  [[nodiscard]] int output() const noexcept override { return x_; }

 private:
  const mrf::Mrf& m_;
  int v_;
  int x_;
  int pending_proposal_ = -1;  // proposal drawn when the last message was sent
};

/// Convenience: builds a network of LubyGlauber nodes over m's graph.
[[nodiscard]] Network make_luby_glauber_network(const mrf::Mrf& m,
                                                const mrf::Config& x0,
                                                std::uint64_t seed);

/// Convenience: builds a network of LocalMetropolis nodes over m's graph.
[[nodiscard]] Network make_local_metropolis_network(const mrf::Mrf& m,
                                                    const mrf::Config& x0,
                                                    std::uint64_t seed);

}  // namespace lsample::local
