#include "local/csp_node_programs.hpp"

#include "local/node_programs.hpp"
#include "util/require.hpp"

namespace lsample::local {

CspLocalMetropolisTable::CspLocalMetropolisTable(const csp::FactorGraph& fg,
                                                const csp::Config& x0)
    : fg_(&fg), x_(x0) {
  csp::check_config(fg, x_);
  pending_.assign(x_.size(), -1);
  set_num_threads(1);
}

void CspLocalMetropolisTable::set_num_threads(int num_threads) {
  scratch_.assign(static_cast<std::size_t>(num_threads), {});
  const std::size_t n = static_cast<std::size_t>(fg_->n());
  for (auto& sc : scratch_) {
    sc.known_proposal.assign(n, -1);
    sc.known_spin.assign(n, -1);
    sc.stamp.assign(n, -1);
    sc.sigma.assign(n, 0);
    sc.x.assign(n, 0);
  }
}

void CspLocalMetropolisTable::run_nodes(Network& net, int thread,
                                        std::span<const int> vertices) {
  const csp::FactorGraph& fg = *fg_;
  const util::CounterRng& rng = net.rng();
  const auto off = net.g().csr_offsets();
  const auto nbr = net.g().neighbors_flat();
  const std::int64_t r = net.round();
  const int bits = 2 * spin_bits(fg.q());
  auto& sc = scratch_[static_cast<std::size_t>(thread)];

  for (const int v : vertices) {
    NodeContext ctx = net.context(v, thread);
    const int base = off[static_cast<std::size_t>(v)];
    const int deg = off[static_cast<std::size_t>(v) + 1] - base;

    if (r >= 1) {
      const std::int64_t t = r - 1;
      const std::int64_t token = ++sc.token;
      // Gather scope-mates' proposals and spins from the received messages.
      for (int port = 0; port < deg; ++port) {
        const auto msg = ctx.received(port);
        LS_ASSERT(msg.size() == 2, "malformed CSP message");
        const auto u =
            static_cast<std::size_t>(nbr[static_cast<std::size_t>(base + port)]);
        sc.known_proposal[u] = static_cast<int>(msg[0]);
        sc.known_spin[u] = static_cast<int>(msg[1]);
        sc.stamp[u] = token;
      }
      sc.known_proposal[static_cast<std::size_t>(v)] =
          pending_[static_cast<std::size_t>(v)];
      sc.known_spin[static_cast<std::size_t>(v)] =
          x_[static_cast<std::size_t>(v)];
      sc.stamp[static_cast<std::size_t>(v)] = token;

      // Evaluate every incident constraint with its shared coin.  The
      // constraint's scope is a subset of {v} + conflict neighbors, so all
      // needed values are known locally.
      bool all_pass = true;
      for (int c : fg.constraints_of(v)) {
        for (int w : fg.constraint(c).scope) {
          const auto wi = static_cast<std::size_t>(w);
          LS_ASSERT(sc.stamp[wi] == token,
                    "scope-mate value missing: scope not within the conflict "
                    "neighborhood");
          sc.sigma[wi] = sc.known_proposal[wi];
          sc.x[wi] = sc.known_spin[wi];
        }
        const double p = fg.constraint_pass_prob(c, sc.sigma, sc.x);
        const double u = rng.u01(util::RngDomain::constraint_coin,
                                 static_cast<std::uint64_t>(c),
                                 static_cast<std::uint64_t>(t));
        if (!(u < p)) {
          all_pass = false;
          break;
        }
      }
      if (all_pass)
        x_[static_cast<std::size_t>(v)] = pending_[static_cast<std::size_t>(v)];
    }

    // Draw the proposal for step r and broadcast (proposal, spin).
    const double u = rng.u01(util::RngDomain::vertex_proposal,
                             static_cast<std::uint64_t>(v),
                             static_cast<std::uint64_t>(r));
    const int sv = util::categorical(fg.vertex_activity(v), u);
    LS_ASSERT(sv >= 0, "zero vertex activity");
    pending_[static_cast<std::size_t>(v)] = sv;
    const std::uint64_t words[2] = {
        static_cast<std::uint64_t>(sv),
        static_cast<std::uint64_t>(x_[static_cast<std::size_t>(v)])};
    ctx.broadcast(words, bits);
  }
}

Network make_csp_local_metropolis_network(const csp::FactorGraph& fg,
                                          const csp::Config& x0,
                                          std::uint64_t seed) {
  auto conflict = fg.make_conflict_graph();
  return Network(std::move(conflict), seed,
                 std::make_unique<CspLocalMetropolisTable>(fg, x0));
}

}  // namespace lsample::local
