#include "local/csp_node_programs.hpp"

#include "util/require.hpp"

namespace lsample::local {

CspLocalMetropolisNode::CspLocalMetropolisNode(const csp::FactorGraph& fg,
                                               int vertex, int initial_spin)
    : fg_(fg), v_(vertex), x_(initial_spin) {
  LS_REQUIRE(initial_spin >= 0 && initial_spin < fg.q(), "spin out of range");
  known_proposal_.assign(static_cast<std::size_t>(fg.n()), -1);
  known_spin_.assign(static_cast<std::size_t>(fg.n()), -1);
}

void CspLocalMetropolisNode::on_round(NodeContext& ctx) {
  const std::int64_t r = ctx.round();
  const int deg = ctx.degree();

  if (r >= 1) {
    const std::int64_t t = r - 1;
    // Gather scope-mates' proposals and spins from the received messages.
    for (int port = 0; port < deg; ++port) {
      const auto msg = ctx.received(port);
      LS_ASSERT(msg.size() == 2, "malformed CSP message");
      const int u = ctx.neighbor_of_port(port);
      known_proposal_[static_cast<std::size_t>(u)] = static_cast<int>(msg[0]);
      known_spin_[static_cast<std::size_t>(u)] = static_cast<int>(msg[1]);
    }
    known_proposal_[static_cast<std::size_t>(v_)] = pending_proposal_;
    known_spin_[static_cast<std::size_t>(v_)] = x_;

    // Evaluate every incident constraint with its shared coin.  The
    // constraint's scope is a subset of {v} + conflict neighbors, so all
    // needed values are known locally.
    bool all_pass = true;
    csp::Config sigma(static_cast<std::size_t>(fg_.n()), 0);
    csp::Config x(static_cast<std::size_t>(fg_.n()), 0);
    for (int c : fg_.constraints_of(v_)) {
      for (int w : fg_.constraint(c).scope) {
        LS_ASSERT(known_proposal_[static_cast<std::size_t>(w)] >= 0,
                  "scope-mate value missing: scope not within the conflict "
                  "neighborhood");
        sigma[static_cast<std::size_t>(w)] =
            known_proposal_[static_cast<std::size_t>(w)];
        x[static_cast<std::size_t>(w)] =
            known_spin_[static_cast<std::size_t>(w)];
      }
      const double p = fg_.constraint_pass_prob(c, sigma, x);
      const double u = ctx.rng().u01(util::RngDomain::constraint_coin,
                                     static_cast<std::uint64_t>(c),
                                     static_cast<std::uint64_t>(t));
      if (!(u < p)) {
        all_pass = false;
        break;
      }
    }
    if (all_pass) x_ = pending_proposal_;
  }

  // Draw the proposal for step r and broadcast (proposal, spin).
  {
    const double u = ctx.rng().u01(util::RngDomain::vertex_proposal,
                                   static_cast<std::uint64_t>(v_),
                                   static_cast<std::uint64_t>(r));
    pending_proposal_ = util::categorical(fg_.vertex_activity(v_), u);
    LS_ASSERT(pending_proposal_ >= 0, "zero vertex activity");
  }
  const std::uint64_t words[2] = {static_cast<std::uint64_t>(pending_proposal_),
                                  static_cast<std::uint64_t>(x_)};
  const int bits = 2 * [&] {
    int b = 1;
    while ((1 << b) < fg_.q()) ++b;
    return b;
  }();
  for (int port = 0; port < deg; ++port) ctx.send(port, words, bits);
}

Network make_csp_local_metropolis_network(const csp::FactorGraph& fg,
                                          const csp::Config& x0,
                                          std::uint64_t seed) {
  csp::check_config(fg, x0);
  auto conflict = fg.make_conflict_graph();
  return Network(std::move(conflict), seed, [&fg, &x0](int v) {
    return std::make_unique<CspLocalMetropolisNode>(
        fg, v, x0[static_cast<std::size_t>(v)]);
  });
}

}  // namespace lsample::local
