// LOCAL-model execution of the CSP LocalMetropolis algorithm (the §4 remark
// generalized to weighted local CSPs).
//
// The communication network is the *conflict graph* of the factor graph
// (u ~ v iff they share a constraint): in the paper's model a local
// constraint has constant-diameter scope, so scope-mates are (near-)
// neighbors.  Per step each vertex broadcasts (proposal, spin) to its
// conflict neighbors; every vertex then evaluates each incident constraint
// with a shared counter-RNG coin and accepts iff all of them pass —
// reproducing csp::CspLocalMetropolisChain trajectory-exactly (tested).
#pragma once

#include <vector>

#include "csp/csp_chains.hpp"
#include "local/network.hpp"

namespace lsample::local {

class CspLocalMetropolisNode final : public NodeProgram {
 public:
  CspLocalMetropolisNode(const csp::FactorGraph& fg, int vertex,
                         int initial_spin);

  void on_round(NodeContext& ctx) override;
  [[nodiscard]] int output() const noexcept override { return x_; }

 private:
  const csp::FactorGraph& fg_;
  int v_;
  int x_;
  int pending_proposal_ = -1;
  // Scratch: latest known (proposal, spin) per vertex id we can hear from.
  std::vector<int> known_proposal_;
  std::vector<int> known_spin_;
};

/// Builds the conflict-graph network running CSP LocalMetropolis from x0.
/// The returned network's vertex ids coincide with the factor graph's.
[[nodiscard]] Network make_csp_local_metropolis_network(
    const csp::FactorGraph& fg, const csp::Config& x0, std::uint64_t seed);

}  // namespace lsample::local
