// LOCAL-model execution of the CSP LocalMetropolis algorithm (the §4 remark
// generalized to weighted local CSPs), as a value-type node-program table.
//
// The communication network is the *conflict graph* of the factor graph
// (u ~ v iff they share a constraint): in the paper's model a local
// constraint has constant-diameter scope, so scope-mates are (near-)
// neighbors.  Per step each vertex broadcasts (proposal, spin) to its
// conflict neighbors; every vertex then evaluates each incident constraint
// with a shared counter-RNG coin and accepts iff all of them pass —
// reproducing csp::CspLocalMetropolisChain trajectory-exactly (tested),
// sequentially and at any thread count of an attached engine.
#pragma once

#include <cstdint>
#include <vector>

#include "csp/csp_chains.hpp"
#include "local/network.hpp"

namespace lsample::local {

class CspLocalMetropolisTable final : public NodeProgramTable {
 public:
  /// fg must outlive the table.
  CspLocalMetropolisTable(const csp::FactorGraph& fg, const csp::Config& x0);

  [[nodiscard]] int message_capacity_words() const noexcept override {
    return 2;  // (proposal, spin)
  }
  void run_nodes(Network& net, int thread,
                 std::span<const int> vertices) override;
  [[nodiscard]] int output(int v) const override {
    return x_[static_cast<std::size_t>(v)];
  }
  void set_num_threads(int num_threads) override;

 private:
  struct Scratch {
    // Latest known (proposal, spin) per vertex id, validated by a stamp so a
    // value written for one node's round can never leak into another node's
    // constraint evaluation (the seed simulator's per-node arrays made this
    // structurally impossible; the stamp keeps the same detection exact).
    std::vector<int> known_proposal;
    std::vector<int> known_spin;
    std::vector<std::int64_t> stamp;
    std::int64_t token = 0;
    csp::Config sigma;
    csp::Config x;
  };

  const csp::FactorGraph* fg_;
  std::vector<int> x_;
  std::vector<int> pending_;  // proposal drawn when the last message was sent
  std::vector<Scratch> scratch_;
};

/// Builds the conflict-graph network running CSP LocalMetropolis from x0.
/// The returned network's vertex ids coincide with the factor graph's.
[[nodiscard]] Network make_csp_local_metropolis_network(
    const csp::FactorGraph& fg, const csp::Config& x0, std::uint64_t seed);

}  // namespace lsample::local
