#include "gadget/tempering.hpp"

#include <cmath>
#include <string>

#include "chains/init.hpp"
#include "mrf/models.hpp"
#include "util/require.hpp"
#include "util/summary.hpp"

namespace lsample::gadget {

ParallelTempering::ParallelTempering(std::vector<mrf::Mrf> ladder,
                                     std::uint64_t seed)
    : ladder_(std::move(ladder)), rng_(seed) {
  LS_REQUIRE(!ladder_.empty(), "ladder must not be empty");
  const mrf::Mrf& ref = ladder_.front();
  const int n = ref.n();
  const int q = ref.q();
  for (const auto& m : ladder_)
    LS_REQUIRE(m.n() == n && m.q() == q, "ladder rungs must share (n, q)");
  // The documented precondition: feasibility must be equivalent across
  // rungs, or swap weights become ill-defined.  MRF feasibility is local —
  // w(x) > 0 iff every vertex and edge activity is positive at x — so the
  // zero patterns of the activities determine the feasible set exactly, and
  // comparing them rung by rung enforces the precondition in full.  Edge
  // patterns are only comparable edge-for-edge, hence the shared-edge-list
  // requirement (a ladder is built on one graph in every use here).
  for (std::size_t r = 1; r < ladder_.size(); ++r) {
    const mrf::Mrf& m = ladder_[r];
    LS_REQUIRE(m.g().num_edges() == ref.g().num_edges(),
               "ladder rungs must share one edge list (rung " +
                   std::to_string(r) + " differs)");
    for (int v = 0; v < n; ++v) {
      const auto ba = ref.vertex_activity(v);
      const auto bb = m.vertex_activity(v);
      for (int s = 0; s < q; ++s)
        LS_REQUIRE((ba[static_cast<std::size_t>(s)] == 0.0) ==
                       (bb[static_cast<std::size_t>(s)] == 0.0),
                   "ladder rungs must have equivalent feasibility (same zero "
                   "pattern); rung " +
                       std::to_string(r) + " differs at vertex " +
                       std::to_string(v));
    }
    for (int e = 0; e < ref.g().num_edges(); ++e) {
      const graph::Edge& ea = ref.g().edge(e);
      const graph::Edge& eb = m.g().edge(e);
      LS_REQUIRE(ea.u == eb.u && ea.v == eb.v,
                 "ladder rungs must share one edge list (rung " +
                     std::to_string(r) + " differs at edge " +
                     std::to_string(e) + ")");
      const auto& aa = ref.edge_activity(e);
      const auto& ab = m.edge_activity(e);
      for (int i = 0; i < q; ++i)
        for (int j = 0; j < q; ++j)
          LS_REQUIRE((aa.at(i, j) == 0.0) == (ab.at(i, j) == 0.0),
                     "ladder rungs must have equivalent feasibility (same "
                     "zero pattern); rung " +
                         std::to_string(r) + " differs at edge " +
                         std::to_string(e));
    }
  }
  configs_.reserve(ladder_.size());
  for (const auto& m : ladder_)
    configs_.push_back(chains::greedy_feasible_config(m));
}

const mrf::Config& ParallelTempering::config(int rung) const {
  LS_REQUIRE(rung >= 0 && rung < num_rungs(), "rung out of range");
  return configs_[static_cast<std::size_t>(rung)];
}

double ParallelTempering::swap_acceptance_rate() const noexcept {
  return swaps_attempted_ > 0
             ? static_cast<double>(swaps_accepted_) / swaps_attempted_
             : 0.0;
}

void ParallelTempering::glauber_sweep(int rung) {
  const mrf::Mrf& m = ladder_[static_cast<std::size_t>(rung)];
  mrf::Config& x = configs_[static_cast<std::size_t>(rung)];
  for (int step = 0; step < m.n(); ++step) {
    const int v = rng_.uniform_int(m.n());
    m.marginal_weights(v, x, weights_);
    const int c = util::categorical(weights_, rng_.u01());
    // All-zero marginal (only possible at an infeasible state): keep the
    // current spin, as csp_heat_bath_resample documents, rather than dying
    // mid-sweep.
    if (c >= 0) x[static_cast<std::size_t>(v)] = c;
  }
}

void ParallelTempering::try_swap(int low) {
  const mrf::Mrf& ma = ladder_[static_cast<std::size_t>(low)];
  const mrf::Mrf& mb = ladder_[static_cast<std::size_t>(low + 1)];
  mrf::Config& xa = configs_[static_cast<std::size_t>(low)];
  mrf::Config& xb = configs_[static_cast<std::size_t>(low + 1)];
  ++swaps_attempted_;
  const double current = ma.log_weight(xa) + mb.log_weight(xb);
  // A -infinity current-rung weight makes the ratio NaN (inf - inf); the
  // swap is then ill-defined, so reject it outright instead of letting the
  // NaN reach the accept comparison (where IEEE ordering happens to reject
  // today, but only by accident).
  if (std::isinf(current)) return;
  const double log_ratio = ma.log_weight(xb) + mb.log_weight(xa) - current;
  if (std::log(std::max(rng_.u01(), 1e-300)) < log_ratio) {
    std::swap(xa, xb);
    ++swaps_accepted_;
  }
}

void ParallelTempering::run_sweeps(int sweeps) {
  for (int s = 0; s < sweeps; ++s) {
    for (int rung = 0; rung < num_rungs(); ++rung) glauber_sweep(rung);
    // Alternate even/odd adjacent pairs for better flow up the ladder.
    const int parity = static_cast<int>(sweep_count_ % 2);
    for (int low = parity; low + 1 < num_rungs(); low += 2) try_swap(low);
    ++sweep_count_;
  }
}

std::vector<mrf::Mrf> hardcore_ladder(graph::GraphPtr g, double lambda_min,
                                      double lambda, int rungs) {
  LS_REQUIRE(rungs >= 2, "ladder needs at least two rungs");
  LS_REQUIRE(lambda_min > 0.0 && lambda_min < lambda,
             "need 0 < lambda_min < lambda");
  std::vector<mrf::Mrf> ladder;
  ladder.reserve(static_cast<std::size_t>(rungs));
  const double ratio = std::pow(lambda / lambda_min,
                                1.0 / static_cast<double>(rungs - 1));
  double cur = lambda_min;
  for (int r = 0; r < rungs; ++r) {
    ladder.push_back(mrf::make_hardcore(g, r == rungs - 1 ? lambda : cur));
    cur *= ratio;
  }
  return ladder;
}

}  // namespace lsample::gadget
