// Parallel tempering over a ladder of MRFs sharing a configuration space.
//
// In the non-uniqueness regime of Theorem 5.2 every local chain is torpid on
// the lifted gadget graph — that is the point of the lower bound — so the
// ground-truth sampler for experiment E5 must restore ergodicity globally.
// Tempering runs Glauber at every rung (e.g. a ladder of hardcore
// fugacities), and swap moves let configurations tunnel between the two
// max-cut phases while preserving the exact Gibbs distribution at each rung.
#pragma once

#include <cstdint>
#include <vector>

#include "mrf/mrf.hpp"
#include "util/rng.hpp"

namespace lsample::gadget {

class ParallelTempering {
 public:
  /// ladder[0] is the easiest rung (fast mixing), ladder.back() the target.
  /// All rungs must share n and q, and feasibility must be equivalent (same
  /// zero pattern), or swap weights become ill-defined.  Both conditions are
  /// enforced here: MRF feasibility is determined exactly by the activity
  /// zero patterns, which are compared rung by rung (rungs must share one
  /// edge list for the edge patterns to be comparable).
  ParallelTempering(std::vector<mrf::Mrf> ladder, std::uint64_t seed);

  /// One sweep: n Glauber updates at every rung followed by one pass of
  /// adjacent swap attempts (alternating parity).
  void run_sweeps(int sweeps);

  [[nodiscard]] int num_rungs() const noexcept {
    return static_cast<int>(ladder_.size());
  }
  [[nodiscard]] const mrf::Config& config(int rung) const;
  [[nodiscard]] const mrf::Config& target_config() const {
    return config(num_rungs() - 1);
  }
  [[nodiscard]] double swap_acceptance_rate() const noexcept;

 private:
  void glauber_sweep(int rung);
  void try_swap(int low);

  std::vector<mrf::Mrf> ladder_;
  std::vector<mrf::Config> configs_;
  util::Rng rng_;
  std::vector<double> weights_;
  std::int64_t swaps_attempted_ = 0;
  std::int64_t swaps_accepted_ = 0;
  std::int64_t sweep_count_ = 0;
};

/// Convenience ladder for the hardcore model: geometric fugacity ladder from
/// lambda_min to lambda (inclusive) with `rungs` rungs on the same graph.
[[nodiscard]] std::vector<mrf::Mrf> hardcore_ladder(graph::GraphPtr g,
                                                    double lambda_min,
                                                    double lambda, int rungs);

}  // namespace lsample::gadget
