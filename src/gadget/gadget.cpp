#include "gadget/gadget.hpp"

#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "util/require.hpp"

namespace lsample::gadget {

Gadget make_random_gadget(const GadgetParams& params, util::Rng& rng,
                          int max_tries) {
  LS_REQUIRE(params.n > 2 * params.k && params.k >= 1,
             "need n > 2k and k >= 1");
  LS_REQUIRE(params.delta >= 3, "need Delta >= 3");
  const int n = params.n;
  for (int attempt = 0; attempt < max_tries; ++attempt) {
    auto g = std::make_shared<graph::Graph>(2 * n);
    Gadget gadget;
    gadget.g = g;
    // V+ = 0..n-1, V- = n..2n-1; terminals are the last k of each side.
    for (int i = 0; i < n; ++i) {
      gadget.vplus.push_back(i);
      gadget.vminus.push_back(n + i);
    }
    std::vector<int> uplus;
    std::vector<int> uminus;
    for (int i = 0; i < n; ++i) {
      if (i < n - params.k) {
        uplus.push_back(i);
        uminus.push_back(n + i);
      } else {
        gadget.wplus.push_back(i);
        gadget.wminus.push_back(n + i);
      }
    }
    for (int mtch = 0; mtch < params.delta - 1; ++mtch)
      graph::add_random_matching(*g, gadget.vplus, gadget.vminus, rng);
    graph::add_random_matching(*g, uplus, uminus, rng);
    if (graph::is_connected(*g)) return gadget;
  }
  throw std::runtime_error(
      "make_random_gadget: no connected gadget found; raise max_tries");
}

int phase(const std::vector<int>& vplus, const std::vector<int>& vminus,
          const mrf::Config& x) {
  int plus = 0;
  int minus = 0;
  for (int v : vplus) plus += x[static_cast<std::size_t>(v)];
  for (int v : vminus) minus += x[static_cast<std::size_t>(v)];
  if (plus > minus) return 1;
  if (plus < minus) return -1;
  return 0;
}

LiftedCycle lift_on_cycle(const Gadget& blueprint, int m) {
  LS_REQUIRE(m >= 4 && m % 2 == 0, "cycle length must be even and >= 4");
  LS_REQUIRE(blueprint.wplus.size() % 2 == 0,
             "need an even number of terminals per side (2k)");
  const int copy_size = blueprint.g->num_vertices();
  const int half = static_cast<int>(blueprint.wplus.size()) / 2;

  LiftedCycle lifted;
  lifted.m = m;
  auto g = std::make_shared<graph::Graph>(copy_size * m);
  lifted.g = g;
  lifted.vplus.resize(static_cast<std::size_t>(m));
  lifted.vminus.resize(static_cast<std::size_t>(m));

  // Structural copies.
  for (int c = 0; c < m; ++c) {
    const int base = c * copy_size;
    for (int e = 0; e < blueprint.g->num_edges(); ++e) {
      const graph::Edge& ed = blueprint.g->edge(e);
      g->add_edge(base + ed.u, base + ed.v);
    }
    for (int v : blueprint.vplus)
      lifted.vplus[static_cast<std::size_t>(c)].push_back(base + v);
    for (int v : blueprint.vminus)
      lifted.vminus[static_cast<std::size_t>(c)].push_back(base + v);
  }

  // Cycle matchings: copy c's second terminal half connects to copy c+1's
  // first terminal half, separately for W+ and W-.  Every terminal gains
  // exactly one edge, so the lifted graph is Delta-regular.
  for (int c = 0; c < m; ++c) {
    const int next = (c + 1) % m;
    const int base_c = c * copy_size;
    const int base_n = next * copy_size;
    for (int i = 0; i < half; ++i) {
      g->add_edge(
          base_c + blueprint.wplus[static_cast<std::size_t>(half + i)],
          base_n + blueprint.wplus[static_cast<std::size_t>(i)]);
      g->add_edge(
          base_c + blueprint.wminus[static_cast<std::size_t>(half + i)],
          base_n + blueprint.wminus[static_cast<std::size_t>(i)]);
    }
  }
  return lifted;
}

std::vector<int> phase_vector(const LiftedCycle& lifted, const mrf::Config& x) {
  std::vector<int> phases(static_cast<std::size_t>(lifted.m));
  for (int c = 0; c < lifted.m; ++c)
    phases[static_cast<std::size_t>(c)] =
        phase(lifted.vplus[static_cast<std::size_t>(c)],
              lifted.vminus[static_cast<std::size_t>(c)], x);
  return phases;
}

int cut_value(const std::vector<int>& phases) {
  const int m = static_cast<int>(phases.size());
  int cut = 0;
  for (int c = 0; c < m; ++c) {
    const int a = phases[static_cast<std::size_t>(c)];
    const int b = phases[static_cast<std::size_t>((c + 1) % m)];
    if (a != 0 && b != 0 && a != b) ++cut;
  }
  return cut;
}

}  // namespace lsample::gadget
