// The Ω(diam) lower-bound construction of §5.1.
//
// A random bipartite gadget G_n^k: sides V± of size n, terminals W± of size k
// (the remaining U± of size n-k), built as the union of Delta-1 uniform
// perfect matchings between V+ and V- plus one uniform perfect matching
// between U+ and U-.  Vertices in U have degree Delta; terminals Delta-1.
//
// The lifted graph H^G places one copy of the gadget (with 2k terminals per
// side) on every vertex of an even cycle H and joins consecutive copies by
// matchings between terminal halves, yielding a Delta-regular graph.  In the
// non-uniqueness regime, the phase vector Y(sigma) of a hardcore sample
// concentrates on the two maximum cuts of H (Theorem 5.4), a long-range
// correlation no o(diam)-round protocol can reproduce (Theorem 5.2).
#pragma once

#include <memory>
#include <vector>

#include "graph/graph.hpp"
#include "mrf/mrf.hpp"
#include "util/rng.hpp"

namespace lsample::gadget {

struct GadgetParams {
  int n = 16;     ///< size of each side V+/V-
  int k = 4;      ///< number of terminals per side
  int delta = 6;  ///< target maximum degree
};

struct Gadget {
  std::shared_ptr<graph::Graph> g;
  std::vector<int> vplus;   ///< all vertices of V+ (0..n-1)
  std::vector<int> vminus;  ///< all vertices of V- (n..2n-1)
  std::vector<int> wplus;   ///< terminals in V+
  std::vector<int> wminus;  ///< terminals in V-
};

/// Builds a connected random gadget; throws after max_tries disconnected
/// draws.  Parallel edges may occur (the paper's construction is a
/// multigraph).
[[nodiscard]] Gadget make_random_gadget(const GadgetParams& params,
                                        util::Rng& rng, int max_tries = 100);

/// Phase of a configuration restricted to one gadget: +1 if V+ carries more
/// occupied vertices than V-, -1 if fewer, 0 on a tie.
[[nodiscard]] int phase(const std::vector<int>& vplus,
                        const std::vector<int>& vminus, const mrf::Config& x);

struct LiftedCycle {
  std::shared_ptr<graph::Graph> g;
  int m = 0;  ///< cycle length (even)
  std::vector<std::vector<int>> vplus;   ///< per-copy V+ vertex ids
  std::vector<std::vector<int>> vminus;  ///< per-copy V- vertex ids
};

/// Lifts one gadget blueprint onto an even cycle of length m: m structural
/// copies of the gadget plus matchings joining consecutive copies' terminal
/// halves (W+ to W+, W- to W-).  Requires the gadget to have 2k terminals
/// per side with k = params.k; consecutive copies share k edges per sign.
[[nodiscard]] LiftedCycle lift_on_cycle(const Gadget& blueprint, int m);

/// Phase vector (one entry per copy) of a configuration on the lifted graph.
[[nodiscard]] std::vector<int> phase_vector(const LiftedCycle& lifted,
                                            const mrf::Config& x);

/// Number of cycle edges whose endpoint phases differ (0 entries never
/// count as a cut edge).  The maximum over phase vectors is m.
[[nodiscard]] int cut_value(const std::vector<int>& phases);

}  // namespace lsample::gadget
