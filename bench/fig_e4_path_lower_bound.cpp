// Experiment E4 — Theorem 5.1: any t-round protocol sampling proper
// q-colorings of a path within small TV distance needs t = Omega(log n).
//
// Mechanism reproduced here:
//  (a) exponential correlation property (28): the influence of sigma_u on
//      mu_v(. | sigma_u) decays geometrically with a measurable rate eta;
//  (b) locality of randomness (27): outputs at distance > 2t are
//      independent, so any t-round protocol's joint law of a vertex pair is
//      a product law — its TV distance to the Gibbs pair law is at least the
//      Gibbs "correlation floor" TV(joint, product-of-marginals);
//  (c) running LocalMetropolis for t rounds, the empirical pair law stays
//      near/above that floor until t exceeds ~dist/2 plus mixing time.
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "inference/tree_bp.hpp"
#include "util/summary.hpp"

namespace {

using namespace lsample;

void correlation_decay() {
  util::print_banner(std::cout,
                     "E4a: exponential correlation on the path (q=3)");
  const int n = 40;
  const mrf::Mrf m = mrf::make_proper_coloring(graph::make_path(n), 3);
  const inference::TreeBp bp(m);
  util::Table t({"dist(u,v)", "influence dTV", "ratio to previous"});
  double prev = -1.0;
  for (int d = 1; d <= 10; ++d) {
    const auto a = bp.conditional_marginal(d, 0, 0);
    const auto b = bp.conditional_marginal(d, 0, 1);
    const double infl = util::total_variation(a, b);
    t.begin_row().cell(d).cell(infl, 6).cell(
        prev > 0 ? infl / prev : std::nan(""), 4);
    prev = infl;
  }
  t.print(std::cout);
  std::cout << "geometric decay with rate eta ~ 0.5 (property (28) holds; "
               "correlation is long-range at every finite distance).\n";
}

void correlation_floor_and_protocol() {
  util::print_banner(
      std::cout,
      "E4b: pair-law TV of a t-round protocol vs the Gibbs correlation floor");
  const int n = 32;
  const int q = 3;
  const int u = 12;
  const int v = 16;  // dist = 4 -> outputs independent for t < 2
  const mrf::Mrf m = mrf::make_proper_coloring(graph::make_path(n), q);
  const inference::TreeBp bp(m);

  const auto joint = bp.pair_joint(u, v);
  // Correlation floor: TV between the Gibbs joint and the product of its
  // marginals — unbeatable by any protocol with independent outputs.
  const auto mu_u = bp.marginal(u);
  const auto mu_v = bp.marginal(v);
  std::vector<double> product(static_cast<std::size_t>(q) * q);
  for (int a = 0; a < q; ++a)
    for (int b = 0; b < q; ++b)
      product[static_cast<std::size_t>(a * q + b)] =
          mu_u[static_cast<std::size_t>(a)] * mu_v[static_cast<std::size_t>(b)];
  const double floor = util::total_variation(joint, product);
  std::cout << "dist(u,v) = " << v - u
            << ", Gibbs correlation floor TV(joint, product) = " << floor
            << "\n";

  const mrf::Config x0 = chains::greedy_feasible_config(m);
  util::Table t({"rounds t", "TV(empirical pair law, Gibbs pair law)",
                 "independent regime (dist > 2t)?"});
  const int runs = 20000;
  for (int rounds : {1, 2, 4, 8, 16, 64, 256, 1024}) {
    const auto pmf = chains::empirical_pmf(
        bench::local_metropolis_factory(m), x0, rounds, runs,
        [u, v, q](const mrf::Config& x) { return x[u] * q + x[v]; }, q * q,
        97);
    t.begin_row()
        .cell(rounds)
        .cell(util::total_variation(pmf, joint), 4)
        .cell(v - u > 2 * rounds ? "yes" : "no");
  }
  t.print(std::cout);
  std::cout << "expect: TV stays >= ~floor while the pair is in the "
               "independent regime or unmixed, and only falls below the "
               "floor once t is large enough for information to cross "
               "dist/2 and the chain to mix (Omega(log n) rounds).\n";
}

void statistical_independence_check() {
  util::print_banner(
      std::cout,
      "E4c: outputs at distance > 2t are uncorrelated (locality of "
      "randomness, property (27))");
  const int n = 64;
  const mrf::Mrf m = mrf::make_proper_coloring(graph::make_path(n), 3);
  const mrf::Config x0 = chains::greedy_feasible_config(m);
  const int runs = 4000;
  util::Table t({"t", "pair", "dist", "|corr(1{X_u=0}, 1{X_v=0})|"});
  for (int rounds : {3, 10}) {
    for (const auto& [u, v] : {std::pair{10, 50}, std::pair{30, 34}}) {
      std::vector<double> xu;
      std::vector<double> xv;
      xu.reserve(runs);
      xv.reserve(runs);
      for (int r = 0; r < runs; ++r) {
        chains::LocalMetropolisChain chain(
            m, 1000 + static_cast<std::uint64_t>(r));
        mrf::Config x = x0;
        for (int s = 0; s < rounds; ++s) chain.step(x, s);
        xu.push_back(x[static_cast<std::size_t>(u)] == 0 ? 1.0 : 0.0);
        xv.push_back(x[static_cast<std::size_t>(v)] == 0 ? 1.0 : 0.0);
      }
      t.begin_row()
          .cell(rounds)
          .cell(std::to_string(u) + "-" + std::to_string(v))
          .cell(v - u)
          .cell(std::abs(util::correlation(xu, xv)), 4);
    }
  }
  t.print(std::cout);
  std::cout << "distance-40 pairs stay at noise level (~1/sqrt(runs)); the "
               "distance-4 pair becomes correlated once 2t >= 4.\n";
}

}  // namespace

int main() {
  std::cout << "Experiment E4 — Omega(log n) lower bound on the path "
               "(Thm 5.1)\n";
  correlation_decay();
  correlation_floor_and_protocol();
  statistical_independence_check();
  return 0;
}
