// Experiment E10 — the separation the paper draws after Theorem 1.3:
// *labeling* problems on independent sets are locally easy (the empty set is
// an IS; a *maximal* IS takes O(log n) rounds via Luby's algorithm), while
// *sampling* a uniform independent set takes Omega(diam) rounds on the
// gadget graphs (experiment E5).  We run Luby-MIS on the same family of
// lower-bound graphs and show its round count stays flat while the diameter
// (the sampling lower bound) grows.
#include <cmath>
#include <iostream>

#include "gadget/gadget.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "local/luby_mis.hpp"
#include "util/table.hpp"

namespace {

using namespace lsample;

int main_impl() {
  std::cout << "Experiment E10 — labeling (MIS) vs sampling separation "
               "(Thm 1.3 discussion)\n";
  util::Rng grng(11);
  gadget::GadgetParams blueprint;
  blueprint.n = 24;
  blueprint.k = 8;
  blueprint.delta = 6;
  const gadget::Gadget gad = gadget::make_random_gadget(blueprint, grng);

  util::Table t({"cycle m", "n", "diam lower bd (sampling rounds)",
                 "Luby-MIS rounds (labeling)", "ratio", "messages",
                 "bits/msg"});
  for (int m : {4, 8, 16, 32}) {
    const gadget::LiftedCycle lifted = gadget::lift_on_cycle(gad, m);
    const int diam = graph::diameter_lower_bound(*lifted.g);
    local::Network net = local::make_luby_mis_network(lifted.g, 7);
    const auto rounds = local::run_luby_mis(net);
    t.begin_row()
        .cell(m)
        .cell(lifted.g->num_vertices())
        .cell(diam)
        .cell(rounds)
        .cell(static_cast<double>(diam) / static_cast<double>(rounds), 2)
        .cell(net.stats().messages)
        .cell(static_cast<std::int64_t>(net.stats().bits /
                                        net.stats().messages));
  }
  t.print(std::cout);
  std::cout
      << "paper: in the LOCAL model constructing an independent set is "
         "trivial and a maximal one takes O(log n) rounds, but Theorem 1.3 "
         "forces Omega(diam) rounds for sampling — the ratio column grows "
         "without bound as the cycle lengthens.\n";

  util::print_banner(std::cout, "Luby-MIS round growth on cycles (O(log n))");
  util::Table t2({"n", "MIS rounds", "log2 n"});
  for (int n : {64, 256, 1024, 4096}) {
    const auto g = graph::make_cycle(n);
    local::Network net = local::make_luby_mis_network(g, 13);
    t2.begin_row()
        .cell(n)
        .cell(local::run_luby_mis(net))
        .cell(std::log2(static_cast<double>(n)), 1);
  }
  t2.print(std::cout);
  return 0;
}

}  // namespace

int main() { return main_impl(); }
