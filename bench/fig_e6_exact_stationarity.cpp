// Experiment E6 — Proposition 3.1 and Theorem 4.1, verified exactly: for a
// grid of small models, build the full transition matrix of each chain and
// report stationarity error ||mu P - mu||_1, detailed-balance error, and the
// exact mixing time tau(0.01) in rounds.
#include <functional>
#include <iostream>
#include <string>

#include "bench_util.hpp"
#include "graph/generators.hpp"
#include "inference/exact.hpp"
#include "inference/spectral.hpp"
#include "inference/state_space.hpp"
#include "inference/transition.hpp"
#include "mrf/models.hpp"
#include "util/summary.hpp"
#include "util/table.hpp"

namespace {

using namespace lsample;

struct Row {
  std::string model;
  mrf::Mrf m;
};

int main_impl() {
  std::cout << "Experiment E6 — exact reversibility and mixing "
               "(Prop 3.1, Thm 4.1)\n";
  std::vector<Row> rows;
  rows.push_back({"coloring path4 q4",
                  mrf::make_proper_coloring(graph::make_path(4), 4)});
  rows.push_back({"coloring cycle4 q5",
                  mrf::make_proper_coloring(graph::make_cycle(4), 5)});
  rows.push_back(
      {"hardcore star3 l=2.5", mrf::make_hardcore(graph::make_star(3), 2.5)});
  rows.push_back(
      {"hardcore cycle5 l=1", mrf::make_hardcore(graph::make_cycle(5), 1.0)});
  rows.push_back({"Ising cycle4 b=0.5", mrf::make_ising(graph::make_cycle(4), 0.5)});
  rows.push_back(
      {"Potts path4 q3 b=-0.8", mrf::make_potts(graph::make_path(4), 3, -0.8)});

  util::Table t({"model", "chain", "||muP-mu||_1", "max DB violation",
                 "tau(0.01) rounds", "spectral gap"});
  for (const auto& row : rows) {
    const inference::StateSpace ss(row.m.n(), row.m.q());
    const auto mu = inference::gibbs_distribution(row.m, ss);
    struct ChainSpec {
      std::string name;
      std::function<inference::DenseMatrix()> make;
    };
    const std::vector<ChainSpec> chains = {
        {"Glauber", [&] { return inference::glauber_transition(row.m, ss); }},
        {"LubyGlauber",
         [&] { return inference::luby_glauber_transition(row.m, ss); }},
        {"LocalMetropolis",
         [&] { return inference::local_metropolis_transition(row.m, ss); }},
    };
    for (const auto& spec : chains) {
      const auto p = spec.make();
      t.begin_row()
          .cell(row.model)
          .cell(spec.name)
          .cell(inference::stationarity_error(p, mu), 12)
          .cell(inference::detailed_balance_error(p, mu), 12)
          .cell(inference::exact_mixing_time(p, mu, 0.01, 3000))
          .cell(inference::spectral_summary(p, mu).gap, 4);
    }
  }
  t.print(std::cout);
  std::cout << "paper: both parallel chains are reversible w.r.t. the Gibbs "
               "distribution — errors are at floating-point level; "
               "LocalMetropolis mixes in fewer rounds than LubyGlauber, "
               "which beats sequential Glauber.\n";

  // Negative control: dropping the third filtering rule breaks Theorem 4.1.
  util::print_banner(std::cout,
                     "negative control: LocalMetropolis without rule 3");
  const mrf::Mrf m = mrf::make_proper_coloring(graph::make_path(3), 3);
  const inference::StateSpace ss(3, 3);
  const auto mu = inference::gibbs_distribution(m, ss);
  const auto p2 = inference::local_metropolis_two_rule_transition(m, ss);
  const auto p3 = inference::local_metropolis_transition(m, ss);
  const auto psync = inference::synchronous_glauber_transition(m, ss);
  util::Table nt({"variant", "||muP-mu||_1"});
  nt.begin_row().cell("3 rules (Algorithm 2)").cell(
      inference::stationarity_error(p3, mu), 12);
  nt.begin_row().cell("2 rules (rule 3 dropped)").cell(
      inference::stationarity_error(p2, mu), 12);
  nt.begin_row().cell("synchronous Glauber (no Luby step)").cell(
      inference::stationarity_error(psync, mu), 12);
  nt.print(std::cout);
  std::cout << "the 'seemingly redundant' third rule is load-bearing, and "
               "parallel heat bath without the independent-set restriction "
               "is biased — both algorithmic ingredients are necessary.\n";

  // Empirical cross-check through the replica layer: the same stationarity
  // claim measured by sampling.  2000 independent LocalMetropolis runs
  // (replica-parallel, bit-identical to the sequential trial loop) project
  // the state to vertex 0's spin; the empirical pmf must match the exact
  // Gibbs marginal up to Monte-Carlo error.
  util::print_banner(std::cout,
                     "empirical stationarity via replicas "
                     "(coloring cycle4 q5, vertex-0 marginal, 2000 runs)");
  {
    const mrf::Mrf me =
        mrf::make_proper_coloring(graph::make_cycle(4), 5);
    const inference::StateSpace sse(me.n(), me.q());
    const auto mue = inference::gibbs_distribution(me, sse);
    std::vector<double> exact_marginal(static_cast<std::size_t>(me.q()), 0.0);
    for (std::int64_t s = 0; s < sse.size(); ++s)
      exact_marginal[static_cast<std::size_t>(sse.spin_of(s, 0))] +=
          mue[static_cast<std::size_t>(s)];
    const auto pmf = chains::empirical_pmf(
        bench::local_metropolis_factory(me),
        chains::greedy_feasible_config(me), 80, 2000,
        [](const mrf::Config& x) { return x[0]; }, me.q(), 19,
        /*num_threads=*/0);
    util::Table et({"color", "empirical", "exact"});
    for (int c = 0; c < me.q(); ++c)
      et.begin_row()
          .cell(c)
          .cell(pmf[static_cast<std::size_t>(c)], 4)
          .cell(exact_marginal[static_cast<std::size_t>(c)], 4);
    et.print(std::cout);
    std::cout << "total variation(empirical, exact) = "
              << util::total_variation(pmf, exact_marginal)
              << " (expect O(1/sqrt(runs)) ~ 0.02 scale).\n";
  }
  return 0;
}

}  // namespace

int main() { return main_impl(); }
