// Machine-readable throughput emitter + microbenchmark guard.
//
// Measures steps/sec for every synchronous chain at several thread counts on
// the E1 (LubyGlauber colorings, random regular graph) and E2
// (LocalMetropolis colorings, Delta ~ sqrt(n)) workload shapes, the
// compiled-view vs. seed-path sequential comparison, the replica layer's
// trial-parallel throughput (R chains sharing one CompiledMrf over a
// ReplicaRunner, per thread count), and the LOCAL-model simulator's rounds/sec
// (the compiled message-arena runtime vs. the seed simulator with per-message
// heap buffers, preserved verbatim below, plus node-parallel rounds per
// thread count), the CSP workloads (all three CSP chains: the seed
// FactorGraph execution path, preserved verbatim below, vs. the compiled
// CompiledFactorGraph runtime, per thread count, plus replica-batch
// throughput), and writes everything to BENCH_chains.json so the perf
// trajectory is tracked from PR to PR.
//
// Exit status is the guard: nonzero iff, beyond a noise allowance,
//   (a) the compiled sequential path is slower than the legacy seed path
//       (gather_neighbor_spins + heat_bath_resample on Mrf's per-edge
//       ActivityMatrix storage) on either workload, or
//   (b) the replica runner at one thread is slower than the plain sequential
//       loop over the same replica batch (the layer must cost ~nothing when
//       it cannot help), or
//   (c) the compiled LOCAL-model network is less than 2x the seed simulator
//       sequentially, or the 1-thread engine runs the network slower than
//       0.95x the engine-less sequential path, or
//   (d) a compiled CSP chain is less than 2x its seed path (virtual dispatch
//       over FactorGraph with scratch Config copies per local evaluation)
//       sequentially on any CSP workload, or
//   (e) a 1-thread engine runs any synchronous MRF chain slower than 0.95x
//       the engine-less sequential path (spin barriers + the fixed job slot
//       must make the engine nearly free when it cannot help), or
//   (f) the fast_math marginal kernel is slower than 0.9x the exact tier
//       (the reassociated product exists only to be faster), or
//   (g) the sharded runtime at one shard is below 0.9x the unsharded
//       network (empty translations, no halo — dispatch must be near-free),
//       or
//   (h) an adaptive stopping rule (stop = coupling / rhat) pays more rounds
//       than the theory budget it replaces, or fails to decide at all.
//       Decisions are pure functions of (model, seed, rule) — no noise
//       allowance and no re-measure; any violation is a logic regression.
//
// Every row is a best-of-N-repetitions measurement (max throughput = min
// time), EXCEPT the engine-overhead pairs, which are medians over windows
// that alternate between the two sides on one shared instance: at one thread
// both sides execute identical code, so the pair ratio is a pure noise
// measurement, and best-of is the wrong statistic for it (a single upside
// outlier on one side fakes an overhead that more sampling can never
// retract, while the median converges to 1x).  A pair that still misses its
// bound is re-measured once before the failure counts.  The JSON records
// hardware_threads plus a caveat: rows at thread counts above
// hardware_threads are oversubscribed and measure scheduling overhead, not
// scaling.
//
//   $ ./perf_parallel_scaling [--quick] [--out PATH] [--baseline PATH]
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "chains/engine.hpp"
#include "chains/glauber.hpp"
#include "chains/init.hpp"
#include "chains/kernels.hpp"
#include "chains/local_metropolis.hpp"
#include "chains/luby_glauber.hpp"
#include "chains/replicas.hpp"
#include "chains/synchronous_glauber.hpp"
#include "csp/compiled.hpp"
#include "csp/csp_chains.hpp"
#include "csp/csp_models.hpp"
#include "graph/generators.hpp"
#include "local/node_programs.hpp"
#include "core/sampler.hpp"
#include "local/sharding.hpp"
#include "mrf/compiled.hpp"
#include "mrf/models.hpp"

namespace {

using namespace lsample;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Runs chain steps for ~min_time seconds (at least min_steps) and returns
/// steps/sec.  Best of `reps` repetitions to shave scheduler noise.
double measure_steps_per_sec(chains::Chain& chain, const mrf::Config& x0,
                             double min_time, int min_steps, int reps) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    mrf::Config x = x0;
    std::int64_t t = 0;
    const auto start = Clock::now();
    double elapsed = 0.0;
    do {
      for (int s = 0; s < min_steps; ++s) chain.step(x, t++);
      elapsed = seconds_since(start);
    } while (elapsed < min_time);
    best = std::max(best, static_cast<double>(t) / elapsed);
  }
  return best;
}

struct Workload {
  std::string name;
  mrf::Mrf m;
  mrf::Config x0;
};

Workload make_e1(util::Rng& grng) {
  const int n = 400, delta = 8;
  const auto g = graph::make_random_regular(n, delta, grng);
  mrf::Mrf m = mrf::make_proper_coloring(g, 20);
  mrf::Config x0 = chains::greedy_feasible_config(m);
  return {"E1_coloring_regular_n400_d8_q20", std::move(m), std::move(x0)};
}

Workload make_e2(util::Rng& grng) {
  const int n = 900, delta = 30;
  const auto g = graph::make_random_regular(n, delta, grng);
  mrf::Mrf m = mrf::make_proper_coloring(g, 108);
  mrf::Config x0 = chains::greedy_feasible_config(m);
  return {"E2_coloring_regular_n900_d30_q108", std::move(m), std::move(x0)};
}

/// The seed execution path, preserved verbatim for comparison: a full
/// synchronous-Glauber-style sweep on Mrf's pointer-chasing storage.
double measure_seed_path_sweeps(const Workload& w, double min_time, int reps) {
  const util::CounterRng rng(1);
  std::vector<double> weights;
  std::vector<int> nbr_spins;
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    mrf::Config x = w.x0;
    mrf::Config next = w.x0;
    std::int64_t t = 0;
    const auto start = Clock::now();
    double elapsed = 0.0;
    do {
      for (int v = 0; v < w.m.n(); ++v) {
        chains::gather_neighbor_spins(w.m, v, x, nbr_spins);
        next[static_cast<std::size_t>(v)] = chains::heat_bath_resample(
            w.m, rng, v, t, nbr_spins, weights,
            x[static_cast<std::size_t>(v)]);
      }
      std::swap(x, next);
      ++t;
      elapsed = seconds_since(start);
    } while (elapsed < min_time);
    best = std::max(best, static_cast<double>(t) / elapsed);
  }
  return best;
}

/// The same sweep on the compiled view (single-threaded).
double measure_compiled_path_sweeps(const Workload& w, double min_time,
                                    int reps) {
  const mrf::CompiledMrf cm(w.m);
  const util::CounterRng rng(1);
  std::vector<double> weights;
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    mrf::Config x = w.x0;
    mrf::Config next = w.x0;
    std::int64_t t = 0;
    const auto start = Clock::now();
    double elapsed = 0.0;
    do {
      for (int v = 0; v < w.m.n(); ++v)
        next[static_cast<std::size_t>(v)] =
            chains::heat_bath_kernel(cm, rng, v, t, x, weights);
      std::swap(x, next);
      ++t;
      elapsed = seconds_since(start);
    } while (elapsed < min_time);
    best = std::max(best, static_cast<double>(t) / elapsed);
  }
  return best;
}

/// Heat-bath marginal calls/sec for one compiled-view configuration
/// (tier x reorder) — the kernel-tier rows.  Sweeps every vertex so the
/// reorder variants see their intended access pattern.
double measure_marginal_calls_per_sec(const Workload& w,
                                      const mrf::CompiledMrf::Options& opts,
                                      double min_time, int reps) {
  const mrf::CompiledMrf cm(w.m, opts);
  const auto order = cm.order();
  std::vector<double> weights;
  double sink = 0.0;
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    std::int64_t calls = 0;
    const auto start = Clock::now();
    double elapsed = 0.0;
    do {
      for (const int v : order) {
        cm.marginal_weights(v, w.x0, weights);
        sink += weights[0];
      }
      calls += cm.n();
      elapsed = seconds_since(start);
    } while (elapsed < min_time);
    best = std::max(best, static_cast<double>(calls) / elapsed);
  }
  if (sink == -1.0) std::cerr << "";  // keep the sweep observable
  return best;
}

// --- The seed LOCAL simulator, preserved verbatim for comparison ----------
// The pre-arena execution path: one heap-allocated program per vertex, one
// std::vector per in-flight message, neighbor reads through Mrf's per-edge
// ActivityMatrix storage.  This is the baseline the local_network guard
// measures the compiled runtime against.
namespace seed_local {

struct Message {
  std::vector<std::uint64_t> words;
  int bits = 0;
  bool present = false;
};

struct SeedStats {
  std::int64_t rounds = 0;
  std::int64_t messages = 0;
  std::int64_t bits = 0;
};

class SeedNetwork;

class SeedContext {
 public:
  SeedContext(SeedNetwork& net, int id) : net_(&net), id_(id) {}
  [[nodiscard]] std::int64_t round() const noexcept;
  [[nodiscard]] int degree() const;
  [[nodiscard]] int edge_of_port(int port) const;
  [[nodiscard]] int neighbor_of_port(int port) const;
  void send(int port, std::span<const std::uint64_t> words, int bits);
  [[nodiscard]] std::span<const std::uint64_t> received(int port) const;
  [[nodiscard]] const util::CounterRng& rng() const noexcept;

 private:
  friend class SeedNetwork;
  SeedNetwork* net_;
  int id_;
};

class SeedProgram {
 public:
  virtual ~SeedProgram() = default;
  virtual void on_round(SeedContext& ctx) = 0;
};

class SeedNetwork {
 public:
  SeedNetwork(graph::GraphPtr g,
              const std::function<std::unique_ptr<SeedProgram>(int)>& make,
              std::uint64_t seed)
      : graph_(std::move(g)), rng_(seed) {
    for (int v = 0; v < graph_->num_vertices(); ++v)
      programs_.push_back(make(v));
    cur_.assign(static_cast<std::size_t>(graph_->num_edges()) * 2, {});
    next_.assign(static_cast<std::size_t>(graph_->num_edges()) * 2, {});
  }

  void run_round() {
    for (auto& msg : next_) msg.present = false;
    for (int v = 0; v < graph_->num_vertices(); ++v) {
      SeedContext ctx(*this, v);
      programs_[static_cast<std::size_t>(v)]->on_round(ctx);
    }
    std::swap(cur_, next_);
    ++round_;
    ++stats_.rounds;
  }

 private:
  friend class SeedContext;
  [[nodiscard]] std::size_t buffer_index(int e, int receiver) const {
    const graph::Edge& ed = graph_->edge(e);
    return static_cast<std::size_t>(e) * 2 + (ed.v == receiver ? 1 : 0);
  }

  graph::GraphPtr graph_;
  util::CounterRng rng_;
  std::vector<std::unique_ptr<SeedProgram>> programs_;
  std::vector<Message> cur_;
  std::vector<Message> next_;
  std::int64_t round_ = 0;
  SeedStats stats_;
};

std::int64_t SeedContext::round() const noexcept { return net_->round_; }
int SeedContext::degree() const { return net_->graph_->degree(id_); }
int SeedContext::edge_of_port(int port) const {
  return net_->graph_->incident_edges(id_)[static_cast<std::size_t>(port)];
}
int SeedContext::neighbor_of_port(int port) const {
  return net_->graph_->neighbors(id_)[static_cast<std::size_t>(port)];
}
void SeedContext::send(int port, std::span<const std::uint64_t> words,
                       int bits) {
  const int e = edge_of_port(port);
  const int receiver = neighbor_of_port(port);
  auto& msg = net_->next_[net_->buffer_index(e, receiver)];
  msg.words.assign(words.begin(), words.end());
  msg.bits = bits;
  msg.present = true;
  ++net_->stats_.messages;
  net_->stats_.bits += bits;
}
std::span<const std::uint64_t> SeedContext::received(int port) const {
  const int e = edge_of_port(port);
  const auto& msg = net_->cur_[net_->buffer_index(e, id_)];
  if (!msg.present) return {};
  return msg.words;
}
const util::CounterRng& SeedContext::rng() const noexcept {
  return net_->rng_;
}

/// The seed LocalMetropolisNode, verbatim: per-node heap object, Mrf-backed
/// edge checks, no early exit.
class SeedLocalMetropolisNode final : public SeedProgram {
 public:
  SeedLocalMetropolisNode(const mrf::Mrf& m, int vertex, int initial_spin)
      : m_(m), v_(vertex), x_(initial_spin) {}

  void on_round(SeedContext& ctx) override {
    const std::int64_t r = ctx.round();
    const int deg = ctx.degree();
    if (r >= 1) {
      const std::int64_t t = r - 1;
      const int sv = pending_proposal_;
      bool all_pass = true;
      for (int port = 0; port < deg; ++port) {
        const auto msg = ctx.received(port);
        const int su = static_cast<int>(msg[0]);
        const int xu = static_cast<int>(msg[1]);
        const int e = ctx.edge_of_port(port);
        const graph::Edge& ed = m_.g().edge(e);
        const double p = (ed.u == v_) ? m_.edge_pass_prob(e, sv, su, x_, xu)
                                      : m_.edge_pass_prob(e, su, sv, xu, x_);
        if (!(chains::edge_coin(ctx.rng(), e, t) < p)) all_pass = false;
      }
      if (all_pass) x_ = sv;
    }
    pending_proposal_ = chains::metropolis_proposal(m_, ctx.rng(), v_, r);
    const std::uint64_t words[2] = {
        static_cast<std::uint64_t>(pending_proposal_),
        static_cast<std::uint64_t>(x_)};
    for (int port = 0; port < deg; ++port)
      ctx.send(port, words, 2 * local::spin_bits(m_.q()));
  }

 private:
  const mrf::Mrf& m_;
  int v_;
  int x_;
  int pending_proposal_ = -1;
};

}  // namespace seed_local

/// Rounds/sec of the seed LOCAL simulator (LocalMetropolis protocol).
double measure_seed_network_rounds(const Workload& w, double min_time,
                                   int reps) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    seed_local::SeedNetwork net(
        w.m.graph_ptr(),
        [&](int v) {
          return std::make_unique<seed_local::SeedLocalMetropolisNode>(
              w.m, v, w.x0[static_cast<std::size_t>(v)]);
        },
        3);
    std::int64_t rounds = 0;
    const auto start = Clock::now();
    double elapsed = 0.0;
    do {
      for (int s = 0; s < 4; ++s) net.run_round();
      rounds += 4;
      elapsed = seconds_since(start);
    } while (elapsed < min_time);
    best = std::max(best, static_cast<double>(rounds) / elapsed);
  }
  return best;
}

/// Rounds/sec of the compiled arena runtime; threads == 0 means no engine
/// attached (the pure sequential path), threads >= 1 attaches an engine.
double measure_compiled_network_rounds(const Workload& w, int threads,
                                       double min_time, int reps) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    std::optional<chains::ParallelEngine> engine;
    local::Network net = local::make_local_metropolis_network(w.m, w.x0, 3);
    if (threads > 0) {
      engine.emplace(threads);
      net.set_engine(&*engine);
    }
    std::int64_t rounds = 0;
    const auto start = Clock::now();
    double elapsed = 0.0;
    do {
      for (int s = 0; s < 4; ++s) net.run_round();
      rounds += 4;
      elapsed = seconds_since(start);
    } while (elapsed < min_time);
    best = std::max(best, static_cast<double>(rounds) / elapsed);
  }
  return best;
}

/// Median of a sample of window throughputs.  The engine-overhead pairs use
/// medians, not best-of: on a shared box individual windows swing by ±25%
/// in BOTH directions, and a single upside outlier on one side of a pair of
/// identical code paths fakes an overhead that best-of can never retract.
double median_of(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const auto k = v.size() / 2;
  return v.size() % 2 != 0 ? v[k] : 0.5 * (v[k - 1] + v[k]);
}

/// Measures the engine-overhead pair (sequential vs 1-thread engine) for the
/// LOCAL network on ONE network instance, alternating windows rep by rep and
/// returning the median per side.  Building a fresh instance per side lets
/// allocation/huge-page placement luck between two multi-megabyte message
/// arenas masquerade as engine overhead; on the same arena the two sides
/// execute identical code.
std::pair<double, double> measure_network_overhead_pair(const Workload& w,
                                                        double min_time,
                                                        int pair_reps) {
  local::Network net = local::make_local_metropolis_network(w.m, w.x0, 3);
  chains::ParallelEngine engine(1);
  const auto window = [&] {
    std::int64_t rounds = 0;
    const auto start = Clock::now();
    double elapsed = 0.0;
    do {
      for (int s = 0; s < 4; ++s) net.run_round();
      rounds += 4;
      elapsed = seconds_since(start);
    } while (elapsed < min_time);
    return static_cast<double>(rounds) / elapsed;
  };
  std::vector<double> seq, one;
  for (int r = 0; r < pair_reps; ++r) {
    net.set_engine(nullptr);
    seq.push_back(window());
    net.set_engine(&engine);
    one.push_back(window());
  }
  return {median_of(std::move(seq)), median_of(std::move(one))};
}

/// Rounds/sec of the SHARDED runtime (in-process transport, sequential) at
/// the given shard count.
double measure_sharded_network_rounds(const Workload& w, int num_shards,
                                      double min_time, int reps) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    local::ShardedNetwork::Options opt;
    opt.partition.num_shards = num_shards;
    local::ShardedNetwork net = local::make_sharded_local_metropolis_network(
        w.m, w.x0, 3, std::move(opt));
    std::int64_t rounds = 0;
    const auto start = Clock::now();
    double elapsed = 0.0;
    do {
      for (int s = 0; s < 4; ++s) net.run_round();
      rounds += 4;
      elapsed = seconds_since(start);
    } while (elapsed < min_time);
    best = std::max(best, static_cast<double>(rounds) / elapsed);
  }
  return best;
}

/// Measures the sharding-overhead pair — the unsharded Network vs the
/// 1-shard ShardedNetwork, which runs the same vertices through the same
/// table with empty translations and no halo — alternating windows rep by
/// rep on shared instances (same median rationale as the engine pairs).
std::pair<double, double> measure_sharded_overhead_pair(const Workload& w,
                                                        double min_time,
                                                        int pair_reps) {
  local::Network flat = local::make_local_metropolis_network(w.m, w.x0, 3);
  local::ShardedNetwork one = local::make_sharded_local_metropolis_network(
      w.m, w.x0, 3, local::ShardedNetwork::Options{});
  const auto window = [&](auto& net) {
    std::int64_t rounds = 0;
    const auto start = Clock::now();
    double elapsed = 0.0;
    do {
      for (int s = 0; s < 4; ++s) net.run_round();
      rounds += 4;
      elapsed = seconds_since(start);
    } while (elapsed < min_time);
    return static_cast<double>(rounds) / elapsed;
  };
  std::vector<double> flat_rps, one_rps;
  for (int r = 0; r < pair_reps; ++r) {
    flat_rps.push_back(window(flat));
    one_rps.push_back(window(one));
  }
  return {median_of(std::move(flat_rps)), median_of(std::move(one_rps))};
}

// --- CSP workloads: seed FactorGraph path vs the compiled runtime ---------

struct CspWorkload {
  std::string name;
  csp::FactorGraph fg;
  csp::Config x0;
};

CspWorkload make_e8a() {
  const auto g = graph::make_grid(80, 80);
  csp::FactorGraph fg = csp::make_dominating_set(*g, 1.0);
  return {"E8a_dominating_grid80x80", std::move(fg),
          csp::Config(6400, 1)};  // all-chosen: trivially dominating
}

CspWorkload make_e8b(util::Rng& grng) {
  const int n = 8000, hyperedges = 10000;
  std::vector<std::vector<int>> triples;
  triples.reserve(hyperedges);
  while (static_cast<int>(triples.size()) < hyperedges) {
    std::vector<int> t{grng.uniform_int(n), grng.uniform_int(n),
                       grng.uniform_int(n)};
    if (t[0] == t[1] || t[0] == t[2] || t[1] == t[2]) continue;
    triples.push_back(std::move(t));
  }
  csp::FactorGraph fg = csp::make_hypergraph_nae(n, 3, triples);
  csp::Config x0(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) x0[static_cast<std::size_t>(v)] = v % 3;
  return {"E8b_nae3_n8000_m10000", std::move(fg), std::move(x0)};
}

/// The seed CSP execution paths, preserved verbatim for comparison: virtual
/// dispatch over the FactorGraph, a per-chain conflict graph, and scratch
/// Config copies inside marginal_weights / constraint_pass_prob.
double measure_seed_csp_glauber(const CspWorkload& w, double min_time,
                                int reps) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const util::CounterRng rng(1);
    std::vector<double> weights;
    csp::Config x = w.x0;
    std::int64_t t = 0;
    const auto start = Clock::now();
    double elapsed = 0.0;
    do {
      for (int s = 0; s < 64; ++s) {
        const int v = rng.uniform_int(util::RngDomain::global_choice, 0,
                                      static_cast<std::uint64_t>(t), 0,
                                      w.fg.n());
        x[static_cast<std::size_t>(v)] =
            csp::csp_heat_bath_resample(w.fg, rng, v, t, x, weights);
        ++t;
      }
      elapsed = seconds_since(start);
    } while (elapsed < min_time);
    best = std::max(best, static_cast<double>(t) / elapsed);
  }
  return best;
}

double measure_seed_csp_luby(const CspWorkload& w, double min_time, int reps) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const util::CounterRng rng(1);
    const auto conflict = w.fg.make_conflict_graph();
    std::vector<double> priorities(static_cast<std::size_t>(w.fg.n()));
    std::vector<double> weights;
    csp::Config x = w.x0;
    std::int64_t t = 0;
    const auto start = Clock::now();
    double elapsed = 0.0;
    do {
      for (int s = 0; s < 4; ++s) {
        const int n = w.fg.n();
        for (int v = 0; v < n; ++v)
          priorities[static_cast<std::size_t>(v)] =
              chains::luby_priority(rng, v, t);
        for (int v = 0; v < n; ++v) {
          bool is_max = true;
          for (int u : conflict->neighbors(v)) {
            const double pu = priorities[static_cast<std::size_t>(u)];
            const double pv = priorities[static_cast<std::size_t>(v)];
            if (pu > pv || (pu == pv && u > v)) {
              is_max = false;
              break;
            }
          }
          if (is_max)
            x[static_cast<std::size_t>(v)] =
                csp::csp_heat_bath_resample(w.fg, rng, v, t, x, weights);
        }
        ++t;
      }
      elapsed = seconds_since(start);
    } while (elapsed < min_time);
    best = std::max(best, static_cast<double>(t) / elapsed);
  }
  return best;
}

double measure_seed_csp_lm(const CspWorkload& w, double min_time, int reps) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const util::CounterRng rng(1);
    csp::Config proposal(static_cast<std::size_t>(w.fg.n()));
    std::vector<char> pass(static_cast<std::size_t>(w.fg.num_constraints()));
    csp::Config x = w.x0;
    std::int64_t t = 0;
    const auto start = Clock::now();
    double elapsed = 0.0;
    do {
      for (int s = 0; s < 4; ++s) {
        const int n = w.fg.n();
        for (int v = 0; v < n; ++v) {
          const double u = rng.u01(util::RngDomain::vertex_proposal,
                                   static_cast<std::uint64_t>(v),
                                   static_cast<std::uint64_t>(t));
          proposal[static_cast<std::size_t>(v)] =
              util::categorical(w.fg.vertex_activity(v), u);
        }
        const int nc = w.fg.num_constraints();
        for (int c = 0; c < nc; ++c) {
          const double p = w.fg.constraint_pass_prob(c, proposal, x);
          const double u = rng.u01(util::RngDomain::constraint_coin,
                                   static_cast<std::uint64_t>(c),
                                   static_cast<std::uint64_t>(t));
          pass[static_cast<std::size_t>(c)] = u < p ? 1 : 0;
        }
        for (int v = 0; v < n; ++v) {
          bool accept = true;
          for (int c : w.fg.constraints_of(v))
            if (pass[static_cast<std::size_t>(c)] == 0) {
              accept = false;
              break;
            }
          if (accept)
            x[static_cast<std::size_t>(v)] =
                proposal[static_cast<std::size_t>(v)];
        }
        ++t;
      }
      elapsed = seconds_since(start);
    } while (elapsed < min_time);
    best = std::max(best, static_cast<double>(t) / elapsed);
  }
  return best;
}

using CspChainBuilder = std::function<std::unique_ptr<csp::CspChain>(
    std::shared_ptr<const csp::CompiledFactorGraph>, std::uint64_t)>;

/// Steps/sec of a compiled CSP chain; threads == 0 means no engine attached
/// (the pure sequential path), threads >= 1 attaches an engine.
double measure_compiled_csp_steps(
    const std::shared_ptr<const csp::CompiledFactorGraph>& cfg,
    const csp::Config& x0, const CspChainBuilder& build, int threads,
    int steps_per_batch, double min_time, int reps) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    std::optional<chains::ParallelEngine> engine;
    const auto chain = build(cfg, 1);
    if (threads > 0) {
      engine.emplace(threads);
      chain->set_engine(&*engine);
    }
    csp::Config x = x0;
    std::int64_t t = 0;
    const auto start = Clock::now();
    double elapsed = 0.0;
    do {
      for (int s = 0; s < steps_per_batch; ++s) chain->step(x, t++);
      elapsed = seconds_since(start);
    } while (elapsed < min_time);
    best = std::max(best, static_cast<double>(t) / elapsed);
  }
  return best;
}

/// Aggregate steps/sec of a CSP replica batch sharing one compiled view;
/// threads == 0 measures the plain sequential loop (no runner).
double measure_csp_replica_steps(
    const std::shared_ptr<const csp::CompiledFactorGraph>& cfg,
    const csp::Config& x0, const CspChainBuilder& build, int replicas,
    int threads, double min_time, int steps_per_batch, int reps) {
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    std::vector<std::unique_ptr<csp::CspChain>> cs;
    cs.reserve(static_cast<std::size_t>(replicas));
    for (int r = 0; r < replicas; ++r)
      cs.push_back(build(cfg, chains::replica_seed(1, r)));
    std::vector<csp::Config> xs(static_cast<std::size_t>(replicas), x0);
    std::vector<std::int64_t> ts(static_cast<std::size_t>(replicas), 0);
    std::optional<chains::ReplicaRunner> runner;
    if (threads > 0) runner.emplace(threads);
    const auto job = [&](int r) {
      auto& x = xs[static_cast<std::size_t>(r)];
      std::int64_t t = ts[static_cast<std::size_t>(r)];
      for (int s = 0; s < steps_per_batch; ++s)
        cs[static_cast<std::size_t>(r)]->step(x, t++);
      ts[static_cast<std::size_t>(r)] = t;
    };
    const auto start = Clock::now();
    double elapsed = 0.0;
    std::int64_t total = 0;
    do {
      if (runner.has_value()) {
        runner->run(replicas, job);
      } else {
        for (int r = 0; r < replicas; ++r) job(r);
      }
      total += static_cast<std::int64_t>(replicas) * steps_per_batch;
      elapsed = seconds_since(start);
    } while (elapsed < min_time);
    best = std::max(best, static_cast<double>(total) / elapsed);
  }
  return best;
}

using ReplicaChainBuilder = std::function<std::unique_ptr<chains::Chain>(
    std::shared_ptr<const mrf::CompiledMrf>, std::uint64_t)>;

/// Aggregate steps/sec of a replica batch: R chains sharing one compiled
/// view, each advancing its own trajectory.  threads == 0 measures the plain
/// sequential loop (no runner); threads >= 1 runs trial-parallel over a
/// ReplicaRunner.  Both orderings produce bit-identical trajectories — only
/// throughput differs.
double measure_replica_steps_per_sec(
    const std::shared_ptr<const mrf::CompiledMrf>& cm, const mrf::Config& x0,
    const ReplicaChainBuilder& build, int replicas, int threads,
    double min_time, int steps_per_batch, int reps) {
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    std::vector<std::unique_ptr<chains::Chain>> cs;
    cs.reserve(static_cast<std::size_t>(replicas));
    for (int r = 0; r < replicas; ++r)
      cs.push_back(build(cm, chains::replica_seed(1, r)));
    std::vector<mrf::Config> xs(static_cast<std::size_t>(replicas), x0);
    std::vector<std::int64_t> ts(static_cast<std::size_t>(replicas), 0);
    std::optional<chains::ReplicaRunner> runner;
    if (threads > 0) runner.emplace(threads);
    const auto job = [&](int r) {
      auto& x = xs[static_cast<std::size_t>(r)];
      std::int64_t t = ts[static_cast<std::size_t>(r)];
      for (int s = 0; s < steps_per_batch; ++s)
        cs[static_cast<std::size_t>(r)]->step(x, t++);
      ts[static_cast<std::size_t>(r)] = t;
    };
    const auto start = Clock::now();
    double elapsed = 0.0;
    std::int64_t total = 0;
    do {
      if (runner.has_value()) {
        runner->run(replicas, job);
      } else {
        for (int r = 0; r < replicas; ++r) job(r);
      }
      total += static_cast<std::int64_t>(replicas) * steps_per_batch;
      elapsed = seconds_since(start);
    } while (elapsed < min_time);
    best = std::max(best, static_cast<double>(total) / elapsed);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_chains.json";
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
    if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc)
      baseline_path = argv[++i];
  }
  // Best-of-reps over windows of min_time seconds.  The quick windows are
  // sized so the 0.95x engine-overhead guard is below measurement noise on a
  // loaded single-core CI runner (0.05s/2-rep windows flaked at ~10% drift).
  const double min_time = quick ? 0.1 : 0.4;
  const int reps = quick ? 3 : 3;

  util::Rng grng(1);
  std::vector<Workload> workloads;
  workloads.push_back(make_e1(grng));
  workloads.push_back(make_e2(grng));

  std::vector<int> thread_counts{1, 2, 4};
  const int hw = chains::ParallelEngine::hardware_threads();
  if (hw != 1 && hw != 2 && hw != 4) thread_counts.push_back(hw);

  // workload -> chain -> threads -> steps/sec.  Key 0 = no engine attached
  // (the pure sequential path); key 1 onward runs under an engine.  The
  // 0-vs-1 pair is the engine-overhead row the guard checks, so its two
  // sides alternate measurement windows rep by rep — measuring all seq reps
  // minutes before the 1T reps lets clock/thermal drift over a long run
  // masquerade as engine overhead.
  using ChainFactory = std::function<std::unique_ptr<chains::Chain>()>;
  // (workload, chain) -> factory, kept so the guard can re-measure a
  // failing overhead pair once before declaring a regression.
  std::map<std::string, std::map<std::string, ChainFactory>> chain_factories;
  const auto measure_overhead_pair = [&](const mrf::Config& x0,
                                         const ChainFactory& make_chain,
                                         int pair_reps) {
    // One chain instance serves both sides (set_engine toggles the path):
    // a fresh chain per side would let allocation placement luck in the
    // compiled view masquerade as engine overhead.  Median per side — see
    // median_of for why best-of is the wrong statistic here.
    auto chain = make_chain();
    chains::ParallelEngine engine(1);
    std::vector<double> seq, one;
    for (int r = 0; r < pair_reps; ++r) {
      chain->set_engine(nullptr);
      seq.push_back(measure_steps_per_sec(*chain, x0, min_time, 4, 1));
      chain->set_engine(&engine);
      one.push_back(measure_steps_per_sec(*chain, x0, min_time, 4, 1));
    }
    return std::pair<double, double>{median_of(std::move(seq)),
                                     median_of(std::move(one))};
  };
  std::map<std::string, std::map<std::string, std::map<int, double>>> results;
  for (const auto& w : workloads) {
    const auto measure_chain = [&](const std::string& cname,
                                   const ChainFactory& make_chain) {
      chain_factories[w.name][cname] = make_chain;
      const auto [seq, one] =
          measure_overhead_pair(w.x0, make_chain, reps + 2);
      results[w.name][cname][0] = seq;
      results[w.name][cname][1] = one;
      for (int threads : thread_counts) {
        if (threads == 1) continue;
        chains::ParallelEngine engine(threads);
        auto chain = make_chain();
        chain->set_engine(&engine);
        results[w.name][cname][threads] =
            measure_steps_per_sec(*chain, w.x0, min_time, 4, reps);
      }
    };
    measure_chain("SynchronousGlauber", [&w] {
      return std::unique_ptr<chains::Chain>(
          new chains::SynchronousGlauberChain(w.m, 1));
    });
    measure_chain("LubyGlauber", [&w] {
      return std::unique_ptr<chains::Chain>(
          new chains::LubyGlauberChain(w.m, 1));
    });
    measure_chain("LocalMetropolis", [&w] {
      return std::unique_ptr<chains::Chain>(
          new chains::LocalMetropolisChain(w.m, 1));
    });
  }

  // Seed path vs compiled path, sequential, per workload.
  std::map<std::string, std::pair<double, double>> seed_vs_compiled;
  for (const auto& w : workloads) {
    const double seed_sps = measure_seed_path_sweeps(w, min_time, reps);
    const double comp_sps = measure_compiled_path_sweeps(w, min_time, reps);
    seed_vs_compiled[w.name] = {seed_sps, comp_sps};
  }

  // Kernel tiers: marginal_weights calls/sec per (tier, reorder) variant.
  using MrfTier = mrf::CompiledMrf::Tier;
  const std::vector<std::pair<std::string, mrf::CompiledMrf::Options>>
      tier_variants = {
          {"exact_none", {graph::VertexOrder::none, MrfTier::exact}},
          {"exact_rcm", {graph::VertexOrder::rcm, MrfTier::exact}},
          {"fast_math_none", {graph::VertexOrder::none, MrfTier::fast_math}},
          {"fast_math_rcm", {graph::VertexOrder::rcm, MrfTier::fast_math}},
      };
  // workload -> variant -> marginal calls/sec
  std::map<std::string, std::map<std::string, double>> tier_results;
  for (const auto& w : workloads)
    for (const auto& [vname, opts] : tier_variants)
      tier_results[w.name][vname] =
          measure_marginal_calls_per_sec(w, opts, min_time, reps);

  // Replica-layer throughput: R chains sharing one compiled view, run as a
  // plain sequential loop (key 0, the baseline the guard compares against)
  // and trial-parallel at each thread count.
  const int replicas = 8;
  const std::vector<std::pair<std::string, ReplicaChainBuilder>>
      replica_builders = {
          {"LubyGlauber",
           [](std::shared_ptr<const mrf::CompiledMrf> cm, std::uint64_t seed) {
             return std::unique_ptr<chains::Chain>(
                 new chains::LubyGlauberChain(std::move(cm), seed));
           }},
          {"LocalMetropolis",
           [](std::shared_ptr<const mrf::CompiledMrf> cm, std::uint64_t seed) {
             return std::unique_ptr<chains::Chain>(
                 new chains::LocalMetropolisChain(std::move(cm), seed));
           }},
      };
  // workload -> chain -> threads (0 = sequential loop) -> aggregate steps/sec
  std::map<std::string, std::map<std::string, std::map<int, double>>>
      replica_results;
  for (const auto& w : workloads) {
    const auto cm = std::make_shared<const mrf::CompiledMrf>(w.m);
    for (const auto& [cname, build] : replica_builders) {
      replica_results[w.name][cname][0] = measure_replica_steps_per_sec(
          cm, w.x0, build, replicas, 0, min_time, 2, reps);
      for (int threads : thread_counts)
        replica_results[w.name][cname][threads] =
            measure_replica_steps_per_sec(cm, w.x0, build, replicas, threads,
                                          min_time, 2, reps);
    }
  }

  // CSP workloads: seed FactorGraph path vs the compiled runtime per chain,
  // per thread count (0 = no engine), plus replica-batch throughput for the
  // two parallel chains.
  struct CspRows {
    std::map<std::string, double> seed;                     // chain -> sps
    std::map<std::string, std::map<int, double>> compiled;  // chain -> T -> sps
    std::map<std::string, std::map<int, double>> replica;   // chain -> T -> sps
  };
  std::vector<CspWorkload> csp_workloads;
  csp_workloads.push_back(make_e8a());
  csp_workloads.push_back(make_e8b(grng));
  const std::vector<std::pair<std::string, CspChainBuilder>> csp_builders = {
      {"CspLubyGlauber",
       [](std::shared_ptr<const csp::CompiledFactorGraph> cfg,
          std::uint64_t seed) {
         return std::unique_ptr<csp::CspChain>(
             new csp::CspLubyGlauberChain(std::move(cfg), seed));
       }},
      {"CspLocalMetropolis",
       [](std::shared_ptr<const csp::CompiledFactorGraph> cfg,
          std::uint64_t seed) {
         return std::unique_ptr<csp::CspChain>(
             new csp::CspLocalMetropolisChain(std::move(cfg), seed));
       }},
  };
  std::map<std::string, CspRows> csp_results;
  for (const auto& w : csp_workloads) {
    CspRows rows;
    const auto cfg = std::make_shared<const csp::CompiledFactorGraph>(w.fg);
    rows.seed["CspGlauber"] = measure_seed_csp_glauber(w, min_time, reps);
    rows.seed["CspLubyGlauber"] = measure_seed_csp_luby(w, min_time, reps);
    rows.seed["CspLocalMetropolis"] = measure_seed_csp_lm(w, min_time, reps);
    rows.compiled["CspGlauber"][0] = measure_compiled_csp_steps(
        cfg, w.x0,
        [](std::shared_ptr<const csp::CompiledFactorGraph> v,
           std::uint64_t seed) {
          return std::unique_ptr<csp::CspChain>(
              new csp::CspGlauberChain(std::move(v), seed));
        },
        0, 64, min_time, reps);
    for (const auto& [cname, build] : csp_builders) {
      rows.compiled[cname][0] =
          measure_compiled_csp_steps(cfg, w.x0, build, 0, 4, min_time, reps);
      for (int threads : thread_counts)
        rows.compiled[cname][threads] = measure_compiled_csp_steps(
            cfg, w.x0, build, threads, 4, min_time, reps);
      rows.replica[cname][0] = measure_csp_replica_steps(
          cfg, w.x0, build, replicas, 0, min_time, 2, reps);
      for (int threads : thread_counts)
        rows.replica[cname][threads] = measure_csp_replica_steps(
            cfg, w.x0, build, replicas, threads, min_time, 2, reps);
    }
    csp_results[w.name] = std::move(rows);
  }

  // LOCAL-model simulator: seed implementation vs the compiled arena
  // runtime, plus node-parallel rounds per thread count.
  struct NetworkRows {
    double seed = 0.0;
    double compiled = 0.0;
    std::map<int, double> engine;
    /// shard count -> rounds/sec on the sharded runtime (sequential);
    /// unsharded_for_pair is the 1-shard row's paired unsharded measurement
    /// (guard (g) compares within the pair, not against `compiled`).
    double unsharded_for_pair = 0.0;
    std::map<int, double> sharded;
  };
  std::map<std::string, NetworkRows> network_results;
  for (const auto& w : workloads) {
    NetworkRows rows;
    rows.seed = measure_seed_network_rounds(w, min_time, reps);
    // The compiled/1T pair feeds the engine-overhead guard: one arena, one
    // set of alternating windows (same drift argument as the chain rows).
    const auto [net_seq, net_one] =
        measure_network_overhead_pair(w, min_time, reps + 2);
    rows.compiled = net_seq;
    rows.engine[1] = net_one;
    for (int threads : thread_counts) {
      if (threads == 1) continue;
      rows.engine[threads] =
          measure_compiled_network_rounds(w, threads, min_time, reps);
    }
    // Sharded rows: the 1-shard pair feeds guard (g) (sharding must be
    // near-free when there is nothing to exchange); 2 and 4 shards show the
    // halo-exchange cost on one box.
    const auto [pair_flat, shard1] =
        measure_sharded_overhead_pair(w, min_time, reps + 2);
    rows.unsharded_for_pair = pair_flat;
    rows.sharded[1] = shard1;
    for (int num_shards : {2, 4})
      rows.sharded[num_shards] =
          measure_sharded_network_rounds(w, num_shards, min_time, reps);
    network_results[w.name] = std::move(rows);
  }

  // Adaptive stopping on the guarded workloads: the rounds each rule
  // actually pays vs the theory budget (guard (h): never more than the
  // budget).  E1 is the LubyGlauber workload, E2 the LocalMetropolis one —
  // matching the theorem each budget comes from.  Not a timing: the
  // decision is a pure function of (model, seed, rule), so the recorded
  // rows are exactly reproducible.
  struct AdaptiveRow {
    std::int64_t budget = 0;
    /// rule name -> (rounds_used, stopped_early)
    std::map<std::string, std::pair<std::int64_t, bool>> rules;
  };
  std::map<std::string, AdaptiveRow> adaptive_results;
  for (const auto& w : workloads) {
    const core::Algorithm alg = w.name.rfind("E1", 0) == 0
                                    ? core::Algorithm::luby_glauber
                                    : core::Algorithm::local_metropolis;
    AdaptiveRow row;
    row.budget = core::coloring_round_budget(w.m.n(), w.m.g().max_degree(),
                                             w.m.q(), alg, 0.01);
    for (const chains::StopRule rule :
         {chains::StopRule::coupling, chains::StopRule::rhat}) {
      core::SamplerOptions o;
      o.algorithm = alg;
      o.seed = 1;
      o.rounds = row.budget;
      o.stop = rule;
      o.num_threads = 0;
      const auto res = core::sample_mrf(w.m, o);
      row.rules[std::string(chains::stop_rule_name(rule))] = {
          res.rounds_used, res.stopped_early};
    }
    adaptive_results[w.name] = std::move(row);
  }
  for (const auto& [wname, arow] : adaptive_results) {
    std::cout << "adaptive " << wname << ": budget=" << arow.budget;
    for (const auto& [rname, decided] : arow.rules)
      std::cout << "  " << rname << "=" << decided.first
                << (decided.second ? "" : " (unconverged)");
    std::cout << "\n";
  }

  // The JSON is emitted AFTER the guard pass below, so a guard re-measure
  // (which can only raise a row's best-of value) is reflected in the file —
  // the committed JSON and the guard verdict always agree.
  const auto write_json = [&] {
  std::ofstream out(out_path);
  out.precision(6);
  out << "{\n  \"hardware_threads\": " << hw
      << ",\n  \"reps\": " << reps
      << ",\n  \"caveat\": \"rows at thread counts above hardware_threads "
         "are oversubscribed; each row is best-of-reps except the "
         "engine-overhead pairs (threads 0 vs 1), which are medians over "
         "alternating windows on one shared instance\",\n"
         "  \"workloads\": {\n";
  bool first_w = true;
  for (const auto& [wname, chains_map] : results) {
    if (!first_w) out << ",\n";
    first_w = false;
    out << "    \"" << wname << "\": {\n      \"steps_per_sec\": {\n";
    bool first_c = true;
    for (const auto& [cname, per_threads] : chains_map) {
      if (!first_c) out << ",\n";
      first_c = false;
      out << "        \"" << cname << "\": {";
      bool first_t = true;
      for (const auto& [threads, sps] : per_threads) {
        if (!first_t) out << ", ";
        first_t = false;
        out << "\"" << threads << "\": " << sps;
      }
      out << "}";
    }
    out << "\n      },\n";
    out << "      \"replica_throughput\": {\n        \"replicas\": " << replicas
        << ",\n";
    bool first_r = true;
    for (const auto& [cname, per_threads] : replica_results[wname]) {
      if (!first_r) out << ",\n";
      first_r = false;
      out << "        \"" << cname << "\": {";
      bool first_t = true;
      for (const auto& [threads, sps] : per_threads) {
        if (!first_t) out << ", ";
        first_t = false;
        // key 0 = plain sequential loop over the batch (no runner)
        out << "\"" << threads << "\": " << sps;
      }
      out << "}";
    }
    out << "\n      },\n";
    const auto& net_rows = network_results[wname];
    out << "      \"local_network\": {\n"
        << "        \"seed_rounds_per_sec\": " << net_rows.seed << ",\n"
        << "        \"compiled_rounds_per_sec\": " << net_rows.compiled
        << ",\n"
        << "        \"compiled_over_seed\": "
        << net_rows.compiled / net_rows.seed << ",\n"
        << "        \"engine_rounds_per_sec\": {";
    bool first_nt = true;
    for (const auto& [threads, rps] : net_rows.engine) {
      if (!first_nt) out << ", ";
      first_nt = false;
      out << "\"" << threads << "\": " << rps;
    }
    out << "},\n"
        << "        \"sharded_rounds_per_sec\": {";
    bool first_ns = true;
    for (const auto& [num_shards, rps] : net_rows.sharded) {
      if (!first_ns) out << ", ";
      first_ns = false;
      out << "\"" << num_shards << "\": " << rps;
    }
    out << "},\n"
        << "        \"sharded_over_unsharded\": "
        << net_rows.sharded.at(1) / net_rows.unsharded_for_pair
        << "\n      },\n";
    out << "      \"kernel_tiers_marginal_calls_per_sec\": {";
    bool first_kt = true;
    for (const auto& [vname, cps] : tier_results[wname]) {
      if (!first_kt) out << ", ";
      first_kt = false;
      out << "\"" << vname << "\": " << cps;
    }
    out << "},\n";
    const auto& [seed_sps, comp_sps] = seed_vs_compiled[wname];
    out << "      \"seed_path_sweeps_per_sec\": " << seed_sps << ",\n"
        << "      \"compiled_path_sweeps_per_sec\": " << comp_sps << ",\n"
        << "      \"compiled_over_seed\": " << comp_sps / seed_sps << ",\n";
    const auto& arow = adaptive_results[wname];
    out << "      \"adaptive_stopping\": {\n        \"budget_rounds\": "
        << arow.budget;
    for (const auto& [rname, decided] : arow.rules)
      out << ",\n        \"" << rname << "\": {\"rounds_used\": "
          << decided.first << ", \"stopped_early\": "
          << (decided.second ? "true" : "false") << ", \"savings\": "
          << static_cast<double>(arow.budget) /
                 static_cast<double>(decided.first)
          << "}";
    out << "\n      }\n    }";
  }
  out << "\n  },\n  \"csp_workloads\": {\n";
  bool first_cw = true;
  for (const auto& [wname, rows] : csp_results) {
    if (!first_cw) out << ",\n";
    first_cw = false;
    out << "    \"" << wname << "\": {\n      \"seed_steps_per_sec\": {";
    bool first = true;
    for (const auto& [cname, sps] : rows.seed) {
      if (!first) out << ", ";
      first = false;
      out << "\"" << cname << "\": " << sps;
    }
    out << "},\n      \"compiled_steps_per_sec\": {\n";
    first = true;
    for (const auto& [cname, per_threads] : rows.compiled) {
      if (!first) out << ",\n";
      first = false;
      out << "        \"" << cname << "\": {";
      bool first_t = true;
      for (const auto& [threads, sps] : per_threads) {
        if (!first_t) out << ", ";
        first_t = false;
        // key 0 = no engine attached (pure sequential path)
        out << "\"" << threads << "\": " << sps;
      }
      out << "}";
    }
    out << "\n      },\n      \"compiled_over_seed\": {";
    first = true;
    for (const auto& [cname, sps] : rows.seed) {
      if (!first) out << ", ";
      first = false;
      out << "\"" << cname << "\": " << rows.compiled.at(cname).at(0) / sps;
    }
    out << "},\n      \"replica_throughput\": {\n        \"replicas\": "
        << replicas;
    for (const auto& [cname, per_threads] : rows.replica) {
      out << ",\n        \"" << cname << "\": {";
      bool first_t = true;
      for (const auto& [threads, sps] : per_threads) {
        if (!first_t) out << ", ";
        first_t = false;
        out << "\"" << threads << "\": " << sps;
      }
      out << "}";
    }
    out << "\n      }\n    }";
  }
  out << "\n  }\n}\n";
  out.close();
  std::cout << "wrote " << out_path << " (hardware_threads=" << hw << ")\n";
  };

  for (const auto& [wname, chains_map] : results) {
    std::cout << "\n" << wname << "\n";
    const auto& [seed_sps, comp_sps] = seed_vs_compiled[wname];
    std::cout << "  seed path:     " << seed_sps << " sweeps/sec\n"
              << "  compiled path: " << comp_sps << " sweeps/sec ("
              << comp_sps / seed_sps << "x)\n";
    for (const auto& [cname, per_threads] : chains_map) {
      std::cout << "  " << cname << ":";
      for (const auto& [threads, sps] : per_threads)
        std::cout << "  "
                  << (threads == 0 ? "seq" : std::to_string(threads) + "T")
                  << "=" << sps << " steps/s";
      std::cout << "\n";
    }
    std::cout << "  marginal kernel tiers:";
    for (const auto& [vname, cps] : tier_results[wname])
      std::cout << "  " << vname << "=" << cps / 1e6 << " Mcalls/s";
    std::cout << "\n";
    for (const auto& [cname, per_threads] : replica_results[wname]) {
      std::cout << "  replicas(" << replicas << ") " << cname << ":";
      for (const auto& [threads, sps] : per_threads)
        std::cout << "  " << (threads == 0 ? "seq" : std::to_string(threads) + "T")
                  << "=" << sps << " steps/s";
      std::cout << "\n";
    }
    const auto& net_rows = network_results[wname];
    std::cout << "  LOCAL network (LocalMetropolis):  seed=" << net_rows.seed
              << "  compiled=" << net_rows.compiled << " rounds/s ("
              << net_rows.compiled / net_rows.seed << "x)";
    for (const auto& [threads, rps] : net_rows.engine)
      std::cout << "  " << threads << "T=" << rps;
    std::cout << "\n  LOCAL network sharded:";
    for (const auto& [num_shards, rps] : net_rows.sharded)
      std::cout << "  S" << num_shards << "=" << rps;
    std::cout << " rounds/s ("
              << net_rows.sharded.at(1) / net_rows.unsharded_for_pair
              << "x unsharded at 1 shard)\n";
  }
  for (const auto& [wname, rows] : csp_results) {
    std::cout << "\n" << wname << " (CSP)\n";
    for (const auto& [cname, seed_sps] : rows.seed) {
      std::cout << "  " << cname << ":  seed=" << seed_sps
                << "  compiled=" << rows.compiled.at(cname).at(0)
                << " steps/s (" << rows.compiled.at(cname).at(0) / seed_sps
                << "x)";
      for (const auto& [threads, sps] : rows.compiled.at(cname))
        if (threads > 0) std::cout << "  " << threads << "T=" << sps;
      std::cout << "\n";
    }
    for (const auto& [cname, per_threads] : rows.replica) {
      std::cout << "  replicas(" << replicas << ") " << cname << ":";
      for (const auto& [threads, sps] : per_threads)
        std::cout << "  "
                  << (threads == 0 ? "seq" : std::to_string(threads) + "T")
                  << "=" << sps << " steps/s";
      std::cout << "\n";
    }
  }

  // Microbenchmark guards:
  //  (a) the compiled sequential path must not be slower than the seed path
  //      (10% noise allowance);
  //  (b) the replica runner at one thread must not be slower than the plain
  //      sequential loop over the same batch (15% allowance — a one-thread
  //      runner is the caller plus one parallel_for per batch).
  int rc = 0;
  for (const auto& [wname, sps] : seed_vs_compiled) {
    if (sps.second < 0.9 * sps.first) {
      std::cerr << "GUARD FAILED: compiled path slower than seed path on "
                << wname << " (" << sps.second << " vs " << sps.first
                << " sweeps/sec)\n";
      rc = 1;
    }
  }
  for (const auto& [wname, per_chain] : replica_results) {
    for (const auto& [cname, per_threads] : per_chain) {
      const double seq = per_threads.at(0);
      const double one_thread = per_threads.at(1);
      if (one_thread < 0.85 * seq) {
        std::cerr << "GUARD FAILED: replica runner (1 thread) slower than "
                     "the sequential trial loop on "
                  << wname << "/" << cname << " (" << one_thread << " vs "
                  << seq << " steps/sec)\n";
        rc = 1;
      }
    }
  }
  //  (c) the compiled LOCAL-model network must be at least 2x the seed
  //      simulator sequentially, and a 1-thread engine must cost at most 5%
  //      over the engine-less sequential path (the spin-barrier engine's
  //      single-thread mode short-circuits to a direct call).
  for (auto& [wname, rows] : network_results) {
    if (rows.compiled < 2.0 * rows.seed) {
      std::cerr << "GUARD FAILED: compiled LOCAL network below 2x the seed "
                   "simulator on "
                << wname << " (" << rows.compiled << " vs " << rows.seed
                << " rounds/sec)\n";
      rc = 1;
    }
    double compiled = rows.compiled;
    double one_thread = rows.engine.at(1);
    if (one_thread < 0.95 * compiled) {
      // Same re-measure-once policy as guard (e): both sides run identical
      // code at one thread, so only a reproducible shortfall counts.
      const auto wit =
          std::find_if(workloads.begin(), workloads.end(),
                       [&](const auto& w) { return w.name == wname; });
      const auto [c2, o2] =
          measure_network_overhead_pair(*wit, min_time, reps + 4);
      compiled = std::max(compiled, c2);
      one_thread = std::max(one_thread, o2);
      std::cout << "note: re-measured " << wname
                << " LOCAL-network overhead pair after a transient dip ("
                << one_thread << " vs " << compiled
                << " rounds/sec best-of-all)\n";
      rows.compiled = compiled;
      rows.engine[1] = one_thread;
    }
    if (one_thread < 0.95 * compiled) {
      std::cerr << "GUARD FAILED: LOCAL network under a 1-thread engine "
                   "slower than 0.95x the sequential path on "
                << wname << " (" << one_thread << " vs " << compiled
                << " rounds/sec)\n";
      rc = 1;
    }
  }
  //  (g) the sharded runtime at ONE shard must run at >= 0.9x the unsharded
  //      network: a single shard has empty translations, no halo, and the
  //      same table, so the sharded dispatch layer must be near-free.  Same
  //      re-measure-once policy as the other identical-code pairs.
  for (auto& [wname, rows] : network_results) {
    double flat = rows.unsharded_for_pair;
    double shard1 = rows.sharded.at(1);
    if (shard1 < 0.9 * flat) {
      const auto wit =
          std::find_if(workloads.begin(), workloads.end(),
                       [&](const auto& w) { return w.name == wname; });
      const auto [f2, s2] =
          measure_sharded_overhead_pair(*wit, min_time, reps + 4);
      flat = std::max(flat, f2);
      shard1 = std::max(shard1, s2);
      std::cout << "note: re-measured " << wname
                << " sharding overhead pair after a transient dip (" << shard1
                << " vs " << flat << " rounds/sec best-of-all)\n";
      rows.unsharded_for_pair = flat;
      rows.sharded[1] = shard1;
    }
    if (shard1 < 0.9 * flat) {
      std::cerr << "GUARD FAILED: 1-shard sharded LOCAL network below 0.9x "
                   "the unsharded network on "
                << wname << " (" << shard1 << " vs " << flat
                << " rounds/sec)\n";
      rc = 1;
    }
  }
  //  (e) a 1-thread engine must run every synchronous MRF chain at >= 0.95x
  //      the engine-less sequential path, per workload row.  Both sides run
  //      the exact same code (the 1-thread engine short-circuits to a direct
  //      call), so a shortfall here is measurement noise unless it survives a
  //      fresh interleaved re-measure — on a loaded box a single window can
  //      absorb a background burst, and that is not an engine regression.
  for (auto& [wname, per_chain] : results) {
    for (auto& [cname, per_threads] : per_chain) {
      double seq = per_threads.at(0);
      double one_thread = per_threads.at(1);
      if (one_thread < 0.95 * seq) {
        const auto wit =
            std::find_if(workloads.begin(), workloads.end(),
                         [&](const auto& w) { return w.name == wname; });
        const auto [seq2, one2] = measure_overhead_pair(
            wit->x0, chain_factories.at(wname).at(cname), reps + 4);
        seq = std::max(seq, seq2);
        one_thread = std::max(one_thread, one2);
        std::cout << "note: re-measured " << wname << "/" << cname
                  << " overhead pair after a transient dip (" << one_thread
                  << " vs " << seq << " steps/sec best-of-all)\n";
        per_threads[0] = seq;
        per_threads[1] = one_thread;
      }
      if (one_thread < 0.95 * seq) {
        std::cerr << "GUARD FAILED: 1-thread engine below 0.95x the "
                     "sequential path on "
                  << wname << "/" << cname << " (" << one_thread << " vs "
                  << seq << " steps/sec)\n";
        rc = 1;
      }
    }
  }
  //  (f) the fast_math marginal kernel must not be slower than 0.9x exact
  //      (identity order; the reassociated product exists to be faster).
  for (const auto& [wname, per_variant] : tier_results) {
    const double exact = per_variant.at("exact_none");
    const double fast = per_variant.at("fast_math_none");
    if (fast < 0.9 * exact) {
      std::cerr << "GUARD FAILED: fast_math marginal kernel below 0.9x the "
                   "exact tier on "
                << wname << " (" << fast << " vs " << exact << " calls/sec)\n";
      rc = 1;
    }
  }
  //  (h) adaptive stopping must never pay more rounds than the budget it
  //      replaces, and must actually decide (> 0 rounds).  The decision is
  //      a pure function of (model, seed, rule): no noise allowance, no
  //      re-measure — a violation is a logic regression in the stopping
  //      rules, not a flaky box.
  for (const auto& [wname, arow] : adaptive_results) {
    for (const auto& [rname, decided] : arow.rules) {
      if (decided.first <= 0 || decided.first > arow.budget) {
        std::cerr << "GUARD FAILED: adaptive stopping (stop=" << rname
                  << ") paid " << decided.first
                  << " rounds against a budget of " << arow.budget << " on "
                  << wname << "\n";
        rc = 1;
      }
    }
  }
  //  (d) every compiled CSP chain must be at least 2x its seed FactorGraph
  //      path sequentially.
  for (const auto& [wname, rows] : csp_results) {
    for (const auto& [cname, seed_sps] : rows.seed) {
      const double compiled_sps = rows.compiled.at(cname).at(0);
      if (compiled_sps < 2.0 * seed_sps) {
        std::cerr << "GUARD FAILED: compiled CSP chain below 2x the seed "
                     "path on "
                  << wname << "/" << cname << " (" << compiled_sps << " vs "
                  << seed_sps << " steps/sec)\n";
        rc = 1;
      }
    }
  }
  //  (i) determinism-audit guards, two halves:
  //      (i-a) in an audited build (LSAMPLE_AUDIT=ON), turning the write-set
  //            auditor ON must not change a single bit of any chain
  //            trajectory — the hooks observe, they never perturb.  The
  //            verdict is exact (bitwise config compare), so no noise
  //            allowance and no re-measure.  Vacuously skipped in default
  //            builds, where the hooks compile to ((void)0).
  //      (i-b) with --baseline PATH, this run's compiled-over-seed speedup
  //            ratio must stay above 0.8x the committed BENCH_chains.json
  //            ratio per workload.  In the default build the audit hooks
  //            claim zero overhead; the seed path is uninstrumented, so any
  //            real hook cost in the compiled path shows up as a ratio drop.
  //            The ratio — not absolute sweeps/sec — is what transfers
  //            across machines and load levels (a CI runner is neither as
  //            fast nor as idle as the box that produced the baseline).
  if (chains::audit::compiled_in()) {
    for (const auto& w : workloads) {
      for (const auto& [cname, make_chain] : chain_factories[w.name]) {
        constexpr int kAuditSteps = 8;
        chains::ParallelEngine engine(2);
        auto plain = make_chain();
        plain->set_engine(&engine);
        mrf::Config a = w.x0;
        std::int64_t t = 0;
        for (int s = 0; s < kAuditSteps; ++s) plain->step(a, t++);
        auto audited = make_chain();
        audited->set_engine(&engine);
        mrf::Config b = w.x0;
        chains::audit::reset_totals();
        chains::audit::set_enabled(true);
        t = 0;
        for (int s = 0; s < kAuditSteps; ++s) audited->step(b, t++);
        chains::audit::set_enabled(false);
        if (chains::audit::totals().writes == 0) {
          std::cerr << "GUARD FAILED: audited run of " << w.name << "/"
                    << cname
                    << " recorded no writes — the audit hooks are inert\n";
          rc = 1;
        }
        if (a != b) {
          std::cerr << "GUARD FAILED: enabling the write-set auditor changed "
                       "the trajectory of "
                    << w.name << "/" << cname << "\n";
          rc = 1;
        }
      }
    }
    if (rc == 0)
      std::cout << "audit guard: trajectories bit-identical with the "
                   "write-set auditor enabled, on every chain row\n";
  }
  if (!baseline_path.empty()) {
    std::ifstream bin(baseline_path);
    if (!bin) {
      std::cerr << "GUARD FAILED: --baseline " << baseline_path
                << " is unreadable\n";
      rc = 1;
    } else {
      std::stringstream buf;
      buf << bin.rdbuf();
      const std::string text = buf.str();
      // Anchor on the path row, then read the adjacent ratio — local_network
      // and the CSP section carry compiled_over_seed keys of their own.
      constexpr const char* kAnchor = "\"compiled_path_sweeps_per_sec\": ";
      constexpr const char* kKey = "\"compiled_over_seed\": ";
      for (const auto& [wname, sps] : seed_vs_compiled) {
        const auto wpos = text.find("\"" + wname + "\"");
        const auto apos = wpos == std::string::npos ? std::string::npos
                                                    : text.find(kAnchor, wpos);
        const auto kpos = apos == std::string::npos ? std::string::npos
                                                    : text.find(kKey, apos);
        if (kpos == std::string::npos) {
          std::cerr << "GUARD FAILED: baseline " << baseline_path
                    << " has no compiled_over_seed path row for " << wname
                    << "\n";
          rc = 1;
          continue;
        }
        const double base_ratio =
            std::strtod(text.c_str() + kpos + std::strlen(kKey), nullptr);
        const double ratio = sps.second / sps.first;
        if (ratio < 0.8 * base_ratio) {
          std::cerr << "GUARD FAILED: compiled-over-seed ratio on " << wname
                    << " fell below 0.8x the committed baseline (" << ratio
                    << "x vs " << base_ratio << "x)\n";
          rc = 1;
        } else {
          std::cout << "baseline guard: " << wname << " compiled-over-seed "
                    << ratio << "x vs committed " << base_ratio << "x\n";
        }
      }
    }
  }
  write_json();
  if (rc == 0)
    std::cout << "\nguard ok: compiled path >= seed path, replica runner "
                 ">= sequential trial loop, compiled LOCAL network >= 2x "
                 "seed simulator, 1-thread engine >= 0.95x sequential "
                 "(chains and network), compiled CSP chains >= 2x seed "
                 "paths, fast_math marginal >= 0.9x exact, 1-shard sharded "
                 "network >= 0.9x unsharded, adaptive stopping <= budget"
                 ", audited trajectories bit-identical (audited builds)"
                 ", compiled path within noise of the committed baseline "
                 "(with --baseline)\n";
  return rc;
}
