// Machine-readable throughput emitter + microbenchmark guard.
//
// Measures steps/sec for every synchronous chain at several thread counts on
// the E1 (LubyGlauber colorings, random regular graph) and E2
// (LocalMetropolis colorings, Delta ~ sqrt(n)) workload shapes, the
// compiled-view vs. seed-path sequential comparison, and the replica layer's
// trial-parallel throughput (R chains sharing one CompiledMrf over a
// ReplicaRunner, per thread count), and writes everything to
// BENCH_chains.json so the perf trajectory is tracked from PR to PR.
//
// Exit status is the guard: nonzero iff, beyond a noise allowance,
//   (a) the compiled sequential path is slower than the legacy seed path
//       (gather_neighbor_spins + heat_bath_resample on Mrf's per-edge
//       ActivityMatrix storage) on either workload, or
//   (b) the replica runner at one thread is slower than the plain sequential
//       loop over the same replica batch (the layer must cost ~nothing when
//       it cannot help).
//
//   $ ./perf_parallel_scaling [--quick] [--out PATH]
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "chains/engine.hpp"
#include "chains/glauber.hpp"
#include "chains/init.hpp"
#include "chains/kernels.hpp"
#include "chains/local_metropolis.hpp"
#include "chains/luby_glauber.hpp"
#include "chains/replicas.hpp"
#include "chains/synchronous_glauber.hpp"
#include "graph/generators.hpp"
#include "mrf/compiled.hpp"
#include "mrf/models.hpp"

namespace {

using namespace lsample;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Runs chain steps for ~min_time seconds (at least min_steps) and returns
/// steps/sec.  Best of `reps` repetitions to shave scheduler noise.
double measure_steps_per_sec(chains::Chain& chain, const mrf::Config& x0,
                             double min_time, int min_steps, int reps) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    mrf::Config x = x0;
    std::int64_t t = 0;
    const auto start = Clock::now();
    double elapsed = 0.0;
    do {
      for (int s = 0; s < min_steps; ++s) chain.step(x, t++);
      elapsed = seconds_since(start);
    } while (elapsed < min_time);
    best = std::max(best, static_cast<double>(t) / elapsed);
  }
  return best;
}

struct Workload {
  std::string name;
  mrf::Mrf m;
  mrf::Config x0;
};

Workload make_e1(util::Rng& grng) {
  const int n = 400, delta = 8;
  const auto g = graph::make_random_regular(n, delta, grng);
  mrf::Mrf m = mrf::make_proper_coloring(g, 20);
  mrf::Config x0 = chains::greedy_feasible_config(m);
  return {"E1_coloring_regular_n400_d8_q20", std::move(m), std::move(x0)};
}

Workload make_e2(util::Rng& grng) {
  const int n = 900, delta = 30;
  const auto g = graph::make_random_regular(n, delta, grng);
  mrf::Mrf m = mrf::make_proper_coloring(g, 108);
  mrf::Config x0 = chains::greedy_feasible_config(m);
  return {"E2_coloring_regular_n900_d30_q108", std::move(m), std::move(x0)};
}

/// The seed execution path, preserved verbatim for comparison: a full
/// synchronous-Glauber-style sweep on Mrf's pointer-chasing storage.
double measure_seed_path_sweeps(const Workload& w, double min_time, int reps) {
  const util::CounterRng rng(1);
  std::vector<double> weights;
  std::vector<int> nbr_spins;
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    mrf::Config x = w.x0;
    mrf::Config next = w.x0;
    std::int64_t t = 0;
    const auto start = Clock::now();
    double elapsed = 0.0;
    do {
      for (int v = 0; v < w.m.n(); ++v) {
        chains::gather_neighbor_spins(w.m, v, x, nbr_spins);
        next[static_cast<std::size_t>(v)] = chains::heat_bath_resample(
            w.m, rng, v, t, nbr_spins, weights,
            x[static_cast<std::size_t>(v)]);
      }
      std::swap(x, next);
      ++t;
      elapsed = seconds_since(start);
    } while (elapsed < min_time);
    best = std::max(best, static_cast<double>(t) / elapsed);
  }
  return best;
}

/// The same sweep on the compiled view (single-threaded).
double measure_compiled_path_sweeps(const Workload& w, double min_time,
                                    int reps) {
  const mrf::CompiledMrf cm(w.m);
  const util::CounterRng rng(1);
  std::vector<double> weights;
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    mrf::Config x = w.x0;
    mrf::Config next = w.x0;
    std::int64_t t = 0;
    const auto start = Clock::now();
    double elapsed = 0.0;
    do {
      for (int v = 0; v < w.m.n(); ++v)
        next[static_cast<std::size_t>(v)] =
            chains::heat_bath_kernel(cm, rng, v, t, x, weights);
      std::swap(x, next);
      ++t;
      elapsed = seconds_since(start);
    } while (elapsed < min_time);
    best = std::max(best, static_cast<double>(t) / elapsed);
  }
  return best;
}

using ReplicaChainBuilder = std::function<std::unique_ptr<chains::Chain>(
    std::shared_ptr<const mrf::CompiledMrf>, std::uint64_t)>;

/// Aggregate steps/sec of a replica batch: R chains sharing one compiled
/// view, each advancing its own trajectory.  threads == 0 measures the plain
/// sequential loop (no runner); threads >= 1 runs trial-parallel over a
/// ReplicaRunner.  Both orderings produce bit-identical trajectories — only
/// throughput differs.
double measure_replica_steps_per_sec(
    const std::shared_ptr<const mrf::CompiledMrf>& cm, const mrf::Config& x0,
    const ReplicaChainBuilder& build, int replicas, int threads,
    double min_time, int steps_per_batch, int reps) {
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    std::vector<std::unique_ptr<chains::Chain>> cs;
    cs.reserve(static_cast<std::size_t>(replicas));
    for (int r = 0; r < replicas; ++r)
      cs.push_back(build(cm, chains::replica_seed(1, r)));
    std::vector<mrf::Config> xs(static_cast<std::size_t>(replicas), x0);
    std::vector<std::int64_t> ts(static_cast<std::size_t>(replicas), 0);
    std::optional<chains::ReplicaRunner> runner;
    if (threads > 0) runner.emplace(threads);
    const auto job = [&](int r) {
      auto& x = xs[static_cast<std::size_t>(r)];
      std::int64_t t = ts[static_cast<std::size_t>(r)];
      for (int s = 0; s < steps_per_batch; ++s)
        cs[static_cast<std::size_t>(r)]->step(x, t++);
      ts[static_cast<std::size_t>(r)] = t;
    };
    const auto start = Clock::now();
    double elapsed = 0.0;
    std::int64_t total = 0;
    do {
      if (runner.has_value()) {
        runner->run(replicas, job);
      } else {
        for (int r = 0; r < replicas; ++r) job(r);
      }
      total += static_cast<std::int64_t>(replicas) * steps_per_batch;
      elapsed = seconds_since(start);
    } while (elapsed < min_time);
    best = std::max(best, static_cast<double>(total) / elapsed);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_chains.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
  }
  const double min_time = quick ? 0.05 : 0.4;
  const int reps = quick ? 2 : 3;

  util::Rng grng(1);
  std::vector<Workload> workloads;
  workloads.push_back(make_e1(grng));
  workloads.push_back(make_e2(grng));

  std::vector<int> thread_counts{1, 2, 4};
  const int hw = chains::ParallelEngine::hardware_threads();
  if (hw != 1 && hw != 2 && hw != 4) thread_counts.push_back(hw);

  // workload -> chain -> threads -> steps/sec
  std::map<std::string, std::map<std::string, std::map<int, double>>> results;
  for (const auto& w : workloads) {
    for (int threads : thread_counts) {
      chains::ParallelEngine engine(threads);
      {
        chains::SynchronousGlauberChain chain(w.m, 1);
        chain.set_engine(&engine);
        results[w.name]["SynchronousGlauber"][threads] =
            measure_steps_per_sec(chain, w.x0, min_time, 4, reps);
      }
      {
        chains::LubyGlauberChain chain(w.m, 1);
        chain.set_engine(&engine);
        results[w.name]["LubyGlauber"][threads] =
            measure_steps_per_sec(chain, w.x0, min_time, 4, reps);
      }
      {
        chains::LocalMetropolisChain chain(w.m, 1);
        chain.set_engine(&engine);
        results[w.name]["LocalMetropolis"][threads] =
            measure_steps_per_sec(chain, w.x0, min_time, 4, reps);
      }
    }
  }

  // Seed path vs compiled path, sequential, per workload.
  std::map<std::string, std::pair<double, double>> seed_vs_compiled;
  for (const auto& w : workloads) {
    const double seed_sps = measure_seed_path_sweeps(w, min_time, reps);
    const double comp_sps = measure_compiled_path_sweeps(w, min_time, reps);
    seed_vs_compiled[w.name] = {seed_sps, comp_sps};
  }

  // Replica-layer throughput: R chains sharing one compiled view, run as a
  // plain sequential loop (key 0, the baseline the guard compares against)
  // and trial-parallel at each thread count.
  const int replicas = 8;
  const std::vector<std::pair<std::string, ReplicaChainBuilder>>
      replica_builders = {
          {"LubyGlauber",
           [](std::shared_ptr<const mrf::CompiledMrf> cm, std::uint64_t seed) {
             return std::unique_ptr<chains::Chain>(
                 new chains::LubyGlauberChain(std::move(cm), seed));
           }},
          {"LocalMetropolis",
           [](std::shared_ptr<const mrf::CompiledMrf> cm, std::uint64_t seed) {
             return std::unique_ptr<chains::Chain>(
                 new chains::LocalMetropolisChain(std::move(cm), seed));
           }},
      };
  // workload -> chain -> threads (0 = sequential loop) -> aggregate steps/sec
  std::map<std::string, std::map<std::string, std::map<int, double>>>
      replica_results;
  for (const auto& w : workloads) {
    const auto cm = std::make_shared<const mrf::CompiledMrf>(w.m);
    for (const auto& [cname, build] : replica_builders) {
      replica_results[w.name][cname][0] = measure_replica_steps_per_sec(
          cm, w.x0, build, replicas, 0, min_time, 2, reps);
      for (int threads : thread_counts)
        replica_results[w.name][cname][threads] =
            measure_replica_steps_per_sec(cm, w.x0, build, replicas, threads,
                                          min_time, 2, reps);
    }
  }

  std::ofstream out(out_path);
  out.precision(6);
  out << "{\n  \"hardware_threads\": " << hw << ",\n  \"workloads\": {\n";
  bool first_w = true;
  for (const auto& [wname, chains_map] : results) {
    if (!first_w) out << ",\n";
    first_w = false;
    out << "    \"" << wname << "\": {\n      \"steps_per_sec\": {\n";
    bool first_c = true;
    for (const auto& [cname, per_threads] : chains_map) {
      if (!first_c) out << ",\n";
      first_c = false;
      out << "        \"" << cname << "\": {";
      bool first_t = true;
      for (const auto& [threads, sps] : per_threads) {
        if (!first_t) out << ", ";
        first_t = false;
        out << "\"" << threads << "\": " << sps;
      }
      out << "}";
    }
    out << "\n      },\n";
    out << "      \"replica_throughput\": {\n        \"replicas\": " << replicas
        << ",\n";
    bool first_r = true;
    for (const auto& [cname, per_threads] : replica_results[wname]) {
      if (!first_r) out << ",\n";
      first_r = false;
      out << "        \"" << cname << "\": {";
      bool first_t = true;
      for (const auto& [threads, sps] : per_threads) {
        if (!first_t) out << ", ";
        first_t = false;
        // key 0 = plain sequential loop over the batch (no runner)
        out << "\"" << threads << "\": " << sps;
      }
      out << "}";
    }
    out << "\n      },\n";
    const auto& [seed_sps, comp_sps] = seed_vs_compiled[wname];
    out << "      \"seed_path_sweeps_per_sec\": " << seed_sps << ",\n"
        << "      \"compiled_path_sweeps_per_sec\": " << comp_sps << ",\n"
        << "      \"compiled_over_seed\": " << comp_sps / seed_sps << "\n"
        << "    }";
  }
  out << "\n  }\n}\n";
  out.close();

  std::cout << "wrote " << out_path << " (hardware_threads=" << hw << ")\n";
  for (const auto& [wname, chains_map] : results) {
    std::cout << "\n" << wname << "\n";
    const auto& [seed_sps, comp_sps] = seed_vs_compiled[wname];
    std::cout << "  seed path:     " << seed_sps << " sweeps/sec\n"
              << "  compiled path: " << comp_sps << " sweeps/sec ("
              << comp_sps / seed_sps << "x)\n";
    for (const auto& [cname, per_threads] : chains_map) {
      std::cout << "  " << cname << ":";
      for (const auto& [threads, sps] : per_threads)
        std::cout << "  " << threads << "T=" << sps << " steps/s";
      std::cout << "\n";
    }
    for (const auto& [cname, per_threads] : replica_results[wname]) {
      std::cout << "  replicas(" << replicas << ") " << cname << ":";
      for (const auto& [threads, sps] : per_threads)
        std::cout << "  " << (threads == 0 ? "seq" : std::to_string(threads) + "T")
                  << "=" << sps << " steps/s";
      std::cout << "\n";
    }
  }

  // Microbenchmark guards:
  //  (a) the compiled sequential path must not be slower than the seed path
  //      (10% noise allowance);
  //  (b) the replica runner at one thread must not be slower than the plain
  //      sequential loop over the same batch (15% allowance — a one-thread
  //      runner is the caller plus one parallel_for per batch).
  int rc = 0;
  for (const auto& [wname, sps] : seed_vs_compiled) {
    if (sps.second < 0.9 * sps.first) {
      std::cerr << "GUARD FAILED: compiled path slower than seed path on "
                << wname << " (" << sps.second << " vs " << sps.first
                << " sweeps/sec)\n";
      rc = 1;
    }
  }
  for (const auto& [wname, per_chain] : replica_results) {
    for (const auto& [cname, per_threads] : per_chain) {
      const double seq = per_threads.at(0);
      const double one_thread = per_threads.at(1);
      if (one_thread < 0.85 * seq) {
        std::cerr << "GUARD FAILED: replica runner (1 thread) slower than "
                     "the sequential trial loop on "
                  << wname << "/" << cname << " (" << one_thread << " vs "
                  << seq << " steps/sec)\n";
        rc = 1;
      }
    }
  }
  if (rc == 0)
    std::cout << "\nguard ok: compiled path >= seed path, replica runner "
                 ">= sequential trial loop\n";
  return rc;
}
