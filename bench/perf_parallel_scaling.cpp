// Machine-readable throughput emitter + microbenchmark guard.
//
// Measures steps/sec for every synchronous chain at several thread counts on
// the E1 (LubyGlauber colorings, random regular graph) and E2
// (LocalMetropolis colorings, Delta ~ sqrt(n)) workload shapes, plus the
// compiled-view vs. seed-path sequential comparison, and writes everything to
// BENCH_chains.json so the perf trajectory is tracked from PR to PR.
//
// Exit status is the guard: nonzero iff the compiled sequential path is
// slower than the legacy seed path (gather_neighbor_spins +
// heat_bath_resample on Mrf's per-edge ActivityMatrix storage) beyond a
// 10% noise allowance on either workload.
//
//   $ ./perf_parallel_scaling [--quick] [--out PATH]
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "chains/engine.hpp"
#include "chains/glauber.hpp"
#include "chains/init.hpp"
#include "chains/kernels.hpp"
#include "chains/local_metropolis.hpp"
#include "chains/luby_glauber.hpp"
#include "chains/synchronous_glauber.hpp"
#include "graph/generators.hpp"
#include "mrf/compiled.hpp"
#include "mrf/models.hpp"

namespace {

using namespace lsample;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Runs chain steps for ~min_time seconds (at least min_steps) and returns
/// steps/sec.  Best of `reps` repetitions to shave scheduler noise.
double measure_steps_per_sec(chains::Chain& chain, const mrf::Config& x0,
                             double min_time, int min_steps, int reps) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    mrf::Config x = x0;
    std::int64_t t = 0;
    const auto start = Clock::now();
    double elapsed = 0.0;
    do {
      for (int s = 0; s < min_steps; ++s) chain.step(x, t++);
      elapsed = seconds_since(start);
    } while (elapsed < min_time);
    best = std::max(best, static_cast<double>(t) / elapsed);
  }
  return best;
}

struct Workload {
  std::string name;
  mrf::Mrf m;
  mrf::Config x0;
};

Workload make_e1(util::Rng& grng) {
  const int n = 400, delta = 8;
  const auto g = graph::make_random_regular(n, delta, grng);
  mrf::Mrf m = mrf::make_proper_coloring(g, 20);
  mrf::Config x0 = chains::greedy_feasible_config(m);
  return {"E1_coloring_regular_n400_d8_q20", std::move(m), std::move(x0)};
}

Workload make_e2(util::Rng& grng) {
  const int n = 900, delta = 30;
  const auto g = graph::make_random_regular(n, delta, grng);
  mrf::Mrf m = mrf::make_proper_coloring(g, 108);
  mrf::Config x0 = chains::greedy_feasible_config(m);
  return {"E2_coloring_regular_n900_d30_q108", std::move(m), std::move(x0)};
}

/// The seed execution path, preserved verbatim for comparison: a full
/// synchronous-Glauber-style sweep on Mrf's pointer-chasing storage.
double measure_seed_path_sweeps(const Workload& w, double min_time, int reps) {
  const util::CounterRng rng(1);
  std::vector<double> weights;
  std::vector<int> nbr_spins;
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    mrf::Config x = w.x0;
    mrf::Config next = w.x0;
    std::int64_t t = 0;
    const auto start = Clock::now();
    double elapsed = 0.0;
    do {
      for (int v = 0; v < w.m.n(); ++v) {
        chains::gather_neighbor_spins(w.m, v, x, nbr_spins);
        next[static_cast<std::size_t>(v)] = chains::heat_bath_resample(
            w.m, rng, v, t, nbr_spins, weights,
            x[static_cast<std::size_t>(v)]);
      }
      std::swap(x, next);
      ++t;
      elapsed = seconds_since(start);
    } while (elapsed < min_time);
    best = std::max(best, static_cast<double>(t) / elapsed);
  }
  return best;
}

/// The same sweep on the compiled view (single-threaded).
double measure_compiled_path_sweeps(const Workload& w, double min_time,
                                    int reps) {
  const mrf::CompiledMrf cm(w.m);
  const util::CounterRng rng(1);
  std::vector<double> weights;
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    mrf::Config x = w.x0;
    mrf::Config next = w.x0;
    std::int64_t t = 0;
    const auto start = Clock::now();
    double elapsed = 0.0;
    do {
      for (int v = 0; v < w.m.n(); ++v)
        next[static_cast<std::size_t>(v)] =
            chains::heat_bath_kernel(cm, rng, v, t, x, weights);
      std::swap(x, next);
      ++t;
      elapsed = seconds_since(start);
    } while (elapsed < min_time);
    best = std::max(best, static_cast<double>(t) / elapsed);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_chains.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
  }
  const double min_time = quick ? 0.05 : 0.4;
  const int reps = quick ? 2 : 3;

  util::Rng grng(1);
  std::vector<Workload> workloads;
  workloads.push_back(make_e1(grng));
  workloads.push_back(make_e2(grng));

  std::vector<int> thread_counts{1, 2, 4};
  const int hw = chains::ParallelEngine::hardware_threads();
  if (hw != 1 && hw != 2 && hw != 4) thread_counts.push_back(hw);

  // workload -> chain -> threads -> steps/sec
  std::map<std::string, std::map<std::string, std::map<int, double>>> results;
  for (const auto& w : workloads) {
    for (int threads : thread_counts) {
      chains::ParallelEngine engine(threads);
      {
        chains::SynchronousGlauberChain chain(w.m, 1);
        chain.set_engine(&engine);
        results[w.name]["SynchronousGlauber"][threads] =
            measure_steps_per_sec(chain, w.x0, min_time, 4, reps);
      }
      {
        chains::LubyGlauberChain chain(w.m, 1);
        chain.set_engine(&engine);
        results[w.name]["LubyGlauber"][threads] =
            measure_steps_per_sec(chain, w.x0, min_time, 4, reps);
      }
      {
        chains::LocalMetropolisChain chain(w.m, 1);
        chain.set_engine(&engine);
        results[w.name]["LocalMetropolis"][threads] =
            measure_steps_per_sec(chain, w.x0, min_time, 4, reps);
      }
    }
  }

  // Seed path vs compiled path, sequential, per workload.
  std::map<std::string, std::pair<double, double>> seed_vs_compiled;
  for (const auto& w : workloads) {
    const double seed_sps = measure_seed_path_sweeps(w, min_time, reps);
    const double comp_sps = measure_compiled_path_sweeps(w, min_time, reps);
    seed_vs_compiled[w.name] = {seed_sps, comp_sps};
  }

  std::ofstream out(out_path);
  out.precision(6);
  out << "{\n  \"hardware_threads\": " << hw << ",\n  \"workloads\": {\n";
  bool first_w = true;
  for (const auto& [wname, chains_map] : results) {
    if (!first_w) out << ",\n";
    first_w = false;
    out << "    \"" << wname << "\": {\n      \"steps_per_sec\": {\n";
    bool first_c = true;
    for (const auto& [cname, per_threads] : chains_map) {
      if (!first_c) out << ",\n";
      first_c = false;
      out << "        \"" << cname << "\": {";
      bool first_t = true;
      for (const auto& [threads, sps] : per_threads) {
        if (!first_t) out << ", ";
        first_t = false;
        out << "\"" << threads << "\": " << sps;
      }
      out << "}";
    }
    out << "\n      },\n";
    const auto& [seed_sps, comp_sps] = seed_vs_compiled[wname];
    out << "      \"seed_path_sweeps_per_sec\": " << seed_sps << ",\n"
        << "      \"compiled_path_sweeps_per_sec\": " << comp_sps << ",\n"
        << "      \"compiled_over_seed\": " << comp_sps / seed_sps << "\n"
        << "    }";
  }
  out << "\n  }\n}\n";
  out.close();

  std::cout << "wrote " << out_path << " (hardware_threads=" << hw << ")\n";
  for (const auto& [wname, chains_map] : results) {
    std::cout << "\n" << wname << "\n";
    const auto& [seed_sps, comp_sps] = seed_vs_compiled[wname];
    std::cout << "  seed path:     " << seed_sps << " sweeps/sec\n"
              << "  compiled path: " << comp_sps << " sweeps/sec ("
              << comp_sps / seed_sps << "x)\n";
    for (const auto& [cname, per_threads] : chains_map) {
      std::cout << "  " << cname << ":";
      for (const auto& [threads, sps] : per_threads)
        std::cout << "  " << threads << "T=" << sps << " steps/s";
      std::cout << "\n";
    }
  }

  // Microbenchmark guard: the compiled sequential path must not be slower
  // than the seed path (10% noise allowance).
  int rc = 0;
  for (const auto& [wname, sps] : seed_vs_compiled) {
    if (sps.second < 0.9 * sps.first) {
      std::cerr << "GUARD FAILED: compiled path slower than seed path on "
                << wname << " (" << sps.second << " vs " << sps.first
                << " sweeps/sec)\n";
      rc = 1;
    }
  }
  if (rc == 0) std::cout << "\nguard ok: compiled path >= seed path\n";
  return rc;
}
