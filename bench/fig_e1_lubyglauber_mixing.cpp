// Experiment E1 — Theorem 1.1 / Corollary 3.4: LubyGlauber samples proper
// q-colorings with q >= (2+delta)*Delta in O(Delta * log(n/eps)) rounds.
//
// Reproduced shape:
//  (a) at fixed n, coalescence rounds grow ~linearly in Delta (rounds/Delta
//      roughly constant);
//  (b) at fixed Delta, rounds grow ~logarithmically in n (rounds/ln(n)
//      roughly constant).
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "core/theory.hpp"
#include "util/summary.hpp"

namespace {

using namespace lsample;

void sweep_delta() {
  util::print_banner(std::cout,
                     "E1a: LubyGlauber rounds vs Delta (n=400, q=ceil(2.5*Delta))");
  // "measured rounds" is the censored-aware lower-bound mean: identical to
  // the plain mean whenever every trial coalesces within the budget.
  util::Table t({"Delta", "q", "alpha", "theory T", "measured rounds",
                 "rounds/Delta", "censored"});
  util::Rng grng(1);
  const int n = 400;
  for (int delta : {4, 8, 12, 16, 24}) {
    const auto g = graph::make_random_regular(n, delta, grng);
    const int q = static_cast<int>(std::ceil(2.5 * delta));
    const mrf::Mrf m = mrf::make_proper_coloring(g, q);
    const double alpha = core::coloring_dobrushin_alpha(q, delta);
    const auto theory = core::luby_glauber_round_budget(
        n, 1.0 / (delta + 1.0), alpha, 0.01);
    const auto res = bench::measure_coalescence(
        m, bench::luby_glauber_factory(m), 6, 100000, 17);
    t.begin_row()
        .cell(delta)
        .cell(q)
        .cell(alpha, 3)
        .cell(theory)
        .cell(res.mean_lower_bound(), 1)
        .cell(res.mean_lower_bound() / delta, 2)
        .cell(res.censored);
  }
  t.print(std::cout);
  std::cout << "paper: rounds = O(Delta log n); expect the last column "
               "approximately flat.\n";
}

void sweep_n() {
  util::print_banner(std::cout,
                     "E1b: LubyGlauber rounds vs n (Delta=6, q=15)");
  util::Table t({"n", "ln n", "measured rounds", "rounds/ln(n)", "censored"});
  util::Rng grng(2);
  std::vector<double> lnn;
  std::vector<double> rounds;
  for (int n : {100, 200, 400, 800, 1600}) {
    const auto g = graph::make_random_regular(n, 6, grng);
    const mrf::Mrf m = mrf::make_proper_coloring(g, 15);
    const auto res = bench::measure_coalescence(
        m, bench::luby_glauber_factory(m), 5, 100000, 29);
    lnn.push_back(std::log(n));
    rounds.push_back(res.mean_lower_bound());
    t.begin_row()
        .cell(n)
        .cell(std::log(n), 2)
        .cell(res.mean_lower_bound(), 1)
        .cell(res.mean_lower_bound() / std::log(n), 2)
        .cell(res.censored);
  }
  t.print(std::cout);
  std::cout << "least-squares slope of rounds vs ln(n): "
            << util::ls_slope(lnn, rounds)
            << " (positive and modest => logarithmic growth).\n";
}

}  // namespace

// What the Theorem 1.1 budget charges vs what mixing actually costs on the
// guarded E1 workload (n=400, Delta=8, q=20) — and what the facade's
// adaptive stopping rules pay in its place.
void budget_vs_empirical() {
  util::Rng grng(99);
  const int n = 400, delta = 8, q = 20;
  const auto g = graph::make_random_regular(n, delta, grng);
  const mrf::Mrf m = mrf::make_proper_coloring(g, q);
  const auto budget = core::coloring_round_budget(
      n, delta, q, core::Algorithm::luby_glauber, 0.01);
  bench::print_budget_vs_empirical(m, core::Algorithm::luby_glauber, budget,
                                   bench::luby_glauber_factory(m), 6, 41);
}

int main() {
  std::cout << "Experiment E1 — LubyGlauber mixing (Thm 1.1 / Cor 3.4)\n";
  sweep_delta();
  sweep_n();
  budget_vs_empirical();
  return 0;
}
