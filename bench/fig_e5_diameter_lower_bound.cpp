// Experiment E5 — Theorems 1.3 / 5.2 / 5.4: sampling independent sets /
// hardcore configurations in the non-uniqueness regime (Delta >= 6,
// lambda > lambda_c) requires Omega(diam) rounds.
//
// Construction: the random bipartite gadget of §5.1.1 lifted onto an even
// cycle (§5.1.2).  Under the Gibbs distribution the per-copy phase vector
// concentrates near the two maximum cuts of the cycle (Theorem 5.4), an
// m/2-range correlation.  A t-round protocol with t << diam produces
// independent phases for antipodal copies — its antipodal phase agreement is
// ~1/2, while the Gibbs agreement is near 1.  Ground truth is parallel
// tempering (local chains alone are torpid here — that is the point of the
// theorem).
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "gadget/gadget.hpp"
#include "gadget/tempering.hpp"
#include "graph/properties.hpp"
#include "util/summary.hpp"

namespace {

using namespace lsample;

struct PhaseStats {
  double max_cut_fraction = 0.0;
  double plus_start_fraction = 0.0;  // of max-cut samples: copy 0 in phase +
  double adjacent_disagreement = 0.0;  // Pr[Y_x != Y_{x+1}], both nonzero
  double antipodal_agreement = 0.0;  // Pr[Y_0 == Y_{m/2}], both nonzero
  int samples = 0;
};

PhaseStats accumulate(const gadget::LiftedCycle& lifted,
                      const std::vector<mrf::Config>& samples) {
  PhaseStats stats;
  int max_cut = 0;
  int plus_start = 0;
  int agree = 0;
  int decided = 0;
  std::int64_t adj_disagree = 0;
  std::int64_t adj_decided = 0;
  for (const auto& x : samples) {
    const auto phases = gadget::phase_vector(lifted, x);
    const int cut = gadget::cut_value(phases);
    if (cut == lifted.m) {
      ++max_cut;
      if (phases[0] > 0) ++plus_start;
    }
    for (int c = 0; c < lifted.m; ++c) {
      const int pa = phases[static_cast<std::size_t>(c)];
      const int pb = phases[static_cast<std::size_t>((c + 1) % lifted.m)];
      if (pa != 0 && pb != 0) {
        ++adj_decided;
        if (pa != pb) ++adj_disagree;
      }
    }
    const int a = phases[0];
    const int b = phases[static_cast<std::size_t>(lifted.m / 2)];
    if (a != 0 && b != 0) {
      ++decided;
      if (a == b) ++agree;
    }
  }
  stats.samples = static_cast<int>(samples.size());
  stats.max_cut_fraction = static_cast<double>(max_cut) / samples.size();
  stats.plus_start_fraction =
      max_cut > 0 ? static_cast<double>(plus_start) / max_cut : 0.0;
  stats.adjacent_disagreement =
      adj_decided > 0 ? static_cast<double>(adj_disagree) / adj_decided : 0.0;
  stats.antipodal_agreement =
      decided > 0 ? static_cast<double>(agree) / decided : 0.0;
  return stats;
}

int main_impl() {
  std::cout << "Experiment E5 — Omega(diam) lower bound via the max-cut "
               "gadget (Thms 1.3/5.2/5.4)\n";

  // Build the lifted graph: gadget with 2k terminals per side, Delta = 6,
  // lifted on an even cycle of length m.  lambda > lambda_c(6) ~ 0.762.
  util::Rng grng(11);
  gadget::GadgetParams blueprint;
  blueprint.n = 32;
  blueprint.k = 12;  // 2k terminals per side, k = 6 edges per cycle side
  blueprint.delta = 6;
  const gadget::Gadget gad = gadget::make_random_gadget(blueprint, grng);
  const int m_cycle = 8;
  const gadget::LiftedCycle lifted = gadget::lift_on_cycle(gad, m_cycle);
  const double lambda = 2.5;
  const int diam = graph::diameter_lower_bound(*lifted.g);
  std::cout << "lifted graph: n = " << lifted.g->num_vertices()
            << ", Delta = " << lifted.g->max_degree() << ", cycle m = "
            << m_cycle << ", diam >= " << diam
            << ", lambda = " << lambda
            << " (lambda_c(6) = " << mrf::hardcore_uniqueness_threshold(6)
            << ")\n";

  // Ground truth: parallel tempering across a fugacity ladder.
  gadget::ParallelTempering pt(
      gadget::hardcore_ladder(lifted.g, 0.1, lambda, 9), 13);
  pt.run_sweeps(3000);  // burn-in
  std::vector<mrf::Config> gibbs_samples;
  const int n_samples = 1500;
  gibbs_samples.reserve(n_samples);
  for (int s = 0; s < n_samples; ++s) {
    pt.run_sweeps(10);
    gibbs_samples.push_back(pt.target_config());
  }
  const PhaseStats gibbs = accumulate(lifted, gibbs_samples);
  std::cout << "tempering swap acceptance: " << pt.swap_acceptance_rate()
            << "\n";

  // t-round protocols: LocalMetropolis for t << diam and t ~ diam.
  const mrf::Mrf model = mrf::make_hardcore(lifted.g, lambda);
  util::Table t({"sampler", "rounds", "max-cut fraction",
                 "balance (+ cut | max-cut)", "adjacent disagreement",
                 "antipodal agreement"});
  t.begin_row()
      .cell("Gibbs (tempering)")
      .cell("-")
      .cell(gibbs.max_cut_fraction, 3)
      .cell(gibbs.plus_start_fraction, 3)
      .cell(gibbs.adjacent_disagreement, 3)
      .cell(gibbs.antipodal_agreement, 3);

  for (int rounds : {5, 20, 3 * diam}) {
    std::vector<mrf::Config> proto_samples;
    proto_samples.reserve(400);
    for (int r = 0; r < 400; ++r) {
      chains::LocalMetropolisChain chain(model,
                                         5000 + static_cast<std::uint64_t>(r));
      mrf::Config x = chains::constant_config(model, 0);
      for (int s = 0; s < rounds; ++s) chain.step(x, s);
      proto_samples.push_back(std::move(x));
    }
    const PhaseStats proto = accumulate(lifted, proto_samples);
    t.begin_row()
        .cell(std::string("LocalMetropolis"))
        .cell(rounds)
        .cell(proto.max_cut_fraction, 3)
        .cell(proto.plus_start_fraction, 3)
        .cell(proto.adjacent_disagreement, 3)
        .cell(proto.antipodal_agreement, 3);
  }
  t.print(std::cout);
  std::cout
      << "paper's shape: Gibbs phases attain a max cut w.h.p. (Thm 5.4), "
         "split ~50/50 between the two cuts, and antipodal copies agree "
         "(m/2 even).  A t-round local sampler with t << diam has antipodal "
         "agreement ~0.5 (independent phases) — and because the model is in "
         "the non-uniqueness regime, even t ~ diam rounds of a *local chain* "
         "stay uncorrelated: no local dynamics can build the long-range "
         "correlation, which is exactly why the lower bound is Omega(diam) "
         "for every protocol and unconditional.\n";
  return 0;
}

}  // namespace

int main() { return main_impl(); }
