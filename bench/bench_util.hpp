// Shared helpers for the experiment harnesses.
#pragma once

#include <iostream>
#include <memory>

#include "chains/coupling.hpp"
#include "chains/init.hpp"
#include "chains/local_metropolis.hpp"
#include "chains/luby_glauber.hpp"
#include "chains/replicas.hpp"
#include "graph/generators.hpp"
#include "mrf/compiled.hpp"
#include "mrf/models.hpp"
#include "util/table.hpp"

namespace lsample::bench {

// Both factories compile the model ONCE and share the view across every
// trial replica (the factory is invoked concurrently from the replica pool;
// chain construction only reads the shared view).

inline chains::ChainFactory local_metropolis_factory(const mrf::Mrf& m) {
  auto cm = std::make_shared<const mrf::CompiledMrf>(m);
  return [cm](std::uint64_t seed) {
    return std::unique_ptr<chains::Chain>(
        new chains::LocalMetropolisChain(cm, seed));
  };
}

inline chains::ChainFactory luby_glauber_factory(const mrf::Mrf& m) {
  auto cm = std::make_shared<const mrf::CompiledMrf>(m);
  return [cm](std::uint64_t seed) {
    return std::unique_ptr<chains::Chain>(
        new chains::LubyGlauberChain(cm, seed));
  };
}

/// Grand-coupling coalescence from the standard adversarial pair
/// (all-zero vs greedy-feasible), trials run replica-parallel on all
/// hardware threads (bit-identical to the sequential trial loop).
inline chains::CoalescenceResult measure_coalescence(
    const mrf::Mrf& m, const chains::ChainFactory& factory, int trials,
    std::int64_t max_rounds, std::uint64_t seed) {
  const mrf::Config x0 = chains::constant_config(m, 0);
  const mrf::Config y0 = chains::greedy_feasible_config(m);
  chains::CoalescenceOptions opt;
  opt.trials = trials;
  opt.max_rounds = max_rounds;
  opt.base_seed = seed;
  opt.num_threads = 0;  // all hardware threads
  return chains::coalescence_time(factory, x0, y0, opt);
}

}  // namespace lsample::bench
