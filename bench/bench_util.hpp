// Shared helpers for the experiment harnesses.
#pragma once

#include <iostream>
#include <memory>

#include "chains/coupling.hpp"
#include "chains/init.hpp"
#include "chains/local_metropolis.hpp"
#include "chains/luby_glauber.hpp"
#include "chains/replicas.hpp"
#include "core/sampler.hpp"
#include "graph/generators.hpp"
#include "mrf/compiled.hpp"
#include "mrf/models.hpp"
#include "util/table.hpp"

namespace lsample::bench {

// Both factories compile the model ONCE and share the view across every
// trial replica (the factory is invoked concurrently from the replica pool;
// chain construction only reads the shared view).

inline chains::ChainFactory local_metropolis_factory(const mrf::Mrf& m) {
  auto cm = std::make_shared<const mrf::CompiledMrf>(m);
  return [cm](std::uint64_t seed) {
    return std::unique_ptr<chains::Chain>(
        new chains::LocalMetropolisChain(cm, seed));
  };
}

inline chains::ChainFactory luby_glauber_factory(const mrf::Mrf& m) {
  auto cm = std::make_shared<const mrf::CompiledMrf>(m);
  return [cm](std::uint64_t seed) {
    return std::unique_ptr<chains::Chain>(
        new chains::LubyGlauberChain(cm, seed));
  };
}

/// Grand-coupling coalescence from the standard adversarial pair
/// (all-zero vs greedy-feasible), trials run replica-parallel on all
/// hardware threads (bit-identical to the sequential trial loop).
inline chains::CoalescenceResult measure_coalescence(
    const mrf::Mrf& m, const chains::ChainFactory& factory, int trials,
    std::int64_t max_rounds, std::uint64_t seed) {
  const mrf::Config x0 = chains::constant_config(m, 0);
  const mrf::Config y0 = chains::greedy_feasible_config(m);
  chains::CoalescenceOptions opt;
  opt.trials = trials;
  opt.max_rounds = max_rounds;
  opt.base_seed = seed;
  opt.num_threads = 0;  // all hardware threads
  return chains::coalescence_time(factory, x0, y0, opt);
}

/// The budget_vs_empirical section shared by fig_e1/fig_e2: what the theory
/// budget charges vs what mixing actually costs on one guarded workload —
/// measured coalescence (mean and p95 over trials) and the rounds the
/// facade's adaptive rules (stop = coupling / rhat) actually pay, each with
/// its savings ratio vs the budget.  The honest summary of this PR's claim:
/// adaptive stopping recovers a constant factor (the budget's union bounds
/// and worst-case inits), NOT an order of magnitude — the chain still has
/// to mix.
inline void print_budget_vs_empirical(const mrf::Mrf& m,
                                      core::Algorithm algorithm,
                                      std::int64_t theory_budget,
                                      const chains::ChainFactory& factory,
                                      int trials, std::uint64_t seed) {
  util::print_banner(std::cout, "budget_vs_empirical (adaptive stopping)");
  const auto coal =
      measure_coalescence(m, factory, trials, theory_budget, seed);
  util::Table t({"quantity", "rounds", "budget/rounds"});
  const auto row = [&](const char* name, double rounds) {
    t.begin_row().cell(name).cell(rounds, 1).cell(
        static_cast<double>(theory_budget) / rounds, 2);
  };
  t.begin_row().cell("theory budget").cell(theory_budget).cell(1.0, 2);
  row("coalescence mean", coal.mean_lower_bound());
  if (coal.censored == 0) row("coalescence p95", coal.quantile(0.95));
  core::SamplerOptions opt;
  opt.algorithm = algorithm;
  opt.seed = seed;
  opt.rounds = theory_budget;
  opt.num_threads = 0;
  for (const chains::StopRule rule :
       {chains::StopRule::coupling, chains::StopRule::rhat}) {
    opt.stop = rule;
    const auto res = core::sample_mrf(m, opt);
    const std::string name =
        "stop=" + std::string(chains::stop_rule_name(rule)) +
        (res.stopped_early ? "" : " (unconverged)");
    row(name.c_str(), static_cast<double>(res.rounds_used));
  }
  t.print(std::cout);
  std::cout << "adaptive rules pay measured mixing (checkpointed, so the "
               "stop lands on the next power of two); the budget's slack "
               "is a small constant factor, not an order of magnitude.\n";
}

}  // namespace lsample::bench
