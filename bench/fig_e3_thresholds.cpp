// Experiment E3 — the analysis thresholds of §4.2:
//   * the ideal-coupling contraction (§4.2.1) crosses 1 exactly at
//     alpha = 2 + sqrt(2) as Delta -> infinity;
//   * the easy local coupling (Lemma 4.4) contracts iff alpha > alpha*,
//     the root of alpha = 2 e^{1/alpha} + 1 (~3.634);
//   * the global coupling margin (Lemma 4.5, eq. (26)) is positive in the
//     regime (2+sqrt(2))Delta < q <= 3.7 Delta + 3 for Delta >= 9;
//   * empirically, LocalMetropolis coalescence blows up as q/Delta drops
//     toward and below the threshold.
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "core/theory.hpp"
#include "util/summary.hpp"

namespace {

using namespace lsample;

void numeric_thresholds() {
  util::print_banner(std::cout, "E3a: closed-form thresholds");
  std::cout << "2 + sqrt(2)            = " << core::ideal_threshold() << "\n";
  std::cout << "alpha* (= 2e^{1/a}+1)  = " << core::alpha_star() << "\n";

  util::Table t({"alpha = q/Delta", "ideal E[disagree] (limit)",
                 "easy margin (limit)", "global margin (Delta=64)"});
  for (double alpha : {3.2, 3.4, core::ideal_threshold(), 3.45, 3.55, 3.634,
                       3.7, 4.0}) {
    const int delta = 64;
    const double q = alpha * delta;
    t.begin_row()
        .cell(alpha, 4)
        .cell(core::ideal_coupling_limit(alpha), 5)
        .cell(core::easy_coupling_limit(alpha), 5)
        .cell(q > 2 * delta - 2 ? core::global_coupling_margin(q, delta)
                                : -1.0,
              5);
  }
  t.print(std::cout);
  std::cout << "paper: ideal disagreement crosses 1 at alpha = 2+sqrt(2); "
               "easy margin crosses 0 at alpha*.\n";
}

void finite_delta_convergence() {
  util::print_banner(
      std::cout, "E3b: finite-Delta ideal coupling converges to the limit");
  util::Table t({"Delta", "E[disagree] at alpha=3.5", "limit"});
  const double alpha = 3.5;
  for (int delta : {9, 16, 32, 64, 256}) {
    t.begin_row()
        .cell(delta)
        .cell(core::ideal_coupling_expected_disagreement(alpha * delta, delta),
              5)
        .cell(core::ideal_coupling_limit(alpha), 5);
  }
  t.print(std::cout);
}

void empirical_sweep() {
  util::print_banner(
      std::cout,
      "E3c: empirical LocalMetropolis coalescence vs alpha = q/Delta "
      "(random 8-regular, n=128)");
  // "mean rounds >=" is the censored-aware lower bound: censored trials
  // count at the full budget instead of being dropped (which would bias a
  // mostly-censored row down to its one lucky trial) or pretending the
  // budget was a coalescence time.
  util::Table t({"alpha", "q", "mean rounds >=", "p90 rounds (uncens.)",
                 "censored"});
  util::Rng grng(7);
  const int n = 128;
  const int delta = 8;
  const auto g = graph::make_random_regular(n, delta, grng);
  for (double alpha : {2.4, 2.8, 3.1, 3.45, 3.8, 4.5}) {
    const int q = static_cast<int>(std::ceil(alpha * delta));
    const mrf::Mrf m = mrf::make_proper_coloring(g, q);
    const auto res = bench::measure_coalescence(
        m, bench::local_metropolis_factory(m), 6, 20000, 41);
    t.begin_row()
        .cell(alpha, 2)
        .cell(q)
        .cell(res.mean_lower_bound(), 1)
        .cell(res.quantile(0.9), 1)
        .cell(res.censored);
  }
  t.print(std::cout);
  std::cout << "expect rounds to grow sharply as alpha decreases toward the "
               "threshold region (grand-coupling view of Thm 4.2; note the "
               "coupling can keep contracting somewhat below 2+sqrt(2) — the "
               "theorem is a sufficient condition).\n";
}

}  // namespace

int main() {
  std::cout << "Experiment E3 — thresholds of the LocalMetropolis analysis "
               "(Thm 4.2, Lemmas 4.4/4.5)\n";
  numeric_thresholds();
  finite_delta_convergence();
  empirical_sweep();
  return 0;
}
