// Kernel microbenchmark: isolates the per-vertex hot kernels from the chain
// and engine machinery, so a regression in one kernel is visible without
// being averaged into whole-round throughput.
//
// Measured per (tier, reorder) compiled-view variant where the variant
// matters (marginal_weights / heat_bath_kernel), and per reorder variant for
// the LocalMetropolis filter kernels (which have no fast_math tier):
//   * CompiledMrf::marginal_weights — the heat-bath inner product;
//   * chains::proposal_kernel        — categorical draw from vertex activity;
//   * chains::lm_accept_kernel       — per-edge shared-coin filter;
//   * chains::lm_two_rule_accept_kernel — the two-rule negative control.
// All rows are best-of-reps calls/sec over full vertex sweeps (the sweep
// follows the view's order() so reorder variants see their intended access
// pattern).  Reporting only — the guard lives in perf_parallel_scaling.
//
//   $ ./perf_kernels [--quick]
#include <chrono>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "chains/init.hpp"
#include "chains/kernels.hpp"
#include "graph/generators.hpp"
#include "mrf/compiled.hpp"
#include "mrf/models.hpp"

namespace {

using namespace lsample;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Workload {
  std::string name;
  mrf::Mrf m;
  mrf::Config x0;
};

Workload make_coloring(util::Rng& grng, int n, int delta, int q,
                       const std::string& name) {
  const auto g = graph::make_random_regular(n, delta, grng);
  mrf::Mrf m = mrf::make_proper_coloring(g, q);
  mrf::Config x0 = chains::greedy_feasible_config(m);
  return {name, std::move(m), std::move(x0)};
}

/// Best-of-reps calls/sec of `body(v)` swept over the view's order.
template <typename Body>
double sweep_calls_per_sec(const mrf::CompiledMrf& cm, double min_time,
                           int reps, const Body& body) {
  const auto order = cm.order();
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    std::int64_t calls = 0;
    const auto start = Clock::now();
    double elapsed = 0.0;
    do {
      for (const int v : order) body(v);
      calls += cm.n();
      elapsed = seconds_since(start);
    } while (elapsed < min_time);
    best = std::max(best, static_cast<double>(calls) / elapsed);
  }
  return best;
}

void print_row(const std::string& kernel, const std::string& variant,
               double cps) {
  std::cout << "  " << kernel << " [" << variant << "]: " << cps / 1e6
            << " Mcalls/s\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  const double min_time = quick ? 0.05 : 0.4;
  const int reps = quick ? 2 : 3;

  util::Rng grng(1);
  std::vector<Workload> workloads;
  workloads.push_back(make_coloring(grng, 400, 8, 20, "coloring_n400_d8_q20"));
  workloads.push_back(
      make_coloring(grng, 900, 30, 108, "coloring_n900_d30_q108"));

  using Tier = mrf::CompiledMrf::Tier;
  const std::vector<std::pair<std::string, mrf::CompiledMrf::Options>>
      variants = {
          {"exact/none", {graph::VertexOrder::none, Tier::exact}},
          {"exact/rcm", {graph::VertexOrder::rcm, Tier::exact}},
          {"fast_math/none", {graph::VertexOrder::none, Tier::fast_math}},
          {"fast_math/rcm", {graph::VertexOrder::rcm, Tier::fast_math}},
      };

  const util::CounterRng rng(1);
  // Accumulators the optimizer must respect, so kernels are not elided.
  double fsink = 0.0;
  std::int64_t isink = 0;

  for (const auto& w : workloads) {
    std::cout << w.name << "\n";
    std::vector<double> weights;

    for (const auto& [vname, opts] : variants) {
      const mrf::CompiledMrf cm(w.m, opts);
      print_row("marginal_weights", vname,
                sweep_calls_per_sec(cm, min_time, reps, [&](int v) {
                  cm.marginal_weights(v, w.x0, weights);
                  fsink += weights[0];
                }));
      print_row("heat_bath_kernel", vname,
                sweep_calls_per_sec(cm, min_time, reps, [&](int v) {
                  isink += chains::heat_bath_kernel(cm, rng, v, 7, w.x0,
                                                    weights);
                }));
    }

    // The filter kernels read norm-table entries only — no fast_math tier —
    // so just the reorder axis.  A proposal per vertex feeds the filters.
    for (const auto reorder :
         {graph::VertexOrder::none, graph::VertexOrder::rcm}) {
      const mrf::CompiledMrf cm(w.m, {reorder, Tier::exact});
      const std::string vname = graph::vertex_order_name(reorder);
      mrf::Config proposal = w.x0;
      for (int v = 0; v < cm.n(); ++v)
        proposal[static_cast<std::size_t>(v)] =
            chains::proposal_kernel(cm, rng, v, 7);
      print_row("proposal_kernel", vname,
                sweep_calls_per_sec(cm, min_time, reps, [&](int v) {
                  isink += chains::proposal_kernel(cm, rng, v, 7);
                }));
      print_row("lm_accept_kernel", vname,
                sweep_calls_per_sec(cm, min_time, reps, [&](int v) {
                  isink += chains::lm_accept_kernel(cm, rng, v, 7, proposal,
                                                    w.x0)
                               ? 1
                               : 0;
                }));
      print_row("lm_two_rule_accept_kernel", vname,
                sweep_calls_per_sec(cm, min_time, reps, [&](int v) {
                  isink += chains::lm_two_rule_accept_kernel(cm, rng, v, 7,
                                                             proposal, w.x0)
                               ? 1
                               : 0;
                }));
    }
    std::cout << "\n";
  }

  // Keep the sinks live without polluting normal output.
  if (fsink == -1.0 && isink == -1) std::cerr << "";
  return 0;
}
