// Experiment E2 — Theorem 1.2: LocalMetropolis samples proper q-colorings
// with q >= alpha*Delta (alpha > 2+sqrt(2)) in O(log(n/eps)) rounds,
// *independent of Delta*, even when Delta grows with n.
//
// Reproduced shape: with Delta = Theta(sqrt(n)) growing, LubyGlauber's rounds
// grow with Delta while LocalMetropolis' stay flat (the paper's headline
// separation between the two algorithms).
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "util/summary.hpp"

namespace {

using namespace lsample;

void growing_delta() {
  util::print_banner(
      std::cout,
      "E2: rounds vs n with Delta=sqrt(n), q=ceil(3.6*Delta) (both algorithms)");
  // Rounds are censored-aware lower-bound means (equal to plain means when
  // every trial coalesces within the 50000-round budget).
  util::Table t({"n", "Delta", "q", "LocalMetropolis rounds",
                 "LubyGlauber rounds", "ratio LG/LM", "censored LM/LG"});
  util::Rng grng(3);
  std::vector<double> deltas;
  std::vector<double> lm_rounds;
  for (int n : {64, 144, 256, 484, 900}) {
    const int delta = static_cast<int>(std::lround(std::sqrt(n)));
    const auto g = graph::make_random_regular(n, delta, grng);
    const int q = static_cast<int>(std::ceil(3.6 * delta));
    const mrf::Mrf m = mrf::make_proper_coloring(g, q);
    const auto lm = bench::measure_coalescence(
        m, bench::local_metropolis_factory(m), 5, 50000, 31);
    const auto lg = bench::measure_coalescence(
        m, bench::luby_glauber_factory(m), 5, 50000, 31);
    deltas.push_back(delta);
    lm_rounds.push_back(lm.mean_lower_bound());
    t.begin_row()
        .cell(n)
        .cell(delta)
        .cell(q)
        .cell(lm.mean_lower_bound(), 1)
        .cell(lg.mean_lower_bound(), 1)
        .cell(lg.mean_lower_bound() / lm.mean_lower_bound(), 2)
        .cell(std::to_string(lm.censored) + "/" + std::to_string(lg.censored));
  }
  t.print(std::cout);
  std::cout << "paper: LM rounds = O(log n) independent of Delta; LG rounds "
               "= O(Delta log n).\n"
            << "slope of LM rounds vs Delta: "
            << util::ls_slope(deltas, lm_rounds)
            << " (expected near 0; compare the growing LG/LM ratio).\n";
}

void fixed_delta_log_n() {
  util::print_banner(std::cout,
                     "E2b: LocalMetropolis rounds vs n (Delta=8, q=32)");
  util::Table t({"n", "measured rounds", "rounds/ln(n)", "censored"});
  util::Rng grng(5);
  for (int n : {128, 512, 2048, 8192}) {
    const auto g = graph::make_random_regular(n, 8, grng);
    const mrf::Mrf m = mrf::make_proper_coloring(g, 32);
    const auto lm = bench::measure_coalescence(
        m, bench::local_metropolis_factory(m), 5, 50000, 37);
    t.begin_row()
        .cell(n)
        .cell(lm.mean_lower_bound(), 1)
        .cell(lm.mean_lower_bound() / std::log(n), 3)
        .cell(lm.censored);
  }
  t.print(std::cout);
  std::cout << "expect rounds/ln(n) approximately constant (Thm 1.2).\n";
}

// What the Theorem 1.2 budget charges vs what mixing actually costs on the
// guarded E2 workload (n=900, Delta=30, q=108) — and what the facade's
// adaptive stopping rules pay in its place.
void budget_vs_empirical() {
  util::Rng grng(7);
  const int n = 900, delta = 30, q = 108;
  const auto g = graph::make_random_regular(n, delta, grng);
  const mrf::Mrf m = mrf::make_proper_coloring(g, q);
  const auto budget = core::coloring_round_budget(
      n, delta, q, core::Algorithm::local_metropolis, 0.01);
  bench::print_budget_vs_empirical(m, core::Algorithm::local_metropolis,
                                   budget,
                                   bench::local_metropolis_factory(m), 6, 43);
}

}  // namespace

int main() {
  std::cout << "Experiment E2 — LocalMetropolis O(log n) mixing (Thm 1.2)\n";
  growing_delta();
  fixed_delta_log_n();
  budget_vs_empirical();
  return 0;
}
