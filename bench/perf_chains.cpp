// Throughput of the chains (google-benchmark): cost of one round across
// models and sizes, per-vertex-update normalization, the compiled-view vs
// seed-path marginal kernel, and rounds under the ParallelEngine.
#include <benchmark/benchmark.h>

#include "chains/engine.hpp"
#include "chains/glauber.hpp"
#include "chains/init.hpp"
#include "chains/kernels.hpp"
#include "chains/local_metropolis.hpp"
#include "chains/luby_glauber.hpp"
#include "graph/generators.hpp"
#include "mrf/compiled.hpp"
#include "mrf/models.hpp"

namespace {

using namespace lsample;

struct Fixture {
  mrf::Mrf m;
  mrf::Config x;
};

Fixture make_coloring_fixture(int n) {
  auto g = graph::make_torus(n, n);
  mrf::Mrf m = mrf::make_proper_coloring(g, 10);
  mrf::Config x = chains::greedy_feasible_config(m);
  return {std::move(m), std::move(x)};
}

void BM_GlauberSweep(benchmark::State& state) {
  Fixture f = make_coloring_fixture(static_cast<int>(state.range(0)));
  chains::GlauberChain chain(f.m, 1);
  std::int64_t t = 0;
  for (auto _ : state) {
    for (int s = 0; s < f.m.n(); ++s) chain.step(f.x, t++);
    benchmark::DoNotOptimize(f.x.data());
  }
  state.SetItemsProcessed(state.iterations() * f.m.n());
}
BENCHMARK(BM_GlauberSweep)->Arg(16)->Arg(32)->Arg(64);

void BM_LubyGlauberRound(benchmark::State& state) {
  Fixture f = make_coloring_fixture(static_cast<int>(state.range(0)));
  chains::LubyGlauberChain chain(f.m, 1);
  std::int64_t t = 0;
  for (auto _ : state) {
    chain.step(f.x, t++);
    benchmark::DoNotOptimize(f.x.data());
  }
  state.SetItemsProcessed(state.iterations() * f.m.n());
}
BENCHMARK(BM_LubyGlauberRound)->Arg(16)->Arg(32)->Arg(64);

void BM_LocalMetropolisRound(benchmark::State& state) {
  Fixture f = make_coloring_fixture(static_cast<int>(state.range(0)));
  chains::LocalMetropolisChain chain(f.m, 1);
  std::int64_t t = 0;
  for (auto _ : state) {
    chain.step(f.x, t++);
    benchmark::DoNotOptimize(f.x.data());
  }
  state.SetItemsProcessed(state.iterations() * f.m.n());
}
BENCHMARK(BM_LocalMetropolisRound)->Arg(16)->Arg(32)->Arg(64);

void BM_LocalMetropolisHardcore(benchmark::State& state) {
  auto g = graph::make_torus(32, 32);
  mrf::Mrf m = mrf::make_hardcore(g, 0.5);
  mrf::Config x = chains::constant_config(m, 0);
  chains::LocalMetropolisChain chain(m, 1);
  std::int64_t t = 0;
  for (auto _ : state) {
    chain.step(x, t++);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * m.n());
}
BENCHMARK(BM_LocalMetropolisHardcore);

void BM_MarginalComputation(benchmark::State& state) {
  Fixture f = make_coloring_fixture(32);
  std::vector<double> w;
  int v = 0;
  for (auto _ : state) {
    f.m.marginal_weights(v, f.x, w);
    benchmark::DoNotOptimize(w.data());
    v = (v + 1) % f.m.n();
  }
}
BENCHMARK(BM_MarginalComputation);

void BM_CompiledMarginalComputation(benchmark::State& state) {
  Fixture f = make_coloring_fixture(32);
  const mrf::CompiledMrf cm(f.m);
  std::vector<double> w;
  int v = 0;
  for (auto _ : state) {
    cm.marginal_weights(v, f.x, w);
    benchmark::DoNotOptimize(w.data());
    v = (v + 1) % f.m.n();
  }
}
BENCHMARK(BM_CompiledMarginalComputation);

// Parallel rounds: Arg is the engine thread count on the 64x64 torus.
void BM_LubyGlauberRoundThreaded(benchmark::State& state) {
  Fixture f = make_coloring_fixture(64);
  chains::ParallelEngine engine(static_cast<int>(state.range(0)));
  chains::LubyGlauberChain chain(f.m, 1);
  chain.set_engine(&engine);
  std::int64_t t = 0;
  for (auto _ : state) {
    chain.step(f.x, t++);
    benchmark::DoNotOptimize(f.x.data());
  }
  state.SetItemsProcessed(state.iterations() * f.m.n());
}
BENCHMARK(BM_LubyGlauberRoundThreaded)->Arg(1)->Arg(2)->Arg(4);

void BM_LocalMetropolisRoundThreaded(benchmark::State& state) {
  Fixture f = make_coloring_fixture(64);
  chains::ParallelEngine engine(static_cast<int>(state.range(0)));
  chains::LocalMetropolisChain chain(f.m, 1);
  chain.set_engine(&engine);
  std::int64_t t = 0;
  for (auto _ : state) {
    chain.step(f.x, t++);
    benchmark::DoNotOptimize(f.x.data());
  }
  state.SetItemsProcessed(state.iterations() * f.m.n());
}
BENCHMARK(BM_LocalMetropolisRoundThreaded)->Arg(1)->Arg(2)->Arg(4);

}  // namespace
