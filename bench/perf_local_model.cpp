// Overhead of the message-passing LOCAL simulator relative to the in-memory
// reference chains (google-benchmark), on the compiled arena runtime —
// sequentially and node-parallel under a ParallelEngine.  The compiled-vs-
// seed-simulator comparison (with the guard) lives in perf_parallel_scaling,
// which preserves the seed implementation verbatim as its baseline.
#include <benchmark/benchmark.h>

#include "chains/engine.hpp"
#include "chains/init.hpp"
#include "chains/local_metropolis.hpp"
#include "graph/generators.hpp"
#include "local/node_programs.hpp"
#include "mrf/models.hpp"

namespace {

using namespace lsample;

void BM_SimulatorRound(benchmark::State& state) {
  util::Rng grng(1);
  const int n = static_cast<int>(state.range(0));
  const auto g = graph::make_random_regular(n, 6, grng);
  const mrf::Mrf m = mrf::make_proper_coloring(g, 24);
  const mrf::Config x0 = chains::greedy_feasible_config(m);
  local::Network net = local::make_local_metropolis_network(m, x0, 3);
  for (auto _ : state) {
    net.run_round();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SimulatorRound)->Arg(256)->Arg(1024);

void BM_SimulatorRoundThreaded(benchmark::State& state) {
  util::Rng grng(1);
  const int n = 1024;
  const int threads = static_cast<int>(state.range(0));
  const auto g = graph::make_random_regular(n, 6, grng);
  const mrf::Mrf m = mrf::make_proper_coloring(g, 24);
  const mrf::Config x0 = chains::greedy_feasible_config(m);
  chains::ParallelEngine engine(threads);
  local::Network net = local::make_local_metropolis_network(m, x0, 3);
  net.set_engine(&engine);
  for (auto _ : state) {
    net.run_round();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SimulatorRoundThreaded)->Arg(1)->Arg(2)->Arg(4);

void BM_ReferenceChainRound(benchmark::State& state) {
  util::Rng grng(1);
  const int n = static_cast<int>(state.range(0));
  const auto g = graph::make_random_regular(n, 6, grng);
  const mrf::Mrf m = mrf::make_proper_coloring(g, 24);
  mrf::Config x = chains::greedy_feasible_config(m);
  chains::LocalMetropolisChain chain(m, 3);
  std::int64_t t = 0;
  for (auto _ : state) {
    chain.step(x, t++);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ReferenceChainRound)->Arg(256)->Arg(1024);

}  // namespace
