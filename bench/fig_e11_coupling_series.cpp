// Experiment E11 — the combinatorial core of the §4.2.3 global coupling:
// disagreement percolates along strongly self-avoiding walks, each of length
// l contributing (2/q)^{l-1}.  Lemma 4.12 bounds the resulting series by a
// fixpoint; here we enumerate SSAWs on concrete graphs and compare the true
// series with that bound across q/Delta ratios.
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "graph/generators.hpp"
#include "inference/ssaw.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace lsample;

int main_impl() {
  std::cout << "Experiment E11 — SSAW disagreement series vs the Lemma 4.12 "
               "fixpoint bound\n";

  util::print_banner(std::cout, "SSAW counts by length (Delta=4, n=48)");
  util::Rng grng(3);
  const auto reg = graph::make_random_regular(48, 4, grng);
  const auto counts = inference::count_ssaws(*reg, 0, 10);
  util::Table tc({"length l", "# SSAWs from v0", "naive walks Delta^l"});
  double pow_d = 1.0;
  for (int l = 1; l <= 10; ++l) {
    pow_d *= 4.0;
    tc.begin_row()
        .cell(l)
        .cell(counts[static_cast<std::size_t>(l)])
        .cell(pow_d, 0);
  }
  tc.print(std::cout);
  std::cout << "strong self-avoidance prunes the walk tree far below "
               "Delta^l — this is what keeps the series summable.\n";

  util::print_banner(std::cout,
                     "series S = sum (2/q)^{l-1} vs bound q*Delta/(q-2Delta+2)");
  util::Table t({"graph", "Delta", "q/Delta", "series S", "fixpoint bound",
                 "bound holds"});
  struct Case {
    std::string name;
    std::shared_ptr<graph::Graph> g;
    int delta;
  };
  std::vector<Case> cases;
  cases.push_back({"random 4-regular n=48", reg, 4});
  cases.push_back({"torus 6x6", graph::make_torus(6, 6), 4});
  cases.push_back({"random 6-regular n=36",
                   graph::make_random_regular(36, 6, grng), 6});
  for (const auto& c : cases) {
    for (double alpha : {3.2, 3.45, 3.7}) {
      const double q = alpha * c.delta;
      if (q <= 2.0 * c.delta - 2.0) continue;
      const double series =
          inference::ssaw_series(*c.g, 0, 2.0 / q, 12);
      const double bound = q * c.delta / (q - 2.0 * c.delta + 2.0);
      t.begin_row()
          .cell(c.name)
          .cell(c.delta)
          .cell(alpha, 2)
          .cell(series, 4)
          .cell(bound, 4)
          .cell(series <= bound ? "yes" : "NO");
    }
  }
  t.print(std::cout);
  std::cout << "the enumerated series sits below the Lemma 4.12 fixpoint in "
               "its regime (3*Delta < q), with slack that shrinks as q/Delta "
               "decreases — the analysis is tight at the threshold.\n";

  // The series is the combinatorial engine behind the coupling's contraction;
  // here is the same regime measured pathwise.  Trials run replica-parallel
  // (chains/replicas.hpp), and censored trials — pairs still disagreeing at
  // the budget — are reported separately instead of being averaged in as if
  // the budget were a coalescence time.
  util::print_banner(std::cout,
                     "measured LocalMetropolis coalescence across q/Delta "
                     "(random 4-regular n=48, 8 trials)");
  util::Table mt({"q/Delta", "q", "mean rounds (uncensored)",
                  "p90 (uncensored)", "censored/trials"});
  const std::int64_t budget = 4000;
  for (double alpha : {3.2, 3.45, 3.7}) {
    const int q = static_cast<int>(std::ceil(alpha * 4));
    const mrf::Mrf m = mrf::make_proper_coloring(reg, q);
    const auto res = bench::measure_coalescence(
        m, bench::local_metropolis_factory(m), 8, budget, 41);
    mt.begin_row()
        .cell(alpha, 2)
        .cell(q)
        .cell(res.mean(), 1)
        .cell(res.quantile(0.9), 1)
        .cell(std::to_string(res.censored) + "/" +
              std::to_string(res.trials()));
  }
  mt.print(std::cout);
  std::cout << "coalescence shrinks as q/Delta grows, mirroring the series' "
               "slack; a nonzero censored count means the budget of "
            << budget << " rounds was exhausted, not that coalescence took "
            << budget << " rounds.\n";
  return 0;
}

}  // namespace

int main() { return main_impl(); }
