// Experiment E7 — the Remark after Theorem 3.2: LubyGlauber works with ANY
// independent-set scheduler with selection probability Pr[v in I] >= gamma,
// mixing in O(1/((1-alpha) gamma) log(n/eps)) rounds.  Ablation: measured
// coalescence rounds across schedulers should scale like 1/gamma, i.e.
// rounds * gamma is roughly constant.
#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "chains/schedulers.hpp"
#include "util/summary.hpp"

namespace {

using namespace lsample;

int main_impl() {
  std::cout << "Experiment E7 — scheduler ablation (Remark after Thm 3.2)\n";
  util::Rng grng(9);
  const int n = 128;
  const int delta = 4;
  const auto g = graph::make_random_regular(n, delta, grng);
  const int q = 10;  // q > 2*Delta: Dobrushin holds, alpha = 4/6
  const mrf::Mrf m = mrf::make_proper_coloring(g, q);

  struct Spec {
    std::string name;
    std::function<std::unique_ptr<chains::IndependentSetScheduler>(
        std::uint64_t)> make;
  };
  const std::vector<Spec> specs = {
      {"luby",
       [&](std::uint64_t s) {
         return std::make_unique<chains::LubyScheduler>(g, s);
       }},
      {"slack-luby p=0.5",
       [&](std::uint64_t s) {
         return std::make_unique<chains::SlackLubyScheduler>(g, 0.5, s);
       }},
      {"slack-luby p=0.15",
       [&](std::uint64_t s) {
         return std::make_unique<chains::SlackLubyScheduler>(g, 0.15, s);
       }},
      {"chromatic",
       [&](std::uint64_t s) {
         return std::make_unique<chains::ChromaticScheduler>(g, s);
       }},
  };

  // Censored-aware lower-bound mean (equal to the plain mean whenever no
  // trial exhausts the 200000-round budget).
  util::Table t({"scheduler", "gamma lower bound", "mean rounds",
                 "rounds * gamma", "censored"});
  for (const auto& spec : specs) {
    const double gamma = spec.make(1)->gamma_lower_bound();
    const chains::ChainFactory factory = [&m, &spec](std::uint64_t seed) {
      return std::unique_ptr<chains::Chain>(
          new chains::LubyGlauberChain(m, seed, spec.make(seed)));
    };
    const auto res = bench::measure_coalescence(m, factory, 6, 200000, 53);
    t.begin_row()
        .cell(spec.name)
        .cell(gamma, 4)
        .cell(res.mean_lower_bound(), 1)
        .cell(res.mean_lower_bound() * gamma, 2)
        .cell(res.censored);
  }
  t.print(std::cout);
  std::cout << "paper: tau = O(1/((1-alpha) gamma) log(n/eps)); the last "
               "column should be of the same order across schedulers (the "
               "gamma bound is loose for slack-Luby, so its product reads "
               "lower).\n";
  return 0;
}

}  // namespace

int main() { return main_impl(); }
