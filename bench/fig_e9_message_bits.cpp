// Experiment E9 — the paper's claim (end of §1.1) that neither algorithm
// abuses the LOCAL model: "each message is of O(log n) bits for a polynomial
// domain size q = poly(n)".  The LOCAL simulator accounts bits per message.
#include <cmath>
#include <iostream>

#include "chains/init.hpp"
#include "graph/generators.hpp"
#include "local/node_programs.hpp"
#include "mrf/models.hpp"
#include "util/table.hpp"

namespace {

using namespace lsample;

int main_impl() {
  std::cout << "Experiment E9 — message complexity in the LOCAL model\n";

  util::print_banner(std::cout,
                     "bits per message vs q (LocalMetropolis: 2 spins; "
                     "LubyGlauber: 64-bit priority + 1 spin)");
  util::Table t({"q", "LM bits/msg", "LG bits/msg", "2*ceil(log2 q)"});
  util::Rng grng(3);
  const auto g = graph::make_random_regular(64, 4, grng);
  for (int q : {4, 16, 64, 1024}) {
    const mrf::Mrf m = mrf::make_proper_coloring(g, q);
    const mrf::Config x0 = chains::greedy_feasible_config(m);
    local::Network lm = local::make_local_metropolis_network(m, x0, 5);
    lm.run_rounds(10);
    local::Network lg = local::make_luby_glauber_network(m, x0, 5);
    lg.run_rounds(10);
    t.begin_row()
        .cell(q)
        .cell(static_cast<std::int64_t>(lm.stats().bits / lm.stats().messages))
        .cell(static_cast<std::int64_t>(lg.stats().bits / lg.stats().messages))
        .cell(2 * local::spin_bits(q));
  }
  t.print(std::cout);
  std::cout << "LM messages are exactly 2 ceil(log2 q) bits = O(log n) for "
               "q = poly(n); LG adds one priority, which the paper notes can "
               "be discretized to O(log n) bits (we transmit 64).\n";

  util::print_banner(std::cout, "messages per round = 2|E| (both protocols)");
  util::Table t2({"n", "Delta", "messages/round", "2|E|"});
  for (int n : {64, 256}) {
    const auto gg = graph::make_random_regular(n, 6, grng);
    const mrf::Mrf m = mrf::make_proper_coloring(gg, 20);
    const mrf::Config x0 = chains::greedy_feasible_config(m);
    local::Network net = local::make_local_metropolis_network(m, x0, 7);
    net.run_rounds(5);
    t2.begin_row()
        .cell(n)
        .cell(gg->max_degree())
        .cell(static_cast<std::int64_t>(net.stats().messages / 5))
        .cell(static_cast<std::int64_t>(2 * gg->num_edges()));
  }
  t2.print(std::cout);
  return 0;
}

}  // namespace

int main() { return main_impl(); }
