// Experiment E9 — the paper's claim (end of §1.1) that neither algorithm
// abuses the LOCAL model: "each message is of O(log n) bits for a polynomial
// domain size q = poly(n)".  The LOCAL simulator accounts bits per message.
//
// The LubyGlauber priority is the one quantity that is NOT O(log n) when
// transmitted as a full double, and the paper notes it can be discretized.
// The discretized column MEASURES that claim instead of hardcoding it: the
// network is run with the O(log n)-bit budget of
// local::discretized_priority_bits(n), messages are accounted at the budget,
// and the "flips" column counts how many priority comparisons would have
// resolved differently had only the budgeted bits been transmitted (0 means
// the discretized protocol takes the exact same trajectory).
//
// The sharded section puts the same budget on an actual wire: the network is
// partitioned into shards exchanging only boundary ("halo") slots, and the
// serialized bytes per round per cut edge are measured against the O(log n)
// budget.  The driver exits non-zero if any priority comparison flips or the
// sharded trajectory diverges from the unsharded one, so CI enforces both
// claims.
#include <cmath>
#include <iostream>

#include "chains/init.hpp"
#include "graph/generators.hpp"
#include "local/node_programs.hpp"
#include "local/sharding.hpp"
#include "mrf/models.hpp"
#include "util/table.hpp"

namespace {

using namespace lsample;

int main_impl() {
  std::cout << "Experiment E9 — message complexity in the LOCAL model\n";
  int failures = 0;

  util::Rng grng(3);
  const auto g = graph::make_random_regular(64, 4, grng);
  const int bits_logn = local::discretized_priority_bits(g->num_vertices());

  util::print_banner(std::cout,
                     "bits per message vs q (LocalMetropolis: 2 spins; "
                     "LubyGlauber: priority + 1 spin, full-double vs "
                     "O(log n)-bit priority)");
  util::Table t({"q", "LM bits/msg", "LG bits/msg (64-bit prio)",
                 "LG bits/msg (O(log n) prio)", "prio flips", "2*ceil(log2 q)"});
  for (int q : {4, 16, 64, 1024}) {
    const mrf::Mrf m = mrf::make_proper_coloring(g, q);
    const mrf::Config x0 = chains::greedy_feasible_config(m);
    local::Network lm = local::make_local_metropolis_network(m, x0, 5);
    lm.run_rounds(10);
    local::Network lg = local::make_luby_glauber_network(m, x0, 5);
    lg.run_rounds(10);
    local::LubyGlauberNetOptions disc;
    disc.priority_bits = bits_logn;
    local::Network lgd = local::make_luby_glauber_network(m, x0, 5, disc);
    lgd.run_rounds(10);
    const auto* table =
        dynamic_cast<const local::LubyGlauberTable*>(lgd.table());
    if (table != nullptr && table->quantized_comparison_flips() != 0)
      ++failures;
    t.begin_row()
        .cell(q)
        .cell(static_cast<std::int64_t>(lm.stats().bits / lm.stats().messages))
        .cell(static_cast<std::int64_t>(lg.stats().bits / lg.stats().messages))
        .cell(static_cast<std::int64_t>(lgd.stats().bits /
                                        lgd.stats().messages))
        .cell(table != nullptr ? table->quantized_comparison_flips() : -1)
        .cell(2 * local::spin_bits(q));
  }
  t.print(std::cout);
  std::cout << "LM messages are exactly 2 ceil(log2 q) bits = O(log n) for "
               "q = poly(n).  LG adds one priority: at the "
            << bits_logn << "-bit O(log n) budget for n = "
            << g->num_vertices()
            << " every priority comparison of these runs resolves exactly as "
               "at full precision (flips = 0), so the discretization the "
               "paper appeals to is measured, not assumed.\n";

  util::print_banner(std::cout, "messages per round = 2|E| (both protocols)");
  util::Table t2({"n", "Delta", "messages/round", "2|E|"});
  for (int n : {64, 256}) {
    const auto gg = graph::make_random_regular(n, 6, grng);
    const mrf::Mrf m = mrf::make_proper_coloring(gg, 20);
    const mrf::Config x0 = chains::greedy_feasible_config(m);
    local::Network net = local::make_local_metropolis_network(m, x0, 7);
    net.run_rounds(5);
    t2.begin_row()
        .cell(n)
        .cell(gg->max_degree())
        .cell(static_cast<std::int64_t>(net.stats().messages / 5))
        .cell(static_cast<std::int64_t>(2 * gg->num_edges()));
  }
  t2.print(std::cout);

  util::print_banner(std::cout,
                     "sharded halo traffic at the O(log n)-bit budget "
                     "(LubyGlauber, discretized priority, 4 shards)");
  util::Table t3({"n", "shards", "cut edges", "halo B/round",
                  "B/round/cut-edge", "sem bits/msg", "budget bits", "flips",
                  "bitwise == unsharded"});
  for (int n : {1024, 4096}) {
    const auto gg = graph::make_random_regular(n, 6, grng);
    const int budget = local::discretized_priority_bits(n);
    const mrf::Mrf m = mrf::make_proper_coloring(gg, 20);
    const mrf::Config x0 = chains::greedy_feasible_config(m);
    local::LubyGlauberNetOptions disc;
    disc.priority_bits = budget;
    const std::int64_t rounds = 10;

    local::Network flat = local::make_luby_glauber_network(m, x0, 11, disc);
    flat.run_rounds(rounds);

    local::ShardedNetwork::Options opt;
    opt.partition.num_shards = 4;
    local::ShardedNetwork net = local::make_sharded_luby_glauber_network(
        m, x0, 11, std::move(opt), disc);
    net.run_rounds(rounds);

    const local::HaloStats& halo = net.halo_stats();
    const auto* table =
        dynamic_cast<const local::LubyGlauberTable*>(net.table());
    const std::int64_t flips =
        table != nullptr ? table->quantized_comparison_flips() : -1;
    const bool bitwise_equal = net.outputs() == flat.outputs() &&
                               net.stats() == flat.stats();
    if (flips != 0 || !bitwise_equal) ++failures;
    t3.begin_row()
        .cell(n)
        .cell(net.num_shards())
        .cell(net.quality().cut_edges)
        .cell(halo.wire_bytes / rounds)
        .cell(static_cast<double>(halo.wire_bytes) /
                  (static_cast<double>(rounds) * halo.cut_slots),
              2)
        .cell(halo.halo_messages > 0
                  ? static_cast<std::int64_t>(halo.semantic_bits /
                                              halo.halo_messages)
                  : 0)
        .cell(budget)
        .cell(flips)
        .cell(bitwise_equal ? "yes" : "NO");
  }
  t3.print(std::cout);
  std::cout << "Each directed cut slot ships an 8-byte frame header plus its "
               "payload words every round, so bytes/round/cut-edge is flat in "
               "n while the O(log n) budget grows — the distributed message "
               "size the paper promises, measured on serialized bytes.  The "
               "sharded trajectory stays bit-identical to the unsharded "
               "network (and any flip or divergence fails this driver).\n";
  if (failures != 0)
    std::cout << "E9 FAILED: " << failures
              << " section(s) saw comparison flips or sharded divergence\n";
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main() { return main_impl(); }
