// Experiment E8 — the weighted-local-CSP remarks in §3 and §4: both
// algorithms extend beyond pairwise MRFs.  Exact stationarity on small
// dominating-set instances plus sampling statistics on a grid.
#include <iostream>
#include <memory>

#include "csp/csp_chains.hpp"
#include "csp/csp_exact.hpp"
#include "csp/csp_models.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "inference/exact.hpp"
#include "util/summary.hpp"
#include "util/table.hpp"

namespace {

using namespace lsample;

void exact_checks() {
  util::print_banner(std::cout,
                     "E8a: exact stationarity of the CSP generalizations");
  struct Case {
    std::string name;
    csp::FactorGraph fg;
  };
  std::vector<Case> cases;
  cases.push_back(
      {"dominating P4 l=1.5", csp::make_dominating_set(*graph::make_path(4), 1.5)});
  cases.push_back(
      {"dominating C5 l=1", csp::make_dominating_set(*graph::make_cycle(5), 1.0)});
  cases.push_back({"NAE 3-uniform",
                   csp::make_hypergraph_nae(5, 2, {{0, 1, 2}, {2, 3, 4}})});

  util::Table t({"model", "chain", "||muP-mu||_1", "max DB violation"});
  for (const auto& c : cases) {
    const inference::StateSpace ss(c.fg.n(), c.fg.q());
    const auto mu = csp::csp_gibbs_distribution(c.fg, ss);
    const auto p_lg = csp::csp_luby_glauber_transition(c.fg, ss);
    const auto p_lm = csp::csp_local_metropolis_transition(c.fg, ss);
    t.begin_row()
        .cell(c.name)
        .cell("CspLubyGlauber")
        .cell(inference::stationarity_error(p_lg, mu), 12)
        .cell(inference::detailed_balance_error(p_lg, mu), 12);
    t.begin_row()
        .cell(c.name)
        .cell("CspLocalMetropolis")
        .cell(inference::stationarity_error(p_lm, mu), 12)
        .cell(inference::detailed_balance_error(p_lm, mu), 12);
  }
  t.print(std::cout);
}

void grid_sampling() {
  util::print_banner(std::cout,
                     "E8b: sampling dominating sets of a 6x6 grid (lambda=1)");
  const auto g = graph::make_grid(6, 6);
  const csp::FactorGraph fg = csp::make_dominating_set(*g, 1.0);
  // One compiled view shared by every run (compiling per run would rebuild
  // the table pool and conflict graph 300 times per chain).
  const auto cfg = std::make_shared<const csp::CompiledFactorGraph>(fg);
  util::Table t({"chain", "rounds", "valid fraction", "mean |S|/n"});
  for (const std::string which : {"CspLubyGlauber", "CspLocalMetropolis"}) {
    const int runs = 300;
    const int rounds = which == "CspLubyGlauber" ? 400 : 120;
    int valid = 0;
    double size_sum = 0.0;
    for (int r = 0; r < runs; ++r) {
      csp::Config x(static_cast<std::size_t>(fg.n()), 1);
      if (which == "CspLubyGlauber") {
        csp::CspLubyGlauberChain chain(cfg,
                                       100 + static_cast<std::uint64_t>(r));
        for (int s = 0; s < rounds; ++s) chain.step(x, s);
      } else {
        csp::CspLocalMetropolisChain chain(cfg,
                                           100 + static_cast<std::uint64_t>(r));
        for (int s = 0; s < rounds; ++s) chain.step(x, s);
      }
      if (fg.feasible(x)) ++valid;
      int size = 0;
      for (int s : x) size += s;
      size_sum += static_cast<double>(size) / fg.n();
    }
    t.begin_row()
        .cell(which)
        .cell(rounds)
        .cell(static_cast<double>(valid) / runs, 3)
        .cell(size_sum / runs, 3);
  }
  t.print(std::cout);
  std::cout << "both samplers stay inside the dominating-set polytope and "
               "agree on the mean density (uniform-over-dominating-sets "
               "measure).\n";
}

}  // namespace

int main() {
  std::cout << "Experiment E8 — weighted local CSPs (remarks in §3/§4)\n";
  exact_checks();
  grid_sampling();
  return 0;
}
