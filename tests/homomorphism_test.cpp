// Graph-homomorphism MRFs (§1 lists them among the motivating models),
// including the Widom-Rowlinson specialization.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "inference/exact.hpp"
#include "inference/transition.hpp"
#include "mrf/models.hpp"

namespace lsample::mrf {
namespace {

TEST(Homomorphism, CompleteTargetRecoversProperColoring) {
  const auto g = graph::make_cycle(4);
  const int q = 3;
  std::vector<int> kq(static_cast<std::size_t>(q) * q, 1);
  for (int i = 0; i < q; ++i) kq[static_cast<std::size_t>(i * q + i)] = 0;
  const Mrf hom = make_homomorphism(g, q, kq);
  const Mrf col = make_proper_coloring(g, q);
  const inference::StateSpace ss(4, 3);
  const auto mu_hom = inference::gibbs_distribution(hom, ss);
  const auto mu_col = inference::gibbs_distribution(col, ss);
  for (std::int64_t i = 0; i < ss.size(); ++i)
    EXPECT_DOUBLE_EQ(mu_hom[static_cast<std::size_t>(i)],
                     mu_col[static_cast<std::size_t>(i)]);
}

TEST(Homomorphism, LoopedEdgeTargetRecoversIndependentSets) {
  // H: vertex 0 with a loop joined to vertex 1 without a loop = hardcore.
  const auto g = graph::make_path(4);
  const Mrf hom = make_homomorphism(g, 2, {1, 1, 1, 0});
  const Mrf hc = make_uniform_independent_set(g);
  const inference::StateSpace ss(4, 2);
  const auto a = inference::gibbs_distribution(hom, ss);
  const auto b = inference::gibbs_distribution(hc, ss);
  for (std::int64_t i = 0; i < ss.size(); ++i)
    EXPECT_DOUBLE_EQ(a[static_cast<std::size_t>(i)],
                     b[static_cast<std::size_t>(i)]);
}

TEST(Homomorphism, RejectsAsymmetricTargets) {
  const auto g = graph::make_path(2);
  EXPECT_THROW((void)make_homomorphism(g, 2, {1, 1, 0, 1}),
               std::invalid_argument);
  EXPECT_THROW((void)make_homomorphism(g, 2, {1, 2, 2, 1}),
               std::invalid_argument);
}

TEST(WidomRowlinson, SpeciesExcludeEachOther) {
  const auto g = graph::make_path(2);
  const Mrf wr = make_widom_rowlinson(g, 1.0);
  EXPECT_TRUE(wr.feasible({0, 0}));
  EXPECT_TRUE(wr.feasible({1, 1}));
  EXPECT_TRUE(wr.feasible({1, 0}));
  EXPECT_TRUE(wr.feasible({2, 2}));
  EXPECT_FALSE(wr.feasible({1, 2}));
  EXPECT_FALSE(wr.feasible({2, 1}));
}

TEST(WidomRowlinson, PartitionFunctionOnAnEdge) {
  // 9 pairs minus the two mixed-species pairs, all at lambda = 1 -> Z = 7.
  const auto g = graph::make_path(2);
  const Mrf wr = make_widom_rowlinson(g, 1.0);
  const inference::StateSpace ss(2, 3);
  EXPECT_NEAR(inference::partition_function(wr, ss), 7.0, 1e-12);
  // With lambda: Z = 1 + 4*lambda + 2*lambda^2 ... enumerate:
  // (0,0)=1; (0,s),(s,0) s in {1,2}: 4 terms lambda; (1,1),(2,2): lambda^2.
  const double lam = 2.5;
  const Mrf wr2 = make_widom_rowlinson(g, lam);
  EXPECT_NEAR(inference::partition_function(wr2, ss),
              1.0 + 4.0 * lam + 2.0 * lam * lam, 1e-12);
}

TEST(WidomRowlinson, BothAlgorithmsAreReversibleForIt) {
  const auto g = graph::make_path(3);
  const Mrf wr = make_widom_rowlinson(g, 1.7);
  const inference::StateSpace ss(3, 3);
  const auto mu = inference::gibbs_distribution(wr, ss);
  const auto p_lg = inference::luby_glauber_transition(wr, ss);
  const auto p_lm = inference::local_metropolis_transition(wr, ss);
  EXPECT_LT(inference::stationarity_error(p_lg, mu), 1e-9);
  EXPECT_LT(inference::detailed_balance_error(p_lg, mu), 1e-9);
  EXPECT_LT(inference::stationarity_error(p_lm, mu), 1e-9);
  EXPECT_LT(inference::detailed_balance_error(p_lm, mu), 1e-9);
}

}  // namespace
}  // namespace lsample::mrf
