// Cross-cutting property sweeps: symmetry invariances, exact Luby-step set
// distribution, simulator/chain equivalence across a model grid, and
// full-configuration uniformity of the samplers.
#include <gtest/gtest.h>

#include <map>

#include "chains/chain.hpp"
#include "chains/init.hpp"
#include "chains/local_metropolis.hpp"
#include "chains/luby_glauber.hpp"
#include "chains/schedulers.hpp"
#include "graph/generators.hpp"
#include "inference/exact.hpp"
#include "local/node_programs.hpp"
#include "mrf/models.hpp"
#include "util/rng.hpp"

namespace lsample {
namespace {

// The LocalMetropolis edge filter must be invariant under swapping the
// edge's endpoints (the product of the three normalized factors is a
// multiset invariant because A is symmetric) — this is what lets the two
// endpoints of an edge agree on the check without extra communication.
TEST(Invariants, EdgePassProbIsEndpointSymmetric) {
  const auto g = graph::make_path(2);
  for (const mrf::Mrf& m :
       {mrf::make_ising(g, 0.7, 0.2), mrf::make_potts(g, 4, -0.5),
        mrf::make_proper_coloring(g, 4), mrf::make_widom_rowlinson(g, 1.3)}) {
    for (int su = 0; su < m.q(); ++su)
      for (int sv = 0; sv < m.q(); ++sv)
        for (int xu = 0; xu < m.q(); ++xu)
          for (int xv = 0; xv < m.q(); ++xv)
            EXPECT_NEAR(m.edge_pass_prob(0, su, sv, xu, xv),
                        m.edge_pass_prob(0, sv, su, xv, xu), 1e-14);
  }
}

// The empirical distribution of Luby-step independent sets must match the
// exact distribution over priority orderings.
TEST(Invariants, LubySetDistributionMatchesPermutationModel) {
  const auto g = graph::make_cycle(5);
  chains::LubyScheduler sched(g, 31);
  std::map<std::uint32_t, int> counts;
  const int rounds = 60000;
  std::vector<char> sel;
  for (int t = 0; t < rounds; ++t) {
    sched.select(t, sel);
    std::uint32_t mask = 0;
    for (int v = 0; v < 5; ++v)
      if (sel[static_cast<std::size_t>(v)] != 0) mask |= 1u << v;
    ++counts[mask];
  }
  // On C5 the Luby step selects either one vertex (5 masks) or two
  // non-adjacent vertices (5 masks).  By symmetry each single-vertex mask
  // has the same probability p1, each pair mask p2, with 5 p1 + 5 p2 = 1.
  // Exact: a specific vertex is the unique selection iff it beats all in a
  // pattern; compute from the permutation model: for C5, P(I = {v}) =
  // #perms where v is a local max and no other local max... easier: check
  // empirical symmetry and that pair masks are likelier than singletons
  // (E|I| = 5/3 > 1 on C5 since each vertex is selected w.p. 1/3).
  double singles = 0;
  double pairs = 0;
  for (const auto& [mask, c] : counts) {
    const int bits = __builtin_popcount(mask);
    ASSERT_TRUE(bits == 1 || bits == 2) << "mask " << mask;
    (bits == 1 ? singles : pairs) += c;
  }
  // E[|I|] = 5 * 1/3: singles + 2*pairs = 5/3 * rounds.
  EXPECT_NEAR((singles + 2 * pairs) / rounds, 5.0 / 3.0, 0.02);
}

// Simulator-vs-chain equality across a grid of models (beyond colorings).
struct EquivCase {
  std::string name;
  std::function<mrf::Mrf()> make;
};

class SimulatorEquivalenceSuite : public ::testing::TestWithParam<EquivCase> {
};

TEST_P(SimulatorEquivalenceSuite, LubyGlauberNodesMatchChain) {
  const mrf::Mrf m = GetParam().make();
  const mrf::Config x0 = chains::greedy_feasible_config(m);
  local::Network net = local::make_luby_glauber_network(m, x0, 77);
  chains::LubyGlauberChain chain(m, 77);
  mrf::Config x = x0;
  net.run_rounds(20);
  chains::run(chain, x, 0, 19);
  EXPECT_EQ(net.outputs(), x);
}

TEST_P(SimulatorEquivalenceSuite, LocalMetropolisNodesMatchChain) {
  const mrf::Mrf m = GetParam().make();
  const mrf::Config x0 = chains::greedy_feasible_config(m);
  local::Network net = local::make_local_metropolis_network(m, x0, 78);
  chains::LocalMetropolisChain chain(m, 78);
  mrf::Config x = x0;
  net.run_rounds(20);
  chains::run(chain, x, 0, 19);
  EXPECT_EQ(net.outputs(), x);
}

std::vector<EquivCase> equivalence_cases() {
  return {
      {"ising_torus",
       [] { return mrf::make_ising(graph::make_torus(4, 4), 0.5, -0.2); }},
      {"potts_grid",
       [] { return mrf::make_potts(graph::make_grid(3, 5), 4, 0.6); }},
      {"hardcore_hypercube",
       [] { return mrf::make_hardcore(graph::make_hypercube(4), 1.2); }},
      {"widom_rowlinson_cycle",
       [] { return mrf::make_widom_rowlinson(graph::make_cycle(12), 1.5); }},
      {"list_coloring_path",
       [] {
         return mrf::make_list_coloring(
             graph::make_path(8), 6,
             {{0, 1, 2, 3}, {1, 2, 3, 4}, {2, 3, 4, 5}, {0, 2, 4}, {1, 3, 5},
              {0, 1, 4, 5}, {0, 3, 4, 5}, {1, 2, 5}});
       }},
  };
}

INSTANTIATE_TEST_SUITE_P(Models, SimulatorEquivalenceSuite,
                         ::testing::ValuesIn(equivalence_cases()),
                         [](const auto& test_info) { return test_info.param.name; });

// Full-configuration chi-square: LocalMetropolis on a 3-path with q=4 must
// produce every proper coloring with equal frequency (the strongest
// statistical uniformity check we run).
TEST(Invariants, LocalMetropolisUniformOverAllProperColorings) {
  const auto g = graph::make_path(3);
  const int q = 4;
  const mrf::Mrf m = mrf::make_proper_coloring(g, q);
  const inference::StateSpace ss(3, q);
  const auto mu = inference::gibbs_distribution(m, ss);
  std::map<std::int64_t, int> counts;
  const int runs = 36000;
  const mrf::Config x0 = chains::greedy_feasible_config(m);
  for (int r = 0; r < runs; ++r) {
    chains::LocalMetropolisChain chain(m, 500 + static_cast<std::uint64_t>(r));
    mrf::Config x = x0;
    chains::run(chain, x, 0, 120);
    ++counts[ss.encode(x)];
  }
  // 4*3*3 = 36 proper colorings, each expected runs/36 = 1000 times.
  double chi2 = 0.0;
  int support = 0;
  for (std::int64_t i = 0; i < ss.size(); ++i) {
    const double expected = mu[static_cast<std::size_t>(i)] * runs;
    const double got = counts.count(i) != 0 ? counts[i] : 0;
    if (expected == 0.0) {
      EXPECT_EQ(got, 0.0) << "sampled an improper coloring";
      continue;
    }
    ++support;
    chi2 += (got - expected) * (got - expected) / expected;
  }
  EXPECT_EQ(support, 36);
  // 35 dof: 99.9% quantile ~ 66.6.
  EXPECT_LT(chi2, 66.6);
}

// Feasibility preservation sweep across every chain on a soft+hard model
// mix (nothing should ever leave the support once inside).
TEST(Invariants, NoChainLeavesTheSupport) {
  util::Rng grng(9);
  const auto g = graph::make_random_regular(18, 4, grng);
  const mrf::Mrf m = mrf::make_widom_rowlinson(g, 2.0);
  const mrf::Config x0 = chains::greedy_feasible_config(m);
  chains::LubyGlauberChain lg(m, 3);
  chains::LocalMetropolisChain lm(m, 3);
  mrf::Config a = x0;
  mrf::Config b = x0;
  for (int t = 0; t < 120; ++t) {
    lg.step(a, t);
    lm.step(b, t);
    ASSERT_TRUE(m.feasible(a)) << "LubyGlauber escaped at t=" << t;
    ASSERT_TRUE(m.feasible(b)) << "LocalMetropolis escaped at t=" << t;
  }
}

}  // namespace
}  // namespace lsample
