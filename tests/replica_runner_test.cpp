// The replica layer: trial partitioning, SplitMix64 seed derivation (the
// regression against the old additive base_seed + trial scheme), shared
// compiled views, and bitwise equality of core::sample_many batches with the
// single-sample facade at every tested thread count.
#include "chains/replicas.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <vector>

#include "chains/init.hpp"
#include "chains/local_metropolis.hpp"
#include "chains/luby_glauber.hpp"
#include "chains/synchronous_glauber.hpp"
#include "core/sampler.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "mrf/compiled.hpp"
#include "mrf/models.hpp"

namespace lsample::chains {
namespace {

TEST(ReplicaRunner, EachReplicaRunsExactlyOnce) {
  for (int threads : {1, 2, 3, 4, 0}) {
    ReplicaRunner runner(threads);
    for (int replicas : {0, 1, 2, 7, 33}) {
      std::vector<std::atomic<int>> hits(static_cast<std::size_t>(replicas));
      runner.run(replicas, [&](int r) {
        hits[static_cast<std::size_t>(r)].fetch_add(1);
      });
      for (int r = 0; r < replicas; ++r)
        EXPECT_EQ(hits[static_cast<std::size_t>(r)].load(), 1)
            << "threads=" << threads << " replicas=" << replicas << " r=" << r;
    }
  }
}

TEST(ReplicaRunner, PropagatesJobExceptionsToCaller) {
  // A throwing job must surface on the caller — even when it lands on a
  // worker thread, where an uncaught exception would abort the process.
  for (int threads : {1, 2, 4}) {
    ReplicaRunner runner(threads);
    EXPECT_THROW(runner.run(16,
                            [](int r) {
                              if (r % 2 == 1)
                                throw std::runtime_error("replica failed");
                            }),
                 std::runtime_error)
        << "threads=" << threads;
    // The runner must stay usable after a failed batch.
    std::atomic<int> ran{0};
    runner.run(8, [&](int) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 8) << "threads=" << threads;
  }
}

TEST(ReplicaRunner, ZeroThreadsMeansAllHardwareThreads) {
  ReplicaRunner runner(0);
  EXPECT_EQ(runner.num_threads(), ParallelEngine::hardware_threads());
  EXPECT_THROW(ReplicaRunner(-1), std::invalid_argument);
}

TEST(ReplicaRunner, ConcurrentChainConstructionOnUnfinalizedGraphIsSafe) {
  // Factories run on worker threads and may be the first thing to touch the
  // graph's lazily-built CSR arrays: per-replica CompiledMrf construction
  // races to trigger Graph::finalize, which is double-checked and must
  // produce the same adjacency for every replica.
  auto g = std::make_shared<graph::Graph>(24);
  for (int v = 0; v < 24; ++v) g->add_edge(v, (v + 1) % 24);
  const mrf::Mrf m = mrf::make_proper_coloring(g, 8);
  const auto trajectory = [&m](int r) {
    LocalMetropolisChain chain(m, replica_seed(9, static_cast<std::uint64_t>(r)));
    mrf::Config x = constant_config(m, 0);
    for (int t = 0; t < 5; ++t) chain.step(x, t);
    return x;
  };
  // Parallel pass FIRST, while the graph is still unfinalized (a sequential
  // reference pass beforehand would finalize it and defuse the race).
  ReplicaRunner runner(4);
  std::vector<mrf::Config> got(8);
  runner.run(8, [&](int r) { got[static_cast<std::size_t>(r)] = trajectory(r); });
  std::vector<mrf::Config> expected;
  for (int r = 0; r < 8; ++r) expected.push_back(trajectory(r));
  for (int r = 0; r < 8; ++r)
    EXPECT_EQ(got[static_cast<std::size_t>(r)],
              expected[static_cast<std::size_t>(r)])
        << "r=" << r;
}

TEST(ReplicaSeed, NoCollisionsAcrossNearbyBasesAndTrials) {
  // Regression for the additive scheme: with seed = base + trial, the trial
  // streams of nearby base seeds overlap (base 1 trial 1 == base 2 trial 0),
  // so two measurements keyed by adjacent seeds silently shared
  // trajectories.  The mixed derivation must keep the whole grid distinct.
  std::set<std::uint64_t> seen;
  const int bases = 16, trials = 64;
  for (std::uint64_t base = 1; base <= bases; ++base)
    for (std::uint64_t trial = 0; trial < trials; ++trial)
      seen.insert(replica_seed(base, trial));
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(bases) * trials);
  EXPECT_NE(replica_seed(2, 0), replica_seed(1, 1));
  EXPECT_NE(replica_seed(1, 0), 1u);  // not the identity on trial 0 either
}

// ---------------------------------------------------------------------------
// Shared compiled views.
// ---------------------------------------------------------------------------

TEST(SharedCompiledView, ChainsMatchOwnedCompilation) {
  const mrf::Mrf m = mrf::make_proper_coloring(graph::make_torus(6, 6), 9);
  const auto cm = std::make_shared<const mrf::CompiledMrf>(m);
  const mrf::Config x0 = greedy_feasible_config(m);
  const auto run30 = [&](Chain& chain) {
    mrf::Config x = x0;
    for (int t = 0; t < 30; ++t) chain.step(x, t);
    return x;
  };
  for (std::uint64_t seed : {1ull, 42ull}) {
    {
      LocalMetropolisChain owned(m, seed), shared(cm, seed);
      EXPECT_EQ(run30(owned), run30(shared)) << "LM seed=" << seed;
    }
    {
      LubyGlauberChain owned(m, seed), shared(cm, seed);
      EXPECT_EQ(run30(owned), run30(shared)) << "LG seed=" << seed;
    }
    {
      SynchronousGlauberChain owned(m, seed), shared(cm, seed);
      EXPECT_EQ(run30(owned), run30(shared)) << "SG seed=" << seed;
    }
  }
}

// ---------------------------------------------------------------------------
// core::sample_many — the facade batching primitive.
// ---------------------------------------------------------------------------

TEST(SampleMany, BitIdenticalToSingleSamplesAtAnyThreadCount) {
  struct Case {
    const char* label;
    mrf::Mrf m;
  };
  std::vector<Case> cases;
  cases.push_back({"coloring torus6 q10",
                   mrf::make_proper_coloring(graph::make_torus(6, 6), 10)});
  cases.push_back(
      {"hardcore cycle12 l0.5", mrf::make_hardcore(graph::make_cycle(12), 0.5)});
  for (const auto& c : cases) {
    for (core::Algorithm alg : {core::Algorithm::luby_glauber,
                                core::Algorithm::local_metropolis}) {
      core::SamplerOptions opt;
      opt.algorithm = alg;
      opt.seed = 5;
      opt.rounds = 40;
      opt.num_replicas = 5;
      // Reference: one sample_mrf call per replica seed, single-threaded.
      std::vector<mrf::Config> expected;
      for (int r = 0; r < opt.num_replicas; ++r) {
        core::SamplerOptions single = opt;
        single.num_replicas = 1;
        single.num_threads = 1;
        single.seed = replica_seed(opt.seed, static_cast<std::uint64_t>(r));
        expected.push_back(core::sample_mrf(c.m, single).config);
      }
      for (int threads : {1, 2, 4, 0}) {  // 0 = all hardware threads
        opt.num_threads = threads;
        const auto batch = core::sample_many(c.m, opt);
        ASSERT_EQ(batch.configs.size(), expected.size());
        for (std::size_t r = 0; r < expected.size(); ++r)
          EXPECT_EQ(batch.configs[r], expected[r])
              << c.label << " alg=" << static_cast<int>(alg)
              << " threads=" << threads << " replica=" << r;
      }
    }
  }
}

TEST(SampleMany, ColoringsDeriveTheoremBudgetAndStayProper) {
  const auto g = graph::make_torus(6, 6);
  core::SamplerOptions opt;
  opt.algorithm = core::Algorithm::luby_glauber;
  opt.seed = 7;
  opt.num_replicas = 4;
  opt.num_threads = 0;
  const auto batch = core::sample_many_colorings(g, 12, opt);  // q > 2*Delta
  EXPECT_GT(batch.rounds, 0);
  EXPECT_GT(batch.theory_alpha, 0.0);
  EXPECT_EQ(batch.feasible_count, opt.num_replicas);
  ASSERT_EQ(batch.configs.size(), static_cast<std::size_t>(opt.num_replicas));
  for (const auto& cfg : batch.configs)
    EXPECT_TRUE(graph::is_proper_coloring(*g, cfg));
  // Distinct replicas must not be clones of one chain.
  EXPECT_NE(batch.configs[0], batch.configs[1]);
}

TEST(SampleMany, ValidatesOptions) {
  const mrf::Mrf m = mrf::make_proper_coloring(graph::make_cycle(6), 5);
  core::SamplerOptions opt;
  EXPECT_THROW((void)core::sample_many(m, opt), std::invalid_argument);
  opt.rounds = 10;
  opt.num_replicas = 0;
  EXPECT_THROW((void)core::sample_many(m, opt), std::invalid_argument);
}

}  // namespace
}  // namespace lsample::chains
