// Parallel tempering must reproduce exact hardcore marginals (it is the
// ground-truth sampler for experiment E5).
#include "gadget/tempering.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "inference/exact.hpp"
#include "mrf/models.hpp"

namespace lsample::gadget {
namespace {

TEST(HardcoreLadder, GeometricWithExactEndpoint) {
  const auto g = graph::make_cycle(6);
  const auto ladder = hardcore_ladder(g, 0.2, 3.0, 5);
  ASSERT_EQ(ladder.size(), 5u);
  // First rung lambda = 0.2, last exactly 3.0.
  EXPECT_NEAR(ladder.front().vertex_activity(0)[1], 0.2, 1e-12);
  EXPECT_NEAR(ladder.back().vertex_activity(0)[1], 3.0, 1e-12);
  // Monotone increasing.
  for (std::size_t i = 1; i < ladder.size(); ++i)
    EXPECT_GT(ladder[i].vertex_activity(0)[1],
              ladder[i - 1].vertex_activity(0)[1]);
}

TEST(HardcoreLadder, ValidatesInput) {
  const auto g = graph::make_path(3);
  EXPECT_THROW((void)hardcore_ladder(g, 2.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW((void)hardcore_ladder(g, 0.5, 2.0, 1), std::invalid_argument);
}

TEST(ParallelTempering, MatchesExactOccupancyOnSmallGraph) {
  const auto g = graph::make_cycle(6);
  const double lambda = 2.0;
  const mrf::Mrf target = mrf::make_hardcore(g, lambda);
  const inference::StateSpace ss(6, 2);
  const auto mu = inference::gibbs_distribution(target, ss);
  double exact = 0.0;  // Pr[vertex 0 occupied]
  for (std::int64_t i = 0; i < ss.size(); ++i)
    if (ss.spin_of(i, 0) == 1) exact += mu[static_cast<std::size_t>(i)];

  ParallelTempering pt(hardcore_ladder(g, 0.3, lambda, 4), 7);
  const int burn = 200;
  const int samples = 3000;
  pt.run_sweeps(burn);
  double occupied = 0.0;
  for (int s = 0; s < samples; ++s) {
    pt.run_sweeps(2);
    occupied += pt.target_config()[0];
  }
  EXPECT_NEAR(occupied / samples, exact, 0.03);
  EXPECT_GT(pt.swap_acceptance_rate(), 0.05);
}

TEST(ParallelTempering, ConfigsStayFeasible) {
  const auto g = graph::make_grid(3, 3);
  ParallelTempering pt(hardcore_ladder(g, 0.2, 1.5, 3), 11);
  const mrf::Mrf target = mrf::make_hardcore(g, 1.5);
  pt.run_sweeps(50);
  for (int rung = 0; rung < pt.num_rungs(); ++rung)
    EXPECT_TRUE(target.feasible(pt.config(rung)));
}

TEST(ParallelTempering, RequiresCompatibleRungs) {
  std::vector<mrf::Mrf> mixed;
  mixed.push_back(mrf::make_hardcore(graph::make_path(3), 1.0));
  mixed.push_back(mrf::make_hardcore(graph::make_path(4), 1.0));
  EXPECT_THROW(ParallelTempering(std::move(mixed), 1), std::invalid_argument);
}

// The header's documented precondition — equivalent feasibility across rungs
// ("same zero pattern ... or swap weights become ill-defined") — must be
// enforced at construction, not discovered as a NaN swap ratio mid-run.
TEST(ParallelTempering, RejectsMismatchedFeasibilityLadder) {
  const auto g = graph::make_cycle(4);
  // Hardcore forbids adjacent occupied pairs; the soft Ising rung forbids
  // nothing: same (n, q), same graph, different feasible sets.
  std::vector<mrf::Mrf> mixed;
  mixed.push_back(mrf::make_hardcore(g, 1.0));
  mixed.push_back(mrf::make_ising(g, 0.5));
  try {
    ParallelTempering pt(std::move(mixed), 1);
    FAIL() << "mismatched-feasibility ladder must be rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("equivalent feasibility"),
              std::string::npos)
        << e.what();
  }
}

TEST(ParallelTempering, RejectsLaddersOnDifferentEdgeLists) {
  // Same n and q, different graphs: the edge zero patterns are not
  // comparable, so the construction must refuse.
  std::vector<mrf::Mrf> mixed;
  mixed.push_back(mrf::make_hardcore(graph::make_path(4), 1.0));
  mixed.push_back(mrf::make_hardcore(graph::make_cycle(4), 1.0));
  try {
    ParallelTempering pt(std::move(mixed), 1);
    FAIL() << "different-edge-list ladder must be rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("share one edge list"),
              std::string::npos)
        << e.what();
  }
}

TEST(ParallelTempering, AcceptsEquivalentFeasibilityLadder) {
  // All hardcore rungs share the zero pattern regardless of fugacity.
  const auto g = graph::make_cycle(6);
  EXPECT_NO_THROW(ParallelTempering(hardcore_ladder(g, 0.2, 2.0, 4), 3));
}

}  // namespace
}  // namespace lsample::gadget
