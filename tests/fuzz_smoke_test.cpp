// Bounded, fixed-seed run of the randomized correctness fuzzer — the
// `fuzz_smoke` CTest entry CI runs on every push.  One instance per family
// through the full cross-check matrix (seed-vs-compiled, thread invariance,
// chain-vs-network, replica streams, empirical-vs-exact TV, and the torpid
// tempering check), plus the determinism-only subset used under TSan.
//
// The seed is fixed so CI is reproducible; the standalone fuzz_driver binary
// is the entry point for long randomized soaks with fresh seeds.
#include "testing/fuzz.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

namespace lsample::testing {
namespace {

[[nodiscard]] std::string describe(const FuzzReport& report) {
  std::ostringstream os;
  os << report.summary() << "\n";
  for (const auto& f : report.failures) os << f.reproducer();
  return os.str();
}

TEST(FuzzSmoke, FullMatrixPassesOnEveryFamily) {
  FuzzOptions options;
  options.seed = 20260808;
  options.iterations = 1;
  FuzzHarness harness(options);
  const FuzzReport report = harness.run();
  EXPECT_TRUE(report.ok()) << describe(report);
  EXPECT_EQ(static_cast<int>(report.families_covered.size()), kNumFamilies);
  EXPECT_GE(report.instances, kNumFamilies);
  EXPECT_GT(report.checks, 0);
}

TEST(FuzzSmoke, FamilyFilterRestrictsCoverage) {
  FuzzOptions options;
  options.seed = 7;
  options.iterations = 1;
  options.families = {Family::hardcore, Family::ksat};
  options.check_tempering = false;
  FuzzHarness harness(options);
  const FuzzReport report = harness.run();
  EXPECT_TRUE(report.ok()) << describe(report);
  ASSERT_EQ(report.families_covered.size(), 2u);
  EXPECT_EQ(report.families_covered[0], Family::hardcore);
  EXPECT_EQ(report.families_covered[1], Family::ksat);
}

TEST(FuzzSmoke, ReplayReproducesACleanInstance) {
  // The reproducer pathway run_instance() must agree with the sweep: a seed
  // the sweep passed on replays clean too.
  FuzzOptions options;
  options.seed = 20260808;
  FuzzHarness harness(options);
  const std::uint64_t seed = instance_seed(options.seed, Family::potts, 0);
  const auto failures = harness.run_instance(Family::potts, seed, 0);
  std::string detail;
  for (const auto& f : failures) detail += f.reproducer();
  EXPECT_TRUE(failures.empty()) << detail;
}

// Named to match the ThreadSanitizer job's ctest regex: only the
// thread-count / replica / network determinism checks, where data races
// would actually surface.  Reference steppers and TV sampling are excluded
// (sequential, and they would dominate TSan runtime).
TEST(FuzzDeterminism, SubsetPassesAndIsRepeatable) {
  FuzzOptions options;
  options.seed = 971;
  options.iterations = 1;
  FuzzHarness harness(options);
  const FuzzReport first = harness.run_determinism_subset();
  EXPECT_TRUE(first.ok()) << describe(first);
  EXPECT_EQ(static_cast<int>(first.families_covered.size()), kNumFamilies);
  // Same options => bit-identical outcome (the fuzzer itself is a pure
  // function of its seed).
  const FuzzReport second = FuzzHarness(options).run_determinism_subset();
  EXPECT_EQ(first.instances, second.instances);
  EXPECT_EQ(first.checks, second.checks);
  EXPECT_TRUE(second.ok()) << describe(second);
}

}  // namespace
}  // namespace lsample::testing
