#include "inference/state_space.hpp"

#include <gtest/gtest.h>

namespace lsample::inference {
namespace {

TEST(StateSpace, SizeAndRoundTrip) {
  const StateSpace ss(3, 4);
  EXPECT_EQ(ss.size(), 64);
  for (std::int64_t i = 0; i < ss.size(); ++i)
    EXPECT_EQ(ss.encode(ss.decode(i)), i);
}

TEST(StateSpace, EncodeIsPositional) {
  const StateSpace ss(3, 3);
  EXPECT_EQ(ss.encode({0, 0, 0}), 0);
  EXPECT_EQ(ss.encode({1, 0, 0}), 1);
  EXPECT_EQ(ss.encode({0, 1, 0}), 3);
  EXPECT_EQ(ss.encode({0, 0, 1}), 9);
  EXPECT_EQ(ss.encode({2, 2, 2}), 26);
}

TEST(StateSpace, WithSpinAndSpinOf) {
  const StateSpace ss(4, 3);
  const std::int64_t base = ss.encode({0, 1, 2, 0});
  EXPECT_EQ(ss.spin_of(base, 1), 1);
  const std::int64_t changed = ss.with_spin(base, 1, 2);
  EXPECT_EQ(ss.decode(changed), (mrf::Config{0, 2, 2, 0}));
  EXPECT_EQ(ss.with_spin(base, 1, 1), base);
}

TEST(StateSpace, GuardsAgainstBlowup) {
  EXPECT_THROW(StateSpace(30, 4), std::invalid_argument);
  EXPECT_THROW(StateSpace(10, 3, 1000), std::invalid_argument);
}

TEST(StateSpace, ValidatesArguments) {
  const StateSpace ss(2, 2);
  EXPECT_THROW((void)ss.decode(4), std::invalid_argument);
  EXPECT_THROW((void)ss.encode({0, 2}), std::invalid_argument);
  EXPECT_THROW((void)ss.spin_of(0, 2), std::invalid_argument);
}

}  // namespace
}  // namespace lsample::inference
