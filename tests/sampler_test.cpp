// The public facade: correct outputs, theory-derived budgets, statistical
// uniformity on a tiny instance, and input validation.
#include "core/sampler.hpp"

#include <gtest/gtest.h>

#include <map>

#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "inference/state_space.hpp"
#include "mrf/models.hpp"

namespace lsample::core {
namespace {

TEST(SampleColoring, ReturnsProperColoring) {
  util::Rng grng(3);
  const auto g = graph::make_random_regular(24, 4, grng);
  for (const Algorithm alg :
       {Algorithm::luby_glauber, Algorithm::local_metropolis}) {
    SamplerOptions opt;
    opt.algorithm = alg;
    opt.seed = 5;
    const auto res = sample_coloring(g, 16, opt);
    EXPECT_TRUE(res.feasible);
    EXPECT_TRUE(graph::is_proper_coloring(*g, res.config));
    EXPECT_GT(res.rounds, 0);
  }
}

TEST(SampleColoring, BudgetsComeFromTheory) {
  // q = 16 > 2*Delta = 8: LubyGlauber budget defined; q = 16 > 3.7*4 + 3:
  // LocalMetropolis budget defined and much smaller.
  const auto t_lg =
      coloring_round_budget(1000, 4, 16, Algorithm::luby_glauber, 0.01);
  const auto t_lm =
      coloring_round_budget(1000, 4, 16, Algorithm::local_metropolis, 0.01);
  EXPECT_GT(t_lg, 0);
  EXPECT_GT(t_lm, 0);
  EXPECT_LT(t_lm, t_lg);
}

TEST(SampleColoring, ThrowsOutsideGuaranteedRegimeWithoutBudget) {
  const auto g = graph::make_complete(6);  // Delta = 5
  SamplerOptions opt;
  opt.algorithm = Algorithm::luby_glauber;
  // q = 7 <= 2*Delta = 10: no Dobrushin guarantee.
  EXPECT_THROW((void)sample_coloring(g, 7, opt), std::invalid_argument);
  // With an explicit budget it runs anyway.
  opt.rounds = 200;
  const auto res = sample_coloring(g, 7, opt);
  EXPECT_TRUE(graph::is_proper_coloring(*g, res.config));
}

TEST(SampleColoring, RejectsInfeasibleQ) {
  const auto g = graph::make_complete(4);
  SamplerOptions opt;
  EXPECT_THROW((void)sample_coloring(g, 3, opt), std::invalid_argument);
}

TEST(SampleColoring, ApproximatelyUniformOnTriangle) {
  // Triangle with q = 12 (well inside both regimes): all 12*11*10 = 1320
  // proper colorings equally likely; check the three rotation classes of a
  // fixed vertex pattern via chi-square on vertex 0's color.
  const auto g = graph::make_cycle(3);
  std::map<int, int> counts;
  const int runs = 3000;
  for (int r = 0; r < runs; ++r) {
    SamplerOptions opt;
    opt.algorithm = Algorithm::local_metropolis;
    opt.seed = 100 + static_cast<std::uint64_t>(r);
    opt.epsilon = 0.05;
    const auto res = sample_coloring(g, 12, opt);
    ++counts[res.config[0]];
  }
  const double expected = runs / 12.0;
  double chi2 = 0.0;
  for (int c = 0; c < 12; ++c)
    chi2 += (counts[c] - expected) * (counts[c] - expected) / expected;
  // 11 dof, 99.9% quantile ~ 31.3.
  EXPECT_LT(chi2, 31.3);
}

TEST(SampleHardcore, UsesDobrushinBudgetInUniquenessRegime) {
  const auto g = graph::make_cycle(10);  // Delta = 2
  SamplerOptions opt;
  opt.algorithm = Algorithm::luby_glauber;
  const auto res = sample_hardcore(g, 0.4, opt);  // 2*0.4/1.4 < 1
  EXPECT_TRUE(res.feasible);
  EXPECT_TRUE(graph::is_independent_set(*g, res.config));
  EXPECT_GT(res.theory_alpha, 0.0);
  EXPECT_LT(res.theory_alpha, 1.0);
}

TEST(SampleHardcore, ThrowsWithoutGuaranteeOrBudget) {
  util::Rng grng(9);
  const auto g = graph::make_random_regular(20, 6, grng);
  SamplerOptions opt;
  // lambda = 1 on Delta = 6 is non-unique (Theorem 1.3 territory).
  EXPECT_THROW((void)sample_hardcore(g, 1.0, opt), std::invalid_argument);
  opt.rounds = 100;
  const auto res = sample_hardcore(g, 1.0, opt);
  EXPECT_TRUE(graph::is_independent_set(*g, res.config));
}

TEST(SampleMrf, RequiresExplicitBudget) {
  const auto g = graph::make_path(4);
  const mrf::Mrf m = mrf::make_ising(g, 0.3);
  SamplerOptions opt;
  EXPECT_THROW((void)sample_mrf(m, opt), std::invalid_argument);
  opt.rounds = 50;
  const auto res = sample_mrf(m, opt);
  EXPECT_TRUE(res.feasible);
  EXPECT_EQ(res.rounds, 50);
}

TEST(Sampler, DeterministicInSeed) {
  const auto g = graph::make_cycle(12);
  SamplerOptions opt;
  opt.seed = 77;
  const auto a = sample_coloring(g, 10, opt);
  const auto b = sample_coloring(g, 10, opt);
  EXPECT_EQ(a.config, b.config);
  opt.seed = 78;
  const auto c = sample_coloring(g, 10, opt);
  EXPECT_NE(a.config, c.config);
}

}  // namespace
}  // namespace lsample::core
