#include "inference/cycle_transfer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "inference/exact.hpp"
#include "mrf/models.hpp"

namespace lsample::inference {
namespace {

TEST(CycleTransfer, PartitionFunctionMatchesEnumeration) {
  for (int n : {4, 5, 6}) {
    const auto g = graph::make_cycle(n);
    for (const mrf::Mrf& m :
         {mrf::make_proper_coloring(g, 3), mrf::make_hardcore(g, 1.3),
          mrf::make_ising(g, 0.5, 0.1), mrf::make_potts(g, 3, -0.4)}) {
      const StateSpace ss(m.n(), m.q());
      EXPECT_NEAR(cycle_partition_function(m) / partition_function(m, ss),
                  1.0, 1e-10)
          << "n=" << n;
    }
  }
}

TEST(CycleTransfer, ColoringClosedForm) {
  for (int n : {4, 6, 8, 12}) {
    for (int q : {3, 5}) {
      const mrf::Mrf m = mrf::make_proper_coloring(graph::make_cycle(n), q);
      const double expected = std::pow(q - 1.0, n) + (q - 1.0);
      EXPECT_NEAR(cycle_partition_function(m) / expected, 1.0, 1e-12);
    }
  }
}

TEST(CycleTransfer, PairJointMatchesEnumeration) {
  const auto g = graph::make_cycle(6);
  const mrf::Mrf m = mrf::make_proper_coloring(g, 3);
  const StateSpace ss(6, 3);
  const auto mu = gibbs_distribution(m, ss);
  for (const auto& [u, v] : {std::pair{0, 3}, std::pair{1, 4}, std::pair{2, 3}}) {
    std::vector<double> joint(9, 0.0);
    for (std::int64_t i = 0; i < ss.size(); ++i)
      joint[static_cast<std::size_t>(ss.spin_of(i, u) * 3 +
                                     ss.spin_of(i, v))] +=
          mu[static_cast<std::size_t>(i)];
    const auto fast = cycle_pair_joint(m, u, v);
    for (int k = 0; k < 9; ++k)
      EXPECT_NEAR(fast[static_cast<std::size_t>(k)],
                  joint[static_cast<std::size_t>(k)], 1e-10)
          << "u=" << u << " v=" << v;
  }
}

TEST(CycleTransfer, RejectsNonCycles) {
  const mrf::Mrf m = mrf::make_proper_coloring(graph::make_path(5), 3);
  EXPECT_THROW((void)cycle_partition_function(m), std::invalid_argument);
}

}  // namespace
}  // namespace lsample::inference
