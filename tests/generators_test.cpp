#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include <set>
#include <string>
#include <tuple>

#include "graph/properties.hpp"
#include "util/rng.hpp"

namespace lsample::graph {
namespace {

// Parameterized structural sweep: (name, graph, expected n, expected m,
// expected max degree, expect connected).
struct GeneratorCase {
  std::string name;
  std::shared_ptr<Graph> g;
  int n;
  int m;
  int max_degree;
  bool connected;
};

class GeneratorSuite : public ::testing::TestWithParam<GeneratorCase> {};

TEST_P(GeneratorSuite, StructureMatches) {
  const auto& c = GetParam();
  EXPECT_EQ(c.g->num_vertices(), c.n) << c.name;
  EXPECT_EQ(c.g->num_edges(), c.m) << c.name;
  EXPECT_EQ(c.g->max_degree(), c.max_degree) << c.name;
  EXPECT_EQ(is_connected(*c.g), c.connected) << c.name;
}

std::vector<GeneratorCase> make_cases() {
  std::vector<GeneratorCase> cases;
  cases.push_back({"path10", make_path(10), 10, 9, 2, true});
  cases.push_back({"path1", make_path(1), 1, 0, 0, true});
  cases.push_back({"cycle7", make_cycle(7), 7, 7, 2, true});
  cases.push_back({"complete5", make_complete(5), 5, 10, 4, true});
  cases.push_back({"star6", make_star(6), 7, 6, 6, true});
  cases.push_back({"bipartite34", make_complete_bipartite(3, 4), 7, 12, 4, true});
  cases.push_back({"grid34", make_grid(3, 4), 12, 17, 4, true});
  cases.push_back({"torus34", make_torus(3, 4), 12, 24, 4, true});
  cases.push_back({"hypercube4", make_hypercube(4), 16, 32, 4, true});
  cases.push_back({"bintree7", make_binary_tree(7), 7, 6, 3, true});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllGenerators, GeneratorSuite,
                         ::testing::ValuesIn(make_cases()),
                         [](const auto& test_info) { return test_info.param.name; });

TEST(RandomRegular, ProducesSimpleRegularGraph) {
  util::Rng rng(11);
  for (const auto& [n, d] : {std::pair{20, 4}, std::pair{30, 6}, std::pair{16, 3}}) {
    const auto g = make_random_regular(n, d, rng);
    ASSERT_EQ(g->num_vertices(), n);
    ASSERT_EQ(g->num_edges(), n * d / 2);
    std::set<std::pair<int, int>> seen;
    for (int e = 0; e < g->num_edges(); ++e) {
      const Edge& ed = g->edge(e);
      EXPECT_NE(ed.u, ed.v);
      EXPECT_TRUE(seen.emplace(std::min(ed.u, ed.v), std::max(ed.u, ed.v)).second);
    }
    for (int v = 0; v < n; ++v) EXPECT_EQ(g->degree(v), d);
  }
}

TEST(RandomRegular, RejectsOddTotalDegree) {
  util::Rng rng(1);
  EXPECT_THROW((void)make_random_regular(5, 3, rng), std::invalid_argument);
}

TEST(RandomTree, HasTreeStructure) {
  util::Rng rng(21);
  for (int n : {1, 2, 3, 10, 50}) {
    const auto g = make_random_tree(n, rng);
    EXPECT_EQ(g->num_vertices(), n);
    EXPECT_EQ(g->num_edges(), n - 1);
    EXPECT_TRUE(is_connected(*g));
  }
}

TEST(ErdosRenyi, ExtremesAreEmptyAndComplete) {
  util::Rng rng(31);
  const auto empty = make_erdos_renyi(6, 0.0, rng);
  EXPECT_EQ(empty->num_edges(), 0);
  const auto full = make_erdos_renyi(6, 1.0, rng);
  EXPECT_EQ(full->num_edges(), 15);
}

TEST(ErdosRenyi, EdgeCountNearExpectation) {
  util::Rng rng(41);
  const int n = 60;
  const double p = 0.3;
  const auto g = make_erdos_renyi(n, p, rng);
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(g->num_edges(), expected, 4.0 * std::sqrt(expected));
}

TEST(AddRandomMatching, IsPerfectMatching) {
  util::Rng rng(51);
  Graph g(10);
  const std::vector<int> left = {0, 1, 2, 3, 4};
  const std::vector<int> right = {5, 6, 7, 8, 9};
  const auto ids = add_random_matching(g, left, right, rng);
  EXPECT_EQ(ids.size(), 5u);
  for (int v = 0; v < 10; ++v) EXPECT_EQ(g.degree(v), 1);
}

TEST(AddRandomMatching, RejectsUnequalSides) {
  util::Rng rng(61);
  Graph g(3);
  EXPECT_THROW((void)add_random_matching(g, {0}, {1, 2}, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace lsample::graph
