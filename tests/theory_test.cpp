// The closed-form analysis quantities: thresholds 2+sqrt(2) and alpha*,
// coupling margins, Dobrushin alphas, and round budgets.
#include "core/theory.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace lsample::core {
namespace {

TEST(Thresholds, IdealThresholdIsTwoPlusSqrtTwo) {
  EXPECT_NEAR(ideal_threshold(), 3.4142135623730951, 1e-12);
}

TEST(Thresholds, AlphaStarSolvesItsEquation) {
  const double a = alpha_star();
  EXPECT_NEAR(a, 2.0 * std::exp(1.0 / a) + 1.0, 1e-9);
  EXPECT_NEAR(a, 3.634, 2e-3);  // the paper's quoted value 3.634...
  EXPECT_GT(a, ideal_threshold());
}

TEST(IdealCoupling, LimitCrossesOneExactlyAtThreshold) {
  // E[disagreements] < 1 iff alpha > 2 + sqrt(2) in the Delta -> inf limit.
  EXPECT_LT(ideal_coupling_limit(ideal_threshold() + 0.05), 1.0);
  EXPECT_GT(ideal_coupling_limit(ideal_threshold() - 0.05), 1.0);
  EXPECT_NEAR(ideal_coupling_limit(ideal_threshold()), 1.0, 1e-9);
}

TEST(IdealCoupling, FiniteDeltaConvergesToLimit) {
  const double alpha = 3.6;
  double prev_gap = 1e9;
  for (int delta : {10, 40, 160}) {
    const double e =
        ideal_coupling_expected_disagreement(alpha * delta, delta);
    const double gap = std::abs(e - ideal_coupling_limit(alpha));
    EXPECT_LT(gap, prev_gap);
    prev_gap = gap;
  }
  EXPECT_LT(prev_gap, 0.01);
}

TEST(EasyCoupling, LimitRootIsAlphaStar) {
  const double a = alpha_star();
  EXPECT_NEAR(easy_coupling_limit(a), 0.0, 1e-9);
  EXPECT_GT(easy_coupling_limit(a + 0.1), 0.0);
  EXPECT_LT(easy_coupling_limit(a - 0.1), 0.0);
}

TEST(EasyCoupling, MarginPositiveAboveAlphaStarForFiniteDelta) {
  // Lemma 4.4: for q >= alpha*Delta + 3 with alpha > alpha*, the margin is
  // positive for every Delta.
  for (int delta : {1, 5, 20, 100}) {
    const double q = 3.7 * delta + 3.0;
    EXPECT_GT(easy_coupling_margin(q, delta), 0.0) << "Delta=" << delta;
  }
}

TEST(GlobalCoupling, PositiveInLemma45Regime) {
  // Lemma 4.5 regime: alpha in (2+sqrt(2), 3.7], Delta >= 9.
  for (int delta : {9, 20, 64}) {
    EXPECT_GT(global_coupling_margin(3.5 * delta, delta), 0.0)
        << "Delta=" << delta;
    // Below the ideal threshold the margin should go negative for large
    // Delta.
    EXPECT_LT(global_coupling_margin(3.2 * delta, delta), 0.0)
        << "Delta=" << delta;
  }
}

TEST(Dobrushin, ColoringAlphaFormula) {
  EXPECT_DOUBLE_EQ(coloring_dobrushin_alpha(5, 2), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(coloring_dobrushin_alpha(9, 4), 0.8);
  EXPECT_DOUBLE_EQ(coloring_dobrushin_alpha(3, 0), 0.0);
  // alpha < 1 iff q > 2*Delta.
  EXPECT_LT(coloring_dobrushin_alpha(9, 4), 1.0);
  EXPECT_GE(coloring_dobrushin_alpha(8, 4), 1.0);
  EXPECT_THROW((void)coloring_dobrushin_alpha(4, 4), std::invalid_argument);
}

TEST(RoundBudgets, LubyGlauberScalesWithDeltaAndLogN) {
  const double eps = 0.01;
  const double alpha = 0.8;
  // gamma = 1/(Delta+1): budget roughly linear in Delta.
  const auto t8 = luby_glauber_round_budget(1000, 1.0 / 9.0, alpha, eps);
  const auto t16 = luby_glauber_round_budget(1000, 1.0 / 17.0, alpha, eps);
  EXPECT_GT(t16, t8);
  EXPECT_NEAR(static_cast<double>(t16) / t8, 17.0 / 9.0, 0.1);
  // Logarithmic in n.
  const auto tn = luby_glauber_round_budget(1000, 0.1, alpha, eps);
  const auto tn2 = luby_glauber_round_budget(1000000, 0.1, alpha, eps);
  EXPECT_LT(static_cast<double>(tn2), 2.2 * static_cast<double>(tn));
}

TEST(RoundBudgets, LocalMetropolisIsLogarithmic) {
  const double margin = 0.05;
  const auto t1 = local_metropolis_round_budget(1000, 10, margin, 0.01);
  const auto t2 = local_metropolis_round_budget(1000000, 10, margin, 0.01);
  EXPECT_LT(static_cast<double>(t2), 1.7 * static_cast<double>(t1));
  // Independent of Delta except through log(Delta).
  const auto td = local_metropolis_round_budget(1000, 1000, margin, 0.01);
  EXPECT_LT(static_cast<double>(td), 1.5 * static_cast<double>(t1));
}

TEST(RoundBudgets, ValidateInput) {
  EXPECT_THROW((void)luby_glauber_round_budget(10, 0.5, 1.0, 0.01),
               std::invalid_argument);
  EXPECT_THROW((void)luby_glauber_round_budget(10, 0.0, 0.5, 0.01),
               std::invalid_argument);
  EXPECT_THROW((void)local_metropolis_round_budget(10, 5, 0.0, 0.01),
               std::invalid_argument);
  EXPECT_THROW((void)local_metropolis_round_budget(10, 5, 0.1, 1.5),
               std::invalid_argument);
}

}  // namespace
}  // namespace lsample::core
