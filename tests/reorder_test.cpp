// Cache-aware vertex reordering is pure layout: a compiled view built with
// ANY VertexOrder must give bit-identical trajectories to the identity
// layout, across chains, thread counts, and both model families (MRF and
// CSP).  These tests pin that contract, the structural round-trip of the
// permuted rows, and the fast_math tier's numerical envelope.
#include "graph/reorder.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>
#include <vector>

#include "chains/engine.hpp"
#include "chains/init.hpp"
#include "chains/local_metropolis.hpp"
#include "chains/luby_glauber.hpp"
#include "chains/synchronous_glauber.hpp"
#include "core/sampler.hpp"
#include "csp/compiled.hpp"
#include "csp/csp_chains.hpp"
#include "csp/csp_models.hpp"
#include "graph/generators.hpp"
#include "mrf/compiled.hpp"
#include "mrf/models.hpp"

namespace lsample {
namespace {

const std::vector<graph::VertexOrder> kOrders{
    graph::VertexOrder::none, graph::VertexOrder::bfs,
    graph::VertexOrder::rcm};

// ---------------------------------------------------------------------------
// Ordering computation.
// ---------------------------------------------------------------------------

TEST(Reorder, OrderIsAPermutationAndRankInverts) {
  util::Rng grng(3);
  const auto g = graph::make_random_regular(60, 4, grng);
  for (const auto kind : kOrders) {
    const auto order = graph::compute_vertex_order(*g, kind);
    ASSERT_EQ(static_cast<int>(order.size()), g->num_vertices());
    std::vector<char> seen(order.size(), 0);
    for (const int v : order) {
      ASSERT_GE(v, 0);
      ASSERT_LT(v, g->num_vertices());
      ASSERT_EQ(seen[static_cast<std::size_t>(v)], 0)
          << "duplicate vertex in " << graph::vertex_order_name(kind);
      seen[static_cast<std::size_t>(v)] = 1;
    }
    const auto rank = graph::invert_order(order);
    for (int i = 0; i < g->num_vertices(); ++i)
      EXPECT_EQ(rank[static_cast<std::size_t>(
                    order[static_cast<std::size_t>(i)])],
                i);
  }
}

TEST(Reorder, IdentityForNoneAndDeterministic) {
  const auto g = graph::make_torus(6, 6);
  const auto none = graph::compute_vertex_order(*g, graph::VertexOrder::none);
  for (int i = 0; i < g->num_vertices(); ++i)
    EXPECT_EQ(none[static_cast<std::size_t>(i)], i);
  for (const auto kind : kOrders)
    EXPECT_EQ(graph::compute_vertex_order(*g, kind),
              graph::compute_vertex_order(*g, kind));
}

TEST(Reorder, CoversDisconnectedComponents) {
  auto g = std::make_shared<graph::Graph>(9);  // triangle + path + isolated
  g->add_edge(0, 1);
  g->add_edge(1, 2);
  g->add_edge(2, 0);
  g->add_edge(4, 5);
  g->add_edge(5, 6);
  for (const auto kind : kOrders) {
    const auto order = graph::compute_vertex_order(*g, kind);
    const auto rank = graph::invert_order(order);  // throws if not a perm
    EXPECT_EQ(static_cast<int>(rank.size()), 9);
  }
}

TEST(Reorder, BandwidthOrdersShrinkEdgeSpan) {
  // Random-regular external ids are information-free, so a BFS/RCM layout
  // should bring endpoints closer on average than the identity layout.
  util::Rng grng(11);
  const auto g = graph::make_random_regular(300, 6, grng);
  std::vector<int> identity(300);
  for (int i = 0; i < 300; ++i) identity[static_cast<std::size_t>(i)] = i;
  const double base = graph::mean_edge_span(*g, identity);
  for (const auto kind : {graph::VertexOrder::bfs, graph::VertexOrder::rcm}) {
    const auto rank =
        graph::invert_order(graph::compute_vertex_order(*g, kind));
    EXPECT_LT(graph::mean_edge_span(*g, rank), base)
        << graph::vertex_order_name(kind);
  }
}

// ---------------------------------------------------------------------------
// Structural round-trip through the compiled views.
// ---------------------------------------------------------------------------

TEST(Reorder, CompiledMrfRowsMatchOriginalCsrPerVertex) {
  util::Rng grng(5);
  const auto g = graph::make_random_regular(40, 5, grng);
  const mrf::Mrf m = mrf::make_proper_coloring(g, 8);
  for (const auto kind : kOrders) {
    const mrf::CompiledMrf cm(m, {kind, mrf::CompiledMrf::Tier::exact});
    for (int v = 0; v < m.n(); ++v) {
      // Row contents AND per-row entry order must match the original CSR —
      // that is what makes the factor accumulation order reorder-invariant.
      const auto inc = cm.incident_row(v);
      const auto nbr = cm.neighbor_row(v);
      const auto ref_inc = g->incident_edges(v);
      const auto ref_nbr = g->neighbors(v);
      ASSERT_EQ(inc.size(), ref_inc.size());
      for (std::size_t i = 0; i < inc.size(); ++i) {
        EXPECT_EQ(inc[i], ref_inc[i]) << "v=" << v;
        EXPECT_EQ(nbr[i], ref_nbr[i]) << "v=" << v;
      }
      // Activities travel with the row.
      const auto act = cm.vertex_activity(v);
      const auto ref_act = m.vertex_activity(v);
      for (int c = 0; c < m.q(); ++c)
        EXPECT_EQ(act[static_cast<std::size_t>(c)],
                  ref_act[static_cast<std::size_t>(c)]);
    }
    // The LOCAL runtime's port layout must never be permuted.
    const auto off = cm.csr_offsets();
    for (int v = 0; v < m.n(); ++v) {
      const auto ref_inc = g->incident_edges(v);
      const int b = off[static_cast<std::size_t>(v)];
      for (std::size_t i = 0; i < ref_inc.size(); ++i)
        EXPECT_EQ(cm.incident_edges_flat()[static_cast<std::size_t>(b) + i],
                  ref_inc[i]);
    }
  }
}

TEST(Reorder, CompiledFactorGraphRowsMatchOriginalPerVertex) {
  const auto g = graph::make_grid(7, 7);
  const csp::FactorGraph fg = csp::make_dominating_set(*g, 1.0);
  for (const auto kind : kOrders) {
    const csp::CompiledFactorGraph cfg(fg, {kind});
    const auto& conflict = cfg.conflict_graph();
    for (int v = 0; v < fg.n(); ++v) {
      const auto cons = cfg.constraints_of(v);
      const auto ref_cons = fg.constraints_of(v);
      ASSERT_EQ(cons.size(), ref_cons.size());
      for (std::size_t i = 0; i < cons.size(); ++i)
        EXPECT_EQ(cons[i], ref_cons[i]) << "v=" << v;
      const auto nbrs = cfg.conflict_neighbors(v);
      const auto ref_nbrs = conflict.neighbors(v);
      ASSERT_EQ(nbrs.size(), ref_nbrs.size());
      for (std::size_t i = 0; i < nbrs.size(); ++i)
        EXPECT_EQ(nbrs[i], ref_nbrs[i]) << "v=" << v;
    }
  }
}

// ---------------------------------------------------------------------------
// Bitwise trajectory invariance, per chain x order x thread count.
// ---------------------------------------------------------------------------

std::vector<int> engine_thread_counts() { return {1, 2, 4}; }

template <typename ChainT, typename ViewT, typename MakeView,
          typename ConfigT>
void expect_reorder_invariant_trajectories(
    const std::shared_ptr<const ViewT>& identity_view,
    const MakeView& make_view, const ConfigT& x0, int steps,
    const char* label) {
  ConfigT reference = x0;
  {
    ChainT chain(identity_view, 17);
    for (int t = 0; t < steps; ++t) chain.step(reference, t);
  }
  for (const auto kind : {graph::VertexOrder::bfs, graph::VertexOrder::rcm}) {
    const auto view = make_view(kind);
    {
      ChainT chain(view, 17);
      ConfigT x = x0;
      for (int t = 0; t < steps; ++t) chain.step(x, t);
      EXPECT_EQ(x, reference)
          << label << " " << graph::vertex_order_name(kind) << " sequential";
    }
    for (const int threads : engine_thread_counts()) {
      chains::ParallelEngine engine(threads);
      ChainT chain(view, 17);
      chain.set_engine(&engine);
      ConfigT x = x0;
      for (int t = 0; t < steps; ++t) chain.step(x, t);
      EXPECT_EQ(x, reference) << label << " "
                              << graph::vertex_order_name(kind)
                              << " threads=" << threads;
    }
  }
}

TEST(Reorder, MrfChainTrajectoriesAreLayoutInvariant) {
  util::Rng grng(9);
  const auto g = graph::make_random_regular(48, 4, grng);
  const mrf::Mrf m = mrf::make_proper_coloring(g, 10);
  const mrf::Config x0 = chains::greedy_feasible_config(m);
  const auto make_view = [&](graph::VertexOrder kind) {
    return std::make_shared<const mrf::CompiledMrf>(
        m, mrf::CompiledMrf::Options{kind, mrf::CompiledMrf::Tier::exact});
  };
  const auto identity = make_view(graph::VertexOrder::none);
  expect_reorder_invariant_trajectories<chains::SynchronousGlauberChain>(
      identity, make_view, x0, 25, "SynchronousGlauber");
  expect_reorder_invariant_trajectories<chains::LubyGlauberChain>(
      identity, make_view, x0, 25, "LubyGlauber");
  expect_reorder_invariant_trajectories<chains::LocalMetropolisChain>(
      identity, make_view, x0, 25, "LocalMetropolis");
}

TEST(Reorder, CspChainTrajectoriesAreLayoutInvariant) {
  const auto g = graph::make_grid(6, 6);
  const csp::FactorGraph fg = csp::make_dominating_set(*g, 1.0);
  const csp::Config x0(static_cast<std::size_t>(fg.n()), 1);
  const auto make_view = [&](graph::VertexOrder kind) {
    return std::make_shared<const csp::CompiledFactorGraph>(
        fg, csp::CompiledFactorGraph::Options{kind});
  };
  const auto identity = make_view(graph::VertexOrder::none);
  expect_reorder_invariant_trajectories<csp::CspGlauberChain>(
      identity, make_view, x0, 40, "CspGlauber");
  expect_reorder_invariant_trajectories<csp::CspLubyGlauberChain>(
      identity, make_view, x0, 25, "CspLubyGlauber");
  expect_reorder_invariant_trajectories<csp::CspLocalMetropolisChain>(
      identity, make_view, x0, 25, "CspLocalMetropolis");
}

// ---------------------------------------------------------------------------
// fast_math tier: reassociated, so equal up to rounding — never exact-path
// semantics.
// ---------------------------------------------------------------------------

TEST(Reorder, FastMathMarginalsMatchExactUpToRounding) {
  util::Rng grng(13);
  const auto g = graph::make_random_regular(40, 6, grng);
  const mrf::Mrf m = mrf::make_proper_coloring(g, 12);
  const mrf::Config x = chains::greedy_feasible_config(m);
  const mrf::CompiledMrf exact(
      m, {graph::VertexOrder::none, mrf::CompiledMrf::Tier::exact});
  const mrf::CompiledMrf fast(
      m, {graph::VertexOrder::none, mrf::CompiledMrf::Tier::fast_math});
  std::vector<double> we, wf;
  for (int v = 0; v < m.n(); ++v) {
    exact.marginal_weights(v, x, we);
    fast.marginal_weights(v, x, wf);
    ASSERT_EQ(we.size(), wf.size());
    for (std::size_t c = 0; c < we.size(); ++c) {
      const double tol = 1e-12 * std::max(1.0, std::abs(we[c]));
      EXPECT_NEAR(we[c], wf[c], tol) << "v=" << v << " c=" << c;
    }
  }
}

// ---------------------------------------------------------------------------
// Facade plumbing.
// ---------------------------------------------------------------------------

TEST(Reorder, FacadeSampleIsReorderInvariantOnBothBackends) {
  const auto g = graph::make_torus(7, 7);
  core::SamplerOptions opt;
  opt.algorithm = core::Algorithm::local_metropolis;
  opt.seed = 23;
  opt.rounds = 40;
  const auto reference = core::sample_coloring(g, 12, opt);
  for (const auto backend :
       {core::Backend::chain, core::Backend::local_network}) {
    for (const auto kind :
         {graph::VertexOrder::bfs, graph::VertexOrder::rcm}) {
      opt.backend = backend;
      opt.reorder = kind;
      const auto got = core::sample_coloring(g, 12, opt);
      EXPECT_EQ(got.config, reference.config)
          << "backend=" << (backend == core::Backend::chain ? "chain" : "net")
          << " order=" << graph::vertex_order_name(kind);
    }
  }
}

TEST(Reorder, FacadeCspSampleIsReorderInvariant) {
  const auto g = graph::make_grid(6, 6);
  const csp::FactorGraph fg = csp::make_dominating_set(*g, 1.0);
  const csp::Config x0(static_cast<std::size_t>(fg.n()), 1);
  core::SamplerOptions opt;
  opt.algorithm = core::Algorithm::luby_glauber;
  opt.seed = 31;
  opt.rounds = 30;
  const auto reference = core::sample_csp(fg, x0, opt);
  for (const auto kind : {graph::VertexOrder::bfs, graph::VertexOrder::rcm}) {
    opt.reorder = kind;
    const auto got = core::sample_csp(fg, x0, opt);
    EXPECT_EQ(got.config, reference.config)
        << graph::vertex_order_name(kind);
  }
}

TEST(Reorder, FacadeFastMathSamplesStayFeasible) {
  // fast_math trajectories may differ bitwise from the exact tier (that is
  // the point), but the sampled coloring must still be proper.
  const auto g = graph::make_torus(7, 7);
  core::SamplerOptions opt;
  opt.algorithm = core::Algorithm::luby_glauber;
  opt.seed = 41;
  opt.rounds = 40;
  opt.fast_math = true;
  for (const auto kind : kOrders) {
    opt.reorder = kind;
    const auto got = core::sample_coloring(g, 12, opt);
    EXPECT_TRUE(got.feasible) << graph::vertex_order_name(kind);
  }
}

}  // namespace
}  // namespace lsample
