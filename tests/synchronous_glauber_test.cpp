// The fully synchronous parallel Glauber chain is the negative control that
// motivates the Luby step: updating ALL vertices at once is NOT stationary
// for the Gibbs distribution.
#include "chains/synchronous_glauber.hpp"

#include <gtest/gtest.h>

#include "chains/init.hpp"
#include "graph/generators.hpp"
#include "inference/exact.hpp"
#include "inference/transition.hpp"
#include "mrf/models.hpp"

namespace lsample::chains {
namespace {

TEST(SynchronousGlauber, BreaksGibbsStationarityOnAnEdge) {
  // On a single hardcore edge the synchronous chain resamples both endpoints
  // from marginals given the OLD state, which converges to a product law,
  // not the hardcore measure.
  const mrf::Mrf m = mrf::make_hardcore(graph::make_path(2), 1.0);
  const inference::StateSpace ss(2, 2);
  const auto mu = inference::gibbs_distribution(m, ss);
  const auto p = inference::synchronous_glauber_transition(m, ss);
  EXPECT_LT(p.row_sum_error(), 1e-9);
  EXPECT_GT(inference::stationarity_error(p, mu), 0.05);
}

TEST(SynchronousGlauber, BreaksGibbsStationarityOnColorings) {
  const mrf::Mrf m = mrf::make_proper_coloring(graph::make_cycle(4), 4);
  const inference::StateSpace ss(4, 4);
  const auto mu = inference::gibbs_distribution(m, ss);
  const auto p = inference::synchronous_glauber_transition(m, ss);
  EXPECT_GT(inference::stationarity_error(p, mu), 1e-2);
}

TEST(SynchronousGlauber, ExactForEdgelessGraphs) {
  // Without edges the coordinates are independent, so the all-at-once
  // update is a legitimate product heat bath.
  auto g = std::make_shared<graph::Graph>(3);
  mrf::Mrf m(g, 3);
  m.set_all_vertex_activities({1.0, 2.0, 3.0});
  const inference::StateSpace ss(3, 3);
  const auto mu = inference::gibbs_distribution(m, ss);
  const auto p = inference::synchronous_glauber_transition(m, ss);
  EXPECT_LT(inference::stationarity_error(p, mu), 1e-9);
}

TEST(SynchronousGlauber, RuntimeChainMatchesItsExactKernelOnAverage) {
  // Statistical check that the runtime chain implements the same kernel:
  // empirical one-step distribution from a fixed state vs the matrix row.
  const mrf::Mrf m = mrf::make_hardcore(graph::make_path(3), 1.5);
  const inference::StateSpace ss(3, 2);
  const auto p = inference::synchronous_glauber_transition(m, ss);
  const Config x0 = {0, 0, 0};
  const std::int64_t row = ss.encode(x0);
  std::vector<double> emp(static_cast<std::size_t>(ss.size()), 0.0);
  const int runs = 20000;
  for (int r = 0; r < runs; ++r) {
    SynchronousGlauberChain chain(m, 100 + static_cast<std::uint64_t>(r));
    Config x = x0;
    chain.step(x, 0);
    emp[static_cast<std::size_t>(ss.encode(x))] += 1.0 / runs;
  }
  for (std::int64_t j = 0; j < ss.size(); ++j)
    EXPECT_NEAR(emp[static_cast<std::size_t>(j)], p.at(row, j), 0.02);
}

TEST(SynchronousGlauber, StaysInRangeAndDeterministic) {
  const auto g = graph::make_torus(4, 4);
  const mrf::Mrf m = mrf::make_potts(g, 3, 0.3);
  SynchronousGlauberChain a(m, 7);
  SynchronousGlauberChain b(m, 7);
  Config x = constant_config(m, 0);
  Config y = constant_config(m, 0);
  for (int t = 0; t < 30; ++t) {
    a.step(x, t);
    b.step(y, t);
  }
  EXPECT_EQ(x, y);
  for (int s : x) {
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 3);
  }
}

}  // namespace
}  // namespace lsample::chains
