#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace lsample::graph {
namespace {

TEST(Graph, EmptyGraph) {
  const Graph g(0);
  EXPECT_EQ(g.num_vertices(), 0);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_EQ(g.max_degree(), 0);
}

TEST(Graph, AddEdgeBasics) {
  Graph g(3);
  const int e = g.add_edge(0, 1);
  EXPECT_EQ(e, 0);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(1), 1);
  EXPECT_EQ(g.degree(2), 0);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(Graph, RejectsSelfLoopsAndBadIds) {
  Graph g(2);
  EXPECT_THROW((void)g.add_edge(0, 0), std::invalid_argument);
  EXPECT_THROW((void)g.add_edge(0, 2), std::invalid_argument);
  EXPECT_THROW((void)g.add_edge(-1, 1), std::invalid_argument);
  EXPECT_THROW((void)g.degree(5), std::invalid_argument);
  EXPECT_THROW((void)g.edge(0), std::invalid_argument);
}

TEST(Graph, ParallelEdgesAreDistinct) {
  Graph g(2);
  const int e1 = g.add_edge(0, 1);
  const int e2 = g.add_edge(0, 1);
  EXPECT_NE(e1, e2);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.degree(0), 2);
  EXPECT_EQ(g.degree(1), 2);
  // Neighbor appears twice, aligned with the two incident edges.
  EXPECT_EQ(g.neighbors(0).size(), 2u);
  EXPECT_EQ(g.neighbors(0)[0], 1);
  EXPECT_EQ(g.neighbors(0)[1], 1);
}

TEST(Graph, NeighborsAlignWithIncidentEdges) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  const auto inc = g.incident_edges(0);
  const auto nbr = g.neighbors(0);
  ASSERT_EQ(inc.size(), nbr.size());
  for (std::size_t i = 0; i < inc.size(); ++i)
    EXPECT_EQ(g.other_endpoint(inc[i], 0), nbr[i]);
}

TEST(Graph, OtherEndpointValidatesMembership) {
  Graph g(3);
  const int e = g.add_edge(0, 1);
  EXPECT_EQ(g.other_endpoint(e, 0), 1);
  EXPECT_EQ(g.other_endpoint(e, 1), 0);
  EXPECT_THROW((void)g.other_endpoint(e, 2), std::invalid_argument);
}

TEST(Graph, MaxDegreeTracksInsertions) {
  Graph g(4);
  EXPECT_EQ(g.max_degree(), 0);
  g.add_edge(0, 1);
  EXPECT_EQ(g.max_degree(), 1);
  g.add_edge(0, 2);
  EXPECT_EQ(g.max_degree(), 2);
  g.add_edge(0, 3);
  EXPECT_EQ(g.max_degree(), 3);
  g.add_edge(1, 2);
  EXPECT_EQ(g.max_degree(), 3);
}

}  // namespace
}  // namespace lsample::graph
