// The write-set determinism auditor (chains/write_audit.hpp): clean chains,
// networks, and sharded runs pass with a non-vacuous access record; audited
// trajectories are bit-identical to unaudited ones; and seeded ownership
// violations — an out-of-slot write, a same-epoch foreign read, and a
// non-independent scheduler — are caught DETERMINISTICALLY, with the
// offending units, region, and slot named in the error.  Mutation tests run
// sequentially as well as under an engine: the verdict is a pure function of
// the declared access set, so a violation fails at ANY thread count (the
// property TSan cannot give).  In unaudited builds everything here skips
// except the no-op contract test.
#include "chains/write_audit.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "chains/engine.hpp"
#include "chains/init.hpp"
#include "chains/local_metropolis.hpp"
#include "chains/luby_glauber.hpp"
#include "chains/schedulers.hpp"
#include "chains/synchronous_glauber.hpp"
#include "graph/generators.hpp"
#include "local/node_programs.hpp"
#include "local/sharding.hpp"
#include "mrf/models.hpp"

namespace lsample::chains {
namespace {

#define SKIP_UNLESS_AUDITED()                                       \
  do {                                                              \
    if (!audit::compiled_in())                                      \
      GTEST_SKIP() << "build with -DLSAMPLE_AUDIT=ON to run this"; \
  } while (false)

/// Turns auditing on for one test and restores the off default afterwards.
class AuditGuard {
 public:
  AuditGuard() {
    audit::reset_totals();
    audit::set_enabled(true);
  }
  ~AuditGuard() { audit::set_enabled(false); }
};

mrf::Config run_steps(Chain& chain, mrf::Config x, int steps) {
  for (int t = 0; t < steps; ++t) chain.step(x, t);
  return x;
}

TEST(EngineAudit, UnauditedBuildHooksFoldToNothing) {
  if (audit::compiled_in()) GTEST_SKIP() << "audited build";
  audit::set_enabled(true);  // must be a no-op
  EXPECT_FALSE(audit::enabled());
  EXPECT_EQ(audit::totals().epochs, 0u);
  EXPECT_EQ(audit::totals().writes, 0u);
}

// ---------------------------------------------------------------------------
// Clean runs: every chain passes the audit, and the record is non-vacuous
// (a checker that records nothing would "pass" every mutation too).
// ---------------------------------------------------------------------------

TEST(EngineAudit, CleanChainsPassWithNonVacuousRecord) {
  SKIP_UNLESS_AUDITED();
  const mrf::Mrf m = mrf::make_proper_coloring(graph::make_torus(6, 6), 10);
  const mrf::Config x0 = greedy_feasible_config(m);
  for (int threads : {1, 3}) {
    ParallelEngine engine(threads);
    const auto check = [&](Chain& chain) {
      AuditGuard guard;
      chain.set_engine(&engine);
      EXPECT_NO_THROW(run_steps(chain, x0, 8));
      const audit::Totals totals = audit::totals();
      EXPECT_GT(totals.epochs, 0u) << "no epoch reached a closing check";
      EXPECT_GT(totals.writes, 0u) << "no write was ever declared";
      EXPECT_GT(totals.reads, 0u) << "no read was ever declared";
    };
    LubyGlauberChain luby(m, 11);
    check(luby);
    SynchronousGlauberChain sync(m, 12);
    check(sync);
    LocalMetropolisChain lm(m, 13);
    check(lm);
    LubyGlauberChain slack(
        m, 14, std::make_unique<SlackLubyScheduler>(m.graph_ptr(), 0.2, 14));
    check(slack);
  }
}

TEST(EngineAudit, EngineLessSequentialRunsAreAuditedToo) {
  SKIP_UNLESS_AUDITED();
  const mrf::Mrf m = mrf::make_proper_coloring(graph::make_torus(5, 5), 9);
  const mrf::Config x0 = greedy_feasible_config(m);
  AuditGuard guard;
  LubyGlauberChain chain(m, 21);  // no engine: run_partitioned(nullptr, ...)
  EXPECT_NO_THROW(run_steps(chain, x0, 6));
  EXPECT_GT(audit::totals().epochs, 0u);
  EXPECT_GT(audit::totals().writes, 0u);
}

TEST(EngineAudit, AuditedTrajectoryBitIdenticalToUnaudited) {
  SKIP_UNLESS_AUDITED();
  const mrf::Mrf m = mrf::make_proper_coloring(graph::make_torus(6, 6), 10);
  const mrf::Config x0 = greedy_feasible_config(m);
  const int steps = 12;
  for (int threads : {1, 3}) {
    ParallelEngine engine(threads);

    LubyGlauberChain plain(m, 33);
    plain.set_engine(&engine);
    const mrf::Config unaudited = run_steps(plain, x0, steps);

    LubyGlauberChain instrumented(m, 33);
    instrumented.set_engine(&engine);
    mrf::Config audited;
    {
      AuditGuard guard;
      audited = run_steps(instrumented, x0, steps);
    }
    EXPECT_EQ(audited, unaudited) << "threads=" << threads;
  }
}

// ---------------------------------------------------------------------------
// Seeded mutation: an out-of-slot write.  Unit 7 claims slot 8 on top of its
// own — the write/write check must name both units and the slot, and must do
// so at every thread count including 1 (the verdict depends only on the
// declared set).
// ---------------------------------------------------------------------------

void job_with_out_of_slot_write(std::vector<int>& data, int thread_begin,
                                int end) {
  for (int i = thread_begin; i < end; ++i) {
    LS_AUDIT_UNIT(i);
    data[static_cast<std::size_t>(i)] = i;
    LS_AUDIT_WRITE(config, i, &data[static_cast<std::size_t>(i)], sizeof(int));
    if (i == 7) {
      // The seeded bug: unit 7 also writes its neighbor's slot.  The store
      // itself only happens on the sequential paths (a real cross-thread
      // store would be an actual data race under TSan); the DECLARATION is
      // what the auditor judges, and it is identical on every path.
      LS_AUDIT_WRITE(config, 8, &data[8], sizeof(int));
    }
  }
}

TEST(EngineAudit, OutOfSlotWriteIsCaughtAndNamed) {
  SKIP_UNLESS_AUDITED();
  for (int threads : {1, 2, 3}) {
    ParallelEngine engine(threads);
    std::vector<int> data(64, 0);
    AuditGuard guard;
    LS_AUDIT_SCOPE("mutation.out_of_slot");
    try {
      engine.parallel_for(64, [&](int /*thread*/, int begin, int end) {
        job_with_out_of_slot_write(data, begin, end);
      });
      FAIL() << "out-of-slot write not caught at threads=" << threads;
    } catch (const audit::AuditError& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("mutation.out_of_slot"), std::string::npos) << msg;
      EXPECT_NE(msg.find("write/write overlap"), std::string::npos) << msg;
      EXPECT_NE(msg.find("unit 7"), std::string::npos) << msg;
      EXPECT_NE(msg.find("unit 8"), std::string::npos) << msg;
      EXPECT_NE(msg.find("config[8]"), std::string::npos) << msg;
    }
  }
}

TEST(EngineAudit, OutOfSlotWriteIsCaughtOnTheEngineLessPath) {
  SKIP_UNLESS_AUDITED();
  std::vector<int> data(64, 0);
  AuditGuard guard;
  LS_AUDIT_SCOPE("mutation.out_of_slot");
  EXPECT_THROW(run_partitioned(nullptr, 64,
                               [&](int /*thread*/, int begin, int end) {
                                 job_with_out_of_slot_write(data, begin, end);
                               }),
               audit::AuditError);
}

// ---------------------------------------------------------------------------
// Seeded mutation: a same-epoch foreign read.  Unit 5 reads slot 6 while
// unit 6 writes it — legal only across a barrier, so the read/write check
// must fire and name the reader, the writer, and the slot.
// ---------------------------------------------------------------------------

TEST(EngineAudit, SameEpochForeignReadIsCaughtAndNamed) {
  SKIP_UNLESS_AUDITED();
  for (int threads : {1, 3}) {
    ParallelEngine engine(threads);
    std::vector<int> data(32, 0);
    AuditGuard guard;
    LS_AUDIT_SCOPE("mutation.foreign_read");
    try {
      engine.parallel_for(32, [&](int /*thread*/, int begin, int end) {
        for (int i = begin; i < end; ++i) {
          LS_AUDIT_UNIT(i);
          data[static_cast<std::size_t>(i)] = i;
          LS_AUDIT_WRITE(config, i, &data[static_cast<std::size_t>(i)],
                         sizeof(int));
          if (i == 5) LS_AUDIT_READ(config, 6, &data[6], sizeof(int));
        }
      });
      FAIL() << "foreign read not caught at threads=" << threads;
    } catch (const audit::AuditError& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("read of concurrently written state"),
                std::string::npos)
          << msg;
      EXPECT_NE(msg.find("unit 5"), std::string::npos) << msg;
      EXPECT_NE(msg.find("unit 6"), std::string::npos) << msg;
      EXPECT_NE(msg.find("config[6]"), std::string::npos) << msg;
    }
  }
}

TEST(EngineAudit, OwnSlotRereadsAndRewritesAreLegal) {
  SKIP_UNLESS_AUDITED();
  ParallelEngine engine(3);
  std::vector<int> data(32, 0);
  AuditGuard guard;
  EXPECT_NO_THROW(
      engine.parallel_for(32, [&](int /*thread*/, int begin, int end) {
        for (int i = begin; i < end; ++i) {
          LS_AUDIT_UNIT(i);
          // A unit may write, re-read, and re-write its own slot freely: its
          // chunk runs sequentially.
          data[static_cast<std::size_t>(i)] = i;
          LS_AUDIT_WRITE(config, i, &data[static_cast<std::size_t>(i)],
                         sizeof(int));
          LS_AUDIT_READ(config, i, &data[static_cast<std::size_t>(i)],
                        sizeof(int));
          data[static_cast<std::size_t>(i)] += 1;
          LS_AUDIT_WRITE(config, i, &data[static_cast<std::size_t>(i)],
                         sizeof(int));
        }
      }));
}

// ---------------------------------------------------------------------------
// Seeded mutation: a scheduler whose "independent set" is not independent.
// LubyGlauber's in-place parallel resample is legal exactly because no two
// adjacent vertices update in one step; selecting everything makes adjacent
// units write config[v] while their neighbors' kernels read it.
// ---------------------------------------------------------------------------

class EverythingScheduler final : public IndependentSetScheduler {
 public:
  void select(std::int64_t /*t*/, std::vector<char>& selected) override {
    selected.assign(selected.size(), 1);
  }
  void prepare(std::int64_t /*t*/) override {}
  [[nodiscard]] bool in_set(int /*v*/) const override { return true; }
  [[nodiscard]] double gamma_lower_bound() const noexcept override {
    return 1.0;
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "everything";
  }
};

TEST(EngineAudit, NonIndependentSchedulerIsCaught) {
  SKIP_UNLESS_AUDITED();
  const mrf::Mrf m = mrf::make_proper_coloring(graph::make_path(8), 4);
  const mrf::Config x0 = greedy_feasible_config(m);
  AuditGuard guard;
  LubyGlauberChain chain(m, 5, std::make_unique<EverythingScheduler>());
  mrf::Config x = x0;
  try {
    chain.step(x, 0);
    FAIL() << "non-independent selected set not caught";
  } catch (const audit::AuditError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("LubyGlauber.step"), std::string::npos) << msg;
    EXPECT_NE(msg.find("config["), std::string::npos) << msg;
  }
  // The reference scheduler on the same model passes under the same audit.
  LubyGlauberChain good(m, 5);
  mrf::Config y = x0;
  EXPECT_NO_THROW(good.step(y, 0));
}

// ---------------------------------------------------------------------------
// LOCAL runtime: network rounds and the sharded halo exchange run clean
// under the audit, with arena ownership actually recorded.
// ---------------------------------------------------------------------------

TEST(EngineAudit, NetworkRoundsRunCleanUnderAudit) {
  SKIP_UNLESS_AUDITED();
  const mrf::Mrf m = mrf::make_proper_coloring(graph::make_torus(5, 5), 9);
  const mrf::Config x0 = greedy_feasible_config(m);
  for (int threads : {1, 3}) {
    ParallelEngine engine(threads);
    local::Network net = local::make_luby_glauber_network(m, x0, 17);
    net.set_engine(&engine);
    AuditGuard guard;
    EXPECT_NO_THROW(net.run_rounds(5));
    EXPECT_GT(audit::totals().writes, 0u) << "arena writes not recorded";
    EXPECT_GT(audit::totals().reads, 0u) << "arena reads not recorded";
  }
}

TEST(EngineAudit, ShardedHaloExchangeRunsCleanUnderAudit) {
  SKIP_UNLESS_AUDITED();
  const mrf::Mrf m = mrf::make_proper_coloring(graph::make_torus(6, 6), 10);
  const mrf::Config x0 = greedy_feasible_config(m);
  local::ShardedNetwork::Options opt;
  opt.partition.num_shards = 3;
  local::ShardedNetwork net =
      local::make_sharded_luby_glauber_network(m, x0, 7, std::move(opt));
  AuditGuard guard;
  EXPECT_NO_THROW(net.run_rounds(5));
  EXPECT_GT(audit::totals().epochs, 0u);
  EXPECT_GT(audit::totals().writes, 0u);
}

}  // namespace
}  // namespace lsample::chains
