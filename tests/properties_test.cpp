#include "graph/properties.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace lsample::graph {
namespace {

TEST(Bfs, DistancesOnPath) {
  const auto g = make_path(5);
  const auto dist = bfs_distances(*g, 0);
  for (int v = 0; v < 5; ++v) EXPECT_EQ(dist[static_cast<std::size_t>(v)], v);
}

TEST(Bfs, UnreachableIsMinusOne) {
  Graph g(3);
  g.add_edge(0, 1);
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[2], -1);
  EXPECT_FALSE(is_connected(g));
}

TEST(Components, LabelsInDiscoveryOrder) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(3, 4);
  const auto comp = connected_components(g);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[2]);
  EXPECT_NE(comp[2], comp[3]);
}

TEST(Diameter, KnownValues) {
  EXPECT_EQ(diameter(*make_path(10)), 9);
  EXPECT_EQ(diameter(*make_cycle(8)), 4);
  EXPECT_EQ(diameter(*make_cycle(9)), 4);
  EXPECT_EQ(diameter(*make_complete(6)), 1);
  EXPECT_EQ(diameter(*make_grid(3, 4)), 5);
  EXPECT_EQ(diameter(*make_hypercube(5)), 5);
}

TEST(Diameter, ThrowsOnDisconnected) {
  Graph g(2);
  EXPECT_THROW((void)diameter(g), std::invalid_argument);
}

TEST(DiameterLowerBound, TightOnPathsAndTrees) {
  EXPECT_EQ(diameter_lower_bound(*make_path(20)), 19);
  util::Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    const auto g = make_random_tree(40, rng);
    // Double sweep is exact on trees.
    EXPECT_EQ(diameter_lower_bound(*g), diameter(*g));
  }
}

TEST(IndependentSet, DetectsViolations) {
  const auto g = make_path(4);
  EXPECT_TRUE(is_independent_set(*g, {1, 0, 1, 0}));
  EXPECT_TRUE(is_independent_set(*g, {0, 0, 0, 0}));
  EXPECT_FALSE(is_independent_set(*g, {1, 1, 0, 0}));
}

TEST(ProperColoring, DetectsViolations) {
  const auto g = make_cycle(4);
  EXPECT_TRUE(is_proper_coloring(*g, {0, 1, 0, 1}));
  EXPECT_FALSE(is_proper_coloring(*g, {0, 1, 1, 0}));
}

TEST(GreedyColoring, ProperAndBounded) {
  util::Rng rng(7);
  for (int trial = 0; trial < 5; ++trial) {
    const auto g = make_erdos_renyi(30, 0.2, rng);
    const auto colors = greedy_coloring(*g);
    EXPECT_TRUE(is_proper_coloring(*g, colors));
    EXPECT_LE(count_distinct(colors), g->max_degree() + 1);
  }
}

TEST(CountDistinct, Basic) {
  EXPECT_EQ(count_distinct({}), 0);
  EXPECT_EQ(count_distinct({3, 3, 3}), 1);
  EXPECT_EQ(count_distinct({0, 1, 2, 1}), 3);
}

}  // namespace
}  // namespace lsample::graph
