// Stationarity of the CSP generalizations (the §3 and §4 remarks), verified
// exactly on small factor graphs, plus behavioral checks of the samplers.
#include "csp/csp_chains.hpp"

#include <gtest/gtest.h>

#include <functional>

#include "csp/csp_exact.hpp"
#include "csp/csp_models.hpp"
#include "graph/generators.hpp"
#include "inference/exact.hpp"
#include "inference/transition.hpp"
#include "mrf/models.hpp"

namespace lsample::csp {
namespace {

struct CspCase {
  std::string name;
  std::function<FactorGraph()> make;
};

std::vector<CspCase> csp_cases() {
  return {
      {"dominating_path3",
       [] { return make_dominating_set(*graph::make_path(3), 1.5); }},
      {"dominating_cycle4",
       [] { return make_dominating_set(*graph::make_cycle(4), 1.0); }},
      {"nae_two_triples",
       [] { return make_hypergraph_nae(4, 2, {{0, 1, 2}, {1, 2, 3}}); }},
      {"hyper_is",
       [] {
         return make_hypergraph_independent_set(4, {{0, 1, 2}, {2, 3}}, 2.0);
       }},
      {"mrf_embedding",
       [] {
         return make_mrf_as_csp(
             mrf::make_proper_coloring(graph::make_path(3), 3));
       }},
  };
}

class CspStationaritySuite : public ::testing::TestWithParam<CspCase> {
 protected:
  static constexpr double kTol = 1e-9;
};

TEST_P(CspStationaritySuite, GlauberIsReversible) {
  const FactorGraph fg = GetParam().make();
  const inference::StateSpace ss(fg.n(), fg.q());
  const auto mu = csp_gibbs_distribution(fg, ss);
  const auto p = csp_glauber_transition(fg, ss);
  EXPECT_LT(p.row_sum_error(), kTol);
  EXPECT_LT(inference::stationarity_error(p, mu), kTol);
  EXPECT_LT(inference::detailed_balance_error(p, mu), kTol);
}

TEST_P(CspStationaritySuite, LubyGlauberIsReversible) {
  const FactorGraph fg = GetParam().make();
  const inference::StateSpace ss(fg.n(), fg.q());
  const auto mu = csp_gibbs_distribution(fg, ss);
  const auto p = csp_luby_glauber_transition(fg, ss);
  EXPECT_LT(p.row_sum_error(), kTol);
  EXPECT_LT(inference::stationarity_error(p, mu), kTol);
  EXPECT_LT(inference::detailed_balance_error(p, mu), kTol);
}

TEST_P(CspStationaritySuite, LocalMetropolisIsReversible) {
  const FactorGraph fg = GetParam().make();
  const inference::StateSpace ss(fg.n(), fg.q());
  const auto mu = csp_gibbs_distribution(fg, ss);
  const auto p = csp_local_metropolis_transition(fg, ss);
  EXPECT_LT(p.row_sum_error(), kTol);
  EXPECT_LT(inference::stationarity_error(p, mu), kTol);
  EXPECT_LT(inference::detailed_balance_error(p, mu), kTol);
}

INSTANTIATE_TEST_SUITE_P(AllCsps, CspStationaritySuite,
                         ::testing::ValuesIn(csp_cases()),
                         [](const auto& test_info) { return test_info.param.name; });

// The CSP LocalMetropolis on a binary-constraint embedding must have the
// *identical* transition matrix as the MRF LocalMetropolis — the 2^k - 1
// mixing factors specialize exactly to the 3-factor edge filter.
TEST(CspMrfEquivalence, LocalMetropolisKernelsAreIdentical) {
  const auto g = graph::make_path(3);
  const mrf::Mrf m = mrf::make_ising(g, 0.5, 0.2);
  const FactorGraph fg = make_mrf_as_csp(m);
  const inference::StateSpace ss(3, 2);
  const auto p_mrf = inference::local_metropolis_transition(m, ss);
  const auto p_csp = csp_local_metropolis_transition(fg, ss);
  for (std::int64_t i = 0; i < ss.size(); ++i)
    for (std::int64_t j = 0; j < ss.size(); ++j)
      EXPECT_NEAR(p_mrf.at(i, j), p_csp.at(i, j), 1e-12);
}

TEST(CspChains, SamplersPreserveFeasibility) {
  const auto g = graph::make_cycle(8);
  const FactorGraph fg = make_dominating_set(*g, 1.0);
  Config x(8, 1);  // everything chosen dominates everything
  ASSERT_TRUE(fg.feasible(x));
  CspLocalMetropolisChain lm(fg, 3);
  for (int t = 0; t < 100; ++t) {
    lm.step(x, t);
    ASSERT_TRUE(fg.feasible(x)) << "t=" << t;
  }
  Config y(8, 1);
  CspLubyGlauberChain lg(fg, 3);
  for (int t = 0; t < 100; ++t) {
    lg.step(y, t);
    ASSERT_TRUE(fg.feasible(y)) << "t=" << t;
  }
}

TEST(CspChains, EmpiricalOccupancyMatchesExact) {
  const auto g = graph::make_path(3);
  const FactorGraph fg = make_dominating_set(*g, 1.0);
  const inference::StateSpace ss(3, 2);
  const auto mu = csp_gibbs_distribution(fg, ss);
  // Exact Pr[vertex 0 chosen].
  double exact = 0.0;
  for (std::int64_t i = 0; i < ss.size(); ++i)
    if (ss.spin_of(i, 0) == 1) exact += mu[static_cast<std::size_t>(i)];

  const int runs = 4000;
  int hits = 0;
  for (int r = 0; r < runs; ++r) {
    CspLocalMetropolisChain chain(fg, 1000 + static_cast<std::uint64_t>(r));
    Config x(3, 1);
    for (int t = 0; t < 40; ++t) chain.step(x, t);
    hits += x[0];
  }
  EXPECT_NEAR(static_cast<double>(hits) / runs, exact, 0.03);
}

}  // namespace
}  // namespace lsample::csp
