// Tree belief propagation against brute-force enumeration, plus the
// exponential correlation decay (property (28)) that powers Theorem 5.1.
#include "inference/tree_bp.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "inference/exact.hpp"
#include "mrf/models.hpp"
#include "util/summary.hpp"

namespace lsample::inference {
namespace {

std::vector<double> brute_marginal(const mrf::Mrf& m, const StateSpace& ss,
                                   int v) {
  const auto mu = gibbs_distribution(m, ss);
  std::vector<double> marg(static_cast<std::size_t>(m.q()), 0.0);
  for (std::int64_t i = 0; i < ss.size(); ++i)
    marg[static_cast<std::size_t>(ss.spin_of(i, v))] +=
        mu[static_cast<std::size_t>(i)];
  return marg;
}

TEST(TreeBp, MarginalsMatchEnumerationOnPath) {
  const auto g = graph::make_path(5);
  for (const mrf::Mrf& m :
       {mrf::make_proper_coloring(g, 3), mrf::make_hardcore(g, 1.4),
        mrf::make_ising(g, 0.7, 0.2)}) {
    const StateSpace ss(m.n(), m.q());
    const TreeBp bp(m);
    for (int v = 0; v < m.n(); ++v) {
      const auto exact = brute_marginal(m, ss, v);
      const auto approx = bp.marginal(v);
      for (int c = 0; c < m.q(); ++c)
        EXPECT_NEAR(approx[static_cast<std::size_t>(c)],
                    exact[static_cast<std::size_t>(c)], 1e-10);
    }
  }
}

TEST(TreeBp, MarginalsMatchEnumerationOnRandomTrees) {
  util::Rng rng(13);
  for (int trial = 0; trial < 4; ++trial) {
    const auto g = graph::make_random_tree(7, rng);
    const mrf::Mrf m = mrf::make_potts(g, 3, 0.5);
    const StateSpace ss(7, 3);
    const TreeBp bp(m);
    for (int v = 0; v < 7; ++v) {
      const auto exact = brute_marginal(m, ss, v);
      const auto approx = bp.marginal(v);
      for (int c = 0; c < 3; ++c)
        EXPECT_NEAR(approx[static_cast<std::size_t>(c)],
                    exact[static_cast<std::size_t>(c)], 1e-10);
    }
  }
}

TEST(TreeBp, LogPartitionMatchesEnumeration) {
  const auto g = graph::make_binary_tree(6);
  const mrf::Mrf m = mrf::make_ising(g, 0.4, -0.2);
  const StateSpace ss(6, 2);
  const TreeBp bp(m);
  EXPECT_NEAR(bp.log_partition(), std::log(partition_function(m, ss)), 1e-10);
}

TEST(TreeBp, ConditionalMarginalMatchesEnumeration) {
  const auto g = graph::make_path(5);
  const mrf::Mrf m = mrf::make_proper_coloring(g, 3);
  const StateSpace ss(5, 3);
  const auto mu = gibbs_distribution(m, ss);
  const TreeBp bp(m);
  // Exact conditional of vertex 4 given sigma_0 = 1.
  std::vector<double> cond(3, 0.0);
  double z = 0.0;
  for (std::int64_t i = 0; i < ss.size(); ++i) {
    if (ss.spin_of(i, 0) != 1) continue;
    cond[static_cast<std::size_t>(ss.spin_of(i, 4))] +=
        mu[static_cast<std::size_t>(i)];
    z += mu[static_cast<std::size_t>(i)];
  }
  for (auto& c : cond) c /= z;
  const auto approx = bp.conditional_marginal(4, 0, 1);
  for (int c = 0; c < 3; ++c)
    EXPECT_NEAR(approx[static_cast<std::size_t>(c)],
                cond[static_cast<std::size_t>(c)], 1e-10);
}

TEST(TreeBp, PairJointMatchesEnumeration) {
  const auto g = graph::make_path(6);
  const mrf::Mrf m = mrf::make_hardcore(g, 0.9);
  const StateSpace ss(6, 2);
  const auto mu = gibbs_distribution(m, ss);
  const TreeBp bp(m);
  std::vector<double> joint(4, 0.0);
  for (std::int64_t i = 0; i < ss.size(); ++i)
    joint[static_cast<std::size_t>(ss.spin_of(i, 1) * 2 + ss.spin_of(i, 5))] +=
        mu[static_cast<std::size_t>(i)];
  const auto approx = bp.pair_joint(1, 5);
  for (int k = 0; k < 4; ++k)
    EXPECT_NEAR(approx[static_cast<std::size_t>(k)],
                joint[static_cast<std::size_t>(k)], 1e-10);
}

TEST(TreeBp, RejectsNonTrees) {
  const auto g = graph::make_cycle(4);
  const mrf::Mrf m = mrf::make_proper_coloring(g, 3);
  EXPECT_THROW(TreeBp{m}, std::invalid_argument);
}

// Property (28): on a path with q = 3 colors, the influence of vertex u's
// color on vertex v's conditional marginal decays exponentially in
// dist(u,v) — measure the decay rate and check geometric behavior.
TEST(TreeBp, ExponentialCorrelationDecayOnPathColoring) {
  const int n = 14;
  const auto g = graph::make_path(n);
  const mrf::Mrf m = mrf::make_proper_coloring(g, 3);
  const TreeBp bp(m);
  std::vector<double> influence;
  for (int d = 1; d <= 8; ++d) {
    const auto a = bp.conditional_marginal(d, 0, 0);
    const auto b = bp.conditional_marginal(d, 0, 1);
    influence.push_back(util::total_variation(a, b));
  }
  // Strictly positive at every distance (long-range correlation exists) ...
  for (double i : influence) EXPECT_GT(i, 0.0);
  // ... and the decay is geometric: successive ratios stabilize.
  const double r1 = influence[5] / influence[4];
  const double r2 = influence[6] / influence[5];
  const double r3 = influence[7] / influence[6];
  EXPECT_LT(r1, 1.0);
  EXPECT_NEAR(r1, r2, 0.1);
  EXPECT_NEAR(r2, r3, 0.1);
}

}  // namespace
}  // namespace lsample::inference
