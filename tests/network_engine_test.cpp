// The compiled LOCAL-model runtime: node-parallel rounds must reproduce the
// reference chains bit for bit at any thread count, MessageStats must be
// exactly thread-count-invariant and equal to the seed simulator's counts,
// the NodeContext port API must reject misuse with named errors, and the
// facade's local_network backend must equal the chain backend bitwise.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "chains/chain.hpp"
#include "chains/engine.hpp"
#include "chains/init.hpp"
#include "chains/local_metropolis.hpp"
#include "chains/luby_glauber.hpp"
#include "chains/replicas.hpp"
#include "core/sampler.hpp"
#include "csp/csp_chains.hpp"
#include "csp/csp_models.hpp"
#include "graph/generators.hpp"
#include "local/csp_node_programs.hpp"
#include "local/luby_mis.hpp"
#include "local/node_programs.hpp"
#include "mrf/models.hpp"

namespace lsample::local {
namespace {

std::vector<int> test_thread_counts() {
  std::vector<int> counts{1, 2, 4};
  const int hw = chains::ParallelEngine::hardware_threads();
  if (std::find(counts.begin(), counts.end(), hw) == counts.end())
    counts.push_back(hw);
  return counts;
}

TEST(NetworkEngine, LubyGlauberBitIdenticalToChainAtAnyThreadCount) {
  util::Rng grng(3);
  const auto g = graph::make_random_regular(18, 4, grng);
  const mrf::Mrf m = mrf::make_proper_coloring(g, 9);
  const mrf::Config x0 = chains::greedy_feasible_config(m);
  const int rounds = 25;
  for (std::uint64_t seed : {1ull, 42ull}) {
    chains::LubyGlauberChain chain(m, seed);
    mrf::Config x = x0;
    chains::run(chain, x, 0, rounds - 1);
    MessageStats reference_stats;
    bool have_reference = false;
    for (int threads : test_thread_counts()) {
      chains::ParallelEngine engine(threads);
      Network net = make_luby_glauber_network(m, x0, seed);
      net.set_engine(&engine);
      net.run_rounds(rounds);
      EXPECT_EQ(net.outputs(), x) << "seed " << seed << ", " << threads
                                  << " threads";
      if (!have_reference) {
        reference_stats = net.stats();
        have_reference = true;
        // The 1-thread stats must equal the seed simulator's accounting:
        // one message per directed edge per round, 64+spin bits each.
        EXPECT_EQ(reference_stats.rounds, rounds);
        EXPECT_EQ(reference_stats.messages,
                  static_cast<std::int64_t>(rounds) * 2 * g->num_edges());
        EXPECT_EQ(reference_stats.bits,
                  reference_stats.messages * (64 + spin_bits(9)));
      } else {
        EXPECT_TRUE(net.stats() == reference_stats)
            << "MessageStats changed at " << threads << " threads";
      }
    }
  }
}

TEST(NetworkEngine, LocalMetropolisBitIdenticalToChainAtAnyThreadCount) {
  util::Rng grng(5);
  const auto g = graph::make_erdos_renyi(16, 0.25, grng);
  const mrf::Mrf m = mrf::make_proper_coloring(g, g->max_degree() + 3);
  const mrf::Config x0 = chains::greedy_feasible_config(m);
  const int rounds = 25;
  chains::LocalMetropolisChain chain(m, 11);
  mrf::Config x = x0;
  chains::run(chain, x, 0, rounds - 1);
  MessageStats reference_stats;
  bool have_reference = false;
  for (int threads : test_thread_counts()) {
    chains::ParallelEngine engine(threads);
    Network net = make_local_metropolis_network(m, x0, 11);
    net.set_engine(&engine);
    net.run_rounds(rounds);
    EXPECT_EQ(net.outputs(), x) << threads << " threads";
    if (!have_reference) {
      reference_stats = net.stats();
      have_reference = true;
      EXPECT_EQ(reference_stats.messages,
                static_cast<std::int64_t>(rounds) * 2 * g->num_edges());
      EXPECT_EQ(reference_stats.bits,
                reference_stats.messages *
                    (2 * spin_bits(g->max_degree() + 3)));
    } else {
      EXPECT_TRUE(net.stats() == reference_stats)
          << "MessageStats changed at " << threads << " threads";
    }
  }
}

TEST(NetworkEngine, MultigraphBitIdenticalToChainAtAnyThreadCount) {
  // Parallel edges carry independent coins; the arena must keep several
  // ports to the same neighbor distinct, in parallel too.
  auto g = std::make_shared<graph::Graph>(4);
  g->add_edge(0, 1);
  g->add_edge(0, 1);
  g->add_edge(1, 2);
  g->add_edge(2, 3);
  g->add_edge(3, 0);
  const mrf::Mrf m = mrf::make_proper_coloring(g, 6);
  const mrf::Config x0 = chains::greedy_feasible_config(m);
  const int rounds = 30;
  chains::LocalMetropolisChain chain(m, 21);
  mrf::Config x = x0;
  chains::run(chain, x, 0, rounds - 1);
  for (int threads : test_thread_counts()) {
    chains::ParallelEngine engine(threads);
    Network net = make_local_metropolis_network(m, x0, 21);
    net.set_engine(&engine);
    net.run_rounds(rounds);
    EXPECT_EQ(net.outputs(), x) << threads << " threads";
  }
}

TEST(NetworkEngine, LubyMisBitIdenticalAcrossThreadCounts) {
  util::Rng grng(7);
  const auto g = graph::make_erdos_renyi(40, 0.12, grng);
  Network reference = make_luby_mis_network(g, 11);
  const auto reference_rounds = run_luby_mis(reference);
  for (int threads : test_thread_counts()) {
    chains::ParallelEngine engine(threads);
    Network net = make_luby_mis_network(g, 11);
    net.set_engine(&engine);
    const auto rounds = run_luby_mis(net);
    EXPECT_EQ(rounds, reference_rounds) << threads << " threads";
    EXPECT_EQ(net.outputs(), reference.outputs()) << threads << " threads";
    EXPECT_TRUE(net.stats() == reference.stats()) << threads << " threads";
  }
}

TEST(NetworkEngine, CspNetworkBitIdenticalToChainAtAnyThreadCount) {
  const auto g = graph::make_grid(4, 4);
  const csp::FactorGraph fg = csp::make_dominating_set(*g, 0.8);
  const csp::Config x0(16, 1);
  const int rounds = 25;
  csp::CspLocalMetropolisChain chain(fg, 21);
  csp::Config x = x0;
  for (int t = 0; t < rounds - 1; ++t) chain.step(x, t);
  MessageStats reference_stats;
  bool have_reference = false;
  for (int threads : test_thread_counts()) {
    chains::ParallelEngine engine(threads);
    Network net = make_csp_local_metropolis_network(fg, x0, 21);
    net.set_engine(&engine);
    net.run_rounds(rounds);
    EXPECT_EQ(net.outputs(), x) << threads << " threads";
    if (!have_reference) {
      reference_stats = net.stats();
      have_reference = true;
    } else {
      EXPECT_TRUE(net.stats() == reference_stats) << threads << " threads";
    }
  }
}

// --- NodeContext port API misuse -> LS_REQUIRE with node/port named ------

/// A deliberately misbehaving user program for the virtual-fallback path.
class MisbehavingProgram final : public NodeProgram {
 public:
  enum class Mode {
    send_bad_port,
    receive_bad_port,
    oversized_message,
    query_bad_edge,
    query_bad_neighbor,
    behave,
  };

  MisbehavingProgram(int vertex, Mode mode) : v_(vertex), mode_(mode) {}

  void on_round(NodeContext& ctx) override {
    const std::uint64_t word = static_cast<std::uint64_t>(v_);
    switch (v_ == 0 ? mode_ : Mode::behave) {
      case Mode::send_bad_port:
        ctx.send(ctx.degree(), {&word, 1}, 1);
        break;
      case Mode::receive_bad_port:
        (void)ctx.received(-1);
        break;
      case Mode::oversized_message: {
        const std::vector<std::uint64_t> words(
            static_cast<std::size_t>(kDefaultMessageCapacityWords) + 1, 0);
        ctx.send(0, words, 1);
        break;
      }
      case Mode::query_bad_edge:
        (void)ctx.edge_of_port(ctx.degree() + 3);
        break;
      case Mode::query_bad_neighbor:
        (void)ctx.neighbor_of_port(-2);
        break;
      case Mode::behave:
        for (int port = 0; port < ctx.degree(); ++port)
          ctx.send(port, {&word, 1}, 1);
        break;
    }
  }

  [[nodiscard]] int output() const noexcept override { return 0; }

 private:
  int v_;
  Mode mode_;
};

Network make_misbehaving_network(MisbehavingProgram::Mode mode) {
  return Network(graph::make_cycle(6), 1, [mode](int v) {
    return std::make_unique<MisbehavingProgram>(v, mode);
  });
}

TEST(NetworkBoundsChecks, PortMisusePromotesToNamedRequire) {
  using Mode = MisbehavingProgram::Mode;
  for (Mode mode : {Mode::send_bad_port, Mode::receive_bad_port,
                    Mode::query_bad_edge, Mode::query_bad_neighbor}) {
    Network net = make_misbehaving_network(mode);
    try {
      net.run_round();
      FAIL() << "port misuse must throw";
    } catch (const std::invalid_argument& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("node 0"), std::string::npos) << what;
      EXPECT_NE(what.find("port"), std::string::npos) << what;
      EXPECT_NE(what.find("out of range"), std::string::npos) << what;
    }
  }
}

TEST(NetworkBoundsChecks, OversizedMessagePromotesToNamedRequire) {
  Network net = make_misbehaving_network(
      MisbehavingProgram::Mode::oversized_message);
  try {
    net.run_round();
    FAIL() << "oversized message must throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("node 0"), std::string::npos) << what;
    EXPECT_NE(what.find("exceeds the arena capacity"), std::string::npos)
        << what;
  }
}

TEST(NetworkBoundsChecks, WorkerThreadMisuseRethrownOnCaller) {
  // A node program throwing inside an engine worker must surface as the same
  // exception on run_round's caller, not std::terminate.
  chains::ParallelEngine engine(2);
  Network net = make_misbehaving_network(
      MisbehavingProgram::Mode::send_bad_port);
  net.set_engine(&engine);
  EXPECT_THROW(net.run_round(), std::invalid_argument);
}

TEST(NetworkFallback, VirtualProgramsMatchSequentialUnderEngine) {
  // The ProgramFactory fallback also runs node-parallel and keeps identical
  // stats.
  Network reference = make_misbehaving_network(
      MisbehavingProgram::Mode::behave);
  reference.run_rounds(5);
  chains::ParallelEngine engine(3);
  Network net = make_misbehaving_network(MisbehavingProgram::Mode::behave);
  net.set_engine(&engine);
  net.run_rounds(5);
  EXPECT_EQ(net.outputs(), reference.outputs());
  EXPECT_TRUE(net.stats() == reference.stats());
}

// --- discretized-priority accounting (E9 satellite) ----------------------

TEST(DiscretizedPriorities, BudgetAccountingKeepsTrajectoryAndCountsFlips) {
  util::Rng grng(9);
  const auto g = graph::make_random_regular(32, 4, grng);
  const int q = 8;
  const mrf::Mrf m = mrf::make_proper_coloring(g, q);
  const mrf::Config x0 = chains::greedy_feasible_config(m);
  const int rounds = 20;

  Network full = make_luby_glauber_network(m, x0, 5);
  full.run_rounds(rounds);

  LubyGlauberNetOptions opt;
  opt.priority_bits = discretized_priority_bits(g->num_vertices());
  Network budget = make_luby_glauber_network(m, x0, 5, opt);
  budget.run_rounds(rounds);

  // Same trajectory (the budget only changes accounting), fewer bits.
  EXPECT_EQ(budget.outputs(), full.outputs());
  EXPECT_EQ(budget.stats().messages, full.stats().messages);
  EXPECT_EQ(budget.stats().bits,
            budget.stats().messages * (opt.priority_bits + spin_bits(q)));
  EXPECT_LT(budget.stats().bits, full.stats().bits);

  // The measured number of comparisons that would resolve differently at the
  // O(log n) budget: 0 on this run (the paper's w.h.p. claim).
  auto* table = dynamic_cast<LubyGlauberTable*>(budget.table());
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(table->quantized_comparison_flips(), 0);
}

}  // namespace
}  // namespace lsample::local

// --- facade backend -------------------------------------------------------

namespace lsample::core {
namespace {

TEST(FacadeBackend, LocalNetworkSampleEqualsChainSample) {
  util::Rng grng(13);
  const auto g = graph::make_random_regular(24, 4, grng);
  const mrf::Mrf m = mrf::make_proper_coloring(g, 12);
  for (Algorithm alg :
       {Algorithm::luby_glauber, Algorithm::local_metropolis}) {
    SamplerOptions chain_opt;
    chain_opt.algorithm = alg;
    chain_opt.seed = 7;
    chain_opt.rounds = 40;
    const SampleResult reference = sample_mrf(m, chain_opt);
    for (int threads : {1, 2, 4}) {
      SamplerOptions net_opt = chain_opt;
      net_opt.backend = Backend::local_network;
      net_opt.num_threads = threads;
      const SampleResult result = sample_mrf(m, net_opt);
      EXPECT_EQ(result.config, reference.config)
          << (alg == Algorithm::luby_glauber ? "LubyGlauber"
                                             : "LocalMetropolis")
          << " at " << threads << " threads";
      EXPECT_EQ(result.rounds, reference.rounds);
      // R chain steps cost R+1 simulated rounds; messages flow every round.
      EXPECT_EQ(result.message_stats.rounds, reference.rounds + 1);
      EXPECT_EQ(result.message_stats.messages,
                result.message_stats.rounds * 2 * g->num_edges());
    }
  }
}

TEST(FacadeBackend, SampleManyLocalNetworkMatchesPerReplicaSamples) {
  const auto g = graph::make_torus(4, 4);
  const mrf::Mrf m = mrf::make_ising(g, 0.3);
  SamplerOptions opt;
  opt.backend = Backend::local_network;
  opt.rounds = 30;
  opt.seed = 19;
  opt.num_replicas = 4;
  opt.num_threads = 2;
  const BatchSampleResult batch = sample_many(m, opt);
  ASSERT_EQ(batch.configs.size(), 4u);
  std::int64_t total_messages = 0;
  for (int r = 0; r < 4; ++r) {
    SamplerOptions single = opt;
    single.num_replicas = 1;
    single.num_threads = 1;
    single.seed = chains::replica_seed(19, static_cast<std::uint64_t>(r));
    const SampleResult one = sample_mrf(m, single);
    EXPECT_EQ(batch.configs[static_cast<std::size_t>(r)], one.config)
        << "replica " << r;
    total_messages += one.message_stats.messages;
  }
  EXPECT_EQ(batch.message_stats.messages, total_messages);
  EXPECT_EQ(batch.message_stats.rounds, 4 * (opt.rounds.value() + 1));
}

TEST(FacadeBackend, ColoringSamplerSupportsLocalNetwork) {
  const auto g = graph::make_cycle(12);
  SamplerOptions opt;
  opt.algorithm = Algorithm::luby_glauber;
  opt.seed = 3;
  const SampleResult chain_result = sample_coloring(g, 6, opt);
  opt.backend = Backend::local_network;
  const SampleResult net_result = sample_coloring(g, 6, opt);
  EXPECT_EQ(net_result.config, chain_result.config);
  EXPECT_TRUE(net_result.feasible);
  EXPECT_GT(net_result.message_stats.messages, 0);
}

}  // namespace
}  // namespace lsample::core
