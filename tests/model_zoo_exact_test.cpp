// Model-zoo exactness: the newest builders checked against closed-form
// enumeration, and the Widom-Rowlinson / homomorphism samplers checked
// against the exact Gibbs distribution via the fuzzer's shared TV machinery
// (testing::empirical_tv_vs_exact / feasible_support).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/sampler.hpp"
#include "csp/csp_models.hpp"
#include "graph/generators.hpp"
#include "mrf/models.hpp"
#include "testing/fuzz.hpp"

namespace lsample {
namespace {

using core::Algorithm;
using csp::Config;
using csp::FactorGraph;

/// Visits every configuration of [q]^n in counting order.
template <typename F>
void for_each_config(int n, int q, F&& f) {
  Config x(static_cast<std::size_t>(n), 0);
  while (true) {
    f(x);
    int i = 0;
    while (i < n && ++x[static_cast<std::size_t>(i)] == q) {
      x[static_cast<std::size_t>(i)] = 0;
      ++i;
    }
    if (i == n) break;
  }
}

[[nodiscard]] double partition_function(const FactorGraph& fg) {
  double z = 0.0;
  for_each_config(fg.n(), fg.q(), [&](const Config& x) {
    const double lw = fg.log_weight(x);
    if (lw > -std::numeric_limits<double>::infinity()) z += std::exp(lw);
  });
  return z;
}

/// The fuzzer's adaptive TV tolerance: base + sampling noise that scales
/// with sqrt(support / samples).
[[nodiscard]] double tv_tolerance(std::int64_t support, int samples) {
  return 0.06 + 0.9 * std::sqrt(static_cast<double>(support) /
                                static_cast<double>(samples));
}

constexpr int kSamples = 6000;
constexpr std::int64_t kRounds = 200;

// --- Widom-Rowlinson and homomorphism vs exact enumeration ----------------

TEST(ModelZooExact, WidomRowlinsonMatchesExactGibbsUnderBothAlgorithms) {
  const mrf::Mrf m = mrf::make_widom_rowlinson(graph::make_path(4), 0.8);
  const std::int64_t support = testing::feasible_support(m);
  EXPECT_EQ(support, 41);  // 1^T M^3 1 for the P4 transfer matrix
  const double tol = tv_tolerance(support, kSamples);
  for (const Algorithm alg :
       {Algorithm::luby_glauber, Algorithm::local_metropolis}) {
    const double tv =
        testing::empirical_tv_vs_exact(m, alg, 81, kSamples, kRounds);
    EXPECT_LT(tv, tol) << (alg == Algorithm::luby_glauber
                               ? "luby_glauber"
                               : "local_metropolis");
  }
}

TEST(ModelZooExact, WeightedHomomorphismMatchesExactGibbs) {
  // H on 3 spins with loops everywhere except the forbidden pair {1,2};
  // spin 0 is compatible with everything, so single-flip moves stay ergodic,
  // and non-uniform vertex weights exercise the weighted path.
  const std::vector<int> h = {1, 1, 1,  //
                              1, 1, 0,  //
                              1, 0, 1};
  const mrf::Mrf m =
      mrf::make_homomorphism(graph::make_cycle(4), 3, h, {1.0, 1.5, 0.7});
  const std::int64_t support = testing::feasible_support(m);
  EXPECT_GT(support, 0);
  const double tv = testing::empirical_tv_vs_exact(
      m, Algorithm::luby_glauber, 82, kSamples, kRounds);
  EXPECT_LT(tv, tv_tolerance(support, kSamples));
}

// --- Monomer-dimer vs the matching polynomial -----------------------------

TEST(ModelZooExact, MonomerDimerPartitionFunctionIsTheMatchingPolynomial) {
  // C4: m(C4, w) = 1 + 4w + 2w^2 (empty, four single edges, two perfect
  // matchings).  K_{1,3}: 1 + 3w (no two star edges are disjoint).
  for (const double w : {0.5, 1.0, 1.7}) {
    const FactorGraph cycle = csp::make_monomer_dimer(*graph::make_cycle(4), w);
    EXPECT_NEAR(partition_function(cycle), 1.0 + 4.0 * w + 2.0 * w * w,
                1e-12 * (1.0 + 4.0 * w + 2.0 * w * w));
    const FactorGraph star = csp::make_monomer_dimer(*graph::make_star(3), w);
    EXPECT_NEAR(partition_function(star), 1.0 + 3.0 * w, 1e-12 * (1 + 3 * w));
  }
  const FactorGraph fg = csp::make_monomer_dimer(*graph::make_cycle(4), 1.0);
  EXPECT_EQ(testing::feasible_support(fg), 7);
  // Two dimers sharing a vertex violate the at-most-one constraint.  Edges
  // of C4 are 0-1, 1-2, 2-3, 3-0 in insertion order, so edge variables 0
  // and 1 share vertex 1.
  EXPECT_FALSE(fg.feasible({1, 1, 0, 0}));
  EXPECT_TRUE(fg.feasible({1, 0, 1, 0}));
}

TEST(ModelZooExact, MonomerDimerSamplerMatchesExactGibbs) {
  const FactorGraph fg = csp::make_monomer_dimer(*graph::make_cycle(4), 1.3);
  const Config empty_matching(4, 0);
  const std::int64_t support = testing::feasible_support(fg);
  const double tv = testing::empirical_tv_vs_exact(
      fg, empty_matching, Algorithm::luby_glauber, 83, kSamples, kRounds);
  EXPECT_LT(tv, tv_tolerance(support, kSamples));
}

// --- Hypergraph coloring: weak vs strong ----------------------------------

TEST(ModelZooExact, HypergraphColoringWeakAndStrongCountsOnOneHyperedge) {
  // One hyperedge {0,1,2}, q = 3.  Weak forbids only the 3 monochromatic
  // assignments (27 - 3); strong demands pairwise-distinct colors (3!).
  const std::vector<std::vector<int>> edge = {{0, 1, 2}};
  const FactorGraph weak = csp::make_hypergraph_coloring(3, 3, edge, false);
  const FactorGraph strong = csp::make_hypergraph_coloring(3, 3, edge, true);
  EXPECT_EQ(testing::feasible_support(weak), 24);
  EXPECT_EQ(testing::feasible_support(strong), 6);
  EXPECT_FALSE(weak.feasible({2, 2, 2}));
  EXPECT_TRUE(weak.feasible({2, 2, 1}));   // repeat allowed weakly...
  EXPECT_FALSE(strong.feasible({2, 2, 1}));  // ...but not strongly
  EXPECT_TRUE(strong.feasible({0, 2, 1}));
}

// --- k-SAT: DIMACS semantics and lambda weighting -------------------------

TEST(ModelZooExact, KsatFeasibilityMatchesBooleanSemantics) {
  // (x1 v x2) & (!x1 v x3), spin 1 = true.
  const FactorGraph fg = csp::make_ksat(3, {{1, 2}, {-1, 3}});
  for_each_config(3, 2, [&](const Config& x) {
    const bool sat = (x[0] == 1 || x[1] == 1) && (x[0] == 0 || x[2] == 1);
    EXPECT_EQ(fg.feasible(x), sat)
        << x[0] << x[1] << x[2];
  });
}

TEST(ModelZooExact, KsatLambdaWeightsCountTrueVariables) {
  const double lambda = 0.5;
  const FactorGraph fg = csp::make_ksat(3, {{1, 2}, {-1, 3}}, lambda);
  double z = 0.0;
  for_each_config(3, 2, [&](const Config& x) {
    const bool sat = (x[0] == 1 || x[1] == 1) && (x[0] == 0 || x[2] == 1);
    const int ones = x[0] + x[1] + x[2];
    if (sat) {
      z += std::pow(lambda, ones);
      EXPECT_NEAR(fg.log_weight(x), ones * std::log(lambda), 1e-12);
    } else {
      EXPECT_EQ(fg.log_weight(x), -std::numeric_limits<double>::infinity());
    }
  });
  EXPECT_NEAR(partition_function(fg), z, 1e-12);
}

}  // namespace
}  // namespace lsample
