// Dobrushin influence machinery (Definitions 3.1, 3.2) and the coloring
// closed form of §3.2.
#include "inference/influence.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "mrf/models.hpp"

namespace lsample::inference {
namespace {

TEST(Influence, NonAdjacentVerticesHaveZeroInfluence) {
  const auto g = graph::make_path(4);
  const mrf::Mrf m = mrf::make_proper_coloring(g, 4);
  const StateSpace ss(4, 4);
  const auto rho = influence_matrix(m, ss);
  // Influence of j on i is zero unless i ~ j (conditional independence).
  EXPECT_EQ(rho[0 * 4 + 2], 0.0);
  EXPECT_EQ(rho[0 * 4 + 3], 0.0);
  EXPECT_EQ(rho[1 * 4 + 3], 0.0);
  EXPECT_GT(rho[0 * 4 + 1], 0.0);
  EXPECT_GT(rho[1 * 4 + 2], 0.0);
}

TEST(Influence, DiagonalIsZero) {
  const auto g = graph::make_cycle(4);
  const mrf::Mrf m = mrf::make_hardcore(g, 1.0);
  const StateSpace ss(4, 2);
  const auto rho = influence_matrix(m, ss);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(rho[static_cast<std::size_t>(i * 4 + i)], 0.0);
}

TEST(Influence, ClosedFormBoundsExactForColorings) {
  // alpha_closed = max_v d_v / (q - d_v) upper bounds the brute-force total
  // influence.
  for (int q : {4, 5, 6}) {
    const auto g = graph::make_path(4);
    const mrf::Mrf m = mrf::make_proper_coloring(g, q);
    const StateSpace ss(4, q);
    const auto rho = influence_matrix(m, ss);
    const double exact = total_influence(rho, 4);
    const double closed = coloring_total_influence(*g, q);
    EXPECT_LE(exact, closed + 1e-9) << "q=" << q;
    EXPECT_GT(exact, 0.0);
  }
}

TEST(Influence, DobrushinHoldsAtTwoDeltaPlusOne) {
  const auto g = graph::make_cycle(5);  // Delta = 2
  EXPECT_LT(coloring_total_influence(*g, 5), 1.0);   // q = 2*Delta + 1
  EXPECT_GE(coloring_total_influence(*g, 4), 1.0);   // q = 2*Delta
}

TEST(Influence, ListColoringUsesPerVertexListSizes) {
  const auto g = graph::make_star(3);  // center degree 3
  const double alpha = coloring_total_influence(*g, {7, 2, 2, 2});
  // center: 3/(7-3) = 0.75; leaves: 1/(2-1) = 1.
  EXPECT_DOUBLE_EQ(alpha, 1.0);
  EXPECT_THROW((void)coloring_total_influence(*g, {3, 2, 2, 2}),
               std::invalid_argument);
}

TEST(Influence, TotalInfluenceIsMaxRowSum) {
  const std::vector<double> rho = {0.0, 0.2, 0.1, 0.0, 0.0, 0.5, 0.3, 0.1, 0.0};
  EXPECT_DOUBLE_EQ(total_influence(rho, 3), 0.5);
}

TEST(Influence, SofterModelsHaveSmallerInfluence) {
  const auto g = graph::make_path(3);
  const StateSpace ss(3, 2);
  const mrf::Mrf weak = mrf::make_ising(g, 0.1);
  const mrf::Mrf strong = mrf::make_ising(g, 1.5);
  const double a_weak = total_influence(influence_matrix(weak, ss), 3);
  const double a_strong = total_influence(influence_matrix(strong, ss), 3);
  EXPECT_LT(a_weak, a_strong);
  EXPECT_LT(a_weak, 0.3);
}

}  // namespace
}  // namespace lsample::inference
